/**
 * @file
 * Bench-regression gate: parse a bench JSON emission (current run or
 * committed baseline) into a flat key -> value view and compare the
 * two, so CI can fail the build when scheduler throughput drops or a
 * policy's deadline-miss count rises versus the committed baseline
 * (bench/baselines/). Shared by bench_sched_throughput and
 * bench_realtime via --check-against / --tolerance / --check-only.
 *
 * The parser is a deliberately small recursive-descent reader for
 * the JSON these benches themselves emit (objects, arrays, numbers,
 * strings, bools, null — no escapes beyond \" \\ \/ \n \t, which is
 * all the emitters produce). Nested values flatten to dotted paths:
 *
 *   {"fifo": {"layers_per_sec": 10}, "scenarios": [{"name": "x"}]}
 *     -> numbers["fifo.layers_per_sec"] = 10
 *        strings["scenarios.0.name"]    = "x"
 *
 * Comparison semantics:
 *  - throughput keys: current >= baseline * (1 - tolerance/100);
 *    a *negative* tolerance therefore demands current exceed the
 *    baseline, which is how the CI gate verifies itself (a healthy
 *    build must fail a --tolerance -1000 check);
 *  - count keys (deadline misses): current <= baseline, no
 *    tolerance — miss counts are deterministic;
 *  - keys present in the baseline but missing from the current run
 *    fail the check (a renamed metric needs a baseline refresh);
 *    keys new in the current run are ignored (adding metrics must
 *    not break CI until the baseline is refreshed).
 */

#pragma once

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "util/logging.hh"

namespace herald::benchgate
{

/** Flattened JSON document (see file comment for the path scheme). */
struct FlatJson
{
    std::map<std::string, double> numbers;
    std::map<std::string, std::string> strings;

    bool
    hasNumber(const std::string &key) const
    {
        return numbers.count(key) != 0;
    }

    double
    number(const std::string &key) const
    {
        auto it = numbers.find(key);
        if (it == numbers.end())
            util::fatal("bench gate: missing numeric key ", key);
        return it->second;
    }

    const std::string *
    findString(const std::string &key) const
    {
        auto it = strings.find(key);
        return it == strings.end() ? nullptr : &it->second;
    }

    /**
     * Length of the array at @p prefix, probing @p probe_field of
     * each element (works for the object arrays the benches emit).
     */
    std::size_t
    arrayLen(const std::string &prefix,
             const std::string &probe_field) const
    {
        std::size_t n = 0;
        while (true) {
            std::string key = prefix + "." + std::to_string(n) +
                              "." + probe_field;
            if (!numbers.count(key) && !strings.count(key))
                return n;
            ++n;
        }
    }
};

namespace detail
{

class Parser
{
  public:
    Parser(const std::string &text, const std::string &origin)
        : text(text), origin(origin)
    {
    }

    FlatJson
    run()
    {
        FlatJson out;
        value("", out);
        skipWs();
        if (pos != text.size())
            fail("trailing content after document");
        return out;
    }

  private:
    const std::string &text;
    const std::string &origin;
    std::size_t pos = 0;

    [[noreturn]] void
    fail(const char *what)
    {
        util::fatal("bench gate: malformed JSON in ", origin,
                    " at byte ", pos, ": ", what);
    }

    [[noreturn]] void
    failKey(const char *what, const std::string &path)
    {
        util::fatal("bench gate: malformed JSON in ", origin,
                    " at byte ", pos, ": ", what, " \"", path, "\"");
    }

    // A duplicate key would silently overwrite the earlier binding
    // (std::map assignment), so whichever value the emitter wrote
    // last would win the comparison — reject the document instead.
    // Paths are checked across both maps: a key re-bound with a
    // different type is just as corrupt.
    void
    bindNumber(const std::string &path, double v, FlatJson &out)
    {
        if (out.numbers.count(path) || out.strings.count(path))
            failKey("duplicate key", path);
        out.numbers[path] = v;
    }

    void
    bindString(const std::string &path, std::string v, FlatJson &out)
    {
        if (out.numbers.count(path) || out.strings.count(path))
            failKey("duplicate key", path);
        out.strings[path] = std::move(v);
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    char
    peek()
    {
        skipWs();
        if (pos >= text.size())
            fail("unexpected end of input");
        return text[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail("unexpected character");
        ++pos;
    }

    bool
    consume(char c)
    {
        if (peek() != c)
            return false;
        ++pos;
        return true;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (pos < text.size() && text[pos] != '"') {
            char c = text[pos++];
            if (c == '\\') {
                if (pos >= text.size())
                    fail("dangling escape");
                char e = text[pos++];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  default: fail("unsupported escape");
                }
            } else {
                out += c;
            }
        }
        if (pos >= text.size())
            fail("unterminated string");
        ++pos; // closing quote
        return out;
    }

    void
    literal(const char *word)
    {
        for (const char *p = word; *p; ++p) {
            if (pos >= text.size() || text[pos] != *p)
                fail("bad literal");
            ++pos;
        }
    }

    static std::string
    join(const std::string &prefix, const std::string &key)
    {
        return prefix.empty() ? key : prefix + "." + key;
    }

    void
    value(const std::string &path, FlatJson &out)
    {
        char c = peek();
        if (c == '{') {
            ++pos;
            if (consume('}'))
                return;
            do {
                std::string key = parseString();
                expect(':');
                value(join(path, key), out);
            } while (consume(','));
            expect('}');
        } else if (c == '[') {
            ++pos;
            if (consume(']'))
                return;
            std::size_t idx = 0;
            do {
                value(join(path, std::to_string(idx++)), out);
            } while (consume(','));
            expect(']');
        } else if (c == '"') {
            bindString(path, parseString(), out);
        } else if (c == 't') {
            literal("true");
            bindNumber(path, 1.0, out);
        } else if (c == 'f') {
            literal("false");
            bindNumber(path, 0.0, out);
        } else if (c == 'n') {
            literal("null");
        } else {
            const char *start = text.c_str() + pos;
            char *end = nullptr;
            double v = std::strtod(start, &end);
            if (end == start)
                fail("expected a value");
            // strtod happily reads "inf"/"nan" (not JSON, and a NaN
            // baseline would make every gate comparison vacuously
            // pass — NaN fails both < and >).
            if (!std::isfinite(v))
                failKey("non-finite number at", path);
            pos += static_cast<std::size_t>(end - start);
            bindNumber(path, v, out);
        }
    }
};

} // namespace detail

/**
 * Strict numeric CLI-argument parse for the gate flags: the whole
 * string must be a finite number (no trailing junk, no empty
 * string). A typo like "x25" silently becoming 0.0 would turn the
 * 25% gate into a zero-tolerance gate; fail loudly instead.
 */
inline double
parseToleranceArg(const char *arg)
{
    char *end = nullptr;
    double v = std::strtod(arg, &end);
    if (end == arg || *end != '\0')
        util::fatal("bench gate: malformed --tolerance value \"",
                    arg, "\" (expected a number, e.g. 25)");
    return v;
}

/** Parse @p path (util::fatal on I/O or syntax errors). */
inline FlatJson
parseJsonFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        util::fatal("bench gate: cannot read ", path);
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    return detail::Parser(text, path).run();
}

/**
 * Accumulates baseline comparisons; every violation prints one line
 * to stderr so a CI failure names exactly what regressed.
 */
class BaselineChecker
{
  public:
    BaselineChecker(const FlatJson &current, const FlatJson &baseline,
                    double tolerance_pct)
        : current(current), baseline(baseline),
          tolerance(tolerance_pct)
    {
    }

    /**
     * Gate a higher-is-better rate: fail when the current value
     * drops more than the tolerance below the baseline. Skipped
     * (with a note) when the baseline lacks the key.
     */
    void
    checkThroughput(const std::string &key)
    {
        if (!baseline.hasNumber(key)) {
            std::fprintf(stderr,
                         "bench gate: note: baseline lacks \"%s\" "
                         "(skipped; refresh baselines)\n",
                         key.c_str());
            return;
        }
        if (!current.hasNumber(key)) {
            failure(key, "metric missing from current run");
            return;
        }
        const double base = baseline.number(key);
        const double cur = current.number(key);
        ++performed;
        const double floor = base * (1.0 - tolerance / 100.0);
        if (cur < floor) {
            std::fprintf(stderr,
                         "bench gate: FAIL %s: %.1f < %.1f "
                         "(baseline %.1f, tolerance %.1f%%)\n",
                         key.c_str(), cur, floor, base, tolerance);
            ++failures;
        }
    }

    /**
     * Gate a deterministic lower-is-better counter (deadline
     * misses): any rise over the baseline fails, tolerance-free.
     */
    void
    checkCountNotAbove(const std::string &current_key,
                       const std::string &baseline_key)
    {
        if (!baseline.hasNumber(baseline_key)) {
            std::fprintf(stderr,
                         "bench gate: note: baseline lacks \"%s\" "
                         "(skipped; refresh baselines)\n",
                         baseline_key.c_str());
            return;
        }
        if (!current.hasNumber(current_key)) {
            failure(current_key, "metric missing from current run");
            return;
        }
        const double base = baseline.number(baseline_key);
        const double cur = current.number(current_key);
        ++performed;
        if (cur > base) {
            std::fprintf(stderr,
                         "bench gate: FAIL %s: %.0f > baseline "
                         "%.0f\n",
                         current_key.c_str(), cur, base);
            ++failures;
        }
    }

    void
    failure(const std::string &key, const char *why)
    {
        std::fprintf(stderr, "bench gate: FAIL %s: %s\n", key.c_str(),
                     why);
        ++failures;
        ++performed; // a probe that failed still counts as a check
    }

    /** Print the verdict; true when everything held. */
    bool
    verdict(const char *bench_name) const
    {
        // A gate that compared nothing proves nothing: a truncated
        // or structurally renamed baseline would skip every probe
        // and leave the gate permanently inert while CI stays
        // green — treat that as a failure in its own right.
        if (performed == 0) {
            std::fprintf(stderr,
                         "bench gate: %s INERT: no comparison "
                         "matched the baseline's structure — "
                         "regenerate bench/baselines/ via the "
                         "refresh-baselines target\n",
                         bench_name);
            return false;
        }
        if (failures == 0) {
            std::printf("bench gate: %s within baseline "
                        "(%d checks, tolerance %.1f%%)\n",
                        bench_name, performed, tolerance);
            return true;
        }
        std::fprintf(stderr,
                     "bench gate: %s REGRESSED: %d of %d check(s) "
                     "failed (refresh bench/baselines/ via the "
                     "refresh-baselines target if intentional)\n",
                     bench_name, failures, performed);
        return false;
    }

  private:
    const FlatJson &current;
    const FlatJson &baseline;
    double tolerance;
    int failures = 0;
    int performed = 0; //!< comparisons that actually executed
};

/**
 * Compare the per-policy miss-count rows of an object array (each
 * element carrying a "policy" label and a "misses" counter, the
 * shape both real-time benches emit): every baseline row must have a
 * label-matched current row whose miss count has not risen. Label
 * matching keeps column reordering from silently skewing the
 * comparison; a baseline row with no current counterpart fails
 * (renames force a baseline refresh).
 */
inline void
checkPolicyMissRows(BaselineChecker &chk, const FlatJson &current,
                    const FlatJson &baseline,
                    const std::string &current_prefix,
                    const std::string &baseline_prefix,
                    const std::string &context)
{
    const std::size_t n_base =
        baseline.arrayLen(baseline_prefix, "misses");
    const std::size_t n_cur =
        current.arrayLen(current_prefix, "misses");
    for (std::size_t i = 0; i < n_base; ++i) {
        std::string brow =
            baseline_prefix + "." + std::to_string(i);
        const std::string *label =
            baseline.findString(brow + ".policy");
        if (!label)
            continue;
        bool found = false;
        for (std::size_t j = 0; j < n_cur; ++j) {
            std::string crow =
                current_prefix + "." + std::to_string(j);
            const std::string *clabel =
                current.findString(crow + ".policy");
            if (clabel && *clabel == *label) {
                chk.checkCountNotAbove(crow + ".misses",
                                       brow + ".misses");
                found = true;
                break;
            }
        }
        if (!found)
            chk.failure(context + "." + *label,
                        "policy row missing from current run");
    }
}

} // namespace herald::benchgate

