/**
 * @file
 * Shared helpers for the benchmark binaries that regenerate the
 * paper's tables and figures. Each binary prints the same rows/series
 * the paper reports; absolute values are model-specific, the *shape*
 * (who wins, by what factor, where crossovers fall) is what
 * EXPERIMENTS.md compares.
 */

#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "accel/accelerator.hh"
#include "dse/herald_dse.hh"
#include "sched/herald_scheduler.hh"
#include "util/logging.hh"
#include "util/pareto.hh"
#include "util/table.hh"
#include "workload/workload.hh"

namespace herald::bench
{

/** Schedule @p wl on @p acc and return the finalized summary. */
inline sched::ScheduleSummary
runSchedule(cost::CostModel &model, const workload::Workload &wl,
            const accel::Accelerator &acc,
            const sched::SchedulerOptions &opts =
                sched::SchedulerOptions{})
{
    sched::HeraldScheduler scheduler(model, opts);
    sched::Schedule s = scheduler.schedule(wl, acc);
    std::string issue = s.validate(wl, acc);
    if (!issue.empty())
        util::panic("invalid schedule on ", acc.name(), ": ", issue);
    return s.finalize(acc, model.energyModel());
}

/** DSE options used by the figure benches (1/16 PE, 1/8 BW grid —
 * the granularity of the paper's Table V partitions). */
inline dse::HeraldOptions
benchDseOptions(const accel::AcceleratorClass &chip)
{
    dse::HeraldOptions opts;
    opts.partition.peGranularity = chip.numPes / 16;
    opts.partition.bwGranularity = chip.bwGBps / 8;
    return opts;
}

/** Herald-optimized HDA for @p styles; returns the best DSE point. */
inline dse::DsePoint
bestHda(cost::CostModel &model, const workload::Workload &wl,
        const accel::AcceleratorClass &chip,
        const std::vector<dataflow::DataflowStyle> &styles)
{
    dse::Herald herald(model, benchDseOptions(chip));
    dse::DseResult result = herald.explore(wl, chip, styles);
    return result.best();
}

/** Named design point used in comparison tables. */
struct NamedSummary
{
    std::string name;
    sched::ScheduleSummary summary;
};

/** Best-EDP FDA across the three dataflow styles. */
inline NamedSummary
bestFda(cost::CostModel &model, const workload::Workload &wl,
        const accel::AcceleratorClass &chip)
{
    NamedSummary best;
    double best_edp = 1e300;
    for (dataflow::DataflowStyle style : dataflow::kAllStyles) {
        accel::Accelerator acc =
            accel::Accelerator::makeFda(chip, style);
        sched::ScheduleSummary s = runSchedule(model, wl, acc);
        if (s.edp() < best_edp) {
            best_edp = s.edp();
            best = NamedSummary{acc.name(), s};
        }
    }
    return best;
}

/** Best-EDP scaled-out multi-FDA across the three styles. */
inline NamedSummary
bestSmFda(cost::CostModel &model, const workload::Workload &wl,
          const accel::AcceleratorClass &chip)
{
    NamedSummary best;
    double best_edp = 1e300;
    for (dataflow::DataflowStyle style : dataflow::kAllStyles) {
        accel::Accelerator acc =
            accel::Accelerator::makeScaledOutFda(chip, style, 2);
        sched::ScheduleSummary s = runSchedule(model, wl, acc);
        if (s.edp() < best_edp) {
            best_edp = s.edp();
            best = NamedSummary{acc.name(), s};
        }
    }
    return best;
}

/** MAERI-style RDA summary. */
inline NamedSummary
rdaSummary(cost::CostModel &model, const workload::Workload &wl,
           const accel::AcceleratorClass &chip)
{
    accel::Accelerator acc = accel::Accelerator::makeRda(chip);
    return NamedSummary{acc.name(), runSchedule(model, wl, acc)};
}

/** "-65.3%"-style relative difference of a vs b. */
inline std::string
relPct(double a, double b)
{
    return util::fmtPercent(a / b - 1.0);
}

/** Print a standard (design, latency, energy, EDP) table row. */
inline void
addSummaryRow(util::Table &table, const std::string &name,
              const sched::ScheduleSummary &s)
{
    table.addRow({name, util::fmtDouble(s.latencySec * 1e3, 4),
                  util::fmtDouble(s.energyMj, 4),
                  util::fmtDouble(s.edp(), 4)});
}

/** The standard 4-column comparison table. */
inline util::Table
summaryTable()
{
    return util::Table(
        {"design", "latency (ms)", "energy (mJ)", "EDP (mJ*s)"});
}

} // namespace herald::bench

