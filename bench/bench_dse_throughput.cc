/**
 * @file
 * DSE throughput benchmark: serial vs. parallel partition sweep on
 * the AR/VR-A workload, plus scheduler microseconds-per-layer on a
 * fixed HDA. Emits machine-readable JSON (default BENCH_dse.json) so
 * successive PRs can track the perf trajectory.
 *
 * Usage:
 *   bench_dse_throughput [--threads N] [--out FILE] [--small]
 *
 * --threads  worker count for the parallel sweep (default: the
 *            HERALD_THREADS env var, then hardware concurrency)
 * --small    a reduced sweep for CI (coarser partition grid)
 *
 * Each measured sweep uses a fresh CostModel so serial and parallel
 * both start cold — the parallel speedup is not allowed to hide
 * behind a warm cache.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_common.hh"
#include "util/thread_pool.hh"

namespace
{

using namespace herald;
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start)
        .count();
}

struct SweepResult
{
    std::size_t candidates = 0;
    double seconds = 0.0;

    double
    candidatesPerSec() const
    {
        return seconds > 0.0
                   ? static_cast<double>(candidates) / seconds
                   : 0.0;
    }
};

/** Run one full explore with the given thread count, cold cache. */
SweepResult
runSweep(const workload::Workload &wl,
         const accel::AcceleratorClass &chip,
         const dse::HeraldOptions &base, std::size_t threads)
{
    cost::CostModel model;
    dse::HeraldOptions opts = base;
    opts.numThreads = threads;
    dse::Herald herald(model, opts);

    Clock::time_point start = Clock::now();
    dse::DseResult result = herald.explore(
        wl, chip,
        {dataflow::DataflowStyle::NVDLA,
         dataflow::DataflowStyle::ShiDiannao});
    SweepResult out;
    out.seconds = secondsSince(start);
    out.candidates = result.points.size();
    return out;
}

/** Scheduler-only timing: us per scheduled layer, warm cost cache. */
double
schedulerMicrosPerLayer(const workload::Workload &wl,
                        const accel::AcceleratorClass &chip)
{
    cost::CostModel model;
    sched::HeraldScheduler scheduler(model,
                                     sched::SchedulerOptions{});
    accel::Accelerator acc = accel::Accelerator::makeHda(
        chip,
        {dataflow::DataflowStyle::NVDLA,
         dataflow::DataflowStyle::ShiDiannao},
        {chip.numPes / 2, chip.numPes / 2},
        {chip.bwGBps / 2, chip.bwGBps / 2});

    scheduler.schedule(wl, acc); // warm the cost cache
    const int reps = 10;
    Clock::time_point start = Clock::now();
    for (int r = 0; r < reps; ++r)
        scheduler.schedule(wl, acc);
    double per_schedule = secondsSince(start) / reps;
    return per_schedule * 1e6 /
           static_cast<double>(wl.totalLayers());
}

} // namespace

int
main(int argc, char **argv)
{
    util::setVerbose(false);

    std::size_t threads = 0;
    std::string out_path = "BENCH_dse.json";
    bool small = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
            threads = static_cast<std::size_t>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (std::strcmp(argv[i], "--out") == 0 &&
                   i + 1 < argc) {
            out_path = argv[++i];
        } else if (std::strcmp(argv[i], "--small") == 0) {
            small = true;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--threads N] [--out FILE] "
                         "[--small]\n",
                         argv[0]);
            return 1;
        }
    }
    threads = util::resolveThreadCount(threads);

    // Open the output up front so a bad path fails before the sweep.
    std::FILE *json = std::fopen(out_path.c_str(), "w");
    if (!json) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }

    workload::Workload wl = workload::arvrA();
    accel::AcceleratorClass chip = accel::edgeClass();

    dse::HeraldOptions opts;
    if (small) {
        opts.partition.peGranularity = chip.numPes / 4;
        opts.partition.bwGranularity = chip.bwGBps / 4;
    } else {
        opts.partition.peGranularity = chip.numPes / 16;
        opts.partition.bwGranularity = chip.bwGBps / 8;
    }

    std::printf("=== DSE throughput: %s on %s (%s grid) ===\n",
                wl.name().c_str(), chip.name.c_str(),
                small ? "small" : "full");

    SweepResult serial = runSweep(wl, chip, opts, 1);
    std::printf("serial:   %zu candidates in %.3f s "
                "(%.2f cand/s)\n",
                serial.candidates, serial.seconds,
                serial.candidatesPerSec());

    SweepResult parallel = runSweep(wl, chip, opts, threads);
    double speedup = parallel.seconds > 0.0
                         ? serial.seconds / parallel.seconds
                         : 0.0;
    std::printf("parallel: %zu candidates in %.3f s "
                "(%.2f cand/s, %zu threads, %.2fx)\n",
                parallel.candidates, parallel.seconds,
                parallel.candidatesPerSec(), threads, speedup);

    double us_per_layer = schedulerMicrosPerLayer(wl, chip);
    std::printf("scheduler: %.2f us/layer (%zu layers, warm "
                "cache)\n",
                us_per_layer, wl.totalLayers());

    std::fprintf(
        json,
        "{\n"
        "  \"workload\": \"%s\",\n"
        "  \"chip\": \"%s\",\n"
        "  \"grid\": \"%s\",\n"
        "  \"candidates\": %zu,\n"
        "  \"threads\": %zu,\n"
        "  \"serial_seconds\": %.6f,\n"
        "  \"serial_candidates_per_sec\": %.3f,\n"
        "  \"parallel_seconds\": %.6f,\n"
        "  \"parallel_candidates_per_sec\": %.3f,\n"
        "  \"speedup\": %.3f,\n"
        "  \"scheduler_us_per_layer\": %.3f,\n"
        "  \"total_layers\": %zu\n"
        "}\n",
        wl.name().c_str(), chip.name.c_str(),
        small ? "small" : "full", serial.candidates, threads,
        serial.seconds, serial.candidatesPerSec(),
        parallel.seconds, parallel.candidatesPerSec(), speedup,
        us_per_layer, wl.totalLayers());
    std::fclose(json);
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
