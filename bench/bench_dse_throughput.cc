/**
 * @file
 * DSE search-engine benchmark: how fast each engine configuration
 * resolves a 3-way HDA partition space (where cost-table columns
 * actually recur across candidates), on the edge chip with the AR/VR
 * workload:
 *
 *   exhaustive_nocache  the pre-engine brute force: full grid,
 *                       shareCostColumns off (every candidate pays
 *                       its whole LayerCostTable prefill);
 *   exhaustive          full grid through the cross-candidate
 *                       CostColumnCache;
 *   annealing           the metaheuristic under the same cache, with
 *                       an evaluation budget a fraction of the grid.
 *
 * The headline metric is coverage_per_sec: candidate-space size
 * divided by wall time — how many grid candidates per second the
 * engine effectively resolves while reaching its best point. For the
 * exhaustive legs that is exactly evaluated-candidates/sec; for
 * annealing it credits the search with the space it covers without
 * visiting (the point of a metaheuristic), which is only honest
 * together with the quality gate below.
 *
 * The engine claims, asserted in-binary (exit 1 on violation) and
 * gated in CI against bench/baselines/ci-small-dse.json:
 *   - annealing resolves the space >= 10x faster than the brute-force
 *     configuration (coverage_per_sec ratio);
 *   - its best point is equal-or-better (scalarized Pareto objective,
 *     misses then EDP) than the exhaustive optimum on the same grid;
 *   - a rerun with a different thread count is bit-identical (best
 *     point, point count, frontier).
 *
 * The gated legs run serially (numThreads = 1) so the metric isolates
 * per-candidate engine work from pool scaling; the parallel exhaustive
 * leg is reported for the perf trajectory but not gated. A fresh
 * CostModel per leg keeps every leg cold-start honest. The annealing
 * seed is pinned: the run is bit-reproducible, so the quality gate is
 * exact, not statistical.
 *
 * Usage:
 *   bench_dse_throughput [--threads N] [--out FILE] [--small]
 *                        [--check-against BASELINE.json]
 *                        [--tolerance PCT] [--check-only]
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_baseline.hh"
#include "bench_common.hh"
#include "util/thread_pool.hh"

namespace
{

using namespace herald;
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start)
        .count();
}

const std::vector<dataflow::DataflowStyle> kStyles = {
    dataflow::DataflowStyle::NVDLA,
    dataflow::DataflowStyle::ShiDiannao,
    dataflow::DataflowStyle::Eyeriss,
};

struct SweepResult
{
    std::size_t candidates = 0; //!< candidates actually evaluated
    double seconds = 0.0;
    double bestObjective = 0.0;
    std::size_t frontierSize = 0;
    dse::DseResult result;
};

/** Space candidates resolved per second of wall time. */
double
coveragePerSec(std::size_t space, const SweepResult &leg)
{
    return leg.seconds > 0.0
               ? static_cast<double>(space) / leg.seconds
               : 0.0;
}

/**
 * The scalarized Pareto objective (misses, then squashed EDP) the
 * engine minimizes under Objective::ParetoFrontier — recomputed here
 * so the bench compares leg quality with the engine's own yardstick.
 */
double
scalarObjective(const sched::ScheduleSummary &summary)
{
    double edp = summary.edp();
    return static_cast<double>(summary.sla.deadlineMisses) +
           edp / (1.0 + edp);
}

/** Run one explore with a fresh (cold) CostModel. */
SweepResult
runSweep(const workload::Workload &wl,
         const accel::AcceleratorClass &chip,
         const dse::HeraldOptions &base, std::size_t threads)
{
    cost::CostModel model;
    dse::HeraldOptions opts = base;
    opts.numThreads = threads;
    dse::Herald herald(model, opts);

    Clock::time_point start = Clock::now();
    SweepResult out;
    out.result = herald.explore(wl, chip, kStyles);
    out.seconds = secondsSince(start);
    out.candidates = out.result.points.size();
    out.bestObjective = scalarObjective(out.result.best().summary);
    out.frontierSize = out.result.frontier.size();
    return out;
}

/** Scheduler-only timing: us per scheduled layer, warm cost cache. */
double
schedulerMicrosPerLayer(const workload::Workload &wl,
                        const accel::AcceleratorClass &chip)
{
    cost::CostModel model;
    sched::HeraldScheduler scheduler(model,
                                     sched::SchedulerOptions{});
    accel::Accelerator acc = accel::Accelerator::makeHda(
        chip, kStyles,
        {chip.numPes / 2, chip.numPes / 4, chip.numPes / 4},
        {chip.bwGBps / 2, chip.bwGBps / 4, chip.bwGBps / 4});

    scheduler.schedule(wl, acc); // warm the cost cache
    const int reps = 10;
    Clock::time_point start = Clock::now();
    for (int r = 0; r < reps; ++r)
        scheduler.schedule(wl, acc);
    double per_schedule = secondsSince(start) / reps;
    return per_schedule * 1e6 /
           static_cast<double>(wl.totalLayers());
}

/** True when two results are bit-identical point for point. */
bool
identicalResults(const dse::DseResult &a, const dse::DseResult &b)
{
    if (a.bestIdx != b.bestIdx || a.frontier != b.frontier ||
        a.points.size() != b.points.size())
        return false;
    for (std::size_t i = 0; i < a.points.size(); ++i) {
        const sched::ScheduleSummary &sa = a.points[i].summary;
        const sched::ScheduleSummary &sb = b.points[i].summary;
        if (sa.latencySec != sb.latencySec ||
            sa.energyMj != sb.energyMj ||
            sa.sla.deadlineMisses != sb.sla.deadlineMisses ||
            a.points[i].accelerator.name() !=
                b.points[i].accelerator.name())
            return false;
    }
    return true;
}

int
checkAgainstBaseline(const std::string &current_path,
                     const std::string &baseline_path,
                     double tolerance)
{
    benchgate::FlatJson cur = benchgate::parseJsonFile(current_path);
    benchgate::FlatJson base =
        benchgate::parseJsonFile(baseline_path);
    benchgate::BaselineChecker chk(cur, base, tolerance);

    // The engine's coverage rate and its structural speedup over the
    // brute-force configuration must not regress. The speedup is a
    // machine-relative ratio (both legs timed on the same host), so
    // it is far more stable across runners than raw wall-clock.
    chk.checkThroughput("annealing.coverage_per_sec");
    chk.checkThroughput("annealing.speedup_vs_nocache");
    chk.checkThroughput("exhaustive.speedup_vs_nocache");
    // Deterministic counters: the annealing best point may never be
    // worse than the exhaustive optimum, and the determinism rerun
    // may never diverge. Both are exact, tolerance-free gates.
    chk.checkCountNotAbove("annealing.quality_gap",
                           "annealing.quality_gap");
    chk.checkThroughput("determinism_ok");
    return chk.verdict("bench_dse_throughput") ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    util::setVerbose(false);

    std::size_t threads = 0;
    std::string out_path = "BENCH_dse.json";
    std::string baseline_path;
    double tolerance = 25.0;
    bool check_only = false;
    bool small = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
            threads = static_cast<std::size_t>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (std::strcmp(argv[i], "--out") == 0 &&
                   i + 1 < argc) {
            out_path = argv[++i];
        } else if (std::strcmp(argv[i], "--check-against") == 0 &&
                   i + 1 < argc) {
            baseline_path = argv[++i];
        } else if (std::strcmp(argv[i], "--tolerance") == 0 &&
                   i + 1 < argc) {
            tolerance = benchgate::parseToleranceArg(argv[++i]);
        } else if (std::strcmp(argv[i], "--check-only") == 0) {
            check_only = true;
        } else if (std::strcmp(argv[i], "--small") == 0) {
            small = true;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--threads N] [--out FILE] "
                         "[--small] [--check-against BASELINE] "
                         "[--tolerance PCT] [--check-only]\n",
                         argv[0]);
            return 1;
        }
    }
    threads = util::resolveThreadCount(threads);
    if (check_only) {
        if (baseline_path.empty()) {
            std::fprintf(stderr,
                         "--check-only requires --check-against\n");
            return 1;
        }
        return checkAgainstBaseline(out_path, baseline_path,
                                    tolerance);
    }

    // Open the output up front so a bad path fails before the sweep.
    std::FILE *json = std::fopen(out_path.c_str(), "w");
    if (!json) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }

    workload::Workload wl = workload::arvrA();
    accel::AcceleratorClass chip = accel::edgeClass();

    // PE x BW composition grid. Both modes keep the bandwidth quantum
    // at 1 GBps; --small halves the PE resolution, shrinking the
    // space ~5x (2205 vs 11025 candidates on the edge chip).
    dse::HeraldOptions opts;
    opts.objective = dse::Objective::ParetoFrontier;
    opts.partition.peGranularity =
        small ? chip.numPes / 8 : chip.numPes / 16;
    opts.partition.bwGranularity = chip.bwGBps / 16;

    std::printf("=== DSE engine: %s on %s, %zu-way HDA (%s grid) "
                "===\n",
                wl.name().c_str(), chip.name.c_str(), kStyles.size(),
                small ? "small" : "full");

    // Brute force: full grid, no column sharing (the pre-engine cost
    // profile). Serial, like every gated leg.
    dse::HeraldOptions nocache_opts = opts;
    nocache_opts.shareCostColumns = false;
    SweepResult nocache = runSweep(wl, chip, nocache_opts, 1);
    std::size_t space = nocache.candidates;
    std::printf("exhaustive/nocache: %zu candidates in %.3f s "
                "(%.0f cand/s, best %.6g)\n",
                nocache.candidates, nocache.seconds,
                coveragePerSec(space, nocache),
                nocache.bestObjective);

    // Same grid through the cross-candidate column cache.
    SweepResult exhaustive = runSweep(wl, chip, opts, 1);
    double ex_speedup = coveragePerSec(space, exhaustive) /
                        coveragePerSec(space, nocache);
    std::printf("exhaustive/cached:  %zu candidates in %.3f s "
                "(%.0f cand/s, %.2fx, best %.6g)\n",
                exhaustive.candidates, exhaustive.seconds,
                coveragePerSec(space, exhaustive), ex_speedup,
                exhaustive.bestObjective);

    // The metaheuristic: same cache, an evaluation budget a fraction
    // of the grid, a seed pinned to keep the quality gate exact.
    dse::HeraldOptions ann_opts = opts;
    ann_opts.partition.strategy = dse::SearchStrategy::Annealing;
    ann_opts.partition.annealing.chains = 8;
    ann_opts.partition.annealing.iterations = 64;
    ann_opts.partition.annealing.maxEvaluations = small ? 80 : 384;
    ann_opts.partition.seed = small ? 14 : 5;
    SweepResult annealing = runSweep(wl, chip, ann_opts, 1);
    double ann_speedup = coveragePerSec(space, annealing) /
                         coveragePerSec(space, nocache);
    double quality_gap =
        annealing.bestObjective - exhaustive.bestObjective;
    std::printf("annealing:          %zu evals in %.3f s "
                "(%.0f cand/s, %.2fx, best %.6g, frontier %zu)\n",
                annealing.candidates, annealing.seconds,
                coveragePerSec(space, annealing), ann_speedup,
                annealing.bestObjective, annealing.frontierSize);

    // Determinism rerun: same options, different thread count, must
    // be bit-identical (checked on the full DseResult).
    std::size_t rerun_threads = std::max<std::size_t>(threads, 4);
    SweepResult rerun = runSweep(wl, chip, ann_opts, rerun_threads);
    bool deterministic =
        identicalResults(annealing.result, rerun.result);

    // Parallel exhaustive leg: trajectory only, not gated.
    SweepResult parallel = runSweep(wl, chip, opts, threads);
    std::printf("parallel/cached:    %zu candidates in %.3f s "
                "(%.0f cand/s, %zu threads)\n",
                parallel.candidates, parallel.seconds,
                coveragePerSec(space, parallel), threads);

    double us_per_layer = schedulerMicrosPerLayer(wl, chip);
    std::printf("scheduler: %.2f us/layer (%zu layers, warm "
                "cache)\n",
                us_per_layer, wl.totalLayers());

    // The engine's contract, self-asserted so a bare bench run (no
    // baseline at hand) still fails loudly on a broken claim.
    bool ok = true;
    if (ann_speedup < 10.0) {
        std::fprintf(stderr,
                     "FAIL: annealing resolves the space %.2fx "
                     "faster than brute force (claim: >= 10x)\n",
                     ann_speedup);
        ok = false;
    }
    if (quality_gap > 0.0) {
        std::fprintf(stderr,
                     "FAIL: annealing best %.9g worse than "
                     "exhaustive best %.9g\n",
                     annealing.bestObjective,
                     exhaustive.bestObjective);
        ok = false;
    }
    if (!deterministic) {
        std::fprintf(stderr,
                     "FAIL: annealing rerun with %zu threads "
                     "diverged from the serial run\n",
                     rerun_threads);
        ok = false;
    }

    std::fprintf(
        json,
        "{\n"
        "  \"workload\": \"%s\",\n"
        "  \"chip\": \"%s\",\n"
        "  \"grid\": \"%s\",\n"
        "  \"threads\": %zu,\n"
        "  \"space_candidates\": %zu,\n"
        "  \"exhaustive_nocache\": {\n"
        "    \"candidates\": %zu,\n"
        "    \"seconds\": %.6f,\n"
        "    \"coverage_per_sec\": %.3f,\n"
        "    \"best_objective\": %.9g\n"
        "  },\n"
        "  \"exhaustive\": {\n"
        "    \"candidates\": %zu,\n"
        "    \"seconds\": %.6f,\n"
        "    \"coverage_per_sec\": %.3f,\n"
        "    \"best_objective\": %.9g,\n"
        "    \"speedup_vs_nocache\": %.3f\n"
        "  },\n"
        "  \"annealing\": {\n"
        "    \"candidates\": %zu,\n"
        "    \"seconds\": %.6f,\n"
        "    \"coverage_per_sec\": %.3f,\n"
        "    \"best_objective\": %.9g,\n"
        "    \"frontier_size\": %zu,\n"
        "    \"speedup_vs_nocache\": %.3f,\n"
        "    \"quality_gap\": %.9g\n"
        "  },\n"
        "  \"parallel_coverage_per_sec\": %.3f,\n"
        "  \"determinism_ok\": %d,\n"
        "  \"scheduler_us_per_layer\": %.3f,\n"
        "  \"total_layers\": %zu\n"
        "}\n",
        wl.name().c_str(), chip.name.c_str(),
        small ? "small" : "full", threads, space, nocache.candidates,
        nocache.seconds, coveragePerSec(space, nocache),
        nocache.bestObjective, exhaustive.candidates,
        exhaustive.seconds, coveragePerSec(space, exhaustive),
        exhaustive.bestObjective, ex_speedup, annealing.candidates,
        annealing.seconds, coveragePerSec(space, annealing),
        annealing.bestObjective, annealing.frontierSize, ann_speedup,
        quality_gap, coveragePerSec(space, parallel),
        deterministic ? 1 : 0, us_per_layer, wl.totalLayers());
    std::fclose(json);
    std::printf("wrote %s\n", out_path.c_str());

    if (!baseline_path.empty()) {
        int gate = checkAgainstBaseline(out_path, baseline_path,
                                        tolerance);
        if (gate != 0)
            return gate;
    }
    return ok ? 0 : 1;
}
