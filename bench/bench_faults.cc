/**
 * @file
 * Fault-injection benchmark: graceful degradation under capacity
 * loss. Runs the full (policy x drop x preemption) grid of
 * bench_realtime on the factory fault scenario
 * (workload::faultedFactory) with 0, 1 and 2 permanently failed
 * sub-accelerators (sched::factoryFaultTimeline staggers the
 * failures mid-run), and for every cell reports
 *
 *  - the fault-aware outcome: the scheduler consulted the timeline,
 *    killed in-flight layers at fault onsets, re-dispatched victim
 *    chains onto survivors (SlaStats::faultKilledLayers /
 *    framesRescheduled), and re-proved drop-policy feasibility
 *    against the degraded capacity;
 *  - a fault-oblivious baseline: the same configuration scheduled
 *    blind to the timeline, then evaluated against it
 *    (sched::faultObliviousSla — a frame whose layer overlaps an
 *    unavailable window is lost, throttle overlaps stretch
 *    completions). This is what shipping the fault-free schedule
 *    onto the degraded chip would cost.
 *
 * The run fails (non-zero exit) unless, for every configuration,
 * the fault-aware miss count degrades monotonically in the number of
 * failed sub-accelerators AND stays strictly below the
 * fault-oblivious baseline whenever at least one sub-accelerator
 * fails — that strict gap is the entire point of fault-aware
 * scheduling, so CI asserts it on every build.
 *
 * Usage mirrors bench_realtime:
 *   bench_faults [--out FILE] [--small]
 *                [--check-against BASELINE.json] [--tolerance PCT]
 *                [--check-only]
 *
 * Miss counts are deterministic (the scheduler is bit-identical
 * across thread counts and reruns), so the --check-against gate
 * compares them exactly, tolerance-free.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_baseline.hh"
#include "bench_common.hh"

namespace
{

using namespace herald;

struct PolicyConfig
{
    const char *label;
    sched::Policy policy;
    sched::DropPolicy drop;
    sched::Preemption preemption;
};

const PolicyConfig kPolicies[] = {
    {"fifo", sched::Policy::Fifo, sched::DropPolicy::None,
     sched::Preemption::Off},
    {"edf", sched::Policy::Edf, sched::DropPolicy::None,
     sched::Preemption::Off},
    {"lst", sched::Policy::Lst, sched::DropPolicy::None,
     sched::Preemption::Off},
    {"lst_drop", sched::Policy::Lst,
     sched::DropPolicy::HopelessFrames, sched::Preemption::Off},
    {"lst_preempt", sched::Policy::Lst, sched::DropPolicy::None,
     sched::Preemption::AtLayerBoundary},
    {"lst_preempt_doom", sched::Policy::Lst,
     sched::DropPolicy::DoomedFrames,
     sched::Preemption::AtLayerBoundary},
};

constexpr int kMaxFailed = 2;

struct CellResult
{
    std::string label; //!< "<policy>/f<failed>"
    int failed = 0;
    std::size_t awareMisses = 0;
    std::size_t awareDropped = 0;
    std::size_t faultKilledLayers = 0;
    std::size_t framesRescheduled = 0;
    std::size_t obliviousMisses = 0;
    double awareMissRate = 0.0;
};

int
checkAgainstBaseline(const std::string &current_path,
                     const std::string &baseline_path,
                     double tolerance)
{
    benchgate::FlatJson cur = benchgate::parseJsonFile(current_path);
    benchgate::FlatJson base =
        benchgate::parseJsonFile(baseline_path);
    benchgate::BaselineChecker chk(cur, base, tolerance);
    // Rows are labeled "<policy>/f<failed>"; both the fault-aware
    // and the fault-oblivious miss counts are deterministic, so any
    // rise over the committed baseline is a scheduling-quality
    // regression.
    benchgate::checkPolicyMissRows(chk, cur, base, "cells", "cells",
                                   "cells");
    return chk.verdict("bench_faults") ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    util::setVerbose(false);

    std::string out_path = "BENCH_faults.json";
    std::string baseline_path;
    double tolerance = 25.0;
    bool check_only = false;
    bool small = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else if (std::strcmp(argv[i], "--check-against") == 0 &&
                   i + 1 < argc) {
            baseline_path = argv[++i];
        } else if (std::strcmp(argv[i], "--tolerance") == 0 &&
                   i + 1 < argc) {
            tolerance = benchgate::parseToleranceArg(argv[++i]);
        } else if (std::strcmp(argv[i], "--check-only") == 0) {
            check_only = true;
        } else if (std::strcmp(argv[i], "--small") == 0) {
            small = true;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--out FILE] [--small] "
                         "[--check-against BASELINE] "
                         "[--tolerance PCT] [--check-only]\n",
                         argv[0]);
            return 1;
        }
    }
    if (check_only) {
        if (baseline_path.empty()) {
            std::fprintf(stderr,
                         "--check-only requires --check-against\n");
            return 1;
        }
        return checkAgainstBaseline(out_path, baseline_path,
                                    tolerance);
    }

    accel::AcceleratorClass chip = accel::edgeClass();
    accel::Accelerator acc = accel::Accelerator::makeHda(
        chip,
        {dataflow::DataflowStyle::NVDLA,
         dataflow::DataflowStyle::ShiDiannao},
        {chip.numPes / 2, chip.numPes / 2},
        {chip.bwGBps / 2, chip.bwGBps / 2});

    // Enough frames that a healthy band of arrivals falls between
    // the staggered failure onsets — that band is where fault-aware
    // re-homing can save frames a fault-oblivious schedule loses.
    const int frames60 = small ? 6 : 8;
    workload::Workload wl = workload::faultedFactory(frames60);
    cost::CostModel model;

    // One shared fault horizon: the fault-free FIFO makespan, so
    // every configuration faces failures at the same absolute
    // cycles and the cells are comparable.
    double horizon;
    {
        sched::HeraldScheduler fifo(model, sched::SchedulerOptions{});
        horizon = fifo.schedule(wl, acc).makespanCycles();
    }

    std::vector<CellResult> cells;
    bool ok = true;
    std::printf("=== Fault injection on %s (%s), horizon %.3e ===\n",
                acc.name().c_str(), small ? "small" : "full",
                horizon);
    for (const PolicyConfig &config : kPolicies) {
        std::size_t prev_misses = 0;
        for (int failed = 0; failed <= kMaxFailed; ++failed) {
            sched::FaultTimeline timeline =
                sched::factoryFaultTimeline(acc.numSubAccs(), failed,
                                            horizon);

            sched::SchedulerOptions opts;
            opts.policy = config.policy;
            opts.dropPolicy = config.drop;
            opts.preemption = config.preemption;
            opts.faults = timeline;
            sched::HeraldScheduler scheduler(model, opts);
            sched::Schedule s = scheduler.schedule(wl, acc);
            std::string issue = s.validate(wl, acc, &timeline);
            if (!issue.empty())
                util::panic("invalid fault-aware schedule (",
                            config.label, ", ", failed,
                            " failed): ", issue);
            sched::SlaStats aware = s.computeSla(wl);

            // Fault-oblivious baseline: schedule blind, then pay
            // the timeline.
            opts.faults = sched::FaultTimeline{};
            sched::HeraldScheduler blind(model, opts);
            sched::Schedule bs = blind.schedule(wl, acc);
            sched::SlaStats oblivious =
                sched::faultObliviousSla(bs, wl, timeline);

            CellResult c;
            c.label = std::string(config.label) + "/f" +
                      std::to_string(failed);
            c.failed = failed;
            c.awareMisses = aware.deadlineMisses;
            c.awareDropped = aware.droppedFrames;
            c.faultKilledLayers = aware.faultKilledLayers;
            c.framesRescheduled = aware.framesRescheduled;
            c.obliviousMisses = oblivious.deadlineMisses;
            c.awareMissRate = aware.missRate;

            std::printf("  %-22s aware %2zu misses (%zu killed, "
                        "%zu rescheduled, %zu dropped)  "
                        "oblivious %2zu misses\n",
                        c.label.c_str(), c.awareMisses,
                        c.faultKilledLayers, c.framesRescheduled,
                        c.awareDropped, c.obliviousMisses);

            if (failed > 0 && c.awareMisses < prev_misses) {
                std::fprintf(stderr,
                             "FAIL %s: miss count improved from %zu "
                             "to %zu as capacity shrank — "
                             "non-monotone degradation\n",
                             c.label.c_str(), prev_misses,
                             c.awareMisses);
                ok = false;
            }
            if (failed > 0 && c.awareMisses >= c.obliviousMisses) {
                std::fprintf(stderr,
                             "FAIL %s: fault-aware misses (%zu) not "
                             "strictly below fault-oblivious "
                             "baseline (%zu)\n",
                             c.label.c_str(), c.awareMisses,
                             c.obliviousMisses);
                ok = false;
            }
            prev_misses = c.awareMisses;
            cells.push_back(std::move(c));
        }
    }

    std::FILE *json = std::fopen(out_path.c_str(), "w");
    if (!json) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    std::fprintf(json,
                 "{\n  \"chip\": \"%s\",\n  \"grid\": \"%s\",\n"
                 "  \"frames\": %zu,\n  \"horizon_cycles\": %.1f,\n"
                 "  \"cells\": [\n",
                 chip.name.c_str(), small ? "small" : "full",
                 wl.numInstances(), horizon);
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const CellResult &c = cells[i];
        std::fprintf(
            json,
            "    {\"policy\": \"%s\", \"failed\": %d, "
            "\"misses\": %zu, \"dropped\": %zu, "
            "\"fault_killed_layers\": %zu, "
            "\"frames_rescheduled\": %zu, "
            "\"oblivious_misses\": %zu, \"miss_rate\": %.4f}%s\n",
            c.label.c_str(), c.failed, c.awareMisses, c.awareDropped,
            c.faultKilledLayers, c.framesRescheduled,
            c.obliviousMisses, c.awareMissRate,
            i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote %s\n", out_path.c_str());

    if (!ok)
        return 1;
    if (!baseline_path.empty())
        return checkAgainstBaseline(out_path, baseline_path,
                                    tolerance);
    return 0;
}
