/**
 * @file
 * Fig. 11 reproduction: the full design space. For each of the nine
 * {AR/VR-A, AR/VR-B, MLPerf} x {edge, mobile, cloud} scenarios,
 * evaluate every accelerator family of Table III:
 *
 *   - 3 FDAs (NVDLA / Shi-diannao / Eyeriss),
 *   - 3 scaled-out multi-FDAs (2x same dataflow, even split),
 *   - a MAERI-style RDA,
 *   - 3 two-way HDAs and the three-way HDA, each as a Herald
 *     partition sweep (every point printed is one partitioning with
 *     an optimized schedule),
 *
 * then print the per-scenario Pareto front and the headline
 * comparison (best HDA vs best FDA / SM-FDA / RDA).
 *
 * Expected shape (paper): HDA and RDA points on the Pareto curve,
 * FDAs off it; best HDA ~65% latency / ~5% energy better than the
 * best FDA; RDA faster but ~20% hungrier than the best HDA.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"

namespace
{

using namespace herald;
using dataflow::DataflowStyle;

struct HdaCombo
{
    std::string name;
    std::vector<DataflowStyle> styles;
};

std::vector<HdaCombo>
hdaCombos()
{
    return {{"NVDLA+Shi HDA (Maelstrom)",
             {DataflowStyle::NVDLA, DataflowStyle::ShiDiannao}},
            {"Shi+Eyeriss HDA",
             {DataflowStyle::ShiDiannao, DataflowStyle::Eyeriss}},
            {"Eyeriss+NVDLA HDA",
             {DataflowStyle::Eyeriss, DataflowStyle::NVDLA}},
            {"NVDLA+Shi+Eyeriss HDA",
             {DataflowStyle::NVDLA, DataflowStyle::ShiDiannao,
              DataflowStyle::Eyeriss}}};
}

} // namespace

int
main()
{
    util::setVerbose(false);

    struct Gain
    {
        double latency = 0.0;
        double energy = 0.0;
        int n = 0;
    };
    Gain vs_fda, vs_smfda, vs_rda;

    std::vector<workload::Workload> workloads;
    workloads.push_back(workload::arvrA());
    workloads.push_back(workload::arvrB());
    workloads.push_back(workload::mlperf());

    for (const workload::Workload &wl : workloads) {
        for (const accel::AcceleratorClass &chip :
             accel::allClasses()) {
            cost::CostModel model;
            std::printf("=== Fig. 11: %s on %s accelerator ===\n",
                        wl.name().c_str(), chip.name.c_str());

            std::vector<util::DesignPoint> all_points;
            util::Table table = bench::summaryTable();

            // FDAs and SM-FDAs.
            for (DataflowStyle style : dataflow::kAllStyles) {
                for (bool scaled : {false, true}) {
                    accel::Accelerator acc =
                        scaled ? accel::Accelerator::makeScaledOutFda(
                                     chip, style, 2)
                               : accel::Accelerator::makeFda(chip,
                                                             style);
                    sched::ScheduleSummary s =
                        bench::runSchedule(model, wl, acc);
                    bench::addSummaryRow(table, acc.name(), s);
                    all_points.push_back(util::DesignPoint{
                        s.latencySec, s.energyMj, acc.name()});
                }
            }

            // RDA.
            bench::NamedSummary rda =
                bench::rdaSummary(model, wl, chip);
            bench::addSummaryRow(table, rda.name, rda.summary);
            all_points.push_back(util::DesignPoint{
                rda.summary.latencySec, rda.summary.energyMj,
                rda.name});

            // HDA combos: full partition sweeps; every candidate is a
            // design point, the best-EDP one goes into the table.
            double best_hda_edp = 1e300;
            sched::ScheduleSummary best_hda;
            std::string best_hda_name;
            for (const HdaCombo &combo : hdaCombos()) {
                dse::Herald herald(model,
                                   bench::benchDseOptions(chip));
                dse::DseResult result =
                    herald.explore(wl, chip, combo.styles);
                for (const dse::DsePoint &p : result.points) {
                    all_points.push_back(p.designPoint());
                }
                const dse::DsePoint &best = result.best();
                bench::addSummaryRow(table,
                                     combo.name + " best: " +
                                         best.accelerator.name(),
                                     best.summary);
                if (best.summary.edp() < best_hda_edp) {
                    best_hda_edp = best.summary.edp();
                    best_hda = best.summary;
                    best_hda_name = combo.name;
                }
            }

            table.print(std::cout);

            // Pareto front across everything evaluated.
            auto front = util::paretoFront(all_points);
            std::printf("\nPareto front (%zu of %zu points):\n",
                        front.size(), all_points.size());
            for (const util::DesignPoint &p : front) {
                std::printf("  %9.3f ms  %9.3f mJ  %s\n",
                            p.latency * 1e3, p.energy,
                            p.label.c_str());
            }

            // Headline comparison for this scenario.
            bench::NamedSummary fda =
                bench::bestFda(model, wl, chip);
            bench::NamedSummary smfda =
                bench::bestSmFda(model, wl, chip);
            std::printf("\nBest HDA (%s) vs:\n",
                        best_hda_name.c_str());
            auto report = [&](const char *tag,
                              const bench::NamedSummary &other,
                              Gain &gain) {
                std::printf(
                    "  %-22s latency %s  energy %s  (vs %s)\n", tag,
                    bench::relPct(best_hda.latencySec,
                                  other.summary.latencySec)
                        .c_str(),
                    bench::relPct(best_hda.energyMj,
                                  other.summary.energyMj)
                        .c_str(),
                    other.name.c_str());
                gain.latency += best_hda.latencySec /
                                other.summary.latencySec;
                gain.energy +=
                    best_hda.energyMj / other.summary.energyMj;
                gain.n += 1;
            };
            report("best FDA", fda, vs_fda);
            report("best SM-FDA", smfda, vs_smfda);
            report("RDA", rda, vs_rda);
            std::printf("\n");
        }
    }

    auto avg = [](const Gain &g, bool energy) {
        double total = energy ? g.energy : g.latency;
        return (total / g.n - 1.0) * 100.0;
    };
    std::printf("=== Fig. 11 headline averages over 9 scenarios ===\n");
    std::printf("best HDA vs best FDA:    latency %+.1f%%, energy "
                "%+.1f%%  (paper: -65.3%%, -5.0%%)\n",
                avg(vs_fda, false), avg(vs_fda, true));
    std::printf("best HDA vs best SM-FDA: latency %+.1f%%, energy "
                "%+.1f%%  (paper: -63.1%%, -4.1%%)\n",
                avg(vs_smfda, false), avg(vs_smfda, true));
    std::printf("best HDA vs RDA:         latency %+.1f%%, energy "
                "%+.1f%%  (paper: +20.7%%, -22.0%%)\n",
                avg(vs_rda, false), avg(vs_rda, true));
    return 0;
}
