/**
 * @file
 * Fig. 12 reproduction: single-DNN use cases. UNet and ResNet50 with
 * batch size 4 on the cloud accelerator; FDA design points plus the
 * Maelstrom (NVDLA+Shi-diannao HDA) partition sweep. With a single
 * model, HDAs exploit only batch-level parallelism and intra-model
 * layer heterogeneity.
 *
 * Expected shape (paper): the best FDA lands on the Pareto curve
 * (unlike the multi-DNN case), but the optimized HDA still improves
 * EDP (paper: 26.4% on UNet, 48.1% on ResNet50); RDA is faster but
 * needs more energy than the HDA.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"
#include "dnn/model_zoo.hh"

int
main()
{
    using namespace herald;
    util::setVerbose(false);

    accel::AcceleratorClass chip = accel::cloudClass();

    for (const char *which : {"UNet", "Resnet50"}) {
        cost::CostModel model;
        workload::Workload wl(std::string(which) + "-b4");
        wl.addModel(std::string(which) == "UNet" ? dnn::uNet()
                                                 : dnn::resnet50(),
                    4);

        std::printf("=== Fig. 12: %s batch 4 on cloud ===\n", which);
        util::Table table = bench::summaryTable();
        std::vector<util::DesignPoint> points;

        double best_fda_edp = 1e300;
        for (dataflow::DataflowStyle style : dataflow::kAllStyles) {
            accel::Accelerator acc =
                accel::Accelerator::makeFda(chip, style);
            sched::ScheduleSummary s =
                bench::runSchedule(model, wl, acc);
            bench::addSummaryRow(table, acc.name(), s);
            points.push_back(util::DesignPoint{s.latencySec,
                                               s.energyMj,
                                               acc.name()});
            best_fda_edp = std::min(best_fda_edp, s.edp());
        }

        dse::DsePoint hda = bench::bestHda(
            model, wl, chip,
            {dataflow::DataflowStyle::NVDLA,
             dataflow::DataflowStyle::ShiDiannao});
        bench::addSummaryRow(table,
                             "Maelstrom best: " +
                                 hda.accelerator.name(),
                             hda.summary);
        points.push_back(hda.designPoint());

        bench::NamedSummary rda = bench::rdaSummary(model, wl, chip);
        bench::addSummaryRow(table, rda.name, rda.summary);
        points.push_back(util::DesignPoint{rda.summary.latencySec,
                                           rda.summary.energyMj,
                                           rda.name});

        table.print(std::cout);

        std::printf("\nMaelstrom EDP vs best FDA: %s "
                    "(paper: -26.4%% UNet / -48.1%% ResNet50)\n",
                    bench::relPct(hda.summary.edp(), best_fda_edp)
                        .c_str());
        std::printf("RDA latency vs Maelstrom: %s, RDA energy vs "
                    "Maelstrom: %s\n\n",
                    bench::relPct(rda.summary.latencySec,
                                  hda.summary.latencySec)
                        .c_str(),
                    bench::relPct(rda.summary.energyMj,
                                  hda.summary.energyMj)
                        .c_str());
    }
    return 0;
}
