/**
 * @file
 * Fig. 13 reproduction: robustness to workload change. Maelstrom
 * designs are optimized for one workload (HDA-A for AR/VR-A, HDA-B
 * for AR/VR-B, HDA-M for MLPerf) on each accelerator class, then all
 * three workloads run on every fixed design with re-scheduling only.
 * FDA, SM-FDA (SFDA) and RDA averages are printed alongside.
 *
 * Expected shape (paper): running a workload on an HDA optimized for
 * a different workload costs only a few percent (paper: +4.0%
 * latency, +0.1% energy on average); HDAs keep their energy edge
 * over RDAs and their latency+energy edge over FDAs.
 */

#include <cstdio>
#include <iostream>
#include <map>

#include "bench_common.hh"

int
main()
{
    using namespace herald;
    util::setVerbose(false);

    std::vector<workload::Workload> workloads;
    workloads.push_back(workload::arvrA());
    workloads.push_back(workload::arvrB());
    workloads.push_back(workload::mlperf());
    const char *hda_names[] = {"HDA-A", "HDA-B", "HDA-M"};

    cost::CostModel model;

    // Accumulated (over the three classes) latency/energy per
    // (workload, design-family) cell, as in the figure's bars.
    struct Cell
    {
        double latency = 0.0;
        double energy = 0.0;
    };
    std::map<std::string, std::array<Cell, 3>> cells;

    for (const accel::AcceleratorClass &chip : accel::allClasses()) {
        // Optimize one Maelstrom design per workload on this class.
        std::vector<accel::Accelerator> hdas;
        for (const workload::Workload &wl : workloads) {
            dse::DsePoint best = bench::bestHda(
                model, wl, chip,
                {dataflow::DataflowStyle::NVDLA,
                 dataflow::DataflowStyle::ShiDiannao});
            hdas.push_back(best.accelerator);
        }

        for (std::size_t w = 0; w < workloads.size(); ++w) {
            const workload::Workload &wl = workloads[w];

            bench::NamedSummary fda = bench::bestFda(model, wl, chip);
            cells["FDA"][w].latency += fda.summary.latencySec;
            cells["FDA"][w].energy += fda.summary.energyMj;

            bench::NamedSummary sfda =
                bench::bestSmFda(model, wl, chip);
            cells["SFDA"][w].latency += sfda.summary.latencySec;
            cells["SFDA"][w].energy += sfda.summary.energyMj;

            bench::NamedSummary rda =
                bench::rdaSummary(model, wl, chip);
            cells["RDA"][w].latency += rda.summary.latencySec;
            cells["RDA"][w].energy += rda.summary.energyMj;

            for (std::size_t h = 0; h < hdas.size(); ++h) {
                sched::ScheduleSummary s =
                    bench::runSchedule(model, wl, hdas[h]);
                cells[hda_names[h]][w].latency += s.latencySec;
                cells[hda_names[h]][w].energy += s.energyMj;
            }
        }
    }

    const int n_classes = 3;
    std::printf("=== Fig. 13: average latency/energy across "
                "edge+mobile+cloud per workload ===\n\n");
    for (int metric = 0; metric < 2; ++metric) {
        util::Table table({metric == 0 ? "avg latency (ms)"
                                       : "avg energy (mJ)",
                           "AR/VR-A", "AR/VR-B", "MLPerf"});
        for (const char *family :
             {"FDA", "SFDA", "RDA", "HDA-A", "HDA-B", "HDA-M"}) {
            std::vector<std::string> row{family};
            for (int w = 0; w < 3; ++w) {
                const Cell &c = cells[family][w];
                double value = metric == 0
                                   ? c.latency / n_classes * 1e3
                                   : c.energy / n_classes;
                row.push_back(util::fmtDouble(value, 4));
            }
            table.addRow(row);
        }
        table.print(std::cout);
        std::printf("\n");
    }

    // Workload-change penalty: HDA-X running its own workload vs the
    // average over foreign HDAs running that workload.
    std::printf("Workload-change penalty (foreign HDA vs matched "
                "HDA):\n");
    double lat_pen = 0.0, en_pen = 0.0;
    int n = 0;
    for (int w = 0; w < 3; ++w) {
        const Cell &own = cells[hda_names[w]][w];
        for (int h = 0; h < 3; ++h) {
            if (h == w)
                continue;
            const Cell &foreign = cells[hda_names[h]][w];
            lat_pen += foreign.latency / own.latency;
            en_pen += foreign.energy / own.energy;
            ++n;
        }
    }
    std::printf("  latency %+.1f%%, energy %+.1f%%  (paper: +4.0%%, "
                "+0.1%%)\n",
                (lat_pen / n - 1.0) * 100.0,
                (en_pen / n - 1.0) * 100.0);
    return 0;
}
