/**
 * @file
 * Fig. 2 reproduction: EDP of Shi-diannao-, Eyeriss- and NVDLA-style
 * fixed-dataflow accelerators running ResNet50 and UNet on a common
 * 256-PE / 32 GB/s substrate.
 *
 * Expected shape (paper): NVDLA far ahead on ResNet50 (deep
 * channels); Shi-diannao/Eyeriss far ahead on UNet (shallow channels,
 * huge activations), where NVDLA's EDP explodes.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"
#include "dnn/model_zoo.hh"

int
main()
{
    using namespace herald;
    util::setVerbose(false);

    // The Fig. 2 substrate: 256 PEs, 32 GB/s NoC, 1 MiB buffer.
    accel::AcceleratorClass chip{"fig2", 256, 32.0, 2ULL << 20};
    cost::CostModel model;

    std::printf("=== Fig. 2: EDP of FDA styles on ResNet50 and UNet "
                "(256 PEs, 32 GB/s) ===\n\n");

    for (const char *which : {"Resnet50", "UNet"}) {
        workload::Workload wl(which);
        wl.addModel(std::string(which) == "Resnet50"
                        ? dnn::resnet50()
                        : dnn::uNet(),
                    1);

        util::Table table({"accelerator style", "latency (ms)",
                           "energy (mJ)", "EDP (mJ*s)",
                           "EDP vs best"});
        struct Row
        {
            std::string name;
            sched::ScheduleSummary s;
        };
        std::vector<Row> rows;
        double best = 1e300;
        for (dataflow::DataflowStyle style : dataflow::kAllStyles) {
            accel::Accelerator acc =
                accel::Accelerator::makeFda(chip, style);
            sched::ScheduleSummary s =
                bench::runSchedule(model, wl, acc);
            best = std::min(best, s.edp());
            rows.push_back(Row{dataflow::toString(style), s});
        }
        for (const Row &row : rows) {
            table.addRow(
                {row.name + " style",
                 util::fmtDouble(row.s.latencySec * 1e3, 4),
                 util::fmtDouble(row.s.energyMj, 4),
                 util::fmtDouble(row.s.edp(), 4),
                 util::fmtDouble(row.s.edp() / best, 3) + "x"});
        }
        std::printf("(%s)\n", which);
        table.print(std::cout);
        std::printf("\n");
    }
    return 0;
}
