/**
 * @file
 * Fig. 5 reproduction: the impact of dataflow style on three example
 * layers mapped onto 16-PE NVDLA-style and Shi-diannao-style FDAs.
 *
 *  - Layer 1: CONV2D with the aspect ratio of early classification
 *    layers (shallow channels, larger activation).
 *  - Layer 2: CONV2D with the aspect ratio of late classification
 *    layers (deep channels, tiny activation).
 *  - Layer 3: depth-wise CONV2D sized like layer 1.
 *
 * Expected shape (paper): NVDLA under-utilizes layers 1/3 (37.5% /
 * 12.5% there) and saturates layer 2; Shi-diannao saturates layers
 * 1/3 and under-utilizes layer 2 (25%); EDP follows utilization.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"
#include "cost/cost_model.hh"
#include "dnn/layer.hh"

int
main()
{
    using namespace herald;
    util::setVerbose(false);

    std::vector<dnn::Layer> layers{
        dnn::makeConv("Layer1 (early CONV2D)", 3, 3, 6, 6, 3, 3),
        dnn::makeConv("Layer2 (late CONV2D)", 4, 16, 4, 4, 3, 3),
        dnn::makeDepthwise("Layer3 (DWCONV)", 2, 6, 6, 3, 3)};

    cost::SubAccResources res;
    res.numPes = 16;
    res.bwGBps = 4.0;
    res.l2Bytes = 64ULL << 10;

    cost::CostModel model;

    std::printf("=== Fig. 5: mapping utilization and EDP of example "
                "layers on 16-PE FDAs ===\n\n");
    util::Table table({"layer", "style", "mapping util",
                       "EDP (units)", "preferred"});
    for (const dnn::Layer &layer : layers) {
        cost::LayerCost nvdla = model.evaluate(
            layer, dataflow::DataflowStyle::NVDLA, res);
        cost::LayerCost shi = model.evaluate(
            layer, dataflow::DataflowStyle::ShiDiannao, res);
        const char *pref =
            nvdla.edp() < shi.edp() ? "NVDLA" : "Shi-diannao";
        table.addRow({layer.name(), "NVDLA",
                      util::fmtDouble(nvdla.mappingUtil * 100.0, 3) +
                          "%",
                      util::fmtDouble(nvdla.cycles * nvdla.energyUnits,
                                      4),
                      nvdla.edp() < shi.edp() ? pref : ""});
        table.addRow({layer.name(), "Shi-diannao",
                      util::fmtDouble(shi.mappingUtil * 100.0, 3) +
                          "%",
                      util::fmtDouble(shi.cycles * shi.energyUnits, 4),
                      shi.edp() <= nvdla.edp() ? pref : ""});
    }
    table.print(std::cout);

    std::printf("\nExpected shape: Shi-diannao saturates layers 1/3 "
                "and wins their EDP;\nNVDLA saturates layer 2 and "
                "wins its EDP; NVDLA collapses on the DWCONV.\n");
    return 0;
}
