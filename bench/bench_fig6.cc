/**
 * @file
 * Fig. 6 reproduction: the impact of PE partitioning. A 16K-PE cloud
 * chip hosts a two-way HDA (sub-acc 1: Shi-diannao, sub-acc 2:
 * NVDLA) with naive 128/128 GB/s bandwidth partitioning; the PE split
 * sweeps from "almost everything on ACC1" to "almost everything on
 * ACC2" while Herald's scheduler places the AR/VR-A workload.
 *
 * Expected shape (paper): the even 8K/8K split is NOT optimal (17%
 * above the best EDP there); the curve has an interior optimum.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"

int
main()
{
    using namespace herald;
    util::setVerbose(false);

    workload::Workload wl = workload::arvrA();
    accel::AcceleratorClass chip = accel::cloudClass();
    cost::CostModel model;

    std::printf("=== Fig. 6: EDP vs PE partition (AR/VR-A, cloud, "
                "naive 128/128 GB/s BW) ===\n\n");

    const std::uint64_t step = 1024;
    util::Table table({"ACC1 (Shi) PEs", "ACC2 (NVDLA) PEs",
                       "latency (ms)", "energy (mJ)", "EDP (mJ*s)"});

    double best_edp = 1e300, even_edp = 0.0;
    std::uint64_t best_split = 0;
    for (std::uint64_t pe1 = step; pe1 < chip.numPes; pe1 += step) {
        std::uint64_t pe2 = chip.numPes - pe1;
        accel::Accelerator hda = accel::Accelerator::makeHda(
            chip,
            {dataflow::DataflowStyle::ShiDiannao,
             dataflow::DataflowStyle::NVDLA},
            {pe1, pe2}, {128.0, 128.0});
        sched::ScheduleSummary s = bench::runSchedule(model, wl, hda);
        table.addRow({std::to_string(pe1), std::to_string(pe2),
                      util::fmtDouble(s.latencySec * 1e3, 4),
                      util::fmtDouble(s.energyMj, 4),
                      util::fmtDouble(s.edp(), 4)});
        if (s.edp() < best_edp) {
            best_edp = s.edp();
            best_split = pe1;
        }
        if (pe1 == chip.numPes / 2)
            even_edp = s.edp();
    }
    table.print(std::cout);

    std::printf("\nBest partition: %llu/%llu (EDP %.4e)\n",
                static_cast<unsigned long long>(best_split),
                static_cast<unsigned long long>(chip.numPes -
                                                best_split),
                best_edp);
    std::printf("Even 8192/8192 split EDP: %.4e (%s vs best)\n",
                even_edp, bench::relPct(even_edp, best_edp).c_str());
    std::printf("Expected shape: even split sub-optimal (paper: +17%% "
                "EDP vs optimal).\n");
    return 0;
}
