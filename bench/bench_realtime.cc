/**
 * @file
 * Real-time scenario benchmark: SLA outcomes (deadline miss counts,
 * p50/p99 frame latency) of FIFO vs. deadline-aware (EDF) scheduling
 * on the factory real-time scenarios, plus scheduler throughput on
 * periodic workloads and a timed SLA-objective partition sweep.
 * Emits machine-readable JSON (default BENCH_realtime.json) so
 * successive PRs can track both the SLA quality and the perf
 * trajectory.
 *
 * Usage:
 *   bench_realtime [--threads N] [--out FILE] [--small]
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "util/thread_pool.hh"

namespace
{

using namespace herald;
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start)
        .count();
}

struct ScenarioResult
{
    std::string name;
    std::size_t frames = 0;
    std::size_t framesWithDeadline = 0;
    std::size_t fifoMisses = 0;
    std::size_t edfMisses = 0;
    double fifoP99Ms = 0.0;
    double edfP99Ms = 0.0;
    double edfP50Ms = 0.0;
    double schedUsPerLayer = 0.0;
};

sched::ScheduleSummary
runOnce(cost::CostModel &model, const workload::Workload &wl,
        const accel::Accelerator &acc, bool deadline_aware)
{
    sched::SchedulerOptions opts;
    opts.deadlineAware = deadline_aware;
    sched::HeraldScheduler scheduler(model, opts);
    sched::Schedule s = scheduler.schedule(wl, acc);
    std::string issue = s.validate(wl, acc);
    if (!issue.empty())
        util::panic("invalid schedule on ", acc.name(), ": ", issue);
    return s.finalize(wl, acc, model.energyModel());
}

ScenarioResult
runScenario(const workload::Workload &wl,
            const accel::Accelerator &acc)
{
    cost::CostModel model;
    sched::ScheduleSummary fifo = runOnce(model, wl, acc, false);
    sched::ScheduleSummary edf = runOnce(model, wl, acc, true);

    ScenarioResult r;
    r.name = wl.name();
    r.frames = edf.sla.frames;
    r.framesWithDeadline = edf.sla.framesWithDeadline;
    r.fifoMisses = fifo.sla.deadlineMisses;
    r.edfMisses = edf.sla.deadlineMisses;
    r.fifoP99Ms = fifo.sla.p99LatencyCycles / 1e6;
    r.edfP99Ms = edf.sla.p99LatencyCycles / 1e6;
    r.edfP50Ms = edf.sla.p50LatencyCycles / 1e6;

    // Scheduler throughput on the periodic workload, warm cache.
    sched::SchedulerOptions opts;
    opts.deadlineAware = true;
    sched::HeraldScheduler scheduler(model, opts);
    scheduler.schedule(wl, acc);
    const int reps = 5;
    Clock::time_point start = Clock::now();
    for (int i = 0; i < reps; ++i)
        scheduler.schedule(wl, acc);
    r.schedUsPerLayer = secondsSince(start) / reps * 1e6 /
                        static_cast<double>(wl.totalLayers());
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    util::setVerbose(false);

    std::size_t threads = 0;
    std::string out_path = "BENCH_realtime.json";
    bool small = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
            threads = static_cast<std::size_t>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (std::strcmp(argv[i], "--out") == 0 &&
                   i + 1 < argc) {
            out_path = argv[++i];
        } else if (std::strcmp(argv[i], "--small") == 0) {
            small = true;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--threads N] [--out FILE] "
                         "[--small]\n",
                         argv[0]);
            return 1;
        }
    }

    std::FILE *json = std::fopen(out_path.c_str(), "w");
    if (!json) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }

    accel::AcceleratorClass chip = accel::edgeClass();
    accel::Accelerator acc = accel::Accelerator::makeHda(
        chip,
        {dataflow::DataflowStyle::NVDLA,
         dataflow::DataflowStyle::ShiDiannao},
        {chip.numPes / 2, chip.numPes / 2},
        {chip.bwGBps / 2, chip.bwGBps / 2});

    const int frames60 = small ? 2 : 4;
    std::vector<ScenarioResult> results;
    results.push_back(
        runScenario(workload::arvrA60fps(frames60), acc));
    results.push_back(
        runScenario(workload::mixedTenantScenario(frames60), acc));

    std::printf("=== Real-time scenarios on %s (%s) ===\n",
                acc.name().c_str(), small ? "small" : "full");
    for (const ScenarioResult &r : results) {
        std::printf("%-24s %zu frames: FIFO %zu/%zu misses "
                    "(p99 %.2f ms) | EDF %zu/%zu misses "
                    "(p50 %.2f, p99 %.2f ms) | %.2f us/layer\n",
                    r.name.c_str(), r.frames, r.fifoMisses,
                    r.framesWithDeadline, r.fifoP99Ms, r.edfMisses,
                    r.framesWithDeadline, r.edfP50Ms, r.edfP99Ms,
                    r.schedUsPerLayer);
    }

    // Timed SLA-objective partition sweep (perf trajectory).
    cost::CostModel model;
    dse::HeraldOptions dse_opts;
    dse_opts.partition.peGranularity =
        chip.numPes / (small ? 4 : 16);
    dse_opts.partition.bwGranularity =
        chip.bwGBps / (small ? 4 : 8);
    dse_opts.objective = dse::Objective::SlaViolations;
    dse_opts.scheduler.deadlineAware = true;
    dse_opts.numThreads = threads;
    dse::Herald herald(model, dse_opts);
    workload::Workload sweep_wl =
        workload::mixedTenantScenario(small ? 1 : 2);
    Clock::time_point start = Clock::now();
    dse::DseResult dse_result = herald.explore(
        sweep_wl, chip,
        {dataflow::DataflowStyle::NVDLA,
         dataflow::DataflowStyle::ShiDiannao});
    double sweep_seconds = secondsSince(start);
    std::printf("SLA sweep: %zu candidates in %.3f s, best %s "
                "(%zu misses)\n",
                dse_result.points.size(), sweep_seconds,
                dse_result.best().accelerator.name().c_str(),
                dse_result.best().summary.sla.deadlineMisses);

    std::fprintf(json, "{\n  \"chip\": \"%s\",\n  \"grid\": \"%s\","
                       "\n  \"scenarios\": [\n",
                 chip.name.c_str(), small ? "small" : "full");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const ScenarioResult &r = results[i];
        std::fprintf(
            json,
            "    {\"name\": \"%s\", \"frames\": %zu, "
            "\"frames_with_deadline\": %zu, "
            "\"fifo_misses\": %zu, \"edf_misses\": %zu, "
            "\"fifo_p99_ms\": %.4f, \"edf_p50_ms\": %.4f, "
            "\"edf_p99_ms\": %.4f, "
            "\"scheduler_us_per_layer\": %.3f}%s\n",
            r.name.c_str(), r.frames, r.framesWithDeadline,
            r.fifoMisses, r.edfMisses, r.fifoP99Ms, r.edfP50Ms,
            r.edfP99Ms, r.schedUsPerLayer,
            i + 1 < results.size() ? "," : "");
    }
    std::fprintf(json,
                 "  ],\n"
                 "  \"sla_sweep_candidates\": %zu,\n"
                 "  \"sla_sweep_seconds\": %.6f,\n"
                 "  \"sla_sweep_best_misses\": %zu\n"
                 "}\n",
                 dse_result.points.size(), sweep_seconds,
                 dse_result.best().summary.sla.deadlineMisses);
    std::fclose(json);
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
