/**
 * @file
 * Real-time scenario benchmark: SLA outcomes (deadline miss counts,
 * miss rates, dropped frames, p50/p99 frame latency) of every
 * instance-selection policy — FIFO, EDF, LST, LST with hopeless-
 * frame dropping, and LST with layer-boundary preemption points
 * (with and without dynamic doomed-frame shedding) — on the factory
 * real-time scenarios *and* their over-subscribed variants
 * (including the interactive mix where preemption strictly beats
 * run-to-completion dispatch), plus scheduler throughput on periodic
 * workloads and a timed SLA-objective partition sweep. Emits
 * machine-readable JSON (default BENCH_realtime.json) so successive
 * PRs can track scheduling quality (not just throughput).
 *
 * Latency percentiles are honest: a dropped or never-scheduled frame
 * has unbounded latency, which serializes as -1.0 in the JSON (JSON
 * has no Infinity literal).
 *
 * Usage:
 *   bench_realtime [--threads N] [--out FILE] [--small]
 *                  [--check-against BASELINE.json] [--tolerance PCT]
 *                  [--check-only]
 *
 * --check-against enables the CI regression gate: after emitting the
 * JSON it is compared against the committed baseline and the run
 * exits non-zero when any (scenario, policy) deadline-miss count
 * rises above the baseline (miss counts are deterministic, so no
 * tolerance applies; --tolerance is accepted for symmetry with
 * bench_sched_throughput). --check-only skips the benchmarks and
 * only re-runs the comparison against the existing --out file.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_baseline.hh"
#include "bench_common.hh"
#include "util/thread_pool.hh"

namespace
{

using namespace herald;
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start)
        .count();
}

/** JSON has no inf: unbounded latencies serialize as -1. */
double
jsonSafeMs(double cycles)
{
    return std::isfinite(cycles) ? cycles / 1e6 : -1.0;
}

struct PolicyResult
{
    std::string label;
    std::size_t misses = 0;
    std::size_t dropped = 0;
    double missRate = 0.0;
    double p50Ms = 0.0; //!< -1 when unbounded
    double p99Ms = 0.0; //!< -1 when unbounded
};

struct ScenarioResult
{
    std::string name;
    std::size_t frames = 0;
    std::size_t framesWithDeadline = 0;
    std::vector<PolicyResult> policies;
    double schedUsPerLayer = 0.0;

    const PolicyResult &
    byLabel(const char *label) const
    {
        for (const PolicyResult &p : policies) {
            if (p.label == label)
                return p;
        }
        util::panic("no policy result ", label);
    }
};

struct PolicyConfig
{
    const char *label;
    sched::Policy policy;
    sched::DropPolicy drop;
    sched::Preemption preemption;
};

const PolicyConfig kPolicies[] = {
    {"fifo", sched::Policy::Fifo, sched::DropPolicy::None,
     sched::Preemption::Off},
    {"edf", sched::Policy::Edf, sched::DropPolicy::None,
     sched::Preemption::Off},
    {"lst", sched::Policy::Lst, sched::DropPolicy::None,
     sched::Preemption::Off},
    {"lst_drop", sched::Policy::Lst,
     sched::DropPolicy::HopelessFrames, sched::Preemption::Off},
    {"lst_preempt", sched::Policy::Lst, sched::DropPolicy::None,
     sched::Preemption::AtLayerBoundary},
    {"lst_preempt_doom", sched::Policy::Lst,
     sched::DropPolicy::DoomedFrames,
     sched::Preemption::AtLayerBoundary},
};

ScenarioResult
runScenario(const workload::Workload &wl,
            const accel::Accelerator &acc)
{
    cost::CostModel model;
    ScenarioResult r;
    r.name = wl.name();

    for (const PolicyConfig &config : kPolicies) {
        sched::SchedulerOptions opts;
        opts.policy = config.policy;
        opts.dropPolicy = config.drop;
        opts.preemption = config.preemption;
        sched::HeraldScheduler scheduler(model, opts);
        sched::Schedule s = scheduler.schedule(wl, acc);
        std::string issue = s.validate(wl, acc);
        if (!issue.empty())
            util::panic("invalid schedule on ", acc.name(), ": ",
                        issue);
        sched::SlaStats sla = s.computeSla(wl);
        r.frames = sla.frames;
        r.framesWithDeadline = sla.framesWithDeadline;
        PolicyResult p;
        p.label = config.label;
        p.misses = sla.deadlineMisses;
        p.dropped = sla.droppedFrames;
        p.missRate = sla.missRate;
        p.p50Ms = jsonSafeMs(sla.p50LatencyCycles);
        p.p99Ms = jsonSafeMs(sla.p99LatencyCycles);
        r.policies.push_back(std::move(p));
    }

    // Scheduler throughput on the periodic workload, warm cache.
    sched::SchedulerOptions opts;
    opts.policy = sched::Policy::Edf;
    sched::HeraldScheduler scheduler(model, opts);
    scheduler.schedule(wl, acc);
    const int reps = 5;
    Clock::time_point start = Clock::now();
    for (int i = 0; i < reps; ++i)
        scheduler.schedule(wl, acc);
    r.schedUsPerLayer = secondsSince(start) / reps * 1e6 /
                        static_cast<double>(wl.totalLayers());
    return r;
}

/**
 * The regression gate (--check-against): every (scenario, policy)
 * deadline-miss count in the baseline must not be exceeded by the
 * current run, matched by scenario name and policy label. Returns 0
 * when within bounds.
 */
int
checkAgainstBaseline(const std::string &current_path,
                     const std::string &baseline_path,
                     double tolerance)
{
    benchgate::FlatJson cur =
        benchgate::parseJsonFile(current_path);
    benchgate::FlatJson base =
        benchgate::parseJsonFile(baseline_path);
    benchgate::BaselineChecker chk(cur, base, tolerance);

    const std::size_t n_base = base.arrayLen("scenarios", "frames");
    const std::size_t n_cur = cur.arrayLen("scenarios", "frames");
    for (std::size_t i = 0; i < n_base; ++i) {
        std::string bscen = "scenarios." + std::to_string(i);
        const std::string *name = base.findString(bscen + ".name");
        if (!name)
            continue;
        // Match the scenario by name in the current emission.
        std::string cscen;
        for (std::size_t j = 0; j < n_cur; ++j) {
            std::string cand = "scenarios." + std::to_string(j);
            const std::string *cname =
                cur.findString(cand + ".name");
            if (cname && *cname == *name) {
                cscen = cand;
                break;
            }
        }
        if (cscen.empty()) {
            chk.failure("scenarios[" + *name + "]",
                        "scenario missing from current run");
            continue;
        }
        benchgate::checkPolicyMissRows(chk, cur, base,
                                       cscen + ".policies",
                                       bscen + ".policies",
                                       "scenarios[" + *name + "]");
    }
    return chk.verdict("bench_realtime") ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    util::setVerbose(false);

    std::size_t threads = 0;
    std::string out_path = "BENCH_realtime.json";
    std::string baseline_path;
    double tolerance = 25.0;
    bool check_only = false;
    bool small = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
            threads = static_cast<std::size_t>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (std::strcmp(argv[i], "--out") == 0 &&
                   i + 1 < argc) {
            out_path = argv[++i];
        } else if (std::strcmp(argv[i], "--check-against") == 0 &&
                   i + 1 < argc) {
            baseline_path = argv[++i];
        } else if (std::strcmp(argv[i], "--tolerance") == 0 &&
                   i + 1 < argc) {
            tolerance = benchgate::parseToleranceArg(argv[++i]);
        } else if (std::strcmp(argv[i], "--check-only") == 0) {
            check_only = true;
        } else if (std::strcmp(argv[i], "--small") == 0) {
            small = true;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--threads N] [--out FILE] "
                         "[--small] [--check-against BASELINE] "
                         "[--tolerance PCT] [--check-only]\n",
                         argv[0]);
            return 1;
        }
    }
    if (check_only) {
        if (baseline_path.empty()) {
            std::fprintf(stderr,
                         "--check-only requires --check-against\n");
            return 1;
        }
        return checkAgainstBaseline(out_path, baseline_path,
                                    tolerance);
    }

    std::FILE *json = std::fopen(out_path.c_str(), "w");
    if (!json) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }

    accel::AcceleratorClass chip = accel::edgeClass();
    accel::Accelerator acc = accel::Accelerator::makeHda(
        chip,
        {dataflow::DataflowStyle::NVDLA,
         dataflow::DataflowStyle::ShiDiannao},
        {chip.numPes / 2, chip.numPes / 2},
        {chip.bwGBps / 2, chip.bwGBps / 2});

    const int frames60 = small ? 2 : 4;
    const int overloaded60 = small ? 4 : 8;
    std::vector<ScenarioResult> results;
    results.push_back(
        runScenario(workload::arvrA60fps(frames60), acc));
    results.push_back(
        runScenario(workload::mixedTenantScenario(frames60), acc));
    results.push_back(
        runScenario(workload::arvrAOverloaded(overloaded60), acc));
    results.push_back(
        runScenario(workload::mixedTenantOverloaded(overloaded60),
                    acc));
    results.push_back(
        runScenario(workload::interactiveOverloaded(overloaded60),
                    acc));

    std::printf("=== Real-time scenarios on %s (%s) ===\n",
                acc.name().c_str(), small ? "small" : "full");
    for (const ScenarioResult &r : results) {
        std::printf("%-24s %zu frames (%zu with deadline), "
                    "%.2f us/layer\n",
                    r.name.c_str(), r.frames, r.framesWithDeadline,
                    r.schedUsPerLayer);
        for (const PolicyResult &p : r.policies) {
            std::printf("    %-9s %2zu misses (rate %.2f, "
                        "%zu dropped) p50 %s p99 %s\n",
                        p.label.c_str(), p.misses, p.missRate,
                        p.dropped,
                        p.p50Ms < 0 ? "inf"
                                    : std::to_string(p.p50Ms).c_str(),
                        p.p99Ms < 0
                            ? "inf"
                            : std::to_string(p.p99Ms).c_str());
        }
    }

    // Timed SLA-objective partition sweep (perf trajectory) —
    // hardware/policy co-design: LST + drop on the over-subscribed
    // tenant mix.
    cost::CostModel model;
    dse::HeraldOptions dse_opts;
    dse_opts.partition.peGranularity =
        chip.numPes / (small ? 4 : 16);
    dse_opts.partition.bwGranularity =
        chip.bwGBps / (small ? 4 : 8);
    dse_opts.objective = dse::Objective::SlaViolations;
    dse_opts.scheduler.policy = sched::Policy::Lst;
    dse_opts.scheduler.dropPolicy =
        sched::DropPolicy::HopelessFrames;
    dse_opts.numThreads = threads;
    dse::Herald herald(model, dse_opts);
    workload::Workload sweep_wl =
        workload::mixedTenantOverloaded(small ? 2 : 4);
    Clock::time_point start = Clock::now();
    dse::DseResult dse_result = herald.explore(
        sweep_wl, chip,
        {dataflow::DataflowStyle::NVDLA,
         dataflow::DataflowStyle::ShiDiannao});
    double sweep_seconds = secondsSince(start);
    std::printf("SLA sweep (LST+drop): %zu candidates in %.3f s, "
                "best %s (%zu misses, %zu dropped)\n",
                dse_result.points.size(), sweep_seconds,
                dse_result.best().accelerator.name().c_str(),
                dse_result.best().summary.sla.deadlineMisses,
                dse_result.best().summary.sla.droppedFrames);

    std::fprintf(json, "{\n  \"chip\": \"%s\",\n  \"grid\": \"%s\","
                       "\n  \"scenarios\": [\n",
                 chip.name.c_str(), small ? "small" : "full");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const ScenarioResult &r = results[i];
        // Legacy flat fields ride along for trajectory continuity;
        // the per-policy columns are the real payload.
        const PolicyResult &fifo = r.byLabel("fifo");
        const PolicyResult &edf = r.byLabel("edf");
        std::fprintf(
            json,
            "    {\"name\": \"%s\", \"frames\": %zu, "
            "\"frames_with_deadline\": %zu, "
            "\"fifo_misses\": %zu, \"edf_misses\": %zu, "
            "\"fifo_p99_ms\": %.4f, \"edf_p50_ms\": %.4f, "
            "\"edf_p99_ms\": %.4f, "
            "\"scheduler_us_per_layer\": %.3f,\n"
            "     \"policies\": [\n",
            r.name.c_str(), r.frames, r.framesWithDeadline,
            fifo.misses, edf.misses, fifo.p99Ms, edf.p50Ms,
            edf.p99Ms, r.schedUsPerLayer);
        for (std::size_t k = 0; k < r.policies.size(); ++k) {
            const PolicyResult &p = r.policies[k];
            std::fprintf(
                json,
                "       {\"policy\": \"%s\", \"misses\": %zu, "
                "\"miss_rate\": %.4f, \"dropped\": %zu, "
                "\"p50_ms\": %.4f, \"p99_ms\": %.4f}%s\n",
                p.label.c_str(), p.misses, p.missRate, p.dropped,
                p.p50Ms, p.p99Ms,
                k + 1 < r.policies.size() ? "," : "");
        }
        std::fprintf(json, "     ]}%s\n",
                     i + 1 < results.size() ? "," : "");
    }
    std::fprintf(json,
                 "  ],\n"
                 "  \"sla_sweep_candidates\": %zu,\n"
                 "  \"sla_sweep_seconds\": %.6f,\n"
                 "  \"sla_sweep_best_misses\": %zu,\n"
                 "  \"sla_sweep_best_dropped\": %zu\n"
                 "}\n",
                 dse_result.points.size(), sweep_seconds,
                 dse_result.best().summary.sla.deadlineMisses,
                 dse_result.best().summary.sla.droppedFrames);
    std::fclose(json);
    std::printf("wrote %s\n", out_path.c_str());
    if (!baseline_path.empty())
        return checkAgainstBaseline(out_path, baseline_path,
                                    tolerance);
    return 0;
}
