/**
 * @file
 * Elastic-repartitioning benchmark: runtime PE migration vs the best
 * static partition. Runs workload::shiftingLoadFactory — two tenants
 * with opposite dataflow affinity whose load peaks in different
 * halves of the run — on the edge-class NVDLA+Shi-diannao HDA across
 * a grid of static PE splits, and schedules every split twice:
 *
 *  - static: the split is frozen for the whole run
 *    (sched::Reconfig::Off) — the pre-elastic behavior;
 *  - elastic: the same split is only the *starting* partition; the
 *    backlog-skew policy (sched::Reconfig::BacklogSkew) migrates PE
 *    quanta between the sub-accelerators at layer boundaries, paying
 *    the modeled drain + rewire outage for every move.
 *
 * The run fails (non-zero exit) unless (a) for every starting split
 * the elastic miss count is no worse than the static one, (b) the
 * best elastic cell strictly beats the best static cell — no frozen
 * partition serves both phases, which is the entire point of elastic
 * repartitioning, so CI asserts the gap on every build — and (c)
 * every elastic schedule that migrated validates cleanly against its
 * reconfiguration windows.
 *
 * Usage mirrors bench_realtime:
 *   bench_repartition [--out FILE] [--small]
 *                     [--check-against BASELINE.json]
 *                     [--tolerance PCT] [--check-only]
 *
 * Miss counts are deterministic (the scheduler is bit-identical
 * across thread counts and reruns), so the --check-against gate
 * compares them exactly, tolerance-free.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_baseline.hh"
#include "bench_common.hh"

namespace
{

using namespace herald;

/** NVDLA-side PE shares of the 1024-PE edge chip swept as starting
 * partitions (the Shi side gets the remainder of PEs and the
 * proportional bandwidth share). */
const std::uint64_t kNvdlaPes[] = {256, 384, 512, 640, 768};

struct CellResult
{
    std::string label; //!< "<static|elastic>/<nvdla PEs>"
    bool elastic = false;
    std::uint64_t nvdlaPes = 0;
    std::size_t misses = 0;
    std::size_t framesWithDeadline = 0;
    std::size_t reconfigs = 0;
    std::uint64_t movedPes = 0;
    double missRate = 0.0;
};

int
checkAgainstBaseline(const std::string &current_path,
                     const std::string &baseline_path,
                     double tolerance)
{
    benchgate::FlatJson cur = benchgate::parseJsonFile(current_path);
    benchgate::FlatJson base =
        benchgate::parseJsonFile(baseline_path);
    benchgate::BaselineChecker chk(cur, base, tolerance);
    // Rows are labeled "<static|elastic>/<nvdla PEs>"; miss counts
    // are deterministic, so any rise over the committed baseline is
    // a scheduling- or migration-quality regression.
    benchgate::checkPolicyMissRows(chk, cur, base, "cells", "cells",
                                   "cells");
    return chk.verdict("bench_repartition") ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    util::setVerbose(false);

    std::string out_path = "BENCH_repartition.json";
    std::string baseline_path;
    double tolerance = 25.0;
    bool check_only = false;
    bool small = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else if (std::strcmp(argv[i], "--check-against") == 0 &&
                   i + 1 < argc) {
            baseline_path = argv[++i];
        } else if (std::strcmp(argv[i], "--tolerance") == 0 &&
                   i + 1 < argc) {
            tolerance = benchgate::parseToleranceArg(argv[++i]);
        } else if (std::strcmp(argv[i], "--check-only") == 0) {
            check_only = true;
        } else if (std::strcmp(argv[i], "--small") == 0) {
            small = true;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--out FILE] [--small] "
                         "[--check-against BASELINE] "
                         "[--tolerance PCT] [--check-only]\n",
                         argv[0]);
            return 1;
        }
    }
    if (check_only) {
        if (baseline_path.empty()) {
            std::fprintf(stderr,
                         "--check-only requires --check-against\n");
            return 1;
        }
        return checkAgainstBaseline(out_path, baseline_path,
                                    tolerance);
    }

    accel::AcceleratorClass chip = accel::edgeClass();
    const int frames = small ? 8 : 16;
    workload::Workload wl = workload::shiftingLoadFactory(frames);
    cost::CostModel model;

    // The backlog-skew policy the elastic cells run. The threshold
    // is a few BrQ frame periods of skew — early enough to catch the
    // phase shift, late enough that a single long layer does not
    // trigger a spurious migration.
    sched::ReconfigOptions elastic_policy;
    elastic_policy.policy = sched::Reconfig::BacklogSkew;
    elastic_policy.skewThresholdCycles = 3e7;
    elastic_policy.migrationQuantumPes = 128;
    elastic_policy.drainCycles = 5e4;
    elastic_policy.perPeRewireCycles = 100.0;
    elastic_policy.cooldownCycles = 1e6;

    std::vector<CellResult> cells;
    bool ok = true;
    std::size_t best_static = static_cast<std::size_t>(-1);
    std::size_t best_elastic = static_cast<std::size_t>(-1);
    std::size_t total_reconfigs = 0;
    std::printf("=== Elastic repartitioning on %s chip (%s), "
                "%zu frames ===\n",
                chip.name.c_str(), small ? "small" : "full",
                wl.numInstances());
    for (std::uint64_t pes0 : kNvdlaPes) {
        const std::uint64_t pes1 = chip.numPes - pes0;
        const double bw0 = chip.bwGBps * static_cast<double>(pes0) /
                           static_cast<double>(chip.numPes);
        accel::Accelerator acc = accel::Accelerator::makeHda(
            chip,
            {dataflow::DataflowStyle::NVDLA,
             dataflow::DataflowStyle::ShiDiannao},
            {pes0, pes1}, {bw0, chip.bwGBps - bw0});

        std::size_t static_misses = 0;
        for (int elastic = 0; elastic <= 1; ++elastic) {
            sched::SchedulerOptions opts;
            opts.policy = sched::Policy::Edf;
            if (elastic)
                opts.reconfig = elastic_policy;
            sched::HeraldScheduler scheduler(model, opts);
            sched::Schedule s = scheduler.schedule(wl, acc);
            std::string issue = s.validate(wl, acc, nullptr);
            if (!issue.empty())
                util::panic("invalid ", elastic ? "elastic" : "static",
                            " schedule at split ", pes0, "/", pes1,
                            ": ", issue);
            sched::SlaStats sla = s.computeSla(wl);

            CellResult c;
            c.label = std::string(elastic ? "elastic" : "static") +
                      "/" + std::to_string(pes0);
            c.elastic = elastic != 0;
            c.nvdlaPes = pes0;
            c.misses = sla.deadlineMisses;
            c.framesWithDeadline = sla.framesWithDeadline;
            c.reconfigs = s.reconfigEvents().size();
            for (const sched::ReconfigEvent &ev : s.reconfigEvents())
                c.movedPes += ev.movedPes;
            c.missRate = sla.missRate;

            std::printf("  %-12s %2zu/%zu misses, %zu migrations "
                        "(%llu PEs moved)\n",
                        c.label.c_str(), c.misses,
                        c.framesWithDeadline, c.reconfigs,
                        static_cast<unsigned long long>(c.movedPes));

            if (elastic) {
                total_reconfigs += c.reconfigs;
                best_elastic = std::min(best_elastic, c.misses);
                if (c.misses > static_misses) {
                    std::fprintf(stderr,
                                 "FAIL %s: elastic misses (%zu) "
                                 "worse than the static split "
                                 "(%zu)\n",
                                 c.label.c_str(), c.misses,
                                 static_misses);
                    ok = false;
                }
            } else {
                static_misses = c.misses;
                best_static = std::min(best_static, c.misses);
            }
            cells.push_back(std::move(c));
        }
    }

    std::printf("best static %zu misses, best elastic %zu misses, "
                "%zu migrations total\n",
                best_static, best_elastic, total_reconfigs);
    if (best_elastic >= best_static) {
        std::fprintf(stderr,
                     "FAIL: best elastic cell (%zu misses) does not "
                     "strictly beat the best static partition (%zu "
                     "misses)\n",
                     best_elastic, best_static);
        ok = false;
    }
    if (total_reconfigs == 0) {
        std::fprintf(stderr, "FAIL: no elastic cell migrated — the "
                             "backlog-skew policy never fired\n");
        ok = false;
    }

    std::FILE *json = std::fopen(out_path.c_str(), "w");
    if (!json) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    std::fprintf(json,
                 "{\n  \"chip\": \"%s\",\n  \"grid\": \"%s\",\n"
                 "  \"frames\": %zu,\n"
                 "  \"best_static_misses\": %zu,\n"
                 "  \"best_elastic_misses\": %zu,\n"
                 "  \"cells\": [\n",
                 chip.name.c_str(), small ? "small" : "full",
                 wl.numInstances(), best_static, best_elastic);
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const CellResult &c = cells[i];
        std::fprintf(
            json,
            "    {\"policy\": \"%s\", \"elastic\": %s, "
            "\"nvdla_pes\": %llu, \"misses\": %zu, "
            "\"frames_with_deadline\": %zu, \"reconfigs\": %zu, "
            "\"moved_pes\": %llu, \"miss_rate\": %.4f}%s\n",
            c.label.c_str(), c.elastic ? "true" : "false",
            static_cast<unsigned long long>(c.nvdlaPes), c.misses,
            c.framesWithDeadline, c.reconfigs,
            static_cast<unsigned long long>(c.movedPes), c.missRate,
            i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote %s\n", out_path.c_str());

    if (!ok)
        return 1;
    if (!baseline_path.empty())
        return checkAgainstBaseline(out_path, baseline_path,
                                    tolerance);
    return 0;
}
