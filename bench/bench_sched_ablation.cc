/**
 * @file
 * Scheduler ablation (Sec. V-B "Efficacy of Scheduling Algorithm"):
 * Herald's scheduler vs the greedy baseline on Maelstrom for each
 * workload, plus ablations of the individual features (load
 * balancing, idle-time post-processing, ordering heuristic).
 *
 * Expected shape (paper): Herald's scheduler finds schedules with
 * lower EDP than the greedy per-layer-best scheduler (paper: 24.1%
 * less EDP on average).
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"
#include "sched/greedy_scheduler.hh"

int
main()
{
    using namespace herald;
    util::setVerbose(false);

    std::vector<workload::Workload> workloads;
    workloads.push_back(workload::arvrA());
    workloads.push_back(workload::arvrB());
    workloads.push_back(workload::mlperf());

    cost::CostModel model;
    accel::AcceleratorClass chip = accel::mobileClass();

    std::printf("=== Scheduler ablation on Maelstrom (mobile) ===\n\n");

    double herald_vs_greedy = 0.0;
    for (const workload::Workload &wl : workloads) {
        // Fix the Maelstrom design found for this workload.
        dse::DsePoint best = bench::bestHda(
            model, wl, chip,
            {dataflow::DataflowStyle::NVDLA,
             dataflow::DataflowStyle::ShiDiannao});
        const accel::Accelerator &acc = best.accelerator;

        struct Variant
        {
            std::string name;
            sched::SchedulerOptions opts;
        };
        std::vector<Variant> variants;
        variants.push_back({"Herald (full)", {}});
        {
            sched::SchedulerOptions v;
            v.loadBalance = false;
            v.postProcess = false;
            variants.push_back({"greedy baseline", v});
        }
        {
            sched::SchedulerOptions v;
            v.loadBalance = false;
            variants.push_back({"no load balancing", v});
        }
        {
            sched::SchedulerOptions v;
            v.postProcess = false;
            variants.push_back({"no post-processing", v});
        }
        {
            sched::SchedulerOptions v;
            v.ordering = sched::Ordering::DepthFirst;
            variants.push_back({"depth-first ordering", v});
        }

        util::Table table({"scheduler variant", "latency (ms)",
                           "energy (mJ)", "EDP (mJ*s)",
                           "EDP vs Herald"});
        double herald_edp = 0.0, greedy_edp = 0.0;
        for (const Variant &variant : variants) {
            sched::ScheduleSummary s =
                bench::runSchedule(model, wl, acc, variant.opts);
            if (variant.name == "Herald (full)")
                herald_edp = s.edp();
            if (variant.name == "greedy baseline")
                greedy_edp = s.edp();
            table.addRow(
                {variant.name,
                 util::fmtDouble(s.latencySec * 1e3, 4),
                 util::fmtDouble(s.energyMj, 4),
                 util::fmtDouble(s.edp(), 4),
                 herald_edp > 0.0
                     ? bench::relPct(s.edp(), herald_edp)
                     : "-"});
        }
        std::printf("%s on %s:\n", wl.name().c_str(),
                    acc.name().c_str());
        table.print(std::cout);
        std::printf("\n");
        herald_vs_greedy += herald_edp / greedy_edp;
    }

    std::printf("Average Herald EDP vs greedy: %+.1f%% (paper: "
                "-24.1%%)\n",
                (herald_vs_greedy / workloads.size() - 1.0) * 100.0);
    return 0;
}
