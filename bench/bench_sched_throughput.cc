/**
 * @file
 * Scheduler throughput benchmark: layers-scheduled/sec of the
 * table-driven, event-dispatch scheduler on large periodic
 * real-time scenarios (default: the ~10k-frame AR/VR-A stream mix),
 * compared against the pre-table reference implementation
 * (sched::referenceSchedule), plus an end-to-end DSE
 * comparison on a small partition sweep. Emits machine-readable JSON
 * (default BENCH_sched.json) so successive PRs can track the perf
 * trajectory.
 *
 * Usage:
 *   bench_sched_throughput [--small] [--frames60 N] [--threads N]
 *                          [--skip-reference] [--max-seconds S]
 *                          [--out FILE]
 *                          [--check-against BASELINE.json]
 *                          [--tolerance PCT] [--check-only]
 *
 * --small           CI-sized scenario (~1k frames) instead of ~10k
 * --frames60 N      override the 60-FPS frame count directly
 * --threads N       LayerCostTable prefill worker count (default:
 *                   HERALD_THREADS, then hardware concurrency)
 * --skip-reference  skip the slow reference-scheduler timings
 * --max-seconds S   smoke bound: exit non-zero when one table-path
 *                   schedule of the big scenario takes longer than S
 * --check-against F regression gate: after emitting the JSON,
 *                   compare it against baseline F and exit non-zero
 *                   when any policy's layers/sec drops more than the
 *                   tolerance below the baseline or any policy's
 *                   overloaded-scenario miss count rises (see
 *                   bench_baseline.hh; baselines live in
 *                   bench/baselines/, regenerate with the
 *                   refresh-baselines target)
 * --tolerance PCT   allowed layers/sec drop, percent (default 25; a
 *                   negative value demands improvement — used by CI
 *                   to verify the gate itself can fail)
 * --check-only      skip all benchmarking: re-read the previously
 *                   written --out file as the current run and only
 *                   perform the --check-against comparison
 *
 * The big-scenario timings run with post-processing off so they
 * isolate dispatch throughput; a smaller postProcess-on measurement
 * tracks the incremental idle-time-elimination path.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_baseline.hh"
#include "bench_common.hh"
#include "sched/layer_cost_table.hh"
#include "sched/reference_scheduler.hh"
#include "util/thread_pool.hh"

namespace
{

using namespace herald;
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start)
        .count();
}

struct Timing
{
    double schedSeconds = 0.0;    //!< table path, per schedule
    double refSeconds = 0.0;      //!< reference path (0 if skipped)
    std::size_t layers = 0;

    double
    layersPerSec() const
    {
        return schedSeconds > 0.0
                   ? static_cast<double>(layers) / schedSeconds
                   : 0.0;
    }

    double
    refLayersPerSec() const
    {
        return refSeconds > 0.0
                   ? static_cast<double>(layers) / refSeconds
                   : 0.0;
    }

    double
    speedup() const
    {
        return schedSeconds > 0.0 && refSeconds > 0.0
                   ? refSeconds / schedSeconds
                   : 0.0;
    }
};

/** Time the table path (median-free: best of @p reps) vs reference. */
Timing
timeScheduler(cost::CostModel &model, const workload::Workload &wl,
              const accel::Accelerator &acc,
              const sched::SchedulerOptions &opts, int reps,
              bool run_reference)
{
    sched::HeraldScheduler scheduler(model, opts);
    Timing t;
    t.layers = wl.totalLayers();

    scheduler.schedule(wl, acc); // warm the cost cache
    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
        Clock::time_point start = Clock::now();
        scheduler.schedule(wl, acc);
        double s = secondsSince(start);
        if (r == 0 || s < best)
            best = s;
    }
    t.schedSeconds = best;

    if (run_reference) {
        Clock::time_point start = Clock::now();
        sched::Schedule ref =
            sched::referenceSchedule(model, opts, wl, acc);
        t.refSeconds = secondsSince(start);
        // Bit-identity spot check rides along for free.
        sched::Schedule fast = scheduler.schedule(wl, acc);
        if (!fast.identicalTo(ref))
            util::panic("table path diverged from reference on ",
                        wl.name());
    }
    return t;
}

void
printTiming(const char *label, const Timing &t)
{
    if (t.refSeconds > 0.0) {
        std::printf("%-14s %9.0f layers/s (%.3f s) | reference "
                    "%9.0f layers/s (%.3f s) | %.1fx\n",
                    label, t.layersPerSec(), t.schedSeconds,
                    t.refLayersPerSec(), t.refSeconds, t.speedup());
    } else {
        std::printf("%-14s %9.0f layers/s (%.3f s)\n", label,
                    t.layersPerSec(), t.schedSeconds);
    }
}

/**
 * The regression gate (--check-against): throughput keys may not
 * drop more than the tolerance below the baseline, deterministic
 * miss counters may not rise at all. Returns 0 when within bounds.
 */
int
checkAgainstBaseline(const std::string &current_path,
                     const std::string &baseline_path,
                     double tolerance)
{
    benchgate::FlatJson cur =
        benchgate::parseJsonFile(current_path);
    benchgate::FlatJson base =
        benchgate::parseJsonFile(baseline_path);
    benchgate::BaselineChecker chk(cur, base, tolerance);

    for (const char *key :
         {"fifo", "edf", "lst", "lst_preempt", "edf_postprocess"})
        chk.checkThroughput(std::string(key) + ".layers_per_sec");

    // Dimensionless policy-vs-FIFO ratios ride alongside the
    // absolute layers/sec gates: absolute throughput varies with
    // runner hardware (hence the generous tolerance), but the
    // *relative* cost of a policy is a property of the code — a
    // policy regressing against FIFO hides inside the absolute
    // tolerance, a ratio gate catches it.
    for (const char *key :
         {"ratios.edf_vs_fifo", "ratios.lst_vs_fifo",
          "ratios.lst_preempt_vs_fifo"})
        chk.checkThroughput(key);

    // Per-policy miss counts on the over-subscribed scenario.
    benchgate::checkPolicyMissRows(chk, cur, base, "overloaded_sla",
                                   "overloaded_sla",
                                   "overloaded_sla");
    return chk.verdict("bench_sched_throughput") ? 0 : 1;
}

void
emitTiming(std::FILE *json, const char *key, const Timing &t,
           const char *trailer)
{
    std::fprintf(json,
                 "  \"%s\": {\"layers\": %zu, "
                 "\"sched_seconds\": %.6f, "
                 "\"layers_per_sec\": %.1f, "
                 "\"ref_seconds\": %.6f, "
                 "\"ref_layers_per_sec\": %.1f, "
                 "\"speedup\": %.3f}%s\n",
                 key, t.layers, t.schedSeconds, t.layersPerSec(),
                 t.refSeconds, t.refLayersPerSec(), t.speedup(),
                 trailer);
}

} // namespace

int
main(int argc, char **argv)
{
    util::setVerbose(false);

    std::size_t threads = 0;
    std::string out_path = "BENCH_sched.json";
    std::string baseline_path;
    double tolerance = 25.0;
    bool check_only = false;
    bool small = false;
    bool run_reference = true;
    int frames60 = 0;
    double max_seconds = 0.0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
            threads = static_cast<std::size_t>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (std::strcmp(argv[i], "--out") == 0 &&
                   i + 1 < argc) {
            out_path = argv[++i];
        } else if (std::strcmp(argv[i], "--frames60") == 0 &&
                   i + 1 < argc) {
            frames60 = static_cast<int>(
                std::strtol(argv[++i], nullptr, 10));
        } else if (std::strcmp(argv[i], "--max-seconds") == 0 &&
                   i + 1 < argc) {
            max_seconds = std::strtod(argv[++i], nullptr);
        } else if (std::strcmp(argv[i], "--check-against") == 0 &&
                   i + 1 < argc) {
            baseline_path = argv[++i];
        } else if (std::strcmp(argv[i], "--tolerance") == 0 &&
                   i + 1 < argc) {
            tolerance = benchgate::parseToleranceArg(argv[++i]);
        } else if (std::strcmp(argv[i], "--check-only") == 0) {
            check_only = true;
        } else if (std::strcmp(argv[i], "--small") == 0) {
            small = true;
        } else if (std::strcmp(argv[i], "--skip-reference") == 0) {
            run_reference = false;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--small] [--frames60 N] "
                         "[--threads N] [--skip-reference] "
                         "[--max-seconds S] [--out FILE] "
                         "[--check-against BASELINE] "
                         "[--tolerance PCT] [--check-only]\n",
                         argv[0]);
            return 1;
        }
    }
    if (check_only) {
        if (baseline_path.empty()) {
            std::fprintf(stderr,
                         "--check-only requires --check-against\n");
            return 1;
        }
        return checkAgainstBaseline(out_path, baseline_path,
                                    tolerance);
    }
    // ~10k frames at full size (frames60 + frames60/2 + frames60/4
    // instances), ~1k at --small.
    if (frames60 <= 0)
        frames60 = small ? 572 : 5712;

    std::FILE *json = std::fopen(out_path.c_str(), "w");
    if (!json) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }

    accel::AcceleratorClass chip = accel::edgeClass();
    accel::Accelerator acc = accel::Accelerator::makeHda(
        chip,
        {dataflow::DataflowStyle::NVDLA,
         dataflow::DataflowStyle::ShiDiannao},
        {chip.numPes / 2, chip.numPes / 2},
        {chip.bwGBps / 2, chip.bwGBps / 2});

    workload::Workload wl = workload::arvrA60fps(frames60);
    std::printf("=== Scheduler throughput: %s, %zu frames, %zu "
                "layers on %s ===\n",
                wl.name().c_str(), wl.numInstances(),
                wl.totalLayers(), acc.name().c_str());

    cost::CostModel model;
    // Best-of-5: the gate compares absolute layers/sec against a
    // committed baseline, so the measurement must shrug off
    // transient load — more reps tighten the best-of estimate at
    // ~15 ms per rep on the small grid.
    const int reps = 5;

    // Dispatch throughput (postProcess off isolates the hot loop).
    sched::SchedulerOptions fifo;
    fifo.postProcess = false;
    fifo.prefillThreads = threads;
    Timing t_fifo =
        timeScheduler(model, wl, acc, fifo, reps, run_reference);
    printTiming("FIFO", t_fifo);

    sched::SchedulerOptions edf = fifo;
    edf.policy = sched::Policy::Edf;
    Timing t_edf =
        timeScheduler(model, wl, acc, edf, reps, run_reference);
    printTiming("EDF", t_edf);

    // LST has no reference-oracle counterpart (the oracle predates
    // the policy subsystem); its throughput is tracked table-path
    // only.
    sched::SchedulerOptions lst = fifo;
    lst.policy = sched::Policy::Lst;
    Timing t_lst =
        timeScheduler(model, wl, acc, lst, reps,
                      /*run_reference=*/false);
    printTiming("LST", t_lst);

    // Preemption points add a per-commit urgency scan over the
    // unreleased-arrival window; this row keeps that overhead on the
    // perf trajectory (and under the CI gate) alongside plain LST.
    sched::SchedulerOptions lst_pre = lst;
    lst_pre.preemption = sched::Preemption::AtLayerBoundary;
    Timing t_lst_pre =
        timeScheduler(model, wl, acc, lst_pre, reps,
                      /*run_reference=*/false);
    printTiming("LST+preempt", t_lst_pre);

    // Incremental post-processing trajectory on a smaller stream mix
    // (postProcess cost is move-dominated, not dispatch-dominated).
    workload::Workload wl_pp =
        workload::arvrA60fps(std::min(frames60, 64));
    sched::SchedulerOptions pp;
    pp.policy = sched::Policy::Edf;
    pp.prefillThreads = threads;
    Timing t_pp =
        timeScheduler(model, wl_pp, acc, pp, reps, run_reference);
    printTiming("EDF+postproc", t_pp);

    // End-to-end DSE: the same candidate grid through the table-path
    // explore vs a manual reference-scheduler sweep.
    workload::Workload dse_wl =
        workload::mixedTenantScenario(small ? 1 : 2);
    dse::HeraldOptions dse_opts;
    dse_opts.partition.peGranularity = chip.numPes / 4;
    dse_opts.partition.bwGranularity = chip.bwGBps / 4;
    dse_opts.objective = dse::Objective::SlaViolations;
    dse_opts.scheduler.policy = sched::Policy::Edf;
    dse_opts.numThreads = 1; // scheduler-only comparison
    std::vector<dataflow::DataflowStyle> styles = {
        dataflow::DataflowStyle::NVDLA,
        dataflow::DataflowStyle::ShiDiannao};

    double dse_seconds = 0.0;
    double dse_ref_seconds = 0.0;
    std::size_t dse_candidates = 0;
    {
        cost::CostModel dse_model;
        dse::Herald herald(dse_model, dse_opts);
        Clock::time_point start = Clock::now();
        dse::DseResult result =
            herald.explore(dse_wl, chip, styles);
        dse_seconds = secondsSince(start);
        dse_candidates = result.points.size();
    }
    if (run_reference) {
        cost::CostModel ref_model;
        std::vector<dse::PartitionCandidate> cands =
            dse::generateCandidates(chip.numPes, chip.bwGBps,
                                    styles.size(),
                                    dse_opts.partition);
        Clock::time_point start = Clock::now();
        for (const dse::PartitionCandidate &c : cands) {
            accel::Accelerator cand_acc =
                accel::Accelerator::makeHda(chip, styles, c.peSplit,
                                            c.bwSplit);
            sched::Schedule s = sched::referenceSchedule(
                ref_model, dse_opts.scheduler, dse_wl, cand_acc);
            s.finalize(dse_wl, cand_acc, ref_model.energyModel());
        }
        dse_ref_seconds = secondsSince(start);
    }
    double dse_speedup = dse_seconds > 0.0 && dse_ref_seconds > 0.0
                             ? dse_ref_seconds / dse_seconds
                             : 0.0;
    std::printf("DSE sweep:     %zu candidates in %.3f s",
                dse_candidates, dse_seconds);
    if (dse_ref_seconds > 0.0)
        std::printf(" | reference %.3f s | %.2fx", dse_ref_seconds,
                    dse_speedup);
    std::printf("\n");

    // Scheduling-quality columns: per-policy miss rate and p99 on an
    // over-subscribed variant, so the perf trajectory captures what
    // the scheduler achieves, not just how fast it runs.
    struct SlaRow
    {
        const char *label;
        sched::Policy policy;
        sched::DropPolicy drop;
        std::size_t misses = 0;
        std::size_t dropped = 0;
        double missRate = 0.0;
        double p99Ms = 0.0; //!< -1 when unbounded
    };
    SlaRow sla_rows[] = {
        {"fifo", sched::Policy::Fifo, sched::DropPolicy::None, 0, 0,
         0.0, 0.0},
        {"edf", sched::Policy::Edf, sched::DropPolicy::None, 0, 0,
         0.0, 0.0},
        {"lst", sched::Policy::Lst, sched::DropPolicy::None, 0, 0,
         0.0, 0.0},
        {"lst_drop", sched::Policy::Lst,
         sched::DropPolicy::HopelessFrames, 0, 0, 0.0, 0.0},
    };
    workload::Workload over_wl = workload::arvrAOverloaded(8);
    for (SlaRow &row : sla_rows) {
        sched::SchedulerOptions opts;
        opts.policy = row.policy;
        opts.dropPolicy = row.drop;
        sched::Schedule s =
            sched::HeraldScheduler(model, opts).schedule(over_wl,
                                                         acc);
        sched::SlaStats sla = s.computeSla(over_wl);
        row.misses = sla.deadlineMisses;
        row.dropped = sla.droppedFrames;
        row.missRate = sla.missRate;
        row.p99Ms = std::isfinite(sla.p99LatencyCycles)
                        ? sla.p99LatencyCycles / 1e6
                        : -1.0;
        std::printf("SLA %-9s %zu misses (rate %.2f, %zu dropped) "
                    "on %s\n",
                    row.label, row.misses, row.missRate,
                    row.dropped, over_wl.name().c_str());
    }

    const double slowest_sched =
        std::max({t_fifo.schedSeconds, t_edf.schedSeconds,
                  t_lst.schedSeconds, t_lst_pre.schedSeconds,
                  t_pp.schedSeconds});
    bool within_bound =
        max_seconds <= 0.0 || slowest_sched <= max_seconds;

    std::fprintf(json,
                 "{\n"
                 "  \"workload\": \"%s\",\n"
                 "  \"grid\": \"%s\",\n"
                 "  \"frames60\": %d,\n"
                 "  \"instances\": %zu,\n"
                 "  \"total_layers\": %zu,\n",
                 wl.name().c_str(), small ? "small" : "full",
                 frames60, wl.numInstances(), wl.totalLayers());
    emitTiming(json, "fifo", t_fifo, ",");
    emitTiming(json, "edf", t_edf, ",");
    emitTiming(json, "lst", t_lst, ",");
    emitTiming(json, "lst_preempt", t_lst_pre, ",");
    emitTiming(json, "edf_postprocess", t_pp, ",");
    auto ratio = [](const Timing &num, const Timing &den) {
        return den.layersPerSec() > 0.0
                   ? num.layersPerSec() / den.layersPerSec()
                   : 0.0;
    };
    std::fprintf(json,
                 "  \"ratios\": {\"edf_vs_fifo\": %.4f, "
                 "\"lst_vs_fifo\": %.4f, "
                 "\"lst_preempt_vs_fifo\": %.4f},\n",
                 ratio(t_edf, t_fifo), ratio(t_lst, t_fifo),
                 ratio(t_lst_pre, t_fifo));
    std::fprintf(json, "  \"overloaded_sla\": [\n");
    for (std::size_t i = 0; i < 4; ++i) {
        const SlaRow &row = sla_rows[i];
        std::fprintf(json,
                     "    {\"policy\": \"%s\", \"misses\": %zu, "
                     "\"miss_rate\": %.4f, \"dropped\": %zu, "
                     "\"p99_ms\": %.4f}%s\n",
                     row.label, row.misses, row.missRate,
                     row.dropped, row.p99Ms, i + 1 < 4 ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json,
                 "  \"dse_candidates\": %zu,\n"
                 "  \"dse_seconds\": %.6f,\n"
                 "  \"dse_ref_seconds\": %.6f,\n"
                 "  \"dse_speedup\": %.3f,\n"
                 "  \"max_seconds\": %.3f,\n"
                 "  \"within_bound\": %s\n"
                 "}\n",
                 dse_candidates, dse_seconds, dse_ref_seconds,
                 dse_speedup, max_seconds,
                 within_bound ? "true" : "false");
    std::fclose(json);
    std::printf("wrote %s\n", out_path.c_str());

    if (!within_bound) {
        std::fprintf(stderr,
                     "SMOKE FAILURE: slowest schedule variant took "
                     "%.3f s (bound %.3f s)\n",
                     slowest_sched, max_seconds);
        return 1;
    }
    if (!baseline_path.empty())
        return checkAgainstBaseline(out_path, baseline_path,
                                    tolerance);
    return 0;
}
