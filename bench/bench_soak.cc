/**
 * @file
 * Million-frame serving soak: drive the online scheduler with lazy
 * periodic streams far past anything the offline path could
 * materialize, and assert the serving-engine contract on the way out:
 *
 *  - bounded memory: max RSS (getrusage) must not grow past a slack
 *    budget after the warmup high-water mark — a leak or an unbounded
 *    window turns directly into RSS growth at million-frame scale;
 *  - live-state gauges (window frames, ready set, un-retired entries
 *    and memory intervals) stay bounded throughout;
 *  - accounting integrity: admitted == completed + dropped, no
 *    frames left live after drain.
 *
 * Emits machine-readable JSON (default BENCH_soak.json) with serving
 * throughput (layers/sec), p50/p99/p99.9 frame latency, and the SLA
 * counters, so successive PRs can track serving capacity.
 *
 * Usage:
 *   bench_soak [--small] [--out FILE] [--rss-slack-mb MB]
 *              [--check-against BASELINE.json] [--tolerance PCT]
 *              [--check-only]
 *
 * --small runs a ~60k-frame smoke variant for CI; the default run
 * submits >= 1.2 million frames. --check-against enables the
 * regression gate: serving throughput must stay within the tolerance
 * of the committed baseline and the deterministic SLA counters
 * (misses, drops, rejections) must not rise. The RSS-flatness
 * assertion is always on and exits non-zero on violation.
 */

#include <sys/resource.h>

#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "accel/accelerator.hh"
#include "bench_baseline.hh"
#include "dnn/model.hh"
#include "sched/arrival_source.hh"
#include "sched/online_scheduler.hh"
#include "util/logging.hh"

namespace
{

using namespace herald;
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start)
        .count();
}

/** Peak (high-water) resident set size in MB. */
double
maxRssMb()
{
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        util::fatal("bench_soak: getrusage failed");
#if defined(__APPLE__)
    return static_cast<double>(ru.ru_maxrss) / (1024.0 * 1024.0);
#else
    return static_cast<double>(ru.ru_maxrss) / 1024.0; // KB on Linux
#endif
}

/** JSON has no inf: unbounded latencies serialize as -1. */
double
jsonSafeMs(double cycles)
{
    return std::isfinite(cycles) ? cycles / 1e6 : -1.0;
}

/** Small FC pipelines keep per-layer cost evaluation out of the
 *  picture — the soak measures the scheduler, not the cost model. */
dnn::Model
tinyNet(const char *name, int width)
{
    dnn::Model m(name);
    m.addLayer(dnn::makeFullyConnected("f1", width, width));
    m.addLayer(dnn::makeFullyConnected("f2", width / 2, width));
    return m;
}

int
checkAgainstBaseline(const std::string &current_path,
                     const std::string &baseline_path,
                     double tolerance)
{
    benchgate::FlatJson cur = benchgate::parseJsonFile(current_path);
    benchgate::FlatJson base =
        benchgate::parseJsonFile(baseline_path);
    benchgate::BaselineChecker chk(cur, base, tolerance);
    chk.checkThroughput("layers_per_sec");
    chk.checkThroughput("sla.completed");
    chk.checkCountNotAbove("sla.misses", "sla.misses");
    chk.checkCountNotAbove("sla.drops", "sla.drops");
    chk.checkCountNotAbove("sla.rejected", "sla.rejected");
    return chk.verdict("bench_soak") ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    util::setVerbose(false);

    std::string out_path = "BENCH_soak.json";
    std::string baseline_path;
    double tolerance = 25.0;
    double rss_slack_mb = 64.0;
    bool check_only = false;
    bool small = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else if (std::strcmp(argv[i], "--check-against") == 0 &&
                   i + 1 < argc) {
            baseline_path = argv[++i];
        } else if (std::strcmp(argv[i], "--tolerance") == 0 &&
                   i + 1 < argc) {
            tolerance = benchgate::parseToleranceArg(argv[++i]);
        } else if (std::strcmp(argv[i], "--rss-slack-mb") == 0 &&
                   i + 1 < argc) {
            rss_slack_mb = benchgate::parseToleranceArg(argv[++i]);
        } else if (std::strcmp(argv[i], "--check-only") == 0) {
            check_only = true;
        } else if (std::strcmp(argv[i], "--small") == 0) {
            small = true;
        } else {
            std::fprintf(
                stderr,
                "usage: %s [--small] [--out FILE] "
                "[--rss-slack-mb MB] [--check-against BASELINE] "
                "[--tolerance PCT] [--check-only]\n",
                argv[0]);
            return 1;
        }
    }
    if (check_only) {
        if (baseline_path.empty()) {
            std::fprintf(stderr,
                         "--check-only requires --check-against\n");
            return 1;
        }
        return checkAgainstBaseline(out_path, baseline_path,
                                    tolerance);
    }

    // Two-way HDA; periods are comfortably sustainable so the stream
    // runs in steady state and the window stays small.
    accel::AcceleratorClass chip = accel::edgeClass();
    accel::Accelerator acc = accel::Accelerator::makeHda(
        chip,
        {dataflow::DataflowStyle::NVDLA,
         dataflow::DataflowStyle::ShiDiannao},
        {chip.numPes / 2, chip.numPes / 2},
        {chip.bwGBps / 2, chip.bwGBps / 2});

    const std::uint64_t frames_a = small ? 33000 : 650000;
    const std::uint64_t frames_b = small ? 28000 : 550000;
    sched::ArrivalSource src;
    src.addStream(tinyNet("SoakA", 256), 9.7e4, 3.9e5, 0.0,
                  frames_a);
    src.addStream(tinyNet("SoakB", 192), 1.13e5, 4.5e5, 1.3e4,
                  frames_b);
    const std::uint64_t total_frames = frames_a + frames_b;

    sched::OnlineOptions oopts;
    oopts.sched.policy = sched::Policy::Lst;
    oopts.sched.dropPolicy = sched::DropPolicy::DoomedFrames;
    oopts.sched.preemption = sched::Preemption::AtLayerBoundary;
    oopts.maxLiveFrames = 4096;
    oopts.horizonCycles = 1e8;
    cost::CostModel model;
    sched::OnlineScheduler eng(model, src.models(), acc, oopts);

    std::printf("=== Online serving soak on %s (%s, %" PRIu64
                " frames) ===\n",
                acc.name().c_str(), small ? "small" : "full",
                total_frames);

    // The RSS flatness budget is judged from a warmup high-water
    // mark: the first 10% of the stream populates the window, the
    // allocator pools, and the cost table; past it, a serving engine
    // with O(in-flight) state must hold the line.
    const std::uint64_t warmup_frames = total_frames / 10;
    const std::uint64_t gauge_period = 4096;
    double rss_warmup_mb = 0.0;
    std::uint64_t max_window = 0;
    std::uint64_t max_ready = 0;
    std::uint64_t max_entries = 0;
    std::uint64_t max_intervals = 0;
    std::uint64_t submitted = 0;

    const Clock::time_point start = Clock::now();
    while (!src.exhausted()) {
        const sched::ArrivalSource::Frame f = src.next();
        eng.submit(f.streamIdx, f.arrivalCycle, f.deadlineCycle);
        ++submitted;
        if (submitted == warmup_frames)
            rss_warmup_mb = maxRssMb();
        if (submitted % gauge_period == 0) {
            const sched::OnlineStats g = eng.stats();
            max_window = std::max(max_window, g.windowFrames);
            max_ready = std::max(max_ready, g.readyFrames);
            max_entries = std::max(max_entries, g.liveEntries);
            max_intervals = std::max(max_intervals, g.liveIntervals);
        }
    }
    eng.drain();
    const double seconds = secondsSince(start);
    const double rss_final_mb = maxRssMb();
    const double rss_growth_mb = rss_final_mb - rss_warmup_mb;

    const sched::OnlineStats st = eng.stats();
    const double layers_per_sec =
        static_cast<double>(st.committedLayers) / seconds;

    std::printf("%" PRIu64 " frames (%" PRIu64 " layers) in %.2f s "
                "— %.0f layers/sec\n",
                st.submittedFrames, st.committedLayers, seconds,
                layers_per_sec);
    std::printf("completed %" PRIu64 ", dropped %" PRIu64
                ", rejected %" PRIu64 ", misses %" PRIu64
                " (rate %.4f)\n",
                st.completedFrames, st.droppedFrames,
                st.rejectedFrames, st.deadlineMisses, st.missRate);
    std::printf("latency p50 %.3f ms, p99 %.3f ms, p99.9 %.3f ms\n",
                jsonSafeMs(st.p50LatencyCycles),
                jsonSafeMs(st.p99LatencyCycles),
                jsonSafeMs(st.p999LatencyCycles));
    std::printf("window <= %" PRIu64 " frames, ready <= %" PRIu64
                ", live entries <= %" PRIu64 ", retired %" PRIu64
                "\n",
                max_window, max_ready, max_entries,
                st.retiredEntries);
    std::printf("max RSS: warmup %.1f MB, final %.1f MB "
                "(growth %.1f MB, slack %.1f MB)\n",
                rss_warmup_mb, rss_final_mb, rss_growth_mb,
                rss_slack_mb);

    std::FILE *json = std::fopen(out_path.c_str(), "w");
    if (!json) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    std::fprintf(
        json,
        "{\n"
        "  \"mode\": \"%s\",\n"
        "  \"frames_submitted\": %" PRIu64 ",\n"
        "  \"layers_committed\": %" PRIu64 ",\n"
        "  \"elapsed_seconds\": %.3f,\n"
        "  \"layers_per_sec\": %.1f,\n"
        "  \"p50_latency_ms\": %.4f,\n"
        "  \"p99_latency_ms\": %.4f,\n"
        "  \"p999_latency_ms\": %.4f,\n"
        "  \"sla\": {\"completed\": %" PRIu64 ", \"misses\": %" PRIu64
        ", \"drops\": %" PRIu64 ", \"rejected\": %" PRIu64 "},\n"
        "  \"rss\": {\"warmup_mb\": %.1f, \"final_mb\": %.1f, "
        "\"growth_mb\": %.1f},\n"
        "  \"gauges\": {\"max_window_frames\": %" PRIu64
        ", \"max_ready_frames\": %" PRIu64
        ", \"max_live_entries\": %" PRIu64
        ", \"max_live_intervals\": %" PRIu64
        ", \"retired_entries\": %" PRIu64 "}\n"
        "}\n",
        small ? "small" : "full", st.submittedFrames,
        st.committedLayers, seconds, layers_per_sec,
        jsonSafeMs(st.p50LatencyCycles),
        jsonSafeMs(st.p99LatencyCycles),
        jsonSafeMs(st.p999LatencyCycles), st.completedFrames,
        st.deadlineMisses, st.droppedFrames, st.rejectedFrames,
        rss_warmup_mb, rss_final_mb, rss_growth_mb, max_window,
        max_ready, max_entries, max_intervals, st.retiredEntries);
    std::fclose(json);
    std::printf("wrote %s\n", out_path.c_str());

    // --- Hard serving-contract assertions (always on) ---
    int rc = 0;
    if (st.liveFrames != 0) {
        std::fprintf(stderr,
                     "bench_soak: FAIL %" PRIu64
                     " frames still live after drain\n",
                     st.liveFrames);
        rc = 1;
    }
    if (st.admittedFrames !=
        st.completedFrames + st.droppedFrames) {
        std::fprintf(stderr,
                     "bench_soak: FAIL SLA counters do not add up "
                     "(admitted %" PRIu64 " != completed %" PRIu64
                     " + dropped %" PRIu64 ")\n",
                     st.admittedFrames, st.completedFrames,
                     st.droppedFrames);
        rc = 1;
    }
    if (st.submittedFrames != total_frames) {
        std::fprintf(stderr,
                     "bench_soak: FAIL submitted %" PRIu64
                     " of %" PRIu64 " frames\n",
                     st.submittedFrames, total_frames);
        rc = 1;
    }
    if (rss_growth_mb > rss_slack_mb) {
        std::fprintf(stderr,
                     "bench_soak: FAIL max RSS grew %.1f MB past the "
                     "warmup mark (slack %.1f MB) — live state is "
                     "not bounded\n",
                     rss_growth_mb, rss_slack_mb);
        rc = 1;
    }
    if (rc != 0)
        return rc;

    if (!baseline_path.empty())
        return checkAgainstBaseline(out_path, baseline_path,
                                    tolerance);
    return 0;
}
