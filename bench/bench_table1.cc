/**
 * @file
 * Table I reproduction: heterogeneity of the DNN models used in the
 * AR/VR workloads — min/median/max channel-activation size ratio and
 * the operator mix per model, plus the headline claim that the
 * largest ratio across the models is >10^5 times the smallest.
 */

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <set>
#include <vector>

#include "dnn/model_zoo.hh"
#include "util/logging.hh"
#include "util/table.hh"

int
main()
{
    using namespace herald;
    util::setVerbose(false);

    std::printf("=== Table I: heterogeneity of the AR/VR DNN models "
                "===\n\n");
    util::Table table({"model", "ratio min", "ratio median",
                       "ratio max", "layer operations"});

    double global_min = 1e300, global_max = 0.0;
    for (const dnn::Model &m :
         {dnn::mobileNetV2(), dnn::resnet50(), dnn::uNet(),
          dnn::brqHandposeNet(), dnn::focalLengthDepthNet()}) {
        std::vector<double> ratios;
        std::set<std::string> ops;
        for (const dnn::Layer &l : m.layers()) {
            ratios.push_back(l.channelActivationRatio());
            ops.insert(dnn::toString(l.kind()));
        }
        std::sort(ratios.begin(), ratios.end());
        double median = ratios[ratios.size() / 2];
        global_min = std::min(global_min, ratios.front());
        global_max = std::max(global_max, ratios.back());

        std::string op_list;
        for (const std::string &op : ops)
            op_list += (op_list.empty() ? "" : ", ") + op;
        table.addRow({m.name(), util::fmtDouble(ratios.front(), 4),
                      util::fmtDouble(median, 4),
                      util::fmtDouble(ratios.back(), 4), op_list});
    }
    table.print(std::cout);

    std::printf("\nLargest/smallest ratio across models: %.0fx "
                "(paper: 315076x)\n",
                global_max / global_min);
    std::printf("Expected shape: classifiers span ~0.01..4096; UNet "
                "dips to ~0.002;\npose/depth models are dominated by "
                "1024+-ratio FC layers.\n");
    return 0;
}
