/**
 * @file
 * Table V reproduction: Maelstrom's Herald-optimized hardware
 * resource partitioning (bandwidth and PEs for the NVDLA and
 * Shi-diannao sub-accelerators) for every {workload x accelerator
 * class} scenario.
 *
 * Expected shape (paper): partitions are non-trivial (rarely the even
 * split); on average more PEs go to the NVDLA-style sub-accelerator
 * (the workloads are channel-heavy), while Shi-diannao tends to
 * claim a disproportionate bandwidth share relative to its PEs.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"

int
main()
{
    using namespace herald;
    util::setVerbose(false);

    std::vector<workload::Workload> workloads;
    workloads.push_back(workload::arvrA());
    workloads.push_back(workload::arvrB());
    workloads.push_back(workload::mlperf());

    cost::CostModel model;

    std::printf("=== Table V: Maelstrom optimized partitioning "
                "(NVDLA / Shi-diannao) ===\n\n");
    util::Table table({"scenario", "BW partitioning (GB/s)",
                       "PE partitioning", "EDP (mJ*s)"});

    double nvdla_pe_ratio = 0.0, nvdla_bw_ratio = 0.0;
    int n = 0;
    for (const workload::Workload &wl : workloads) {
        for (const accel::AcceleratorClass &chip :
             accel::allClasses()) {
            dse::DsePoint best = bench::bestHda(
                model, wl, chip,
                {dataflow::DataflowStyle::NVDLA,
                 dataflow::DataflowStyle::ShiDiannao});
            const auto &subs = best.accelerator.subAccs();
            table.addRow(
                {wl.name() + ", " + chip.name,
                 util::fmtDouble(subs[0].bwGBps, 0) + " / " +
                     util::fmtDouble(subs[1].bwGBps, 0),
                 std::to_string(subs[0].numPes) + " / " +
                     std::to_string(subs[1].numPes),
                 util::fmtDouble(best.summary.edp(), 4)});
            nvdla_pe_ratio += static_cast<double>(subs[0].numPes) /
                              static_cast<double>(subs[1].numPes);
            nvdla_bw_ratio += subs[0].bwGBps / subs[1].bwGBps;
            ++n;
        }
    }
    table.print(std::cout);

    std::printf("\nAverage NVDLA/Shi PE ratio: %.2f (paper: NVDLA "
                "gets ~2.1x PEs on average)\n",
                nvdla_pe_ratio / n);
    std::printf("Average NVDLA/Shi BW ratio: %.2f (paper: Shi gets "
                "~8%% more BW on average)\n",
                nvdla_bw_ratio / n);
    return 0;
}
