/**
 * @file
 * Table VI reproduction: latency and energy gain of the optimized
 * HDA against the best-EDP FDA and the RDA on the MLPerf workload,
 * for batch sizes 1 and 8 across the three accelerator classes.
 *
 * Expected shape (paper): HDAs prefer large batches — at batch 8 the
 * HDA beats the RDA in BOTH latency and energy; at batch 1 the RDA
 * can keep a latency edge while the HDA keeps the energy edge.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"

int
main()
{
    using namespace herald;
    util::setVerbose(false);

    cost::CostModel model;

    std::printf("=== Table VI: HDA gains vs best FDA / RDA on MLPerf "
                "===\n\n");
    util::Table table({"class", "batch", "latency gain (vs FDA/RDA)",
                       "energy gain (vs FDA/RDA)"});

    for (const accel::AcceleratorClass &chip : accel::allClasses()) {
        for (int batch : {1, 8}) {
            workload::Workload wl = workload::mlperf(batch);
            dse::DsePoint hda = bench::bestHda(
                model, wl, chip,
                {dataflow::DataflowStyle::NVDLA,
                 dataflow::DataflowStyle::ShiDiannao});
            bench::NamedSummary fda = bench::bestFda(model, wl, chip);
            bench::NamedSummary rda =
                bench::rdaSummary(model, wl, chip);

            // Gains are reductions: positive = HDA better.
            auto gain = [](double hda_v, double other) {
                return util::fmtPercent(1.0 - hda_v / other);
            };
            table.addRow(
                {chip.name, std::to_string(batch),
                 gain(hda.summary.latencySec,
                      fda.summary.latencySec) +
                     " / " +
                     gain(hda.summary.latencySec,
                          rda.summary.latencySec),
                 gain(hda.summary.energyMj, fda.summary.energyMj) +
                     " / " +
                     gain(hda.summary.energyMj,
                          rda.summary.energyMj)});
        }
    }
    table.print(std::cout);
    std::printf("\nExpected shape: batch 8 rows dominate batch 1 rows "
                "(HDA prefers large batches);\nat batch 8 the HDA "
                "beats the RDA on both metrics.\n");
    return 0;
}
