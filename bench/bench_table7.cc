/**
 * @file
 * Table VII reproduction: scheduling time of Herald's scheduler for
 * each workload on two-way and three-way HDAs, measured with
 * google-benchmark. The paper reports seconds-scale scheduling on a
 * laptop (~11 ms per layer per design point); the comparison here is
 * that scheduling stays lightweight and scales roughly linearly in
 * layer count and sub-accelerator count.
 */

#include <benchmark/benchmark.h>

#include "accel/accelerator.hh"
#include "cost/cost_model.hh"
#include "sched/herald_scheduler.hh"
#include "util/logging.hh"
#include "workload/workload.hh"

namespace
{

using namespace herald;
using dataflow::DataflowStyle;

workload::Workload
workloadByIndex(int idx)
{
    switch (idx) {
      case 0:
        return workload::arvrA();
      case 1:
        return workload::arvrB();
      default:
        return workload::mlperf();
    }
}

accel::Accelerator
hdaWithWays(int ways)
{
    accel::AcceleratorClass chip = accel::mobileClass();
    if (ways == 2) {
        return accel::Accelerator::makeHda(
            chip, {DataflowStyle::NVDLA, DataflowStyle::ShiDiannao},
            {2048, 2048}, {32.0, 32.0});
    }
    return accel::Accelerator::makeHda(
        chip,
        {DataflowStyle::NVDLA, DataflowStyle::ShiDiannao,
         DataflowStyle::Eyeriss},
        {2048, 1024, 1024}, {32.0, 16.0, 16.0});
}

void
BM_Scheduling(benchmark::State &state)
{
    util::setVerbose(false);
    workload::Workload wl =
        workloadByIndex(static_cast<int>(state.range(0)));
    accel::Accelerator acc =
        hdaWithWays(static_cast<int>(state.range(1)));

    // Warm the cost cache: the paper's per-design-point scheduling
    // time also amortizes MAESTRO queries across the sweep.
    cost::CostModel model;
    sched::HeraldScheduler scheduler(model);
    scheduler.schedule(wl, acc);

    for (auto _ : state) {
        sched::Schedule s = scheduler.schedule(wl, acc);
        benchmark::DoNotOptimize(s.makespanCycles());
    }
    state.counters["layers"] =
        static_cast<double>(wl.totalLayers());
    state.counters["us_per_layer"] = benchmark::Counter(
        static_cast<double>(wl.totalLayers()) * state.iterations(),
        benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
    state.SetLabel(wl.name() + " / " +
                   std::to_string(state.range(1)) + " sub-accs");
}

} // namespace

BENCHMARK(BM_Scheduling)
    ->ArgsProduct({{0, 1, 2}, {2, 3}})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
