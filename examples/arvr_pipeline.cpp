/**
 * @file
 * AR/VR pipeline example: the paper's motivating scenario. Runs the
 * full AR/VR-B workload (object detection, classification, hand
 * tracking, hand pose, depth estimation) on an edge-class chip and
 * compares every accelerator family of Table III: 3 FDAs, 3 SM-FDAs,
 * an RDA, and Maelstrom with Herald-optimized partitioning.
 */

#include <cstdio>
#include <iostream>

#include "accel/accelerator.hh"
#include "dse/herald_dse.hh"
#include "sched/herald_scheduler.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "workload/workload.hh"

int
main()
{
    using namespace herald;
    util::setVerbose(false);

    workload::Workload wl = workload::arvrB();
    accel::AcceleratorClass chip = accel::edgeClass();

    cost::CostModel model;
    dse::HeraldOptions opts;
    opts.partition.peGranularity = chip.numPes / 16;
    opts.partition.bwGranularity = chip.bwGBps / 8;
    dse::Herald herald(model, opts);

    util::Table table({"accelerator", "latency (ms)", "energy (mJ)",
                       "EDP (mJ*s)"});
    auto add = [&](const accel::Accelerator &acc) {
        dse::DsePoint p = herald.evaluate(wl, acc);
        table.addRow({acc.name(),
                      util::fmtDouble(p.summary.latencySec * 1e3, 4),
                      util::fmtDouble(p.summary.energyMj, 4),
                      util::fmtDouble(p.summary.edp(), 4)});
        return p.summary;
    };

    std::printf("AR/VR-B on %s: %zu model instances, %zu layers\n\n",
                chip.name.c_str(), wl.numInstances(),
                wl.totalLayers());

    for (dataflow::DataflowStyle style : dataflow::kAllStyles) {
        add(accel::Accelerator::makeFda(chip, style));
        add(accel::Accelerator::makeScaledOutFda(chip, style, 2));
    }
    add(accel::Accelerator::makeRda(chip));

    // Herald's co-DSE for Maelstrom (NVDLA + Shi-diannao).
    dse::DseResult result = herald.explore(
        wl, chip,
        {dataflow::DataflowStyle::NVDLA,
         dataflow::DataflowStyle::ShiDiannao});
    const dse::DsePoint &best = result.best();
    table.addRow({"Maelstrom (Herald-optimized) " +
                      best.accelerator.name(),
                  util::fmtDouble(best.summary.latencySec * 1e3, 4),
                  util::fmtDouble(best.summary.energyMj, 4),
                  util::fmtDouble(best.summary.edp(), 4)});

    table.print(std::cout);

    // Fig. 7-style execution timeline on the optimized Maelstrom.
    sched::HeraldScheduler scheduler(model);
    sched::Schedule schedule =
        scheduler.schedule(wl, best.accelerator);
    std::printf("\nExecution timeline on %s\n%s\n",
                best.accelerator.name().c_str(),
                schedule.renderTimeline(wl).c_str());
    std::printf("Peak global-buffer occupancy: %.2f MiB of %.0f MiB\n",
                schedule.peakOccupancyBytes() / 1048576.0,
                chip.globalBufferBytes / 1048576.0);
    return 0;
}
