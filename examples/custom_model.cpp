/**
 * @file
 * Custom-model example: how a downstream user describes their own
 * DNN with the layer API, inspects per-layer dataflow preferences,
 * and schedules it alongside a zoo model.
 */

#include <cstdio>
#include <iostream>

#include "accel/accelerator.hh"
#include "accel/rda.hh"
#include "dnn/model_zoo.hh"
#include "sched/herald_scheduler.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "workload/workload.hh"

namespace
{

/** A small custom keyword-spotting CNN built with the public API. */
herald::dnn::Model
keywordSpotter()
{
    using namespace herald::dnn;
    Model m("KeywordSpotter");
    // 40 mel bands x 98 frames, treated as a 1-channel image.
    m.addLayer(makeConv("conv1", 64, 1, 98, 40, 3, 3));
    m.addLayer(makeDepthwise("dw1", 64, 96, 38, 3, 3));
    m.addLayer(makePointwise("pw1", 128, 64, 94, 36));
    m.addLayer(makeConv("conv2", 128, 128, 94, 36, 3, 3, 2));
    m.addLayer(makeFullyConnected("fc1", 256, 128 * 46 * 17));
    m.addLayer(makeFullyConnected("fc_out", 12, 256));
    return m;
}

} // namespace

int
main()
{
    using namespace herald;
    util::setVerbose(false);

    dnn::Model custom = keywordSpotter();
    cost::CostModel model;

    // Per-layer dataflow preference on an edge-class budget.
    cost::SubAccResources res;
    res.numPes = 1024;
    res.bwGBps = 16.0;
    res.l2Bytes = 4ULL << 20;

    util::Table table({"layer", "op", "best dataflow", "cycles",
                       "util"});
    for (const dnn::Layer &layer : custom.layers()) {
        dataflow::DataflowStyle best =
            dataflow::DataflowStyle::NVDLA;
        double best_edp = 1e300;
        cost::LayerCost best_cost;
        for (dataflow::DataflowStyle style : dataflow::kAllStyles) {
            cost::LayerCost c = model.evaluate(layer, style, res);
            if (c.edp() < best_edp) {
                best_edp = c.edp();
                best = style;
                best_cost = c;
            }
        }
        table.addRow({layer.name(), dnn::toString(layer.kind()),
                      dataflow::toString(best),
                      util::fmtDouble(best_cost.cycles, 4),
                      util::fmtDouble(best_cost.effectiveUtil, 3)});
    }
    std::printf("Per-layer dataflow preferences (%s):\n",
                custom.name().c_str());
    table.print(std::cout);

    // Schedule the custom model together with MobileNetV2 on an HDA.
    workload::Workload wl("custom+mobilenet");
    wl.addModel(std::move(custom), 2);
    wl.addModel(dnn::mobileNetV2(), 1);

    accel::Accelerator hda = accel::Accelerator::makeHda(
        accel::edgeClass(),
        {dataflow::DataflowStyle::NVDLA,
         dataflow::DataflowStyle::ShiDiannao},
        {256, 768}, {4.0, 12.0});

    sched::HeraldScheduler scheduler(model);
    sched::Schedule s = scheduler.schedule(wl, hda);
    std::string issue = s.validate(wl, hda);
    if (!issue.empty())
        util::panic("invalid schedule: ", issue);
    sched::ScheduleSummary sum = s.finalize(hda, model.energyModel());

    std::printf("\n%s on %s:\n", wl.name().c_str(),
                hda.name().c_str());
    std::printf("  latency %.3f ms, energy %.3f mJ\n",
                sum.latencySec * 1e3, sum.energyMj);
    std::printf("  sub-accelerator busy: %.0f / %.0f cycles over a "
                "%.0f-cycle makespan\n",
                sum.busyCycles[0], sum.busyCycles[1],
                sum.makespanCycles);
    return 0;
}
