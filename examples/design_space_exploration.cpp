/**
 * @file
 * Design-space exploration example: Herald as an architect's tool.
 * Sweeps PE/bandwidth partitionings of a two-way HDA on a cloud chip
 * for the MLPerf workload, prints the Pareto-optimal designs and the
 * chosen partition, and shows the alternative search strategies.
 */

#include <cstdio>
#include <iostream>

#include "dse/herald_dse.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "workload/workload.hh"

int
main()
{
    using namespace herald;
    util::setVerbose(false);

    workload::Workload wl = workload::mlperf();
    accel::AcceleratorClass chip = accel::cloudClass();
    std::vector<dataflow::DataflowStyle> styles{
        dataflow::DataflowStyle::NVDLA,
        dataflow::DataflowStyle::ShiDiannao};

    cost::CostModel model;

    // Exhaustive sweep at 1/16 PE and 1/8 bandwidth granularity.
    dse::HeraldOptions opts;
    opts.partition.peGranularity = chip.numPes / 16;
    opts.partition.bwGranularity = chip.bwGBps / 8;
    dse::Herald herald(model, opts);
    dse::DseResult result = herald.explore(wl, chip, styles);

    std::printf("Explored %zu partition candidates on %s for %s\n\n",
                result.points.size(), chip.name.c_str(),
                wl.name().c_str());

    // Pareto front over (latency, energy).
    auto front = util::paretoFront(result.designPoints());
    util::Table table({"design", "latency (ms)", "energy (mJ)"});
    for (const util::DesignPoint &p : front) {
        table.addRow({p.label, util::fmtDouble(p.latency * 1e3, 4),
                      util::fmtDouble(p.energy, 4)});
    }
    std::printf("Pareto-optimal designs (%zu of %zu):\n",
                front.size(), result.points.size());
    table.print(std::cout);

    const dse::DsePoint &best = result.best();
    std::printf("\nBest EDP design: %s\n",
                best.accelerator.name().c_str());
    std::printf("  latency %.3f ms, energy %.3f mJ, EDP %.4e\n",
                best.summary.latencySec * 1e3, best.summary.energyMj,
                best.summary.edp());

    // The same exploration with the cheaper search strategies.
    for (dse::SearchStrategy strategy :
         {dse::SearchStrategy::Binary, dse::SearchStrategy::Random}) {
        dse::HeraldOptions alt = opts;
        alt.partition.strategy = strategy;
        alt.partition.randomSamples = 16;
        dse::Herald fast(model, alt);
        dse::DseResult r = fast.explore(wl, chip, styles);
        std::printf("\n%s search: %zu candidates, best EDP %.4e "
                    "(vs exhaustive %.4e)\n",
                    dse::toString(strategy), r.points.size(),
                    r.best().summary.edp(), best.summary.edp());
    }
    return 0;
}
