/**
 * @file
 * Fault-tolerance example: scheduling through sub-accelerator
 * capacity loss. Builds the factory inspection workload, fails one
 * of the two sub-accelerators mid-run, and contrasts three outcomes:
 *
 *  1. the fault-free schedule (what the chip was provisioned for),
 *  2. that same schedule executed blind on the degraded chip
 *     (fault-oblivious: every frame touching the dead sub-
 *     accelerator after its failure is lost),
 *  3. the fault-aware schedule: the dispatcher kills the in-flight
 *     layer at the onset, re-homes the victim frame's remaining
 *     chain onto the survivor, and steers later frames clear.
 *
 * The timelines render the degraded period as 'x' cells.
 */

#include <cstdio>

#include "accel/accelerator.hh"
#include "sched/fault_model.hh"
#include "sched/herald_scheduler.hh"
#include "util/logging.hh"
#include "workload/workload.hh"

int
main()
{
    using namespace herald;
    util::setVerbose(false);

    workload::Workload wl = workload::faultedFactory(4);
    accel::AcceleratorClass chip = accel::edgeClass();
    accel::Accelerator acc = accel::Accelerator::makeHda(
        chip,
        {dataflow::DataflowStyle::NVDLA,
         dataflow::DataflowStyle::ShiDiannao},
        {chip.numPes / 2, chip.numPes / 2},
        {chip.bwGBps / 2, chip.bwGBps / 2});

    cost::CostModel model;
    sched::SchedulerOptions opts;
    opts.policy = sched::Policy::Lst;

    // 1. Fault-free: the provisioned plan.
    sched::HeraldScheduler healthy(model, opts);
    sched::Schedule plan = healthy.schedule(wl, acc);
    const double horizon = plan.makespanCycles();
    sched::SlaStats planned = plan.computeSla(wl);
    std::printf("fault-free plan:      %2zu/%zu deadline misses\n",
                planned.deadlineMisses, planned.framesWithDeadline);

    // Sub-accelerator 0 dies at 30%% of the planned makespan.
    sched::FaultTimeline timeline =
        sched::factoryFaultTimeline(acc.numSubAccs(), 1, horizon);
    std::printf("\ninjected faults:\n%s\n",
                timeline.describe().c_str());

    // 2. Fault-oblivious: ship the healthy plan onto the degraded
    //    chip and count the damage.
    sched::SlaStats oblivious =
        sched::faultObliviousSla(plan, wl, timeline);
    std::printf("fault-oblivious:      %2zu/%zu deadline misses "
                "(%zu layers disturbed)\n",
                oblivious.deadlineMisses,
                oblivious.framesWithDeadline,
                oblivious.faultKilledLayers);

    // 3. Fault-aware: reschedule through the failure.
    opts.faults = timeline;
    sched::HeraldScheduler aware(model, opts);
    sched::Schedule degraded = aware.schedule(wl, acc);
    std::string issue = degraded.validate(wl, acc, &timeline);
    if (!issue.empty())
        util::panic("invalid degraded schedule: ", issue);
    sched::SlaStats rescued = degraded.computeSla(wl);
    std::printf("fault-aware:          %2zu/%zu deadline misses "
                "(%zu layers killed, %zu frames rescheduled)\n",
                rescued.deadlineMisses, rescued.framesWithDeadline,
                rescued.faultKilledLayers,
                rescued.framesRescheduled);

    std::printf("\nfault-aware timeline ('x' = sub-accelerator "
                "unavailable):\n%s\n",
                degraded.renderTimeline(wl, &timeline, 72).c_str());
    return 0;
}
