/**
 * @file
 * Online serving example: the OnlineScheduler as a long-running
 * inference server. Two periodic camera streams are generated lazily
 * by an ArrivalSource and submitted frame by frame; the engine
 * schedules incrementally, retires committed history into rolling
 * SLA counters, and — when the client floods it far beyond the
 * admission queue — answers with deterministic backpressure instead
 * of growing without bound.
 *
 * Three acts:
 *  1. steady state: comfortable rates, every frame completes, the
 *     live window stays tiny while thousands of frames stream by;
 *  2. a mid-run burst: a third stream joins at 40x its sustainable
 *     rate and the engine rejects (queue-full / horizon) instead of
 *     melting — note the counters, not crashes;
 *  3. drain: the tail of the stream finishes and the final stats
 *     are the whole story, no offline schedule ever materialized.
 */

#include <cstdio>
#include <inttypes.h>

#include "accel/accelerator.hh"
#include "dnn/model_zoo.hh"
#include "sched/arrival_source.hh"
#include "sched/online_scheduler.hh"
#include "util/logging.hh"

int
main()
{
    using namespace herald;
    util::setVerbose(false);

    accel::AcceleratorClass chip = accel::edgeClass();
    accel::Accelerator acc = accel::Accelerator::makeHda(
        chip,
        {dataflow::DataflowStyle::NVDLA,
         dataflow::DataflowStyle::ShiDiannao},
        {chip.numPes / 2, chip.numPes / 2},
        {chip.bwGBps / 2, chip.bwGBps / 2});

    // Act 1+3: two lazy periodic streams, 4000 frames each. Nothing
    // is materialized: the source holds one generator per stream.
    sched::ArrivalSource src;
    src.addStream(dnn::mobileNetV2(), 4e6, 1.6e7, 0.0, 2000);
    src.addStream(dnn::resnet50(), 3e7, 9e7, 5e5, 260);

    sched::OnlineOptions opts;
    opts.sched.policy = sched::Policy::Lst;
    opts.sched.dropPolicy = sched::DropPolicy::DoomedFrames;
    opts.sched.preemption = sched::Preemption::AtLayerBoundary;
    opts.maxLiveFrames = 256;   // admission queue bound
    opts.horizonCycles = 2e8;   // reject arrivals too far ahead
    cost::CostModel model;
    sched::OnlineScheduler server(model, src.models(), acc, opts);

    std::printf("serving two streams on %s\n\n", acc.name().c_str());

    std::uint64_t submitted = 0;
    while (!src.exhausted()) {
        const sched::ArrivalSource::Frame f = src.next();
        server.submit(f.streamIdx, f.arrivalCycle, f.deadlineCycle);
        if (++submitted % 2000 == 0) {
            const sched::OnlineStats s = server.stats();
            std::printf("after %5" PRIu64 " frames: %5" PRIu64
                        " completed, window %3" PRIu64
                        " frames, p99 latency %.2f Mcycles\n",
                        s.submittedFrames, s.completedFrames,
                        s.windowFrames,
                        s.p99LatencyCycles / 1e6);
        }
    }

    // Act 2: a burst client floods the server with a 40x-rate
    // stream. Admission control answers per frame, deterministically.
    const sched::OnlineStats before = server.stats();
    sched::ArrivalSource burst;
    const double t0 = before.watermarkCycle;
    burst.addStream(dnn::mobileNetV2(), 5e4, 4e7, t0, 2000);
    std::uint64_t accepted = 0, dropped = 0, rejected = 0;
    while (!burst.exhausted()) {
        const sched::ArrivalSource::Frame f = burst.next();
        switch (server.submit(0, f.arrivalCycle, f.deadlineCycle)) {
        case sched::SubmitResult::Accepted: ++accepted; break;
        case sched::SubmitResult::Dropped: ++dropped; break;
        case sched::SubmitResult::RejectedQueueFull:
        case sched::SubmitResult::RejectedHorizon: ++rejected; break;
        }
    }
    std::printf("\nburst of 2000 frames at 40x sustainable rate: "
                "%" PRIu64 " accepted, %" PRIu64 " dropped "
                "(provably hopeless), %" PRIu64 " rejected "
                "(backpressure)\n",
                accepted, dropped, rejected);

    server.drain();
    const sched::OnlineStats s = server.stats();
    std::printf("\nfinal: %" PRIu64 " submitted / %" PRIu64
                " completed / %" PRIu64 " dropped / %" PRIu64
                " rejected\n",
                s.submittedFrames, s.completedFrames,
                s.droppedFrames, s.rejectedFrames);
    std::printf("deadline misses %" PRIu64 " of %" PRIu64
                " (%.1f%%), p50 %.2f / p99 %.2f / p99.9 %.2f "
                "Mcycles\n",
                s.deadlineMisses, s.framesWithDeadline,
                100.0 * s.missRate, s.p50LatencyCycles / 1e6,
                s.p99LatencyCycles / 1e6,
                s.p999LatencyCycles / 1e6);
    std::printf("history retired: %" PRIu64 " layers folded into "
                "counters; %" PRIu64 " still live\n",
                s.retiredEntries, s.liveEntries);
    return 0;
}
