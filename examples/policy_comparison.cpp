/**
 * @file
 * Scheduling-policy comparison on an over-subscribed real-time
 * scenario: FIFO vs EDF vs LST, each with and without hopeless-frame
 * dropping, on the overloaded mixed-tenant mix — then a small
 * hardware/policy co-design sweep showing that the best PE/BW
 * partition depends on the policy it will run.
 *
 * The scenario's shape is the one that separates the policies: light
 * frame streams with multi-frame pipeline deadlines share the chip
 * with a heavy analytics job whose deadline is late in absolute terms
 * but almost equal to its execution time. EDF procrastinates on the
 * heavy job behind the nearer frame deadlines until it cannot finish;
 * LST (least slack first) starts it immediately, and the frames'
 * slack absorbs the wait.
 */

#include <cmath>
#include <cstdio>

#include "accel/accelerator.hh"
#include "dnn/model_zoo.hh"
#include "dse/herald_dse.hh"
#include "sched/herald_scheduler.hh"
#include "util/logging.hh"
#include "workload/workload.hh"

using namespace herald;

namespace
{

void
printRow(const char *label, const sched::SlaStats &sla,
         double makespan)
{
    char p99[32];
    if (std::isfinite(sla.p99LatencyCycles))
        std::snprintf(p99, sizeof p99, "%8.2f",
                      sla.p99LatencyCycles / 1e6);
    else
        std::snprintf(p99, sizeof p99, "     inf");
    std::printf("  %-12s %4zu/%zu  %8.2f%%  %5zu  %s  %10.2f\n",
                label, sla.deadlineMisses, sla.framesWithDeadline,
                sla.missRate * 100.0, sla.droppedFrames, p99,
                makespan / 1e6);
}

} // namespace

int
main()
{
    util::setVerbose(false);

    accel::AcceleratorClass chip = accel::edgeClass();
    accel::Accelerator acc = accel::Accelerator::makeHda(
        chip,
        {dataflow::DataflowStyle::NVDLA,
         dataflow::DataflowStyle::ShiDiannao},
        {chip.numPes / 2, chip.numPes / 2},
        {chip.bwGBps / 2, chip.bwGBps / 2});

    workload::Workload wl = workload::mixedTenantOverloaded(8);
    std::printf("Scenario: %s — %zu frames on %s\n\n",
                wl.name().c_str(), wl.numInstances(),
                acc.name().c_str());
    std::printf("  %-12s %7s  %9s  %5s  %8s  %10s\n", "policy",
                "misses", "miss-rate", "drop", "p99(ms)",
                "makespan(M)");

    struct Config
    {
        const char *label;
        sched::Policy policy;
        sched::DropPolicy drop;
    };
    const Config configs[] = {
        {"FIFO", sched::Policy::Fifo, sched::DropPolicy::None},
        {"FIFO+drop", sched::Policy::Fifo,
         sched::DropPolicy::HopelessFrames},
        {"EDF", sched::Policy::Edf, sched::DropPolicy::None},
        {"EDF+drop", sched::Policy::Edf,
         sched::DropPolicy::HopelessFrames},
        {"LST", sched::Policy::Lst, sched::DropPolicy::None},
        {"LST+drop", sched::Policy::Lst,
         sched::DropPolicy::HopelessFrames},
    };

    cost::CostModel model;
    for (const Config &config : configs) {
        sched::SchedulerOptions opts;
        opts.policy = config.policy;
        opts.dropPolicy = config.drop;
        sched::HeraldScheduler scheduler(model, opts);
        sched::Schedule s = scheduler.schedule(wl, acc);
        std::string issue = s.validate(wl, acc);
        if (!issue.empty())
            util::panic("invalid schedule: ", issue);
        printRow(config.label, s.computeSla(wl),
                 s.makespanCycles());
    }

    // Hardware x policy co-design: sweep PE/BW partitions under the
    // SlaViolations objective once per policy — the winning chip
    // partition is policy-dependent.
    std::printf("\nCo-design sweep (SlaViolations objective):\n");
    for (auto policy : {sched::Policy::Edf, sched::Policy::Lst}) {
        dse::HeraldOptions opts;
        opts.partition.peGranularity = chip.numPes / 4;
        opts.partition.bwGranularity = chip.bwGBps / 4;
        opts.objective = dse::Objective::SlaViolations;
        opts.scheduler.policy = policy;
        opts.scheduler.dropPolicy =
            sched::DropPolicy::HopelessFrames;
        dse::Herald herald(model, opts);
        dse::DseResult result = herald.explore(
            wl, chip,
            {dataflow::DataflowStyle::NVDLA,
             dataflow::DataflowStyle::ShiDiannao});
        std::printf("  %-4s best: %s — %zu misses, %zu dropped "
                    "(%zu candidates)\n",
                    sched::toString(policy),
                    result.best().accelerator.name().c_str(),
                    result.best().summary.sla.deadlineMisses,
                    result.best().summary.sla.droppedFrames,
                    result.points.size());
    }
    return 0;
}
