/**
 * @file
 * Scheduling-policy comparison on over-subscribed real-time
 * scenarios: FIFO vs EDF vs LST, each with and without hopeless-frame
 * dropping, plus LST with layer-boundary preemption points, dynamic
 * doomed-frame shedding and grant hysteresis — then a small
 * hardware/policy co-design sweep showing that the best PE/BW
 * partition depends on the policy it will run.
 *
 * The scenario shapes are the ones that separate the policies: light
 * frame streams with multi-frame pipeline deadlines share the chip
 * with a heavy analytics job whose deadline is late in absolute terms
 * but almost equal to its execution time. EDF procrastinates on the
 * heavy job behind the nearer frame deadlines until it cannot finish;
 * LST (least slack first) starts it immediately, and the frames'
 * slack absorbs the wait. The interactive mix adds the preemption
 * shape: tiny tight-deadline frames arriving in the middle of long
 * heavy layers queue past their deadlines under run-to-completion
 * dispatch but are served at arrival with preemption points.
 */

#include <cmath>
#include <cstdio>

#include "accel/accelerator.hh"
#include "dnn/model_zoo.hh"
#include "dse/herald_dse.hh"
#include "sched/herald_scheduler.hh"
#include "util/logging.hh"
#include "workload/workload.hh"

using namespace herald;

namespace
{

void
printRow(const char *label, const sched::SlaStats &sla,
         double makespan)
{
    char p99[32];
    if (std::isfinite(sla.p99LatencyCycles))
        std::snprintf(p99, sizeof p99, "%8.2f",
                      sla.p99LatencyCycles / 1e6);
    else
        std::snprintf(p99, sizeof p99, "     inf");
    std::printf("  %-12s %4zu/%zu  %8.2f%%  %5zu  %s  %10.2f\n",
                label, sla.deadlineMisses, sla.framesWithDeadline,
                sla.missRate * 100.0, sla.droppedFrames, p99,
                makespan / 1e6);
}

} // namespace

int
main()
{
    util::setVerbose(false);

    accel::AcceleratorClass chip = accel::edgeClass();
    accel::Accelerator acc = accel::Accelerator::makeHda(
        chip,
        {dataflow::DataflowStyle::NVDLA,
         dataflow::DataflowStyle::ShiDiannao},
        {chip.numPes / 2, chip.numPes / 2},
        {chip.bwGBps / 2, chip.bwGBps / 2});

    struct Config
    {
        const char *label;
        sched::Policy policy;
        sched::DropPolicy drop;
        sched::Preemption preemption = sched::Preemption::Off;
        double hysteresis = 0.0;
    };
    const Config configs[] = {
        {"FIFO", sched::Policy::Fifo, sched::DropPolicy::None},
        {"FIFO+drop", sched::Policy::Fifo,
         sched::DropPolicy::HopelessFrames},
        {"EDF", sched::Policy::Edf, sched::DropPolicy::None},
        {"EDF+drop", sched::Policy::Edf,
         sched::DropPolicy::HopelessFrames},
        {"LST", sched::Policy::Lst, sched::DropPolicy::None},
        {"LST+drop", sched::Policy::Lst,
         sched::DropPolicy::HopelessFrames},
        {"LST+doom", sched::Policy::Lst,
         sched::DropPolicy::DoomedFrames},
        {"LST+hyst", sched::Policy::Lst, sched::DropPolicy::None,
         sched::Preemption::Off, /*hysteresis=*/1e6},
        {"LST+preempt", sched::Policy::Lst, sched::DropPolicy::None,
         sched::Preemption::AtLayerBoundary},
        {"LST+pre+doom", sched::Policy::Lst,
         sched::DropPolicy::DoomedFrames,
         sched::Preemption::AtLayerBoundary},
    };

    cost::CostModel model;
    // The mixed-tenant mix doubles as the co-design sweep's workload
    // below — one definition keeps the table and the sweep in sync.
    workload::Workload wl = workload::mixedTenantOverloaded(8);
    for (const workload::Workload &scenario :
         {wl, workload::interactiveOverloaded(8)}) {
        std::printf("Scenario: %s — %zu frames on %s\n\n",
                    scenario.name().c_str(),
                    scenario.numInstances(), acc.name().c_str());
        std::printf("  %-12s %7s  %9s  %5s  %8s  %10s\n", "policy",
                    "misses", "miss-rate", "drop", "p99(ms)",
                    "makespan(M)");
        for (const Config &config : configs) {
            sched::SchedulerOptions opts;
            opts.policy = config.policy;
            opts.dropPolicy = config.drop;
            opts.preemption = config.preemption;
            opts.lstHysteresisCycles = config.hysteresis;
            sched::HeraldScheduler scheduler(model, opts);
            sched::Schedule s = scheduler.schedule(scenario, acc);
            std::string issue = s.validate(scenario, acc);
            if (!issue.empty())
                util::panic("invalid schedule: ", issue);
            printRow(config.label, s.computeSla(scenario),
                     s.makespanCycles());
        }
        std::printf("\n");
    }

    // Hardware x policy co-design: sweep PE/BW partitions under the
    // SlaViolations objective once per policy — the winning chip
    // partition is policy-dependent.
    std::printf("\nCo-design sweep (SlaViolations objective):\n");
    for (auto policy : {sched::Policy::Edf, sched::Policy::Lst}) {
        dse::HeraldOptions opts;
        opts.partition.peGranularity = chip.numPes / 4;
        opts.partition.bwGranularity = chip.bwGBps / 4;
        opts.objective = dse::Objective::SlaViolations;
        opts.scheduler.policy = policy;
        opts.scheduler.dropPolicy =
            sched::DropPolicy::HopelessFrames;
        dse::Herald herald(model, opts);
        dse::DseResult result = herald.explore(
            wl, chip,
            {dataflow::DataflowStyle::NVDLA,
             dataflow::DataflowStyle::ShiDiannao});
        std::printf("  %-4s best: %s — %zu misses, %zu dropped "
                    "(%zu candidates)\n",
                    sched::toString(policy),
                    result.best().accelerator.name().c_str(),
                    result.best().summary.sla.deadlineMisses,
                    result.best().summary.sla.droppedFrames,
                    result.points.size());
    }
    return 0;
}
