/**
 * @file
 * Quickstart: schedule a two-model workload on Maelstrom (the
 * NVDLA + Shi-diannao HDA) and print latency/energy/EDP next to the
 * best fixed-dataflow accelerator.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "accel/accelerator.hh"
#include "dnn/model_zoo.hh"
#include "sched/herald_scheduler.hh"
#include "util/logging.hh"
#include "workload/workload.hh"

int
main()
{
    using namespace herald;
    util::setVerbose(false);

    // 1. Describe the multi-DNN workload: a classifier plus a
    //    segmentation network, as an AR/VR headset would run.
    workload::Workload wl("quickstart");
    wl.addModel(dnn::resnet50(), 1);
    wl.addModel(dnn::uNet(), 1);

    // 2. Pick a chip budget (Table IV mobile: 4096 PEs, 64 GB/s).
    accel::AcceleratorClass chip = accel::mobileClass();

    // 3. Build accelerators: Maelstrom-style HDA vs the three FDAs.
    accel::Accelerator hda = accel::Accelerator::makeHda(
        chip,
        {dataflow::DataflowStyle::NVDLA,
         dataflow::DataflowStyle::ShiDiannao},
        {1536, 2560}, {48.0, 16.0});

    // 4. Schedule with Herald and report.
    cost::CostModel model;
    sched::HeraldScheduler scheduler(model);

    auto report = [&](const accel::Accelerator &acc) {
        sched::Schedule s = scheduler.schedule(wl, acc);
        std::string issue = s.validate(wl, acc);
        if (!issue.empty())
            util::panic("invalid schedule: ", issue);
        sched::ScheduleSummary sum =
            s.finalize(acc, model.energyModel());
        std::printf("%-36s latency %9.3f ms  energy %9.3f mJ  "
                    "EDP %.4e\n",
                    acc.name().c_str(), sum.latencySec * 1e3,
                    sum.energyMj, sum.edp());
        return sum;
    };

    std::printf("Workload: %s (%zu layers, %.1f GMACs)\n\n",
                wl.name().c_str(), wl.totalLayers(),
                static_cast<double>(wl.totalMacs()) * 1e-9);

    sched::ScheduleSummary hda_sum = report(hda);
    double best_fda_edp = 1e300;
    for (dataflow::DataflowStyle style : dataflow::kAllStyles) {
        sched::ScheduleSummary sum =
            report(accel::Accelerator::makeFda(chip, style));
        best_fda_edp = std::min(best_fda_edp, sum.edp());
    }

    std::printf("\nHDA EDP vs best FDA: %+.1f%%\n",
                (hda_sum.edp() / best_fda_edp - 1.0) * 100.0);
    return 0;
}
