/**
 * @file
 * Real-time AR/VR example: the scenario engine end-to-end. A mixed
 * multi-tenant workload — periodic AR/VR frame streams with deadlines
 * sharing the chip with best-effort MLPerf batch jobs — is scheduled
 * on an edge-class HDA with and without deadline-aware (EDF)
 * instance selection, and the SLA metrics (per-instance latency,
 * deadline miss rate, p50/p99 frame latency) are reported. Finally
 * Herald's co-DSE optimizes the partitioning for the SlaViolations
 * objective.
 */

#include <cstdio>
#include <iostream>

#include "accel/accelerator.hh"
#include "dse/herald_dse.hh"
#include "sched/herald_scheduler.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "workload/workload.hh"

namespace
{

using namespace herald;

const char *
fmtDeadline(const sched::InstanceSla &sla)
{
    if (sla.deadlineCycle >= workload::kNoDeadline)
        return "-";
    return sla.missed ? "MISS" : "ok";
}

sched::ScheduleSummary
runScenario(cost::CostModel &model, const workload::Workload &wl,
            const accel::Accelerator &acc, bool deadline_aware,
            bool print_frames)
{
    sched::SchedulerOptions opts;
    opts.deadlineAware = deadline_aware;
    sched::HeraldScheduler scheduler(model, opts);
    sched::Schedule schedule = scheduler.schedule(wl, acc);
    std::string issue = schedule.validate(wl, acc);
    if (!issue.empty())
        util::panic("invalid schedule: ", issue);
    sched::ScheduleSummary summary =
        schedule.finalize(wl, acc, model.energyModel());

    if (print_frames) {
        util::Table table({"instance", "arrival (ms)",
                           "complete (ms)", "latency (ms)",
                           "deadline"});
        for (const sched::InstanceSla &sla :
             summary.sla.perInstance) {
            table.addRow(
                {wl.instances()[sla.instanceIdx].name,
                 util::fmtDouble(sla.arrivalCycle / 1e6, 3),
                 util::fmtDouble(sla.completionCycle / 1e6, 3),
                 util::fmtDouble(sla.latencyCycles / 1e6, 3),
                 fmtDeadline(sla)});
        }
        table.print(std::cout);
    }

    std::printf("%s: %zu/%zu deadline misses (%.1f%%), frame "
                "latency p50 %.3f ms, p99 %.3f ms, makespan "
                "%.3f ms\n",
                deadline_aware ? "EDF " : "FIFO",
                summary.sla.deadlineMisses,
                summary.sla.framesWithDeadline,
                summary.sla.missRate * 100.0,
                summary.sla.p50LatencyCycles / 1e6,
                summary.sla.p99LatencyCycles / 1e6,
                summary.makespanCycles / 1e6);
    return summary;
}

} // namespace

int
main()
{
    using namespace herald;
    util::setVerbose(false);

    accel::AcceleratorClass chip = accel::edgeClass();
    cost::CostModel model;

    workload::Workload wl = workload::mixedTenantScenario(4);
    std::printf("%s on %s: %zu instances, %zu layers "
                "(1 GHz clock; cycles / 1e6 = ms)\n\n",
                wl.name().c_str(), chip.name.c_str(),
                wl.numInstances(), wl.totalLayers());

    accel::Accelerator acc = accel::Accelerator::makeHda(
        chip,
        {dataflow::DataflowStyle::NVDLA,
         dataflow::DataflowStyle::ShiDiannao},
        {chip.numPes / 2, chip.numPes / 2},
        {chip.bwGBps / 2, chip.bwGBps / 2});

    std::printf("--- FIFO (arrival-ordered) on %s ---\n",
                acc.name().c_str());
    runScenario(model, wl, acc, false, true);
    std::printf("\n--- EDF (deadline-aware) on %s ---\n",
                acc.name().c_str());
    sched::ScheduleSummary edf =
        runScenario(model, wl, acc, true, true);

    // Timeline of the EDF schedule.
    sched::SchedulerOptions edf_opts;
    edf_opts.deadlineAware = true;
    sched::Schedule schedule =
        sched::HeraldScheduler(model, edf_opts).schedule(wl, acc);
    std::printf("\nEDF execution timeline\n%s\n",
                schedule.renderTimeline(wl).c_str());

    // Co-DSE under the SLA objective: find the partitioning with the
    // fewest deadline misses (latency breaking ties).
    dse::HeraldOptions dse_opts;
    dse_opts.partition.peGranularity = chip.numPes / 16;
    dse_opts.partition.bwGranularity = chip.bwGBps / 8;
    dse_opts.objective = dse::Objective::SlaViolations;
    dse_opts.scheduler.deadlineAware = true;
    dse::Herald herald(model, dse_opts);
    dse::DseResult result = herald.explore(
        wl, chip,
        {dataflow::DataflowStyle::NVDLA,
         dataflow::DataflowStyle::ShiDiannao});
    const dse::DsePoint &best = result.best();
    std::printf("SLA-optimal partition over %zu candidates: %s — "
                "%zu misses, p99 %.3f ms (even split: %zu misses, "
                "p99 %.3f ms)\n",
                result.points.size(), best.accelerator.name().c_str(),
                best.summary.sla.deadlineMisses,
                best.summary.sla.p99LatencyCycles / 1e6,
                edf.sla.deadlineMisses,
                edf.sla.p99LatencyCycles / 1e6);
    return 0;
}
