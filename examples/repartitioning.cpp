/**
 * @file
 * Elastic-repartitioning example: runtime PE migration between
 * sub-accelerators when the load mix shifts. Builds the
 * shifting-load factory workload — a dense NVDLA-affine stream in
 * the first half of the run, a heavy Shi-affine stream in the
 * second — and contrasts three outcomes on the same chip budget:
 *
 *  1. the frozen partition the run starts from (Reconfig::Off),
 *  2. the elastic run: the BacklogSkew policy watches the committed
 *     completion-frontier skew at every layer boundary and, when it
 *     crosses the threshold, drains both parties and migrates a PE
 *     quantum (with proportional bandwidth and buffer share) from
 *     the idle donor to the backlogged receiver — paying a modeled
 *     drain + rewire outage for every move,
 *  3. the DSE view: Herald::explore with a repartitioning-policy
 *     axis, so static splits compete against runtime migration
 *     under the SLA objective in one sweep.
 *
 * The elastic timeline renders migration windows as 'R' cells and
 * prefixes a per-epoch capacity header.
 */

#include <cstdio>

#include "accel/accelerator.hh"
#include "dse/herald_dse.hh"
#include "sched/herald_scheduler.hh"
#include "util/logging.hh"
#include "workload/workload.hh"

int
main()
{
    using namespace herald;
    util::setVerbose(false);

    workload::Workload wl = workload::shiftingLoadFactory(8);
    accel::AcceleratorClass chip = accel::edgeClass();
    // The starting partition favors the phase-1 tenant; phase 2 is
    // what migration has to solve.
    const std::uint64_t pes0 = 640;
    const double bw0 = chip.bwGBps * static_cast<double>(pes0) /
                       static_cast<double>(chip.numPes);
    accel::Accelerator acc = accel::Accelerator::makeHda(
        chip,
        {dataflow::DataflowStyle::NVDLA,
         dataflow::DataflowStyle::ShiDiannao},
        {pes0, chip.numPes - pes0}, {bw0, chip.bwGBps - bw0});

    cost::CostModel model;
    sched::SchedulerOptions opts;
    opts.policy = sched::Policy::Edf;

    // 1. Frozen partition: fine in phase 1, starved in phase 2.
    sched::Schedule frozen =
        sched::HeraldScheduler(model, opts).schedule(wl, acc);
    sched::SlaStats fixed = frozen.computeSla(wl);
    std::printf("frozen %3llu/%-3llu split: %2zu/%zu deadline "
                "misses\n",
                static_cast<unsigned long long>(pes0),
                static_cast<unsigned long long>(chip.numPes - pes0),
                fixed.deadlineMisses, fixed.framesWithDeadline);

    // 2. Elastic: same start, runtime PE migration allowed.
    opts.reconfig.policy = sched::Reconfig::BacklogSkew;
    opts.reconfig.skewThresholdCycles = 3e7;
    opts.reconfig.migrationQuantumPes = 128;
    opts.reconfig.drainCycles = 5e4;
    opts.reconfig.perPeRewireCycles = 100.0;
    opts.reconfig.cooldownCycles = 1e6;
    sched::Schedule elastic =
        sched::HeraldScheduler(model, opts).schedule(wl, acc);
    sched::SlaStats moved = elastic.computeSla(wl);
    std::printf("elastic same start:   %2zu/%zu deadline misses, "
                "%zu migrations\n",
                moved.deadlineMisses, moved.framesWithDeadline,
                elastic.reconfigEvents().size());
    for (const sched::ReconfigEvent &ev : elastic.reconfigEvents()) {
        std::printf("  epoch %llu @ %.3e: acc%zu -> acc%zu, "
                    "%llu PEs\n",
                    static_cast<unsigned long long>(ev.epochId),
                    ev.endCycle, ev.donor, ev.receiver,
                    static_cast<unsigned long long>(ev.movedPes));
    }
    std::printf("\n%s\n", elastic.renderTimeline(wl, 72).c_str());

    // 3. Co-DSE with the repartitioning axis: the sweep evaluates
    // every partition candidate both frozen and elastic and picks
    // across the cross product under the SLA objective.
    dse::HeraldOptions hopts;
    hopts.objective = dse::Objective::SlaViolations;
    hopts.scheduler.policy = sched::Policy::Edf;
    hopts.partition.peGranularity = chip.numPes / 8;
    hopts.partition.bwGranularity = chip.bwGBps / 8;
    hopts.reconfigCandidates = {sched::ReconfigOptions{},
                                opts.reconfig};
    dse::Herald herald(model, hopts);
    dse::DseResult result = herald.explore(
        wl, chip,
        {dataflow::DataflowStyle::NVDLA,
         dataflow::DataflowStyle::ShiDiannao});
    const dse::DsePoint &best = result.best();
    std::printf("DSE best: %s with %s repartitioning "
                "(%zu/%zu misses over %zu points)\n",
                best.accelerator.name().c_str(),
                sched::toString(best.reconfig.policy),
                best.summary.sla.deadlineMisses,
                best.summary.sla.framesWithDeadline,
                result.points.size());
    return 0;
}
