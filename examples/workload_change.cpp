/**
 * @file
 * Workload-change example (the paper's deployment story, Fig. 13):
 * an HDA is taped out with partitioning optimized for one workload;
 * after deployment the application changes. Hardware is fixed — only
 * Herald's *scheduler* can adapt. This example optimizes Maelstrom
 * for AR/VR-A, then re-schedules AR/VR-B and MLPerf on the frozen
 * design and reports the cost of running "foreign" workloads.
 */

#include <cstdio>
#include <iostream>

#include "dse/herald_dse.hh"
#include "sched/herald_scheduler.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "workload/workload.hh"

int
main()
{
    using namespace herald;
    util::setVerbose(false);

    accel::AcceleratorClass chip = accel::edgeClass();
    cost::CostModel model;

    // 1. Design-time: co-optimize partitioning + schedule for the
    //    workload we expect to ship with.
    workload::Workload design_wl = workload::arvrA();
    dse::HeraldOptions opts;
    opts.partition.peGranularity = chip.numPes / 16;
    opts.partition.bwGranularity = chip.bwGBps / 8;
    dse::Herald herald(model, opts);
    dse::DseResult result = herald.explore(
        design_wl, chip,
        {dataflow::DataflowStyle::NVDLA,
         dataflow::DataflowStyle::ShiDiannao});
    const accel::Accelerator frozen = result.best().accelerator;

    std::printf("Taped-out design (optimized for %s):\n  %s\n\n",
                design_wl.name().c_str(), frozen.name().c_str());

    // 2. Deployment-time: the workload changes; only re-scheduling
    //    (compile-time Herald) is possible on the frozen silicon.
    util::Table table({"workload on frozen design", "latency (ms)",
                       "energy (mJ)", "EDP (mJ*s)",
                       "EDP vs re-optimized HDA"});
    std::vector<workload::Workload> workloads;
    workloads.push_back(workload::arvrA());
    workloads.push_back(workload::arvrB());
    workloads.push_back(workload::mlperf());

    for (const workload::Workload &wl : workloads) {
        dse::DsePoint on_frozen = herald.evaluate(wl, frozen);

        // What a from-scratch redesign for this workload would get.
        dse::DseResult redesigned = herald.explore(
            wl, chip,
            {dataflow::DataflowStyle::NVDLA,
             dataflow::DataflowStyle::ShiDiannao});

        double penalty = on_frozen.summary.edp() /
                             redesigned.best().summary.edp() -
                         1.0;
        table.addRow(
            {wl.name(),
             util::fmtDouble(on_frozen.summary.latencySec * 1e3, 4),
             util::fmtDouble(on_frozen.summary.energyMj, 4),
             util::fmtDouble(on_frozen.summary.edp(), 4),
             util::fmtPercent(penalty)});
    }
    table.print(std::cout);

    std::printf("\nExpected shape (paper Fig. 13): re-scheduling "
                "absorbs most of a workload\nchange; running a "
                "foreign workload costs only a few percent EDP over "
                "a\nfrom-scratch redesign.\n");
    return 0;
}
