#include "accel/accelerator.hh"

#include <cmath>
#include <sstream>

#include "util/logging.hh"

namespace herald::accel
{

AcceleratorClass
edgeClass()
{
    return AcceleratorClass{"edge", 1024, 16.0, 4ULL << 20};
}

AcceleratorClass
mobileClass()
{
    return AcceleratorClass{"mobile", 4096, 64.0, 8ULL << 20};
}

AcceleratorClass
cloudClass()
{
    return AcceleratorClass{"cloud", 16384, 256.0, 16ULL << 20};
}

std::vector<AcceleratorClass>
allClasses()
{
    return {edgeClass(), mobileClass(), cloudClass()};
}

const char *
toString(AcceleratorKind kind)
{
    switch (kind) {
      case AcceleratorKind::FDA:
        return "FDA";
      case AcceleratorKind::SMFDA:
        return "SM-FDA";
      case AcceleratorKind::RDA:
        return "RDA";
      case AcceleratorKind::HDA:
        return "HDA";
    }
    util::panic("unknown AcceleratorKind");
}

Accelerator::Accelerator(std::string name, AcceleratorKind kind,
                         std::vector<SubAccelerator> subs_in,
                         const AcceleratorClass &chip)
    : accName(std::move(name)), accKind(kind),
      subs(std::move(subs_in)), chipClass(chip)
{
    validate();
}

void
Accelerator::validate() const
{
    if (subs.empty())
        util::fatal("accelerator '", accName, "': no sub-accelerators");

    std::uint64_t pes = 0;
    double bw = 0.0;
    for (const SubAccelerator &sub : subs) {
        if (sub.numPes == 0)
            util::fatal("accelerator '", accName,
                        "': sub-accelerator with zero PEs");
        if (sub.bwGBps <= 0.0)
            util::fatal("accelerator '", accName,
                        "': sub-accelerator with zero bandwidth");
        pes += sub.numPes;
        bw += sub.bwGBps;
    }
    if (pes != chipClass.numPes) {
        util::fatal("accelerator '", accName, "': PE shares sum to ",
                    pes, " != chip budget ", chipClass.numPes);
    }
    if (std::abs(bw - chipClass.bwGBps) > 1e-6) {
        util::fatal("accelerator '", accName,
                    "': bandwidth shares sum to ", bw,
                    " != chip budget ", chipClass.bwGBps);
    }
}

Accelerator
Accelerator::makeFda(const AcceleratorClass &chip,
                     dataflow::DataflowStyle style)
{
    std::ostringstream name;
    name << toString(style) << " FDA (" << chip.name << ")";
    return Accelerator(name.str(), AcceleratorKind::FDA,
                       {SubAccelerator{style, chip.numPes, chip.bwGBps,
                                       false}},
                       chip);
}

Accelerator
Accelerator::makeScaledOutFda(const AcceleratorClass &chip,
                              dataflow::DataflowStyle style,
                              std::size_t n)
{
    if (n == 0 || chip.numPes % n != 0)
        util::fatal("SM-FDA: sub-accelerator count ", n,
                    " must evenly divide ", chip.numPes, " PEs");
    std::vector<SubAccelerator> subs;
    for (std::size_t i = 0; i < n; ++i) {
        subs.push_back(SubAccelerator{style, chip.numPes / n,
                                      chip.bwGBps / n, false});
    }
    std::ostringstream name;
    name << toString(style) << " SM-FDA x" << n << " (" << chip.name
         << ")";
    return Accelerator(name.str(), AcceleratorKind::SMFDA,
                       std::move(subs), chip);
}

Accelerator
Accelerator::makeRda(const AcceleratorClass &chip)
{
    SubAccelerator sub;
    sub.numPes = chip.numPes;
    sub.bwGBps = chip.bwGBps;
    sub.flexible = true;
    std::ostringstream name;
    name << "MAERI RDA (" << chip.name << ")";
    return Accelerator(name.str(), AcceleratorKind::RDA, {sub}, chip);
}

Accelerator
Accelerator::makeHda(const AcceleratorClass &chip,
                     std::vector<dataflow::DataflowStyle> styles,
                     std::vector<std::uint64_t> pe_split,
                     std::vector<double> bw_split)
{
    if (styles.size() != pe_split.size() ||
        styles.size() != bw_split.size() || styles.empty()) {
        util::fatal("HDA: styles/PE/bandwidth arity mismatch");
    }
    std::vector<SubAccelerator> subs;
    std::ostringstream name;
    name << "HDA";
    for (std::size_t i = 0; i < styles.size(); ++i) {
        subs.push_back(SubAccelerator{styles[i], pe_split[i],
                                      bw_split[i], false});
        name << (i == 0 ? " " : "+") << dataflow::shortName(styles[i]);
    }
    name << " (";
    for (std::size_t i = 0; i < pe_split.size(); ++i)
        name << (i == 0 ? "" : "/") << pe_split[i];
    name << " pe, ";
    for (std::size_t i = 0; i < bw_split.size(); ++i)
        name << (i == 0 ? "" : "/") << bw_split[i];
    name << " GBps, " << chip.name << ")";
    return Accelerator(name.str(), AcceleratorKind::HDA,
                       std::move(subs), chip);
}

cost::SubAccResources
Accelerator::resources(std::size_t idx) const
{
    if (idx >= subs.size())
        util::panic("sub-accelerator index ", idx, " out of range");
    cost::SubAccResources res;
    res.numPes = subs[idx].numPes;
    res.bwGBps = subs[idx].bwGBps;
    res.l2Bytes = chipClass.globalBufferBytes / subs.size();
    return res;
}

} // namespace herald::accel
