#include "accel/accelerator.hh"

#include <cmath>
#include <sstream>

#include "util/logging.hh"

namespace herald::accel
{

AcceleratorClass
edgeClass()
{
    return AcceleratorClass{"edge", 1024, 16.0, 4ULL << 20};
}

AcceleratorClass
mobileClass()
{
    return AcceleratorClass{"mobile", 4096, 64.0, 8ULL << 20};
}

AcceleratorClass
cloudClass()
{
    return AcceleratorClass{"cloud", 16384, 256.0, 16ULL << 20};
}

std::vector<AcceleratorClass>
allClasses()
{
    return {edgeClass(), mobileClass(), cloudClass()};
}

const char *
toString(AcceleratorKind kind)
{
    switch (kind) {
      case AcceleratorKind::FDA:
        return "FDA";
      case AcceleratorKind::SMFDA:
        return "SM-FDA";
      case AcceleratorKind::RDA:
        return "RDA";
      case AcceleratorKind::HDA:
        return "HDA";
    }
    util::panic("unknown AcceleratorKind");
}

Accelerator::Accelerator(std::string name, AcceleratorKind kind,
                         std::vector<SubAccelerator> subs_in,
                         const AcceleratorClass &chip)
    : accName(std::move(name)), accKind(kind),
      subs(std::move(subs_in)), chipClass(chip)
{
    validate();
}

void
Accelerator::validate() const
{
    if (subs.empty())
        util::fatal("accelerator '", accName, "': no sub-accelerators");

    std::uint64_t pes = 0;
    double bw = 0.0;
    for (const SubAccelerator &sub : subs) {
        if (sub.numPes == 0)
            util::fatal("accelerator '", accName,
                        "': sub-accelerator with zero PEs");
        if (sub.bwGBps <= 0.0)
            util::fatal("accelerator '", accName,
                        "': sub-accelerator with zero bandwidth");
        pes += sub.numPes;
        bw += sub.bwGBps;
    }
    if (pes != chipClass.numPes) {
        util::fatal("accelerator '", accName, "': PE shares sum to ",
                    pes, " != chip budget ", chipClass.numPes);
    }
    if (std::abs(bw - chipClass.bwGBps) > 1e-6) {
        util::fatal("accelerator '", accName,
                    "': bandwidth shares sum to ", bw,
                    " != chip budget ", chipClass.bwGBps);
    }
}

Accelerator
Accelerator::makeFda(const AcceleratorClass &chip,
                     dataflow::DataflowStyle style)
{
    std::ostringstream name;
    name << toString(style) << " FDA (" << chip.name << ")";
    return Accelerator(name.str(), AcceleratorKind::FDA,
                       {SubAccelerator{style, chip.numPes, chip.bwGBps,
                                       false}},
                       chip);
}

Accelerator
Accelerator::makeScaledOutFda(const AcceleratorClass &chip,
                              dataflow::DataflowStyle style,
                              std::size_t n)
{
    if (n == 0 || chip.numPes % n != 0)
        util::fatal("SM-FDA: sub-accelerator count ", n,
                    " must evenly divide ", chip.numPes, " PEs");
    std::vector<SubAccelerator> subs;
    for (std::size_t i = 0; i < n; ++i) {
        subs.push_back(SubAccelerator{style, chip.numPes / n,
                                      chip.bwGBps / n, false});
    }
    std::ostringstream name;
    name << toString(style) << " SM-FDA x" << n << " (" << chip.name
         << ")";
    return Accelerator(name.str(), AcceleratorKind::SMFDA,
                       std::move(subs), chip);
}

Accelerator
Accelerator::makeRda(const AcceleratorClass &chip)
{
    SubAccelerator sub;
    sub.numPes = chip.numPes;
    sub.bwGBps = chip.bwGBps;
    sub.flexible = true;
    std::ostringstream name;
    name << "MAERI RDA (" << chip.name << ")";
    return Accelerator(name.str(), AcceleratorKind::RDA, {sub}, chip);
}

Accelerator
Accelerator::makeHda(const AcceleratorClass &chip,
                     std::vector<dataflow::DataflowStyle> styles,
                     std::vector<std::uint64_t> pe_split,
                     std::vector<double> bw_split)
{
    if (styles.size() != pe_split.size() ||
        styles.size() != bw_split.size() || styles.empty()) {
        util::fatal("HDA: styles/PE/bandwidth arity mismatch");
    }
    std::vector<SubAccelerator> subs;
    std::ostringstream name;
    name << "HDA";
    for (std::size_t i = 0; i < styles.size(); ++i) {
        subs.push_back(SubAccelerator{styles[i], pe_split[i],
                                      bw_split[i], false});
        name << (i == 0 ? " " : "+") << dataflow::shortName(styles[i]);
    }
    name << " (";
    for (std::size_t i = 0; i < pe_split.size(); ++i)
        name << (i == 0 ? "" : "/") << pe_split[i];
    name << " pe, ";
    for (std::size_t i = 0; i < bw_split.size(); ++i)
        name << (i == 0 ? "" : "/") << bw_split[i];
    name << " GBps, " << chip.name << ")";
    return Accelerator(name.str(), AcceleratorKind::HDA,
                       std::move(subs), chip);
}

cost::SubAccResources
Accelerator::resources(std::size_t idx) const
{
    if (idx >= subs.size())
        util::panic("sub-accelerator index ", idx, " out of range");
    cost::SubAccResources res;
    res.numPes = subs[idx].numPes;
    res.bwGBps = subs[idx].bwGBps;
    res.l2Bytes = bufShare.empty()
                      ? chipClass.globalBufferBytes / subs.size()
                      : bufShare[idx];
    return res;
}

std::uint64_t
movedPes(const PartitionEpoch &from, const PartitionEpoch &to)
{
    if (from.peSplit.size() != to.peSplit.size())
        util::fatal("movedPes: epoch arity mismatch (",
                    from.peSplit.size(), " vs ", to.peSplit.size(),
                    ")");
    std::uint64_t moved = 0;
    for (std::size_t i = 0; i < from.peSplit.size(); ++i) {
        if (to.peSplit[i] > from.peSplit[i])
            moved += to.peSplit[i] - from.peSplit[i];
    }
    return moved;
}

double
reconfigPenaltyCycles(std::uint64_t moved_pes, double drain_cycles,
                      double per_pe_rewire_cycles)
{
    if (!std::isfinite(drain_cycles) || drain_cycles < 0.0 ||
        !std::isfinite(per_pe_rewire_cycles) ||
        per_pe_rewire_cycles < 0.0) {
        util::fatal("reconfigPenaltyCycles: penalty knobs must be "
                    "finite and non-negative");
    }
    return drain_cycles +
           static_cast<double>(moved_pes) * per_pe_rewire_cycles;
}

PartitionEpoch
Accelerator::partitionEpoch() const
{
    PartitionEpoch epoch;
    epoch.epochId = epochId;
    epoch.peSplit.reserve(subs.size());
    epoch.bwSplit.reserve(subs.size());
    for (const SubAccelerator &sub : subs) {
        epoch.peSplit.push_back(sub.numPes);
        epoch.bwSplit.push_back(sub.bwGBps);
    }
    epoch.bufferSplit = bufShare;
    return epoch;
}

Accelerator
Accelerator::withPartition(const PartitionEpoch &epoch) const
{
    if (epoch.peSplit.size() != subs.size() ||
        epoch.bwSplit.size() != subs.size() ||
        (!epoch.bufferSplit.empty() &&
         epoch.bufferSplit.size() != subs.size())) {
        util::fatal("accelerator '", accName,
                    "': partition epoch arity mismatch");
    }
    if (!epoch.bufferSplit.empty()) {
        std::uint64_t buf = 0;
        for (std::uint64_t b : epoch.bufferSplit) {
            if (b == 0)
                util::fatal("accelerator '", accName,
                            "': partition epoch with zero buffer "
                            "share");
            buf += b;
        }
        if (buf != chipClass.globalBufferBytes) {
            util::fatal("accelerator '", accName,
                        "': buffer shares sum to ", buf,
                        " != global buffer ",
                        chipClass.globalBufferBytes);
        }
    }
    Accelerator next(*this);
    for (std::size_t i = 0; i < subs.size(); ++i) {
        next.subs[i].numPes = epoch.peSplit[i];
        next.subs[i].bwGBps = epoch.bwSplit[i];
    }
    next.bufShare = epoch.bufferSplit;
    next.epochId = epoch.epochId;
    next.validate(); // re-checks PE/bandwidth sums and non-zero shares
    return next;
}

} // namespace herald::accel
