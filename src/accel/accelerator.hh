/**
 * @file
 * Whole-chip accelerator descriptors: the accelerator classes of
 * Table IV (edge / mobile / cloud) and the accelerator styles of
 * Table III (FDA, scaled-out multi-FDA, RDA, HDA).
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "accel/sub_accelerator.hh"
#include "cost/cost_model.hh"

namespace herald::accel
{

/** Chip-level resource budget (Table IV row). */
struct AcceleratorClass
{
    std::string name;
    std::uint64_t numPes = 0;
    double bwGBps = 0.0;
    std::uint64_t globalBufferBytes = 0;
};

/** Edge: 1024 PEs, 16 GB/s, 4 MiB. */
AcceleratorClass edgeClass();
/** Mobile: 4096 PEs, 64 GB/s, 8 MiB. */
AcceleratorClass mobileClass();
/** Cloud: 16384 PEs, 256 GB/s, 16 MiB. */
AcceleratorClass cloudClass();
/** All three classes in edge/mobile/cloud order. */
std::vector<AcceleratorClass> allClasses();

/** Architecture family of an accelerator instance (Table III). */
enum class AcceleratorKind
{
    FDA,      //!< monolithic fixed-dataflow accelerator
    SMFDA,    //!< scaled-out multi-FDA (same dataflow, even split)
    RDA,      //!< reconfigurable dataflow accelerator (MAERI-style)
    HDA,      //!< heterogeneous dataflow accelerator (this paper)
};

const char *toString(AcceleratorKind kind);

/**
 * One versioned resource split across sub-accelerators. Epoch 0 is
 * the split the accelerator was constructed with; each runtime
 * repartitioning produces a successor epoch via
 * Accelerator::withPartition().
 */
struct PartitionEpoch
{
    std::uint64_t epochId = 0;
    std::vector<std::uint64_t> peSplit;
    std::vector<double> bwSplit;
    /**
     * Per-sub-accelerator share of the global buffer in bytes; empty
     * means an even split (the epoch-0 default).
     */
    std::vector<std::uint64_t> bufferSplit;
};

/**
 * PEs that change owner between two epochs: the sum of positive
 * per-sub-accelerator deltas (fatal on arity mismatch).
 */
std::uint64_t movedPes(const PartitionEpoch &from,
                       const PartitionEpoch &to);

/**
 * Modeled cost of swapping in a new epoch: a fixed pipeline-drain
 * term plus a rewire term proportional to the PEs that change owner.
 */
double reconfigPenaltyCycles(std::uint64_t moved_pes,
                             double drain_cycles,
                             double per_pe_rewire_cycles);

/**
 * A fully-specified accelerator: sub-accelerators plus the shared
 * global buffer. Factories enforce Definition 1's constraints: PE and
 * bandwidth shares sum exactly to the chip budget.
 */
class Accelerator
{
  public:
    Accelerator(std::string name, AcceleratorKind kind,
                std::vector<SubAccelerator> subs,
                const AcceleratorClass &chip);

    /** Monolithic FDA running @p style with the whole budget. */
    static Accelerator makeFda(const AcceleratorClass &chip,
                               dataflow::DataflowStyle style);

    /** Scaled-out multi-FDA: @p n identical evenly-split sub-accs. */
    static Accelerator makeScaledOutFda(const AcceleratorClass &chip,
                                        dataflow::DataflowStyle style,
                                        std::size_t n = 2);

    /** MAERI-style RDA: one flexible array with the whole budget. */
    static Accelerator makeRda(const AcceleratorClass &chip);

    /**
     * HDA with explicit partitioning. @p styles, @p pe_split and
     * @p bw_split must have equal arity; splits must sum to the chip
     * budget (fatal otherwise).
     */
    static Accelerator makeHda(const AcceleratorClass &chip,
                               std::vector<dataflow::DataflowStyle>
                                   styles,
                               std::vector<std::uint64_t> pe_split,
                               std::vector<double> bw_split);

    const std::string &name() const { return accName; }
    AcceleratorKind kind() const { return accKind; }
    const std::vector<SubAccelerator> &subAccs() const { return subs; }
    std::size_t numSubAccs() const { return subs.size(); }
    const AcceleratorClass &chip() const { return chipClass; }
    std::uint64_t globalBufferBytes() const
    {
        return chipClass.globalBufferBytes;
    }

    /**
     * Cost-model resource view of sub-accelerator @p idx: its PE and
     * bandwidth share plus its buffer share (an even share of the
     * global buffer unless a later epoch reassigned it).
     */
    cost::SubAccResources resources(std::size_t idx) const;

    /**
     * The live resource split as a PartitionEpoch (buffer split is
     * empty while the epoch-0 even split is still in force).
     */
    PartitionEpoch partitionEpoch() const;

    /** Epoch id of the live split (0 until repartitioned). */
    std::uint64_t partitionEpochId() const { return epochId; }

    /**
     * A copy of this accelerator running @p epoch's split: same
     * styles and chip, new per-sub-acc PE/bandwidth/buffer shares.
     * Arity must match and the shares must sum to the chip budget
     * (fatal otherwise, like the factories).
     */
    Accelerator withPartition(const PartitionEpoch &epoch) const;

  private:
    std::string accName;
    AcceleratorKind accKind;
    std::vector<SubAccelerator> subs;
    AcceleratorClass chipClass;
    /** Per-sub-acc buffer bytes; empty = epoch-0 even split. */
    std::vector<std::uint64_t> bufShare;
    std::uint64_t epochId = 0;

    void validate() const;
};

} // namespace herald::accel

