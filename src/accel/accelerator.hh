/**
 * @file
 * Whole-chip accelerator descriptors: the accelerator classes of
 * Table IV (edge / mobile / cloud) and the accelerator styles of
 * Table III (FDA, scaled-out multi-FDA, RDA, HDA).
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "accel/sub_accelerator.hh"
#include "cost/cost_model.hh"

namespace herald::accel
{

/** Chip-level resource budget (Table IV row). */
struct AcceleratorClass
{
    std::string name;
    std::uint64_t numPes = 0;
    double bwGBps = 0.0;
    std::uint64_t globalBufferBytes = 0;
};

/** Edge: 1024 PEs, 16 GB/s, 4 MiB. */
AcceleratorClass edgeClass();
/** Mobile: 4096 PEs, 64 GB/s, 8 MiB. */
AcceleratorClass mobileClass();
/** Cloud: 16384 PEs, 256 GB/s, 16 MiB. */
AcceleratorClass cloudClass();
/** All three classes in edge/mobile/cloud order. */
std::vector<AcceleratorClass> allClasses();

/** Architecture family of an accelerator instance (Table III). */
enum class AcceleratorKind
{
    FDA,      //!< monolithic fixed-dataflow accelerator
    SMFDA,    //!< scaled-out multi-FDA (same dataflow, even split)
    RDA,      //!< reconfigurable dataflow accelerator (MAERI-style)
    HDA,      //!< heterogeneous dataflow accelerator (this paper)
};

const char *toString(AcceleratorKind kind);

/**
 * A fully-specified accelerator: sub-accelerators plus the shared
 * global buffer. Factories enforce Definition 1's constraints: PE and
 * bandwidth shares sum exactly to the chip budget.
 */
class Accelerator
{
  public:
    Accelerator(std::string name, AcceleratorKind kind,
                std::vector<SubAccelerator> subs,
                const AcceleratorClass &chip);

    /** Monolithic FDA running @p style with the whole budget. */
    static Accelerator makeFda(const AcceleratorClass &chip,
                               dataflow::DataflowStyle style);

    /** Scaled-out multi-FDA: @p n identical evenly-split sub-accs. */
    static Accelerator makeScaledOutFda(const AcceleratorClass &chip,
                                        dataflow::DataflowStyle style,
                                        std::size_t n = 2);

    /** MAERI-style RDA: one flexible array with the whole budget. */
    static Accelerator makeRda(const AcceleratorClass &chip);

    /**
     * HDA with explicit partitioning. @p styles, @p pe_split and
     * @p bw_split must have equal arity; splits must sum to the chip
     * budget (fatal otherwise).
     */
    static Accelerator makeHda(const AcceleratorClass &chip,
                               std::vector<dataflow::DataflowStyle>
                                   styles,
                               std::vector<std::uint64_t> pe_split,
                               std::vector<double> bw_split);

    const std::string &name() const { return accName; }
    AcceleratorKind kind() const { return accKind; }
    const std::vector<SubAccelerator> &subAccs() const { return subs; }
    std::size_t numSubAccs() const { return subs.size(); }
    const AcceleratorClass &chip() const { return chipClass; }
    std::uint64_t globalBufferBytes() const
    {
        return chipClass.globalBufferBytes;
    }

    /**
     * Cost-model resource view of sub-accelerator @p idx: its PE and
     * bandwidth share plus an even share of the global buffer.
     */
    cost::SubAccResources resources(std::size_t idx) const;

  private:
    std::string accName;
    AcceleratorKind accKind;
    std::vector<SubAccelerator> subs;
    AcceleratorClass chipClass;

    void validate() const;
};

} // namespace herald::accel

