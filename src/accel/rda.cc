#include "accel/rda.hh"

#include "util/logging.hh"

namespace herald::accel
{

namespace
{

/** Apply RDA interconnect tax and reconfiguration penalties. */
void
applyRdaOverheads(cost::LayerCost &cost, const RdaOverheads &rda,
                  const cost::EnergyModel &energy,
                  const cost::SubAccResources &res)
{
    // Tax on-chip dynamic energy; DRAM and static are unaffected by
    // the flexible interconnect.
    const double onchip = cost.macEnergy + cost.l1EnergyTotal +
                          cost.l2EnergyTotal + cost.nocEnergyTotal;
    const double taxed = onchip * (rda.interconnectEnergyTax - 1.0);

    const double reconfig_cycles =
        rda.reconfigBaseCycles +
        rda.reconfigCyclesPerPe * static_cast<double>(res.numPes);
    const double reconfig_energy =
        rda.reconfigEnergyPerPe * static_cast<double>(res.numPes);

    cost.cycles += reconfig_cycles;
    cost.latencySec = cost.cycles / (res.clockGHz * 1e9);
    cost.energyUnits += taxed + reconfig_energy;
    cost.energyMj = energy.toMillijoules(cost.energyUnits);
}

} // namespace

StyledLayerCost
evaluateOnSubAcc(cost::CostModel &model, const Accelerator &acc,
                 std::size_t sub_idx, const dnn::Layer &layer,
                 const RdaOverheads &rda)
{
    return evaluateOnSub(model, acc.subAccs().at(sub_idx),
                         acc.resources(sub_idx), layer, rda);
}

StyledLayerCost
evaluateOnSub(cost::CostModel &model, const SubAccelerator &sub,
              const cost::SubAccResources &res,
              const dnn::Layer &layer, const RdaOverheads &rda)
{
    if (!sub.flexible) {
        return StyledLayerCost{sub.style,
                               model.evaluate(layer, sub.style, res)};
    }

    // Flexible array: reconfigure to the best style for this layer.
    bool first = true;
    StyledLayerCost best;
    for (dataflow::DataflowStyle style : dataflow::kAllStyles) {
        cost::LayerCost cost = model.evaluate(layer, style, res);
        applyRdaOverheads(cost, rda, model.energyModel(), res);
        if (first || cost.edp() < best.cost.edp()) {
            best = StyledLayerCost{style, cost};
            first = false;
        }
    }
    return best;
}

} // namespace herald::accel
