/**
 * @file
 * Layer evaluation on sub-accelerators, including the MAERI-style RDA
 * overhead model.
 *
 * RDAs reconfigure to the best mapping per layer, so a flexible
 * sub-accelerator evaluates all dataflow styles and keeps the best.
 * That flexibility is paid for with (i) a flexible-interconnect
 * energy tax on on-chip activity — calibrated to the paper's
 * measurement that MAERI needs ~11.7% more energy than an NVDLA-style
 * FDA on average — and (ii) a per-layer reconfiguration penalty in
 * latency and energy (configuring the distribution/reduction trees
 * scales with the PE count).
 */

#pragma once

#include "accel/accelerator.hh"
#include "cost/cost_model.hh"
#include "dataflow/style.hh"
#include "dnn/layer.hh"

namespace herald::accel
{

/** RDA overhead coefficients (see file comment for calibration). */
struct RdaOverheads
{
    /** Multiplier on on-chip dynamic energy (MAC/L1/L2/NoC). */
    double interconnectEnergyTax = 1.18;
    /** Reconfiguration latency: base + perPe * numPes cycles. */
    double reconfigBaseCycles = 512.0;
    double reconfigCyclesPerPe = 0.0625;
    /** Reconfiguration energy per PE (switch/VN setup), MAC units. */
    double reconfigEnergyPerPe = 4.0;
};

/** A layer cost together with the dataflow chosen to achieve it. */
struct StyledLayerCost
{
    dataflow::DataflowStyle style = dataflow::DataflowStyle::NVDLA;
    cost::LayerCost cost;
};

/**
 * Evaluate @p layer on sub-accelerator @p sub_idx of @p acc: fixed
 * sub-accelerators use their style directly; flexible ones pick the
 * minimum-EDP style and pay the RDA overheads.
 */
StyledLayerCost evaluateOnSubAcc(cost::CostModel &model,
                                 const Accelerator &acc,
                                 std::size_t sub_idx,
                                 const dnn::Layer &layer,
                                 const RdaOverheads &rda =
                                     RdaOverheads{});

/**
 * Same evaluation with the sub-accelerator descriptor and its
 * resource view already resolved — lets bulk callers (the scheduler's
 * LayerCostTable prefill) hoist the per-sub-accelerator resource
 * computation out of their (layer x sub-acc) loop.
 */
StyledLayerCost evaluateOnSub(cost::CostModel &model,
                              const SubAccelerator &sub,
                              const cost::SubAccResources &res,
                              const dnn::Layer &layer,
                              const RdaOverheads &rda =
                                  RdaOverheads{});

} // namespace herald::accel

