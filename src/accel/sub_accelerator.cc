#include "accel/sub_accelerator.hh"

#include <sstream>

namespace herald::accel
{

std::string
toString(const SubAccelerator &sub)
{
    std::ostringstream oss;
    if (sub.flexible)
        oss << "rda";
    else
        oss << dataflow::shortName(sub.style);
    oss << ":" << sub.numPes << "pe/" << sub.bwGBps << "GBps";
    return oss.str();
}

} // namespace herald::accel
