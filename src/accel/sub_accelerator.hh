/**
 * @file
 * A sub-accelerator: one fixed-dataflow PE array inside an
 * accelerator chip (Definition 1 of the paper: a tuple of dataflow
 * style, PE share and global-NoC bandwidth share).
 */

#pragma once

#include <cstdint>
#include <string>

#include "dataflow/style.hh"

namespace herald::accel
{

/** One (dataflow, PEs, bandwidth) sub-accelerator tuple. */
struct SubAccelerator
{
    dataflow::DataflowStyle style = dataflow::DataflowStyle::NVDLA;
    std::uint64_t numPes = 0;
    double bwGBps = 0.0;
    /**
     * Reconfigurable sub-array: picks the best of all styles per
     * layer (used to model MAERI-style RDAs); @c style is ignored.
     */
    bool flexible = false;
};

/** Display label, e.g. "nvdla:4096pe/64GBps" or "rda:4096pe". */
std::string toString(const SubAccelerator &sub);

} // namespace herald::accel

