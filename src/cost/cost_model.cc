#include "cost/cost_model.hh"

#include <algorithm>
#include <array>
#include <cstring>

#include "util/logging.hh"

namespace herald::cost
{

namespace
{

using dataflow::TensorKind;

/** Bytes moved when the given word count crosses a memory boundary. */
double
bytes(std::uint64_t words)
{
    return static_cast<double>(words) *
           static_cast<double>(dnn::kDataBytes);
}

/** Bit pattern of a double for exact-identity hashing. */
std::uint64_t
doubleBits(double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

} // namespace

std::size_t
CostCacheKeyHash::operator()(const CostCacheKey &key) const
{
    std::uint64_t h = 0x243f6a8885a308d3ULL;
    auto mix = [&h](std::uint64_t v) {
        h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    };
    mix(key.depthwise);
    mix(key.k);
    mix(key.c);
    mix(key.oy);
    mix(key.ox);
    mix(key.r);
    mix(key.s);
    mix(key.strideNum);
    mix(key.strideDen);
    mix(static_cast<std::uint64_t>(key.style));
    mix(key.numPes);
    mix(key.l2Bytes);
    mix(key.l1Bytes);
    mix(key.bwBits);
    mix(key.dramBwBits);
    mix(key.clockBits);
    mix(key.localBwBits);
    return static_cast<std::size_t>(h);
}

CostModel::CostModel(EnergyModel energy_model, CostOptions options)
    : energy(energy_model), opts(options)
{
    validate(energy);
}

CostCacheKey
CostModel::cacheKey(const dnn::Layer &layer,
                    dataflow::DataflowStyle style,
                    const SubAccResources &res) const
{
    const dnn::CanonicalConv &conv = layer.canonical();
    CostCacheKey key;
    key.depthwise = conv.depthwise ? 1 : 0;
    key.k = conv.k;
    key.c = conv.c;
    key.oy = conv.oy;
    key.ox = conv.ox;
    key.r = conv.r;
    key.s = conv.s;
    key.strideNum = conv.strideNum;
    key.strideDen = conv.strideDen;
    key.style = style;
    key.numPes = res.numPes;
    key.l2Bytes = res.l2Bytes;
    key.l1Bytes = res.l1Bytes;
    key.bwBits = doubleBits(res.bwGBps);
    key.dramBwBits = doubleBits(res.dramBwGBps);
    key.clockBits = doubleBits(res.clockGHz);
    key.localBwBits = doubleBits(res.localBwBytesPerCycle);
    return key;
}

LayerCost
CostModel::evaluate(const dnn::Layer &layer,
                    dataflow::DataflowStyle style,
                    const SubAccResources &res)
{
    const CostCacheKey key = cacheKey(layer, style, res);
    // Shard on the high hash bits: the shard's unordered_map buckets
    // on the low bits, and reusing them would leave every key in a
    // shard congruent mod kCacheShards (chain blowup on power-of-two
    // bucket implementations).
    CacheShard &shard =
        shards[(CostCacheKeyHash{}(key) >> 57) % kCacheShards];
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto it = shard.map.find(key);
        if (it != shard.map.end())
            return it->second;
    }

    // Miss: compute outside the lock — evaluation is pure, so a
    // concurrent thread computing the same key produces the same
    // value and the emplace race below is benign.
    dataflow::MapperConstraints constraints;
    constraints.numPes = res.numPes;
    constraints.l1Bytes = res.l1Bytes;
    constraints.l2TileBudgetBytes = res.l2Bytes;
    dataflow::Mapping mapping =
        dataflow::buildMapping(style, layer, constraints);
    LayerCost cost = evaluateMapping(mapping, res);

    std::lock_guard<std::mutex> lock(shard.mutex);
    auto [pos, inserted] = shard.map.emplace(key, cost);
    (void)inserted;
    return pos->second;
}

std::size_t
CostModel::cacheSize() const
{
    std::size_t total = 0;
    for (const CacheShard &shard : shards) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        total += shard.map.size();
    }
    return total;
}

void
CostModel::clearCache()
{
    for (CacheShard &shard : shards) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.map.clear();
    }
}

LayerCost
CostModel::evaluateMapping(const dataflow::Mapping &mapping,
                           const SubAccResources &res) const
{
    const dnn::CanonicalConv &conv = mapping.layer();
    const ReuseReport reuse = analyzeMapping(mapping);

    LayerCost cost;
    cost.macs = conv.macs();
    cost.mappingUtil = mapping.mappingUtilization();
    cost.edgeUtil = mapping.edgeUtilization();
    cost.effectiveUtil = cost.mappingUtil * cost.edgeUtil;

    const TensorTraffic &in = reuse.of(TensorKind::Input);
    const TensorTraffic &wt = reuse.of(TensorKind::Weight);
    const TensorTraffic &out = reuse.of(TensorKind::Output);

    // --- Global-buffer staging requirement (double buffered) ---
    const std::uint64_t staging_bytes =
        2 * (in.unionTileElems + wt.unionTileElems +
             out.unionTileElems) * dnn::kDataBytes;
    cost.l2FootprintBytes = staging_bytes;

    // --- L2 <-> PE traffic ---
    const std::uint64_t out_writes = out.l2Words();
    const std::uint64_t out_readbacks = reuse.outputReadbacks();
    const std::uint64_t l2_read_words =
        in.l2Words() + wt.l2Words() + out_readbacks;
    cost.l2ReadBytes = bytes(l2_read_words);
    cost.nocBytes = bytes(l2_read_words + out_writes);

    // --- DRAM traffic with L2 retention scope ---
    // Multi-level tiling: find the largest suffix of the tile-
    // sequencing loops whose combined working set fits the L2 share.
    // Data referenced inside that scope stays in L2; only the loops
    // above the scope cause DRAM refetches (same stationarity walk as
    // at the L2->array boundary). Activations are forwarded producer
    // -> consumer inside L2 when they need DRAM only once anyway.
    const std::vector<dataflow::LoopLevel> outer =
        mapping.outerLoops();

    std::size_t scope = 0; // innermost outer loops retained in L2
    for (std::size_t s = 1; s <= outer.size(); ++s) {
        dataflow::RegionExtents ext = mapping.arrayExtents();
        for (std::size_t i = outer.size() - s; i < outer.size(); ++i)
            ext.multiply(outer[i].dim, outer[i].trips);
        std::uint64_t ws = 0;
        for (TensorKind t : {TensorKind::Input, TensorKind::Weight,
                             TensorKind::Output}) {
            ws += dataflow::tensorFootprint(conv, t, ext) *
                  dnn::kDataBytes;
        }
        if (ws <= res.l2Bytes)
            scope = s;
        else
            break;
    }

    dataflow::RegionExtents scope_ext = mapping.arrayExtents();
    for (std::size_t i = outer.size() - scope; i < outer.size(); ++i)
        scope_ext.multiply(outer[i].dim, outer[i].trips);
    const std::vector<dataflow::LoopLevel> above(
        outer.begin(), outer.end() - static_cast<std::ptrdiff_t>(scope));

    auto dram_tile = [&](TensorKind t) {
        return static_cast<double>(
            dataflow::tensorFootprint(conv, t, scope_ext));
    };
    auto dram_deliveries = [&](TensorKind t) {
        return dram_tile(t) *
               static_cast<double>(refetchFactor(conv, t, above));
    };

    double dram_read_words = 0.0;
    double dram_write_words = 0.0;

    const double in_dram = dram_deliveries(TensorKind::Input);
    const bool input_forwarded =
        opts.forwardActivationsThroughL2 &&
        in_dram <= static_cast<double>(in.wholeElems) + 0.5;
    if (!input_forwarded)
        dram_read_words += in_dram;

    // Weights always originate in DRAM.
    dram_read_words += dram_deliveries(TensorKind::Weight);

    // Output: DRAM writes beyond the final map are partial-sum
    // spills, which are also read back. A map that leaves the scope
    // only once can stay in L2 for its consumer (forwarding).
    const double out_dram = dram_deliveries(TensorKind::Output);
    const double out_spills =
        out_dram > static_cast<double>(out.wholeElems)
            ? out_dram - static_cast<double>(out.wholeElems)
            : 0.0;
    const bool output_forwarded =
        opts.forwardActivationsThroughL2 && out_spills <= 0.5;
    if (!output_forwarded)
        dram_write_words += out_dram;
    dram_read_words += out_spills;

    cost.dramBytes = (dram_read_words + dram_write_words) *
                     dnn::kDataBytes;
    cost.l2WriteBytes =
        bytes(out_writes) + dram_read_words * dnn::kDataBytes;

    // --- Latency: double-buffered roofline ---
    // The wide local bus carries buffer-to-array traffic; the
    // sub-accelerator's global NoC share carries the buffer-fill
    // (DRAM-path) traffic — that is the resource Herald partitions.
    cost.computeCycles = static_cast<double>(reuse.outerIters) *
                         static_cast<double>(reuse.innerMacsPerPe);
    const double bw_bytes_cycle = res.bwGBps / res.clockGHz;
    const double dram_bytes_cycle =
        std::min(res.effectiveDramBw(), res.bwGBps) / res.clockGHz;
    cost.nocCycles = cost.nocBytes / res.effectiveLocalBw();
    cost.dramCycles = cost.dramBytes / dram_bytes_cycle;

    const double fill_cycles =
        (static_cast<double>(staging_bytes) / 2.0) / bw_bytes_cycle;
    cost.cycles =
        std::max({cost.computeCycles, cost.nocCycles, cost.dramCycles}) +
        fill_cycles + opts.layerOverheadCycles;
    cost.latencySec = cost.cycles / (res.clockGHz * 1e9);

    // --- Energy ---
    const double macs_d = static_cast<double>(cost.macs);
    cost.macEnergy = macs_d * energy.macEnergy;

    // RF: two operand reads per MAC plus the psum read-modify-write,
    // amortized by spatial reduction (adder trees / inter-PE
    // accumulation) and by the temporal accumulation run (output-
    // stationary PEs keep the live partial sum in the accumulator).
    // Operand landing in the RF is folded into the read cost
    // (broadcast operands are consumed directly).
    const double spatial_red =
        static_cast<double>(reuse.spatialReduction);
    const double accum_run =
        spatial_red * static_cast<double>(reuse.innerAccumRun);
    const double rf_accesses =
        2.0 * macs_d + 2.0 * macs_d / accum_run;
    cost.l1EnergyTotal = rf_accesses * energy.l1Energy;

    const double l2_accesses =
        (cost.l2ReadBytes + cost.l2WriteBytes) /
        static_cast<double>(dnn::kDataBytes);
    cost.l2EnergyTotal = l2_accesses * energy.l2Energy;

    // NoC: each word read from (or written to) the local buffer
    // traverses the distribution tree once — multicast shares the
    // traversal and the hop scale accounts for the array diameter.
    const double noc_words =
        cost.nocBytes / static_cast<double>(dnn::kDataBytes) +
        (spatial_red > 1.0 ? macs_d / spatial_red : 0.0);
    cost.nocEnergyTotal =
        noc_words *
        energy.nocWordEnergy(static_cast<double>(res.numPes));

    const double dram_accesses = dram_read_words + dram_write_words;
    cost.dramEnergyTotal = dram_accesses * energy.dramEnergy;

    if (opts.staticEnergy) {
        cost.staticEnergyTotal = energy.staticPerPeCycle *
                                 static_cast<double>(res.numPes) *
                                 cost.cycles;
    }

    cost.energyUnits = cost.macEnergy + cost.l1EnergyTotal +
                       cost.l2EnergyTotal + cost.nocEnergyTotal +
                       cost.dramEnergyTotal + cost.staticEnergyTotal;
    cost.energyMj = energy.toMillijoules(cost.energyUnits);
    return cost;
}

} // namespace herald::cost
