/**
 * @file
 * Analytical latency/energy estimation for one layer on one (sub-)
 * accelerator — the MAESTRO-style cost model Herald builds on
 * (paper Sec. IV-B), extended with: global-buffer residency for
 * inter-layer activation forwarding (execution-model steps 3/7),
 * static energy for the full PE array (dark-silicon cost), and a
 * per-layer context-change penalty knob.
 *
 * Latency uses a double-buffered roofline: compute, NoC and DRAM
 * phases overlap, so a layer takes the maximum of the three plus the
 * initial tile fill. Energy is activity counts times the EnergyModel
 * coefficients.
 */

#ifndef HERALD_COST_COST_MODEL_HH
#define HERALD_COST_COST_MODEL_HH

#include <cstdint>
#include <unordered_map>

#include "cost/energy_model.hh"
#include "cost/reuse_analysis.hh"
#include "dataflow/mapper.hh"
#include "dataflow/style.hh"
#include "dnn/layer.hh"

namespace herald::cost
{

/** Hardware resources of the (sub-)accelerator running the layer. */
struct SubAccResources
{
    std::uint64_t numPes = 256;    //!< PE count
    double bwGBps = 32.0;          //!< global NoC bandwidth share
    double dramBwGBps = 0.0;       //!< DRAM bandwidth (0 => == bwGBps)
    std::uint64_t l2Bytes = 1ULL << 20; //!< global-buffer share
    std::uint64_t l1Bytes = 512;   //!< per-PE register file
    double clockGHz = 1.0;         //!< PE clock

    /**
     * Local buffer-to-array interconnect width in bytes/cycle; 0
     * derives it from the array size (a quarter word per PE per
     * cycle, like NVDLA's 2048-bit CBUF port on a 1024-MAC core).
     * The *global* NoC share (bwGBps) — the resource Herald
     * partitions — bounds the buffer-fill (DRAM-path) traffic.
     */
    double localBwBytesPerCycle = 0.0;

    double
    effectiveDramBw() const
    {
        return dramBwGBps > 0.0 ? dramBwGBps : bwGBps;
    }

    double
    effectiveLocalBw() const
    {
        if (localBwBytesPerCycle > 0.0)
            return localBwBytesPerCycle;
        double derived = static_cast<double>(numPes) / 4.0;
        return derived < 16.0 ? 16.0 : derived;
    }
};

/** Behavioral knobs of the cost model. */
struct CostOptions
{
    /** Fixed per-layer control/configuration overhead (cycles). */
    double layerOverheadCycles = 500.0;
    /**
     * Activations are forwarded producer->consumer through the global
     * buffer when they fit (paper execution model step 7); when off,
     * every input is (re)fetched from DRAM.
     */
    bool forwardActivationsThroughL2 = true;
    /** Charge static energy for the sub-accelerator's PEs. */
    bool staticEnergy = true;
};

/** Full cost breakdown for one layer on one sub-accelerator. */
struct LayerCost
{
    // Headline metrics.
    double cycles = 0.0;     //!< end-to-end layer latency in cycles
    double latencySec = 0.0; //!< cycles / clock
    double energyUnits = 0.0; //!< total energy in MAC units
    double energyMj = 0.0;   //!< total energy in millijoules

    /** Energy-delay product in (mJ x s). */
    double edp() const { return latencySec * energyMj; }

    // Roofline components (cycles).
    double computeCycles = 0.0;
    double nocCycles = 0.0;
    double dramCycles = 0.0;

    // Utilization.
    double mappingUtil = 0.0;   //!< spatially mapped PEs / all PEs
    double edgeUtil = 0.0;      //!< true MACs / padded MACs
    double effectiveUtil = 0.0; //!< product of the two

    // Volumes (bytes).
    double l2ReadBytes = 0.0;
    double l2WriteBytes = 0.0;
    double nocBytes = 0.0;
    double dramBytes = 0.0;

    // Scheduler inputs.
    std::uint64_t l2FootprintBytes = 0; //!< staging requirement
    std::uint64_t macs = 0;

    // Energy breakdown (MAC units).
    double macEnergy = 0.0;
    double l1EnergyTotal = 0.0;
    double l2EnergyTotal = 0.0;
    double nocEnergyTotal = 0.0;
    double dramEnergyTotal = 0.0;
    double staticEnergyTotal = 0.0;
};

/**
 * Stateless evaluator plus a memoization cache. Evaluation is a pure
 * function of (layer shape, style, resources), so results are cached
 * under that key — the DSE issues millions of queries for repeated
 * layers (batches, repeated blocks).
 */
class CostModel
{
  public:
    explicit CostModel(EnergyModel energy = EnergyModel{},
                       CostOptions options = CostOptions{});

    /** Evaluate @p layer under @p style on @p res (cached). */
    const LayerCost &evaluate(const dnn::Layer &layer,
                              dataflow::DataflowStyle style,
                              const SubAccResources &res);

    /** Uncached evaluation of a prepared mapping. */
    LayerCost evaluateMapping(const dataflow::Mapping &mapping,
                              const SubAccResources &res) const;

    const EnergyModel &energyModel() const { return energy; }
    const CostOptions &options() const { return opts; }

    /** Number of distinct (layer, style, resource) keys cached. */
    std::size_t cacheSize() const { return cache.size(); }
    void clearCache() { cache.clear(); }

  private:
    EnergyModel energy;
    CostOptions opts;
    std::unordered_map<std::uint64_t, LayerCost> cache;

    std::uint64_t cacheKey(const dnn::Layer &layer,
                           dataflow::DataflowStyle style,
                           const SubAccResources &res) const;
};

} // namespace herald::cost

#endif // HERALD_COST_COST_MODEL_HH
