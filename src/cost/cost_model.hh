/**
 * @file
 * Analytical latency/energy estimation for one layer on one (sub-)
 * accelerator — the MAESTRO-style cost model Herald builds on
 * (paper Sec. IV-B), extended with: global-buffer residency for
 * inter-layer activation forwarding (execution-model steps 3/7),
 * static energy for the full PE array (dark-silicon cost), and a
 * per-layer context-change penalty knob.
 *
 * Latency uses a double-buffered roofline: compute, NoC and DRAM
 * phases overlap, so a layer takes the maximum of the three plus the
 * initial tile fill. Energy is activity counts times the EnergyModel
 * coefficients.
 */

#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "cost/energy_model.hh"
#include "cost/reuse_analysis.hh"
#include "dataflow/mapper.hh"
#include "dataflow/style.hh"
#include "dnn/layer.hh"

namespace herald::cost
{

/** Hardware resources of the (sub-)accelerator running the layer. */
struct SubAccResources
{
    std::uint64_t numPes = 256;    //!< PE count
    double bwGBps = 32.0;          //!< global NoC bandwidth share
    double dramBwGBps = 0.0;       //!< DRAM bandwidth (0 => == bwGBps)
    std::uint64_t l2Bytes = 1ULL << 20; //!< global-buffer share
    std::uint64_t l1Bytes = 512;   //!< per-PE register file
    double clockGHz = 1.0;         //!< PE clock

    /**
     * Local buffer-to-array interconnect width in bytes/cycle; 0
     * derives it from the array size (a quarter word per PE per
     * cycle, like NVDLA's 2048-bit CBUF port on a 1024-MAC core).
     * The *global* NoC share (bwGBps) — the resource Herald
     * partitions — bounds the buffer-fill (DRAM-path) traffic.
     */
    double localBwBytesPerCycle = 0.0;

    double
    effectiveDramBw() const
    {
        return dramBwGBps > 0.0 ? dramBwGBps : bwGBps;
    }

    double
    effectiveLocalBw() const
    {
        if (localBwBytesPerCycle > 0.0)
            return localBwBytesPerCycle;
        double derived = static_cast<double>(numPes) / 4.0;
        return derived < 16.0 ? 16.0 : derived;
    }
};

/** Behavioral knobs of the cost model. */
struct CostOptions
{
    /** Fixed per-layer control/configuration overhead (cycles). */
    double layerOverheadCycles = 500.0;
    /**
     * Activations are forwarded producer->consumer through the global
     * buffer when they fit (paper execution model step 7); when off,
     * every input is (re)fetched from DRAM.
     */
    bool forwardActivationsThroughL2 = true;
    /** Charge static energy for the sub-accelerator's PEs. */
    bool staticEnergy = true;
};

/** Full cost breakdown for one layer on one sub-accelerator. */
struct LayerCost
{
    // Headline metrics.
    double cycles = 0.0;     //!< end-to-end layer latency in cycles
    double latencySec = 0.0; //!< cycles / clock
    double energyUnits = 0.0; //!< total energy in MAC units
    double energyMj = 0.0;   //!< total energy in millijoules

    /** Energy-delay product in (mJ x s). */
    double edp() const { return latencySec * energyMj; }

    // Roofline components (cycles).
    double computeCycles = 0.0;
    double nocCycles = 0.0;
    double dramCycles = 0.0;

    // Utilization.
    double mappingUtil = 0.0;   //!< spatially mapped PEs / all PEs
    double edgeUtil = 0.0;      //!< true MACs / padded MACs
    double effectiveUtil = 0.0; //!< product of the two

    // Volumes (bytes).
    double l2ReadBytes = 0.0;
    double l2WriteBytes = 0.0;
    double nocBytes = 0.0;
    double dramBytes = 0.0;

    // Scheduler inputs.
    std::uint64_t l2FootprintBytes = 0; //!< staging requirement
    std::uint64_t macs = 0;

    // Energy breakdown (MAC units).
    double macEnergy = 0.0;
    double l1EnergyTotal = 0.0;
    double l2EnergyTotal = 0.0;
    double nocEnergyTotal = 0.0;
    double dramEnergyTotal = 0.0;
    double staticEnergyTotal = 0.0;
};

/**
 * The full (layer geometry, style, resources) tuple a cached cost is
 * valid for. Evaluation depends on the layer only through its
 * CanonicalConv (the mapper consumes layer.canonical()), so the key
 * carries the canonical dims verbatim — real equality, closing the
 * silent wrong-cost hazard two hash-colliding tuples used to have.
 * Floating-point resource fields are stored as bit patterns so
 * operator== and the hash agree on the same identity.
 */
struct CostCacheKey
{
    // Canonical layer geometry.
    std::uint64_t depthwise = 0;
    std::uint64_t k = 0, c = 0, oy = 0, ox = 0, r = 0, s = 0;
    std::uint64_t strideNum = 0, strideDen = 0;
    // Mapping style.
    dataflow::DataflowStyle style = dataflow::DataflowStyle::NVDLA;
    // Resources (doubles as raw bit patterns).
    std::uint64_t numPes = 0;
    std::uint64_t l2Bytes = 0;
    std::uint64_t l1Bytes = 0;
    std::uint64_t bwBits = 0;
    std::uint64_t dramBwBits = 0;
    std::uint64_t clockBits = 0;
    std::uint64_t localBwBits = 0;

    bool operator==(const CostCacheKey &o) const
    {
        return depthwise == o.depthwise && k == o.k && c == o.c &&
               oy == o.oy && ox == o.ox && r == o.r && s == o.s &&
               strideNum == o.strideNum &&
               strideDen == o.strideDen && style == o.style &&
               numPes == o.numPes && l2Bytes == o.l2Bytes &&
               l1Bytes == o.l1Bytes && bwBits == o.bwBits &&
               dramBwBits == o.dramBwBits &&
               clockBits == o.clockBits &&
               localBwBits == o.localBwBits;
    }
};

/** Mixing hash over every key field (collisions are now harmless). */
struct CostCacheKeyHash
{
    std::size_t operator()(const CostCacheKey &key) const;
};

/**
 * Stateless evaluator plus a memoization cache. Evaluation is a pure
 * function of (layer shape, style, resources), so results are cached
 * under that key — the DSE issues millions of queries for repeated
 * layers (batches, repeated blocks).
 *
 * Caching is two-tier: this cache is the cross-candidate tier (keyed
 * on the full tuple, shared by every schedule the DSE builds), while
 * each schedule() run additionally front-loads its queries into a
 * dense sched::LayerCostTable so the scheduling loop itself performs
 * no hashing and takes no shard mutex — evaluate() is only reached
 * during table prefill, once per unique (layer, style, resources)
 * tuple per candidate.
 *
 * Thread safety: evaluate() may be called concurrently from any
 * number of threads. The cache is split into kCacheShards shards,
 * each guarded by its own mutex, and hits/misses return the LayerCost
 * by value so callers never hold references into a concurrently
 * mutated map. Misses compute outside the shard lock; on an insert
 * race the first writer wins (both threads computed the identical
 * pure-function result, so this stays deterministic). clearCache()
 * must not race with concurrent evaluate() callers that expect a
 * consistent cacheSize().
 */
class CostModel
{
  public:
    explicit CostModel(EnergyModel energy = EnergyModel{},
                       CostOptions options = CostOptions{});

    /** Evaluate @p layer under @p style on @p res (cached). */
    LayerCost evaluate(const dnn::Layer &layer,
                       dataflow::DataflowStyle style,
                       const SubAccResources &res);

    /** Uncached evaluation of a prepared mapping. */
    LayerCost evaluateMapping(const dataflow::Mapping &mapping,
                              const SubAccResources &res) const;

    const EnergyModel &energyModel() const { return energy; }
    const CostOptions &options() const { return opts; }

    /** Number of distinct (layer, style, resource) keys cached. */
    std::size_t cacheSize() const;
    void clearCache();

  private:
    static constexpr std::size_t kCacheShards = 16;

    struct CacheShard
    {
        mutable std::mutex mutex;
        std::unordered_map<CostCacheKey, LayerCost, CostCacheKeyHash>
            map;
    };

    EnergyModel energy;
    CostOptions opts;
    std::array<CacheShard, kCacheShards> shards;

    CostCacheKey cacheKey(const dnn::Layer &layer,
                          dataflow::DataflowStyle style,
                          const SubAccResources &res) const;
};

} // namespace herald::cost

