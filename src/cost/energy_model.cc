#include "cost/energy_model.hh"

#include "util/logging.hh"

namespace herald::cost
{

void
validate(const EnergyModel &model)
{
    if (model.macEnergy <= 0.0)
        util::fatal("EnergyModel: macEnergy must be positive");
    if (model.l1Energy < 0.0 || model.l2Energy < 0.0 ||
        model.dramEnergy < 0.0 || model.nocEnergyPerWord < 0.0 ||
        model.staticPerPeCycle < 0.0 || model.unitPicojoules <= 0.0) {
        util::fatal("EnergyModel: negative coefficient");
    }
}

} // namespace herald::cost
