/**
 * @file
 * Per-access energy coefficients for the analytical cost model.
 *
 * Values are relative to one MAC, following the MAESTRO / Eyeriss
 * energy tables (register file ~1.7x, global buffer ~18.6x, DRAM
 * ~222x a MAC). A single scale factor converts relative units to
 * picojoules; the defaults correspond to a 16-bit MAC in a 28nm-class
 * process, matching the paper's CAD-library setting. Absolute numbers
 * are not expected to match the authors' testbed — only ratios are
 * compared (see EXPERIMENTS.md).
 */

#pragma once

namespace herald::cost
{

/** Energy coefficients in units of one MAC operation. */
struct EnergyModel
{
    double macEnergy = 1.0;        //!< one multiply-accumulate
    double l1Energy = 1.68;        //!< one register-file access
    double l2Energy = 18.61;       //!< one global-buffer access
    double dramEnergy = 222.0;     //!< one DRAM word access
    double nocEnergyPerWord = 0.8; //!< word delivery at the ref array
    double staticPerPeCycle = 0.02; //!< leakage+clock per PE per cycle

    /**
     * NoC delivery energy scales with the array diameter (wire
     * length grows with sqrt(PEs)); nocEnergyPerWord is calibrated at
     * this reference PE count. This is why sub-accelerators (smaller
     * arrays) move data more cheaply than a monolithic array of the
     * same total size — one of the HDA energy advantages the paper
     * reports.
     */
    double nocHopReferencePes = 1024.0;

    double unitPicojoules = 0.4;   //!< pJ per MAC unit (28nm, 16-bit)

    /** Per-word NoC energy on an array of @p num_pes PEs. */
    double
    nocWordEnergy(double num_pes) const
    {
        if (nocHopReferencePes <= 0.0)
            return nocEnergyPerWord;
        double scale = num_pes / nocHopReferencePes;
        return nocEnergyPerWord * (scale > 0.0 ? __builtin_sqrt(scale)
                                               : 1.0);
    }

    /** Convert relative energy units to millijoules. */
    double
    toMillijoules(double units) const
    {
        return units * unitPicojoules * 1e-9;
    }
};

/** Validate coefficients (all non-negative, mac > 0); fatal() if not. */
void validate(const EnergyModel &model);

} // namespace herald::cost

