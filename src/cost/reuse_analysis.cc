#include "cost/reuse_analysis.hh"

#include "util/logging.hh"

namespace herald::cost
{

namespace
{

using dataflow::Dim;
using dataflow::LoopLevel;
using dataflow::Mapping;
using dataflow::TensorKind;

} // namespace

std::uint64_t
refetchFactor(const dnn::CanonicalConv &conv, TensorKind tensor,
              const std::vector<LoopLevel> &outer_loops)
{
    std::uint64_t factor = 1;
    bool replaced = false;
    for (auto it = outer_loops.rbegin(); it != outer_loops.rend();
         ++it) {
        bool relevant = dataflow::tensorUsesDim(conv, tensor, it->dim);
        if (relevant) {
            factor *= it->trips;
            replaced = true;
        } else if (replaced) {
            factor *= it->trips;
        }
    }
    return factor;
}

ReuseReport
analyzeMapping(const Mapping &mapping)
{
    const dnn::CanonicalConv &conv = mapping.layer();
    ReuseReport report;

    report.spatialSize = mapping.spatialSize();

    const std::vector<LoopLevel> outer = mapping.outerLoops();
    report.outerIters = 1;
    for (const LoopLevel &l : outer)
        report.outerIters *= l.trips;

    const dataflow::RegionExtents inner = mapping.innerExtents();
    report.innerMacsPerPe = 1;
    for (std::size_t d = 0; d < dataflow::kNumDims; ++d)
        report.innerMacsPerPe *= inner.extent[d];

    // Unrolled reduction width: spatial loops over C/R/S feed a
    // spatial accumulator (adder tree / inter-PE forwarding).
    report.spatialReduction = 1;
    for (const LoopLevel &l : mapping.levels()) {
        if (l.kind != dataflow::LoopKind::Spatial)
            continue;
        if (l.dim == Dim::C || l.dim == Dim::R || l.dim == Dim::S)
            report.spatialReduction *= l.trips;
    }

    // Temporal accumulation run: innermost consecutive reduction
    // loops of the per-PE nest keep the partial sum in the
    // accumulator register.
    report.innerAccumRun = 1;
    {
        const std::vector<LoopLevel> &levels = mapping.levels();
        for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
            if (it->kind == dataflow::LoopKind::Spatial)
                break;
            if (it->dim == Dim::C || it->dim == Dim::R ||
                it->dim == Dim::S) {
                report.innerAccumRun *= it->trips;
            } else {
                break;
            }
        }
    }

    const dataflow::RegionExtents array = mapping.arrayExtents();
    const dataflow::RegionExtents whole = mapping.wholeExtents();

    for (std::size_t t = 0; t < 3; ++t) {
        TensorKind kind = static_cast<TensorKind>(t);
        TensorTraffic &traffic = report.tensor[t];
        traffic.unionTileElems =
            dataflow::tensorFootprint(conv, kind, array);
        traffic.sumTileElems =
            dataflow::tensorFootprint(conv, kind, inner) *
            report.spatialSize;
        traffic.wholeElems =
            dataflow::tensorFootprint(conv, kind, whole);
        traffic.refetch = refetchFactor(conv, kind, outer);

        if (traffic.unionTileElems == 0 || traffic.refetch == 0) {
            util::panic("reuse analysis: degenerate traffic for ",
                        dataflow::toString(kind));
        }
    }

    return report;
}

} // namespace herald::cost
