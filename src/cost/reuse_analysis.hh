/**
 * @file
 * Reuse analysis: derives per-tensor data-movement volumes from a
 * mapping, following MAESTRO's methodology (Sec. IV-B of the paper):
 * identify the amount of reuse, then derive activity counts (energy)
 * and communication volumes (latency) from it.
 *
 * The central primitive is the refetch factor: scanning the tile-
 * sequencing (outer temporal) loops from innermost to outermost, a
 * tensor stays resident across loops over dimensions it does not
 * reference until the first referencing loop replaces its tile; every
 * loop outside that point multiplies the number of tile deliveries.
 * Spatial reuse appears as the ratio between the summed per-PE tiles
 * and their union (multicast), and spatial reduction as unrolled
 * reduction dimensions (NVDLA's adder tree, Eyeriss' row accumulation).
 */

#pragma once

#include <array>
#include <cstdint>

#include "dataflow/loop_nest.hh"

namespace herald::cost
{

/** Data-movement summary for one tensor of one mapped layer. */
struct TensorTraffic
{
    std::uint64_t unionTileElems = 0; //!< union footprint per delivery
    std::uint64_t sumTileElems = 0;   //!< summed per-PE footprints
    std::uint64_t refetch = 0;        //!< deliveries of the union tile
    std::uint64_t wholeElems = 0;     //!< padded whole-layer footprint

    /** Average PEs sharing each delivered word (spatial reuse). */
    double
    multicast() const
    {
        if (unionTileElems == 0)
            return 1.0;
        return static_cast<double>(sumTileElems) /
               static_cast<double>(unionTileElems);
    }

    /** Total words read from the global buffer onto the NoC. */
    std::uint64_t
    l2Words() const
    {
        return unionTileElems * refetch;
    }

    /** Total words delivered into PE register files. */
    std::uint64_t
    rfFillWords() const
    {
        return sumTileElems * refetch;
    }
};

/** Full reuse report for a mapping. */
struct ReuseReport
{
    std::array<TensorTraffic, 3> tensor; //!< indexed by TensorKind

    std::uint64_t spatialSize = 1;   //!< PEs occupied
    std::uint64_t outerIters = 1;    //!< product of outer-loop trips
    std::uint64_t innerMacsPerPe = 1; //!< MACs per PE per outer iter
    std::uint64_t spatialReduction = 1; //!< unrolled reduction width
    /**
     * Temporal accumulation run length: product of the innermost
     * consecutive reduction loops of the per-PE nest. A partial sum
     * stays in the PE's accumulator for this many MACs before the
     * register file is touched (the essence of output-stationary
     * dataflows).
     */
    std::uint64_t innerAccumRun = 1;

    const TensorTraffic &
    of(dataflow::TensorKind t) const
    {
        return tensor[static_cast<std::size_t>(t)];
    }

    /** Output words written to L2 (final results + partial sums). */
    std::uint64_t
    outputWrites() const
    {
        return of(dataflow::TensorKind::Output).l2Words();
    }

    /** Partial-sum words read back from L2 for re-accumulation. */
    std::uint64_t
    outputReadbacks() const
    {
        const TensorTraffic &out =
            of(dataflow::TensorKind::Output);
        std::uint64_t writes = out.l2Words();
        return writes > out.wholeElems ? writes - out.wholeElems : 0;
    }
};

/** Analyze @p mapping and return its reuse report. */
ReuseReport analyzeMapping(const dataflow::Mapping &mapping);

/**
 * Refetch factor of @p tensor over the given tile-sequencing loops
 * (outer to inner): walking from the innermost loop outward,
 * irrelevant loops are free until the first relevant loop replaces
 * the tile; every loop outside that point multiplies deliveries.
 */
std::uint64_t refetchFactor(const dnn::CanonicalConv &conv,
                            dataflow::TensorKind tensor,
                            const std::vector<dataflow::LoopLevel>
                                &outer_loops);

} // namespace herald::cost

