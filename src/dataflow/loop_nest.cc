#include "dataflow/loop_nest.hh"

#include <sstream>

#include "util/logging.hh"
#include "util/math_utils.hh"

namespace herald::dataflow
{

const char *
toString(Dim dim)
{
    switch (dim) {
      case Dim::K:
        return "K";
      case Dim::C:
        return "C";
      case Dim::OY:
        return "Y'";
      case Dim::OX:
        return "X'";
      case Dim::R:
        return "R";
      case Dim::S:
        return "S";
    }
    util::panic("unknown Dim");
}

const char *
toString(TensorKind t)
{
    switch (t) {
      case TensorKind::Input:
        return "Input";
      case TensorKind::Weight:
        return "Weight";
      case TensorKind::Output:
        return "Output";
    }
    util::panic("unknown TensorKind");
}

std::uint64_t
dimExtent(const dnn::CanonicalConv &conv, Dim d)
{
    switch (d) {
      case Dim::K:
        return conv.k;
      case Dim::C:
        return conv.c;
      case Dim::OY:
        return conv.oy;
      case Dim::OX:
        return conv.ox;
      case Dim::R:
        return conv.r;
      case Dim::S:
        return conv.s;
    }
    util::panic("unknown Dim");
}

bool
tensorUsesDim(const dnn::CanonicalConv &conv, TensorKind tensor, Dim dim)
{
    switch (tensor) {
      case TensorKind::Input:
        // Input rows/cols slide with both the output index and the
        // filter tap; the channel is C, or K for depthwise layers.
        switch (dim) {
          case Dim::C:
            return !conv.depthwise;
          case Dim::K:
            return conv.depthwise;
          case Dim::OY:
          case Dim::OX:
          case Dim::R:
          case Dim::S:
            return true;
        }
        break;
      case TensorKind::Weight:
        switch (dim) {
          case Dim::K:
          case Dim::R:
          case Dim::S:
            return true;
          case Dim::C:
            return !conv.depthwise;
          case Dim::OY:
          case Dim::OX:
            return false;
        }
        break;
      case TensorKind::Output:
        switch (dim) {
          case Dim::K:
          case Dim::OY:
          case Dim::OX:
            return true;
          case Dim::C:
          case Dim::R:
          case Dim::S:
            return false;
        }
        break;
    }
    util::panic("unknown tensor/dim");
}

std::uint64_t
tensorFootprint(const dnn::CanonicalConv &conv, TensorKind tensor,
                const RegionExtents &ext)
{
    switch (tensor) {
      case TensorKind::Input: {
        std::uint64_t ch = conv.depthwise ? ext[Dim::K] : ext[Dim::C];
        // Halo: (oy_extent - 1) * stride + r_extent rows, clamped by
        // nothing (padded extents may exceed the true activation; the
        // padding is part of the modeled cost).
        std::uint64_t rows = 1, cols = 1;
        if (ext[Dim::OY] > 0) {
            rows = (ext[Dim::OY] - 1) * conv.strideNum / conv.strideDen +
                   ext[Dim::R];
        }
        if (ext[Dim::OX] > 0) {
            cols = (ext[Dim::OX] - 1) * conv.strideNum / conv.strideDen +
                   ext[Dim::S];
        }
        return ch * rows * cols;
      }
      case TensorKind::Weight: {
        std::uint64_t ch = conv.depthwise
                               ? ext[Dim::K]
                               : ext[Dim::K] * ext[Dim::C];
        return ch * ext[Dim::R] * ext[Dim::S];
      }
      case TensorKind::Output:
        return ext[Dim::K] * ext[Dim::OY] * ext[Dim::OX];
    }
    util::panic("unknown TensorKind");
}

Mapping::Mapping(const dnn::CanonicalConv &layer,
                 std::vector<LoopLevel> levels, std::uint64_t num_pes)
    : conv(layer), nest(std::move(levels)), pes(num_pes)
{
    validate();
}

void
Mapping::validate() const
{
    if (nest.empty())
        util::fatal("mapping: empty loop nest");
    if (pes == 0)
        util::fatal("mapping: zero PEs");

    for (const LoopLevel &l : nest) {
        if (l.trips == 0)
            util::fatal("mapping: loop with zero trips over ",
                        dataflow::toString(l.dim));
    }

    // Padded extents must cover the layer.
    for (std::size_t d = 0; d < kNumDims; ++d) {
        Dim dim = static_cast<Dim>(d);
        std::uint64_t padded = paddedExtent(dim);
        std::uint64_t true_ext = dimExtent(conv, dim);
        if (padded < true_ext) {
            util::fatal("mapping: dim ", dataflow::toString(dim),
                        " covers ",
                        padded, " < layer extent ", true_ext);
        }
    }

    if (spatialSize() > pes) {
        util::fatal("mapping: spatial size ", spatialSize(),
                    " exceeds PE count ", pes);
    }

    if (conv.depthwise && paddedExtent(Dim::C) != 1) {
        util::fatal("mapping: depthwise layer must not tile C");
    }
}

std::uint64_t
Mapping::spatialSize() const
{
    std::uint64_t total = 1;
    for (const LoopLevel &l : nest) {
        if (l.kind == LoopKind::Spatial)
            total *= l.trips;
    }
    return total;
}

std::uint64_t
Mapping::paddedExtent(Dim d) const
{
    std::uint64_t total = 1;
    for (const LoopLevel &l : nest) {
        if (l.dim == d)
            total *= l.trips;
    }
    return total;
}

std::size_t
Mapping::innerStart() const
{
    std::size_t start = 0;
    for (std::size_t i = 0; i < nest.size(); ++i) {
        if (nest[i].kind == LoopKind::Spatial)
            start = i + 1;
    }
    return start;
}

RegionExtents
Mapping::innerExtents() const
{
    RegionExtents ext;
    for (std::size_t i = innerStart(); i < nest.size(); ++i)
        ext.multiply(nest[i].dim, nest[i].trips);
    return ext;
}

RegionExtents
Mapping::arrayExtents() const
{
    RegionExtents ext = innerExtents();
    for (const LoopLevel &l : nest) {
        if (l.kind == LoopKind::Spatial)
            ext.multiply(l.dim, l.trips);
    }
    return ext;
}

RegionExtents
Mapping::wholeExtents() const
{
    RegionExtents ext;
    for (const LoopLevel &l : nest)
        ext.multiply(l.dim, l.trips);
    return ext;
}

std::vector<LoopLevel>
Mapping::outerLoops() const
{
    std::vector<LoopLevel> outer;
    std::size_t start = innerStart();
    for (std::size_t i = 0; i < start; ++i) {
        if (nest[i].kind == LoopKind::Temporal)
            outer.push_back(nest[i]);
    }
    return outer;
}

std::uint64_t
Mapping::paddedMacs() const
{
    RegionExtents ext = wholeExtents();
    std::uint64_t total = 1;
    for (std::size_t d = 0; d < kNumDims; ++d)
        total *= ext.extent[d];
    return total;
}

double
Mapping::mappingUtilization() const
{
    return static_cast<double>(spatialSize()) / static_cast<double>(pes);
}

double
Mapping::edgeUtilization() const
{
    return static_cast<double>(conv.macs()) /
           static_cast<double>(paddedMacs());
}

std::string
Mapping::toString() const
{
    std::ostringstream oss;
    int indent = 0;
    for (const LoopLevel &l : nest) {
        for (int i = 0; i < indent; ++i)
            oss << ' ';
        oss << (l.kind == LoopKind::Spatial ? "pfor " : "for ")
            << dataflow::toString(l.dim) << " in 0.." << l.trips << "\n";
        ++indent;
    }
    return oss.str();
}

} // namespace herald::dataflow
