/**
 * @file
 * Loop-nest representation of dataflows and mappings (paper Fig. 4).
 *
 * A Mapping is an ordered (outer-to-inner) list of loop levels over
 * the six canonical convolution dimensions. Each level is temporal
 * (sequenced) or spatial (a `pfor` unrolled across PEs) and stores its
 * trip count. The product of trip counts over a dimension is the
 * padded extent of that dimension; it must cover the layer's true
 * extent (ceil-division padding models edge underutilization).
 */

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "dnn/layer.hh"

namespace herald::dataflow
{

/** Canonical convolution dimensions (output-centric). */
enum class Dim : std::uint8_t
{
    K = 0,  //!< output channels
    C = 1,  //!< reduction (input) channels
    OY = 2, //!< output rows
    OX = 3, //!< output columns
    R = 4,  //!< filter rows
    S = 5,  //!< filter columns
};

constexpr std::size_t kNumDims = 6;

/** Short dimension name ("K", "C", "Y'", "X'", "R", "S"). */
const char *toString(Dim dim);

/** Whether the loop level is sequenced or unrolled across PEs. */
enum class LoopKind : std::uint8_t
{
    Temporal,
    Spatial,
};

/** One level of the loop nest. */
struct LoopLevel
{
    Dim dim = Dim::K;
    std::uint64_t trips = 1; //!< iteration count of this level
    LoopKind kind = LoopKind::Temporal;
};

/** Per-dimension extents of a loop-nest region. */
struct RegionExtents
{
    std::array<std::uint64_t, kNumDims> extent{1, 1, 1, 1, 1, 1};

    std::uint64_t
    operator[](Dim d) const
    {
        return extent[static_cast<std::size_t>(d)];
    }

    void
    multiply(Dim d, std::uint64_t trips)
    {
        extent[static_cast<std::size_t>(d)] *= trips;
    }
};

/**
 * A mapping: a complete, concrete loop nest for one layer on one PE
 * array. Construction validates structural invariants (see validate()).
 */
class Mapping
{
  public:
    /**
     * @param layer canonical form of the mapped layer
     * @param levels loop levels, outer to inner
     * @param num_pes PE count of the target (sub-)accelerator
     */
    Mapping(const dnn::CanonicalConv &layer,
            std::vector<LoopLevel> levels, std::uint64_t num_pes);

    const dnn::CanonicalConv &layer() const { return conv; }
    const std::vector<LoopLevel> &levels() const { return nest; }
    std::uint64_t numPes() const { return pes; }

    /** Product of spatial trip counts == PEs the mapping occupies. */
    std::uint64_t spatialSize() const;

    /** Padded extent of dimension @p d (>= true extent). */
    std::uint64_t paddedExtent(Dim d) const;

    /** Extents over the temporal loops below the last spatial loop. */
    RegionExtents innerExtents() const;
    /** Extents over spatial loops plus the inner temporal loops. */
    RegionExtents arrayExtents() const;
    /** Extents over the whole nest (padded layer extents). */
    RegionExtents wholeExtents() const;

    /**
     * Temporal loops above/between spatial levels, outer-to-inner:
     * these sequence array tiles through the global buffer.
     */
    std::vector<LoopLevel> outerLoops() const;

    /** MACs when padded extents are executed (>= true MACs). */
    std::uint64_t paddedMacs() const;

    /** Fraction of the PE array the mapping occupies, in (0, 1]. */
    double mappingUtilization() const;

    /** True MACs / padded MACs: edge (ceil-padding) efficiency. */
    double edgeUtilization() const;

    /** Loop nest rendered in the paper's for/pfor notation. */
    std::string toString() const;

  private:
    dnn::CanonicalConv conv;
    std::vector<LoopLevel> nest;
    std::uint64_t pes;

    /** Index one past the last spatial level (== nest.size() if none). */
    std::size_t innerStart() const;

    void validate() const;
};

/**
 * True extent of dimension @p d in the canonical layer @p conv.
 */
std::uint64_t dimExtent(const dnn::CanonicalConv &conv, Dim d);

/**
 * Footprint in elements of one tensor over a region with the given
 * extents, honoring the input halo (sliding window) and the depthwise
 * channel coupling.
 */
enum class TensorKind : std::uint8_t
{
    Input = 0,
    Weight = 1,
    Output = 2,
};

const char *toString(TensorKind t);

std::uint64_t tensorFootprint(const dnn::CanonicalConv &conv,
                              TensorKind tensor,
                              const RegionExtents &extents);

/**
 * Whether @p tensor 's address depends on @p dim for layer @p conv
 * (e.g. Input does not depend on K, except for depthwise layers where
 * the input channel follows K).
 */
bool tensorUsesDim(const dnn::CanonicalConv &conv, TensorKind tensor,
                   Dim dim);

} // namespace herald::dataflow

