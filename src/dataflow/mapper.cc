#include "dataflow/mapper.hh"

#include <algorithm>
#include <vector>

#include "util/logging.hh"
#include "util/math_utils.hh"

namespace herald::dataflow
{

namespace
{

using util::ceilDiv;
using util::isqrt;

/**
 * Append a loop level. Single-trip temporal loops are degenerate and
 * skipped; single-trip spatial loops are kept so that the nest always
 * has a well-defined spatial cut (the inner/outer split must not
 * change shape for degenerate layers such as FCs).
 */
void
addLoop(std::vector<LoopLevel> &nest, Dim dim, std::uint64_t trips,
        LoopKind kind)
{
    if (kind == LoopKind::Spatial || trips > 1)
        nest.push_back(LoopLevel{dim, trips, kind});
}

/** Elements that fit in the per-PE register file. */
std::uint64_t
l1Elems(const MapperConstraints &hw)
{
    return std::max<std::uint64_t>(8, hw.l1Bytes / dnn::kDataBytes);
}

/** Input rows/cols covered by an output extent and filter extent. */
std::uint64_t
haloExtent(const dnn::CanonicalConv &conv, std::uint64_t out_extent,
           std::uint64_t filter_extent)
{
    if (out_extent == 0)
        return filter_extent;
    return (out_extent - 1) * conv.strideNum / conv.strideDen +
           filter_extent;
}

/**
 * NVDLA-style weight-stationary mapping (paper Fig. 4a).
 *
 * The array is *wired* as k0 x c0 lanes with the published 1:4
 * output-to-input-channel ratio (NVDLA-large is 16x64): inputs are
 * multicast across the k0 rows and partial sums accumulate spatially
 * down the c0 adder trees. A layer only occupies min(K, k0) x
 * min(C, c0) lanes — this rigidity is exactly what makes an FDA
 * collapse on shallow-channel and depthwise layers (Fig. 5: 37.5%
 * and 12.5% utilization on a 16-PE array).
 */
Mapping
mapNvdla(const dnn::CanonicalConv &conv, const MapperConstraints &hw)
{
    const std::uint64_t k0 =
        std::max<std::uint64_t>(1, isqrt(hw.numPes) / 2);
    const std::uint64_t c0 = std::max<std::uint64_t>(1,
                                                     hw.numPes / k0);

    const std::uint64_t k_used = std::min(conv.k, k0);
    const std::uint64_t c_used =
        conv.depthwise ? 1 : std::min(conv.c, c0);
    const std::uint64_t k1 = ceilDiv(conv.k, k_used);
    const std::uint64_t c1 = ceilDiv(conv.c, c_used);

    // Per-PE output block (ty x tx): weights (r*s) stay resident and
    // sweep a whole block per pass, amortizing the input halo; the
    // input window and the psum block share the rest of the RF. The
    // block edge is chosen to minimize ceil-padding first (a 14x14
    // map tiles as 7, not 8), then maximized.
    auto pick_block = [](std::uint64_t extent) {
        std::uint64_t best = 1;
        std::uint64_t best_padded = ~0ULL;
        for (std::uint64_t t = 1;
             t <= std::min<std::uint64_t>(extent, 8); ++t) {
            std::uint64_t padded = util::ceilDiv(extent, t) * t;
            if (padded < best_padded ||
                (padded == best_padded && t > best)) {
                best_padded = padded;
                best = t;
            }
        }
        return best;
    };
    std::uint64_t ty = pick_block(conv.oy);
    std::uint64_t tx = pick_block(conv.ox);
    auto fits_l1 = [&](std::uint64_t by, std::uint64_t bx) {
        std::uint64_t wt = conv.r * conv.s;
        std::uint64_t in = haloExtent(conv, by, conv.r) *
                           haloExtent(conv, bx, conv.s);
        std::uint64_t ps = by * bx;
        return wt + in + ps <= l1Elems(hw);
    };
    while (ty * tx > 1 && !fits_l1(ty, tx)) {
        if (ty >= tx)
            ty = std::max<std::uint64_t>(1, ty - 1);
        else
            tx = std::max<std::uint64_t>(1, tx - 1);
    }

    // Global-buffer staging: shrink the block until the array tile
    // (all three tensors, double buffered) fits the budget.
    auto l2_bytes = [&](std::uint64_t by, std::uint64_t bx) {
        std::uint64_t in = c_used * haloExtent(conv, by, conv.r) *
                           haloExtent(conv, bx, conv.s);
        std::uint64_t wt = conv.depthwise
                               ? k_used * conv.r * conv.s
                               : k_used * c_used * conv.r * conv.s;
        std::uint64_t out = k_used * by * bx;
        return 2 * (in + wt + out) * dnn::kDataBytes;
    };
    while (ty * tx > 1 && l2_bytes(ty, tx) > hw.l2TileBudgetBytes) {
        if (ty >= tx)
            ty = std::max<std::uint64_t>(1, ty / 2);
        else
            tx = std::max<std::uint64_t>(1, tx / 2);
    }

    const std::uint64_t y1 = ceilDiv(conv.oy, ty);
    const std::uint64_t x1 = ceilDiv(conv.ox, tx);

    std::vector<LoopLevel> nest;
    addLoop(nest, Dim::K, k1, LoopKind::Temporal);
    addLoop(nest, Dim::K, k_used, LoopKind::Spatial);
    addLoop(nest, Dim::C, c1, LoopKind::Temporal);
    addLoop(nest, Dim::OY, y1, LoopKind::Temporal);
    addLoop(nest, Dim::OX, x1, LoopKind::Temporal);
    addLoop(nest, Dim::C, c_used, LoopKind::Spatial);
    addLoop(nest, Dim::R, conv.r, LoopKind::Temporal);
    addLoop(nest, Dim::S, conv.s, LoopKind::Temporal);
    addLoop(nest, Dim::OY, ty, LoopKind::Temporal);
    addLoop(nest, Dim::OX, tx, LoopKind::Temporal);
    return Mapping(conv, std::move(nest), hw.numPes);
}

/**
 * Shi-diannao-style output-stationary mapping (paper Fig. 4b).
 *
 * The array is a square grid of output pixels (the chip's Px x Py
 * plane); each PE accumulates its pixel over C, R, S temporally and
 * additionally carries kt output maps in its register file (the
 * chip's Pf dimension), so inputs stream in once per ceil(K/kt)
 * passes rather than once per output map. Neighboring PEs share
 * input halos (convolutional reuse). A layer occupies min(OY, y0) x
 * min(OX, x0) PEs — tiny activations (late layers, FCs) strand the
 * array.
 */
Mapping
mapShiDiannao(const dnn::CanonicalConv &conv,
              const MapperConstraints &hw)
{
    const std::uint64_t y0 =
        std::max<std::uint64_t>(1, isqrt(hw.numPes));
    const std::uint64_t x0 = std::max<std::uint64_t>(1,
                                                     hw.numPes / y0);
    const std::uint64_t y_used = std::min(conv.oy, y0);
    const std::uint64_t x_used = std::min(conv.ox, x0);
    const std::uint64_t y1 = ceilDiv(conv.oy, y_used);
    const std::uint64_t x1 = ceilDiv(conv.ox, x_used);

    // Output maps held per PE (the chip's Pf dimension): one NBout
    // psum entry per held map; 32 maps is well within ShiDianNao's
    // NBout capacity and amortizes input streaming across K.
    std::uint64_t kt = std::min<std::uint64_t>(conv.k, 32);
    while (kt > 1 && kt + 2 > l1Elems(hw))
        kt /= 2;

    // Channel tile: stream as many input channels as the staging
    // budget allows per array tile; the remainder becomes an outer
    // channel loop (psums stay pinned in the PEs either way). When
    // even a single channel slice overflows, shed output maps too.
    std::uint64_t ct = std::max<std::uint64_t>(1, conv.c);
    auto l2_bytes = [&](std::uint64_t t) {
        std::uint64_t ch = conv.depthwise ? kt : t;
        std::uint64_t in = ch * haloExtent(conv, y_used, conv.r) *
                           haloExtent(conv, x_used, conv.s);
        std::uint64_t wt = (conv.depthwise ? kt : kt * t) * conv.r *
                           conv.s;
        std::uint64_t out = kt * y_used * x_used;
        return 2 * (in + wt + out) * dnn::kDataBytes;
    };
    while (l2_bytes(ct) > hw.l2TileBudgetBytes) {
        if (ct > 1)
            ct /= 2;
        else if (kt > 1)
            kt /= 2;
        else
            break;
    }
    const std::uint64_t k1 = ceilDiv(conv.k, kt);
    const std::uint64_t c1 = ceilDiv(conv.c, ct);

    std::vector<LoopLevel> nest;
    addLoop(nest, Dim::K, k1, LoopKind::Temporal);
    addLoop(nest, Dim::OY, y1, LoopKind::Temporal);
    addLoop(nest, Dim::OX, x1, LoopKind::Temporal);
    addLoop(nest, Dim::C, c1, LoopKind::Temporal);
    addLoop(nest, Dim::OY, y_used, LoopKind::Spatial);
    addLoop(nest, Dim::OX, x_used, LoopKind::Spatial);
    addLoop(nest, Dim::K, kt, LoopKind::Temporal);
    addLoop(nest, Dim::C, ct, LoopKind::Temporal);
    addLoop(nest, Dim::R, conv.r, LoopKind::Temporal);
    addLoop(nest, Dim::S, conv.s, LoopKind::Temporal);
    return Mapping(conv, std::move(nest), hw.numPes);
}

/**
 * Eyeriss-style row-stationary mapping: the array pairs filter rows
 * with output rows (R x Y' spatial; psums accumulate spatially up
 * each column of R PEs). Each PE holds the filter rows of kt
 * different output channels (the chip's pass folding) and slides
 * them along an output-row segment of x0 pixels, so inputs are
 * fetched once per ceil(K/kt) passes with near-perfect halo reuse
 * along the diagonals.
 */
Mapping
mapEyeriss(const dnn::CanonicalConv &conv, const MapperConstraints &hw)
{
    const std::uint64_t r_used = std::min(conv.r, hw.numPes);
    const std::uint64_t r1 = ceilDiv(conv.r, r_used);
    const std::uint64_t y_used = std::max<std::uint64_t>(
        1, std::min(conv.oy, hw.numPes / r_used));
    const std::uint64_t y1 = ceilDiv(conv.oy, y_used);

    // Output-row segment per PE, then as many output channels as the
    // RF can hold psum+weight rows for.
    std::uint64_t x0 = std::min<std::uint64_t>(conv.ox, 16);
    std::uint64_t kt = 1;
    auto fits_l1 = [&](std::uint64_t seg, std::uint64_t maps) {
        std::uint64_t wt = conv.s * maps;
        std::uint64_t in = haloExtent(conv, seg, conv.s);
        std::uint64_t ps = seg * maps;
        return wt + in + ps <= l1Elems(hw);
    };
    while (x0 > 1 && !fits_l1(x0, 1))
        --x0;
    kt = std::min<std::uint64_t>(conv.k, 16);
    while (kt > 1 && !fits_l1(x0, kt))
        kt /= 2;

    auto l2_bytes = [&](std::uint64_t seg) {
        std::uint64_t ch = conv.depthwise ? kt : 1;
        std::uint64_t in = ch * haloExtent(conv, y_used, conv.r) *
                           haloExtent(conv, seg, conv.s);
        std::uint64_t wt = kt * r_used * conv.s;
        std::uint64_t out = kt * y_used * seg;
        return 2 * (in + wt + out) * dnn::kDataBytes;
    };
    while (l2_bytes(x0) > hw.l2TileBudgetBytes) {
        if (x0 > 1)
            x0 /= 2;
        else if (kt > 1)
            kt /= 2;
        else
            break;
    }
    const std::uint64_t k1 = ceilDiv(conv.k, kt);
    const std::uint64_t x1 = ceilDiv(conv.ox, x0);

    // The channel loop sits *inside* the output-stripe loops: each
    // PE's psum segment accumulates over all input channels before
    // the stripe advances (no partial-sum spilling — weights for a
    // stripe are re-streamed instead, which is far smaller traffic).
    std::vector<LoopLevel> nest;
    addLoop(nest, Dim::K, k1, LoopKind::Temporal);
    addLoop(nest, Dim::OY, y1, LoopKind::Temporal);
    addLoop(nest, Dim::OX, x1, LoopKind::Temporal);
    addLoop(nest, Dim::C, conv.c, LoopKind::Temporal);
    addLoop(nest, Dim::R, r1, LoopKind::Temporal);
    addLoop(nest, Dim::OY, y_used, LoopKind::Spatial);
    addLoop(nest, Dim::R, r_used, LoopKind::Spatial);
    addLoop(nest, Dim::K, kt, LoopKind::Temporal);
    addLoop(nest, Dim::S, conv.s, LoopKind::Temporal);
    addLoop(nest, Dim::OX, x0, LoopKind::Temporal);
    return Mapping(conv, std::move(nest), hw.numPes);
}

} // namespace

Mapping
buildMapping(DataflowStyle style, const dnn::CanonicalConv &conv,
             const MapperConstraints &hw)
{
    if (hw.numPes == 0)
        util::fatal("mapper: zero PEs");
    switch (style) {
      case DataflowStyle::NVDLA:
        return mapNvdla(conv, hw);
      case DataflowStyle::ShiDiannao:
        return mapShiDiannao(conv, hw);
      case DataflowStyle::Eyeriss:
        return mapEyeriss(conv, hw);
    }
    util::panic("unknown DataflowStyle");
}

Mapping
buildMapping(DataflowStyle style, const dnn::Layer &layer,
             const MapperConstraints &hw)
{
    return buildMapping(style, layer.canonical(), hw);
}

} // namespace herald::dataflow
