/**
 * @file
 * Mapping construction: binds a dataflow style to a concrete layer on
 * a concrete PE array, choosing spatial unrolling and tile sizes.
 *
 * Each style keeps its published parallelization strategy pure — that
 * purity is precisely what creates the per-layer preferences HDAs
 * exploit (Sec. II-B): NVDLA unrolls K x C, Shi-diannao unrolls
 * Y' x X', Eyeriss unrolls Y' x R. Tile sizes are chosen to maximize
 * mapping utilization subject to register-file and global-buffer
 * staging capacity.
 */

#pragma once

#include <cstdint>

#include "dataflow/loop_nest.hh"
#include "dataflow/style.hh"
#include "dnn/layer.hh"

namespace herald::dataflow
{

/** Hardware constraints the mapper must respect. */
struct MapperConstraints
{
    std::uint64_t numPes = 256;       //!< PEs of the sub-accelerator
    std::uint64_t l1Bytes = 512;      //!< per-PE register file
    std::uint64_t l2TileBudgetBytes = 1ULL << 20; //!< staging budget
};

/**
 * Build the mapping of @p layer under @p style on hardware @p hw.
 * Always succeeds: every style degrades gracefully (possibly to very
 * low utilization, which is the phenomenon the paper studies).
 */
Mapping buildMapping(DataflowStyle style, const dnn::Layer &layer,
                     const MapperConstraints &hw);

/** As above but directly from a canonical convolution. */
Mapping buildMapping(DataflowStyle style,
                     const dnn::CanonicalConv &conv,
                     const MapperConstraints &hw);

} // namespace herald::dataflow

