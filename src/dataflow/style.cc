#include "dataflow/style.hh"

#include "util/logging.hh"

namespace herald::dataflow
{

const char *
toString(DataflowStyle style)
{
    switch (style) {
      case DataflowStyle::NVDLA:
        return "NVDLA";
      case DataflowStyle::ShiDiannao:
        return "Shi-diannao";
      case DataflowStyle::Eyeriss:
        return "Eyeriss";
    }
    util::panic("unknown DataflowStyle");
}

const char *
shortName(DataflowStyle style)
{
    switch (style) {
      case DataflowStyle::NVDLA:
        return "nvdla";
      case DataflowStyle::ShiDiannao:
        return "shi";
      case DataflowStyle::Eyeriss:
        return "eyeriss";
    }
    util::panic("unknown DataflowStyle");
}

} // namespace herald::dataflow
