/**
 * @file
 * The dataflow styles evaluated in the paper (Table III).
 */

#pragma once

#include <array>
#include <string>

namespace herald::dataflow
{

/**
 * A dataflow style fixes the loop order and which dimensions are
 * parallelized; the mapper later binds trip counts per layer.
 *
 *  - NVDLA: weight-stationary; spatial over output and input channels
 *    (K x C) with spatial accumulation of partial sums across C.
 *  - ShiDiannao: output-stationary; spatial over output rows and
 *    columns (Y' x X') with temporal accumulation in each PE.
 *  - Eyeriss: row-stationary; spatial over output rows and filter rows
 *    (Y' x R) with spatial accumulation across R.
 */
enum class DataflowStyle : std::uint8_t
{
    NVDLA = 0,
    ShiDiannao = 1,
    Eyeriss = 2,
};

constexpr std::size_t kNumStyles = 3;

constexpr std::array<DataflowStyle, kNumStyles> kAllStyles{
    DataflowStyle::NVDLA, DataflowStyle::ShiDiannao,
    DataflowStyle::Eyeriss};

/** Full display name ("NVDLA", "Shi-diannao", "Eyeriss"). */
const char *toString(DataflowStyle style);

/** Compact name for labels ("nvdla", "shi", "eyeriss"). */
const char *shortName(DataflowStyle style);

} // namespace herald::dataflow

