#include "dnn/layer.hh"

#include <functional>

#include "util/logging.hh"
#include "util/math_utils.hh"

namespace herald::dnn
{

const char *
toString(LayerKind kind)
{
    switch (kind) {
      case LayerKind::Conv2D:
        return "CONV2D";
      case LayerKind::PointwiseConv2D:
        return "PWCONV";
      case LayerKind::DepthwiseConv2D:
        return "DWCONV";
      case LayerKind::FullyConnected:
        return "FC";
      case LayerKind::TransposedConv2D:
        return "UPCONV";
    }
    util::panic("unknown LayerKind");
}

std::uint64_t
CanonicalConv::inputRows(std::uint64_t extent) const
{
    if (extent == 0)
        return 0;
    return (extent - 1) * strideNum / strideDen + r;
}

std::uint64_t
CanonicalConv::inputCols(std::uint64_t extent) const
{
    if (extent == 0)
        return 0;
    return (extent - 1) * strideNum / strideDen + s;
}

Layer::Layer(std::string name, LayerKind kind, LayerShape shape)
    : layerName(std::move(name)), layerKind(kind), layerShape(shape)
{
    validate();
    canon = canonicalize();
}

void
Layer::validate() const
{
    const LayerShape &sh = layerShape;
    if (sh.k == 0 || sh.c == 0 || sh.y == 0 || sh.x == 0 || sh.r == 0 ||
        sh.s == 0 || sh.stride == 0 || sh.upscale == 0) {
        util::fatal("layer '", layerName, "': zero-sized dimension");
    }
    if (layerKind != LayerKind::TransposedConv2D && sh.upscale != 1)
        util::fatal("layer '", layerName, "': upscale on non-UPCONV");
    if (layerKind == LayerKind::TransposedConv2D && sh.upscale < 2)
        util::fatal("layer '", layerName, "': UPCONV needs upscale >= 2");
    if (layerKind != LayerKind::TransposedConv2D &&
        (sh.r > sh.y || sh.s > sh.x)) {
        util::fatal("layer '", layerName, "': filter larger than input (",
                    sh.r, "x", sh.s, " vs ", sh.y, "x", sh.x, ")");
    }
    if (layerKind == LayerKind::DepthwiseConv2D && sh.k != sh.c) {
        util::fatal("layer '", layerName, "': depthwise needs K == C");
    }
    if (layerKind == LayerKind::PointwiseConv2D &&
        (sh.r != 1 || sh.s != 1)) {
        util::fatal("layer '", layerName, "': pointwise needs 1x1 filter");
    }
    if (layerKind == LayerKind::FullyConnected &&
        (sh.y != 1 || sh.x != 1 || sh.r != 1 || sh.s != 1)) {
        util::fatal("layer '", layerName, "': FC needs Y=X=R=S=1");
    }
}

CanonicalConv
Layer::canonicalize() const
{
    const LayerShape &sh = layerShape;
    CanonicalConv cc;
    switch (layerKind) {
      case LayerKind::Conv2D:
      case LayerKind::PointwiseConv2D:
      case LayerKind::FullyConnected:
        cc.depthwise = false;
        cc.k = sh.k;
        cc.c = sh.c;
        cc.oy = (sh.y - sh.r) / sh.stride + 1;
        cc.ox = (sh.x - sh.s) / sh.stride + 1;
        cc.r = sh.r;
        cc.s = sh.s;
        cc.strideNum = sh.stride;
        cc.strideDen = 1;
        break;
      case LayerKind::DepthwiseConv2D:
        // No cross-channel accumulation: the reduction extent C is 1
        // and the input channel index follows the output channel K.
        cc.depthwise = true;
        cc.k = sh.k;
        cc.c = 1;
        cc.oy = (sh.y - sh.r) / sh.stride + 1;
        cc.ox = (sh.x - sh.s) / sh.stride + 1;
        cc.r = sh.r;
        cc.s = sh.s;
        cc.strideNum = sh.stride;
        cc.strideDen = 1;
        break;
      case LayerKind::TransposedConv2D:
        // Equivalent dense form: each output element receives
        // (r/up) x (s/up) filter taps on average; the input advances
        // 1/up rows per output row (rational stride).
        cc.depthwise = false;
        cc.k = sh.k;
        cc.c = sh.c;
        cc.oy = sh.y * sh.upscale;
        cc.ox = sh.x * sh.upscale;
        cc.r = std::max<std::uint64_t>(1, sh.r / sh.upscale);
        cc.s = std::max<std::uint64_t>(1, sh.s / sh.upscale);
        cc.strideNum = 1;
        cc.strideDen = sh.upscale;
        break;
    }
    return cc;
}

std::uint64_t
Layer::outY() const
{
    return canon.oy;
}

std::uint64_t
Layer::outX() const
{
    return canon.ox;
}

std::uint64_t
Layer::inputBytes() const
{
    const LayerShape &sh = layerShape;
    return sh.c * sh.y * sh.x * kDataBytes;
}

std::uint64_t
Layer::weightBytes() const
{
    const LayerShape &sh = layerShape;
    if (layerKind == LayerKind::DepthwiseConv2D)
        return sh.c * sh.r * sh.s * kDataBytes;
    return sh.k * sh.c * sh.r * sh.s * kDataBytes;
}

std::uint64_t
Layer::outputBytes() const
{
    return canon.k * canon.oy * canon.ox * kDataBytes;
}

double
Layer::channelActivationRatio() const
{
    return static_cast<double>(layerShape.c) /
           static_cast<double>(layerShape.y);
}

std::uint64_t
Layer::shapeKey() const
{
    // FNV-1a over the canonical dims plus the kind tag.
    std::uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 1099511628211ULL;
    };
    mix(static_cast<std::uint64_t>(layerKind));
    mix(canon.depthwise ? 1 : 0);
    mix(canon.k);
    mix(canon.c);
    mix(canon.oy);
    mix(canon.ox);
    mix(canon.r);
    mix(canon.s);
    mix(canon.strideNum);
    mix(canon.strideDen);
    return h;
}

Layer
makeConv(std::string name, std::uint64_t k, std::uint64_t c,
         std::uint64_t y, std::uint64_t x, std::uint64_t r,
         std::uint64_t s, std::uint64_t stride)
{
    return Layer(std::move(name), LayerKind::Conv2D,
                 LayerShape{k, c, y, x, r, s, stride, 1});
}

Layer
makePointwise(std::string name, std::uint64_t k, std::uint64_t c,
              std::uint64_t y, std::uint64_t x)
{
    return Layer(std::move(name), LayerKind::PointwiseConv2D,
                 LayerShape{k, c, y, x, 1, 1, 1, 1});
}

Layer
makeDepthwise(std::string name, std::uint64_t c, std::uint64_t y,
              std::uint64_t x, std::uint64_t r, std::uint64_t s,
              std::uint64_t stride)
{
    return Layer(std::move(name), LayerKind::DepthwiseConv2D,
                 LayerShape{c, c, y, x, r, s, stride, 1});
}

Layer
makeFullyConnected(std::string name, std::uint64_t out, std::uint64_t in)
{
    return Layer(std::move(name), LayerKind::FullyConnected,
                 LayerShape{out, in, 1, 1, 1, 1, 1, 1});
}

Layer
makeTransposedConv(std::string name, std::uint64_t k, std::uint64_t c,
                   std::uint64_t y, std::uint64_t x, std::uint64_t r,
                   std::uint64_t s, std::uint64_t upscale)
{
    return Layer(std::move(name), LayerKind::TransposedConv2D,
                 LayerShape{k, c, y, x, r, s, 1, upscale});
}

} // namespace herald::dnn
