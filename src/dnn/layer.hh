/**
 * @file
 * DNN layer representation.
 *
 * Layers are described by the seven-dimensional convolution space the
 * paper uses (Fig. 4): K output channels, C input channels, Y x X input
 * activation, R x S filter, plus stride. Every operator the evaluated
 * workloads need (CONV2D, PWCONV, DWCONV, FC, UPCONV) canonicalizes to
 * a single "canonical conv" form the cost model consumes, so the
 * analysis engine has exactly one code path.
 */

#pragma once

#include <cstdint>
#include <string>

namespace herald::dnn
{

/** Bytes per tensor element (16-bit fixed point, as in MAESTRO). */
constexpr std::uint64_t kDataBytes = 2;

/** Operator type of a layer. */
enum class LayerKind
{
    Conv2D,          //!< dense 2D convolution
    PointwiseConv2D, //!< 1x1 convolution (MobileNet expansion/projection)
    DepthwiseConv2D, //!< per-channel convolution; no C reduction
    FullyConnected,  //!< GEMV / GEMM; Y=X=R=S=1
    TransposedConv2D //!< up-scale convolution (UNet / DepthNet decoders)
};

/** Human-readable operator name ("CONV2D", "DWCONV", ...). */
const char *toString(LayerKind kind);

/**
 * Raw layer geometry as authored in the model zoo.
 *
 * For TransposedConv2D, @c upscale is the spatial up-scaling factor
 * (output = input * upscale) and r/s give the kernel size; for all
 * other kinds upscale must be 1.
 */
struct LayerShape
{
    std::uint64_t k = 1;       //!< output channels
    std::uint64_t c = 1;       //!< input channels
    std::uint64_t y = 1;       //!< input activation rows
    std::uint64_t x = 1;       //!< input activation columns
    std::uint64_t r = 1;       //!< filter rows
    std::uint64_t s = 1;       //!< filter columns
    std::uint64_t stride = 1;  //!< spatial stride (downsampling)
    std::uint64_t upscale = 1; //!< TransposedConv2D output scaling
};

/**
 * The single form the dataflow mapper and cost model operate on.
 *
 * All operators reduce to: for each output element (k, oy, ox),
 * accumulate over (c, r, s) — with @c depthwise selecting the variant
 * where the input channel equals the output channel and no cross-
 * channel accumulation happens. Input footprint along rows for an
 * output extent e is (e - 1) * strideNum / strideDen + r (rational
 * stride covers both strided convs and transposed convs).
 */
struct CanonicalConv
{
    bool depthwise = false;
    std::uint64_t k = 1;  //!< output channels
    std::uint64_t c = 1;  //!< reduction channels (1 when depthwise)
    std::uint64_t oy = 1; //!< output rows
    std::uint64_t ox = 1; //!< output columns
    std::uint64_t r = 1;  //!< effective filter taps per output, rows
    std::uint64_t s = 1;  //!< effective filter taps per output, cols
    std::uint64_t strideNum = 1; //!< input step per output step, num.
    std::uint64_t strideDen = 1; //!< input step per output step, den.

    /** Total multiply-accumulates in the layer. */
    std::uint64_t macs() const { return k * c * oy * ox * r * s; }

    /** Input rows covered by @p extent output rows (with halo). */
    std::uint64_t inputRows(std::uint64_t extent) const;
    /** Input columns covered by @p extent output columns. */
    std::uint64_t inputCols(std::uint64_t extent) const;
};

/**
 * A single DNN layer: a named operator instance with geometry.
 *
 * Construction validates the geometry (fatal() on zero dims, filters
 * larger than the activation, non-1 upscale on non-transposed kinds).
 */
class Layer
{
  public:
    Layer(std::string name, LayerKind kind, LayerShape shape);

    const std::string &name() const { return layerName; }
    LayerKind kind() const { return layerKind; }
    const LayerShape &shape() const { return layerShape; }

    /** Output activation rows. */
    std::uint64_t outY() const;
    /** Output activation columns. */
    std::uint64_t outX() const;

    /** Total multiply-accumulate operations. */
    std::uint64_t macs() const { return canonical().macs(); }

    /** Input activation size in bytes. */
    std::uint64_t inputBytes() const;
    /** Filter weight size in bytes. */
    std::uint64_t weightBytes() const;
    /** Output activation size in bytes. */
    std::uint64_t outputBytes() const;

    /**
     * Channels divided by activation width — the layer-shape
     * abstraction of Table I.
     */
    double channelActivationRatio() const;

    /** The canonical convolution form (see CanonicalConv). */
    const CanonicalConv &canonical() const { return canon; }

    /**
     * Stable 64-bit digest of (kind, canonical dims): two layers with
     * the same kind and shape always produce the same key. A hash,
     * not an identity — exact-identity consumers (the cost cache)
     * key on the canonical dims themselves.
     */
    std::uint64_t shapeKey() const;

  private:
    std::string layerName;
    LayerKind layerKind;
    LayerShape layerShape;
    CanonicalConv canon;

    void validate() const;
    CanonicalConv canonicalize() const;
};

/** Convenience constructors used heavily by the model zoo. */
Layer makeConv(std::string name, std::uint64_t k, std::uint64_t c,
               std::uint64_t y, std::uint64_t x, std::uint64_t r,
               std::uint64_t s, std::uint64_t stride = 1);
Layer makePointwise(std::string name, std::uint64_t k, std::uint64_t c,
                    std::uint64_t y, std::uint64_t x);
Layer makeDepthwise(std::string name, std::uint64_t c, std::uint64_t y,
                    std::uint64_t x, std::uint64_t r, std::uint64_t s,
                    std::uint64_t stride = 1);
Layer makeFullyConnected(std::string name, std::uint64_t out,
                         std::uint64_t in);
Layer makeTransposedConv(std::string name, std::uint64_t k,
                         std::uint64_t c, std::uint64_t y,
                         std::uint64_t x, std::uint64_t r,
                         std::uint64_t s, std::uint64_t upscale);

} // namespace herald::dnn

