#include "dnn/model.hh"

#include <algorithm>

#include "util/logging.hh"

namespace herald::dnn
{

Model::Model(std::string name, std::vector<Layer> layers)
    : modelName(std::move(name)), modelLayers(std::move(layers))
{
}

void
Model::addLayer(Layer layer)
{
    modelLayers.push_back(std::move(layer));
}

const Layer &
Model::layer(std::size_t idx) const
{
    if (idx >= modelLayers.size()) {
        util::panic("model '", modelName, "': layer index ", idx,
                    " out of range (", modelLayers.size(), " layers)");
    }
    return modelLayers[idx];
}

std::uint64_t
Model::totalMacs() const
{
    std::uint64_t total = 0;
    for (const Layer &l : modelLayers)
        total += l.macs();
    return total;
}

double
Model::maxChannelActivationRatio() const
{
    double best = 0.0;
    for (const Layer &l : modelLayers)
        best = std::max(best, l.channelActivationRatio());
    return best;
}

double
Model::minChannelActivationRatio() const
{
    if (modelLayers.empty())
        return 0.0;
    double best = modelLayers.front().channelActivationRatio();
    for (const Layer &l : modelLayers)
        best = std::min(best, l.channelActivationRatio());
    return best;
}

} // namespace herald::dnn
