/**
 * @file
 * A DNN model is a named, dependence-ordered sequence of layers.
 *
 * The paper's scheduler heuristics rely on the observation that layers
 * form a mostly-linear dependence chain within a model and are fully
 * independent across models (Sec. IV-D). We therefore represent each
 * model as a linear chain; residual/skip edges do not change the chain
 * order and carry no compute, so they are not materialized.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dnn/layer.hh"

namespace herald::dnn
{

/** A named, dependence-ordered DNN. */
class Model
{
  public:
    Model() = default;
    explicit Model(std::string name) : modelName(std::move(name)) {}
    Model(std::string name, std::vector<Layer> layers);

    const std::string &name() const { return modelName; }

    /** Append a layer at the end of the dependence chain. */
    void addLayer(Layer layer);

    const std::vector<Layer> &layers() const { return modelLayers; }
    std::size_t numLayers() const { return modelLayers.size(); }
    const Layer &layer(std::size_t idx) const;

    /** Sum of MACs over all layers. */
    std::uint64_t totalMacs() const;

    /** Largest / smallest channel-activation ratio (Table I). */
    double maxChannelActivationRatio() const;
    double minChannelActivationRatio() const;

  private:
    std::string modelName;
    std::vector<Layer> modelLayers;
};

} // namespace herald::dnn

