/**
 * @file
 * Model zoo: builders for every DNN the paper's workloads use
 * (Tables I and II).
 *
 * Geometries follow the published architectures. Two AR/VR models have
 * no public layer tables (Br-Q HandposeNet, Focal-Length DepthNet);
 * they are reconstructed from their papers' text so that the extreme
 * channel-activation ratios reported in Table I and Sec. V-B hold
 * (DepthNet FC2 reaches ~16.8M-way channel parallelism). GNMT LSTM
 * steps are expressed as GEMMs over the token dimension. All
 * substitutions are documented in DESIGN.md.
 */

#pragma once

#include "dnn/model.hh"

namespace herald::dnn
{

/** ResNet50 image classification, 224x224 input (He et al.). */
Model resnet50();

/** ResNet34 backbone only (used by SSD-ResNet34), parametric input. */
Model resnet34Backbone(std::uint64_t input_hw);

/** MobileNetV1, 224x224 input (Howard et al.). */
Model mobileNetV1();

/** MobileNetV2, 224x224 input (Sandler et al.). */
Model mobileNetV2();

/** UNet biomedical segmentation, 572x572 input (Ronneberger et al.). */
Model uNet();

/** Br-Q HandposeNet: hand pose from 128x128 depth maps [16]. */
Model brqHandposeNet();

/** Focal-Length DepthNet: monocular depth estimation [17]. */
Model focalLengthDepthNet();

/** MLPerf SSD-ResNet34 object detection, 1200x1200 input. */
Model ssdResnet34();

/** MLPerf SSD-MobileNetV1 object detection, 300x300 input. */
Model ssdMobileNetV1();

/** MLPerf GNMT translation: 8+8 LSTM layers as token-batched GEMMs. */
Model gnmt(std::uint64_t tokens = 20);

} // namespace herald::dnn

