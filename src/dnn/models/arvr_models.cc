/**
 * @file
 * AR/VR task models without public layer tables, reconstructed from
 * their papers (see DESIGN.md "Substitutions"):
 *
 *  - Br-Q HandposeNet [16] (Madadi et al.): hand pose recovery from
 *    128x128 depth crops; a convolutional trunk followed by a deep
 *    fully-connected regression head. Table I reports channel-
 *    activation ratios min 0.016 / median 1024 / max 1024, i.e. most
 *    layers are 1024-wide FCs — the head below realizes that.
 *
 *  - Focal-Length DepthNet [17] (He et al.): monocular depth with a
 *    VGG-style encoder, two 4096-wide FC layers (FC2 is the 16.8M-way
 *    channel-parallel layer called out in Sec. V-B), and an up-conv
 *    decoder that restores a 112x112 depth map.
 */

#include "dnn/model_zoo.hh"
#include "dnn/models/builder_util.hh"

namespace herald::dnn
{

Model
brqHandposeNet()
{
    Model m("BrQHandposeNet");

    // Convolutional trunk on a 2-channel (depth + mask) 128x128 crop.
    std::uint64_t hw = detail::addConvSame(m, "conv1", 32, 2, 128, 5, 2);
    hw = detail::addConvSame(m, "conv2", 64, 32, hw, 3, 2);
    hw = detail::addConvSame(m, "conv3", 128, 64, hw, 3, 2);
    hw = detail::addConvSame(m, "conv4", 256, 128, hw, 3, 2);

    // Regression head: flatten (256 x 8 x 8), then a deep 1024-wide
    // MLP ending in 3D joint coordinates (21 joints x 3).
    m.addLayer(makeFullyConnected("fc1", 1024, 256 * hw * hw));
    m.addLayer(makeFullyConnected("fc2", 1024, 1024));
    m.addLayer(makeFullyConnected("fc3", 1024, 1024));
    m.addLayer(makeFullyConnected("fc4", 1024, 1024));
    m.addLayer(makeFullyConnected("fc5", 1024, 1024));
    m.addLayer(makeFullyConnected("fc_out", 63, 1024));
    return m;
}

Model
focalLengthDepthNet()
{
    Model m("FocalLengthDepthNet");

    // VGG-style encoder on 224x224 RGB.
    std::uint64_t hw = 224;
    hw = detail::addConvSame(m, "conv1_1", 64, 3, hw, 3, 1);
    hw = detail::addConvSame(m, "conv1_2", 64, 64, hw, 3, 2);
    hw = detail::addConvSame(m, "conv2_1", 128, 64, hw, 3, 1);
    hw = detail::addConvSame(m, "conv2_2", 128, 128, hw, 3, 2);
    hw = detail::addConvSame(m, "conv3_1", 256, 128, hw, 3, 1);
    hw = detail::addConvSame(m, "conv3_2", 256, 256, hw, 3, 2);
    hw = detail::addConvSame(m, "conv4_1", 512, 256, hw, 3, 1);
    hw = detail::addConvSame(m, "conv4_2", 512, 512, hw, 3, 2);
    hw = detail::addConvSame(m, "conv5_1", 512, 512, hw, 3, 1);
    hw = detail::addConvSame(m, "conv5_2", 512, 512, hw, 3, 2);

    // Bottleneck MLP: fc2 is the 4096x4096 layer whose 16.8M-way
    // channel parallelism Sec. V-B uses to bound Maelstrom scaling.
    m.addLayer(makeFullyConnected("fc1", 4096, 512 * hw * hw));
    m.addLayer(makeFullyConnected("fc2", 4096, 4096));
    m.addLayer(makeFullyConnected("fc3", 64 * 7 * 7, 4096));

    // Up-convolutional decoder from 7x7x64 to the 112x112 depth map.
    std::uint64_t dhw = 7;
    std::uint64_t in_c = 64;
    const std::uint64_t dec_c[] = {64, 32, 16, 8};
    for (int level = 0; level < 4; ++level) {
        std::string tag = std::to_string(level + 1);
        m.addLayer(makeTransposedConv("up" + tag, dec_c[level], in_c,
                                      dhw, dhw, 4, 4, 2));
        dhw *= 2;
        dhw = detail::addConvSame(m, "dec" + tag, dec_c[level],
                                  dec_c[level], dhw, 3, 1);
        in_c = dec_c[level];
    }
    m.addLayer(makePointwise("depth_out", 1, in_c, dhw, dhw));
    return m;
}

} // namespace herald::dnn
