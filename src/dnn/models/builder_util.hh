/**
 * @file
 * Internal helpers shared by the model-zoo builders. Not part of the
 * public API (lives under models/ and is only included by zoo .cc
 * files).
 */

#pragma once

#include <cstdint>
#include <string>

#include "dnn/model.hh"

namespace herald::dnn::detail
{

/** Output spatial size of a SAME-padded conv with @p stride. */
inline std::uint64_t
sameOut(std::uint64_t in_hw, std::uint64_t stride)
{
    return (in_hw + stride - 1) / stride;
}

/**
 * Append a SAME-padded square conv: output is ceil(in_hw/stride).
 * The Layer stores the pre-padded input size so no separate padding
 * concept is needed downstream. Returns the output spatial size.
 */
inline std::uint64_t
addConvSame(Model &m, const std::string &name, std::uint64_t k,
            std::uint64_t c, std::uint64_t in_hw, std::uint64_t r,
            std::uint64_t stride)
{
    std::uint64_t out = sameOut(in_hw, stride);
    std::uint64_t padded = (out - 1) * stride + r;
    m.addLayer(makeConv(name, k, c, padded, padded, r, r, stride));
    return out;
}

/** Append a SAME-padded depthwise conv; returns output spatial size. */
inline std::uint64_t
addDepthwiseSame(Model &m, const std::string &name, std::uint64_t c,
                 std::uint64_t in_hw, std::uint64_t r,
                 std::uint64_t stride)
{
    std::uint64_t out = sameOut(in_hw, stride);
    std::uint64_t padded = (out - 1) * stride + r;
    m.addLayer(makeDepthwise(name, c, padded, padded, r, r, stride));
    return out;
}

} // namespace herald::dnn::detail

