/**
 * @file
 * GNMT (Wu et al.) as used by MLPerf inference: an 8-layer LSTM
 * encoder and 8-layer LSTM decoder with hidden size 1024, plus the
 * output projection onto a 32K vocabulary.
 *
 * Substitution (DESIGN.md): each LSTM layer's recurrence over T tokens
 * is expressed as one GEMM with the token dimension mapped onto the
 * output-activation rows (K = 4H gate outputs, C = 2H concatenated
 * input+hidden, OY = T). This preserves the operational intensity and
 * the extreme channel-activation ratio that makes RNNs prefer
 * channel-parallel dataflows (Sec. V-B).
 */

#include <string>

#include "dnn/model_zoo.hh"

namespace herald::dnn
{

Model
gnmt(std::uint64_t tokens)
{
    constexpr std::uint64_t hidden = 1024;
    constexpr std::uint64_t vocab = 32000;

    Model m("GNMT");
    auto add_lstm_gemm = [&m, tokens](const std::string &name,
                                      std::uint64_t in_c) {
        // 4 gates x hidden outputs; input is [x_t ; h_{t-1}].
        m.addLayer(Layer(name, LayerKind::Conv2D,
                         LayerShape{4 * hidden, in_c, tokens, 1, 1, 1,
                                    1, 1}));
    };

    // Encoder: layer 1 is bidirectional (two passes), then 7 more.
    add_lstm_gemm("enc1_fwd", 2 * hidden);
    add_lstm_gemm("enc1_bwd", 2 * hidden);
    for (int i = 2; i <= 8; ++i)
        add_lstm_gemm("enc" + std::to_string(i), 2 * hidden);

    // Decoder: 8 layers; layer 1 consumes [y ; attention context].
    add_lstm_gemm("dec1", 3 * hidden);
    for (int i = 2; i <= 8; ++i)
        add_lstm_gemm("dec" + std::to_string(i), 2 * hidden);

    // Attention score/context projection and vocabulary projection.
    m.addLayer(Layer("attention", LayerKind::Conv2D,
                     LayerShape{hidden, hidden, tokens, 1, 1, 1, 1, 1}));
    m.addLayer(Layer("vocab_proj", LayerKind::Conv2D,
                     LayerShape{vocab, hidden, tokens, 1, 1, 1, 1, 1}));
    return m;
}

} // namespace herald::dnn
