/**
 * @file
 * MobileNetV1 (Howard et al.) and MobileNetV2 (Sandler et al.) at
 * 224x224. V2 inverted-residual blocks expand with a pointwise conv
 * (skipped when the expansion ratio is 1), filter depthwise, and
 * project pointwise.
 */

#include <string>

#include "dnn/model_zoo.hh"
#include "dnn/models/builder_util.hh"

namespace herald::dnn
{

Model
mobileNetV1()
{
    Model m("MobileNetV1");
    std::uint64_t hw = detail::addConvSame(m, "conv1", 32, 3, 224, 3, 2);

    struct Sep
    {
        std::uint64_t out_c;
        std::uint64_t stride;
    };
    const Sep seps[] = {{64, 1},  {128, 2}, {128, 1}, {256, 2},
                        {256, 1}, {512, 2}, {512, 1}, {512, 1},
                        {512, 1}, {512, 1}, {512, 1}, {1024, 2},
                        {1024, 1}};

    std::uint64_t in_c = 32;
    int idx = 2;
    for (const Sep &sep : seps) {
        std::string tag = std::to_string(idx);
        hw = detail::addDepthwiseSame(m, "dw" + tag, in_c, hw, 3,
                                      sep.stride);
        m.addLayer(makePointwise("pw" + tag, sep.out_c, in_c, hw, hw));
        in_c = sep.out_c;
        ++idx;
    }

    m.addLayer(makeFullyConnected("fc1000", 1000, 1024));
    return m;
}

Model
mobileNetV2()
{
    Model m("MobileNetV2");
    std::uint64_t hw = detail::addConvSame(m, "conv1", 32, 3, 224, 3, 2);

    struct Block
    {
        std::uint64_t expand; //!< expansion ratio t
        std::uint64_t out_c;  //!< output channels c
        int repeat;           //!< repetitions n
        std::uint64_t stride; //!< stride of the first repetition
    };
    const Block blocks[] = {{1, 16, 1, 1},  {6, 24, 2, 2},
                            {6, 32, 3, 2},  {6, 64, 4, 2},
                            {6, 96, 3, 1},  {6, 160, 3, 2},
                            {6, 320, 1, 1}};

    std::uint64_t in_c = 32;
    int idx = 1;
    for (const Block &blk : blocks) {
        for (int rep = 0; rep < blk.repeat; ++rep) {
            std::string tag = std::to_string(idx);
            std::uint64_t stride = (rep == 0) ? blk.stride : 1;
            std::uint64_t mid = in_c * blk.expand;
            if (blk.expand != 1) {
                m.addLayer(makePointwise("b" + tag + "_expand", mid,
                                         in_c, hw, hw));
            }
            hw = detail::addDepthwiseSame(m, "b" + tag + "_dw", mid, hw,
                                          3, stride);
            m.addLayer(makePointwise("b" + tag + "_project", blk.out_c,
                                     mid, hw, hw));
            in_c = blk.out_c;
            ++idx;
        }
    }

    m.addLayer(makePointwise("conv_last", 1280, in_c, hw, hw));
    m.addLayer(makeFullyConnected("fc1000", 1000, 1280));
    return m;
}

} // namespace herald::dnn
