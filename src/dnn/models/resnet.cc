/**
 * @file
 * ResNet50 (He et al., CVPR 2016) and the ResNet34 backbone used by
 * MLPerf SSD-ResNet34. Bottleneck/basic blocks include the projection
 * (downsample) 1x1 convolutions; identity skip connections carry no
 * compute and are not materialized (see dnn/model.hh).
 */

#include <string>

#include "dnn/model_zoo.hh"
#include "dnn/models/builder_util.hh"

namespace herald::dnn
{

namespace
{

/**
 * Append one ResNet50 bottleneck: 1x1 reduce, 3x3, 1x1 expand, plus a
 * 1x1 projection when the block changes channels or stride.
 */
std::uint64_t
addBottleneck(Model &m, const std::string &prefix, std::uint64_t mid,
              std::uint64_t in_c, std::uint64_t in_hw,
              std::uint64_t stride)
{
    const std::uint64_t out_c = mid * 4;
    m.addLayer(makePointwise(prefix + "_1x1a", mid, in_c, in_hw, in_hw));
    std::uint64_t hw =
        detail::addConvSame(m, prefix + "_3x3", mid, mid, in_hw, 3,
                            stride);
    m.addLayer(makePointwise(prefix + "_1x1b", out_c, mid, hw, hw));
    if (in_c != out_c || stride != 1) {
        std::uint64_t p = (hw - 1) * stride + 1;
        m.addLayer(Layer(prefix + "_proj", LayerKind::PointwiseConv2D,
                         LayerShape{out_c, in_c, p, p, 1, 1, stride, 1}));
    }
    return hw;
}

/** Append one ResNet34 basic block: two 3x3 convs (+ projection). */
std::uint64_t
addBasicBlock(Model &m, const std::string &prefix, std::uint64_t out_c,
              std::uint64_t in_c, std::uint64_t in_hw,
              std::uint64_t stride)
{
    std::uint64_t hw = detail::addConvSame(m, prefix + "_3x3a", out_c,
                                           in_c, in_hw, 3, stride);
    detail::addConvSame(m, prefix + "_3x3b", out_c, out_c, hw, 3, 1);
    if (in_c != out_c || stride != 1) {
        std::uint64_t p = (hw - 1) * stride + 1;
        m.addLayer(Layer(prefix + "_proj", LayerKind::PointwiseConv2D,
                         LayerShape{out_c, in_c, p, p, 1, 1, stride, 1}));
    }
    return hw;
}

} // namespace

Model
resnet50()
{
    Model m("Resnet50");
    // conv1: 7x7/2 on 224x224 RGB, then 3x3/2 max-pool (no compute).
    std::uint64_t hw = detail::addConvSame(m, "conv1", 64, 3, 224, 7, 2);
    hw = detail::sameOut(hw, 2); // max pool to 56x56

    struct Stage
    {
        std::uint64_t mid;
        int blocks;
        std::uint64_t stride;
    };
    const Stage stages[] = {{64, 3, 1}, {128, 4, 2}, {256, 6, 2},
                            {512, 3, 2}};

    std::uint64_t in_c = 64;
    int stage_idx = 2;
    for (const Stage &st : stages) {
        for (int b = 0; b < st.blocks; ++b) {
            std::string prefix = "conv" + std::to_string(stage_idx) +
                                 "_" + std::to_string(b + 1);
            std::uint64_t stride = (b == 0) ? st.stride : 1;
            hw = addBottleneck(m, prefix, st.mid, in_c, hw, stride);
            in_c = st.mid * 4;
        }
        ++stage_idx;
    }

    // Global average pool (no compute) then the classifier.
    m.addLayer(makeFullyConnected("fc1000", 1000, 2048));
    return m;
}

Model
resnet34Backbone(std::uint64_t input_hw)
{
    Model m("Resnet34Backbone");
    std::uint64_t hw =
        detail::addConvSame(m, "conv1", 64, 3, input_hw, 7, 2);
    hw = detail::sameOut(hw, 2); // max pool

    struct Stage
    {
        std::uint64_t out_c;
        int blocks;
        std::uint64_t stride;
    };
    const Stage stages[] = {{64, 3, 1}, {128, 4, 2}, {256, 6, 2}};

    std::uint64_t in_c = 64;
    int stage_idx = 2;
    for (const Stage &st : stages) {
        for (int b = 0; b < st.blocks; ++b) {
            std::string prefix = "conv" + std::to_string(stage_idx) +
                                 "_" + std::to_string(b + 1);
            std::uint64_t stride = (b == 0) ? st.stride : 1;
            hw = addBasicBlock(m, prefix, st.out_c, in_c, hw, stride);
            in_c = st.out_c;
        }
        ++stage_idx;
    }
    return m;
}

} // namespace herald::dnn
