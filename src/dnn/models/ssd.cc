/**
 * @file
 * MLPerf object-detection models: SSD-ResNet34 (1200x1200, the
 * "large" benchmark) and SSD-MobileNetV1 (300x300, the "small" one).
 * Each pairs a truncated classification backbone with SSD extra
 * feature layers and per-feature-map confidence/localization heads.
 * Anchor counts and class counts follow the MLPerf inference v0.5
 * reference (81 COCO classes for R34, 91 for the MobileNet variant).
 */

#include <string>

#include "dnn/model_zoo.hh"
#include "dnn/models/builder_util.hh"

namespace herald::dnn
{

namespace
{

/** Append SSD conf+loc head convs on a hw x hw map with @p anchors. */
void
addSsdHead(Model &m, const std::string &tag, std::uint64_t in_c,
           std::uint64_t hw, std::uint64_t anchors,
           std::uint64_t classes)
{
    detail::addConvSame(m, "head" + tag + "_conf", anchors * classes,
                        in_c, hw, 3, 1);
    detail::addConvSame(m, "head" + tag + "_loc", anchors * 4, in_c,
                        hw, 3, 1);
}

} // namespace

Model
ssdResnet34()
{
    // Backbone: ResNet34 truncated after conv4 (MLPerf keeps the
    // conv4 stride at 1 so detection starts from a 50x50 map at 1200
    // input — our SAME-geometry gives 75x75 from 1200/16; we keep the
    // published stride-16 truncation).
    Model m = resnet34Backbone(1200);
    Model out("SSDResnet34");
    for (const Layer &l : m.layers())
        out.addLayer(l);

    std::uint64_t hw = 75; // 1200 / 16
    std::uint64_t in_c = 256;
    const std::uint64_t classes = 81;

    // Extra feature layers: 1x1 reduce + 3x3 stride-2, five times.
    struct Extra
    {
        std::uint64_t mid;
        std::uint64_t out_c;
        std::uint64_t stride;
    };
    const Extra extras[] = {{256, 512, 2},
                            {256, 512, 2},
                            {128, 256, 2},
                            {128, 256, 2},
                            {128, 256, 2}};

    // Head on the backbone map first (4 anchors), then on each extra
    // map (6, 6, 6, 4, 4 anchors per the reference config).
    const std::uint64_t anchor_counts[] = {4, 6, 6, 6, 4, 4};
    addSsdHead(out, "0", in_c, hw, anchor_counts[0], classes);

    int idx = 1;
    for (const Extra &e : extras) {
        std::string tag = std::to_string(idx);
        out.addLayer(makePointwise("extra" + tag + "_1x1", e.mid, in_c,
                                   hw, hw));
        hw = detail::addConvSame(out, "extra" + tag + "_3x3", e.out_c,
                                 e.mid, hw, 3, e.stride);
        in_c = e.out_c;
        addSsdHead(out, tag, in_c, hw, anchor_counts[idx], classes);
        ++idx;
    }
    return out;
}

Model
ssdMobileNetV1()
{
    Model out("SSDMobileNetV1");

    // MobileNetV1 backbone at 300x300, through conv13 (19x19 map).
    std::uint64_t hw = detail::addConvSame(out, "conv1", 32, 3, 300, 3,
                                           2);
    struct Sep
    {
        std::uint64_t out_c;
        std::uint64_t stride;
    };
    const Sep seps[] = {{64, 1},  {128, 2}, {128, 1}, {256, 2},
                        {256, 1}, {512, 2}, {512, 1}, {512, 1},
                        {512, 1}, {512, 1}, {512, 1}, {1024, 2},
                        {1024, 1}};
    std::uint64_t in_c = 32;
    int idx = 2;
    for (const Sep &sep : seps) {
        std::string tag = std::to_string(idx);
        hw = detail::addDepthwiseSame(out, "dw" + tag, in_c, hw, 3,
                                      sep.stride);
        out.addLayer(makePointwise("pw" + tag, sep.out_c, in_c, hw,
                                   hw));
        in_c = sep.out_c;
        ++idx;
    }

    const std::uint64_t classes = 91;
    // First two heads tap conv11 (19x19, 512ch) and conv13 (10x10,
    // 1024ch); we head the final map and the extras below.
    addSsdHead(out, "0", 512, 19, 3, classes);
    addSsdHead(out, "1", 1024, 10, 6, classes);

    // Extra layers: 1x1 then 3x3 stride-2 down to 1x1 resolution.
    struct Extra
    {
        std::uint64_t mid;
        std::uint64_t out_c;
    };
    const Extra extras[] = {{256, 512}, {128, 256}, {128, 256},
                            {64, 128}};
    hw = 10;
    in_c = 1024;
    int head = 2;
    for (const Extra &e : extras) {
        std::string tag = std::to_string(head);
        out.addLayer(makePointwise("extra" + tag + "_1x1", e.mid, in_c,
                                   hw, hw));
        hw = detail::addConvSame(out, "extra" + tag + "_3x3", e.out_c,
                                 e.mid, hw, 3, 2);
        in_c = e.out_c;
        addSsdHead(out, tag, in_c, hw, 6, classes);
        ++head;
    }
    return out;
}

} // namespace herald::dnn
