/**
 * @file
 * UNet (Ronneberger et al., MICCAI 2015), classic 572x572 valid-
 * convolution geometry: a 4-level contracting path to 1024 channels
 * and an expansive path of 2x2 up-convolutions followed by 3x3 convs
 * on the concatenation with the mirrored encoder feature map.
 */

#include <string>

#include "dnn/model_zoo.hh"
#include "dnn/models/builder_util.hh"

namespace herald::dnn
{

Model
uNet()
{
    Model m("UNet");

    // Contracting path: two valid 3x3 convs per level, 2x2 max pool.
    std::uint64_t hw = 572;
    std::uint64_t in_c = 1;
    std::uint64_t enc_c[4];
    std::uint64_t c = 64;
    for (int level = 1; level <= 4; ++level) {
        std::string tag = std::to_string(level);
        m.addLayer(makeConv("enc" + tag + "_conv1", c, in_c, hw, hw, 3,
                            3));
        hw -= 2;
        m.addLayer(makeConv("enc" + tag + "_conv2", c, c, hw, hw, 3, 3));
        hw -= 2;
        enc_c[level - 1] = c;
        in_c = c;
        c *= 2;
        hw /= 2; // 2x2 max pool
    }

    // Bottleneck at 1024 channels.
    m.addLayer(makeConv("bott_conv1", 1024, in_c, hw, hw, 3, 3));
    hw -= 2;
    m.addLayer(makeConv("bott_conv2", 1024, 1024, hw, hw, 3, 3));
    hw -= 2;
    in_c = 1024;

    // Expansive path: 2x2 up-conv halves channels; the following convs
    // see doubled input channels from the skip concatenation.
    for (int level = 4; level >= 1; --level) {
        std::string tag = std::to_string(level);
        std::uint64_t out_c = enc_c[level - 1];
        m.addLayer(makeTransposedConv("dec" + tag + "_up", out_c, in_c,
                                      hw, hw, 2, 2, 2));
        hw *= 2;
        m.addLayer(makeConv("dec" + tag + "_conv1", out_c, out_c * 2,
                            hw, hw, 3, 3));
        hw -= 2;
        m.addLayer(makeConv("dec" + tag + "_conv2", out_c, out_c, hw,
                            hw, 3, 3));
        hw -= 2;
        in_c = out_c;
    }

    // Final 1x1 conv to the 2-class segmentation map.
    m.addLayer(makePointwise("out_conv", 2, 64, hw, hw));
    return m;
}

} // namespace herald::dnn
