#include "dse/design_space.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/math_utils.hh"

namespace herald::dse
{

const char *
toString(SearchStrategy strategy)
{
    switch (strategy) {
      case SearchStrategy::Exhaustive:
        return "exhaustive";
      case SearchStrategy::Binary:
        return "binary";
      case SearchStrategy::Random:
        return "random";
      case SearchStrategy::Annealing:
        return "annealing";
    }
    util::panic("unknown SearchStrategy");
}

std::vector<std::vector<std::uint64_t>>
enumerateCompositions(std::uint64_t units, std::size_t ways,
                      std::uint64_t min_units)
{
    std::vector<std::vector<std::uint64_t>> result;
    if (ways == 0 || units < ways * min_units)
        return result;

    std::vector<std::uint64_t> current(ways, 0);
    // Recursive composition enumeration, iterative via lambda.
    auto recurse = [&](auto &&self, std::size_t idx,
                       std::uint64_t left) -> void {
        if (idx + 1 == ways) {
            current[idx] = left;
            result.push_back(current);
            return;
        }
        std::uint64_t remaining_min = (ways - idx - 1) * min_units;
        for (std::uint64_t v = min_units; v + remaining_min <= left;
             ++v) {
            current[idx] = v;
            self(self, idx + 1, left - v);
        }
    };
    recurse(recurse, 0, units);
    return result;
}

namespace
{

/** Effective PE step for @p opts on @p total_pes. */
std::uint64_t
peStep(std::uint64_t total_pes, const PartitionSpaceOptions &opts)
{
    std::uint64_t step = opts.peGranularity != 0
                             ? opts.peGranularity
                             : std::max<std::uint64_t>(1,
                                                       total_pes / 16);
    if (total_pes % step != 0) {
        util::fatal("PE granularity ", step, " must divide ",
                    total_pes);
    }
    return step;
}

/** Effective bandwidth step for @p opts on @p total_bw. */
double
bwStep(double total_bw, const PartitionSpaceOptions &opts)
{
    double step = opts.bwGranularity > 0.0 ? opts.bwGranularity
                                           : total_bw / 8.0;
    double units = total_bw / step;
    if (std::abs(units - std::round(units)) > 1e-9) {
        util::fatal("bandwidth granularity ", step,
                    " must divide ", total_bw);
    }
    return step;
}

/**
 * Coarsening factor for an axis with @p units fine-grained units
 * split @p ways ways: the largest of {4, 2, 1} that divides the unit
 * count evenly and leaves every sub-accelerator at least two coarse
 * units (so each axis still has real choices to search).
 */
std::uint64_t
coarseMultiplier(std::uint64_t units, std::size_t ways)
{
    for (std::uint64_t mult : {std::uint64_t{4}, std::uint64_t{2}}) {
        if (units % mult == 0 && units / mult >= 2 * ways)
            return mult;
    }
    return 1;
}

std::vector<PartitionCandidate>
gridCandidates(std::uint64_t total_pes, double total_bw,
               std::size_t ways, std::uint64_t pe_step, double bw_step)
{
    auto pe_units = enumerateCompositions(total_pes / pe_step, ways);
    auto bw_units = enumerateCompositions(
        static_cast<std::uint64_t>(std::llround(total_bw / bw_step)),
        ways);

    std::vector<PartitionCandidate> candidates;
    candidates.reserve(pe_units.size() * bw_units.size());
    for (const auto &pe : pe_units) {
        for (const auto &bw : bw_units) {
            PartitionCandidate cand;
            for (std::uint64_t u : pe)
                cand.peSplit.push_back(u * pe_step);
            for (std::uint64_t u : bw)
                cand.bwSplit.push_back(static_cast<double>(u) *
                                       bw_step);
            candidates.push_back(std::move(cand));
        }
    }
    return candidates;
}

} // namespace

std::vector<PartitionCandidate>
generateCandidates(std::uint64_t total_pes, double total_bw,
                   std::size_t ways,
                   const PartitionSpaceOptions &opts)
{
    if (ways == 0)
        util::fatal("partition space: zero sub-accelerators");

    std::uint64_t pe_step = peStep(total_pes, opts);
    double bw_step = bwStep(total_bw, opts);

    switch (opts.strategy) {
      case SearchStrategy::Exhaustive:
        return gridCandidates(total_pes, total_bw, ways, pe_step,
                              bw_step);
      case SearchStrategy::Binary: {
        // Coarse pass: widen each axis step up to 4x the fine step,
        // but only while every sub-accelerator keeps at least two
        // coarse units of room on the axis (otherwise the coarse
        // grid collapses to the trivial all-minimum split and the
        // "search" degenerates). On chips too small for any
        // widening, the coarse pass is just the fine grid.
        std::uint64_t pe_units = total_pes / pe_step;
        std::uint64_t bw_units = static_cast<std::uint64_t>(
            std::llround(total_bw / bw_step));
        std::uint64_t coarse_pe =
            pe_step * coarseMultiplier(pe_units, ways);
        double coarse_bw =
            bw_step *
            static_cast<double>(coarseMultiplier(bw_units, ways));
        return gridCandidates(total_pes, total_bw, ways, coarse_pe,
                              coarse_bw);
      }
      case SearchStrategy::Random: {
        auto grid = gridCandidates(total_pes, total_bw, ways, pe_step,
                                   bw_step);
        if (grid.size() <= opts.randomSamples)
            return grid;
        util::SplitMix64 rng(opts.seed);
        std::vector<PartitionCandidate> sampled;
        sampled.reserve(opts.randomSamples);
        // Partial Fisher-Yates over the grid indices.
        std::vector<std::size_t> idx(grid.size());
        for (std::size_t i = 0; i < grid.size(); ++i)
            idx[i] = i;
        for (std::size_t i = 0; i < opts.randomSamples; ++i) {
            std::size_t j =
                i + rng.nextBounded(grid.size() - i);
            std::swap(idx[i], idx[j]);
            sampled.push_back(grid[idx[i]]);
        }
        return sampled;
      }
      case SearchStrategy::Annealing:
        // Annealing cannot be expressed as an up-front candidate
        // list: each proposal depends on the evaluated cost of the
        // previous one. The sequential accept/reject driver lives in
        // Herald::explore.
        util::fatal("partition space: Annealing has no up-front "
                    "candidate enumeration; use Herald::explore");
    }
    util::panic("unknown SearchStrategy");
}

std::vector<PartitionCandidate>
refineAround(const PartitionCandidate &center, std::uint64_t total_pes,
             double total_bw, const PartitionSpaceOptions &opts)
{
    if (center.peSplit.size() != 2) {
        // Refinement is defined pairwise; for >2 ways fall back to
        // the fine exhaustive grid. The strategy must be forced to
        // Exhaustive here: under Binary, generateCandidates would
        // hand back the *coarse* grid again and the refinement round
        // would re-evaluate it verbatim.
        PartitionSpaceOptions fine = opts;
        fine.strategy = SearchStrategy::Exhaustive;
        return generateCandidates(total_pes, total_bw,
                                  center.peSplit.size(), fine);
    }
    std::uint64_t pe_step = peStep(total_pes, opts);
    double bw_step = bwStep(total_bw, opts);

    std::vector<PartitionCandidate> out;
    for (int dpe = -4; dpe <= 4; ++dpe) {
        std::int64_t a =
            static_cast<std::int64_t>(center.peSplit[0]) +
            dpe * static_cast<std::int64_t>(pe_step);
        if (a < static_cast<std::int64_t>(pe_step) ||
            a > static_cast<std::int64_t>(total_pes - pe_step)) {
            continue;
        }
        for (int dbw = -4; dbw <= 4; ++dbw) {
            double b = center.bwSplit[0] + dbw * bw_step;
            if (b < bw_step - 1e-9 || b > total_bw - bw_step + 1e-9)
                continue;
            PartitionCandidate cand;
            cand.peSplit = {static_cast<std::uint64_t>(a),
                            total_pes -
                                static_cast<std::uint64_t>(a)};
            cand.bwSplit = {b, total_bw - b};
            out.push_back(std::move(cand));
        }
    }
    return out;
}

namespace
{

/**
 * Uniformly random composition of @p units into @p ways parts, each
 * >= 1: ways-1 distinct cut points drawn from the units-1 interior
 * positions by partial Fisher-Yates, then differenced.
 */
std::vector<std::uint64_t>
randomComposition(std::uint64_t units, std::size_t ways,
                  util::SplitMix64 &rng)
{
    if (units < ways)
        util::fatal("partition space: ", units,
                    " units cannot cover ", ways, " sub-accs");
    std::vector<std::uint64_t> cuts(units - 1);
    for (std::uint64_t i = 0; i < units - 1; ++i)
        cuts[i] = i + 1;
    for (std::size_t i = 0; i + 1 < ways; ++i) {
        std::size_t j = i + static_cast<std::size_t>(rng.nextBounded(
                                cuts.size() - i));
        std::swap(cuts[i], cuts[j]);
    }
    cuts.resize(ways - 1);
    std::sort(cuts.begin(), cuts.end());
    std::vector<std::uint64_t> parts(ways);
    std::uint64_t prev = 0;
    for (std::size_t i = 0; i + 1 < ways; ++i) {
        parts[i] = cuts[i] - prev;
        prev = cuts[i];
    }
    parts[ways - 1] = units - prev;
    return parts;
}

} // namespace

PartitionCandidate
randomCandidate(std::uint64_t total_pes, double total_bw,
                std::size_t ways, const PartitionSpaceOptions &opts,
                util::SplitMix64 &rng)
{
    if (ways == 0)
        util::fatal("partition space: zero sub-accelerators");
    std::uint64_t pe_step = peStep(total_pes, opts);
    double bw_step = bwStep(total_bw, opts);
    std::uint64_t bw_units = static_cast<std::uint64_t>(
        std::llround(total_bw / bw_step));

    PartitionCandidate cand;
    for (std::uint64_t u :
         randomComposition(total_pes / pe_step, ways, rng))
        cand.peSplit.push_back(u * pe_step);
    for (std::uint64_t u : randomComposition(bw_units, ways, rng))
        cand.bwSplit.push_back(static_cast<double>(u) * bw_step);
    return cand;
}

PartitionCandidate
neighborCandidate(const PartitionCandidate &center,
                  std::uint64_t total_pes, double total_bw,
                  const PartitionSpaceOptions &opts,
                  util::SplitMix64 &rng)
{
    const std::size_t ways = center.peSplit.size();
    if (ways < 2)
        return center;
    std::uint64_t pe_step = peStep(total_pes, opts);
    double bw_step = bwStep(total_bw, opts);

    // Bandwidth parts are re-derived as integer step counts and
    // rebuilt as count * step, the same expression gridCandidates
    // uses — chains therefore stay bit-exactly on the fine grid and
    // revisits hit the evaluation memo instead of near-missing it
    // with accumulated floating-point drift.
    std::vector<std::uint64_t> bw_units(ways);
    for (std::size_t i = 0; i < ways; ++i) {
        bw_units[i] = static_cast<std::uint64_t>(
            std::llround(center.bwSplit[i] / bw_step));
    }

    constexpr int kMaxDraws = 8;
    for (int draw = 0; draw < kMaxDraws; ++draw) {
        bool move_pe = (rng.next() & 1) != 0;
        std::size_t donor =
            static_cast<std::size_t>(rng.nextBounded(ways));
        std::size_t receiver =
            static_cast<std::size_t>(rng.nextBounded(ways - 1));
        if (receiver >= donor)
            ++receiver;
        if (move_pe) {
            if (center.peSplit[donor] < 2 * pe_step)
                continue; // donor would drop below one step
            PartitionCandidate out = center;
            out.peSplit[donor] -= pe_step;
            out.peSplit[receiver] += pe_step;
            return out;
        }
        if (bw_units[donor] < 2)
            continue;
        PartitionCandidate out = center;
        out.bwSplit[donor] =
            static_cast<double>(bw_units[donor] - 1) * bw_step;
        out.bwSplit[receiver] =
            static_cast<double>(bw_units[receiver] + 1) * bw_step;
        return out;
    }
    return center;
}

} // namespace herald::dse
