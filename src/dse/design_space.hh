/**
 * @file
 * Hardware-partitioning design space (paper Sec. IV-C): enumeration
 * of PE and bandwidth splits across sub-accelerators at a user-chosen
 * granularity, with exhaustive, binary (coarse-to-fine) and random
 * search strategies.
 */

#pragma once

#include <cstdint>
#include <vector>

namespace herald::dse
{

/**
 * All ways to split @p units indivisible units across @p ways parts,
 * each part >= @p min_units (default 1). Order matters (parts are
 * per-sub-accelerator). E.g. splitting 4 units 2 ways: {1,3} {2,2}
 * {3,1}.
 */
std::vector<std::vector<std::uint64_t>>
enumerateCompositions(std::uint64_t units, std::size_t ways,
                      std::uint64_t min_units = 1);

/** One candidate hardware partitioning. */
struct PartitionCandidate
{
    std::vector<std::uint64_t> peSplit; //!< PEs per sub-accelerator
    std::vector<double> bwSplit;        //!< GB/s per sub-accelerator
};

/** How the partition space is traversed. */
enum class SearchStrategy
{
    Exhaustive, //!< full grid at the given granularity
    Binary,     //!< coarse grid, then refine around the best
    Random,     //!< uniform samples from the fine grid
};

const char *toString(SearchStrategy strategy);

/** Partition-space generation parameters. */
struct PartitionSpaceOptions
{
    /** PE step; 0 selects totalPes / 16. */
    std::uint64_t peGranularity = 0;
    /** Bandwidth step in GB/s; 0 selects totalBw / 8. */
    double bwGranularity = 0.0;
    SearchStrategy strategy = SearchStrategy::Exhaustive;
    /** Sample count for SearchStrategy::Random. */
    std::size_t randomSamples = 64;
    /** PRNG seed for SearchStrategy::Random (deterministic). */
    std::uint64_t seed = 1;
};

/**
 * Generate the partition candidates for @p ways sub-accelerators on a
 * chip with @p total_pes and @p total_bw. For Binary, this returns
 * the coarse grid; refinement happens in the DSE driver.
 */
std::vector<PartitionCandidate>
generateCandidates(std::uint64_t total_pes, double total_bw,
                   std::size_t ways,
                   const PartitionSpaceOptions &opts);

/**
 * Candidates near @p center : every PE/BW split whose parts differ
 * from the center by at most one @p opts step (used by the Binary
 * strategy's refinement).
 */
std::vector<PartitionCandidate>
refineAround(const PartitionCandidate &center, std::uint64_t total_pes,
             double total_bw, const PartitionSpaceOptions &opts);

} // namespace herald::dse

