/**
 * @file
 * Hardware-partitioning design space (paper Sec. IV-C): enumeration
 * of PE and bandwidth splits across sub-accelerators at a user-chosen
 * granularity, with exhaustive, binary (coarse-to-fine), random and
 * simulated-annealing search strategies. Annealing is not an
 * up-front enumeration — proposals depend on evaluated costs — so
 * this file only supplies its move kernel (randomCandidate /
 * neighborCandidate); the accept/reject driver lives in
 * Herald::explore (see docs/DSE.md).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "util/math_utils.hh"

namespace herald::dse
{

/**
 * All ways to split @p units indivisible units across @p ways parts,
 * each part >= @p min_units (default 1). Order matters (parts are
 * per-sub-accelerator). E.g. splitting 4 units 2 ways: {1,3} {2,2}
 * {3,1}.
 */
std::vector<std::vector<std::uint64_t>>
enumerateCompositions(std::uint64_t units, std::size_t ways,
                      std::uint64_t min_units = 1);

/** One candidate hardware partitioning. */
struct PartitionCandidate
{
    std::vector<std::uint64_t> peSplit; //!< PEs per sub-accelerator
    std::vector<double> bwSplit;        //!< GB/s per sub-accelerator
};

/** How the partition space is traversed. */
enum class SearchStrategy
{
    Exhaustive, //!< full grid at the given granularity
    Binary,     //!< coarse grid, then refine around the best
    Random,     //!< uniform samples from the fine grid
    Annealing,  //!< simulated annealing (driver in Herald::explore)
};

const char *toString(SearchStrategy strategy);

/**
 * Simulated-annealing parameters (SearchStrategy::Annealing). The
 * schedule is geometric: iteration i of every chain runs at
 * temperature initialTemp * cooling^i, and a worse proposal with
 * relative regression r is accepted with probability exp(-r / T).
 * All randomness flows from per-chain SplitMix64 streams derived
 * from PartitionSpaceOptions::seed, so a run is a pure function of
 * (workload, chip, options) — independent of HERALD_THREADS.
 */
struct AnnealingOptions
{
    /** Independent chains per iteration batch (parallel width). */
    std::size_t chains = 8;
    /** Metropolis iterations per chain. */
    std::size_t iterations = 256;
    /**
     * Stop once this many *distinct* candidates have been evaluated
     * (revisits are memoized and free); 0 means no cap. The cap is
     * checked between iteration batches, so up to `chains` fresh
     * evaluations may land past it.
     */
    std::size_t maxEvaluations = 0;
    /** Initial temperature, relative to the current objective. */
    double initialTemp = 0.10;
    /** Geometric cooling factor per iteration, in (0, 1]. */
    double cooling = 0.97;
};

/** Partition-space generation parameters. */
struct PartitionSpaceOptions
{
    /** PE step; 0 selects totalPes / 16. */
    std::uint64_t peGranularity = 0;
    /** Bandwidth step in GB/s; 0 selects totalBw / 8. */
    double bwGranularity = 0.0;
    SearchStrategy strategy = SearchStrategy::Exhaustive;
    /** Sample count for SearchStrategy::Random. */
    std::size_t randomSamples = 64;
    /** PRNG seed for Random and Annealing (deterministic). */
    std::uint64_t seed = 1;
    /** Metaheuristic knobs for SearchStrategy::Annealing. */
    AnnealingOptions annealing;
};

/**
 * Generate the partition candidates for @p ways sub-accelerators on a
 * chip with @p total_pes and @p total_bw. For Binary, this returns
 * the coarse grid; refinement happens in the DSE driver.
 */
std::vector<PartitionCandidate>
generateCandidates(std::uint64_t total_pes, double total_bw,
                   std::size_t ways,
                   const PartitionSpaceOptions &opts);

/**
 * Candidates near @p center : every PE/BW split whose parts differ
 * from the center by at most one @p opts step (used by the Binary
 * strategy's refinement).
 */
std::vector<PartitionCandidate>
refineAround(const PartitionCandidate &center, std::uint64_t total_pes,
             double total_bw, const PartitionSpaceOptions &opts);

/**
 * A uniformly random point of the fine grid (each axis an
 * independent uniform composition), for annealing chain starts.
 * Consumes a deterministic amount of @p rng state per call.
 */
PartitionCandidate randomCandidate(std::uint64_t total_pes,
                                   double total_bw, std::size_t ways,
                                   const PartitionSpaceOptions &opts,
                                   util::SplitMix64 &rng);

/**
 * One annealing move from @p center : transfer a single granularity
 * step of one axis (PE or bandwidth, coin-flipped) from a random
 * donor sub-accelerator to a random distinct receiver. Moves that
 * would push the donor below one step are redrawn a bounded number
 * of times; if none lands, @p center is returned unchanged (the
 * chain stays put for that iteration). Totals are conserved by
 * construction, so every neighbor is a valid fine-grid point.
 */
PartitionCandidate neighborCandidate(const PartitionCandidate &center,
                                     std::uint64_t total_pes,
                                     double total_bw,
                                     const PartitionSpaceOptions &opts,
                                     util::SplitMix64 &rng);

} // namespace herald::dse

