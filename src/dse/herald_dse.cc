#include "dse/herald_dse.hh"

#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sched/layer_cost_table.hh"
#include "util/logging.hh"
#include "util/math_utils.hh"
#include "util/thread_pool.hh"

namespace herald::dse
{

namespace
{

/**
 * Canonical key of a partition candidate for duplicate detection.
 * Bandwidth shares are quantized to 2^-20 GB/s so grid points that
 * differ only by floating-point noise collapse to one key. A plain
 * struct of the quantized integers — no string building, so the
 * Binary refinement round's dedup does not allocate per candidate
 * beyond the key's split storage.
 */
struct CandidateKey
{
    std::vector<std::uint64_t> pe;
    std::vector<std::int64_t> bwQ;

    bool
    operator==(const CandidateKey &o) const
    {
        return pe == o.pe && bwQ == o.bwQ;
    }
};

CandidateKey
candidateKey(const PartitionCandidate &cand)
{
    CandidateKey key;
    key.pe = cand.peSplit;
    key.bwQ.reserve(cand.bwSplit.size());
    for (double bw : cand.bwSplit) {
        key.bwQ.push_back(
            std::llround(bw * static_cast<double>(1 << 20)));
    }
    return key;
}

struct CandidateKeyHash
{
    std::size_t
    operator()(const CandidateKey &key) const
    {
        // splitmix64-style mixing over every element.
        std::uint64_t h = 0x9e3779b97f4a7c15ULL *
                          (key.pe.size() + 1);
        auto mix = [&h](std::uint64_t v) {
            v += 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
            v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ULL;
            v = (v ^ (v >> 27)) * 0x94d049bb133111ebULL;
            h ^= v ^ (v >> 31);
        };
        for (std::uint64_t pe : key.pe)
            mix(pe);
        for (std::int64_t bw : key.bwQ)
            mix(static_cast<std::uint64_t>(bw));
        return static_cast<std::size_t>(h);
    }
};

} // namespace

std::vector<util::DesignPoint>
DseResult::designPoints() const
{
    std::vector<util::DesignPoint> out;
    out.reserve(points.size());
    for (const DsePoint &p : points)
        out.push_back(p.designPoint());
    return out;
}

std::vector<util::DesignPoint>
DseResult::frontierPoints() const
{
    std::vector<util::DesignPoint> out;
    out.reserve(frontier.size());
    for (std::size_t idx : frontier)
        out.push_back(points.at(idx).designPoint());
    return out;
}

Herald::Herald(cost::CostModel &model, HeraldOptions options)
    : costModel(model), opts(options)
{
}

const char *
toString(Objective objective)
{
    switch (objective) {
      case Objective::Edp:
        return "EDP";
      case Objective::Latency:
        return "latency";
      case Objective::Energy:
        return "energy";
      case Objective::SlaViolations:
        return "SLA violations";
      case Objective::ParetoFrontier:
        return "Pareto frontier";
    }
    util::panic("unknown Objective");
}

double
Herald::objectiveValue(const sched::ScheduleSummary &summary) const
{
    switch (opts.objective) {
      case Objective::Edp:
        return summary.edp();
      case Objective::Latency:
        return summary.latencySec;
      case Objective::Energy:
        return summary.energyMj;
      case Objective::SlaViolations: {
        // Lexicographic (misses, latency) folded into one double:
        // the latency term is squashed below 1, so one extra miss
        // always outweighs any latency difference.
        double lat = summary.latencySec;
        return static_cast<double>(summary.sla.deadlineMisses) +
               lat / (1.0 + lat);
      }
      case Objective::ParetoFrontier: {
        // Scalarization used for bestIdx (and for the annealing
        // chains) in frontier mode: lexicographic (misses, EDP),
        // same squash-below-1 fold as SlaViolations. Its argmin is
        // always ON the frontier: a dominator would have misses <=
        // and latency/energy <= with one strict, hence an equal-or-
        // lower key — contradiction with being the strict argmin.
        double edp = summary.edp();
        return static_cast<double>(summary.sla.deadlineMisses) +
               edp / (1.0 + edp);
      }
    }
    util::panic("unknown Objective");
}

DsePoint
Herald::evaluate(const workload::Workload &wl,
                 const accel::Accelerator &acc) const
{
    return evaluateImpl(wl, acc, opts.scheduler.reconfig,
                        opts.scheduler.prefillThreads);
}

DsePoint
Herald::evaluateImpl(const workload::Workload &wl,
                     const accel::Accelerator &acc,
                     const sched::ReconfigOptions &reconfig,
                     std::size_t prefill_threads,
                     sched::CostColumnCache *cache) const
{
    // One LayerCostTable per candidate: built once (unique layers x
    // sub-accs), reused across every scheduled layer of the run.
    // With a sweep-shared column cache, the build fetches whole
    // columns that earlier candidates already evaluated.
    sched::SchedulerOptions sched_opts = opts.scheduler;
    sched_opts.reconfig = reconfig;
    sched_opts.prefillThreads = prefill_threads;
    sched::HeraldScheduler scheduler(costModel, sched_opts);
    auto run = [&]() -> sched::Schedule {
        if (cache != nullptr && wl.numInstances() > 0) {
            sched::LayerCostTable table = sched::LayerCostTable::build(
                costModel, wl, acc, sched_opts.metric,
                sched_opts.rdaOverheads, prefill_threads, cache);
            return scheduler.schedule(wl, acc, table);
        }
        return scheduler.schedule(wl, acc);
    };
    sched::Schedule schedule = run();
    DsePoint point{acc,
                   schedule.finalize(wl, acc,
                                     costModel.energyModel(),
                                     opts.chargeIdleEnergy),
                   reconfig};
    return point;
}

DseResult
Herald::explore(const workload::Workload &wl,
                const accel::AcceleratorClass &chip,
                const std::vector<dataflow::DataflowStyle> &styles)
    const
{
    if (styles.empty())
        util::fatal("Herald::explore: no dataflow styles given");

    // One fixed pool for both sweep rounds; no pool (and no spawned
    // threads) on the serial path. The calling thread participates
    // in parallelFor, so n_threads total evaluators means
    // n_threads - 1 pool workers.
    const std::size_t n_threads =
        util::resolveThreadCount(opts.numThreads);
    std::optional<util::ThreadPool> pool;
    if (n_threads > 1)
        pool.emplace(n_threads - 1);

    // The repartitioning-policy axis: every partition candidate is
    // scheduled once per entry, and the serial reduction below picks
    // across the full partition x reconfig cross product. An empty
    // axis degenerates to one evaluation per partition with the
    // configured scheduler.reconfig — exactly today's sweep.
    const std::vector<sched::ReconfigOptions> recfgs =
        opts.reconfigCandidates.empty()
            ? std::vector<sched::ReconfigOptions>{
                  opts.scheduler.reconfig}
            : opts.reconfigCandidates;
    const std::size_t n_recfg = recfgs.size();

    // The sweep-wide column cache (tentpole of the DSE engine):
    // candidates that hand a sub-accelerator a (style, resources)
    // tuple an earlier candidate already evaluated reuse the whole
    // LayerCostTable column. Pure-function values, so results are
    // bit-identical with the cache off.
    sched::CostColumnCache column_cache;
    sched::CostColumnCache *cache =
        opts.shareCostColumns ? &column_cache : nullptr;

    DseResult result;
    double best = std::numeric_limits<double>::infinity();

    // Evaluate one batch of candidates. Workers fill one slot per
    // (candidate, reconfig) index; the best-point reduction below
    // runs serially in that order, so points, their order and
    // bestIdx match the serial sweep exactly (same "<"
    // tie-breaking). @p values_out, when given, receives each
    // candidate's objective value minimized over the reconfig axis
    // (the per-candidate score the annealing chains climb on).
    auto evaluate_candidates =
        [&](const std::vector<PartitionCandidate> &candidates,
            std::vector<double> *values_out =
                nullptr) -> std::optional<PartitionCandidate> {
        if (values_out) {
            values_out->assign(
                candidates.size(),
                std::numeric_limits<double>::infinity());
        }
        std::vector<std::optional<DsePoint>> slots(
            candidates.size() * n_recfg);
        // When candidates fan out across the sweep pool, each
        // one builds its LayerCostTable serially — nesting a
        // prefill pool would only oversubscribe the machine. On
        // the serial branch (no pool, or a single candidate,
        // e.g. a degenerate Binary refinement batch) the prefill
        // gets the full thread budget instead; either way the
        // results are bit-identical.
        const bool sweep_parallel = pool && slots.size() > 1;
        const std::size_t prefill_threads =
            sweep_parallel ? 1 : n_threads;
        auto eval_one = [&](std::size_t i) {
            const PartitionCandidate &cand = candidates[i / n_recfg];
            accel::Accelerator acc = accel::Accelerator::makeHda(
                chip, styles, cand.peSplit, cand.bwSplit);
            slots[i] = evaluateImpl(wl, acc, recfgs[i % n_recfg],
                                    prefill_threads, cache);
        };
        if (sweep_parallel) {
            pool->parallelFor(0, slots.size(), eval_one);
        } else {
            for (std::size_t i = 0; i < slots.size(); ++i)
                eval_one(i);
        }

        std::optional<PartitionCandidate> best_cand;
        for (std::size_t i = 0; i < slots.size(); ++i) {
            DsePoint &point = *slots[i];
            double value = objectiveValue(point.summary);
            if (values_out) {
                double &slot = (*values_out)[i / n_recfg];
                slot = std::min(slot, value);
            }
            if (value < best) {
                best = value;
                result.bestIdx = result.points.size();
                best_cand = candidates[i / n_recfg];
            }
            result.points.push_back(std::move(point));
        }
        return best_cand;
    };

    if (opts.partition.strategy == SearchStrategy::Annealing) {
        // Batch-synchronous simulated annealing. Every iteration,
        // each chain proposes one neighbor; the *fresh* proposals
        // (never evaluated before) are scored in a single parallel
        // batch, then acceptance runs serially in chain order.
        // Randomness lives in per-chain SplitMix64 streams seeded
        // from opts.partition.seed, and every evaluated value is a
        // pure function of the candidate — so the chain trajectories,
        // the points vector, bestIdx and the frontier are
        // bit-identical across reruns and HERALD_THREADS settings.
        const AnnealingOptions &ann = opts.partition.annealing;
        if (ann.chains == 0)
            util::fatal("Herald::explore: annealing needs >= 1 "
                        "chain");
        if (!(ann.cooling > 0.0 && ann.cooling <= 1.0))
            util::fatal("Herald::explore: annealing cooling must be "
                        "in (0, 1]");

        // Candidate-level memo: revisiting a (peSplit, bwSplit)
        // point is free and appends no new DsePoint, so "distinct
        // evaluations" — the budget unit — equals memo.size().
        std::unordered_map<CandidateKey, double, CandidateKeyHash>
            memo;
        auto evaluate_memo =
            [&](const std::vector<PartitionCandidate> &cands) {
                std::vector<PartitionCandidate> fresh;
                for (const PartitionCandidate &c : cands) {
                    if (memo
                            .emplace(candidateKey(c),
                                     std::numeric_limits<
                                         double>::quiet_NaN())
                            .second) {
                        fresh.push_back(c);
                    }
                }
                std::vector<double> fresh_vals;
                if (!fresh.empty())
                    evaluate_candidates(fresh, &fresh_vals);
                for (std::size_t i = 0; i < fresh.size(); ++i)
                    memo[candidateKey(fresh[i])] = fresh_vals[i];
                std::vector<double> out;
                out.reserve(cands.size());
                for (const PartitionCandidate &c : cands)
                    out.push_back(memo.at(candidateKey(c)));
                return out;
            };

        util::SplitMix64 seeder(opts.partition.seed);
        std::vector<util::SplitMix64> rngs;
        rngs.reserve(ann.chains);
        for (std::size_t c = 0; c < ann.chains; ++c)
            rngs.emplace_back(seeder.next());

        std::vector<PartitionCandidate> cur(ann.chains);
        for (std::size_t c = 0; c < ann.chains; ++c) {
            cur[c] = randomCandidate(chip.numPes, chip.bwGBps,
                                     styles.size(), opts.partition,
                                     rngs[c]);
        }
        std::vector<double> cur_val = evaluate_memo(cur);

        for (std::size_t it = 0; it < ann.iterations; ++it) {
            if (ann.maxEvaluations != 0 &&
                memo.size() >= ann.maxEvaluations)
                break;
            const double temp =
                ann.initialTemp *
                std::pow(ann.cooling, static_cast<double>(it));
            std::vector<PartitionCandidate> prop(ann.chains);
            for (std::size_t c = 0; c < ann.chains; ++c) {
                prop[c] = neighborCandidate(cur[c], chip.numPes,
                                            chip.bwGBps,
                                            opts.partition, rngs[c]);
            }
            std::vector<double> prop_val = evaluate_memo(prop);
            for (std::size_t c = 0; c < ann.chains; ++c) {
                const double delta = prop_val[c] - cur_val[c];
                bool accept = delta <= 0.0;
                if (!accept) {
                    // Metropolis on the *relative* regression
                    // delta / |current|, so the temperature scale is
                    // objective-unit-free. A zero denominator (cold
                    // chain or zero-valued objective) rejects.
                    const double denom =
                        temp * std::abs(cur_val[c]);
                    accept = denom > 0.0 &&
                             rngs[c].nextDouble() <
                                 std::exp(-delta / denom);
                }
                if (accept) {
                    cur[c] = prop[c];
                    cur_val[c] = prop_val[c];
                }
            }
        }
    } else {
        std::vector<PartitionCandidate> candidates =
            generateCandidates(chip.numPes, chip.bwGBps,
                               styles.size(), opts.partition);
        std::optional<PartitionCandidate> best_cand =
            evaluate_candidates(candidates);

        if (opts.partition.strategy == SearchStrategy::Binary &&
            best_cand) {
            // Refine around the coarse optimum on the fine grid, but
            // never re-evaluate a (peSplit, bwSplit) point the
            // coarse round already scored — the refinement window
            // overlaps the coarse grid (including its own center).
            // Filtering keeps the surviving candidates in
            // refineAround's order, so the sweep stays bit-identical
            // across thread counts.
            std::unordered_set<CandidateKey, CandidateKeyHash> seen;
            for (const PartitionCandidate &c : candidates)
                seen.insert(candidateKey(c));
            std::vector<PartitionCandidate> refined = refineAround(
                *best_cand, chip.numPes, chip.bwGBps,
                opts.partition);
            std::vector<PartitionCandidate> fresh;
            fresh.reserve(refined.size());
            for (PartitionCandidate &c : refined) {
                if (seen.insert(candidateKey(c)).second)
                    fresh.push_back(std::move(c));
            }
            evaluate_candidates(fresh);
        }
    }

    if (result.points.empty())
        util::fatal("Herald::explore: empty partition space");

    // Frontier mode: extract the Pareto-optimal subset over every
    // evaluated point. bestIdx already holds the scalarized argmin,
    // which provably lies on this frontier (see objectiveValue).
    if (opts.objective == Objective::ParetoFrontier)
        result.frontier = util::paretoFrontIndices(result.designPoints());
    return result;
}

} // namespace herald::dse
