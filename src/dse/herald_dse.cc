#include "dse/herald_dse.hh"

#include <limits>
#include <optional>

#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace herald::dse
{

std::vector<util::DesignPoint>
DseResult::designPoints() const
{
    std::vector<util::DesignPoint> out;
    out.reserve(points.size());
    for (const DsePoint &p : points)
        out.push_back(p.designPoint());
    return out;
}

Herald::Herald(cost::CostModel &model, HeraldOptions options)
    : costModel(model), opts(options)
{
}

double
Herald::objectiveValue(const sched::ScheduleSummary &summary) const
{
    switch (opts.objective) {
      case sched::Metric::Edp:
        return summary.edp();
      case sched::Metric::Latency:
        return summary.latencySec;
      case sched::Metric::Energy:
        return summary.energyMj;
    }
    util::panic("unknown Metric");
}

DsePoint
Herald::evaluate(const workload::Workload &wl,
                 const accel::Accelerator &acc) const
{
    sched::HeraldScheduler scheduler(costModel, opts.scheduler);
    sched::Schedule schedule = scheduler.schedule(wl, acc);
    DsePoint point{acc, schedule.finalize(acc,
                                          costModel.energyModel(),
                                          opts.chargeIdleEnergy)};
    return point;
}

DseResult
Herald::explore(const workload::Workload &wl,
                const accel::AcceleratorClass &chip,
                const std::vector<dataflow::DataflowStyle> &styles)
    const
{
    if (styles.empty())
        util::fatal("Herald::explore: no dataflow styles given");

    // One fixed pool for both sweep rounds; no pool (and no spawned
    // threads) on the serial path. The calling thread participates
    // in parallelFor, so n_threads total evaluators means
    // n_threads - 1 pool workers.
    const std::size_t n_threads =
        util::resolveThreadCount(opts.numThreads);
    std::optional<util::ThreadPool> pool;
    if (n_threads > 1)
        pool.emplace(n_threads - 1);

    DseResult result;
    double best = std::numeric_limits<double>::infinity();

    // Evaluate one batch of candidates. Workers fill one slot per
    // candidate index; the best-point reduction below runs serially
    // in candidate order, so points, their order and bestIdx match
    // the serial sweep exactly (same "<" tie-breaking).
    auto evaluate_candidates =
        [&](const std::vector<PartitionCandidate> &candidates) {
            std::vector<std::optional<DsePoint>> slots(
                candidates.size());
            auto eval_one = [&](std::size_t i) {
                accel::Accelerator acc = accel::Accelerator::makeHda(
                    chip, styles, candidates[i].peSplit,
                    candidates[i].bwSplit);
                slots[i] = evaluate(wl, acc);
            };
            if (pool && candidates.size() > 1) {
                pool->parallelFor(0, candidates.size(), eval_one);
            } else {
                for (std::size_t i = 0; i < candidates.size(); ++i)
                    eval_one(i);
            }

            std::optional<PartitionCandidate> best_cand;
            for (std::size_t i = 0; i < candidates.size(); ++i) {
                DsePoint &point = *slots[i];
                double value = objectiveValue(point.summary);
                if (value < best) {
                    best = value;
                    result.bestIdx = result.points.size();
                    best_cand = candidates[i];
                }
                result.points.push_back(std::move(point));
            }
            return best_cand;
        };

    std::vector<PartitionCandidate> candidates = generateCandidates(
        chip.numPes, chip.bwGBps, styles.size(), opts.partition);
    std::optional<PartitionCandidate> best_cand =
        evaluate_candidates(candidates);

    if (opts.partition.strategy == SearchStrategy::Binary &&
        best_cand) {
        // Refine around the coarse optimum on the fine grid.
        evaluate_candidates(refineAround(*best_cand, chip.numPes,
                                         chip.bwGBps,
                                         opts.partition));
    }

    if (result.points.empty())
        util::fatal("Herald::explore: empty partition space");
    return result;
}

} // namespace herald::dse
