/**
 * @file
 * Herald: the hardware/schedule co-design space exploration framework
 * (paper Fig. 10). For a chip budget, a workload and a set of
 * dataflow styles, Herald sweeps PE and bandwidth partitionings,
 * schedules the workload on every candidate with its layer scheduler,
 * and reports every evaluated design point plus the best one under
 * the chosen objective.
 */

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "accel/accelerator.hh"
#include "dse/design_space.hh"
#include "sched/herald_scheduler.hh"
#include "util/pareto.hh"
#include "workload/workload.hh"

namespace herald::sched
{
class CostColumnCache;
} // namespace herald::sched

namespace herald::dse
{

/** One evaluated (accelerator, schedule) design point. */
struct DsePoint
{
    accel::Accelerator accelerator;
    sched::ScheduleSummary summary;
    /**
     * The elastic-repartitioning policy this point was scheduled
     * with (HeraldOptions::reconfigCandidates axis; Reconfig::Off
     * unless the sweep enabled one).
     */
    sched::ReconfigOptions reconfig{};

    /** Latency/energy/SLA-miss view for Pareto extraction. */
    util::DesignPoint
    designPoint() const
    {
        util::DesignPoint pt{summary.latencySec, summary.energyMj,
                             accelerator.name()};
        pt.slaMisses =
            static_cast<double>(summary.sla.deadlineMisses);
        return pt;
    }
};

/** Result of a design-space exploration. */
struct DseResult
{
    std::vector<DsePoint> points;
    std::size_t bestIdx = 0; //!< by the configured objective

    /**
     * Indices into points of the Pareto-optimal subset over
     * (latency, energy, SLA misses), in ascending-latency order
     * (util::paretoFrontIndices). Filled under
     * Objective::ParetoFrontier — empty for scalar objectives, whose
     * callers only want the argmin. When filled, bestIdx is always a
     * member: the argmin of the (misses, EDP) scalarization cannot
     * be dominated.
     */
    std::vector<std::size_t> frontier;

    const DsePoint &best() const { return points.at(bestIdx); }

    /** All points as latency/energy/miss triples. */
    std::vector<util::DesignPoint> designPoints() const;

    /** The frontier rows of designPoints() (empty unless filled). */
    std::vector<util::DesignPoint> frontierPoints() const;
};

/**
 * What Herald::explore minimizes over the partition space. Unlike
 * sched::Metric (the per-layer assignment metric), objectives are
 * whole-schedule properties — including the SLA dimension of
 * real-time workloads.
 */
enum class Objective
{
    Edp,
    Latency,
    Energy,
    /**
     * Deadline-miss count first, whole-workload latency as the
     * tie-break (encoded so any miss dominates any latency delta).
     * Dropped frames count as misses, so admission control is
     * co-designed too. Meaningful on workloads with deadlines; pair
     * it with a deadline-driven scheduler.policy (Policy::Edf or
     * Policy::Lst, optionally DropPolicy::HopelessFrames) so the
     * sweep searches hardware x policy together.
     */
    SlaViolations,
    /**
     * Multi-objective mode: DseResult::frontier is filled with the
     * Pareto-optimal subset over (latency, energy, SLA misses), and
     * bestIdx falls back to the lexicographic (misses, EDP)
     * scalarization — a point guaranteed to lie on the frontier, so
     * single-number consumers keep working. This is also the scalar
     * the annealing chains hill-climb on under this objective.
     */
    ParetoFrontier,
};

const char *toString(Objective objective);

/** Herald configuration. */
struct HeraldOptions
{
    PartitionSpaceOptions partition{};
    sched::SchedulerOptions scheduler{};
    Objective objective = Objective::Edp;
    /**
     * Elastic-repartitioning policy axis: every partition candidate
     * is scheduled once per entry (threshold / migration quantum /
     * penalty-sensitivity grid — see sched::ReconfigOptions) and the
     * objective picks across the full cross product, so static
     * splits compete directly against runtime migration. Most useful
     * with Objective::SlaViolations on deadline workloads. Empty
     * (the default) keeps today's behavior: one evaluation per
     * partition with scheduler.reconfig as-is.
     */
    std::vector<sched::ReconfigOptions> reconfigCandidates{};
    /** Charge idle static energy at schedule level. */
    bool chargeIdleEnergy = true;
    /**
     * Share LayerCostTable columns across the partition sweep
     * through one sched::CostColumnCache: candidates that give a
     * sub-accelerator a (style, resources) tuple some earlier
     * candidate already evaluated reuse that whole column instead of
     * re-paying the dominant prefill cost. Bit-identical results
     * either way (columns are pure functions of their key); false
     * restores the pre-cache brute-force cost profile, which
     * bench_dse_throughput uses as its speedup baseline.
     */
    bool shareCostColumns = true;
    /**
     * Worker threads for the partition sweep: 0 resolves via the
     * HERALD_THREADS environment variable, then the hardware
     * concurrency; 1 forces the serial path. Results are identical
     * for every thread count (see Herald::explore).
     */
    std::size_t numThreads = 0;
};

/** The co-DSE driver. */
class Herald
{
  public:
    Herald(cost::CostModel &model,
           HeraldOptions options = HeraldOptions{});

    /**
     * Schedule @p wl on a fixed accelerator and return the summary
     * (compiler use case: schedule-only, Sec. I contribution (ii)).
     */
    DsePoint evaluate(const workload::Workload &wl,
                      const accel::Accelerator &acc) const;

    /**
     * Full co-DSE (design-time use case): explore PE/BW partitionings
     * of an HDA with the given @p styles on the @p chip budget.
     *
     * Candidates are evaluated across HeraldOptions::numThreads
     * workers. Every candidate evaluation is an independent pure
     * function, results are collected into a slot per candidate, and
     * the best-point reduction runs serially in candidate order — so
     * the returned points, their order, and bestIdx are identical for
     * every thread count (including the serial path).
     */
    DseResult explore(const workload::Workload &wl,
                      const accel::AcceleratorClass &chip,
                      const std::vector<dataflow::DataflowStyle>
                          &styles) const;

    const HeraldOptions &options() const { return opts; }

  private:
    cost::CostModel &costModel;
    HeraldOptions opts;

    double objectiveValue(const sched::ScheduleSummary &summary) const;

    /**
     * evaluate() with an explicit LayerCostTable prefill width — the
     * partition sweep forces the serial prefill on its workers while
     * the public single-candidate entry point keeps the configured
     * fan-out. A non-null @p cache routes the prefill through the
     * sweep's shared CostColumnCache (shareCostColumns).
     */
    DsePoint evaluateImpl(const workload::Workload &wl,
                          const accel::Accelerator &acc,
                          const sched::ReconfigOptions &reconfig,
                          std::size_t prefill_threads,
                          sched::CostColumnCache *cache = nullptr)
        const;
};

} // namespace herald::dse

