#include "sched/arrival_source.hh"

#include <cmath>

#include "util/logging.hh"

namespace herald::sched
{

std::size_t
ArrivalSource::addStream(dnn::Model model, double period_cycles,
                         double rel_deadline_cycles,
                         double phase_cycles, std::uint64_t frames)
{
    if (model.numLayers() == 0)
        util::fatal("arrival source: empty model '", model.name(),
                    "'");
    if (!std::isfinite(period_cycles) || period_cycles <= 0.0)
        util::fatal("arrival source: period must be finite and > 0, "
                    "got ",
                    period_cycles);
    if (!std::isfinite(rel_deadline_cycles) ||
        rel_deadline_cycles < 0.0)
        util::fatal("arrival source: deadline must be finite and "
                    ">= 0, got ",
                    rel_deadline_cycles);
    if (!std::isfinite(phase_cycles) || phase_cycles < 0.0)
        util::fatal("arrival source: phase must be finite and >= 0, "
                    "got ",
                    phase_cycles);
    if (frames == 0)
        util::fatal("arrival source: frames must be >= 1");
    if (frames != kUnboundedFrames) {
        const double last = phase_cycles +
                            static_cast<double>(frames - 1) *
                                period_cycles +
                            rel_deadline_cycles;
        if (!(last <= workload::kMaxCycle))
            util::fatal("arrival source: stream of ", frames,
                        " frames overflows the ", workload::kMaxCycle,
                        "-cycle limit, got last deadline ", last);
    }
    Stream s;
    s.model = std::move(model);
    s.periodCycles = period_cycles;
    s.relDeadlineCycles = rel_deadline_cycles;
    s.phaseCycles = phase_cycles;
    s.frames = frames;
    streamList.push_back(std::move(s));
    cursor.push_back(0);
    return streamList.size() - 1;
}

std::vector<dnn::Model>
ArrivalSource::models() const
{
    std::vector<dnn::Model> out;
    out.reserve(streamList.size());
    for (const Stream &s : streamList)
        out.push_back(s.model);
    return out;
}

ArrivalSource::Frame
ArrivalSource::frameOf(std::size_t s, std::uint64_t f) const
{
    const Stream &stream = streamList[s];
    Frame frame;
    frame.streamIdx = s;
    frame.frameIdx = f;
    frame.arrivalCycle = stream.phaseCycles +
                         static_cast<double>(f) *
                             stream.periodCycles;
    // Unbounded streams cannot be range-checked at addStream time,
    // so the generator enforces the cycle limit as it crosses it.
    if (!(frame.arrivalCycle + stream.relDeadlineCycles <=
          workload::kMaxCycle))
        util::fatal("arrival source: stream ", s, " frame ", f,
                    " overflows the ", workload::kMaxCycle,
                    "-cycle limit, got arrival ", frame.arrivalCycle);
    frame.deadlineCycle = stream.relDeadlineCycles > 0.0
                              ? frame.arrivalCycle +
                                    stream.relDeadlineCycles
                              : workload::kNoDeadline;
    return frame;
}

std::size_t
ArrivalSource::nextStream(const std::vector<std::uint64_t> &cur) const
{
    std::size_t best = streamList.size();
    double best_arrival = 0.0;
    for (std::size_t s = 0; s < streamList.size(); ++s) {
        const Stream &stream = streamList[s];
        if (cur[s] >= stream.frames)
            continue;
        const double arrival =
            stream.phaseCycles +
            static_cast<double>(cur[s]) * stream.periodCycles;
        // Strict < keeps ties on the lowest stream index — the order
        // materialize() lists equal-arrival frames in.
        if (best == streamList.size() || arrival < best_arrival) {
            best = s;
            best_arrival = arrival;
        }
    }
    return best;
}

bool
ArrivalSource::exhausted() const
{
    return nextStream(cursor) == streamList.size();
}

ArrivalSource::Frame
ArrivalSource::peek() const
{
    const std::size_t s = nextStream(cursor);
    if (s == streamList.size())
        util::panic("arrival source: peek past the last frame");
    return frameOf(s, cursor[s]);
}

ArrivalSource::Frame
ArrivalSource::next()
{
    const std::size_t s = nextStream(cursor);
    if (s == streamList.size())
        util::panic("arrival source: next past the last frame");
    Frame frame = frameOf(s, cursor[s]);
    ++cursor[s];
    ++emittedCount;
    return frame;
}

void
ArrivalSource::reset()
{
    cursor.assign(streamList.size(), 0);
    emittedCount = 0;
}

workload::Workload
ArrivalSource::materialize(const std::string &name) const
{
    for (std::size_t s = 0; s < streamList.size(); ++s) {
        if (streamList[s].frames == kUnboundedFrames)
            util::fatal("arrival source: cannot materialize stream ",
                        s, " ('", streamList[s].model.name(),
                        "'): unbounded frame budget");
    }
    workload::Workload wl(name);
    std::vector<std::uint64_t> cur(streamList.size(), 0);
    for (std::size_t s = nextStream(cur); s != streamList.size();
         s = nextStream(cur)) {
        const Frame frame = frameOf(s, cur[s]);
        wl.addModel(streamList[s].model, 1, frame.arrivalCycle,
                    streamList[s].relDeadlineCycles);
        ++cur[s];
    }
    return wl;
}

} // namespace herald::sched
