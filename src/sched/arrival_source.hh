/**
 * @file
 * Lazy arrival streams for the online serving engine.
 *
 * workload::Workload materializes every frame of a periodic stream up
 * front, which is exactly what an unbounded serving scenario cannot
 * afford: a million-frame soak would allocate a million Instance
 * records before the first layer is scheduled. An ArrivalSource holds
 * only the per-stream generators (model, period, relative deadline,
 * phase, frame budget) and emits frames one at a time in globally
 * nondecreasing arrival order (ties broken by stream index, then
 * frame index — the same deterministic order a materialized workload
 * lists them in), so the driver feeds OnlineScheduler::submit()
 * without ever holding more than O(streams) state.
 *
 * materialize() replays the same merge into a finite
 * workload::Workload — the bridge the equivalence suite uses to
 * compare an online run against the offline HeraldScheduler oracle
 * on the identical frame sequence.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dnn/model.hh"
#include "workload/workload.hh"

namespace herald::sched
{

/** See file comment. */
class ArrivalSource
{
  public:
    /** Stream frame budget meaning "never stops". */
    static constexpr std::uint64_t kUnboundedFrames = UINT64_MAX;

    /** One emitted frame. */
    struct Frame
    {
        std::size_t streamIdx = 0;  //!< also the model index
        std::uint64_t frameIdx = 0; //!< ordinal within its stream
        double arrivalCycle = 0.0;
        /** Absolute deadline; workload::kNoDeadline when none. */
        double deadlineCycle = workload::kNoDeadline;
    };

    /** One periodic generator. */
    struct Stream
    {
        dnn::Model model;
        double periodCycles = 0.0;
        double relDeadlineCycles = 0.0; //!< 0 = no deadline
        double phaseCycles = 0.0;
        std::uint64_t frames = kUnboundedFrames;
    };

    /**
     * Add a periodic stream: frame f arrives at phase + f * period
     * with absolute deadline arrival + rel_deadline (no deadline when
     * @p rel_deadline_cycles is 0). A finite @p frames caps the
     * stream; kUnboundedFrames never stops. Cycle arithmetic is
     * guarded against workload::kMaxCycle exactly like
     * Workload::addPeriodicModel. Returns the stream index.
     */
    std::size_t addStream(dnn::Model model, double period_cycles,
                          double rel_deadline_cycles = 0.0,
                          double phase_cycles = 0.0,
                          std::uint64_t frames = kUnboundedFrames);

    std::size_t numStreams() const { return streamList.size(); }
    const std::vector<Stream> &streams() const { return streamList; }

    /** Stream models in stream order (OnlineScheduler's model set). */
    std::vector<dnn::Model> models() const;

    /** True once every (finite) stream has emitted its last frame. */
    bool exhausted() const;

    /** The next frame in merge order without consuming it. */
    Frame peek() const;

    /** Emit and consume the next frame in merge order. */
    Frame next();

    /** Frames emitted by next() since construction / reset(). */
    std::uint64_t emitted() const { return emittedCount; }

    /** Rewind every stream to its first frame. */
    void reset();

    /**
     * Replay the merge from the start into a finite Workload named
     * @p name — one instance per frame, in emission order, with the
     * same arrivals and (relative) deadlines. Requires every stream
     * to be finite; the cursor state of this source is untouched.
     */
    workload::Workload materialize(const std::string &name) const;

  private:
    std::vector<Stream> streamList;
    std::vector<std::uint64_t> cursor; //!< next frame per stream
    std::uint64_t emittedCount = 0;

    /** Frame @p f of stream @p s (arrival/deadline arithmetic). */
    Frame frameOf(std::size_t s, std::uint64_t f) const;

    /** Stream emitting next (streamList.size() when exhausted). */
    std::size_t
    nextStream(const std::vector<std::uint64_t> &cur) const;
};

} // namespace herald::sched
