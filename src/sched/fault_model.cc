#include "sched/fault_model.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.hh"

namespace herald::sched
{

namespace
{

constexpr double kEps = 1e-6;

/** splitmix64: platform-independent, so seeds reproduce anywhere. */
std::uint64_t
nextU64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Uniform double in [0, 1). */
double
nextUnit(std::uint64_t &state)
{
    return static_cast<double>(nextU64(state) >> 11) * 0x1.0p-53;
}

} // namespace

void
FaultTimeline::checkAcc(std::size_t acc) const
{
    if (acc >= perAcc.size()) {
        util::fatal("fault timeline: sub-accelerator ", acc,
                    " out of range (timeline built for ",
                    perAcc.size(), ")");
    }
}

void
FaultTimeline::addPermanentFailure(std::size_t acc, double cycle)
{
    checkAcc(acc);
    if (!std::isfinite(cycle) || cycle < 0.0)
        util::fatal("fault timeline: permanent-failure cycle must be "
                    "finite and non-negative");
    perAcc[acc].permanentFailCycle =
        std::min(perAcc[acc].permanentFailCycle, cycle);
}

void
FaultTimeline::addOutage(std::size_t acc, double begin_cycle,
                         double duration_cycles)
{
    checkAcc(acc);
    if (!std::isfinite(begin_cycle) || begin_cycle < 0.0)
        util::fatal("fault timeline: outage begin must be finite and "
                    "non-negative");
    if (!std::isfinite(duration_cycles) || duration_cycles <= 0.0)
        util::fatal("fault timeline: outage duration must be finite "
                    "and positive");

    // Sorted insert with union-merge: overlapping or adjacent
    // outages coalesce so the query side sees disjoint windows.
    std::vector<OutageWindow> &out = perAcc[acc].outages;
    OutageWindow w{begin_cycle, begin_cycle + duration_cycles};
    auto it = std::lower_bound(
        out.begin(), out.end(), w,
        [](const OutageWindow &a, const OutageWindow &b) {
            return a.beginCycle < b.beginCycle;
        });
    it = out.insert(it, w);
    // Merge left, then absorb overlapping successors.
    if (it != out.begin() &&
        std::prev(it)->endCycle >= it->beginCycle) {
        std::prev(it)->endCycle =
            std::max(std::prev(it)->endCycle, it->endCycle);
        it = out.erase(it);
        --it;
    }
    while (std::next(it) != out.end() &&
           std::next(it)->beginCycle <= it->endCycle) {
        it->endCycle =
            std::max(it->endCycle, std::next(it)->endCycle);
        out.erase(std::next(it));
    }
}

void
FaultTimeline::addThrottle(std::size_t acc, double begin_cycle,
                           double duration_cycles, double factor)
{
    checkAcc(acc);
    if (!std::isfinite(begin_cycle) || begin_cycle < 0.0)
        util::fatal("fault timeline: throttle begin must be finite "
                    "and non-negative");
    if (!std::isfinite(duration_cycles) || duration_cycles <= 0.0)
        util::fatal("fault timeline: throttle duration must be "
                    "finite and positive");
    if (!std::isfinite(factor) || factor <= 1.0)
        util::fatal("fault timeline: throttle factor must be finite "
                    "and > 1 (got ", factor, ")");

    std::vector<ThrottleWindow> &thr = perAcc[acc].throttles;
    ThrottleWindow w{begin_cycle, begin_cycle + duration_cycles,
                     factor};
    auto it = std::lower_bound(
        thr.begin(), thr.end(), w,
        [](const ThrottleWindow &a, const ThrottleWindow &b) {
            return a.beginCycle < b.beginCycle;
        });
    if (it != thr.end() && it->beginCycle < w.endCycle)
        util::fatal("fault timeline: overlapping throttle intervals "
                    "on sub-accelerator ", acc);
    if (it != thr.begin() && std::prev(it)->endCycle > w.beginCycle)
        util::fatal("fault timeline: overlapping throttle intervals "
                    "on sub-accelerator ", acc);
    thr.insert(it, w);
}

FaultTimeline
FaultTimeline::random(std::uint64_t seed, std::size_t n_sub_accs,
                      double horizon_cycles,
                      const RandomFaultOptions &opts)
{
    if (n_sub_accs == 0)
        util::fatal("fault timeline: random() needs >= 1 sub-acc");
    if (!std::isfinite(horizon_cycles) || horizon_cycles <= 0.0)
        util::fatal("fault timeline: random() horizon must be "
                    "finite and positive");

    FaultTimeline tl(n_sub_accs);
    std::uint64_t state = seed;
    // One sub-accelerator is always spared the permanent failure so
    // a random timeline degrades the chip, never bricks it.
    const std::size_t spared = nextU64(state) % n_sub_accs;

    for (std::size_t a = 0; a < n_sub_accs; ++a) {
        if (nextUnit(state) < opts.outageProb &&
            opts.maxOutagesPerAcc > 0) {
            const int n = 1 + static_cast<int>(
                                  nextU64(state) %
                                  static_cast<std::uint64_t>(
                                      opts.maxOutagesPerAcc));
            for (int i = 0; i < n; ++i) {
                double begin = nextUnit(state) * 0.85 *
                               horizon_cycles;
                double frac =
                    opts.minOutageFraction +
                    nextUnit(state) * (opts.maxOutageFraction -
                                       opts.minOutageFraction);
                tl.addOutage(a, begin, frac * horizon_cycles);
            }
        }
        if (nextUnit(state) < opts.throttleProb &&
            opts.maxThrottlesPerAcc > 0) {
            const int n = 1 + static_cast<int>(
                                  nextU64(state) %
                                  static_cast<std::uint64_t>(
                                      opts.maxThrottlesPerAcc));
            // Throttles are laid out left to right in disjoint
            // lanes: each picks a begin inside [prev_end, horizon).
            double lane = 0.0;
            for (int i = 0; i < n && lane < horizon_cycles; ++i) {
                double begin =
                    lane +
                    nextUnit(state) * (horizon_cycles - lane) * 0.7;
                double dur = (opts.minOutageFraction +
                              nextUnit(state) *
                                  (opts.maxOutageFraction -
                                   opts.minOutageFraction)) *
                             horizon_cycles;
                double factor =
                    opts.minThrottleFactor +
                    nextUnit(state) * (opts.maxThrottleFactor -
                                       opts.minThrottleFactor);
                tl.addThrottle(a, begin, dur, factor);
                lane = begin + dur;
            }
        }
        if (a != spared &&
            nextUnit(state) < opts.permanentFailureProb) {
            tl.addPermanentFailure(
                a, (0.3 + 0.6 * nextUnit(state)) * horizon_cycles);
        }
    }
    return tl;
}

bool
FaultTimeline::empty() const
{
    for (const SubAccFaults &f : perAcc) {
        if (f.permanentFailCycle < kNeverCycle ||
            !f.outages.empty() || !f.throttles.empty())
            return false;
    }
    return true;
}

double
FaultTimeline::permanentFailureCycle(std::size_t acc) const
{
    checkAcc(acc);
    return perAcc[acc].permanentFailCycle;
}

bool
FaultTimeline::availableAt(std::size_t acc, double cycle) const
{
    checkAcc(acc);
    const SubAccFaults &f = perAcc[acc];
    if (cycle >= f.permanentFailCycle)
        return false;
    for (const OutageWindow &w : f.outages) {
        if (w.beginCycle > cycle)
            break;
        if (cycle < w.endCycle)
            return false;
    }
    return true;
}

double
FaultTimeline::nextAvailable(std::size_t acc, double cycle) const
{
    checkAcc(acc);
    const SubAccFaults &f = perAcc[acc];
    double t = cycle;
    for (const OutageWindow &w : f.outages) {
        if (w.beginCycle > t)
            break;
        if (t < w.endCycle)
            t = w.endCycle; // windows are disjoint and sorted
    }
    return t >= f.permanentFailCycle ? kNeverCycle : t;
}

double
FaultTimeline::nextOnset(std::size_t acc, double cycle) const
{
    checkAcc(acc);
    const SubAccFaults &f = perAcc[acc];
    double onset = f.permanentFailCycle > cycle
                       ? f.permanentFailCycle
                       : kNeverCycle;
    for (const OutageWindow &w : f.outages) {
        if (w.beginCycle > cycle) {
            onset = std::min(onset, w.beginCycle);
            break;
        }
    }
    return onset;
}

double
FaultTimeline::throttleFactorAt(std::size_t acc, double cycle) const
{
    checkAcc(acc);
    for (const ThrottleWindow &w : perAcc[acc].throttles) {
        if (w.beginCycle > cycle)
            break;
        if (cycle < w.endCycle)
            return w.factor;
    }
    return 1.0;
}

bool
FaultTimeline::windowAvailable(std::size_t acc, double start,
                               double dur) const
{
    checkAcc(acc);
    const SubAccFaults &f = perAcc[acc];
    const double end = start + dur;
    if (end > f.permanentFailCycle + kEps)
        return false;
    if (start >= f.permanentFailCycle)
        return false; // zero-duration entry at/after the failure
    for (const OutageWindow &w : f.outages) {
        if (w.beginCycle >= end - kEps)
            break;
        if (w.endCycle > start + kEps)
            return false;
    }
    return true;
}

bool
FaultTimeline::windowUndisturbed(std::size_t acc, double start,
                                 double dur) const
{
    if (!windowAvailable(acc, start, dur))
        return false;
    const double end = start + dur;
    for (const ThrottleWindow &w : perAcc[acc].throttles) {
        if (w.beginCycle >= end - kEps)
            break;
        if (w.endCycle > start + kEps)
            return false;
    }
    return true;
}

double
FaultTimeline::throttleStretchCycles(std::size_t acc, double start,
                                     double dur) const
{
    checkAcc(acc);
    const double end = start + dur;
    double stretch = 0.0;
    for (const ThrottleWindow &w : perAcc[acc].throttles) {
        if (w.beginCycle >= end)
            break;
        double overlap = std::min(end, w.endCycle) -
                         std::max(start, w.beginCycle);
        if (overlap > 0.0)
            stretch += overlap * (w.factor - 1.0);
    }
    return stretch;
}

bool
FaultTimeline::isFaultOnset(std::size_t acc, double cycle) const
{
    checkAcc(acc);
    const SubAccFaults &f = perAcc[acc];
    if (std::abs(cycle - f.permanentFailCycle) <= kEps)
        return true;
    for (const OutageWindow &w : f.outages) {
        if (w.beginCycle > cycle + kEps)
            break;
        if (std::abs(cycle - w.beginCycle) <= kEps)
            return true;
    }
    return false;
}

const std::vector<OutageWindow> &
FaultTimeline::outages(std::size_t acc) const
{
    checkAcc(acc);
    return perAcc[acc].outages;
}

const std::vector<ThrottleWindow> &
FaultTimeline::throttles(std::size_t acc) const
{
    checkAcc(acc);
    return perAcc[acc].throttles;
}

std::string
FaultTimeline::describe() const
{
    std::ostringstream oss;
    for (std::size_t a = 0; a < perAcc.size(); ++a) {
        const SubAccFaults &f = perAcc[a];
        for (const OutageWindow &w : f.outages) {
            oss << "acc" << a << ": outage [" << w.beginCycle << ", "
                << w.endCycle << ")\n";
        }
        for (const ThrottleWindow &w : f.throttles) {
            oss << "acc" << a << ": throttle x" << w.factor << " ["
                << w.beginCycle << ", " << w.endCycle << ")\n";
        }
        if (f.permanentFailCycle < kNeverCycle) {
            oss << "acc" << a << ": permanent failure at "
                << f.permanentFailCycle << "\n";
        }
    }
    std::string s = oss.str();
    return s.empty() ? "(no faults)\n" : s;
}

SlaStats
faultObliviousSla(const Schedule &schedule,
                  const workload::Workload &wl,
                  const FaultTimeline &faults)
{
    SlaStats stats;
    stats.frames = wl.numInstances();
    if (stats.frames == 0)
        return stats;

    // Overlay the fault timeline on the fault-blind execution: a
    // layer touching an unavailable window dies (and takes the rest
    // of the frame's chain with it), a layer overlapping throttles
    // finishes late by the stretch. Completion is charged the sum of
    // the frame's stretches; cascading queueing behind stretched
    // layers is ignored, which flatters the oblivious runtime.
    std::vector<double> completion(wl.numInstances(), -1.0);
    std::vector<double> delay(wl.numInstances(), 0.0);
    std::vector<char> killed(wl.numInstances(), 0);
    for (const ScheduledLayer &e : schedule.entries()) {
        if (e.instanceIdx >= wl.numInstances())
            util::panic("faultObliviousSla: instance ",
                        e.instanceIdx, " out of range");
        completion[e.instanceIdx] =
            std::max(completion[e.instanceIdx], e.endCycle);
        if (!faults.windowAvailable(e.accIdx, e.startCycle,
                                    e.duration())) {
            killed[e.instanceIdx] = 1;
            ++stats.faultKilledLayers;
        } else {
            delay[e.instanceIdx] += faults.throttleStretchCycles(
                e.accIdx, e.startCycle, e.duration());
        }
    }

    std::vector<double> latencies;
    latencies.reserve(wl.numInstances());
    constexpr double eps = 1e-6;
    for (std::size_t i = 0; i < wl.numInstances(); ++i) {
        const workload::Instance &inst = wl.instances()[i];
        InstanceSla sla;
        sla.instanceIdx = i;
        sla.arrivalCycle = inst.arrivalCycle;
        sla.deadlineCycle = inst.deadlineCycle;
        sla.dropped = schedule.isDropped(i);
        sla.scheduled =
            !sla.dropped && !killed[i] && completion[i] >= 0.0;
        if (inst.hasDeadline())
            ++stats.framesWithDeadline;
        if (sla.dropped)
            ++stats.droppedFrames;
        if (sla.scheduled) {
            sla.completionCycle = completion[i] + delay[i];
            sla.latencyCycles =
                sla.completionCycle - inst.arrivalCycle;
            sla.missed = inst.hasDeadline() &&
                         sla.completionCycle >
                             inst.deadlineCycle + eps;
        } else {
            sla.completionCycle = workload::kNoDeadline;
            sla.latencyCycles = workload::kNoDeadline;
            sla.missed = inst.hasDeadline();
        }
        stats.maxLatencyCycles =
            std::max(stats.maxLatencyCycles, sla.latencyCycles);
        latencies.push_back(sla.latencyCycles);
        if (sla.missed)
            ++stats.deadlineMisses;
        stats.perInstance.push_back(sla);
    }
    if (stats.framesWithDeadline > 0) {
        stats.missRate = static_cast<double>(stats.deadlineMisses) /
                         static_cast<double>(stats.framesWithDeadline);
    }
    if (!latencies.empty()) {
        std::sort(latencies.begin(), latencies.end());
        auto rank = [&](double q) {
            std::size_t n = latencies.size();
            std::size_t r = static_cast<std::size_t>(
                std::ceil(q * static_cast<double>(n)));
            return latencies[std::min(n - 1, r > 0 ? r - 1 : 0)];
        };
        stats.p50LatencyCycles = rank(0.50);
        stats.p99LatencyCycles = rank(0.99);
    }
    return stats;
}

FaultTimeline
factoryFaultTimeline(std::size_t n_sub_accs, int failed_sub_accs,
                     double horizon_cycles)
{
    if (failed_sub_accs < 0 ||
        static_cast<std::size_t>(failed_sub_accs) >= n_sub_accs + 1)
        util::fatal("factoryFaultTimeline: cannot fail ",
                    failed_sub_accs, " of ", n_sub_accs,
                    " sub-accelerators");
    FaultTimeline tl(n_sub_accs);
    // Failures land mid-run, staggered: the k-th failure hits
    // sub-accelerator k at (0.3 + 0.25 k) of the horizon, so work is
    // already committed to each victim when it dies.
    for (int k = 0; k < failed_sub_accs; ++k) {
        tl.addPermanentFailure(static_cast<std::size_t>(k),
                               (0.3 + 0.25 * k) * horizon_cycles);
    }
    return tl;
}

} // namespace herald::sched
