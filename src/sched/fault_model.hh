/**
 * @file
 * Deterministic sub-accelerator fault injection (capacity loss at
 * runtime): per-sub-accelerator timelines of permanent failures,
 * transient outage windows and throttle intervals, consumed by the
 * dispatch loop (degraded-mode scheduling), Schedule::validate()
 * (fault-consistency checks) and the fault-oblivious SLA baseline.
 *
 * Semantics (online revelation): a fault becomes known to the
 * scheduler at its onset cycle. A layer is never *started* inside a
 * known outage or after a permanent failure (the planner defers past
 * the window or demotes to another sub-accelerator), but a layer
 * already in flight when an onset arrives is killed there — it
 * occupies its sub-accelerator up to the onset, performs zero useful
 * work (ScheduledLayer::faultKilled), and the victim frame's
 * remaining dependence chain re-enters selection. Throttle intervals
 * model thermal/power capping: a layer that starts inside one runs
 * at the window's factor (the factor is sampled at the layer's start
 * cycle and held for the layer — layers are atomic).
 *
 * Determinism contract: a FaultTimeline is pure data. Hand-built or
 * generated from a seeded RNG (random()), the same timeline yields
 * bit-identical schedules across reruns and prefill thread counts,
 * and an empty timeline leaves every schedule bit-identical to the
 * fault-free scheduler.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "sched/schedule.hh"
#include "workload/workload.hh"

namespace herald::sched
{

/** Cycle value meaning "never happens" / "no availability left". */
inline constexpr double kNeverCycle =
    std::numeric_limits<double>::infinity();

/** Transient unavailability: [beginCycle, endCycle) cannot execute. */
struct OutageWindow
{
    double beginCycle = 0.0;
    double endCycle = 0.0;
};

/** Effective cycle costs scale by @c factor inside the window. */
struct ThrottleWindow
{
    double beginCycle = 0.0;
    double endCycle = 0.0;
    double factor = 1.0; //!< > 1; sampled at a layer's start cycle
};

/** Knobs of FaultTimeline::random() (fractions are of the horizon). */
struct RandomFaultOptions
{
    double outageProb = 0.75; //!< per sub-acc: any outages at all
    int maxOutagesPerAcc = 2;
    double minOutageFraction = 0.02;
    double maxOutageFraction = 0.15;
    double throttleProb = 0.5; //!< per sub-acc: any throttles at all
    int maxThrottlesPerAcc = 2;
    double minThrottleFactor = 1.5;
    double maxThrottleFactor = 4.0;
    /**
     * Per sub-acc chance of a permanent failure in [0.3, 0.9) of the
     * horizon. One seed-chosen sub-accelerator is always exempt, so
     * a random timeline never kills the whole chip.
     */
    double permanentFailureProb = 0.25;
};

/** See file comment. */
class FaultTimeline
{
  public:
    /** An empty timeline for an unknown chip (matches any). */
    FaultTimeline() = default;

    /** A (still fault-free) timeline for @p n_sub_accs. */
    explicit FaultTimeline(std::size_t n_sub_accs)
        : perAcc(n_sub_accs)
    {
    }

    /** Sub-accelerator @p acc dies for good at @p cycle. */
    void addPermanentFailure(std::size_t acc, double cycle);

    /** Transient outage [begin, begin + duration) on @p acc. */
    void addOutage(std::size_t acc, double begin_cycle,
                   double duration_cycles);

    /**
     * Throttle interval on @p acc: layers starting inside it run
     * @p factor x slower. Overlapping throttles on one
     * sub-accelerator are rejected (the factor would be ambiguous).
     */
    void addThrottle(std::size_t acc, double begin_cycle,
                     double duration_cycles, double factor);

    /**
     * Seeded random timeline over [0, horizon). Bit-identical for
     * the same (seed, n_sub_accs, horizon, opts) on every platform:
     * the generator is a self-contained splitmix64 stream, not a
     * std:: distribution.
     */
    static FaultTimeline random(std::uint64_t seed,
                                std::size_t n_sub_accs,
                                double horizon_cycles,
                                const RandomFaultOptions &opts = {});

    /** True when no fault of any kind is recorded. */
    bool empty() const;

    std::size_t numSubAccs() const { return perAcc.size(); }

    /** kNeverCycle when @p acc never permanently fails. */
    double permanentFailureCycle(std::size_t acc) const;

    /** Whether @p acc can execute at @p cycle (half-open windows). */
    bool availableAt(std::size_t acc, double cycle) const;

    /**
     * Earliest cycle >= @p cycle at which @p acc can execute;
     * kNeverCycle once the permanent failure is reached.
     */
    double nextAvailable(std::size_t acc, double cycle) const;

    /**
     * Earliest fault onset (outage begin or permanent failure)
     * strictly after @p cycle; kNeverCycle if none. This is the
     * cycle at which a layer in flight on @p acc is killed.
     */
    double nextOnset(std::size_t acc, double cycle) const;

    /** Throttle factor in effect on @p acc at @p cycle (1 if none). */
    double throttleFactorAt(std::size_t acc, double cycle) const;

    /**
     * Whether [start, start + dur) avoids every outage and ends
     * before the permanent failure — i.e. a layer there would not
     * be killed.
     */
    bool windowAvailable(std::size_t acc, double start,
                         double dur) const;

    /** windowAvailable() and no throttle overlaps the window. */
    bool windowUndisturbed(std::size_t acc, double start,
                           double dur) const;

    /**
     * Extra cycles a @p dur -cycle execution over [start, start+dur)
     * would take under the overlapping throttle intervals:
     * sum(overlap x (factor - 1)). Used by the fault-oblivious
     * baseline (a lower bound — cascading queueing is ignored, which
     * judges the oblivious runtime charitably).
     */
    double throttleStretchCycles(std::size_t acc, double start,
                                 double dur) const;

    /**
     * Whether @p cycle coincides (within epsilon) with a kill onset
     * on @p acc — validate() requires every fault-killed entry to
     * end exactly at one.
     */
    bool isFaultOnset(std::size_t acc, double cycle) const;

    const std::vector<OutageWindow> &outages(std::size_t acc) const;
    const std::vector<ThrottleWindow> &
    throttles(std::size_t acc) const;

    /** One human-readable line per fault event. */
    std::string describe() const;

  private:
    struct SubAccFaults
    {
        double permanentFailCycle = kNeverCycle;
        std::vector<OutageWindow> outages;     //!< sorted, disjoint
        std::vector<ThrottleWindow> throttles; //!< sorted, disjoint
    };
    std::vector<SubAccFaults> perAcc;

    void checkAcc(std::size_t acc) const;
};

/**
 * SLA outcome of executing the *fault-blind* @p schedule on faulty
 * hardware with no rescheduling: a frame any of whose layers overlap
 * an unavailable window dies there (its chain never completes), and
 * layers overlapping throttle intervals finish late by the stretch,
 * delaying the frame's completion. This is the baseline the
 * fault-aware scheduler must strictly beat. faultKilledLayers counts
 * the disturbed layers; framesRescheduled is 0 by definition.
 */
SlaStats faultObliviousSla(const Schedule &schedule,
                           const workload::Workload &wl,
                           const FaultTimeline &faults);

/**
 * The capacity-loss companion of workload::faultedFactory(): the
 * first @p failed_sub_accs sub-accelerators (of @p n_sub_accs)
 * permanently fail, staggered through the middle of
 * [0, horizon_cycles) — early enough that plenty of frames are still
 * in flight, late enough that the fault-aware scheduler has
 * committed work to the doomed sub-accelerators.
 */
FaultTimeline factoryFaultTimeline(std::size_t n_sub_accs,
                                   int failed_sub_accs,
                                   double horizon_cycles);

} // namespace herald::sched

