#include "sched/greedy_scheduler.hh"

namespace herald::sched
{

namespace
{

SchedulerOptions
greedyOptions(Metric metric)
{
    SchedulerOptions opts;
    opts.metric = metric;
    opts.loadBalance = false;
    opts.postProcess = false;
    return opts;
}

} // namespace

GreedyScheduler::GreedyScheduler(cost::CostModel &model, Metric metric)
    : impl(model, greedyOptions(metric))
{
}

Schedule
GreedyScheduler::schedule(const workload::Workload &wl,
                          const accel::Accelerator &acc) const
{
    return impl.schedule(wl, acc);
}

} // namespace herald::sched
