/**
 * @file
 * The baseline greedy scheduler the paper compares Herald against
 * (Sec. V-B, "Efficacy of Scheduling Algorithm"): every layer goes to
 * the sub-accelerator with the least per-layer EDP, with no global
 * load balancing and no idle-time post-processing.
 */

#pragma once

#include "sched/herald_scheduler.hh"

namespace herald::sched
{

/** Locally-optimal (per-layer) baseline scheduler. */
class GreedyScheduler
{
  public:
    explicit GreedyScheduler(cost::CostModel &model,
                             Metric metric = Metric::Edp);

    /** Build a schedule for @p wl on @p acc. */
    Schedule schedule(const workload::Workload &wl,
                      const accel::Accelerator &acc) const;

  private:
    HeraldScheduler impl;
};

} // namespace herald::sched

