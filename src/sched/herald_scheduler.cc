#include "sched/herald_scheduler.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <numeric>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sched/layer_cost_table.hh"
#include "sched/memory_tracker.hh"
#include "util/logging.hh"

namespace herald::sched
{

namespace
{

constexpr double kEps = 1e-6;

} // namespace

const char *
toString(Ordering ordering)
{
    switch (ordering) {
      case Ordering::BreadthFirst:
        return "breadth-first";
      case Ordering::DepthFirst:
        return "depth-first";
    }
    util::panic("unknown Ordering");
}

const char *
toString(Preemption preemption)
{
    switch (preemption) {
      case Preemption::Off:
        return "run-to-completion";
      case Preemption::AtLayerBoundary:
        return "preempt-at-layer";
    }
    util::panic("unknown Preemption");
}

void
SchedulerOptions::validate() const
{
    // NaN poisons every ordered comparison downstream (all false),
    // so finiteness is checked explicitly, mirroring the workload
    // constructors.
    if (!(loadBalanceFactor >= 1.0))
        util::fatal("load-balancing factor must be >= 1, got ",
                    loadBalanceFactor);
    if (!(loadBalanceMaxDegradation >= 1.0))
        util::fatal("load-balancing max degradation must be >= 1, "
                    "got ",
                    loadBalanceMaxDegradation);
    if (lookaheadDepth < 0 || maxPostPasses < 0)
        util::fatal("negative post-processing parameter: lookahead ",
                    lookaheadDepth, ", max passes ", maxPostPasses);
    if (!std::isfinite(lstHysteresisCycles) ||
        lstHysteresisCycles < 0.0)
        util::fatal("LST hysteresis band must be finite and >= 0, "
                    "got ",
                    lstHysteresisCycles);
    // A hysteresis band with a policy that never consults it is a
    // contradiction, not a tuning choice: the caller believes grants
    // are sticky when selection ignores the band entirely.
    if (lstHysteresisCycles > 0.0 && effectivePolicy() != Policy::Lst)
        util::fatal("lstHysteresisCycles is an LST knob; policy is ",
                    toString(effectivePolicy()),
                    " — set policy = Policy::Lst or drop the band");
    if (!std::isfinite(contextChangeCycles) ||
        contextChangeCycles < 0.0)
        util::fatal("context-change penalty must be finite and >= 0, "
                    "got ",
                    contextChangeCycles);
    reconfig.validate();
}

HeraldScheduler::HeraldScheduler(cost::CostModel &model,
                                 SchedulerOptions options)
    : costModel(model), opts(options)
{
    opts.validate();
}

Schedule
HeraldScheduler::schedule(const workload::Workload &wl,
                          const accel::Accelerator &acc) const
{
    if (wl.numInstances() == 0)
        return Schedule(acc.numSubAccs());
    LayerCostTable table =
        LayerCostTable::build(costModel, wl, acc, opts.metric,
                              opts.rdaOverheads, opts.prefillThreads);
    return schedule(wl, acc, table);
}

Schedule
HeraldScheduler::schedule(const workload::Workload &wl,
                          const accel::Accelerator &acc,
                          const LayerCostTable &table) const
{
    const std::size_t n_inst = wl.numInstances();
    const std::size_t n_acc = acc.numSubAccs();
    Schedule schedule(n_acc);
    if (n_inst == 0)
        return schedule;

    const std::vector<workload::Instance> &instances = wl.instances();
    const std::size_t total_layers = wl.totalLayers();
    schedule.reserve(total_layers);
    const bool breadth = opts.ordering == Ordering::BreadthFirst;

    // Per-instance state, hoisted out of the loop once.
    std::vector<std::size_t> next_layer(n_inst, 0);
    std::vector<std::size_t> layers_of(n_inst);
    std::vector<std::size_t> row_base(n_inst); //!< table row of layer 0
    // A layer chain becomes ready at its instance's arrival, not at
    // cycle 0 — real-time scenarios stagger frames this way.
    std::vector<double> ready_time(n_inst);
    for (std::size_t i = 0; i < n_inst; ++i) {
        layers_of[i] = wl.modelOf(i).numLayers();
        row_base[i] = table.rowOf(wl.uniqueIdOfInstance(i), 0);
        ready_time[i] = instances[i].arrivalCycle;
    }

    std::size_t remaining = total_layers;

    const bool preempt =
        opts.preemption == Preemption::AtLayerBoundary;
    const bool doom_drop = opts.dropPolicy == DropPolicy::DoomedFrames;
    const bool hysteresis = opts.lstHysteresisCycles > 0.0 &&
                            opts.effectivePolicy() == Policy::Lst;

    // --- Fault-injection state (sched/fault_model.hh) ---
    // Every fault-aware branch below is gated on `faulty`, so an
    // empty timeline takes exactly the historical code path and
    // schedules stay bit-identical to the fault-free scheduler.
    const FaultTimeline &faults = opts.faults;
    const bool faulty = !faults.empty();
    if (faulty && faults.numSubAccs() != n_acc) {
        util::fatal("scheduler: fault timeline covers ",
                    faults.numSubAccs(),
                    " sub-accelerators, accelerator has ", n_acc);
    }

    // --- Elastic repartitioning state (sched/reconfig.hh) ---
    // Every reconfig-aware branch below is gated on `reconfig`, and
    // `active` stays pointing at the caller's pristine table until
    // the first migration, so Reconfig::Off takes exactly the
    // historical code path and schedules stay bit-identical to the
    // frozen-partition scheduler. After a migration `active` points
    // at a private copy with the donor/receiver columns re-prefilled
    // against the new epoch.
    const bool reconfig = opts.reconfig.enabled();
    const LayerCostTable *active = &table;
    std::unique_ptr<ReconfigPolicy> reconfig_policy;
    std::unique_ptr<LayerCostTable> epoch_table;
    std::optional<accel::Accelerator> epoch_acc;
    std::vector<std::uint64_t> pe_split;
    std::uint64_t next_epoch_id = 0;
    if (reconfig) {
        reconfig_policy = makeReconfigPolicy(opts.reconfig);
        pe_split.reserve(n_acc);
        for (const accel::SubAccelerator &sub : acc.subAccs())
            pe_split.push_back(sub.numPes);
        next_epoch_id = acc.partitionEpochId() + 1;
    }

    // Degraded-capacity view for the drop-policy feasibility proofs:
    // the pristine table's optimistic remaining work assumes the
    // best sub-accelerator is alive. Columns dead *from cycle 0* are
    // masked for the admission pre-pass (sound for every arrival);
    // mid-run failures are folded in by refresh_degraded() below as
    // the availability floor passes their onsets.
    std::unique_ptr<LayerCostTable::DegradedView> degraded;
    std::vector<char> dead_mask;
    std::vector<std::pair<double, std::size_t>> perm_fail; // sorted
    std::size_t next_fail = 0;
    if (faulty && opts.dropPolicy != DropPolicy::None) {
        degraded =
            std::make_unique<LayerCostTable::DegradedView>(table);
        dead_mask.assign(n_acc, 0);
        bool dead_at_zero = false;
        for (std::size_t a = 0; a < n_acc; ++a) {
            const double fail = faults.permanentFailureCycle(a);
            if (fail <= 0.0) {
                dead_mask[a] = 1;
                dead_at_zero = true;
            } else if (std::isfinite(fail)) {
                perm_fail.emplace_back(fail, a);
            }
        }
        if (dead_at_zero)
            degraded->rebuild(dead_mask);
        std::sort(perm_fail.begin(), perm_fail.end());
    }
    auto rem_cycles = [&](std::size_t u, std::size_t layer) {
        return degraded ? degraded->remainingCycles(u, layer)
                        : active->remainingCycles(u, layer);
    };

    // Over-subscription admission control: a frame whose deadline
    // cannot be met even by running every layer back to back on its
    // best sub-accelerator starting at arrival is provably hopeless
    // under *any* schedule (starts cannot precede the arrival, the
    // layer chain is serial, and each layer needs at least its
    // best-case cycles) — shed it up front instead of letting it
    // steal cycles from frames that can still make their deadlines.
    // DoomedFrames runs the same proof at arrival and re-runs a
    // schedule-state-aware variant at every dispatch decision below.
    if (opts.dropPolicy != DropPolicy::None) {
        for (std::size_t i = 0; i < n_inst; ++i) {
            const workload::Instance &inst = instances[i];
            if (!inst.hasDeadline())
                continue;
            double optimistic =
                rem_cycles(wl.uniqueIdOfInstance(i), 0);
            if (inst.deadlineCycle - inst.arrivalCycle - optimistic <
                -kEps) {
                schedule.markDropped(i);
                remaining -= layers_of[i];
                layers_of[i] = 0; // pending() is now always false
            }
        }
    }

    const std::unique_ptr<SelectionPolicy> policy =
        makeSelectionPolicy(opts.effectivePolicy(), wl, table,
                            next_layer);

    std::vector<double> acc_avail(n_acc, 0.0);
    std::vector<std::size_t> acc_last_instance(n_acc, SIZE_MAX);
    MemoryTracker memory(acc.globalBufferBytes());
    memory.reserve(total_layers);

    // --- Dynamic doomed-frame state (DropPolicy::DoomedFrames) ---
    // Live deadline frames sit in a (deadline - remaining, idx)
    // ordered set. deadline - remaining < now is exactly
    // now + remaining > deadline, so as the "now" floor (the
    // earliest any sub-accelerator frees up) advances monotonically,
    // doomed frames surface at the front of the set and are shed in
    // amortized O(log n) — no per-layer scan over all live frames.
    // A frame whose own ready time (dependence chain) outruns the
    // shared floor is re-tested individually right after it is
    // scheduled, the only moment its ready time changes.
    std::vector<std::size_t> uid;
    std::set<std::pair<double, std::size_t>> doom_set;
    std::vector<double> doom_key;
    std::vector<char> in_doom;
    if (doom_drop) {
        uid.resize(n_inst);
        for (std::size_t i = 0; i < n_inst; ++i)
            uid[i] = wl.uniqueIdOfInstance(i);
        doom_key.assign(n_inst, 0.0);
        in_doom.assign(n_inst, 0);
    }
    auto min_avail = [&]() {
        if (!faulty) {
            double lo = acc_avail[0];
            for (std::size_t a = 1; a < n_acc; ++a)
                lo = std::min(lo, acc_avail[a]);
            return lo;
        }
        // Degraded floor: the earliest cycle any *usable* capacity
        // frees up. A dead sub-accelerator's frozen frontier must
        // not hold the floor down forever — project each frontier
        // through the fault timeline (kNeverCycle once the
        // sub-accelerator has permanently failed; +inf overall means
        // no capacity is left at all, dooming every deadline frame).
        double lo = kNeverCycle;
        for (std::size_t a = 0; a < n_acc; ++a)
            lo = std::min(lo, faults.nextAvailable(a, acc_avail[a]));
        return lo;
    };

    // --- Event-driven instance release ---
    // The release clock (release_frontier) is the latest committed
    // end cycle; an instance competes for dispatch only once its
    // arrival is inside the committed horizon. Instead of re-testing
    // every instance per scheduled layer, instances sit in an
    // arrival-sorted vector swept by a cursor: each is released
    // exactly once, into an ordered ready set the selection rules
    // read in O(log n).
    std::vector<std::size_t> arrival_sorted(n_inst);
    std::iota(arrival_sorted.begin(), arrival_sorted.end(), 0);
    std::sort(arrival_sorted.begin(), arrival_sorted.end(),
              [&](std::size_t a, std::size_t b) {
                  if (instances[a].arrivalCycle !=
                      instances[b].arrivalCycle)
                      return instances[a].arrivalCycle <
                             instances[b].arrivalCycle;
                  return a < b;
              });
    std::size_t cursor = 0;
    std::size_t rotate = 0; // breadth-first round-robin cursor
    std::size_t grant = SIZE_MAX; // hysteresis grant holder
    double release_frontier = 0.0;

    auto pending = [&](std::size_t idx) {
        return next_layer[idx] < layers_of[idx];
    };

    // Shed a live frame mid-schedule: committed layers stay on the
    // timeline (the cycles were really spent), the rest are
    // cancelled, and the frame is recorded as dropped (and therefore
    // missed). Called under DropPolicy::DoomedFrames, and — under
    // any drop policy — when a fault timeline leaves a frame with no
    // usable sub-accelerator at all (graceful degradation: the
    // alternative is a dispatch loop that can never terminate).
    auto drop_live = [&](std::size_t idx) {
        schedule.markDropped(idx);
        remaining -= layers_of[idx] - next_layer[idx];
        layers_of[idx] = next_layer[idx]; // pending() now false
        policy->retire(idx);
        if (doom_drop && in_doom[idx]) {
            doom_set.erase(std::make_pair(doom_key[idx], idx));
            in_doom[idx] = 0;
        }
    };
    // Provably-doomed test against the evolving schedule: the next
    // remaining layer cannot start before max(dependence-chain ready
    // time, earliest sub-accelerator availability), and the chain
    // needs at least its optimistic suffix — if even that lower
    // bound overshoots the deadline, no continuation can save the
    // frame. Under faults the suffix comes from the degraded view
    // (dead columns masked once the floor passes their onsets),
    // which is sound: the mask only ever contains sub-accelerators
    // already unusable at every cycle >= the frame's "now".
    auto doomed_now = [&](std::size_t idx, double now_floor) {
        const workload::Instance &ri = instances[idx];
        if (!ri.hasDeadline())
            return false;
        double now = std::max(ready_time[idx], now_floor);
        double rem = rem_cycles(uid[idx], next_layer[idx]);
        return now + rem > ri.deadlineCycle + kEps;
    };
    // Fold permanent failures whose onset the availability floor has
    // passed into the degraded view, re-keying the doom set against
    // the shrunk capacity (a frame's remaining-work bound can only
    // grow, so re-proofs may newly doom it).
    auto refresh_degraded = [&](double floor) {
        bool changed = false;
        while (next_fail < perm_fail.size() &&
               perm_fail[next_fail].first <= floor + kEps) {
            dead_mask[perm_fail[next_fail].second] = 1;
            ++next_fail;
            changed = true;
        }
        if (!changed)
            return;
        degraded->rebuild(dead_mask);
        if (!doom_drop)
            return;
        std::set<std::pair<double, std::size_t>> rekeyed;
        for (const auto &entry : doom_set) {
            const std::size_t idx = entry.second;
            doom_key[idx] = instances[idx].deadlineCycle -
                            rem_cycles(uid[idx], next_layer[idx]);
            rekeyed.emplace(doom_key[idx], idx);
        }
        doom_set.swap(rekeyed);
    };

    // Released instances with pending layers live in the policy's
    // (key, index)-ordered ready set; selection is the policy's
    // ordered-set lookup with the base order breaking ties —
    // identical outcomes to the reference scan for FIFO/EDF. Under
    // DoomedFrames a frame is doom-tested the moment it is released
    // (its arrival may already be inside a backlog) and tracked in
    // the doom set afterwards.
    auto release_inst = [&](std::size_t idx) {
        if (!pending(idx))
            return;
        policy->release(idx);
        if (!doom_drop || !instances[idx].hasDeadline())
            return;
        if (doomed_now(idx, min_avail())) {
            drop_live(idx);
            return;
        }
        doom_key[idx] = instances[idx].deadlineCycle -
                        rem_cycles(uid[idx], next_layer[idx]);
        doom_set.emplace(doom_key[idx], idx);
        in_doom[idx] = 1;
    };
    auto release_up_to = [&](double frontier) {
        while (cursor < n_inst) {
            std::size_t idx = arrival_sorted[cursor];
            if (instances[idx].arrivalCycle > frontier + kEps)
                break;
            ++cursor;
            release_inst(idx);
        }
    };
    // Preemptive release: everything arriving strictly before the
    // tentatively planned commit's end joins the ready set now —
    // called only when at least one such arrival is strictly more
    // urgent than the planned instance, so FIFO (constant key) and
    // deadline-free frames never trigger it.
    auto release_window = [&](double end) {
        while (cursor < n_inst) {
            std::size_t idx = arrival_sorted[cursor];
            if (instances[idx].arrivalCycle >= end - kEps)
                break;
            ++cursor;
            release_inst(idx);
        }
    };

    // Nothing-has-arrived fallback, slow path: the reference
    // implementation's epsilon-tolerant scan over the pending
    // futures in base order. Only taken when arrivals are distinct
    // yet closer than kEps — floating-point pathology, not a real
    // schedule shape — so the index-ordered view is built on demand
    // instead of being maintained across the whole run.
    auto scan_future_base_order = [&]() -> std::size_t {
        std::vector<std::size_t> pending_future;
        pending_future.reserve(n_inst - cursor);
        for (std::size_t j = cursor; j < n_inst; ++j) {
            if (pending(arrival_sorted[j]))
                pending_future.push_back(arrival_sorted[j]);
        }
        std::sort(pending_future.begin(), pending_future.end());

        std::size_t inst = SIZE_MAX;
        double best_arrival = workload::kNoDeadline;
        double best_key = workload::kNoDeadline;
        auto consider = [&](std::size_t cand) {
            const workload::Instance &ci = instances[cand];
            double key = policy->keyOf(cand);
            bool better =
                inst == SIZE_MAX ||
                ci.arrivalCycle < best_arrival - kEps ||
                (std::abs(ci.arrivalCycle - best_arrival) <= kEps &&
                 key < best_key);
            if (better) {
                inst = cand;
                best_arrival = ci.arrivalCycle;
                best_key = key;
            }
        };
        auto split = std::lower_bound(pending_future.begin(),
                                      pending_future.end(),
                                      breadth ? rotate : 0);
        for (auto it = split; it != pending_future.end(); ++it)
            consider(*it);
        for (auto it = pending_future.begin(); it != split; ++it)
            consider(*it);
        return inst;
    };

    // Nothing-has-arrived fallback: dispatch the nearest future
    // arrival (EDF breaks equal-arrival ties when enabled). The
    // arrival-sorted cursor hands us the earliest band directly;
    // exact-equal arrivals (periodic streams share harmonics) keep
    // the closed-form winner, and only sub-epsilon near-ties fall
    // back to the reference scan.
    auto select_future = [&]() -> std::size_t {
        std::size_t scan = cursor;
        while (scan < n_inst && !pending(arrival_sorted[scan]))
            ++scan;
        if (scan == n_inst)
            return SIZE_MAX;
        const double m = instances[arrival_sorted[scan]].arrivalCycle;
        std::vector<std::size_t> run; // exact-equal band, idx order
        bool near_tie = false;
        for (std::size_t j = scan; j < n_inst; ++j) {
            std::size_t idx = arrival_sorted[j];
            if (!pending(idx))
                continue;
            double a = instances[idx].arrivalCycle;
            if (a == m) {
                run.push_back(idx);
                continue;
            }
            near_tie = a <= m + kEps;
            break;
        }
        if (near_tie)
            return scan_future_base_order();
        // Rotated visit order over the ascending run; the policy
        // keeps the lowest key (pure base order for FIFO).
        std::size_t start_pos = 0;
        if (breadth) {
            start_pos = static_cast<std::size_t>(
                std::lower_bound(run.begin(), run.end(), rotate) -
                run.begin());
            if (start_pos == run.size())
                start_pos = 0;
        }
        return policy->selectFromRun(run, start_pos);
    };

    // --- Tentative layer plan ---
    // Everything the commit needs, computed without mutating any
    // state: preemption points re-plan after releasing an urgent
    // arrival, and only the finally selected plan is committed.
    struct Plan
    {
        std::size_t acc = 0;
        double start = 0.0;
        double dur = 0.0; //!< includes the context penalty
        double contextPenalty = 0.0;
        /** False: no usable sub-accelerator from this frame's ready
         *  time — every candidate placement lands past a permanent
         *  failure. The frame cannot make progress and is shed. */
        bool feasible = true;
        /** Next fault onset strictly after start (kNeverCycle when
         *  none): a commit whose duration crosses it becomes a
         *  fault-killed partial execution ending exactly there. */
        double killAt = kNeverCycle;
    };
    // Fault-aware placement on one sub-accelerator: the earliest
    // start at or after `earliest` that is outside every known
    // outage, before the sub-accelerator's permanent failure, and
    // memory-feasible. The throttle factor is sampled at the start
    // and held for the whole layer (layers are atomic). Termination:
    // each round either returns or strictly advances `s` to a memory
    // event boundary past an availability point — both finite sets.
    auto place_on = [&](std::size_t a, double earliest,
                        double base_cycles, double penalty,
                        double bytes, Plan &out) {
        double s = earliest;
        for (;;) {
            const double avail = faults.nextAvailable(a, s);
            if (!std::isfinite(avail))
                return false; // dead from here on
            const double dur =
                base_cycles * faults.throttleFactorAt(a, avail) +
                penalty;
            const double fit =
                memory.firstFeasible(avail, dur, bytes);
            if (fit == avail) {
                out.start = fit;
                out.dur = dur;
                out.killAt = faults.nextOnset(a, fit);
                return true;
            }
            s = fit;
        }
    };
    auto plan_layer = [&](std::size_t inst) -> Plan {
        const std::size_t row = row_base[inst] + next_layer[inst];
        const std::size_t *order = active->order(row);

        if (faulty) {
            // Degraded-mode candidate selection: only
            // sub-accelerators with a finite availability point from
            // this frame's earliest start compete; the preference
            // order (metric order, demoted by the same
            // load-balancing feedback) is otherwise unchanged. When
            // placement on the chosen candidate pushes past its
            // permanent failure, demote through the remaining usable
            // candidates; when every candidate fails, the frame can
            // never progress (plan.feasible = false).
            Plan plan;
            const double base_ready = ready_time[inst];
            auto usable = [&](std::size_t a) {
                return std::isfinite(faults.nextAvailable(
                    a, std::max(base_ready, acc_avail[a])));
            };
            std::size_t chosen = SIZE_MAX;
            for (std::size_t k = 0; k < n_acc; ++k) {
                if (usable(order[k])) {
                    chosen = order[k];
                    break;
                }
            }
            if (chosen == SIZE_MAX) {
                plan.feasible = false;
                return plan;
            }
            if (opts.loadBalance && n_acc > 1) {
                const double best_metric =
                    active->metric(row, chosen);
                for (std::size_t k = 0; k < n_acc; ++k) {
                    std::size_t a = order[k];
                    if (!usable(a))
                        continue;
                    if (active->metric(row, a) >
                        best_metric * opts.loadBalanceMaxDegradation)
                        break; // remaining candidates worse still
                    double start =
                        std::max(base_ready, acc_avail[a]);
                    double frontier =
                        start + active->cost(row, a).cost.cycles;
                    double max_f = frontier;
                    double min_f = frontier;
                    for (std::size_t b = 0; b < n_acc; ++b) {
                        if (b == a)
                            continue;
                        max_f = std::max(max_f, acc_avail[b]);
                        min_f = std::min(min_f, acc_avail[b]);
                    }
                    if (min_f > 0.0 &&
                        max_f <= opts.loadBalanceFactor * min_f) {
                        chosen = a;
                        break;
                    }
                }
            }
            auto try_acc = [&](std::size_t a) {
                const accel::StyledLayerCost &sc =
                    active->cost(row, a);
                Plan p;
                p.acc = a;
                if (opts.contextChangeCycles > 0.0 &&
                    acc_last_instance[a] != SIZE_MAX &&
                    acc_last_instance[a] != inst)
                    p.contextPenalty = opts.contextChangeCycles;
                if (!place_on(a,
                              std::max(base_ready, acc_avail[a]),
                              sc.cost.cycles, p.contextPenalty,
                              static_cast<double>(
                                  sc.cost.l2FootprintBytes),
                              p))
                    return false;
                plan = p;
                return true;
            };
            if (try_acc(chosen))
                return plan;
            for (std::size_t k = 0; k < n_acc; ++k) {
                std::size_t a = order[k];
                if (a == chosen || !usable(a))
                    continue;
                if (try_acc(a))
                    return plan;
            }
            plan.feasible = false;
            return plan;
        }

        // Load-balancing feedback: demote overloading choices.
        std::size_t chosen = order[0];
        if (opts.loadBalance && n_acc > 1) {
            const double best_metric = active->metric(row, order[0]);
            for (std::size_t k = 0; k < n_acc; ++k) {
                std::size_t a = order[k];
                if (active->metric(row, a) >
                    best_metric * opts.loadBalanceMaxDegradation) {
                    break; // remaining candidates are worse still
                }
                double start =
                    std::max(ready_time[inst], acc_avail[a]);
                double frontier =
                    start + active->cost(row, a).cost.cycles;
                double max_f = frontier;
                double min_f = frontier;
                for (std::size_t b = 0; b < n_acc; ++b) {
                    if (b == a)
                        continue;
                    max_f = std::max(max_f, acc_avail[b]);
                    min_f = std::min(min_f, acc_avail[b]);
                }
                if (min_f > 0.0 &&
                    max_f <= opts.loadBalanceFactor * min_f) {
                    chosen = a;
                    break;
                }
            }
        }

        // Dependence + memory constrained start time.
        Plan plan;
        plan.acc = chosen;
        const accel::StyledLayerCost &sc = active->cost(row, chosen);
        plan.dur = sc.cost.cycles;
        if (opts.contextChangeCycles > 0.0 &&
            acc_last_instance[chosen] != SIZE_MAX &&
            acc_last_instance[chosen] != inst) {
            plan.contextPenalty = opts.contextChangeCycles;
            plan.dur += plan.contextPenalty;
        }
        double start =
            std::max(ready_time[inst], acc_avail[chosen]);
        plan.start = memory.firstFeasible(
            start, plan.dur,
            static_cast<double>(sc.cost.l2FootprintBytes));
        return plan;
    };

    auto select_instance = [&]() {
        std::size_t inst = policy->selectReady(
            breadth, rotate, hysteresis ? grant : SIZE_MAX,
            opts.lstHysteresisCycles);
        if (inst == SIZE_MAX)
            inst = select_future();
        if (inst == SIZE_MAX)
            util::panic("scheduler: no instance with pending layers");
        return inst;
    };

    // --- Elastic repartitioning hook (sched/reconfig.hh) ---
    // Evaluated exactly once after every committed layer (the same
    // cadence as the preemption point), so migrations are separated
    // by at least one unit of real progress — the total number of
    // migrations is bounded by the total layer count and the loop
    // cannot livelock on back-to-back reconfigurations. The decision
    // reads only committed state (the sub-accelerator frontiers and
    // the PE split), which keeps offline and online dispatch in
    // lockstep: both evaluate the hook against the identical
    // committed-layer sequence.
    auto maybe_reconfigure = [&]() {
        const ReconfigDecision d =
            reconfig_policy->evaluate(acc_avail, pe_split);
        if (!d.migrate)
            return;
        const accel::Accelerator &cur = epoch_acc ? *epoch_acc : acc;
        const accel::PartitionEpoch epoch =
            planMigrationEpoch(cur, d, next_epoch_id++);
        // The migration is a short planned outage on donor and
        // receiver: both drain to their committed frontiers, then
        // rewire for the modeled penalty.
        const double window_start =
            std::max(acc_avail[d.donor], acc_avail[d.receiver]);
        const double window_end =
            window_start + opts.reconfig.penaltyCycles(d.movedPes);
        epoch_acc = cur.withPartition(epoch);
        pe_split = epoch.peSplit;

        // Swap in the new epoch's costs: only the donor and receiver
        // columns are re-prefilled; every other column is reused
        // verbatim from the previous epoch.
        if (!epoch_table)
            epoch_table = std::make_unique<LayerCostTable>(table);
        epoch_table->rebuildColumns(
            costModel, wl, *epoch_acc, opts.metric, opts.rdaOverheads,
            {std::min(d.donor, d.receiver),
             std::max(d.donor, d.receiver)},
            opts.prefillThreads);
        active = epoch_table.get();

        // The feasibility proofs (degraded view, doom keys) read
        // remaining-work bounds off the active table — rebuild them
        // against the new epoch so drop/doom decisions stay sound.
        if (degraded) {
            degraded = std::make_unique<LayerCostTable::DegradedView>(
                *active);
            bool any_dead = false;
            for (char dm : dead_mask)
                any_dead = any_dead || dm != 0;
            if (any_dead)
                degraded->rebuild(dead_mask);
        }
        if (doom_drop) {
            std::set<std::pair<double, std::size_t>> rekeyed;
            for (const auto &entry : doom_set) {
                const std::size_t idx = entry.second;
                doom_key[idx] = instances[idx].deadlineCycle -
                                rem_cycles(uid[idx], next_layer[idx]);
                rekeyed.emplace(doom_key[idx], idx);
            }
            doom_set.swap(rekeyed);
        }

        acc_avail[d.donor] = window_end;
        acc_avail[d.receiver] = window_end;
        release_frontier = std::max(release_frontier, window_end);

        ReconfigEvent ev;
        ev.epochId = epoch.epochId;
        ev.donor = d.donor;
        ev.receiver = d.receiver;
        ev.movedPes = d.movedPes;
        ev.startCycle = window_start;
        ev.endCycle = window_end;
        ev.peSplit = epoch.peSplit;
        schedule.addReconfig(ev);
        reconfig_policy->onMigration(window_end);
        release_up_to(release_frontier);
    };

    release_up_to(release_frontier);

    while (remaining > 0) {
        // --- Layer ordering heuristic: pick the next instance ---
        std::size_t inst = select_instance();
        Plan plan = plan_layer(inst);

        // --- Preemption point (Preemption::AtLayerBoundary) ---
        // Before committing, check whether the planned layer would
        // span the arrival of a strictly more urgent frame (smaller
        // policy key; the hysteresis band protects the grant holder
        // here too). If so, release everything arriving inside the
        // planned window and re-run selection — the urgent frame can
        // claim the sub-accelerator at its arrival (inserted idle)
        // instead of queueing behind a commit that had not actually
        // happened yet. Each round releases at least one instance,
        // so the loop terminates.
        if (preempt) {
            bool exhausted = false;
            for (;;) {
                // A frame with no usable sub-accelerator left can
                // never progress — shed it (graceful degradation,
                // any drop policy) and re-select.
                if (faulty && !plan.feasible) {
                    drop_live(inst);
                    if (remaining == 0) {
                        exhausted = true;
                        break;
                    }
                    inst = select_instance();
                    plan = plan_layer(inst);
                    continue;
                }
                // The layer actually ends at the fault onset when it
                // will be killed, so that is the window urgent
                // arrivals are tested against.
                const double end =
                    std::min(plan.start + plan.dur, plan.killAt);
                double threshold = policy->keyOf(inst);
                if (hysteresis && inst == grant)
                    threshold -= opts.lstHysteresisCycles;
                bool urgent = false;
                for (std::size_t j = cursor; j < n_inst; ++j) {
                    std::size_t idx = arrival_sorted[j];
                    if (instances[idx].arrivalCycle >= end - kEps)
                        break;
                    if (pending(idx) &&
                        policy->keyOf(idx) < threshold) {
                        urgent = true;
                        break;
                    }
                }
                if (!urgent)
                    break;
                release_window(end);
                // Under DoomedFrames a release can shed frames.
                // Today a preemptively released frame can never be
                // shed here (its arrival exceeds the committed
                // frontier, so the release-time doom test reduces to
                // the static proof it already passed), but that
                // rests on a three-way invariant (cursor
                // monotonicity, min availability <= frontier, the
                // static pre-pass); guard against it breaking — with
                // nothing left to schedule, select_instance() would
                // panic and the commit below must not run.
                if (remaining == 0) {
                    exhausted = true;
                    break;
                }
                inst = select_instance();
                plan = plan_layer(inst);
            }
            if (exhausted)
                break;
        } else if (faulty && !plan.feasible) {
            drop_live(inst); // graceful degradation, any drop policy
            continue;
        }

        const std::size_t layer_idx = next_layer[inst];
        const std::size_t row = row_base[inst] + layer_idx;
        const accel::StyledLayerCost &sc =
            active->cost(row, plan.acc);
        // A plan whose duration crosses the next fault onset is
        // committed as a fault-killed partial execution: it occupies
        // the sub-accelerator (and buffer) up to the onset exactly,
        // performs zero useful work, and the frame's chain retries
        // from the onset. The non-faulty path books plan.dur
        // verbatim — bit-identical to the fault-free scheduler.
        const bool killed =
            faulty && plan.killAt < plan.start + plan.dur - kEps;
        memory.add(plan.start,
                   killed ? plan.killAt - plan.start : plan.dur,
                   static_cast<double>(sc.cost.l2FootprintBytes));

        ScheduledLayer entry;
        entry.instanceIdx = inst;
        entry.layerIdx = layer_idx;
        entry.accIdx = plan.acc;
        entry.style = sc.style;
        entry.startCycle = plan.start;
        entry.endCycle =
            killed ? plan.killAt : plan.start + plan.dur;
        entry.energyUnits = sc.cost.energyUnits;
        if (killed) {
            // Energy really spent before the fault hit.
            entry.energyUnits *=
                (plan.killAt - plan.start) / plan.dur;
        }
        entry.l2FootprintBytes = sc.cost.l2FootprintBytes;
        entry.contextPenaltyCycles = plan.contextPenalty;
        entry.faultKilled = killed;
        schedule.add(entry);

        ready_time[inst] = entry.endCycle;
        acc_avail[plan.acc] = entry.endCycle;
        release_frontier =
            std::max(release_frontier, entry.endCycle);
        acc_last_instance[plan.acc] = inst;
        if (!killed) {
            ++next_layer[inst];
            --remaining;
        }
        rotate = (inst + 1) % n_inst;
        grant = inst;

        if (pending(inst)) {
            // Progress may change the policy's key (LST slack). A
            // kill makes no progress, so the key is unchanged.
            if (!killed)
                policy->onLayerScheduled(inst);
            if (doom_drop && in_doom[inst]) {
                // Progress also moved the frame's ready time and
                // shrank its remaining work: re-test it directly
                // (the shared floor sweep below cannot see a ready
                // time that outruns the floor), else re-key its
                // doom-set entry. A kill advances the ready time
                // without shrinking the work — the re-test still
                // applies, the re-key would be a no-op.
                if (doomed_now(inst, min_avail())) {
                    drop_live(inst);
                } else if (!killed) {
                    doom_set.erase(
                        std::make_pair(doom_key[inst], inst));
                    doom_key[inst] =
                        instances[inst].deadlineCycle -
                        rem_cycles(uid[inst], next_layer[inst]);
                    doom_set.emplace(doom_key[inst], inst);
                }
            }
        } else {
            // Exhausted: drop it from the ready set. (A one-layer
            // model exhausted by the fallback before its release was
            // never inserted — retire() is a no-op then, and
            // pending() checks keep the release sweep and fallback
            // scans from resurrecting it.)
            policy->retire(inst);
            if (doom_drop && in_doom[inst]) {
                doom_set.erase(std::make_pair(doom_key[inst], inst));
                in_doom[inst] = 0;
            }
        }
        release_up_to(release_frontier);

        // --- Doomed-frame sweep ---
        // The floor (earliest any sub-accelerator frees up) only
        // ever advances; every live frame whose (deadline -
        // remaining) key fell behind it can no longer finish in
        // time under any continuation — shed them now rather than
        // letting them burn cycles the still-savable frames need.
        if (doom_drop) {
            const double floor = min_avail();
            if (degraded)
                refresh_degraded(floor);
            while (!doom_set.empty() &&
                   doom_set.begin()->first < floor - kEps) {
                drop_live(doom_set.begin()->second);
            }
        }

        // Elastic repartitioning: one policy evaluation per
        // committed layer (see maybe_reconfigure above). Skipped
        // once the workload is exhausted — an outage with nothing
        // left to run would only stretch the makespan.
        if (reconfig && remaining > 0)
            maybe_reconfigure();
    }

    if (opts.postProcess)
        postProcessIdleTime(schedule, wl, acc);
    return schedule;
}

namespace
{

/** Flat key for an (instance, layer) pair; both fit in 32 bits. */
std::uint64_t
depKey(std::size_t instance_idx, std::size_t layer_idx)
{
    return (static_cast<std::uint64_t>(instance_idx) << 32) |
           static_cast<std::uint64_t>(layer_idx & 0xffffffffULL);
}

/**
 * Entry index of (instance, layer) pairs for dependence lookups.
 * Fault-killed entries are skipped: a killed (instance, layer) pair
 * reappears as a later re-execution, and only the execution that
 * completed the work is a dependence anchor.
 */
std::unordered_map<std::uint64_t, std::size_t>
buildDependenceIndex(const std::vector<ScheduledLayer> &entries)
{
    std::unordered_map<std::uint64_t, std::size_t> index;
    index.reserve(entries.size());
    for (std::size_t i = 0; i < entries.size(); ++i) {
        if (entries[i].faultKilled)
            continue;
        index[depKey(entries[i].instanceIdx, entries[i].layerIdx)] = i;
    }
    return index;
}

/** Rebuild a memory tracker mirroring the schedule's intervals. */
MemoryTracker
buildTracker(const std::vector<ScheduledLayer> &entries,
             std::uint64_t capacity)
{
    MemoryTracker tracker(capacity);
    tracker.reserve(entries.size());
    for (const ScheduledLayer &e : entries) {
        tracker.add(e.startCycle, e.duration(),
                    static_cast<double>(e.l2FootprintBytes));
    }
    return tracker;
}

} // namespace

void
HeraldScheduler::postProcessIdleTime(Schedule &schedule,
                                     const workload::Workload &wl,
                                     const accel::Accelerator &acc)
    const
{
    std::vector<ScheduledLayer> &entries = schedule.mutableEntries();
    if (entries.empty())
        return;
    auto dep_index = buildDependenceIndex(entries);

    // Fault pinning: idle-time elimination must not rewrite fault
    // history. Pinned (never moved): killed entries (their end is
    // the fault onset), every entry of an instance that suffered a
    // kill (a re-execution pulled ahead of its kill would reorder
    // cause and effect), and entries whose committed window overlaps
    // an outage/throttle (their durations embed fault effects that
    // do not transfer to another window). Unpinned entries only ever
    // move into fully undisturbed windows.
    const FaultTimeline &faults = opts.faults;
    const bool faulty = !faults.empty();
    std::vector<char> pinned;
    if (faulty) {
        pinned.assign(entries.size(), 0);
        std::vector<char> victim(wl.numInstances(), 0);
        for (const ScheduledLayer &e : entries) {
            if (e.faultKilled)
                victim[e.instanceIdx] = 1;
        }
        for (std::size_t i = 0; i < entries.size(); ++i) {
            const ScheduledLayer &e = entries[i];
            if (e.faultKilled || victim[e.instanceIdx] ||
                !faults.windowUndisturbed(e.accIdx, e.startCycle,
                                          e.duration()))
                pinned[i] = 1;
        }
    }
    // Reconfiguration windows pin like outages: the donor and
    // receiver are rewiring, so nothing may be hoisted into the
    // window (the dispatch loop never placed work there either).
    const std::vector<ReconfigEvent> &reconfigs =
        schedule.reconfigEvents();
    auto window_ok = [&](const ScheduledLayer &e, double new_start) {
        if (faulty && !faults.windowUndisturbed(e.accIdx, new_start,
                                                e.duration()))
            return false;
        for (const ReconfigEvent &w : reconfigs) {
            if (e.accIdx != w.donor && e.accIdx != w.receiver)
                continue;
            if (new_start < w.endCycle - kEps &&
                new_start + e.duration() > w.startCycle + kEps)
                return false;
        }
        return true;
    };

    // Earliest legal start: the predecessor's end, but never before
    // the instance's arrival (pull/gap-fill must not hoist a frame's
    // layers ahead of the frame itself).
    auto dep_ready = [&](const ScheduledLayer &e) {
        double arrival =
            wl.instances()[e.instanceIdx].arrivalCycle;
        if (e.layerIdx == 0)
            return arrival;
        auto it =
            dep_index.find(depKey(e.instanceIdx, e.layerIdx - 1));
        return it == dep_index.end()
                   ? arrival
                   : std::max(arrival,
                              entries[it->second].endCycle);
    };

    // Tracker and per-sub-accelerator time order are built once and
    // maintained incrementally: both passes only retime entries, and
    // every retime updates the tracker (move) and the order (splice)
    // in place, so no per-pass rebuild or re-sort is needed. Entry
    // start times on one sub-accelerator are strictly increasing
    // (positive durations, no overlap), so the maintained order is
    // the unique sorted order the per-pass sort would recompute.
    MemoryTracker tracker =
        buildTracker(entries, acc.globalBufferBytes());
    std::vector<std::vector<std::size_t>> per_acc(
        schedule.numSubAccs());
    for (std::size_t i = 0; i < entries.size(); ++i)
        per_acc[entries[i].accIdx].push_back(i);
    for (auto &vec : per_acc) {
        std::sort(vec.begin(), vec.end(),
                  [&](std::size_t a, std::size_t b) {
                      return entries[a].startCycle <
                             entries[b].startCycle;
                  });
    }

    for (int pass = 0; pass < opts.maxPostPasses; ++pass) {
        bool changed = false;

        // Pull pass: shift entries earlier preserving order.
        for (auto &vec : per_acc) {
            for (std::size_t pos = 0; pos < vec.size(); ++pos) {
                if (faulty && pinned[vec[pos]])
                    continue;
                ScheduledLayer &e = entries[vec[pos]];
                double acc_prev_end =
                    pos == 0 ? 0.0 : entries[vec[pos - 1]].endCycle;
                double new_start =
                    std::max(dep_ready(e), acc_prev_end);
                if (new_start < e.startCycle - kEps &&
                    window_ok(e, new_start) &&
                    tracker.feasible(
                        new_start, e.duration(),
                        static_cast<double>(e.l2FootprintBytes),
                        vec[pos])) {
                    tracker.move(vec[pos], new_start);
                    double dur = e.duration();
                    e.startCycle = new_start;
                    e.endCycle = new_start + dur;
                    changed = true;
                }
            }
        }

        // Gap-fill pass (Fig. 9): move a later layer into an idle gap
        // within the look-ahead window. After every move the acc's
        // time order is re-established (a splice of the moved entry
        // to its new position) before continuing — gaps are only
        // meaningful on a sorted timeline.
        for (auto &vec : per_acc) {
            bool moved = true;
            int guard = 0;
            const int max_moves =
                static_cast<int>(vec.size()) + 8;
            while (moved && guard++ < max_moves) {
                moved = false;
                // Gaps include the leading idle window before the
                // sub-accelerator's first entry (pos == 0) — with
                // staggered arrivals a frame pinned at its arrival
                // can leave a long head gap that later-queued but
                // already-arrived work should fill. A candidate is
                // placed at the earliest point inside the gap its
                // dependences and arrival allow, not just at the
                // gap's left edge.
                for (std::size_t pos = 0;
                     pos < vec.size() && !moved; ++pos) {
                    double gap_start =
                        pos == 0 ? 0.0
                                 : entries[vec[pos - 1]].endCycle;
                    double gap_end = entries[vec[pos]].startCycle;
                    if (gap_end - gap_start <= kEps)
                        continue;
                    int depth = 0;
                    for (std::size_t j = pos;
                         j < vec.size() &&
                         depth < opts.lookaheadDepth;
                         ++j, ++depth) {
                        if (faulty && pinned[vec[j]])
                            continue;
                        ScheduledLayer &cand = entries[vec[j]];
                        double dur = cand.duration();
                        double earliest =
                            std::max(gap_start, dep_ready(cand));
                        if (earliest + dur > gap_end + kEps)
                            continue; // does not fit in the gap
                        if (cand.startCycle <= earliest + kEps)
                            continue; // no improvement
                        if (!window_ok(cand, earliest))
                            continue; // would land on a fault
                        // Context-change penalties are baked into
                        // entry durations at dispatch time from the
                        // then-current sub-accelerator adjacency. A
                        // reorder that changed the adjacency would
                        // leave those durations stale (penalty
                        // charged where no switch remains, or a new
                        // switch uncharged), so with a non-zero
                        // penalty the move is only taken when it
                        // provably keeps every affected entry's
                        // penalty intact: the moved entry against
                        // its new predecessor, the entry it now
                        // precedes, and the entry left behind at its
                        // old slot. (The pull pass never reorders,
                        // so this is the only adjacency hazard;
                        // checkContextPenalties() asserts the
                        // invariant after the passes.)
                        if (opts.contextChangeCycles > 0.0 &&
                            j != pos) {
                            const double P = opts.contextChangeCycles;
                            auto pen = [&](const ScheduledLayer &e,
                                           const ScheduledLayer
                                               *prev) {
                                return prev && prev->instanceIdx !=
                                                   e.instanceIdx
                                           ? P
                                           : 0.0;
                            };
                            const ScheduledLayer *new_prev =
                                pos == 0 ? nullptr
                                         : &entries[vec[pos - 1]];
                            const ScheduledLayer &displaced =
                                entries[vec[pos]];
                            if (pen(cand, new_prev) !=
                                    cand.contextPenaltyCycles ||
                                pen(displaced, &cand) !=
                                    displaced.contextPenaltyCycles) {
                                continue;
                            }
                            if (j + 1 < vec.size()) {
                                const ScheduledLayer &orphan =
                                    entries[vec[j + 1]];
                                if (pen(orphan,
                                        &entries[vec[j - 1]]) !=
                                    orphan.contextPenaltyCycles) {
                                    continue;
                                }
                            }
                        }
                        if (!tracker.feasible(
                                earliest, dur,
                                static_cast<double>(
                                    cand.l2FootprintBytes),
                                vec[j])) {
                            continue;
                        }
                        tracker.move(vec[j], earliest);
                        cand.startCycle = earliest;
                        cand.endCycle = earliest + dur;
                        // Splice vec[j] into its new slot at pos.
                        std::rotate(
                            vec.begin() +
                                static_cast<std::ptrdiff_t>(pos),
                            vec.begin() +
                                static_cast<std::ptrdiff_t>(j),
                            vec.begin() +
                                static_cast<std::ptrdiff_t>(j + 1));
                        changed = true;
                        moved = true;
                        break;
                    }
                }
            }
        }

        if (!changed)
            break;
    }

    if (opts.contextChangeCycles > 0.0) {
        std::string stale = checkContextPenalties(
            schedule, opts.contextChangeCycles);
        if (!stale.empty())
            util::panic("postProcessIdleTime: ", stale);
    }
}

} // namespace herald::sched
