#include "sched/herald_scheduler.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "sched/memory_tracker.hh"
#include "util/logging.hh"

namespace herald::sched
{

namespace
{

constexpr double kEps = 1e-6;

double
metricValue(Metric metric, const cost::LayerCost &cost)
{
    switch (metric) {
      case Metric::Edp:
        return cost.edp();
      case Metric::Latency:
        return cost.cycles;
      case Metric::Energy:
        return cost.energyUnits;
    }
    util::panic("unknown Metric");
}

} // namespace

const char *
toString(Metric metric)
{
    switch (metric) {
      case Metric::Edp:
        return "EDP";
      case Metric::Latency:
        return "latency";
      case Metric::Energy:
        return "energy";
    }
    util::panic("unknown Metric");
}

const char *
toString(Ordering ordering)
{
    switch (ordering) {
      case Ordering::BreadthFirst:
        return "breadth-first";
      case Ordering::DepthFirst:
        return "depth-first";
    }
    util::panic("unknown Ordering");
}

HeraldScheduler::HeraldScheduler(cost::CostModel &model,
                                 SchedulerOptions options)
    : costModel(model), opts(options)
{
    if (opts.loadBalanceFactor < 1.0)
        util::fatal("load-balancing factor must be >= 1");
    if (opts.lookaheadDepth < 0 || opts.maxPostPasses < 0)
        util::fatal("negative post-processing parameter");
}

Schedule
HeraldScheduler::schedule(const workload::Workload &wl,
                          const accel::Accelerator &acc) const
{
    const std::size_t n_inst = wl.numInstances();
    const std::size_t n_acc = acc.numSubAccs();
    Schedule schedule(n_acc);
    if (n_inst == 0)
        return schedule;

    std::vector<std::size_t> next_layer(n_inst, 0);
    // A layer chain becomes ready at its instance's arrival, not at
    // cycle 0 — real-time scenarios stagger frames this way.
    std::vector<double> ready_time(n_inst, 0.0);
    for (std::size_t i = 0; i < n_inst; ++i)
        ready_time[i] = wl.instances()[i].arrivalCycle;
    std::vector<double> acc_avail(n_acc, 0.0);
    std::vector<std::size_t> acc_last_instance(n_acc, SIZE_MAX);
    MemoryTracker memory(acc.globalBufferBytes());

    std::size_t remaining = wl.totalLayers();
    std::size_t rotate = 0; // breadth-first round-robin cursor
    // Release clock: the latest end cycle committed so far. An
    // instance competes for dispatch only once its arrival is inside
    // the committed horizon — a monotone notion of "now" that an
    // idle sub-accelerator cannot pin at zero.
    double release_frontier = 0.0;

    while (remaining > 0) {
        // --- Layer ordering heuristic: pick the next instance ---
        // Candidates are visited in the base ordering's preference
        // (round-robin from the rotate cursor, or instance order).
        // Only instances that have arrived by the release frontier
        // compete — otherwise the greedy pass would reserve slots at
        // future arrivals and serialize already-arrived work behind
        // frames that do not exist yet. Without deadlineAware the
        // first released candidate wins; with it, the released
        // candidate with the nearest absolute deadline wins and the
        // base order breaks ties — so the two policies coincide on
        // deadline-free workloads.
        auto pending = [&](std::size_t cand) {
            return next_layer[cand] < wl.modelOf(cand).numLayers();
        };
        auto base_order = [&](std::size_t k) {
            return opts.ordering == Ordering::BreadthFirst
                       ? (rotate + k) % n_inst
                       : k;
        };

        std::size_t inst = SIZE_MAX;
        double best_deadline = workload::kNoDeadline;
        for (std::size_t k = 0; k < n_inst; ++k) {
            std::size_t cand = base_order(k);
            if (!pending(cand))
                continue;
            if (wl.instances()[cand].arrivalCycle >
                release_frontier + kEps)
                continue; // not yet arrived
            if (inst == SIZE_MAX) {
                inst = cand;
                best_deadline =
                    wl.instances()[cand].deadlineCycle;
                if (!opts.deadlineAware)
                    break;
                continue;
            }
            double deadline = wl.instances()[cand].deadlineCycle;
            if (deadline < best_deadline) {
                inst = cand;
                best_deadline = deadline;
            }
        }
        if (inst == SIZE_MAX) {
            // Nothing has arrived yet: dispatch the nearest future
            // arrival (EDF breaks equal-arrival ties when enabled).
            double best_arrival = workload::kNoDeadline;
            for (std::size_t k = 0; k < n_inst; ++k) {
                std::size_t cand = base_order(k);
                if (!pending(cand))
                    continue;
                const workload::Instance &ci =
                    wl.instances()[cand];
                bool better =
                    inst == SIZE_MAX ||
                    ci.arrivalCycle < best_arrival - kEps ||
                    (opts.deadlineAware &&
                     std::abs(ci.arrivalCycle - best_arrival) <=
                         kEps &&
                     ci.deadlineCycle < best_deadline);
                if (better) {
                    inst = cand;
                    best_arrival = ci.arrivalCycle;
                    best_deadline = ci.deadlineCycle;
                }
            }
        }
        if (inst == SIZE_MAX)
            util::panic("scheduler: no instance with pending layers");

        const dnn::Layer &layer =
            wl.modelOf(inst).layer(next_layer[inst]);

        // --- Dataflow-preference-based assignment ---
        std::vector<accel::StyledLayerCost> costs(n_acc);
        std::vector<double> metric_of(n_acc);
        std::vector<std::size_t> order(n_acc);
        for (std::size_t a = 0; a < n_acc; ++a) {
            costs[a] = accel::evaluateOnSubAcc(costModel, acc, a,
                                               layer,
                                               opts.rdaOverheads);
            metric_of[a] = metricValue(opts.metric, costs[a].cost);
            order[a] = a;
        }
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      return metric_of[a] < metric_of[b];
                  });

        // --- Load-balancing feedback: demote overloading choices ---
        std::size_t chosen = order[0];
        if (opts.loadBalance && n_acc > 1) {
            const double best_metric = metric_of[order[0]];
            for (std::size_t a : order) {
                if (metric_of[a] >
                    best_metric * opts.loadBalanceMaxDegradation) {
                    break; // remaining candidates are worse still
                }
                double start =
                    std::max(ready_time[inst], acc_avail[a]);
                double frontier = start + costs[a].cost.cycles;
                double max_f = frontier;
                double min_f = frontier;
                for (std::size_t b = 0; b < n_acc; ++b) {
                    if (b == a)
                        continue;
                    max_f = std::max(max_f, acc_avail[b]);
                    min_f = std::min(min_f, acc_avail[b]);
                }
                if (min_f > 0.0 &&
                    max_f <= opts.loadBalanceFactor * min_f) {
                    chosen = a;
                    break;
                }
            }
        }

        // --- Dependence + memory constrained start time ---
        const accel::StyledLayerCost &sc = costs[chosen];
        double dur = sc.cost.cycles;
        if (opts.contextChangeCycles > 0.0 &&
            acc_last_instance[chosen] != SIZE_MAX &&
            acc_last_instance[chosen] != inst) {
            dur += opts.contextChangeCycles;
        }
        double start =
            std::max(ready_time[inst], acc_avail[chosen]);
        start = memory.firstFeasible(
            start, dur,
            static_cast<double>(sc.cost.l2FootprintBytes));
        memory.add(start, dur,
                   static_cast<double>(sc.cost.l2FootprintBytes));

        ScheduledLayer entry;
        entry.instanceIdx = inst;
        entry.layerIdx = next_layer[inst];
        entry.accIdx = chosen;
        entry.style = sc.style;
        entry.startCycle = start;
        entry.endCycle = start + dur;
        entry.energyUnits = sc.cost.energyUnits;
        entry.l2FootprintBytes = sc.cost.l2FootprintBytes;
        schedule.add(entry);

        ready_time[inst] = entry.endCycle;
        acc_avail[chosen] = entry.endCycle;
        release_frontier =
            std::max(release_frontier, entry.endCycle);
        acc_last_instance[chosen] = inst;
        ++next_layer[inst];
        --remaining;
        rotate = (inst + 1) % n_inst;
    }

    if (opts.postProcess)
        postProcessIdleTime(schedule, wl, acc);
    return schedule;
}

namespace
{

/** Flat key for an (instance, layer) pair; both fit in 32 bits. */
std::uint64_t
depKey(std::size_t instance_idx, std::size_t layer_idx)
{
    return (static_cast<std::uint64_t>(instance_idx) << 32) |
           static_cast<std::uint64_t>(layer_idx & 0xffffffffULL);
}

/** Entry index of (instance, layer) pairs for dependence lookups. */
std::unordered_map<std::uint64_t, std::size_t>
buildDependenceIndex(const std::vector<ScheduledLayer> &entries)
{
    std::unordered_map<std::uint64_t, std::size_t> index;
    index.reserve(entries.size());
    for (std::size_t i = 0; i < entries.size(); ++i)
        index[depKey(entries[i].instanceIdx, entries[i].layerIdx)] = i;
    return index;
}

/** Rebuild a memory tracker mirroring the schedule's intervals. */
MemoryTracker
buildTracker(const std::vector<ScheduledLayer> &entries,
             std::uint64_t capacity)
{
    MemoryTracker tracker(capacity);
    for (const ScheduledLayer &e : entries) {
        tracker.add(e.startCycle, e.duration(),
                    static_cast<double>(e.l2FootprintBytes));
    }
    return tracker;
}

} // namespace

void
HeraldScheduler::postProcessIdleTime(Schedule &schedule,
                                     const workload::Workload &wl,
                                     const accel::Accelerator &acc)
    const
{
    std::vector<ScheduledLayer> &entries = schedule.mutableEntries();
    if (entries.empty())
        return;
    auto dep_index = buildDependenceIndex(entries);

    // Earliest legal start: the predecessor's end, but never before
    // the instance's arrival (pull/gap-fill must not hoist a frame's
    // layers ahead of the frame itself).
    auto dep_ready = [&](const ScheduledLayer &e) {
        double arrival =
            wl.instances()[e.instanceIdx].arrivalCycle;
        if (e.layerIdx == 0)
            return arrival;
        auto it =
            dep_index.find(depKey(e.instanceIdx, e.layerIdx - 1));
        return it == dep_index.end()
                   ? arrival
                   : std::max(arrival,
                              entries[it->second].endCycle);
    };

    for (int pass = 0; pass < opts.maxPostPasses; ++pass) {
        bool changed = false;
        MemoryTracker tracker =
            buildTracker(entries, acc.globalBufferBytes());

        // Per-sub-accelerator time order.
        std::vector<std::vector<std::size_t>> per_acc(
            schedule.numSubAccs());
        for (std::size_t i = 0; i < entries.size(); ++i)
            per_acc[entries[i].accIdx].push_back(i);
        for (auto &vec : per_acc) {
            std::sort(vec.begin(), vec.end(),
                      [&](std::size_t a, std::size_t b) {
                          return entries[a].startCycle <
                                 entries[b].startCycle;
                      });
        }

        // Pull pass: shift entries earlier preserving order.
        for (auto &vec : per_acc) {
            for (std::size_t pos = 0; pos < vec.size(); ++pos) {
                ScheduledLayer &e = entries[vec[pos]];
                double acc_prev_end =
                    pos == 0 ? 0.0 : entries[vec[pos - 1]].endCycle;
                double new_start =
                    std::max(dep_ready(e), acc_prev_end);
                if (new_start < e.startCycle - kEps &&
                    tracker.feasible(
                        new_start, e.duration(),
                        static_cast<double>(e.l2FootprintBytes),
                        vec[pos])) {
                    tracker.move(vec[pos], new_start);
                    double dur = e.duration();
                    e.startCycle = new_start;
                    e.endCycle = new_start + dur;
                    changed = true;
                }
            }
        }

        // Gap-fill pass (Fig. 9): move a later layer into an idle gap
        // within the look-ahead window. After every move the acc's
        // time order is re-established before continuing — gaps are
        // only meaningful on a sorted timeline.
        for (auto &vec : per_acc) {
            bool moved = true;
            int guard = 0;
            const int max_moves =
                static_cast<int>(vec.size()) + 8;
            while (moved && guard++ < max_moves) {
                moved = false;
                std::sort(vec.begin(), vec.end(),
                          [&](std::size_t a, std::size_t b) {
                              return entries[a].startCycle <
                                     entries[b].startCycle;
                          });
                // Gaps include the leading idle window before the
                // sub-accelerator's first entry (pos == 0) — with
                // staggered arrivals a frame pinned at its arrival
                // can leave a long head gap that later-queued but
                // already-arrived work should fill. A candidate is
                // placed at the earliest point inside the gap its
                // dependences and arrival allow, not just at the
                // gap's left edge.
                for (std::size_t pos = 0;
                     pos < vec.size() && !moved; ++pos) {
                    double gap_start =
                        pos == 0 ? 0.0
                                 : entries[vec[pos - 1]].endCycle;
                    double gap_end = entries[vec[pos]].startCycle;
                    if (gap_end - gap_start <= kEps)
                        continue;
                    int depth = 0;
                    for (std::size_t j = pos;
                         j < vec.size() &&
                         depth < opts.lookaheadDepth;
                         ++j, ++depth) {
                        ScheduledLayer &cand = entries[vec[j]];
                        double dur = cand.duration();
                        double earliest =
                            std::max(gap_start, dep_ready(cand));
                        if (earliest + dur > gap_end + kEps)
                            continue; // does not fit in the gap
                        if (cand.startCycle <= earliest + kEps)
                            continue; // no improvement
                        if (!tracker.feasible(
                                earliest, dur,
                                static_cast<double>(
                                    cand.l2FootprintBytes),
                                vec[j])) {
                            continue;
                        }
                        tracker.move(vec[j], earliest);
                        cand.startCycle = earliest;
                        cand.endCycle = earliest + dur;
                        changed = true;
                        moved = true;
                        break;
                    }
                }
            }
        }

        if (!changed)
            break;
    }
}

} // namespace herald::sched
