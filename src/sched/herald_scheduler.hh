/**
 * @file
 * Herald's layer scheduler (paper Sec. IV-D, Figs. 7-9).
 *
 * Step 1 — initial scheduling: layers are taken in depth-first or
 * breadth-first model order; each is assigned to the sub-accelerator
 * with the best per-layer metric (dataflow preference), demoted to
 * the next-best candidate when the assignment would leave the
 * sub-accelerator completion frontiers unbalanced beyond the user's
 * load-balancing factor. Start times respect the model's dependence
 * chain and the global-buffer occupancy constraint.
 *
 * Step 2 — post-processing: idle-time elimination. A pull pass moves
 * entries earlier within their sub-accelerator order; a gap-fill pass
 * with a bounded look-ahead reorders later layers into idle gaps
 * (Fig. 9). Both passes only ever move entries earlier, so the
 * makespan is non-increasing and the loop terminates.
 *
 * Throughput architecture: schedule() first builds a LayerCostTable
 * (every unique (layer, sub-acc) cost evaluated once, optionally
 * prefilled across a ThreadPool) and then runs an event-driven
 * dispatch loop — instances are released from an arrival-sorted
 * cursor into ordered ready sets, so picking the next instance is
 * O(log n) instead of an O(n_instances) scan per layer, and the loop
 * body is allocation- and lock-free. The original per-layer-query
 * O(L x N) implementation survives as a test/bench-only verification
 * oracle (sched/reference_scheduler.hh, outside libherald): both
 * paths produce bit-identical schedules (asserted by
 * tests/test_sched_equivalence.cc).
 */

#pragma once

#include "accel/rda.hh"
#include "cost/cost_model.hh"
#include "sched/fault_model.hh"
#include "sched/metric.hh"
#include "sched/policy.hh"
#include "sched/reconfig.hh"
#include "sched/schedule.hh"
#include "workload/workload.hh"

namespace herald::sched
{

class LayerCostTable;

/** Initial layer ordering heuristic (Sec. IV-D). */
enum class Ordering
{
    BreadthFirst, //!< interleave models (default for multi-DNN)
    DepthFirst,   //!< finish one model before the next
};

// Real-time semantics: every workload instance carries an
// arrivalCycle (no layer of the instance may start earlier) and an
// optional absolute deadlineCycle. The scheduler always respects
// arrivals; SchedulerOptions::policy chooses how released instances
// compete for dispatch (FIFO base order, earliest-deadline, or
// least-slack — see sched/policy.hh), and every deadline-driven
// policy degenerates to the base ordering on deadline-free
// workloads. SchedulerOptions::dropPolicy optionally sheds frames
// that are provably hopeless at release instead of letting them
// poison live frames; dropped frames are recorded on the Schedule
// and counted as deadline misses.

const char *toString(Ordering ordering);

/**
 * Preemption granularity of the dispatch loop.
 *
 * Off reproduces the PR 4 run-to-completion semantics: an instance
 * only competes for dispatch once the committed-schedule frontier has
 * passed its arrival, so a long low-priority layer is always allowed
 * to start greedily even when an urgent frame arrives in the middle
 * of it — the urgent frame then queues behind the committed work.
 *
 * AtLayerBoundary re-runs instance selection before *every* layer
 * commit: when the tentatively planned layer would span the arrival
 * of a strictly more urgent frame (smaller policy key — EDF deadline
 * or LST slack), that frame is released immediately and selection is
 * re-run, letting the urgent arrival interleave its layers into the
 * running frame's chain. The displaced layer was never committed, so
 * nothing is undone; the sub-accelerator may idle until the urgent
 * arrival (inserted idle — layers stay atomic). Context-change
 * penalties remain exact (they are charged at commit time from the
 * actual adjacency, and checkContextPenalties() still asserts them)
 * and schedules stay deterministic and bit-identical across thread
 * counts: the decision reads only committed-schedule state and the
 * strict (key, idx) order. FIFO's constant key never fires the
 * urgency test, so FIFO schedules are identical under both settings.
 */
enum class Preemption
{
    Off,            //!< run-to-completion (PR 4 bit-identical)
    AtLayerBoundary //!< re-select before every commit; see above
};

const char *toString(Preemption preemption);

/** Scheduler tuning knobs. */
struct SchedulerOptions
{
    Metric metric = Metric::Edp;
    Ordering ordering = Ordering::BreadthFirst;

    /**
     * Instance-selection policy among released instances: FIFO (base
     * order), EDF (nearest absolute deadline) or LST (least slack,
     * deadline minus optimistic remaining work). Ties — including
     * every instance of a deadline-free workload — resolve via
     * @c ordering. Read through effectivePolicy(), which honours the
     * deprecated @c deadlineAware alias.
     */
    Policy policy = Policy::Fifo;

    /**
     * @deprecated Alias kept for source compatibility: setting it
     * while @c policy is Policy::Fifo selects Policy::Edf. Use
     * @c policy directly in new code.
     */
    bool deadlineAware = false;

    /**
     * Over-subscription admission control: DropPolicy::HopelessFrames
     * sheds frames whose deadline cannot be met even when running
     * every remaining layer on its best sub-accelerator starting at
     * arrival (see sched/policy.hh). Dropped frames appear in
     * Schedule::droppedInstances() and SlaStats::droppedFrames and
     * count as deadline misses.
     */
    DropPolicy dropPolicy = DropPolicy::None;

    /**
     * Dispatch-loop preemption points (see Preemption). Off is
     * bit-identical to the PR 4 scheduler; AtLayerBoundary lets
     * urgent arrivals claim a sub-accelerator before a long
     * lower-priority layer is committed across their arrival.
     */
    Preemption preemption = Preemption::Off;

    /**
     * LST grant hysteresis in cycles (0 disables). With many live
     * frames at near-equal slack, least-slack dispatch re-keys per
     * retired layer and degenerates into processor sharing — every
     * frame advances one layer per round, every switch pays the
     * context-change penalty, and nobody finishes early. With a
     * positive band the most recently dispatched instance keeps the
     * grant until a competitor's key undercuts it by more than the
     * band. Only consulted when the effective policy is LST.
     */
    double lstHysteresisCycles = 0.0;

    /** The policy after resolving the deprecated alias. */
    Policy
    effectivePolicy() const
    {
        return policy == Policy::Fifo && deadlineAware ? Policy::Edf
                                                       : policy;
    }

    /** Enable the load-balancing feedback loop. */
    bool loadBalance = true;
    /** Max allowed (max frontier / min frontier) imbalance. */
    double loadBalanceFactor = 2.0;
    /**
     * A second-best sub-accelerator is only considered for balancing
     * when its per-layer metric is within this factor of the best
     * one — balancing must not push a layer onto a catastrophically
     * mismatched dataflow.
     */
    double loadBalanceMaxDegradation = 4.0;

    /** Enable idle-time-elimination post-processing. */
    bool postProcess = true;
    /** Look-ahead depth of the gap-fill pass (Fig. 9's LA). */
    int lookaheadDepth = 4;
    /** Maximum post-processing sweeps. */
    int maxPostPasses = 8;

    /**
     * Latency penalty (cycles) when a sub-accelerator switches to a
     * layer of a different model instance (data-layout / context
     * change; paper Sec. IV-A provides this as an option).
     */
    double contextChangeCycles = 0.0;

    /** Overheads applied to flexible (RDA) sub-accelerators. */
    accel::RdaOverheads rdaOverheads{};

    /**
     * Sub-accelerator fault timeline (sched/fault_model.hh). With a
     * non-empty timeline the dispatch loop schedules in degraded
     * mode: layers never start inside a known outage or on a dead
     * sub-accelerator (they defer past the window or demote to a
     * survivor), a layer in flight at a fault onset is killed and
     * recorded (ScheduledLayer::faultKilled) with its frame's chain
     * re-entering selection, and the drop policies re-prove
     * feasibility against the degraded capacity. Must cover exactly
     * the accelerator's sub-accelerator count when non-empty. An
     * empty timeline (the default) leaves every schedule
     * bit-identical to the fault-free scheduler.
     */
    FaultTimeline faults{};

    /**
     * Elastic repartitioning (sched/reconfig.hh). With an enabled
     * policy the dispatch loop re-evaluates it at every layer
     * boundary (the preemption-point hook): when the policy plans a
     * migration, the donor and receiver drain to completion, both
     * are offline for the modeled drain + rewire window (recorded as
     * a Schedule::ReconfigEvent), and afterwards a new
     * accel::PartitionEpoch is in force with only the affected
     * LayerCostTable columns re-prefilled. Reconfig::Off (the
     * default) leaves every schedule bit-identical to the
     * frozen-partition scheduler.
     */
    ReconfigOptions reconfig{};

    /**
     * Worker threads for the LayerCostTable prefill: 1 forces the
     * serial path (the DSE uses this inside its own worker pool), 0
     * resolves via HERALD_THREADS then hardware concurrency. The
     * pool only spins up on tables with at least
     * LayerCostTable::kMinParallelEvals entries; results are
     * bit-identical for every thread count.
     */
    std::size_t prefillThreads = 0;

    /**
     * Reject contradictory or meaningless combinations up front
     * (util::fatal) instead of silently no-opping: negative or NaN
     * cycle knobs, a load-balancing factor below 1, negative
     * post-processing budgets, and an LST hysteresis band paired
     * with a policy that never consults it. Both HeraldScheduler and
     * OnlineScheduler call this from their constructors; callers
     * composing options programmatically may call it directly for an
     * early error.
     */
    void validate() const;
};

/** The Herald scheduler. */
class HeraldScheduler
{
  public:
    HeraldScheduler(cost::CostModel &model,
                    SchedulerOptions options = SchedulerOptions{});

    /**
     * Build a schedule for @p wl on @p acc. Builds a LayerCostTable
     * for the (workload, accelerator) pair first (see
     * SchedulerOptions::prefillThreads) and dispatches from it.
     */
    Schedule schedule(const workload::Workload &wl,
                      const accel::Accelerator &acc) const;

    /**
     * Same, reusing a prebuilt @p table (must have been built for
     * this @p wl / @p acc pair with the same metric and RDA
     * overheads).
     */
    Schedule schedule(const workload::Workload &wl,
                      const accel::Accelerator &acc,
                      const LayerCostTable &table) const;

    const SchedulerOptions &options() const { return opts; }

  private:
    cost::CostModel &costModel;
    SchedulerOptions opts;

    /**
     * Idle-time elimination (Fig. 9): pull + gap-fill sweeps.
     * Incremental: one MemoryTracker and one per-sub-accelerator
     * sorted order are maintained across passes and across gap-fill
     * moves (a sorted-order splice replaces the per-move re-sort).
     */
    void postProcessIdleTime(Schedule &schedule,
                             const workload::Workload &wl,
                             const accel::Accelerator &acc) const;
};

} // namespace herald::sched

