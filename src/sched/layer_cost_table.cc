#include "sched/layer_cost_table.hh"

#include <algorithm>
#include <cstring>
#include <limits>
#include <utility>

#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace herald::sched
{

namespace
{

/** Bit pattern of a double for exact-identity hashing. */
std::uint64_t
doubleBits(double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

} // namespace

bool
CostColumnCache::Key::operator==(const Key &o) const
{
    return style == o.style && flexible == o.flexible &&
           numPes == o.numPes && l2Bytes == o.l2Bytes &&
           l1Bytes == o.l1Bytes && bwBits == o.bwBits &&
           dramBwBits == o.dramBwBits && clockBits == o.clockBits &&
           localBwBits == o.localBwBits &&
           rdaTaxBits == o.rdaTaxBits &&
           rdaBaseBits == o.rdaBaseBits &&
           rdaPerPeBits == o.rdaPerPeBits &&
           rdaEnergyBits == o.rdaEnergyBits;
}

std::size_t
CostColumnCache::KeyHash::operator()(const Key &key) const
{
    auto mix = [](std::size_t h, std::uint64_t v) {
        return h ^
               (static_cast<std::size_t>(v) + 0x9e3779b97f4a7c15ULL +
                (h << 6) + (h >> 2));
    };
    std::size_t h = 0;
    h = mix(h, key.style);
    h = mix(h, key.flexible);
    h = mix(h, key.numPes);
    h = mix(h, key.l2Bytes);
    h = mix(h, key.l1Bytes);
    h = mix(h, key.bwBits);
    h = mix(h, key.dramBwBits);
    h = mix(h, key.clockBits);
    h = mix(h, key.localBwBits);
    h = mix(h, key.rdaTaxBits);
    h = mix(h, key.rdaBaseBits);
    h = mix(h, key.rdaPerPeBits);
    h = mix(h, key.rdaEnergyBits);
    return h;
}

std::size_t
CostColumnCache::size() const
{
    std::size_t n = 0;
    for (const Shard &shard : shards) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        n += shard.map.size();
    }
    return n;
}

std::shared_ptr<const CostColumnCache::Column>
CostColumnCache::find(const Key &key)
{
    Shard &shard = shards[KeyHash{}(key) % kShards];
    std::shared_ptr<const Column> column;
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto it = shard.map.find(key);
        if (it != shard.map.end())
            column = it->second;
    }
    (column ? hitCount : missCount)
        .fetch_add(1, std::memory_order_relaxed);
    return column;
}

void
CostColumnCache::insert(const Key &key,
                        std::shared_ptr<const Column> column)
{
    Shard &shard = shards[KeyHash{}(key) % kShards];
    std::lock_guard<std::mutex> lock(shard.mutex);
    // emplace keeps the incumbent on a racing double-insert; both
    // racers evaluated the identical pure-function column.
    shard.map.emplace(key, std::move(column));
}

void
CostColumnCache::bindRows(std::size_t rows)
{
    std::size_t expected = 0;
    if (!boundRows.compare_exchange_strong(expected, rows) &&
        expected != rows) {
        util::fatal("cost column cache: bound to a workload with ",
                    expected, " unique-layer rows, asked to build ",
                    rows,
                    " — one cache instance serves one workload");
    }
}

LayerCostTable::DegradedView::DegradedView(const LayerCostTable &t)
    : table(&t), minCycDeg(t.minCyc), remSuffixDeg(t.remSuffix)
{
}

void
LayerCostTable::DegradedView::rebuild(
    const std::vector<char> &dead, const std::vector<double> &scale)
{
    const std::size_t n_acc = table->nAcc;
    if (dead.size() != n_acc ||
        (!scale.empty() && scale.size() != n_acc))
        util::fatal("degraded view: mask/scale arity mismatch");
    for (std::size_t a = 0; a < n_acc; ++a) {
        if (!scale.empty() && scale[a] < 1.0)
            util::fatal("degraded view: scale factors must be >= 1");
    }

    const std::size_t rows =
        n_acc == 0 ? 0 : table->entries.size() / n_acc;
    constexpr double inf = std::numeric_limits<double>::infinity();
    for (std::size_t row = 0; row < rows; ++row) {
        double best = inf;
        for (std::size_t a = 0; a < n_acc; ++a) {
            if (dead[a])
                continue;
            double cycles =
                table->entries[row * n_acc + a].cost.cycles;
            if (!scale.empty())
                cycles *= scale[a];
            best = std::min(best, cycles);
        }
        minCycDeg[row] = best;
    }

    // Same per-model suffix fold as build(), over the degraded
    // minima (inf is absorbing: a chain through an unrunnable layer
    // has no finite remaining-work bound).
    const std::size_t n_models = table->modelOffset.size();
    for (std::size_t u = 0; u < n_models; ++u) {
        const std::size_t base = table->modelOffset[u];
        const std::size_t limit =
            u + 1 < n_models ? table->modelOffset[u + 1] : rows;
        const std::size_t n_layers = limit - base;
        const std::size_t seg = base + u;
        remSuffixDeg[seg + n_layers] = 0.0;
        for (std::size_t l = n_layers; l-- > 0;) {
            remSuffixDeg[seg + l] =
                remSuffixDeg[seg + l + 1] + minCycDeg[base + l];
        }
    }
}

LayerCostTable
LayerCostTable::build(cost::CostModel &model,
                      const workload::Workload &wl,
                      const accel::Accelerator &acc, Metric metric,
                      const accel::RdaOverheads &rda,
                      std::size_t num_threads, CostColumnCache *cache)
{
    LayerCostTable table;
    table.nAcc = acc.numSubAccs();

    const std::size_t n_models = wl.numUniqueModels();
    table.modelOffset.resize(n_models, 0);
    std::size_t rows = 0;
    for (std::size_t u = 0; u < n_models; ++u) {
        table.modelOffset[u] = rows;
        rows += wl.uniqueModel(u).numLayers();
    }
    table.entries.resize(rows * table.nAcc);
    table.metrics.resize(rows * table.nAcc);
    table.orders.resize(rows * table.nAcc);
    table.minCyc.resize(rows, 0.0);
    table.remSuffix.resize(rows + n_models, 0.0);
    if (rows == 0 || table.nAcc == 0)
        return table;

    // Hoist the per-sub-accelerator descriptors and resource views
    // out of the fill loop, and map every row back to its layer.
    std::vector<cost::SubAccResources> res(table.nAcc);
    for (std::size_t a = 0; a < table.nAcc; ++a)
        res[a] = acc.resources(a);
    std::vector<const dnn::Layer *> layer_of(rows);
    for (std::size_t u = 0; u < n_models; ++u) {
        const dnn::Model &m = wl.uniqueModel(u);
        for (std::size_t l = 0; l < m.numLayers(); ++l)
            layer_of[table.modelOffset[u] + l] = &m.layer(l);
    }

    // Resolve columns against the cross-candidate cache: copy hits
    // into the table up front, leaving only the missing columns to
    // evaluate. Without a cache every column is "missing" and the
    // fill below is the original full prefill.
    std::vector<CostColumnCache::Key> keys(table.nAcc);
    std::vector<std::size_t> missing;
    if (cache != nullptr) {
        cache->bindRows(rows);
        for (std::size_t a = 0; a < table.nAcc; ++a) {
            const accel::SubAccelerator &sub = acc.subAccs()[a];
            CostColumnCache::Key &key = keys[a];
            key.flexible = sub.flexible ? 1 : 0;
            key.style = sub.flexible
                            ? 0
                            : static_cast<std::uint64_t>(sub.style);
            key.numPes = res[a].numPes;
            key.l2Bytes = res[a].l2Bytes;
            key.l1Bytes = res[a].l1Bytes;
            key.bwBits = doubleBits(res[a].bwGBps);
            key.dramBwBits = doubleBits(res[a].dramBwGBps);
            key.clockBits = doubleBits(res[a].clockGHz);
            key.localBwBits =
                doubleBits(res[a].localBwBytesPerCycle);
            key.rdaTaxBits = doubleBits(rda.interconnectEnergyTax);
            key.rdaBaseBits = doubleBits(rda.reconfigBaseCycles);
            key.rdaPerPeBits = doubleBits(rda.reconfigCyclesPerPe);
            key.rdaEnergyBits = doubleBits(rda.reconfigEnergyPerPe);
            if (auto column = cache->find(key)) {
                for (std::size_t row = 0; row < rows; ++row)
                    table.entries[row * table.nAcc + a] =
                        (*column)[row];
            } else {
                missing.push_back(a);
            }
        }
    } else {
        for (std::size_t a = 0; a < table.nAcc; ++a)
            missing.push_back(a);
    }

    // Fill one row: the missing sub-acc costs, then the derived
    // whole-row state (metric values, metric-sorted order, optimistic
    // minimum — those read every column, cached or fresh). Rows are
    // independent pure functions of (layer, acc), so the parallel
    // fill is bit-identical to the serial one — and a cached column
    // is bit-identical to a re-evaluated one, so cached builds equal
    // cold builds exactly.
    auto fill_row = [&](std::size_t row) {
        const dnn::Layer &layer = *layer_of[row];
        const std::size_t base = row * table.nAcc;
        for (std::size_t a : missing) {
            table.entries[base + a] = accel::evaluateOnSub(
                model, acc.subAccs()[a], res[a], layer, rda);
        }
        double min_cycles = 0.0;
        for (std::size_t a = 0; a < table.nAcc; ++a) {
            table.metrics[base + a] =
                metricValue(metric, table.entries[base + a].cost);
            table.orders[base + a] = a;
            double cycles = table.entries[base + a].cost.cycles;
            if (a == 0 || cycles < min_cycles)
                min_cycles = cycles;
        }
        table.minCyc[row] = min_cycles;
        std::sort(table.orders.begin() +
                      static_cast<std::ptrdiff_t>(base),
                  table.orders.begin() +
                      static_cast<std::ptrdiff_t>(base + table.nAcc),
                  [&](std::size_t a, std::size_t b) {
                      return table.metrics[base + a] <
                             table.metrics[base + b];
                  });
    };

    std::size_t threads = num_threads == 1
                              ? 1
                              : util::resolveThreadCount(num_threads);
    // One row is the unit of work; spawning more workers than rows
    // would only pay thread create/join cost for idle hands. The
    // pool is gated on the *missing* evaluation count: an all-hit
    // build only runs the cheap derived pass.
    threads = std::min(threads, rows);
    if (threads > 1 && rows * missing.size() >= kMinParallelEvals) {
        util::ThreadPool pool(threads - 1);
        pool.parallelFor(0, rows, fill_row);
    } else {
        for (std::size_t row = 0; row < rows; ++row)
            fill_row(row);
    }

    // Publish the freshly evaluated columns for later candidates.
    if (cache != nullptr) {
        for (std::size_t a : missing) {
            auto column =
                std::make_shared<CostColumnCache::Column>(rows);
            for (std::size_t row = 0; row < rows; ++row)
                (*column)[row] = table.entries[row * table.nAcc + a];
            cache->insert(keys[a], std::move(column));
        }
    }

    // Per-model optimistic remaining-work suffix sums (serial: a
    // left-to-right fold over each model's rows, after the fill).
    for (std::size_t u = 0; u < n_models; ++u) {
        const std::size_t n_layers = wl.uniqueModel(u).numLayers();
        const std::size_t seg = table.modelOffset[u] + u;
        table.remSuffix[seg + n_layers] = 0.0;
        for (std::size_t l = n_layers; l-- > 0;) {
            table.remSuffix[seg + l] =
                table.remSuffix[seg + l + 1] +
                table.minCyc[table.modelOffset[u] + l];
        }
    }
    return table;
}

void
LayerCostTable::rebuildColumns(cost::CostModel &model,
                               const workload::Workload &wl,
                               const accel::Accelerator &acc,
                               Metric metric,
                               const accel::RdaOverheads &rda,
                               const std::vector<std::size_t> &columns,
                               std::size_t num_threads)
{
    if (acc.numSubAccs() != nAcc)
        util::fatal("layer cost table: rebuildColumns arity mismatch "
                    "(table built for ", nAcc, " sub-accs, got ",
                    acc.numSubAccs(), ")");
    const std::size_t n_models = wl.numUniqueModels();
    if (n_models != modelOffset.size())
        util::fatal("layer cost table: rebuildColumns model-set "
                    "mismatch");
    const std::size_t rows = nAcc == 0 ? 0 : entries.size() / nAcc;
    for (std::size_t a : columns) {
        if (a >= nAcc)
            util::fatal("layer cost table: rebuildColumns column ", a,
                        " out of range");
    }
    if (rows == 0 || columns.empty())
        return;

    std::vector<cost::SubAccResources> res(nAcc);
    for (std::size_t a = 0; a < nAcc; ++a)
        res[a] = acc.resources(a);
    std::vector<const dnn::Layer *> layer_of(rows);
    for (std::size_t u = 0; u < n_models; ++u) {
        const dnn::Model &m = wl.uniqueModel(u);
        if (modelOffset[u] + m.numLayers() > rows)
            util::fatal("layer cost table: rebuildColumns row-count "
                        "mismatch");
        for (std::size_t l = 0; l < m.numLayers(); ++l)
            layer_of[modelOffset[u] + l] = &m.layer(l);
    }

    // Refill one row: re-evaluate only the affected columns, then
    // recompute the whole-row derived state (min + sorted order read
    // every column, affected or not).
    auto refill_row = [&](std::size_t row) {
        const dnn::Layer &layer = *layer_of[row];
        const std::size_t base = row * nAcc;
        for (std::size_t a : columns) {
            entries[base + a] = accel::evaluateOnSub(
                model, acc.subAccs()[a], res[a], layer, rda);
            metrics[base + a] =
                metricValue(metric, entries[base + a].cost);
        }
        double min_cycles = 0.0;
        for (std::size_t a = 0; a < nAcc; ++a) {
            orders[base + a] = a;
            double cycles = entries[base + a].cost.cycles;
            if (a == 0 || cycles < min_cycles)
                min_cycles = cycles;
        }
        minCyc[row] = min_cycles;
        std::sort(orders.begin() + static_cast<std::ptrdiff_t>(base),
                  orders.begin() +
                      static_cast<std::ptrdiff_t>(base + nAcc),
                  [&](std::size_t a, std::size_t b) {
                      return metrics[base + a] < metrics[base + b];
                  });
    };

    std::size_t threads = num_threads == 1
                              ? 1
                              : util::resolveThreadCount(num_threads);
    threads = std::min(threads, rows);
    if (threads > 1 && rows * columns.size() >= kMinParallelEvals) {
        util::ThreadPool pool(threads - 1);
        pool.parallelFor(0, rows, refill_row);
    } else {
        for (std::size_t row = 0; row < rows; ++row)
            refill_row(row);
    }

    // Re-fold the suffix sums over the updated minima (serial).
    for (std::size_t u = 0; u < n_models; ++u) {
        const std::size_t n_layers = wl.uniqueModel(u).numLayers();
        const std::size_t seg = modelOffset[u] + u;
        remSuffix[seg + n_layers] = 0.0;
        for (std::size_t l = n_layers; l-- > 0;) {
            remSuffix[seg + l] =
                remSuffix[seg + l + 1] + minCyc[modelOffset[u] + l];
        }
    }
}

} // namespace herald::sched
