#include "sched/layer_cost_table.hh"

#include <algorithm>
#include <limits>

#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace herald::sched
{

LayerCostTable::DegradedView::DegradedView(const LayerCostTable &t)
    : table(&t), minCycDeg(t.minCyc), remSuffixDeg(t.remSuffix)
{
}

void
LayerCostTable::DegradedView::rebuild(
    const std::vector<char> &dead, const std::vector<double> &scale)
{
    const std::size_t n_acc = table->nAcc;
    if (dead.size() != n_acc ||
        (!scale.empty() && scale.size() != n_acc))
        util::fatal("degraded view: mask/scale arity mismatch");
    for (std::size_t a = 0; a < n_acc; ++a) {
        if (!scale.empty() && scale[a] < 1.0)
            util::fatal("degraded view: scale factors must be >= 1");
    }

    const std::size_t rows =
        n_acc == 0 ? 0 : table->entries.size() / n_acc;
    constexpr double inf = std::numeric_limits<double>::infinity();
    for (std::size_t row = 0; row < rows; ++row) {
        double best = inf;
        for (std::size_t a = 0; a < n_acc; ++a) {
            if (dead[a])
                continue;
            double cycles =
                table->entries[row * n_acc + a].cost.cycles;
            if (!scale.empty())
                cycles *= scale[a];
            best = std::min(best, cycles);
        }
        minCycDeg[row] = best;
    }

    // Same per-model suffix fold as build(), over the degraded
    // minima (inf is absorbing: a chain through an unrunnable layer
    // has no finite remaining-work bound).
    const std::size_t n_models = table->modelOffset.size();
    for (std::size_t u = 0; u < n_models; ++u) {
        const std::size_t base = table->modelOffset[u];
        const std::size_t limit =
            u + 1 < n_models ? table->modelOffset[u + 1] : rows;
        const std::size_t n_layers = limit - base;
        const std::size_t seg = base + u;
        remSuffixDeg[seg + n_layers] = 0.0;
        for (std::size_t l = n_layers; l-- > 0;) {
            remSuffixDeg[seg + l] =
                remSuffixDeg[seg + l + 1] + minCycDeg[base + l];
        }
    }
}

LayerCostTable
LayerCostTable::build(cost::CostModel &model,
                      const workload::Workload &wl,
                      const accel::Accelerator &acc, Metric metric,
                      const accel::RdaOverheads &rda,
                      std::size_t num_threads)
{
    LayerCostTable table;
    table.nAcc = acc.numSubAccs();

    const std::size_t n_models = wl.numUniqueModels();
    table.modelOffset.resize(n_models, 0);
    std::size_t rows = 0;
    for (std::size_t u = 0; u < n_models; ++u) {
        table.modelOffset[u] = rows;
        rows += wl.uniqueModel(u).numLayers();
    }
    table.entries.resize(rows * table.nAcc);
    table.metrics.resize(rows * table.nAcc);
    table.orders.resize(rows * table.nAcc);
    table.minCyc.resize(rows, 0.0);
    table.remSuffix.resize(rows + n_models, 0.0);
    if (rows == 0 || table.nAcc == 0)
        return table;

    // Hoist the per-sub-accelerator descriptors and resource views
    // out of the fill loop, and map every row back to its layer.
    std::vector<cost::SubAccResources> res(table.nAcc);
    for (std::size_t a = 0; a < table.nAcc; ++a)
        res[a] = acc.resources(a);
    std::vector<const dnn::Layer *> layer_of(rows);
    for (std::size_t u = 0; u < n_models; ++u) {
        const dnn::Model &m = wl.uniqueModel(u);
        for (std::size_t l = 0; l < m.numLayers(); ++l)
            layer_of[table.modelOffset[u] + l] = &m.layer(l);
    }

    // Fill one row: every sub-acc cost, its metric value, and the
    // metric-sorted sub-acc order. Rows are independent pure
    // functions of (layer, acc), so the parallel fill is bit-
    // identical to the serial one.
    auto fill_row = [&](std::size_t row) {
        const dnn::Layer &layer = *layer_of[row];
        const std::size_t base = row * table.nAcc;
        double min_cycles = 0.0;
        for (std::size_t a = 0; a < table.nAcc; ++a) {
            table.entries[base + a] = accel::evaluateOnSub(
                model, acc.subAccs()[a], res[a], layer, rda);
            table.metrics[base + a] =
                metricValue(metric, table.entries[base + a].cost);
            table.orders[base + a] = a;
            double cycles = table.entries[base + a].cost.cycles;
            if (a == 0 || cycles < min_cycles)
                min_cycles = cycles;
        }
        table.minCyc[row] = min_cycles;
        std::sort(table.orders.begin() +
                      static_cast<std::ptrdiff_t>(base),
                  table.orders.begin() +
                      static_cast<std::ptrdiff_t>(base + table.nAcc),
                  [&](std::size_t a, std::size_t b) {
                      return table.metrics[base + a] <
                             table.metrics[base + b];
                  });
    };

    std::size_t threads = num_threads == 1
                              ? 1
                              : util::resolveThreadCount(num_threads);
    // One row is the unit of work; spawning more workers than rows
    // would only pay thread create/join cost for idle hands.
    threads = std::min(threads, rows);
    if (threads > 1 && rows * table.nAcc >= kMinParallelEvals) {
        util::ThreadPool pool(threads - 1);
        pool.parallelFor(0, rows, fill_row);
    } else {
        for (std::size_t row = 0; row < rows; ++row)
            fill_row(row);
    }

    // Per-model optimistic remaining-work suffix sums (serial: a
    // left-to-right fold over each model's rows, after the fill).
    for (std::size_t u = 0; u < n_models; ++u) {
        const std::size_t n_layers = wl.uniqueModel(u).numLayers();
        const std::size_t seg = table.modelOffset[u] + u;
        table.remSuffix[seg + n_layers] = 0.0;
        for (std::size_t l = n_layers; l-- > 0;) {
            table.remSuffix[seg + l] =
                table.remSuffix[seg + l + 1] +
                table.minCyc[table.modelOffset[u] + l];
        }
    }
    return table;
}

void
LayerCostTable::rebuildColumns(cost::CostModel &model,
                               const workload::Workload &wl,
                               const accel::Accelerator &acc,
                               Metric metric,
                               const accel::RdaOverheads &rda,
                               const std::vector<std::size_t> &columns,
                               std::size_t num_threads)
{
    if (acc.numSubAccs() != nAcc)
        util::fatal("layer cost table: rebuildColumns arity mismatch "
                    "(table built for ", nAcc, " sub-accs, got ",
                    acc.numSubAccs(), ")");
    const std::size_t n_models = wl.numUniqueModels();
    if (n_models != modelOffset.size())
        util::fatal("layer cost table: rebuildColumns model-set "
                    "mismatch");
    const std::size_t rows = nAcc == 0 ? 0 : entries.size() / nAcc;
    for (std::size_t a : columns) {
        if (a >= nAcc)
            util::fatal("layer cost table: rebuildColumns column ", a,
                        " out of range");
    }
    if (rows == 0 || columns.empty())
        return;

    std::vector<cost::SubAccResources> res(nAcc);
    for (std::size_t a = 0; a < nAcc; ++a)
        res[a] = acc.resources(a);
    std::vector<const dnn::Layer *> layer_of(rows);
    for (std::size_t u = 0; u < n_models; ++u) {
        const dnn::Model &m = wl.uniqueModel(u);
        if (modelOffset[u] + m.numLayers() > rows)
            util::fatal("layer cost table: rebuildColumns row-count "
                        "mismatch");
        for (std::size_t l = 0; l < m.numLayers(); ++l)
            layer_of[modelOffset[u] + l] = &m.layer(l);
    }

    // Refill one row: re-evaluate only the affected columns, then
    // recompute the whole-row derived state (min + sorted order read
    // every column, affected or not).
    auto refill_row = [&](std::size_t row) {
        const dnn::Layer &layer = *layer_of[row];
        const std::size_t base = row * nAcc;
        for (std::size_t a : columns) {
            entries[base + a] = accel::evaluateOnSub(
                model, acc.subAccs()[a], res[a], layer, rda);
            metrics[base + a] =
                metricValue(metric, entries[base + a].cost);
        }
        double min_cycles = 0.0;
        for (std::size_t a = 0; a < nAcc; ++a) {
            orders[base + a] = a;
            double cycles = entries[base + a].cost.cycles;
            if (a == 0 || cycles < min_cycles)
                min_cycles = cycles;
        }
        minCyc[row] = min_cycles;
        std::sort(orders.begin() + static_cast<std::ptrdiff_t>(base),
                  orders.begin() +
                      static_cast<std::ptrdiff_t>(base + nAcc),
                  [&](std::size_t a, std::size_t b) {
                      return metrics[base + a] < metrics[base + b];
                  });
    };

    std::size_t threads = num_threads == 1
                              ? 1
                              : util::resolveThreadCount(num_threads);
    threads = std::min(threads, rows);
    if (threads > 1 && rows * columns.size() >= kMinParallelEvals) {
        util::ThreadPool pool(threads - 1);
        pool.parallelFor(0, rows, refill_row);
    } else {
        for (std::size_t row = 0; row < rows; ++row)
            refill_row(row);
    }

    // Re-fold the suffix sums over the updated minima (serial).
    for (std::size_t u = 0; u < n_models; ++u) {
        const std::size_t n_layers = wl.uniqueModel(u).numLayers();
        const std::size_t seg = modelOffset[u] + u;
        remSuffix[seg + n_layers] = 0.0;
        for (std::size_t l = n_layers; l-- > 0;) {
            remSuffix[seg + l] =
                remSuffix[seg + l + 1] + minCyc[modelOffset[u] + l];
        }
    }
}

} // namespace herald::sched
