/**
 * @file
 * Precomputed layer-cost tables for the scheduler's hot loop.
 *
 * A schedule() run queries the cost of every (layer, sub-accelerator)
 * pair it considers. Real-time workloads make those queries massively
 * redundant: addPeriodicModel expands "model @ FPS for K frames" into
 * thousands of instances of the same few models, so the same (layer
 * shape, sub-acc) cost is needed over and over. The CostModel cache
 * absorbs the recomputation but still charges a hash + shard-mutex
 * round trip per query.
 *
 * A LayerCostTable collapses that to pure index arithmetic: before
 * the scheduling loop starts, every (unique layer x sub-acc) cost is
 * evaluated exactly once into a dense array, together with the per-
 * layer metric values and the metric-sorted sub-accelerator order the
 * assignment loop needs — so the loop performs no hashing, takes no
 * locks, and allocates nothing per layer. The prefill fans out over a
 * util::ThreadPool when the table is large enough to amortize the
 * workers (big single-candidate runs; inside the DSE's partition
 * sweep each candidate builds its table serially on its own worker).
 *
 * The table stores exactly what accel::evaluateOnSubAcc returns, so
 * schedules built from it are bit-identical to schedules that query
 * the cost model per layer.
 */

#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "accel/rda.hh"
#include "sched/metric.hh"
#include "workload/workload.hh"

namespace herald::sched
{

/**
 * Cross-candidate cache of LayerCostTable *columns*: the vector of
 * per-unique-layer StyledLayerCosts of one sub-accelerator, keyed on
 * everything the column is a pure function of — the sub-
 * accelerator's dataflow style (or flexibility), its full resource
 * tuple, and the RDA overhead coefficients. The workload's unique-
 * layer set is deliberately NOT part of the key: a cache instance is
 * bound to one workload (asserted via the row count on first use)
 * and shared across the many accelerator candidates the DSE
 * schedules against that workload.
 *
 * Why columns and not per-layer costs: the CostModel already
 * memoizes per-(layer, style, resources) evaluations, but a table
 * prefill still pays one hash + shard-mutex round trip per entry —
 * rows x sub-accs of them per candidate. Neighboring DSE candidates
 * (an annealing move, a shared axis value of the exhaustive grid)
 * mostly re-request identical columns, so caching at column
 * granularity collapses the whole per-column prefill to one lookup
 * plus a memcpy, which is what makes metaheuristic search pay ~only
 * the dispatch cost per revisited region (see docs/DSE.md).
 *
 * Thread safety: find/insert may race from any number of
 * Herald::explore workers. The map is split into kShards shards,
 * each behind its own mutex; columns are immutable once published
 * (shared_ptr<const Column>), and on an insert race the first writer
 * wins — both racers computed the identical pure-function column,
 * so the cache stays deterministic.
 */
class CostColumnCache
{
  public:
    /** One column: rows entries in unique-layer row order. */
    using Column = std::vector<accel::StyledLayerCost>;

    /** Hit/miss counters (for bench reporting; racy reads are ok). */
    struct Stats
    {
        std::size_t hits = 0;
        std::size_t misses = 0;
    };

    Stats
    stats() const
    {
        return Stats{hitCount.load(std::memory_order_relaxed),
                     missCount.load(std::memory_order_relaxed)};
    }

    /** Distinct columns currently cached. */
    std::size_t size() const;

  private:
    friend class LayerCostTable;

    /** Everything a column is a pure function of (doubles as bits). */
    struct Key
    {
        std::uint64_t style = 0;
        std::uint64_t flexible = 0;
        std::uint64_t numPes = 0;
        std::uint64_t l2Bytes = 0;
        std::uint64_t l1Bytes = 0;
        std::uint64_t bwBits = 0;
        std::uint64_t dramBwBits = 0;
        std::uint64_t clockBits = 0;
        std::uint64_t localBwBits = 0;
        std::uint64_t rdaTaxBits = 0;
        std::uint64_t rdaBaseBits = 0;
        std::uint64_t rdaPerPeBits = 0;
        std::uint64_t rdaEnergyBits = 0;

        bool operator==(const Key &o) const;
    };

    struct KeyHash
    {
        std::size_t operator()(const Key &key) const;
    };

    /** Cached column for @p key, or nullptr (counts the probe). */
    std::shared_ptr<const Column> find(const Key &key);

    /** Publish @p column; an earlier racer's identical copy wins. */
    void insert(const Key &key, std::shared_ptr<const Column> column);

    /**
     * Bind the cache to a workload's unique-layer row count on first
     * use; fatal when a later build disagrees — sharing one cache
     * across workloads would silently serve wrong-length (and
     * wrong-layer) columns.
     */
    void bindRows(std::size_t rows);

    static constexpr std::size_t kShards = 16;

    struct Shard
    {
        mutable std::mutex mutex;
        std::unordered_map<Key, std::shared_ptr<const Column>,
                           KeyHash>
            map;
    };

    std::array<Shard, kShards> shards;
    std::atomic<std::size_t> hitCount{0};
    std::atomic<std::size_t> missCount{0};
    std::atomic<std::size_t> boundRows{0};
};

/** See file comment. */
class LayerCostTable
{
  public:
    /**
     * Evaluate every (unique layer, sub-accelerator) pair of @p wl on
     * @p acc. @p num_threads controls the prefill fan-out: 1 forces
     * the serial path, 0 resolves via HERALD_THREADS then hardware
     * concurrency; a pool is only spun up when the missing-entry
     * count reaches kMinParallelEvals.
     *
     * With a non-null @p cache, whole columns are fetched from (and
     * newly evaluated columns published to) the cross-candidate
     * CostColumnCache instead of being re-evaluated per candidate.
     * The resulting table is bit-identical to an uncached build —
     * columns are pure functions of their key — which
     * tests/test_dse_engine.cc asserts on a randomized candidate
     * sweep.
     */
    static LayerCostTable build(cost::CostModel &model,
                                const workload::Workload &wl,
                                const accel::Accelerator &acc,
                                Metric metric,
                                const accel::RdaOverheads &rda,
                                std::size_t num_threads = 1,
                                CostColumnCache *cache = nullptr);

    /**
     * Re-evaluate only the (layer x sub-acc) costs of the listed
     * @p columns against @p acc's current resource split, then
     * recompute every derived quantity that depends on them (metric
     * values, per-row sub-acc order, optimistic minima, remaining-
     * work suffix sums). This is the epoch-swap path of elastic
     * repartitioning: after a PE/buffer migration only the donor and
     * receiver columns changed, so the other columns' entries are
     * reused verbatim. Rows are independent pure functions, so the
     * threaded refill is bit-identical to the serial one. @p acc
     * must have the same sub-accelerator arity (and @p wl the same
     * unique-model set) the table was built with — fatal otherwise.
     */
    void rebuildColumns(cost::CostModel &model,
                        const workload::Workload &wl,
                        const accel::Accelerator &acc, Metric metric,
                        const accel::RdaOverheads &rda,
                        const std::vector<std::size_t> &columns,
                        std::size_t num_threads = 1);

    /** Sub-accelerator count the table was built for. */
    std::size_t numSubAccs() const { return nAcc; }

    /** Total rows: unique layers summed over unique models. */
    std::size_t numUniqueLayers() const
    {
        return nAcc == 0 ? 0 : entries.size() / nAcc;
    }

    /** Row id of layer @p layer of unique model @p uid. */
    std::size_t
    rowOf(std::size_t uid, std::size_t layer) const
    {
        return modelOffset[uid] + layer;
    }

    /** Cost of row @p row on sub-accelerator @p a. */
    const accel::StyledLayerCost &
    cost(std::size_t row, std::size_t a) const
    {
        return entries[row * nAcc + a];
    }

    /** Assignment-metric value of row @p row on sub-acc @p a. */
    double
    metric(std::size_t row, std::size_t a) const
    {
        return metrics[row * nAcc + a];
    }

    /**
     * Sub-accelerator indices of row @p row sorted by ascending
     * metric (numSubAccs() entries), exactly as the per-layer sort of
     * the reference scheduler would order them.
     */
    const std::size_t *
    order(std::size_t row) const
    {
        return &orders[row * nAcc];
    }

    /** Optimistic (minimum over sub-accs) cycles of row @p row. */
    double minCycles(std::size_t row) const { return minCyc[row]; }

    /**
     * Optimistic remaining work of unique model @p uid from layer
     * @p layer (inclusive) to the last layer: the sum of each
     * remaining layer's best-case (minimum over sub-accelerators)
     * cycles — a lower bound on the residual serial execution of the
     * dependence chain on any schedule. @p layer == numLayers()
     * returns 0. Slack-aware instance selection (LST) and the
     * hopeless-frame drop test are built on this.
     */
    double
    remainingCycles(std::size_t uid, std::size_t layer) const
    {
        // Per-model segments carry a trailing 0 sentinel, hence the
        // "+ uid" shift over the shared row offsets.
        return remSuffix[modelOffset[uid] + uid + layer];
    }

    /**
     * Degraded-capacity view: the optimistic per-row minimum and the
     * remaining-work suffix sums recomputed with sub-accelerator
     * columns masked out (permanently failed) and/or scaled
     * (throttled). The doom/hopeless feasibility proofs re-prove
     * against this once capacity is lost — the pristine table's
     * "best sub-accelerator" lower bound is no longer a bound when
     * that sub-accelerator is dead. Rows with every column masked
     * report +infinity (no continuation exists). The view borrows
     * the table; rebuild() is O(rows x sub-accs).
     */
    class DegradedView
    {
      public:
        /** Identity view (equals the pristine table). */
        explicit DegradedView(const LayerCostTable &table);

        /**
         * Recompute with column @p a removed when dead[a] != 0 and
         * cycles multiplied by scale[a] otherwise. @p scale may be
         * empty (all 1); factors must be >= 1.
         */
        void rebuild(const std::vector<char> &dead,
                     const std::vector<double> &scale = {});

        /** Degraded counterpart of LayerCostTable::minCycles. */
        double minCycles(std::size_t row) const
        {
            return minCycDeg[row];
        }

        /** Degraded counterpart of remainingCycles (may be +inf). */
        double
        remainingCycles(std::size_t uid, std::size_t layer) const
        {
            return remSuffixDeg[table->modelOffset[uid] + uid +
                                layer];
        }

      private:
        const LayerCostTable *table;
        std::vector<double> minCycDeg;
        std::vector<double> remSuffixDeg;
    };

    /**
     * Below this entry count the prefill always runs serially:
     * unique-layer tables are small, warm-cache fills take
     * microseconds, and spawning/joining a pool would dominate. The
     * fan-out is for big cold single-candidate runs (large model
     * zoos x several sub-accelerators).
     */
    static constexpr std::size_t kMinParallelEvals = 1024;

  private:
    std::size_t nAcc = 0;
    std::vector<std::size_t> modelOffset; //!< per unique model
    std::vector<accel::StyledLayerCost> entries; //!< row-major
    std::vector<double> metrics;                 //!< row-major
    std::vector<std::size_t> orders;             //!< row-major
    std::vector<double> minCyc;      //!< per row, min over sub-accs
    /** Per-model min-cycle suffix sums, 0-terminated per segment. */
    std::vector<double> remSuffix;
};

} // namespace herald::sched

