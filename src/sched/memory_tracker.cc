#include "sched/memory_tracker.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace herald::sched
{

namespace
{

constexpr double kEps = 1e-6;

} // namespace

std::size_t
MemoryTracker::upperBound(double t) const
{
    auto it = std::upper_bound(
        events.begin(), events.end(), t,
        [](double value, const Event &e) { return value < e.time; });
    return static_cast<std::size_t>(it - events.begin());
}

void
MemoryTracker::rebuildPrefixFrom(std::size_t pos)
{
    prefix.resize(events.size());
    double running = pos > 0 ? prefix[pos - 1] : 0.0;
    for (std::size_t i = pos; i < events.size(); ++i) {
        running += events[i].delta;
        prefix[i] = running;
    }
}

void
MemoryTracker::insertEvent(double time, double delta, std::size_t idx)
{
    std::size_t pos = upperBound(time);
    events.insert(events.begin() + static_cast<std::ptrdiff_t>(pos),
                  Event{time, delta, idx});
    rebuildPrefixFrom(pos);
}

void
MemoryTracker::eraseEvent(double time, std::size_t idx)
{
    // Events of one interval are found by exact time (callers pass
    // the stored interval bounds back verbatim).
    auto it = std::lower_bound(
        events.begin(), events.end(), time,
        [](const Event &e, double value) { return e.time < value; });
    while (it != events.end() && it->time == time && it->idx != idx)
        ++it;
    if (it == events.end() || it->time != time)
        util::panic("memory tracker: stale event erase");
    std::size_t pos = static_cast<std::size_t>(it - events.begin());
    events.erase(it);
    rebuildPrefixFrom(pos);
}

double
MemoryTracker::occupancy(double t, std::size_t exclude) const
{
    std::size_t m = upperBound(t + kEps);
    double total = m > 0 ? prefix[m - 1] : 0.0;
    if (exclude < intervals.size()) {
        const Interval &iv = intervals[exclude];
        if (iv.start <= t + kEps && iv.end > t + kEps)
            total -= iv.bytes;
    }
    return total;
}

bool
MemoryTracker::feasible(double start, double dur, double bytes,
                        std::size_t exclude) const
{
    const double end = start + dur;
    // Occupancy is piecewise constant; check at the window start and
    // at every interval start strictly inside the window.
    double peak = occupancy(start, exclude);
    for (std::size_t i = upperBound(start);
         i < events.size() && events[i].time < end; ++i) {
        if (events[i].delta <= 0.0 || events[i].idx == exclude)
            continue;
        peak = std::max(peak, occupancy(events[i].time, exclude));
    }
    return peak + bytes <= capacity + kEps;
}

double
MemoryTracker::firstFeasible(double start, double dur,
                             double bytes) const
{
    if (bytes > capacity) {
        // Cannot ever fit; caller serializes behind everything.
        double latest = start;
        for (const Interval &iv : intervals)
            latest = std::max(latest, iv.end);
        return latest;
    }
    double t = start;
    for (int guard = 0; guard < 1 << 16; ++guard) {
        if (feasible(t, dur, bytes))
            return t;
        // Jump to the next release that could lower occupancy: the
        // first end event after t on the sorted timeline.
        double next = std::numeric_limits<double>::infinity();
        for (std::size_t i = upperBound(t + kEps); i < events.size();
             ++i) {
            if (events[i].delta < 0.0) {
                next = events[i].time;
                break;
            }
        }
        if (!std::isfinite(next))
            return t; // nothing to release; give up at t
        t = next;
    }
    util::panic("memory tracker failed to converge");
}

std::size_t
MemoryTracker::add(double start, double dur, double bytes)
{
    std::size_t idx = intervals.size();
    intervals.push_back(Interval{start, start + dur, bytes});
    insertEvent(start, bytes, idx);
    insertEvent(start + dur, -bytes, idx);
    return idx;
}

void
MemoryTracker::move(std::size_t idx, double new_start)
{
    Interval &iv = intervals.at(idx);
    double dur = iv.end - iv.start;
    eraseEvent(iv.start, idx);
    eraseEvent(iv.end, idx);
    iv.start = new_start;
    iv.end = new_start + dur;
    insertEvent(iv.start, iv.bytes, idx);
    insertEvent(iv.end, -iv.bytes, idx);
}

} // namespace herald::sched
