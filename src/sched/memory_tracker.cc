#include "sched/memory_tracker.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace herald::sched
{

namespace
{

constexpr double kEps = 1e-6;

} // namespace

// ------------------------------------------------------------------
// Fenwick tree over per-block delta sums
// ------------------------------------------------------------------

void
MemoryTracker::rebuildFenwick()
{
    const std::size_t n = blocks.size();
    fenwick.assign(n + 1, 0.0);
    for (std::size_t b = 0; b < n; ++b)
        fenwickAdd(b, blocks[b].deltaSum);
}

void
MemoryTracker::fenwickAdd(std::size_t block, double delta)
{
    for (std::size_t i = block + 1; i < fenwick.size();
         i += i & (~i + 1))
        fenwick[i] += delta;
}

double
MemoryTracker::fenwickPrefix(std::size_t block) const
{
    double sum = 0.0;
    for (std::size_t i = block; i > 0; i -= i & (~i + 1))
        sum += fenwick[i];
    return sum;
}

// ------------------------------------------------------------------
// Blocked timeline positions
// ------------------------------------------------------------------

MemoryTracker::Pos
MemoryTracker::upperBound(double t) const
{
    // First block whose last event time > t, then the in-block upper
    // bound. Blocks are non-empty and time-ordered.
    auto bit = std::partition_point(
        blocks.begin(), blocks.end(),
        [t](const Block &b) { return b.ev.back().time <= t; });
    if (bit == blocks.end())
        return Pos{blocks.size(), 0};
    auto eit = std::upper_bound(
        bit->ev.begin(), bit->ev.end(), t,
        [](double value, const Event &e) { return value < e.time; });
    return Pos{static_cast<std::size_t>(bit - blocks.begin()),
               static_cast<std::size_t>(eit - bit->ev.begin())};
}

MemoryTracker::Pos
MemoryTracker::lowerBound(double t) const
{
    auto bit = std::partition_point(
        blocks.begin(), blocks.end(),
        [t](const Block &b) { return b.ev.back().time < t; });
    if (bit == blocks.end())
        return Pos{blocks.size(), 0};
    auto eit = std::lower_bound(
        bit->ev.begin(), bit->ev.end(), t,
        [](const Event &e, double value) { return e.time < value; });
    return Pos{static_cast<std::size_t>(bit - blocks.begin()),
               static_cast<std::size_t>(eit - bit->ev.begin())};
}

double
MemoryTracker::prefixSumBefore(Pos p) const
{
    if (p.block == blocks.size())
        return fenwickPrefix(blocks.size());
    double sum = fenwickPrefix(p.block);
    const std::vector<Event> &ev = blocks[p.block].ev;
    for (std::size_t i = 0; i < p.off; ++i)
        sum += ev[i].delta;
    return sum;
}

// ------------------------------------------------------------------
// Event maintenance
// ------------------------------------------------------------------

void
MemoryTracker::splitBlock(std::size_t b)
{
    std::vector<Event> &ev = blocks[b].ev;
    const std::size_t half = ev.size() / 2;
    Block tail;
    tail.ev.assign(ev.begin() + static_cast<std::ptrdiff_t>(half),
                   ev.end());
    ev.resize(half);
    blocks[b].deltaSum = 0.0;
    for (const Event &e : ev)
        blocks[b].deltaSum += e.delta;
    for (const Event &e : tail.ev)
        tail.deltaSum += e.delta;
    blocks.insert(blocks.begin() + static_cast<std::ptrdiff_t>(b + 1),
                  std::move(tail));
    rebuildFenwick();
}

void
MemoryTracker::insertEvent(double time, double delta, std::size_t idx)
{
    if (blocks.empty()) {
        Block block;
        block.ev.push_back(Event{time, delta, idx});
        block.deltaSum = delta;
        blocks.push_back(std::move(block));
        rebuildFenwick();
        return;
    }
    // Insert after every equal-time event. A boundary position (the
    // head of a block) becomes an append to the previous block, so
    // monotone insertion degenerates to push_back on the last block.
    Pos p = upperBound(time);
    std::size_t b = p.block;
    std::size_t off = p.off;
    if (off == 0 && b > 0) {
        --b;
        off = blocks[b].ev.size();
    }
    std::vector<Event> &ev = blocks[b].ev;
    ev.insert(ev.begin() + static_cast<std::ptrdiff_t>(off),
              Event{time, delta, idx});
    blocks[b].deltaSum += delta;
    fenwickAdd(b, delta);
    if (ev.size() > 2 * kTargetBlockEvents)
        splitBlock(b);
}

void
MemoryTracker::eraseEvent(double time, std::size_t idx)
{
    // Events of one interval are found by exact time (callers pass
    // the stored interval bounds back verbatim).
    Pos p = lowerBound(time);
    while (valid(p) && at(p).time == time && at(p).idx != idx)
        advance(p);
    if (!valid(p) || at(p).time != time)
        util::panic("memory tracker: stale event erase");
    Block &block = blocks[p.block];
    block.deltaSum -= at(p).delta;
    fenwickAdd(p.block, -block.ev[p.off].delta);
    block.ev.erase(block.ev.begin() +
                   static_cast<std::ptrdiff_t>(p.off));
    if (block.ev.empty()) {
        blocks.erase(blocks.begin() +
                     static_cast<std::ptrdiff_t>(p.block));
        rebuildFenwick();
    }
}

// ------------------------------------------------------------------
// Queries
// ------------------------------------------------------------------

double
MemoryTracker::occupancy(double t, std::size_t exclude) const
{
    double total = prefixSumBefore(upperBound(t + kEps));
    if (exclude < intervals.size()) {
        const Interval &iv = intervals[exclude];
        if (iv.start <= t + kEps && iv.end > t + kEps)
            total -= iv.bytes;
    }
    return total;
}

bool
MemoryTracker::feasible(double start, double dur, double bytes,
                        std::size_t exclude) const
{
    const double end = start + dur;
    // Occupancy is piecewise constant; check at the window start and
    // at every interval start strictly inside the window.
    double peak = occupancy(start, exclude);
    for (Pos p = upperBound(start);
         valid(p) && at(p).time < end; advance(p)) {
        const Event &e = at(p);
        if (e.delta <= 0.0 || e.idx == exclude)
            continue;
        peak = std::max(peak, occupancy(e.time, exclude));
    }
    return peak + bytes <= capacity + kEps;
}

double
MemoryTracker::firstFeasible(double start, double dur,
                             double bytes) const
{
    if (bytes > capacity) {
        // Cannot ever fit; caller serializes behind everything.
        double latest = start;
        for (const Interval &iv : intervals)
            latest = std::max(latest, iv.end);
        return latest;
    }
    double t = start;
    for (int guard = 0; guard < 1 << 16; ++guard) {
        if (feasible(t, dur, bytes))
            return t;
        // Jump to the next release that could lower occupancy: the
        // first end event after t on the sorted timeline.
        double next = std::numeric_limits<double>::infinity();
        for (Pos p = upperBound(t + kEps); valid(p); advance(p)) {
            if (at(p).delta < 0.0) {
                next = at(p).time;
                break;
            }
        }
        if (!std::isfinite(next))
            return t; // nothing to release; give up at t
        t = next;
    }
    util::panic("memory tracker failed to converge");
}

// ------------------------------------------------------------------
// Interval maintenance
// ------------------------------------------------------------------

void
MemoryTracker::reserve(std::size_t num_intervals)
{
    intervals.reserve(num_intervals);
    blocks.reserve(2 * num_intervals / kTargetBlockEvents + 2);
}

std::size_t
MemoryTracker::add(double start, double dur, double bytes)
{
    std::size_t idx;
    if (!freeSlots.empty()) {
        idx = freeSlots.back();
        freeSlots.pop_back();
        intervals[idx] = Interval{start, start + dur, bytes};
    } else {
        idx = intervals.size();
        intervals.push_back(Interval{start, start + dur, bytes});
    }
    insertEvent(start, bytes, idx);
    insertEvent(start + dur, -bytes, idx);
    return idx;
}

std::size_t
MemoryTracker::retireBefore(double floor_cycle)
{
    if (blocks.empty())
        return 0;
    // Every candidate interval (end <= floor) has both events at
    // times <= floor, so the whole retirement lives in the event
    // prefix up to the first event with time > floor. Events in the
    // prefix owned by intervals straddling the floor (start <= floor
    // < end) survive and are re-chunked in place.
    const Pos stop = upperBound(floor_cycle);
    if (stop.block == 0 && stop.off == 0)
        return 0;
    const bool partial = stop.block < blocks.size();
    const std::size_t full_blocks = partial ? stop.block
                                            : blocks.size();
    std::vector<Event> keep;
    std::size_t removed = 0;
    auto sift = [&](const Event &e) {
        if (intervals[e.idx].end <= floor_cycle) {
            // The -bytes event is the later of the pair, so the slot
            // is freed exactly once, after its +bytes partner was
            // already sifted.
            if (e.delta < 0.0) {
                intervals[e.idx] = Interval{0.0, 0.0, 0.0};
                freeSlots.push_back(e.idx);
                ++removed;
            }
        } else {
            keep.push_back(e);
        }
    };
    for (std::size_t b = 0; b < full_blocks; ++b) {
        for (const Event &e : blocks[b].ev)
            sift(e);
    }
    if (partial) {
        const std::vector<Event> &ev = blocks[stop.block].ev;
        for (std::size_t i = 0; i < stop.off; ++i)
            sift(ev[i]);
        keep.insert(keep.end(),
                    ev.begin() + static_cast<std::ptrdiff_t>(stop.off),
                    ev.end());
    }
    if (removed == 0)
        return 0;
    std::vector<Block> rebuilt;
    for (std::size_t i = 0; i < keep.size();
         i += kTargetBlockEvents) {
        const std::size_t n =
            std::min(keep.size() - i, kTargetBlockEvents);
        Block block;
        block.ev.assign(keep.begin() + static_cast<std::ptrdiff_t>(i),
                        keep.begin() +
                            static_cast<std::ptrdiff_t>(i + n));
        for (const Event &e : block.ev)
            block.deltaSum += e.delta;
        rebuilt.push_back(std::move(block));
    }
    const std::size_t suffix = full_blocks + (partial ? 1 : 0);
    for (std::size_t b = suffix; b < blocks.size(); ++b)
        rebuilt.push_back(std::move(blocks[b]));
    blocks = std::move(rebuilt);
    rebuildFenwick();
    return removed;
}

void
MemoryTracker::move(std::size_t idx, double new_start)
{
    Interval &iv = intervals.at(idx);
    double dur = iv.end - iv.start;
    eraseEvent(iv.start, idx);
    eraseEvent(iv.end, idx);
    iv.start = new_start;
    iv.end = new_start + dur;
    insertEvent(iv.start, iv.bytes, idx);
    insertEvent(iv.end, -iv.bytes, idx);
}

} // namespace herald::sched
