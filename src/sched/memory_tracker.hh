/**
 * @file
 * Occupancy bookkeeping for the shared global buffer: a set of
 * (start, end, bytes) intervals with feasibility queries.
 *
 * The tracker keeps an event timeline — every interval contributes a
 * +bytes event at its start and a -bytes event at its end, kept
 * sorted by time with a running-occupancy prefix. Occupancy at a
 * point is a binary search plus one prefix read (O(log n));
 * feasibility of a window only walks the events *inside* the window
 * instead of re-scanning every interval per candidate point, which is
 * what made the old implementation O(n^2) per query. Adds and moves
 * splice the sorted timeline (O(n) worst case, O(1) amortized for the
 * scheduler's mostly-forward-in-time insertion order).
 *
 * Occupancy is piecewise constant and evaluated with a small epsilon
 * so zero-length touches at interval boundaries don't double-count:
 * an interval [s, e) covers t iff s <= t + eps < ... < e.
 */

#ifndef HERALD_SCHED_MEMORY_TRACKER_HH
#define HERALD_SCHED_MEMORY_TRACKER_HH

#include <cstdint>
#include <vector>

namespace herald::sched
{

/** See file comment. */
class MemoryTracker
{
  public:
    explicit MemoryTracker(std::uint64_t capacity_bytes)
        : capacity(static_cast<double>(capacity_bytes))
    {
    }

    struct Interval
    {
        double start;
        double end;
        double bytes;
    };

    /**
     * Whether adding @p bytes over [start, start+dur) keeps occupancy
     * within capacity. @p exclude skips one interval (for moves).
     */
    bool feasible(double start, double dur, double bytes,
                  std::size_t exclude = SIZE_MAX) const;

    /**
     * Earliest time >= @p start at which [t, t+dur) with @p bytes is
     * feasible; advances over interval end events.
     */
    double firstFeasible(double start, double dur,
                         double bytes) const;

    /** Track a new interval; returns its index (for move/exclude). */
    std::size_t add(double start, double dur, double bytes);

    /** Retime interval @p idx to begin at @p new_start. */
    void move(std::size_t idx, double new_start);

    /** Occupancy at time @p t, optionally excluding one interval. */
    double occupancy(double t, std::size_t exclude = SIZE_MAX) const;

    std::size_t numIntervals() const { return intervals.size(); }

  private:
    /** +bytes at an interval start, -bytes at its end. */
    struct Event
    {
        double time;
        double delta;
        std::size_t idx; //!< owning interval
    };

    double capacity;
    std::vector<Interval> intervals;
    std::vector<Event> events;  //!< sorted by time
    std::vector<double> prefix; //!< occupancy after events[i]

    /** First event position with time > @p t. */
    std::size_t upperBound(double t) const;

    void insertEvent(double time, double delta, std::size_t idx);
    void eraseEvent(double time, std::size_t idx);
    void rebuildPrefixFrom(std::size_t pos);
};

} // namespace herald::sched

#endif // HERALD_SCHED_MEMORY_TRACKER_HH
