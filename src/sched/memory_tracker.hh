/**
 * @file
 * Occupancy bookkeeping for the shared global buffer: a set of
 * (start, end, bytes) intervals with feasibility queries.
 *
 * The tracker keeps an event timeline — every interval contributes a
 * +bytes event at its start and a -bytes event at its end. Events are
 * stored in a *blocked* timeline (sqrt-decomposition): time-sorted
 * blocks of a few hundred events each, with a Fenwick tree over the
 * per-block delta sums. Occupancy at a point is a block binary
 * search, a Fenwick prefix read and one partial-block walk
 * (O(log B + block) instead of O(events) — and, unlike a flat
 * prefix array, *inserts* are also O(log B + block): a flat array
 * charges O(events-after-position) per insert, which turns
 * schedulers that commit intervals out of time order (breadth-first
 * round-robin over thousands of in-flight frames) quadratic.
 * Feasibility of a window walks only the events inside the window.
 *
 * All byte counts are integer-valued doubles, so every delta sum is
 * exact and query results are bit-identical to the flat-timeline and
 * brute-force reference implementations (asserted against a
 * randomized oracle in test_parallel_dse.cc).
 *
 * Occupancy is piecewise constant and evaluated with a small epsilon
 * so zero-length touches at interval boundaries don't double-count:
 * an interval [s, e) covers t iff s <= t + eps < ... < e.
 */

#pragma once

#include <cstdint>
#include <vector>

namespace herald::sched
{

/** See file comment. */
class MemoryTracker
{
  public:
    explicit MemoryTracker(std::uint64_t capacity_bytes)
        : capacity(static_cast<double>(capacity_bytes))
    {
    }

    struct Interval
    {
        double start;
        double end;
        double bytes;
    };

    /**
     * Whether adding @p bytes over [start, start+dur) keeps occupancy
     * within capacity. @p exclude skips one interval (for moves).
     */
    bool feasible(double start, double dur, double bytes,
                  std::size_t exclude = SIZE_MAX) const;

    /**
     * Earliest time >= @p start at which [t, t+dur) with @p bytes is
     * feasible; advances over interval end events.
     */
    double firstFeasible(double start, double dur,
                         double bytes) const;

    /**
     * Pre-size the interval and block storage for @p num_intervals
     * upcoming add() calls — schedulers know the layer count up
     * front, and a 10k-frame run would otherwise regrow the timeline
     * dozens of times.
     */
    void reserve(std::size_t num_intervals);

    /** Track a new interval; returns its index (for move/exclude). */
    std::size_t add(double start, double dur, double bytes);

    /** Retime interval @p idx to begin at @p new_start. */
    void move(std::size_t idx, double new_start);

    /**
     * Drop every interval whose end is <= @p floor_cycle and free its
     * slot for reuse by add(). Callers must guarantee that every
     * future query (occupancy / feasible / firstFeasible) starts at
     * or after @p floor_cycle and that retired indices are never
     * passed to move()/exclude again: a retired interval then
     * contributes both its +bytes and -bytes event to every prefix a
     * query can read, so removing the pair leaves all results
     * bit-identical. The online scheduler calls this with its
     * monotone retirement floor (no committed work can start before
     * it); the offline scheduler never retires. Returns the number of
     * intervals retired.
     */
    std::size_t retireBefore(double floor_cycle);

    /** Occupancy at time @p t, optionally excluding one interval. */
    double occupancy(double t, std::size_t exclude = SIZE_MAX) const;

    std::size_t numIntervals() const { return intervals.size(); }

    /** Intervals still on the timeline (slots minus retired). */
    std::size_t
    liveIntervals() const
    {
        return intervals.size() - freeSlots.size();
    }

  private:
    /** +bytes at an interval start, -bytes at its end. */
    struct Event
    {
        double time;
        double delta;
        std::size_t idx; //!< owning interval
    };

    /** One run of the time-sorted timeline (never empty). */
    struct Block
    {
        std::vector<Event> ev;
        double deltaSum = 0.0;
    };

    /** Split threshold; blocks grow to at most twice this. */
    static constexpr std::size_t kTargetBlockEvents = 256;

    /** Global event position: block index + offset inside it. */
    struct Pos
    {
        std::size_t block;
        std::size_t off;
    };

    double capacity;
    std::vector<Interval> intervals;
    std::vector<std::size_t> freeSlots; //!< retired interval slots
    std::vector<Block> blocks;   //!< time-ordered, all non-empty
    std::vector<double> fenwick; //!< 1-based BIT over block deltaSums

    bool
    valid(Pos p) const
    {
        return p.block < blocks.size();
    }

    const Event &
    at(Pos p) const
    {
        return blocks[p.block].ev[p.off];
    }

    void
    advance(Pos &p) const
    {
        if (++p.off == blocks[p.block].ev.size()) {
            ++p.block;
            p.off = 0;
        }
    }

    /** First event position with time > @p t (end position if none). */
    Pos upperBound(double t) const;
    /** First event position with time >= @p t. */
    Pos lowerBound(double t) const;

    /** Sum of every event delta strictly before position @p p. */
    double prefixSumBefore(Pos p) const;

    void insertEvent(double time, double delta, std::size_t idx);
    void eraseEvent(double time, std::size_t idx);
    void splitBlock(std::size_t b);

    void rebuildFenwick();
    void fenwickAdd(std::size_t block, double delta);
    double fenwickPrefix(std::size_t block) const; //!< blocks [0, b)
};

} // namespace herald::sched

