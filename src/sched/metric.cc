#include "sched/metric.hh"

#include "util/logging.hh"

namespace herald::sched
{

double
metricValue(Metric metric, const cost::LayerCost &cost)
{
    switch (metric) {
      case Metric::Edp:
        return cost.edp();
      case Metric::Latency:
        return cost.cycles;
      case Metric::Energy:
        return cost.energyUnits;
    }
    util::panic("unknown Metric");
}

const char *
toString(Metric metric)
{
    switch (metric) {
      case Metric::Edp:
        return "EDP";
      case Metric::Latency:
        return "latency";
      case Metric::Energy:
        return "energy";
    }
    util::panic("unknown Metric");
}

} // namespace herald::sched
