/**
 * @file
 * The per-layer assignment metric shared by the scheduler's greedy
 * loop and the LayerCostTable prefill. Split out of
 * herald_scheduler.hh so the table does not depend on the scheduler
 * header (the scheduler consumes the table, not the other way
 * around).
 */

#pragma once

#include "cost/cost_model.hh"

namespace herald::sched
{

/** Which per-layer cost the assignment greedily minimizes. */
enum class Metric
{
    Edp,
    Latency,
    Energy,
};

const char *toString(Metric metric);

/** The scalar @p metric value of @p cost. */
double metricValue(Metric metric, const cost::LayerCost &cost);

} // namespace herald::sched

