#include "sched/online_scheduler.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace herald::sched
{

namespace
{

constexpr double kEps = 1e-6;

// Log-spaced latency histogram: bucket b covers latencies up to
// 2^((b+1)/kLatScale) - 1 cycles (~4.4% wide buckets). 1024 buckets
// reach 2^64 cycles, far past the workload layer's 2^53 cycle limit.
constexpr double kLatScale = 16.0;
constexpr std::size_t kLatBuckets = 1024;

} // namespace

const char *
toString(SubmitResult result)
{
    switch (result) {
      case SubmitResult::Accepted:
        return "accepted";
      case SubmitResult::Dropped:
        return "dropped";
      case SubmitResult::RejectedQueueFull:
        return "rejected-queue-full";
      case SubmitResult::RejectedHorizon:
        return "rejected-horizon";
    }
    util::panic("unknown SubmitResult");
}

void
OnlineOptions::validate() const
{
    sched.validate();
    if (sched.postProcess)
        util::fatal("online scheduler: idle-time post-processing "
                    "needs the whole schedule and cannot run on a "
                    "stream — set sched.postProcess = false");
    if (maxLiveFrames == 0)
        util::fatal("online scheduler: maxLiveFrames must be >= 1 "
                    "(0 would reject every frame)");
    if (std::isnan(horizonCycles) || horizonCycles <= 0.0)
        util::fatal("online scheduler: admission horizon must be "
                    "> 0 cycles (+infinity disables it), got ",
                    horizonCycles);
    if (maintenancePeriod == 0)
        util::fatal("online scheduler: maintenancePeriod must be "
                    ">= 1 commit");
    if (sched.reconfig.enabled() && !retainSchedule)
        util::fatal("online scheduler: elastic repartitioning "
                    "requires retainSchedule — reconfiguration "
                    "events live on the Schedule and the offline "
                    "bit-identity contract cannot be checked with "
                    "history retired");
}

OnlineScheduler::OnlineScheduler(cost::CostModel &cost_model,
                                 const std::vector<dnn::Model> &models,
                                 const accel::Accelerator &acc,
                                 OnlineOptions options)
    : opts(std::move(options)), templateWl("online-templates"),
      memory(acc.globalBufferBytes()), sched(acc.numSubAccs())
{
    opts.validate();
    if (models.empty())
        util::fatal("online scheduler: no models to serve");
    nAcc = acc.numSubAccs();
    nModels = models.size();

    const FaultTimeline &faults = opts.sched.faults;
    faulty = !faults.empty();
    if (faulty && faults.numSubAccs() != nAcc) {
        util::fatal("scheduler: fault timeline covers ",
                    faults.numSubAccs(),
                    " sub-accelerators, accelerator has ", nAcc);
    }

    // One template instance per model: the cost table only depends on
    // the set of unique models, so every stream frame shares it.
    for (const dnn::Model &m : models)
        templateWl.addModel(m, 1);
    table = LayerCostTable::build(cost_model, templateWl, acc,
                                  opts.sched.metric,
                                  opts.sched.rdaOverheads,
                                  opts.sched.prefillThreads);
    activeTable = &table;
    uidOf.resize(nModels);
    rowBaseOf.resize(nModels);
    layersOf.resize(nModels);
    for (std::size_t m = 0; m < nModels; ++m) {
        uidOf[m] = templateWl.uniqueIdOfSpec(m);
        rowBaseOf[m] = table.rowOf(uidOf[m], 0);
        layersOf[m] = models[m].numLayers();
    }

    reconfig = opts.sched.reconfig.enabled();
    if (reconfig) {
        reconfigCostModel = &cost_model;
        baseAcc = std::make_unique<accel::Accelerator>(acc);
        reconfigPolicy = makeReconfigPolicy(opts.sched.reconfig);
        peSplit.reserve(nAcc);
        for (const accel::SubAccelerator &sub : acc.subAccs())
            peSplit.push_back(sub.numPes);
        nextEpochId = acc.partitionEpochId() + 1;
    }

    breadth = opts.sched.ordering == Ordering::BreadthFirst;
    preempt = opts.sched.preemption == Preemption::AtLayerBoundary;
    doomDrop = opts.sched.dropPolicy == DropPolicy::DoomedFrames;
    dropAny = opts.sched.dropPolicy != DropPolicy::None;
    policyKind = opts.sched.effectivePolicy();
    hysteresis = opts.sched.lstHysteresisCycles > 0.0 &&
                 policyKind == Policy::Lst;

    accAvail.assign(nAcc, 0.0);
    accLastInstance.assign(nAcc, SIZE_MAX);
    lastRetiredEnd.assign(nAcc, 0.0);
    modelStats.assign(nModels, OnlineModelStats{});
    latHist.assign(kLatBuckets, 0);

    if (faulty && dropAny) {
        admissionView =
            std::make_unique<LayerCostTable::DegradedView>(table);
        deadMask.assign(nAcc, 0);
        bool dead_at_zero = false;
        for (std::size_t a = 0; a < nAcc; ++a) {
            const double fail = faults.permanentFailureCycle(a);
            if (fail <= 0.0) {
                deadMask[a] = 1;
                dead_at_zero = true;
            } else if (std::isfinite(fail)) {
                permFail.emplace_back(fail, a);
            }
        }
        if (dead_at_zero)
            admissionView->rebuild(deadMask);
        std::sort(permFail.begin(), permFail.end());
        if (doomDrop) {
            // The run view starts from the same dead-at-zero state
            // and is refreshed as the floor passes later onsets.
            runView = std::make_unique<LayerCostTable::DegradedView>(
                table);
            if (dead_at_zero)
                runView->rebuild(deadMask);
        }
    }
}

// ------------------------------------------------------------------
// Window / policy helpers
// ------------------------------------------------------------------

OnlineScheduler::Frame &
OnlineScheduler::frameAt(std::size_t idx)
{
    return win[idx - winBase];
}

const OnlineScheduler::Frame &
OnlineScheduler::frameAt(std::size_t idx) const
{
    return win[idx - winBase];
}

bool
OnlineScheduler::pending(const Frame &f) const
{
    return f.nextLayer < f.numLayers;
}

bool
OnlineScheduler::isReadyMember(std::size_t idx) const
{
    return idx != SIZE_MAX && idx >= winBase && frameAt(idx).member;
}

double
OnlineScheduler::keyOf(std::size_t idx) const
{
    const Frame &f = frameAt(idx);
    switch (policyKind) {
      case Policy::Fifo:
        return 0.0;
      case Policy::Edf:
        return f.deadline;
      case Policy::Lst:
        // The pristine table, even under faults — exactly LstPolicy.
        return f.deadline == workload::kNoDeadline
                   ? workload::kNoDeadline
                   : f.deadline -
                         table.remainingCycles(f.uid, f.nextLayer);
    }
    util::panic("unknown Policy");
}

void
OnlineScheduler::readyRelease(std::size_t idx)
{
    Frame &f = frameAt(idx);
    const double key = keyOf(idx);
    ready.emplace(key, idx);
    f.currentKey = key;
    f.member = true;
}

void
OnlineScheduler::readyRetire(std::size_t idx)
{
    Frame &f = frameAt(idx);
    if (!f.member)
        return;
    ready.erase(std::make_pair(f.currentKey, idx));
    f.member = false;
}

void
OnlineScheduler::readyRekey(std::size_t idx)
{
    Frame &f = frameAt(idx);
    if (!f.member)
        return;
    const double key = keyOf(idx);
    if (key == f.currentKey)
        return;
    ready.erase(std::make_pair(f.currentKey, idx));
    ready.emplace(key, idx);
    f.currentKey = key;
}

// ------------------------------------------------------------------
// Dispatch-loop helpers (ports of the offline lambdas; see
// herald_scheduler.cc for the full reasoning behind each rule)
// ------------------------------------------------------------------

double
OnlineScheduler::remCyclesRun(std::size_t uid,
                              std::size_t layer) const
{
    return runView ? runView->remainingCycles(uid, layer)
                   : activeTable->remainingCycles(uid, layer);
}

double
OnlineScheduler::minAvail() const
{
    const FaultTimeline &faults = opts.sched.faults;
    if (!faulty) {
        double lo = accAvail[0];
        for (std::size_t a = 1; a < nAcc; ++a)
            lo = std::min(lo, accAvail[a]);
        return lo;
    }
    double lo = kNeverCycle;
    for (std::size_t a = 0; a < nAcc; ++a)
        lo = std::min(lo, faults.nextAvailable(a, accAvail[a]));
    return lo;
}

double
OnlineScheduler::retirementFloor() const
{
    // minAvail() is a valid retirement floor but stalls whenever one
    // sub-accelerator sees little work: its idle availability pins
    // the minimum even though nothing can ever be placed that far in
    // the past. Tighten it with P, a lower bound on the start cycle
    // of every future entry: an admitted unfinished frame's next
    // layer starts at or after its readyTime, and a frame not yet
    // submitted arrives at or after the watermark (arrivals are
    // nondecreasing). planLayer() starts every placement at or after
    // max(availability, readyTime), so min over sub-accs of
    // max(nextAvailable, P) bounds every future start — and it keeps
    // advancing with the stream even on a lopsided accelerator mix.
    double p = draining ? kNeverCycle : std::max(watermark, 0.0);
    for (const Frame &f : win)
        if (!f.finished)
            p = std::min(p, f.readyTime);
    const FaultTimeline &faults = opts.sched.faults;
    double floor = kNeverCycle;
    for (std::size_t a = 0; a < nAcc; ++a) {
        const double avail =
            faulty ? faults.nextAvailable(a, accAvail[a])
                   : accAvail[a];
        floor = std::min(floor, std::max(avail, p));
    }
    return floor;
}

bool
OnlineScheduler::doomedNow(std::size_t idx, double now_floor) const
{
    const Frame &f = frameAt(idx);
    if (f.deadline == workload::kNoDeadline)
        return false;
    const double now = std::max(f.readyTime, now_floor);
    const double rem = remCyclesRun(f.uid, f.nextLayer);
    return now + rem > f.deadline + kEps;
}

void
OnlineScheduler::refreshDegraded(double floor)
{
    bool changed = false;
    while (nextFail < permFail.size() &&
           permFail[nextFail].first <= floor + kEps) {
        deadMask[permFail[nextFail].second] = 1;
        ++nextFail;
        changed = true;
    }
    if (!changed)
        return;
    runView->rebuild(deadMask);
    std::set<std::pair<double, std::size_t>> rekeyed;
    for (const auto &entry : doomSet) {
        const std::size_t idx = entry.second;
        Frame &f = frameAt(idx);
        f.doomKey =
            f.deadline - remCyclesRun(f.uid, f.nextLayer);
        rekeyed.emplace(f.doomKey, idx);
    }
    doomSet.swap(rekeyed);
}

void
OnlineScheduler::recordLatency(double latency)
{
    maxLatency = std::max(maxLatency, latency);
    std::size_t b = 0;
    if (latency > 0.0) {
        b = static_cast<std::size_t>(
            std::log2(1.0 + latency) * kLatScale);
        b = std::min(b, kLatBuckets - 1);
    }
    ++latHist[b];
}

void
OnlineScheduler::finishFrame(std::size_t idx)
{
    Frame &f = frameAt(idx);
    f.finished = true;
    --liveFrames;
    OnlineModelStats &ms = modelStats[f.modelIdx];
    ++ms.completed;
    recordLatency(f.readyTime - f.arrival);
    // Miss rule mirrors Schedule::computeSla: completion is the last
    // useful (non-killed) end, which is exactly readyTime here.
    if (f.deadline != workload::kNoDeadline &&
        f.readyTime > f.deadline + kEps)
        ++ms.deadlineMisses;
    if (f.hadKill)
        ++framesRescheduled;
}

void
OnlineScheduler::dropLive(std::size_t idx)
{
    Frame &f = frameAt(idx);
    if (opts.retainSchedule)
        sched.markDropped(idx);
    liveRemaining -= f.numLayers - f.nextLayer;
    f.numLayers = f.nextLayer; // pending() now false
    readyRetire(idx);
    if (doomDrop && f.inDoom) {
        doomSet.erase(std::make_pair(f.doomKey, idx));
        f.inDoom = false;
    }
    f.dropped = true;
    f.finished = true;
    --liveFrames;
    OnlineModelStats &ms = modelStats[f.modelIdx];
    ++ms.dropped;
    if (f.deadline != workload::kNoDeadline)
        ++ms.deadlineMisses;
    ++latInfCount;
    maxLatency = workload::kNoDeadline;
}

void
OnlineScheduler::releaseInst(std::size_t idx)
{
    Frame &f = frameAt(idx);
    if (!pending(f))
        return;
    readyRelease(idx);
    if (!doomDrop || f.deadline == workload::kNoDeadline)
        return;
    if (doomedNow(idx, minAvail())) {
        dropLive(idx);
        return;
    }
    f.doomKey = f.deadline - remCyclesRun(f.uid, f.nextLayer);
    doomSet.emplace(f.doomKey, idx);
    f.inDoom = true;
}

void
OnlineScheduler::releaseUpTo(double frontier)
{
    const std::size_t total = totalFrames();
    while (cursor < total) {
        const std::size_t idx = cursor;
        if (frameAt(idx).arrival > frontier + kEps)
            break;
        ++cursor;
        releaseInst(idx);
    }
}

void
OnlineScheduler::releaseWindow(double end)
{
    const std::size_t total = totalFrames();
    while (cursor < total) {
        const std::size_t idx = cursor;
        if (frameAt(idx).arrival >= end - kEps)
            break;
        ++cursor;
        releaseInst(idx);
    }
}

bool
OnlineScheduler::placeOn(std::size_t a, double earliest,
                         double base_cycles, double penalty,
                         double bytes, Plan &out) const
{
    const FaultTimeline &faults = opts.sched.faults;
    double s = earliest;
    for (;;) {
        const double avail = faults.nextAvailable(a, s);
        if (!std::isfinite(avail))
            return false; // dead from here on
        const double dur =
            base_cycles * faults.throttleFactorAt(a, avail) + penalty;
        const double fit = memory.firstFeasible(avail, dur, bytes);
        if (fit == avail) {
            out.start = fit;
            out.dur = dur;
            out.killAt = faults.nextOnset(a, fit);
            return true;
        }
        s = fit;
    }
}

OnlineScheduler::Plan
OnlineScheduler::planLayer(std::size_t inst) const
{
    const Frame &frame = frameAt(inst);
    const std::size_t row = frame.rowBase + frame.nextLayer;
    const std::size_t *order = activeTable->order(row);
    const FaultTimeline &faults = opts.sched.faults;

    if (faulty) {
        Plan plan;
        const double base_ready = frame.readyTime;
        auto usable = [&](std::size_t a) {
            return std::isfinite(faults.nextAvailable(
                a, std::max(base_ready, accAvail[a])));
        };
        std::size_t chosen = SIZE_MAX;
        for (std::size_t k = 0; k < nAcc; ++k) {
            if (usable(order[k])) {
                chosen = order[k];
                break;
            }
        }
        if (chosen == SIZE_MAX) {
            plan.feasible = false;
            return plan;
        }
        if (opts.sched.loadBalance && nAcc > 1) {
            const double best_metric =
                activeTable->metric(row, chosen);
            for (std::size_t k = 0; k < nAcc; ++k) {
                std::size_t a = order[k];
                if (!usable(a))
                    continue;
                if (activeTable->metric(row, a) >
                    best_metric * opts.sched.loadBalanceMaxDegradation)
                    break; // remaining candidates worse still
                double start = std::max(base_ready, accAvail[a]);
                double frontier =
                    start + activeTable->cost(row, a).cost.cycles;
                double max_f = frontier;
                double min_f = frontier;
                for (std::size_t b = 0; b < nAcc; ++b) {
                    if (b == a)
                        continue;
                    max_f = std::max(max_f, accAvail[b]);
                    min_f = std::min(min_f, accAvail[b]);
                }
                if (min_f > 0.0 &&
                    max_f <= opts.sched.loadBalanceFactor * min_f) {
                    chosen = a;
                    break;
                }
            }
        }
        auto try_acc = [&](std::size_t a) {
            const accel::StyledLayerCost &sc =
                activeTable->cost(row, a);
            Plan p;
            p.acc = a;
            if (opts.sched.contextChangeCycles > 0.0 &&
                accLastInstance[a] != SIZE_MAX &&
                accLastInstance[a] != inst)
                p.contextPenalty = opts.sched.contextChangeCycles;
            if (!placeOn(a, std::max(base_ready, accAvail[a]),
                         sc.cost.cycles, p.contextPenalty,
                         static_cast<double>(sc.cost.l2FootprintBytes),
                         p))
                return false;
            plan = p;
            return true;
        };
        if (try_acc(chosen))
            return plan;
        for (std::size_t k = 0; k < nAcc; ++k) {
            std::size_t a = order[k];
            if (a == chosen || !usable(a))
                continue;
            if (try_acc(a))
                return plan;
        }
        plan.feasible = false;
        return plan;
    }

    // Load-balancing feedback: demote overloading choices.
    std::size_t chosen = order[0];
    if (opts.sched.loadBalance && nAcc > 1) {
        const double best_metric = activeTable->metric(row, order[0]);
        for (std::size_t k = 0; k < nAcc; ++k) {
            std::size_t a = order[k];
            if (activeTable->metric(row, a) >
                best_metric * opts.sched.loadBalanceMaxDegradation) {
                break; // remaining candidates are worse still
            }
            double start = std::max(frame.readyTime, accAvail[a]);
            double frontier =
                start + activeTable->cost(row, a).cost.cycles;
            double max_f = frontier;
            double min_f = frontier;
            for (std::size_t b = 0; b < nAcc; ++b) {
                if (b == a)
                    continue;
                max_f = std::max(max_f, accAvail[b]);
                min_f = std::min(min_f, accAvail[b]);
            }
            if (min_f > 0.0 &&
                max_f <= opts.sched.loadBalanceFactor * min_f) {
                chosen = a;
                break;
            }
        }
    }

    Plan plan;
    plan.acc = chosen;
    const accel::StyledLayerCost &sc = activeTable->cost(row, chosen);
    plan.dur = sc.cost.cycles;
    if (opts.sched.contextChangeCycles > 0.0 &&
        accLastInstance[chosen] != SIZE_MAX &&
        accLastInstance[chosen] != inst) {
        plan.contextPenalty = opts.sched.contextChangeCycles;
        plan.dur += plan.contextPenalty;
    }
    double start = std::max(frame.readyTime, accAvail[chosen]);
    plan.start = memory.firstFeasible(
        start, plan.dur,
        static_cast<double>(sc.cost.l2FootprintBytes));
    return plan;
}

std::size_t
OnlineScheduler::selectReadyIdx() const
{
    if (ready.empty())
        return SIZE_MAX;
    auto first = ready.begin();
    if (hysteresis && isReadyMember(grant) &&
        first->first >=
            frameAt(grant).currentKey - opts.sched.lstHysteresisCycles)
        return grant;
    if (breadth) {
        auto it =
            ready.lower_bound(std::make_pair(first->first, rotate));
        if (it != ready.end() && it->first == first->first)
            return it->second;
    }
    return first->second;
}

std::size_t
OnlineScheduler::selectFutureIdx(bool &stall) const
{
    stall = false;
    const std::size_t total = totalFrames();
    std::size_t scan = cursor;
    while (scan < total && !pending(frameAt(scan)))
        ++scan;
    if (scan == total) {
        // No queued pending frame. Before drain that only means
        // "not submitted yet"; after drain it is a real invariant
        // violation (the caller checked liveRemaining > 0).
        if (!draining)
            stall = true;
        return SIZE_MAX;
    }
    const double m = frameAt(scan).arrival;

    // Exact-equal arrival band plus the epsilon-chained component it
    // heads. The offline fallback scans *all* pending futures, but
    // its winner provably lies inside (and depends only on) this
    // component: any frame past a > kEps arrival gap can never
    // displace a component member under the scan's tolerance rule.
    // Bounding the walk here is what makes the step incremental.
    std::vector<std::size_t> run;  // arrival == m exactly
    std::vector<std::size_t> comp; // epsilon-chained component
    bool near_tie = false;
    bool tie_known = false;
    double chain_end = m;
    for (std::size_t j = scan; j < total; ++j) {
        const Frame &f = frameAt(j);
        if (!pending(f))
            continue;
        if (f.arrival == m) {
            run.push_back(j);
            comp.push_back(j);
            continue;
        }
        if (!tie_known) {
            near_tie = f.arrival <= m + kEps;
            tie_known = true;
        }
        if (f.arrival <= chain_end + kEps) {
            comp.push_back(j);
            chain_end = f.arrival;
        } else {
            break;
        }
    }

    // Watermark gate: a not-yet-submitted frame (arrival >= the
    // watermark) could still join the band, flip the near-tie, or
    // extend the component — the decision is only closed once the
    // watermark has passed the component by more than the tolerance.
    if (!draining && !(watermark > chain_end + kEps)) {
        stall = true;
        return SIZE_MAX;
    }

    if (near_tie) {
        // Reference epsilon-tolerant scan, restricted to the
        // component, rotated at the round-robin cursor.
        std::size_t inst = SIZE_MAX;
        double best_arrival = workload::kNoDeadline;
        double best_key = workload::kNoDeadline;
        auto consider = [&](std::size_t cand) {
            const Frame &cf = frameAt(cand);
            const double key = keyOf(cand);
            bool better =
                inst == SIZE_MAX ||
                cf.arrival < best_arrival - kEps ||
                (std::abs(cf.arrival - best_arrival) <= kEps &&
                 key < best_key);
            if (better) {
                inst = cand;
                best_arrival = cf.arrival;
                best_key = key;
            }
        };
        auto split =
            std::lower_bound(comp.begin(), comp.end(),
                             breadth ? rotate : std::size_t{0});
        for (auto it = split; it != comp.end(); ++it)
            consider(*it);
        for (auto it = comp.begin(); it != split; ++it)
            consider(*it);
        return inst;
    }

    // Rotated visit order over the ascending run; keep the lowest
    // key, first seen wins ties (SelectionPolicy::selectFromRun).
    std::size_t start_pos = 0;
    if (breadth) {
        start_pos = static_cast<std::size_t>(
            std::lower_bound(run.begin(), run.end(), rotate) -
            run.begin());
        if (start_pos == run.size())
            start_pos = 0;
    }
    std::size_t best = SIZE_MAX;
    double best_key = 0.0;
    for (std::size_t k = 0; k < run.size(); ++k) {
        const std::size_t cand = run[(start_pos + k) % run.size()];
        const double key = keyOf(cand);
        if (best == SIZE_MAX || key < best_key) {
            best = cand;
            best_key = key;
        }
    }
    return best;
}

bool
OnlineScheduler::urgentExists(double end, double threshold) const
{
    const std::size_t total = totalFrames();
    for (std::size_t j = cursor; j < total; ++j) {
        const Frame &f = frameAt(j);
        if (f.arrival >= end - kEps)
            break;
        if (pending(f) && keyOf(j) < threshold)
            return true;
    }
    return false;
}

void
OnlineScheduler::commit(std::size_t inst, const Plan &plan)
{
    Frame &f = frameAt(inst);
    const std::size_t layer_idx = f.nextLayer;
    const std::size_t row = f.rowBase + layer_idx;
    const accel::StyledLayerCost &sc =
        activeTable->cost(row, plan.acc);
    const bool killed =
        faulty && plan.killAt < plan.start + plan.dur - kEps;
    memory.add(plan.start,
               killed ? plan.killAt - plan.start : plan.dur,
               static_cast<double>(sc.cost.l2FootprintBytes));

    ScheduledLayer entry;
    entry.instanceIdx = inst;
    entry.layerIdx = layer_idx;
    entry.accIdx = plan.acc;
    entry.style = sc.style;
    entry.startCycle = plan.start;
    entry.endCycle = killed ? plan.killAt : plan.start + plan.dur;
    entry.energyUnits = sc.cost.energyUnits;
    if (killed) {
        entry.energyUnits *= (plan.killAt - plan.start) / plan.dur;
    }
    entry.l2FootprintBytes = sc.cost.l2FootprintBytes;
    entry.contextPenaltyCycles = plan.contextPenalty;
    entry.faultKilled = killed;
    sched.add(entry);
    ++committedLayers;
    if (killed) {
        ++faultKilledLayers;
        f.hadKill = true;
    }

    f.readyTime = entry.endCycle;
    f.lastEnd = entry.endCycle;
    accAvail[plan.acc] = entry.endCycle;
    releaseFrontier = std::max(releaseFrontier, entry.endCycle);
    accLastInstance[plan.acc] = inst;
    if (!killed) {
        ++f.nextLayer;
        --liveRemaining;
    }
    // Never wrapped: every lookup is a lower_bound over live indices,
    // where "past the end" and "index 0" pick the same element.
    rotate = inst + 1;
    grant = inst;

    if (pending(f)) {
        if (!killed && policyKind == Policy::Lst)
            readyRekey(inst); // LstPolicy::onLayerScheduled
        if (doomDrop && f.inDoom) {
            if (doomedNow(inst, minAvail())) {
                dropLive(inst);
            } else if (!killed) {
                doomSet.erase(std::make_pair(f.doomKey, inst));
                f.doomKey =
                    f.deadline - remCyclesRun(f.uid, f.nextLayer);
                doomSet.emplace(f.doomKey, inst);
            }
        }
    } else {
        readyRetire(inst);
        if (doomDrop && f.inDoom) {
            doomSet.erase(std::make_pair(f.doomKey, inst));
            f.inDoom = false;
        }
        finishFrame(inst);
    }
    releaseUpTo(releaseFrontier);

    if (doomDrop) {
        const double floor = minAvail();
        if (runView)
            refreshDegraded(floor);
        while (!doomSet.empty() &&
               doomSet.begin()->first < floor - kEps) {
            dropLive(doomSet.begin()->second);
        }
    }

    // Elastic repartitioning rides the committed-layer sequence (see
    // maybeReconfigure and the reconfigPending doc): the decision is
    // transitively watermark-gated because this commit was, and it
    // reads only committed state — later submissions can never
    // retroactively change it.
    if (reconfig)
        reconfigPending = true;

    if (++commitsSinceMaintenance >= opts.maintenancePeriod)
        maintenance();
}

// Port of the offline maybe_reconfigure lambda (herald_scheduler.cc)
// — evaluated at most once per committed layer, so migrations are
// separated by at least one unit of real progress and the stream
// cannot livelock on back-to-back reconfigurations.
void
OnlineScheduler::maybeReconfigure()
{
    const ReconfigDecision d =
        reconfigPolicy->evaluate(accAvail, peSplit);
    if (!d.migrate)
        return;
    const accel::Accelerator &cur = epochAcc ? *epochAcc : *baseAcc;
    const accel::PartitionEpoch epoch =
        planMigrationEpoch(cur, d, nextEpochId++);
    const double window_start =
        std::max(accAvail[d.donor], accAvail[d.receiver]);
    const double window_end =
        window_start + opts.sched.reconfig.penaltyCycles(d.movedPes);
    epochAcc =
        std::make_unique<accel::Accelerator>(cur.withPartition(epoch));
    peSplit = epoch.peSplit;

    if (!epochTable)
        epochTable = std::make_unique<LayerCostTable>(table);
    epochTable->rebuildColumns(
        *reconfigCostModel, templateWl, *epochAcc, opts.sched.metric,
        opts.sched.rdaOverheads,
        {std::min(d.donor, d.receiver),
         std::max(d.donor, d.receiver)},
        opts.sched.prefillThreads);
    activeTable = epochTable.get();

    // The run-time feasibility proofs read remaining-work bounds off
    // the active table — rebuild them against the new epoch. The
    // admission view stays frozen on the pristine table, exactly
    // like the offline pre-pass.
    if (runView) {
        runView = std::make_unique<LayerCostTable::DegradedView>(
            *activeTable);
        bool any_dead = false;
        for (char dm : deadMask)
            any_dead = any_dead || dm != 0;
        if (any_dead)
            runView->rebuild(deadMask);
    }
    if (doomDrop) {
        std::set<std::pair<double, std::size_t>> rekeyed;
        for (const auto &entry : doomSet) {
            const std::size_t idx = entry.second;
            Frame &f = frameAt(idx);
            f.doomKey =
                f.deadline - remCyclesRun(f.uid, f.nextLayer);
            rekeyed.emplace(f.doomKey, idx);
        }
        doomSet.swap(rekeyed);
    }

    accAvail[d.donor] = window_end;
    accAvail[d.receiver] = window_end;
    releaseFrontier = std::max(releaseFrontier, window_end);

    ReconfigEvent ev;
    ev.epochId = epoch.epochId;
    ev.donor = d.donor;
    ev.receiver = d.receiver;
    ev.movedPes = d.movedPes;
    ev.startCycle = window_start;
    ev.endCycle = window_end;
    ev.peSplit = epoch.peSplit;
    sched.addReconfig(ev);
    reconfigPolicy->onMigration(window_end);
    releaseUpTo(releaseFrontier);
}

bool
OnlineScheduler::tryStep()
{
    for (;;) {
        if (liveRemaining == 0)
            return false;
        // Deferred reconfig evaluation (see reconfigPending): runs
        // before the next selection, on exactly the committed state
        // the offline hook saw right after the matching commit.
        if (reconfigPending) {
            reconfigPending = false;
            maybeReconfigure();
        }
        if (selInst == SIZE_MAX) {
            // Release-frontier gate: an unsubmitted frame arriving
            // at or before the frontier would belong in the ready
            // set this selection reads.
            if (!draining && !(watermark > releaseFrontier + kEps))
                return false;
            std::size_t inst = selectReadyIdx();
            if (inst == SIZE_MAX) {
                bool stall = false;
                inst = selectFutureIdx(stall);
                if (stall)
                    return false;
                if (inst == SIZE_MAX)
                    util::panic("online scheduler: no instance with "
                                "pending layers");
            }
            selInst = inst;
        }
        // The plan is pure (it reads only committed state), so it is
        // recomputed — never stored — across pauses.
        Plan plan = planLayer(selInst);
        if (faulty && !plan.feasible) {
            // No usable sub-accelerator left: graceful degradation.
            dropLive(selInst);
            selInst = SIZE_MAX;
            continue;
        }
        if (preempt) {
            const double end =
                std::min(plan.start + plan.dur, plan.killAt);
            // Preemption-window gate: urgency is judged against
            // every arrival before `end`, submitted or not.
            if (!draining && !(watermark >= end - kEps))
                return false;
            double threshold = keyOf(selInst);
            if (hysteresis && selInst == grant)
                threshold -= opts.sched.lstHysteresisCycles;
            if (urgentExists(end, threshold)) {
                releaseWindow(end);
                selInst = SIZE_MAX;
                continue;
            }
        }
        commit(selInst, plan);
        selInst = SIZE_MAX;
        return true;
    }
}

void
OnlineScheduler::pump()
{
    while (tryStep()) {
    }
}

// ------------------------------------------------------------------
// Retirement + watchdog
// ------------------------------------------------------------------

void
OnlineScheduler::maintenance()
{
    commitsSinceMaintenance = 0;
    const double floor = retirementFloor();
    if (floor < retireFloor)
        util::panic("online watchdog: retirement floor moved "
                    "backwards (", floor, " < ", retireFloor, ")");
    retireFloor = floor;
    if (ready.size() > liveFrames)
        util::panic("online watchdog: ready set (", ready.size(),
                    ") exceeds live frames (", liveFrames, ")");
    if (opts.retainSchedule)
        return;

    const FaultTimeline &faults = opts.sched.faults;
    sched.retireEntriesBefore(floor, [&](const ScheduledLayer &e) {
        // Audit history as it is forgotten: a violation here means
        // the rolling counters would silently absorb a corrupt
        // schedule, so fail loudly instead.
        if (e.instanceIdx < winBase)
            util::panic("online watchdog: retired entry references "
                        "an already-popped frame ", e.instanceIdx);
        const Frame &f = frameAt(e.instanceIdx);
        if (e.startCycle < f.arrival - kEps)
            util::panic("online watchdog: retired entry of frame ",
                        e.instanceIdx, " starts ", e.startCycle,
                        " before its arrival ", f.arrival);
        if (e.startCycle < lastRetiredEnd[e.accIdx] - kEps)
            util::panic("online watchdog: retired entries overlap "
                        "on sub-accelerator ", e.accIdx, " at ",
                        e.startCycle);
        if (faulty) {
            if (e.faultKilled) {
                if (!faults.isFaultOnset(e.accIdx, e.endCycle))
                    util::panic("online watchdog: fault-killed entry "
                                "ends at ", e.endCycle, ", not at an "
                                "onset on sub-accelerator ",
                                e.accIdx);
            } else if (!faults.windowAvailable(e.accIdx, e.startCycle,
                                               e.duration())) {
                util::panic("online watchdog: retired entry overlaps "
                            "an unavailable window on "
                            "sub-accelerator ", e.accIdx);
            }
        }
        lastRetiredEnd[e.accIdx] =
            std::max(lastRetiredEnd[e.accIdx], e.endCycle);
    });
    memory.retireBefore(floor);

    // Pop finished frames off the window front once their entries
    // are retired (every committed end <= floor, handled just
    // above). A popped frame may sit ahead of the release cursor —
    // admission drops during a commit-free stretch never get
    // released — but releasing a finished frame is a no-op, so the
    // cursor and the horizon scan just fast-forward past the popped
    // prefix instead of indexing below the window base.
    while (!win.empty() && win.front().finished &&
           win.front().lastEnd <= floor) {
        win.pop_front();
        ++winBase;
    }
    cursor = std::max(cursor, winBase);
    liveScan = std::max(liveScan, winBase);
}

// ------------------------------------------------------------------
// Public API
// ------------------------------------------------------------------

SubmitResult
OnlineScheduler::submit(std::size_t model_idx, double arrival_cycle,
                        double deadline_cycle)
{
    if (draining)
        util::fatal("online scheduler: submit after drain");
    if (model_idx >= nModels)
        util::fatal("online scheduler: model index ", model_idx,
                    " out of range (", nModels, " models)");
    if (!std::isfinite(arrival_cycle) || arrival_cycle < 0.0)
        util::fatal("online scheduler: arrival must be finite and "
                    ">= 0, got ", arrival_cycle);
    if (arrival_cycle < lastArrival)
        util::fatal("online scheduler: arrivals must be "
                    "nondecreasing, got ", arrival_cycle, " after ",
                    lastArrival);
    if (!(arrival_cycle <= workload::kMaxCycle))
        util::fatal("online scheduler: arrival exceeds the ",
                    workload::kMaxCycle, "-cycle limit, got ",
                    arrival_cycle);
    const bool has_deadline =
        deadline_cycle != workload::kNoDeadline;
    if (has_deadline &&
        (!std::isfinite(deadline_cycle) ||
         deadline_cycle < arrival_cycle ||
         deadline_cycle > workload::kMaxCycle))
        util::fatal("online scheduler: deadline must be "
                    "kNoDeadline or a finite cycle in [arrival, ",
                    workload::kMaxCycle, "], got ", deadline_cycle);
    lastArrival = arrival_cycle;

    OnlineModelStats &ms = modelStats[model_idx];
    ++ms.submitted;

    // The watermark advances on every validated submission, accepted
    // or not: even a rejected frame proves no earlier arrival can
    // ever appear (arrivals are nondecreasing), which is exactly the
    // information the dispatch gates wait on. Freezing it on
    // rejection would livelock an overloaded server — nothing
    // commits, the oldest live frame never finishes, and the horizon
    // check rejects everything until drain. Pump before deciding
    // admission so the backpressure counters see the frames this
    // very submission just allowed to finish.
    watermark = arrival_cycle;
    pump();

    // --- Deterministic backpressure (mutates nothing but the
    // rejection counters, so reruns reject the same frames) ---
    if (liveFrames >= opts.maxLiveFrames) {
        ++ms.rejected;
        return SubmitResult::RejectedQueueFull;
    }
    if (std::isfinite(opts.horizonCycles)) {
        while (liveScan < totalFrames() &&
               frameAt(liveScan).finished)
            ++liveScan;
        if (liveScan < totalFrames() &&
            arrival_cycle - frameAt(liveScan).arrival >
                opts.horizonCycles) {
            ++ms.rejected;
            return SubmitResult::RejectedHorizon;
        }
    }

    // --- Admission ---
    const std::size_t idx = totalFrames();
    Frame f;
    f.modelIdx = model_idx;
    f.uid = uidOf[model_idx];
    f.rowBase = rowBaseOf[model_idx];
    f.arrival = arrival_cycle;
    f.deadline = has_deadline ? deadline_cycle
                              : workload::kNoDeadline;
    f.numLayers = layersOf[model_idx];
    f.readyTime = arrival_cycle;
    ++ms.admitted;
    if (has_deadline)
        ++ms.framesWithDeadline;

    // Hopeless-frame admission proof (herald_scheduler.cc pre-pass),
    // against the dead-at-cycle-0 degraded view — mid-run failures
    // are doom-sweep business, not admission business.
    bool hopeless = false;
    if (dropAny && has_deadline) {
        const double optimistic =
            admissionView ? admissionView->remainingCycles(f.uid, 0)
                          : table.remainingCycles(f.uid, 0);
        hopeless =
            f.deadline - f.arrival - optimistic < -kEps;
    }
    if (hopeless) {
        f.numLayers = 0;
        f.dropped = true;
        f.finished = true;
        win.push_back(f);
        if (opts.retainSchedule)
            sched.markDropped(idx);
        ++ms.dropped;
        ++ms.deadlineMisses;
        ++latInfCount;
        maxLatency = workload::kNoDeadline;
        releaseUpTo(releaseFrontier); // sweep the cursor past it
        pump();
        // Admission drops commit nothing, so they must count toward
        // maintenance themselves: a flood of hopeless frames would
        // otherwise grow the window without ever popping it.
        if (++commitsSinceMaintenance >= opts.maintenancePeriod)
            maintenance();
        return SubmitResult::Dropped;
    }

    win.push_back(f);
    ++liveFrames;
    liveRemaining += f.numLayers;
    releaseUpTo(releaseFrontier);
    pump();
    return SubmitResult::Accepted;
}

void
OnlineScheduler::drain()
{
    if (draining)
        return;
    draining = true;
    pump();
    if (liveRemaining != 0)
        util::panic("online scheduler: drain left ", liveRemaining,
                    " layers pending");
    maintenance();
}

const Schedule &
OnlineScheduler::schedule() const
{
    if (!opts.retainSchedule)
        util::fatal("online scheduler: schedule() requires "
                    "retainSchedule — the serving engine retires "
                    "history; read stats() instead");
    return sched;
}

double
OnlineScheduler::latencyPercentile(double q) const
{
    std::uint64_t finite = 0;
    for (std::uint64_t c : latHist)
        finite += c;
    const std::uint64_t n = finite + latInfCount;
    if (n == 0)
        return 0.0;
    // Nearest-rank, like Schedule::computeSla; dropped frames sit at
    // +infinity past every histogram bucket.
    std::uint64_t r = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(n)));
    if (r == 0)
        r = 1;
    if (r > finite)
        return workload::kNoDeadline;
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < latHist.size(); ++b) {
        cum += latHist[b];
        if (cum >= r)
            return std::exp2(static_cast<double>(b + 1) / kLatScale) -
                   1.0;
    }
    return maxLatency; // unreachable: r <= finite
}

OnlineStats
OnlineScheduler::stats() const
{
    OnlineStats s;
    for (const OnlineModelStats &ms : modelStats) {
        s.submittedFrames += ms.submitted;
        s.rejectedFrames += ms.rejected;
        s.admittedFrames += ms.admitted;
        s.framesWithDeadline += ms.framesWithDeadline;
        s.completedFrames += ms.completed;
        s.droppedFrames += ms.dropped;
        s.deadlineMisses += ms.deadlineMisses;
    }
    s.liveFrames = liveFrames;
    if (s.framesWithDeadline > 0) {
        s.missRate = static_cast<double>(s.deadlineMisses) /
                     static_cast<double>(s.framesWithDeadline);
    }
    s.committedLayers = committedLayers;
    s.faultKilledLayers = faultKilledLayers;
    s.framesRescheduled = framesRescheduled;
    s.p50LatencyCycles = latencyPercentile(0.50);
    s.p99LatencyCycles = latencyPercentile(0.99);
    s.p999LatencyCycles = latencyPercentile(0.999);
    s.maxLatencyCycles = maxLatency;
    s.windowFrames = win.size();
    s.readyFrames = ready.size();
    s.liveEntries = sched.entries().size();
    s.liveIntervals = memory.liveIntervals();
    s.retiredEntries = sched.retiredEntries();
    s.watermarkCycle = watermark < 0.0 ? 0.0 : watermark;
    s.retireFloorCycle = retireFloor;
    s.perModel = modelStats;
    return s;
}

} // namespace herald::sched
