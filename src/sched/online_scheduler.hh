/**
 * @file
 * Online serving engine: overload-safe incremental scheduling over an
 * unbounded frame stream with bounded memory.
 *
 * HeraldScheduler::schedule() is an offline batch oracle — it needs
 * every frame up front and keeps the whole schedule alive. A serving
 * scenario has neither luxury: frames arrive forever, and a
 * million-frame soak must run in flat memory. OnlineScheduler is the
 * same dispatch loop re-cut as an incremental state machine:
 *
 * - submit() admits one frame (nondecreasing arrivals) and advances
 *   the scheduler as far as the *watermark* — the latest submitted
 *   arrival — provably allows. Every dispatch decision of the offline
 *   loop depends on future arrivals only through sharp, checkable
 *   gates (release frontier, arrival tie bands, preemption windows);
 *   the online loop pauses at a gate the watermark has not passed and
 *   resumes when it has. drain() declares the stream over (watermark
 *   = +infinity) and runs the loop dry.
 * - Committed history is retired incrementally: once the *retirement
 *   floor* — the earliest cycle any usable sub-accelerator frees up —
 *   passes an entry's end, the entry can never influence another
 *   dispatch decision, so it is folded into compact aggregates
 *   (Schedule::retireEntriesBefore, MemoryTracker::retireBefore) and
 *   its frame's state is popped from the sliding window. Live state
 *   is O(in-flight frames), not O(stream length).
 * - Overload is handled by deterministic backpressure at admission
 *   (reject when too many frames are live or the arrival span exceeds
 *   the horizon) on top of the drop policies' hopeless/doomed
 *   shedding, which are re-proved incrementally with the exact
 *   offline rules.
 * - An internal watchdog audits every retirement batch (monotone
 *   floor, per-sub-accelerator non-overlap, arrival causality, fault
 *   consistency, bounded ready set) and panics on the first
 *   violation instead of silently corrupting rolling counters.
 *
 * Equivalence guarantee (asserted by tests/test_online.cc): on any
 * finite workload, submitting every frame in arrival order and
 * draining yields — in retainSchedule mode — a Schedule bit-identical
 * to HeraldScheduler's on the materialized workload, across the full
 * policy x drop x preemption x fault grid (post-processing excluded:
 * idle-time elimination is offline-only by nature).
 */

#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "cost/cost_model.hh"
#include "dnn/model.hh"
#include "sched/herald_scheduler.hh"
#include "sched/layer_cost_table.hh"
#include "sched/memory_tracker.hh"
#include "sched/schedule.hh"
#include "workload/workload.hh"

namespace herald::sched
{

/** Knobs of the online serving engine. */
struct OnlineOptions
{
    OnlineOptions() { sched.postProcess = false; }

    /**
     * Dispatch-loop options (policy, drop policy, preemption, faults,
     * ...). postProcess must stay false: idle-time elimination
     * rewrites the whole schedule and cannot run on a stream.
     */
    SchedulerOptions sched;

    /**
     * Admission bound on simultaneously live (admitted, unfinished)
     * frames; submit() returns RejectedQueueFull beyond it. The
     * primary backpressure valve — it directly bounds the scheduler's
     * live state.
     */
    std::size_t maxLiveFrames = std::size_t{1} << 20;

    /**
     * Admission bound on the arrival span: a frame arriving more than
     * this many cycles after the oldest live frame is rejected
     * (RejectedHorizon) — an overloaded server must not keep
     * admitting work that queues behind an ever-growing backlog.
     * +infinity (the default) disables the bound.
     */
    double horizonCycles = std::numeric_limits<double>::infinity();

    /**
     * Run retirement + watchdog every this many layer commits (and
     * once at drain()). Smaller periods bound live state tighter and
     * audit more often at slightly more bookkeeping per commit.
     */
    std::size_t maintenancePeriod = 1024;

    /**
     * Keep the full Schedule (and per-frame drop marks) instead of
     * retiring history — memory grows with the stream, but schedule()
     * / validate() / computeSla() work. For equivalence tests and
     * short diagnostic runs, not for serving. Required when
     * sched.reconfig is enabled: reconfiguration events are recorded
     * on the Schedule and the bit-identity contract against the
     * offline scheduler is meaningless with history retired.
     */
    bool retainSchedule = false;

    /** Reject contradictory combinations up front (util::fatal). */
    void validate() const;
};

/** Outcome of OnlineScheduler::submit(). */
enum class SubmitResult
{
    Accepted, //!< admitted; will be scheduled (or shed if doomed later)
    Dropped,  //!< admitted but provably hopeless — shed immediately
    RejectedQueueFull, //!< backpressure: maxLiveFrames live frames
    RejectedHorizon,   //!< backpressure: arrival span > horizonCycles
};

const char *toString(SubmitResult result);

/** Rolling per-model serving counters. */
struct OnlineModelStats
{
    std::uint64_t submitted = 0; //!< admitted + rejected
    std::uint64_t rejected = 0;  //!< backpressure rejections
    std::uint64_t admitted = 0;
    std::uint64_t framesWithDeadline = 0; //!< admitted subset
    std::uint64_t completed = 0; //!< ran every layer to the end
    std::uint64_t dropped = 0;   //!< shed (hopeless/doomed/no capacity)
    std::uint64_t deadlineMisses = 0; //!< incl. dropped, like SlaStats
};

/**
 * Rolling serving statistics. Counter semantics mirror
 * Schedule::computeSla() exactly (a drained run's totals match the
 * offline oracle's); the latency percentiles come from a log-spaced
 * histogram, so they are upper edges of ~4%-wide buckets rather than
 * exact order statistics — dropped frames count as +infinity, and
 * frames still in flight are not counted yet.
 */
struct OnlineStats
{
    std::uint64_t submittedFrames = 0;
    std::uint64_t rejectedFrames = 0;
    std::uint64_t admittedFrames = 0;
    std::uint64_t framesWithDeadline = 0;
    std::uint64_t completedFrames = 0;
    std::uint64_t droppedFrames = 0;
    std::uint64_t deadlineMisses = 0;
    std::uint64_t liveFrames = 0; //!< admitted, not yet finished
    double missRate = 0.0; //!< misses / framesWithDeadline (0 if none)

    std::uint64_t committedLayers = 0; //!< incl. fault-killed
    std::uint64_t faultKilledLayers = 0;
    std::uint64_t framesRescheduled = 0;

    double p50LatencyCycles = 0.0;
    double p99LatencyCycles = 0.0;
    double p999LatencyCycles = 0.0;
    double maxLatencyCycles = 0.0; //!< exact; +inf once any drop

    // Live-state gauges (the soak bench asserts these stay bounded).
    std::uint64_t windowFrames = 0;   //!< frame states held
    std::uint64_t readyFrames = 0;    //!< ready-set size
    std::uint64_t liveEntries = 0;    //!< un-retired schedule entries
    std::uint64_t liveIntervals = 0;  //!< un-retired memory intervals
    std::uint64_t retiredEntries = 0; //!< total retired so far
    double watermarkCycle = 0.0;
    double retireFloorCycle = 0.0;

    std::vector<OnlineModelStats> perModel; //!< by model index
};

/** See file comment. */
class OnlineScheduler
{
  public:
    /**
     * Bind the engine to a model set and accelerator: builds the
     * LayerCostTable once (all streams share it). @p models is the
     * closed set submit() may reference by index — typically
     * ArrivalSource::models(). @p acc is only read during
     * construction (a copy is kept when elastic repartitioning is
     * enabled, since migrations derive new epochs from it).
     */
    OnlineScheduler(cost::CostModel &cost_model,
                    const std::vector<dnn::Model> &models,
                    const accel::Accelerator &acc,
                    OnlineOptions options = OnlineOptions{});

    /**
     * Submit one frame of @p model_idx arriving at @p arrival_cycle
     * with absolute deadline @p deadline_cycle (workload::kNoDeadline
     * for none). Arrivals must be nondecreasing across submissions —
     * the stream is a timeline, not a bag. Admission order:
     * backpressure rejections first (mutating nothing but the
     * rejection counters — deterministic across reruns), then the
     * hopeless-frame admission proof (Dropped), then scheduling as
     * far as the new watermark allows. Never blocks, never throws on
     * overload; throws only on caller errors (bad index,
     * non-monotone or non-finite arrival, submit after drain).
     */
    // The degraded views point into the member cost table.
    OnlineScheduler(const OnlineScheduler &) = delete;
    OnlineScheduler &operator=(const OnlineScheduler &) = delete;

    SubmitResult submit(std::size_t model_idx, double arrival_cycle,
                        double deadline_cycle = workload::kNoDeadline);

    /**
     * Declare the stream finished and run the dispatch loop dry:
     * every admitted frame completes or is shed, a final maintenance
     * pass retires/audits the tail, and stats() becomes the run's
     * final accounting. Idempotent; submit() afterwards is fatal.
     */
    void drain();

    /** Rolling counters; callable at any point in the stream. */
    OnlineStats stats() const;

    /**
     * The full schedule (retainSchedule mode only — fatal otherwise):
     * bit-identical to the offline HeraldScheduler's on the
     * materialized workload once drained.
     */
    const Schedule &schedule() const;

    const OnlineOptions &options() const { return opts; }

  private:
    /** Per-frame live state (sliding window, global index order). */
    struct Frame
    {
        std::size_t modelIdx = 0;
        std::size_t uid = 0;     //!< unique-model id (cost table)
        std::size_t rowBase = 0; //!< table row of layer 0
        double arrival = 0.0;
        double deadline = workload::kNoDeadline;
        std::size_t nextLayer = 0;
        std::size_t numLayers = 0; //!< shrunk to nextLayer on drop
        double readyTime = 0.0;    //!< dependence-chain frontier
        double lastEnd = 0.0;      //!< latest committed end cycle
        double currentKey = 0.0;   //!< ready-set key at insertion
        double doomKey = 0.0;
        bool member = false; //!< in the ready set
        bool inDoom = false; //!< in the doom set
        bool dropped = false;
        bool hadKill = false;  //!< lost >= 1 layer to a fault onset
        bool finished = false; //!< completed or dropped
    };

    /** Tentative layer plan (mirrors the offline dispatch loop). */
    struct Plan
    {
        std::size_t acc = 0;
        double start = 0.0;
        double dur = 0.0;
        double contextPenalty = 0.0;
        bool feasible = true;
        double killAt = kNeverCycle;
    };

    // --- Configuration (fixed at construction) ---
    OnlineOptions opts;
    workload::Workload templateWl; //!< one instance per model
    LayerCostTable table;
    /**
     * The table the dispatch path reads. Points at `table` until the
     * first migration, then at `epochTable` (a copy with only the
     * affected columns re-prefilled) — so Reconfig::Off takes exactly
     * the historical reads. LstPolicy keys and the admission proof
     * deliberately stay on the pristine `table` (see
     * herald_scheduler.cc).
     */
    const LayerCostTable *activeTable = nullptr;
    std::size_t nAcc = 0;
    std::size_t nModels = 0;
    std::vector<std::size_t> uidOf;     //!< per model
    std::vector<std::size_t> rowBaseOf; //!< per model
    std::vector<std::size_t> layersOf;  //!< per model
    bool breadth = false;
    bool preempt = false;
    bool doomDrop = false;
    bool dropAny = false;
    bool hysteresis = false;
    bool faulty = false;
    Policy policyKind = Policy::Fifo;

    // Degraded-capacity views (see herald_scheduler.cc). The
    // admission view is frozen at the dead-at-cycle-0 mask — the
    // offline pre-pass runs before any mid-run failure is folded in,
    // and admissions happen throughout the online run, so they must
    // not see later refreshes. The run view evolves with the
    // availability floor and backs the doom re-proofs.
    std::unique_ptr<LayerCostTable::DegradedView> admissionView;
    std::unique_ptr<LayerCostTable::DegradedView> runView;
    std::vector<char> deadMask;
    std::vector<std::pair<double, std::size_t>> permFail; //!< sorted
    std::size_t nextFail = 0;

    // --- Elastic repartitioning state (sched/reconfig.hh) ---
    // The cost model and base accelerator are only retained when the
    // policy is enabled; Reconfig::Off leaves all of this inert and
    // the engine bit-identical to the frozen-partition scheduler.
    bool reconfig = false;
    cost::CostModel *reconfigCostModel = nullptr;
    std::unique_ptr<accel::Accelerator> baseAcc;
    std::unique_ptr<accel::Accelerator> epochAcc;
    std::unique_ptr<LayerCostTable> epochTable;
    std::unique_ptr<ReconfigPolicy> reconfigPolicy;
    std::vector<std::uint64_t> peSplit;
    std::uint64_t nextEpochId = 0;
    /**
     * Set by commit(), consumed by the next tryStep(): the offline
     * loop evaluates the reconfig hook right after every commit, but
     * gated on work remaining in the *whole* workload — which the
     * online engine cannot know mid-stream. Deferring the evaluation
     * to the next step (which only runs with live work) replays the
     * identical evaluation sequence: nothing between an offline
     * commit and the next selection touches the state the policy
     * reads (committed frontiers and the PE split).
     */
    bool reconfigPending = false;

    // --- Sliding frame window ---
    std::deque<Frame> win;
    std::size_t winBase = 0; //!< global index of win.front()

    // --- Dispatch-loop state (ports of the offline locals) ---
    MemoryTracker memory;
    Schedule sched;
    std::vector<double> accAvail;
    std::vector<std::size_t> accLastInstance; //!< global frame idx
    std::set<std::pair<double, std::size_t>> ready;
    std::set<std::pair<double, std::size_t>> doomSet;
    std::size_t cursor = 0; //!< global idx of first unreleased frame
    std::size_t rotate = 0; //!< breadth-first cursor (never wrapped)
    std::size_t grant = SIZE_MAX;   //!< hysteresis grant holder
    std::size_t selInst = SIZE_MAX; //!< resumable selection state
    double releaseFrontier = 0.0;
    std::uint64_t liveRemaining = 0; //!< pending layers, live frames

    // --- Stream state ---
    double watermark = -1.0; //!< latest admitted arrival
    double lastArrival = 0.0;
    bool draining = false;
    std::size_t liveScan = 0; //!< oldest-live probe (backpressure)

    // --- Maintenance / watchdog ---
    std::size_t commitsSinceMaintenance = 0;
    double retireFloor = 0.0;
    std::vector<double> lastRetiredEnd; //!< per sub-accelerator

    // --- Rolling SLA accumulators ---
    std::vector<OnlineModelStats> modelStats;
    std::uint64_t liveFrames = 0;
    std::uint64_t committedLayers = 0;
    std::uint64_t faultKilledLayers = 0;
    std::uint64_t framesRescheduled = 0;
    std::vector<std::uint64_t> latHist; //!< log-spaced buckets
    std::uint64_t latInfCount = 0;      //!< dropped frames
    double maxLatency = 0.0;

    // --- Window / policy helpers ---
    Frame &frameAt(std::size_t idx);
    const Frame &frameAt(std::size_t idx) const;
    std::size_t totalFrames() const { return winBase + win.size(); }
    bool pending(const Frame &f) const;
    bool isReadyMember(std::size_t idx) const;
    double keyOf(std::size_t idx) const;
    void readyRelease(std::size_t idx);
    void readyRetire(std::size_t idx);
    void readyRekey(std::size_t idx);

    // --- Dispatch-loop helpers (offline ports) ---
    double remCyclesRun(std::size_t uid, std::size_t layer) const;
    double minAvail() const;
    double retirementFloor() const;
    bool doomedNow(std::size_t idx, double now_floor) const;
    void refreshDegraded(double floor);
    void dropLive(std::size_t idx);
    void releaseInst(std::size_t idx);
    void releaseUpTo(double frontier);
    void releaseWindow(double end);
    bool placeOn(std::size_t a, double earliest, double base_cycles,
                 double penalty, double bytes, Plan &out) const;
    Plan planLayer(std::size_t inst) const;
    std::size_t selectReadyIdx() const;
    std::size_t selectFutureIdx(bool &stall) const;
    bool urgentExists(double end, double threshold) const;
    void commit(std::size_t inst, const Plan &plan);
    void maybeReconfigure();
    bool tryStep();
    void pump();

    // --- Retirement + watchdog ---
    void maintenance();

    // --- SLA accounting ---
    void recordLatency(double latency);
    void finishFrame(std::size_t idx);
    double latencyPercentile(double q) const;
};

} // namespace herald::sched
