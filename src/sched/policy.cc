#include "sched/policy.hh"

#include "util/logging.hh"

namespace herald::sched
{

const char *
toString(Policy policy)
{
    switch (policy) {
      case Policy::Fifo:
        return "FIFO";
      case Policy::Edf:
        return "EDF";
      case Policy::Lst:
        return "LST";
    }
    util::panic("unknown Policy");
}

const char *
toString(DropPolicy drop)
{
    switch (drop) {
      case DropPolicy::None:
        return "no-drop";
      case DropPolicy::HopelessFrames:
        return "drop-hopeless";
      case DropPolicy::DoomedFrames:
        return "drop-doomed";
    }
    util::panic("unknown DropPolicy");
}

SelectionPolicy::SelectionPolicy(std::size_t n_instances)
    : currentKey(n_instances, 0.0), member(n_instances, 0)
{
}

void
SelectionPolicy::onLayerScheduled(std::size_t idx)
{
    (void)idx; // FIFO/EDF keys never change
}

void
SelectionPolicy::release(std::size_t idx)
{
    const double key = keyOf(idx);
    ready.emplace(key, idx);
    currentKey[idx] = key;
    member[idx] = 1;
}

void
SelectionPolicy::retire(std::size_t idx)
{
    if (!member[idx])
        return; // exhausted by the fallback before its release
    ready.erase(std::make_pair(currentKey[idx], idx));
    member[idx] = 0;
}

void
SelectionPolicy::rekey(std::size_t idx)
{
    if (!member[idx])
        return;
    const double key = keyOf(idx);
    if (key == currentKey[idx])
        return;
    ready.erase(std::make_pair(currentKey[idx], idx));
    ready.emplace(key, idx);
    currentKey[idx] = key;
}

std::size_t
SelectionPolicy::selectReady(bool breadth, std::size_t rotate,
                             std::size_t grant,
                             double hysteresis_band) const
{
    if (ready.empty())
        return SIZE_MAX;
    auto first = ready.begin();
    // Hysteresis: the granted instance keeps the floor unless the
    // best competitor undercuts its key by more than the band. Only
    // an active band changes anything — with band <= 0 the branch is
    // never taken and selection is the exact historical rule.
    if (hysteresis_band > 0.0 && grant != SIZE_MAX && member[grant] &&
        first->first >= currentKey[grant] - hysteresis_band) {
        return grant;
    }
    if (breadth) {
        auto it =
            ready.lower_bound(std::make_pair(first->first, rotate));
        if (it != ready.end() && it->first == first->first)
            return it->second;
    }
    return first->second;
}

std::size_t
SelectionPolicy::selectFromRun(const std::vector<std::size_t> &run,
                               std::size_t start_pos) const
{
    std::size_t best = SIZE_MAX;
    double best_key = 0.0;
    for (std::size_t k = 0; k < run.size(); ++k) {
        std::size_t cand = run[(start_pos + k) % run.size()];
        double key = keyOf(cand);
        if (best == SIZE_MAX || key < best_key) {
            best = cand;
            best_key = key;
        }
    }
    return best;
}

std::unique_ptr<SelectionPolicy>
makeSelectionPolicy(Policy policy, const workload::Workload &wl,
                    const LayerCostTable &table,
                    const std::vector<std::size_t> &next_layer)
{
    switch (policy) {
      case Policy::Fifo:
        return std::make_unique<FifoPolicy>(wl);
      case Policy::Edf:
        return std::make_unique<EdfPolicy>(wl);
      case Policy::Lst:
        return std::make_unique<LstPolicy>(wl, table, next_layer);
    }
    util::panic("unknown Policy");
}

} // namespace herald::sched
