/**
 * @file
 * Pluggable instance-selection policies for the scheduler.
 *
 * The dispatch loop repeatedly asks "which released instance's next
 * layer do I place now?". That choice — FIFO order, earliest absolute
 * deadline (EDF), or least slack (LST) — is the whole difference
 * between the real-time policies, so it lives behind one interface:
 *
 * - every policy reduces to a *priority key* per instance (lower
 *   dispatches first, ties break on instance index);
 * - the shared machinery in SelectionPolicy keeps released instances
 *   in a (key, index)-ordered set so selection is O(log n), exactly
 *   mirroring the event-driven loop the policies were extracted from;
 * - FIFO's key is a constant (index order decides), EDF's is the
 *   absolute deadline, LST's is deadline minus optimistic remaining
 *   work (see LstPolicy) — re-keyed as the instance's layers retire.
 *
 * FIFO and EDF through this interface are bit-identical to
 * sched::referenceSchedule() (asserted by test_sched_equivalence);
 * LST is covered by property tests instead (validity, no-op on
 * deadline-free workloads, misses <= EDF on the over-subscribed
 * factory scenarios).
 */

#pragma once

#include <cstddef>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "workload/workload.hh"

namespace herald::sched
{

class LayerCostTable;

/** Instance-selection policy of the dispatch loop. */
enum class Policy
{
    Fifo, //!< base ordering only (round-robin / instance order)
    Edf,  //!< earliest absolute deadline first
    Lst,  //!< least slack (deadline - optimistic remaining work)
};

/** Over-subscription admission control. */
enum class DropPolicy
{
    None, //!< schedule every frame, hopeless or not
    /**
     * Drop a frame whose slack is provably negative at release: even
     * starting at its arrival and running every remaining layer on
     * its best sub-accelerator back to back, completion would exceed
     * the deadline. Such frames cannot be saved, only poison live
     * ones; dropped frames are counted as deadline misses (and in
     * SlaStats::droppedFrames). Never drops deadline-free frames.
     */
    HopelessFrames,
    /**
     * HopelessFrames plus a *dynamic* re-test at every dispatch
     * decision: a live frame is shed the moment
     *
     *     now + optimistic remaining work > deadline
     *
     * where "now" is a lower bound on the frame's next possible start
     * (its dependence-chain ready time, never earlier than the
     * earliest sub-accelerator availability) and the remaining work
     * is the LayerCostTable's best-case suffix sum — so the drop is
     * still provable, it just uses the evolving schedule state
     * instead of only the arrival-time proof. A frame shed mid-flight
     * keeps its already-committed layers on the timeline (they
     * consumed real cycles) but schedules nothing further; it is
     * counted as dropped *and* missed. Deterministic: the test reads
     * only committed-schedule state. Never drops deadline-free
     * frames.
     */
    DoomedFrames,
};

const char *toString(Policy policy);
const char *toString(DropPolicy drop);

/**
 * One instance-selection policy instance, bound to a single
 * schedule() run. Concrete policies supply the priority key; the base
 * class owns the (key, index)-ordered ready set and the tie-break
 * rules shared by every policy.
 */
class SelectionPolicy
{
  public:
    virtual ~SelectionPolicy() = default;

    /**
     * Priority key of instance @p idx under this policy; lower keys
     * dispatch first, equal keys fall back to the base ordering.
     * Also used as the urgency tie-break among (near-)equal arrivals
     * in the nothing-has-arrived fallback.
     */
    virtual double keyOf(std::size_t idx) const = 0;

    /**
     * Notification that a layer of @p idx was scheduled and the
     * instance still has pending layers. Policies whose key depends
     * on progress (LST) re-key the ready set here; the default keeps
     * the insertion key.
     */
    virtual void onLayerScheduled(std::size_t idx);

    /** Insert released instance @p idx into the ready set. */
    void release(std::size_t idx);

    /** Remove @p idx (exhausted); no-op when never released. */
    void retire(std::size_t idx);

    /**
     * Pick from the ready set: the lowest key, with the base order
     * breaking ties — under breadth-first ordering the round-robin
     * @p rotate cursor picks the first tied instance at or after it.
     * Returns SIZE_MAX when the set is empty.
     *
     * Hysteresis (ROADMAP follow-up (a)): when @p grant is a ready
     * instance and @p hysteresis_band > 0, the granted instance is
     * kept unless some competitor's key undercuts the grant's
     * current key by more than the band — least-slack dispatch
     * re-keys per retired layer, and without the band many live
     * frames with near-equal slack degenerate into processor
     * sharing (one layer each, round and round), paying a context
     * change at every switch. Pass grant = SIZE_MAX (or band = 0)
     * for the exact historical selection.
     */
    std::size_t selectReady(bool breadth, std::size_t rotate,
                            std::size_t grant = SIZE_MAX,
                            double hysteresis_band = 0.0) const;

    /**
     * Tie-break an exact-equal arrival band of the nothing-arrived
     * fallback: visit @p run (ascending instance index) rotated to
     * start at @p start_pos and keep the strictly lowest key, first
     * seen wins ties — for constant-key FIFO this returns
     * run[start_pos], i.e. pure base order.
     */
    std::size_t selectFromRun(const std::vector<std::size_t> &run,
                              std::size_t start_pos) const;

  protected:
    explicit SelectionPolicy(std::size_t n_instances);

    /** Refresh @p idx's ready-set key after keyOf changed. */
    void rekey(std::size_t idx);

  private:
    std::set<std::pair<double, std::size_t>> ready;
    std::vector<double> currentKey; //!< key at (re)insertion
    std::vector<char> member;       //!< in the ready set now
};

/** FIFO: constant key, the base ordering decides everything. */
class FifoPolicy final : public SelectionPolicy
{
  public:
    explicit FifoPolicy(const workload::Workload &wl);
    double keyOf(std::size_t idx) const override;
};

/** EDF: key = absolute deadline (kNoDeadline when none). */
class EdfPolicy final : public SelectionPolicy
{
  public:
    explicit EdfPolicy(const workload::Workload &wl);
    double keyOf(std::size_t idx) const override;

  private:
    const std::vector<workload::Instance> &instances;
};

/**
 * LST: key = deadline - optimistic remaining work, i.e. the frame's
 * slack up to a shared "now" term that cancels out of every
 * comparison. Remaining work is the LayerCostTable's best-sub-acc
 * (minimum-cycle) suffix sum from the instance's next pending layer,
 * so the key tightens as a frame falls behind and relaxes as its
 * layers retire — re-keyed via onLayerScheduled. Deadline-free
 * instances key to +infinity, which makes LST an exact no-op
 * (bit-identical to FIFO) on deadline-free workloads.
 */
class LstPolicy final : public SelectionPolicy
{
  public:
    LstPolicy(const workload::Workload &wl,
              const LayerCostTable &table,
              const std::vector<std::size_t> &next_layer);
    double keyOf(std::size_t idx) const override;
    void onLayerScheduled(std::size_t idx) override;

  private:
    const std::vector<workload::Instance> &instances;
    const LayerCostTable &table;
    const std::vector<std::size_t> &nextLayer;
    std::vector<std::size_t> uidOf; //!< unique-model id per instance
};

/**
 * Build the policy for one schedule() run. @p next_layer is the
 * scheduler's per-instance progress vector (LST reads it through the
 * run; FIFO/EDF ignore it).
 */
std::unique_ptr<SelectionPolicy>
makeSelectionPolicy(Policy policy, const workload::Workload &wl,
                    const LayerCostTable &table,
                    const std::vector<std::size_t> &next_layer);

} // namespace herald::sched

