/**
 * @file
 * Earliest-deadline-first instance selection: the key is the absolute
 * deadline (kNoDeadline = +inf when none, so deadline-free workloads
 * degenerate to FIFO). Bit-identical to the deadline-aware reference
 * scheduler — the key never changes, so an instance keeps its ready-
 * set position for its whole life.
 */

#include "sched/policy.hh"

namespace herald::sched
{

EdfPolicy::EdfPolicy(const workload::Workload &wl)
    : SelectionPolicy(wl.numInstances()), instances(wl.instances())
{
}

double
EdfPolicy::keyOf(std::size_t idx) const
{
    return instances[idx].deadlineCycle;
}

} // namespace herald::sched
