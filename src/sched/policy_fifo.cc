/**
 * @file
 * FIFO instance selection: every instance shares one constant key, so
 * the shared tie-break rules (base ordering, round-robin rotate under
 * breadth-first) decide everything — exactly the pre-policy
 * scheduler's behaviour, bit-identical to sched::referenceSchedule().
 */

#include "sched/policy.hh"

namespace herald::sched
{

FifoPolicy::FifoPolicy(const workload::Workload &wl)
    : SelectionPolicy(wl.numInstances())
{
}

double
FifoPolicy::keyOf(std::size_t idx) const
{
    (void)idx;
    return 0.0;
}

} // namespace herald::sched
