/**
 * @file
 * Least-slack-time instance selection. A frame's slack at time t is
 *
 *     deadline - t - remaining_work
 *
 * and every released instance shares the same t, so ordering by slack
 * is ordering by (deadline - remaining_work) — a time-independent key
 * that only changes when one of the instance's layers is scheduled.
 * Remaining work is the optimistic best-sub-accelerator suffix sum
 * from the LayerCostTable (LayerCostTable::remainingCycles): the
 * cheapest possible serial execution of the not-yet-scheduled layers.
 *
 * Versus EDF, LST pulls forward frames that are *about to become
 * hopeless* — a heavy frame with a late deadline but little slack
 * beats a light frame whose deadline is nearer but trivially
 * reachable. On over-subscribed scenarios that cuts misses; on
 * deadline-free workloads every key is +inf and LST is bit-identical
 * to FIFO.
 */

#include "sched/policy.hh"

#include "sched/layer_cost_table.hh"

namespace herald::sched
{

LstPolicy::LstPolicy(const workload::Workload &wl,
                     const LayerCostTable &table,
                     const std::vector<std::size_t> &next_layer)
    : SelectionPolicy(wl.numInstances()), instances(wl.instances()),
      table(table), nextLayer(next_layer)
{
    uidOf.resize(wl.numInstances());
    for (std::size_t i = 0; i < wl.numInstances(); ++i)
        uidOf[i] = wl.uniqueIdOfInstance(i);
}

double
LstPolicy::keyOf(std::size_t idx) const
{
    const double deadline = instances[idx].deadlineCycle;
    if (deadline == workload::kNoDeadline)
        return workload::kNoDeadline; // inf - finite is inf anyway
    return deadline - table.remainingCycles(uidOf[idx],
                                            nextLayer[idx]);
}

void
LstPolicy::onLayerScheduled(std::size_t idx)
{
    rekey(idx); // remaining work shrank; slack key grew
}

} // namespace herald::sched
