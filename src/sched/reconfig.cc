#include "sched/reconfig.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace herald::sched
{

const char *
toString(Reconfig reconfig)
{
    switch (reconfig) {
      case Reconfig::Off:
        return "Off";
      case Reconfig::BacklogSkew:
        return "BacklogSkew";
    }
    util::panic("unknown Reconfig");
}

void
ReconfigOptions::validate() const
{
    if (!std::isfinite(drainCycles) || drainCycles < 0.0 ||
        !std::isfinite(perPeRewireCycles) || perPeRewireCycles < 0.0)
        util::fatal("scheduler options: reconfig penalty cycles must "
                    "be finite and non-negative");
    if (!std::isfinite(cooldownCycles) || cooldownCycles < 0.0)
        util::fatal("scheduler options: reconfig cooldown must be "
                    "finite and non-negative");
    if (!enabled())
        return;
    if (migrationQuantumPes == 0)
        util::fatal("scheduler options: reconfig policy ",
                    toString(policy),
                    " with a zero migration quantum would plan "
                    "outages that migrate nothing");
    if (!std::isfinite(skewThresholdCycles) ||
        skewThresholdCycles <= 0.0)
        util::fatal("scheduler options: reconfig skew threshold must "
                    "be finite and positive (got ",
                    skewThresholdCycles, ")");
}

BacklogSkewPolicy::BacklogSkewPolicy(const ReconfigOptions &options)
    : opts(options)
{
}

ReconfigDecision
BacklogSkewPolicy::evaluate(
    const std::vector<double> &acc_avail,
    const std::vector<std::uint64_t> &pe_split) const
{
    ReconfigDecision d;
    if (acc_avail.size() < 2)
        return d;
    // Strict comparisons: the lowest index wins ties on both ends,
    // which keeps the decision deterministic.
    std::size_t lo = 0;
    std::size_t hi = 0;
    for (std::size_t a = 1; a < acc_avail.size(); ++a) {
        if (acc_avail[a] < acc_avail[lo])
            lo = a;
        if (acc_avail[a] > acc_avail[hi])
            hi = a;
    }
    if (acc_avail[hi] - acc_avail[lo] <= opts.skewThresholdCycles)
        return d;
    // "Now" for the cooldown is the backlogged frontier: committed
    // work must have advanced past the last window + cooldown.
    if (acc_avail[hi] < cooldownUntil)
        return d;
    if (pe_split[lo] <= 1)
        return d; // donor must keep at least one PE
    const std::uint64_t moved =
        std::min<std::uint64_t>(opts.migrationQuantumPes,
                                pe_split[lo] - 1);
    if (moved == 0)
        return d;
    d.migrate = true;
    d.donor = lo;
    d.receiver = hi;
    d.movedPes = moved;
    return d;
}

void
BacklogSkewPolicy::onMigration(double window_end)
{
    cooldownUntil = window_end + opts.cooldownCycles;
}

std::unique_ptr<ReconfigPolicy>
makeReconfigPolicy(const ReconfigOptions &options)
{
    switch (options.policy) {
      case Reconfig::Off:
        util::fatal("makeReconfigPolicy: Reconfig::Off has no policy "
                    "object");
      case Reconfig::BacklogSkew:
        return std::make_unique<BacklogSkewPolicy>(options);
    }
    util::panic("unknown Reconfig");
}

accel::PartitionEpoch
planMigrationEpoch(const accel::Accelerator &acc,
                   const ReconfigDecision &decision,
                   std::uint64_t epoch_id)
{
    if (!decision.migrate)
        util::panic("planMigrationEpoch: no migration decided");
    accel::PartitionEpoch epoch = acc.partitionEpoch();
    epoch.epochId = epoch_id;
    const std::size_t d = decision.donor;
    const std::size_t r = decision.receiver;
    if (d >= epoch.peSplit.size() || r >= epoch.peSplit.size() ||
        d == r)
        util::panic("planMigrationEpoch: bad donor/receiver pair ", d,
                    "/", r);
    if (decision.movedPes >= epoch.peSplit[d])
        util::panic("planMigrationEpoch: donor ", d, " cannot give ",
                    decision.movedPes, " of its ", epoch.peSplit[d],
                    " PEs");

    // Bandwidth follows the donor's moved-PE fraction; the buffer
    // follows the chip-wide moved-PE fraction in integer bytes so
    // shares keep summing exactly to the global buffer.
    const double pe_frac = static_cast<double>(decision.movedPes) /
                           static_cast<double>(epoch.peSplit[d]);
    const double bw_moved = epoch.bwSplit[d] * pe_frac;

    if (epoch.bufferSplit.empty()) {
        // Materialize the epoch-0 even split (largest-remainder on
        // the first sub-accs so the shares sum exactly).
        const std::uint64_t buf = acc.globalBufferBytes();
        const std::uint64_t n = epoch.peSplit.size();
        epoch.bufferSplit.assign(n, buf / n);
        for (std::uint64_t i = 0; i < buf % n; ++i)
            epoch.bufferSplit[i] += 1;
    }
    std::uint64_t buf_moved = static_cast<std::uint64_t>(
        static_cast<double>(acc.globalBufferBytes()) *
        static_cast<double>(decision.movedPes) /
        static_cast<double>(acc.chip().numPes));
    if (buf_moved >= epoch.bufferSplit[d])
        buf_moved = epoch.bufferSplit[d] - 1; // keep a non-empty share

    epoch.peSplit[d] -= decision.movedPes;
    epoch.peSplit[r] += decision.movedPes;
    epoch.bwSplit[d] -= bw_moved;
    epoch.bwSplit[r] += bw_moved;
    epoch.bufferSplit[d] -= buf_moved;
    epoch.bufferSplit[r] += buf_moved;
    return epoch;
}

} // namespace herald::sched
