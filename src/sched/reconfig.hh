/**
 * @file
 * Pluggable runtime-repartitioning policies for the scheduler.
 *
 * Herald freezes the sub-accelerator partition per DSE candidate;
 * under shifting multi-tenant load that frozen split strands
 * capacity on whichever sub-accelerator the light tenant prefers. A
 * ReconfigPolicy is evaluated at the dispatch loop's layer-boundary
 * hook (the same point preemption re-selects): when the committed
 * completion-frontier skew between sub-accelerators crosses a
 * threshold, it plans a PE/bandwidth/buffer migration from the
 * under-loaded donor to the backlogged receiver. The migration is a
 * short planned outage on both parties — in-flight layers drain to
 * completion (the window starts at both frontiers' max), the window
 * costs a modeled drain + rewire penalty, and afterwards a new
 * accel::PartitionEpoch is in force and only the donor/receiver
 * LayerCostTable columns are re-prefilled.
 *
 * Determinism contract: a decision is a pure function of committed
 * scheduler state (per-sub-acc frontiers, the live PE split) plus
 * the policy's own cooldown state, so schedules are bit-identical
 * across reruns, prefill thread counts, and the offline/online
 * schedulers. Reconfig::Off leaves every schedule bit-identical to
 * the frozen-partition scheduler.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "accel/accelerator.hh"

namespace herald::sched
{

/** Runtime-repartitioning policy of the dispatch loop. */
enum class Reconfig
{
    Off,         //!< frozen partition (pre-elasticity bit-identical)
    BacklogSkew, //!< migrate when frontier skew crosses a threshold
};

const char *toString(Reconfig reconfig);

/** Repartitioning knobs (also the DSE's repartitioning axis). */
struct ReconfigOptions
{
    Reconfig policy = Reconfig::Off;

    /**
     * BacklogSkew trigger: migrate when the committed completion
     * frontiers of the most- and least-loaded sub-accelerators
     * differ by more than this many cycles. Must be finite and
     * positive when a policy is enabled.
     */
    double skewThresholdCycles = 0.0;

    /**
     * PEs moved per migration (clamped so the donor keeps at least
     * one). Zero with an enabled policy is rejected by validate():
     * it would plan outages that migrate nothing.
     */
    std::uint64_t migrationQuantumPes = 0;

    /** Fixed pipeline-drain cycles charged per migration. */
    double drainCycles = 0.0;

    /** Rewire cycles charged per moved PE. */
    double perPeRewireCycles = 0.0;

    /**
     * Minimum committed-frontier advance between migrations beyond
     * the migration window itself (0 = back-to-back allowed).
     */
    double cooldownCycles = 0.0;

    bool enabled() const { return policy != Reconfig::Off; }

    /** Drain + rewire cost of moving @p moved PEs. */
    double
    penaltyCycles(std::uint64_t moved) const
    {
        return accel::reconfigPenaltyCycles(moved, drainCycles,
                                            perPeRewireCycles);
    }

    /**
     * Reject contradictory knob combinations up front (util::fatal):
     * an enabled policy with a zero migration quantum, a non-finite
     * or non-positive skew threshold, or negative/non-finite penalty
     * and cooldown cycles. Called by SchedulerOptions::validate().
     */
    void validate() const;
};

/** One planned migration (none when @c migrate is false). */
struct ReconfigDecision
{
    bool migrate = false;
    std::size_t donor = 0;    //!< under-loaded, gives up PEs
    std::size_t receiver = 0; //!< backlogged, gains PEs
    std::uint64_t movedPes = 0;
};

/**
 * One repartitioning policy instance, bound to a single scheduling
 * run (its cooldown state is part of the schedule's determinism).
 */
class ReconfigPolicy
{
  public:
    virtual ~ReconfigPolicy() = default;

    /**
     * Decide on a migration from committed state only: @p acc_avail
     * is the per-sub-accelerator completion frontier, @p pe_split
     * the live PE allocation. Must be pure (no state change here;
     * cooldown updates happen in onMigration).
     */
    virtual ReconfigDecision
    evaluate(const std::vector<double> &acc_avail,
             const std::vector<std::uint64_t> &pe_split) const = 0;

    /** The planned migration committed; its window ends at @p end. */
    virtual void onMigration(double window_end) = 0;
};

/**
 * BacklogSkew: when max(frontier) - min(frontier) exceeds the
 * threshold, the least-loaded sub-accelerator donates
 * min(quantum, donor PEs - 1) PEs to the most-loaded one (strict
 * comparisons, so ties resolve to the lowest index on both ends).
 * A cooldown suppresses re-firing until the max frontier passes the
 * last window's end plus cooldownCycles.
 */
class BacklogSkewPolicy final : public ReconfigPolicy
{
  public:
    explicit BacklogSkewPolicy(const ReconfigOptions &options);
    ReconfigDecision
    evaluate(const std::vector<double> &acc_avail,
             const std::vector<std::uint64_t> &pe_split)
        const override;
    void onMigration(double window_end) override;

  private:
    ReconfigOptions opts;
    double cooldownUntil = 0.0;
};

/** Build the policy for one run (fatal on Reconfig::Off). */
std::unique_ptr<ReconfigPolicy>
makeReconfigPolicy(const ReconfigOptions &options);

/**
 * The successor epoch a committed @p decision produces on @p acc's
 * live split: PEs move by decision.movedPes, bandwidth moves
 * proportionally to the donor's moved-PE fraction, and the buffer
 * moves proportionally to the chip-wide moved-PE fraction (integer
 * bytes, clamped so the donor keeps a non-empty share). Both
 * schedulers call this, so offline and online compute bit-identical
 * epochs.
 */
accel::PartitionEpoch
planMigrationEpoch(const accel::Accelerator &acc,
                   const ReconfigDecision &decision,
                   std::uint64_t epoch_id);

} // namespace herald::sched
