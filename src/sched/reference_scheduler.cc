#include "sched/reference_scheduler.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <vector>

#include "util/logging.hh"

namespace herald::sched
{

namespace
{

constexpr double kEps = 1e-6;

/** Flat key for an (instance, layer) pair; both fit in 32 bits. */
std::uint64_t
depKey(std::size_t instance_idx, std::size_t layer_idx)
{
    return (static_cast<std::uint64_t>(instance_idx) << 32) |
           static_cast<std::uint64_t>(layer_idx & 0xffffffffULL);
}

/** Entry index of (instance, layer) pairs for dependence lookups. */
std::unordered_map<std::uint64_t, std::size_t>
buildDependenceIndex(const std::vector<ScheduledLayer> &entries)
{
    std::unordered_map<std::uint64_t, std::size_t> index;
    index.reserve(entries.size());
    for (std::size_t i = 0; i < entries.size(); ++i)
        index[depKey(entries[i].instanceIdx, entries[i].layerIdx)] = i;
    return index;
}

} // namespace

/** Forward declaration: the pre-rewrite post-processing. */
namespace
{
void referencePostProcess(Schedule &schedule,
                          const workload::Workload &wl,
                          const accel::Accelerator &acc,
                          const SchedulerOptions &opts);
} // namespace

namespace
{

/**
 * The pre-blocking memory tracker, kept verbatim for the reference
 * path: one flat time-sorted event array with an eagerly rebuilt
 * prefix — O(events-after-position) per insert, which is what made
 * out-of-time-order schedules quadratic. Query results are
 * bit-identical to the blocked MemoryTracker (integer-valued byte
 * sums), so the oracle still certifies the production tracker.
 */
class FlatMemoryTracker
{
  public:
    explicit FlatMemoryTracker(std::uint64_t capacity_bytes)
        : capacity(static_cast<double>(capacity_bytes))
    {
    }

    struct Interval
    {
        double start;
        double end;
        double bytes;
    };

    bool
    feasible(double start, double dur, double bytes,
             std::size_t exclude = SIZE_MAX) const
    {
        const double end = start + dur;
        double peak = occupancy(start, exclude);
        for (std::size_t i = upperBound(start);
             i < events.size() && events[i].time < end; ++i) {
            if (events[i].delta <= 0.0 || events[i].idx == exclude)
                continue;
            peak = std::max(peak, occupancy(events[i].time, exclude));
        }
        return peak + bytes <= capacity + kEps;
    }

    double
    firstFeasible(double start, double dur, double bytes) const
    {
        if (bytes > capacity) {
            double latest = start;
            for (const Interval &iv : intervals)
                latest = std::max(latest, iv.end);
            return latest;
        }
        double t = start;
        for (int guard = 0; guard < 1 << 16; ++guard) {
            if (feasible(t, dur, bytes))
                return t;
            double next = std::numeric_limits<double>::infinity();
            for (std::size_t i = upperBound(t + kEps);
                 i < events.size(); ++i) {
                if (events[i].delta < 0.0) {
                    next = events[i].time;
                    break;
                }
            }
            if (!std::isfinite(next))
                return t;
            t = next;
        }
        util::panic("memory tracker failed to converge");
    }

    std::size_t
    add(double start, double dur, double bytes)
    {
        std::size_t idx = intervals.size();
        intervals.push_back(Interval{start, start + dur, bytes});
        insertEvent(start, bytes, idx);
        insertEvent(start + dur, -bytes, idx);
        return idx;
    }

    void
    move(std::size_t idx, double new_start)
    {
        Interval &iv = intervals.at(idx);
        double dur = iv.end - iv.start;
        eraseEvent(iv.start, idx);
        eraseEvent(iv.end, idx);
        iv.start = new_start;
        iv.end = new_start + dur;
        insertEvent(iv.start, iv.bytes, idx);
        insertEvent(iv.end, -iv.bytes, idx);
    }

    double
    occupancy(double t, std::size_t exclude = SIZE_MAX) const
    {
        std::size_t m = upperBound(t + kEps);
        double total = m > 0 ? prefix[m - 1] : 0.0;
        if (exclude < intervals.size()) {
            const Interval &iv = intervals[exclude];
            if (iv.start <= t + kEps && iv.end > t + kEps)
                total -= iv.bytes;
        }
        return total;
    }

  private:
    struct Event
    {
        double time;
        double delta;
        std::size_t idx;
    };

    double capacity;
    std::vector<Interval> intervals;
    std::vector<Event> events;
    std::vector<double> prefix;

    std::size_t
    upperBound(double t) const
    {
        auto it = std::upper_bound(
            events.begin(), events.end(), t,
            [](double value, const Event &e) {
                return value < e.time;
            });
        return static_cast<std::size_t>(it - events.begin());
    }

    void
    rebuildPrefixFrom(std::size_t pos)
    {
        prefix.resize(events.size());
        double running = pos > 0 ? prefix[pos - 1] : 0.0;
        for (std::size_t i = pos; i < events.size(); ++i) {
            running += events[i].delta;
            prefix[i] = running;
        }
    }

    void
    insertEvent(double time, double delta, std::size_t idx)
    {
        std::size_t pos = upperBound(time);
        events.insert(events.begin() +
                          static_cast<std::ptrdiff_t>(pos),
                      Event{time, delta, idx});
        rebuildPrefixFrom(pos);
    }

    void
    eraseEvent(double time, std::size_t idx)
    {
        auto it = std::lower_bound(
            events.begin(), events.end(), time,
            [](const Event &e, double value) {
                return e.time < value;
            });
        while (it != events.end() && it->time == time &&
               it->idx != idx)
            ++it;
        if (it == events.end() || it->time != time)
            util::panic("memory tracker: stale event erase");
        std::size_t pos =
            static_cast<std::size_t>(it - events.begin());
        events.erase(it);
        rebuildPrefixFrom(pos);
    }
};

/** Reference-path tracker mirroring the schedule's intervals. */
FlatMemoryTracker
buildFlatTracker(const std::vector<ScheduledLayer> &entries,
                 std::uint64_t capacity)
{
    FlatMemoryTracker tracker(capacity);
    for (const ScheduledLayer &e : entries) {
        tracker.add(e.startCycle, e.duration(),
                    static_cast<double>(e.l2FootprintBytes));
    }
    return tracker;
}

} // namespace

Schedule
referenceSchedule(cost::CostModel &model,
                  const SchedulerOptions &opts,
                  const workload::Workload &wl,
                  const accel::Accelerator &acc)
{
    // The oracle predates the policy subsystem: it understands the
    // FIFO/EDF pair the production scheduler must stay bit-identical
    // to, and nothing else. LST and drop policies are property-tested
    // against invariants instead of against this reference.
    if (opts.effectivePolicy() == Policy::Lst)
        util::panic("referenceSchedule: LST is not implemented by "
                    "the reference oracle");
    if (opts.dropPolicy != DropPolicy::None)
        util::panic("referenceSchedule: drop policies are not "
                    "implemented by the reference oracle");
    if (opts.preemption != Preemption::Off)
        util::panic("referenceSchedule: preemption points are not "
                    "implemented by the reference oracle");
    if (opts.lstHysteresisCycles != 0.0)
        util::panic("referenceSchedule: LST hysteresis is not "
                    "implemented by the reference oracle");
    if (!opts.faults.empty())
        util::panic("referenceSchedule: fault timelines are not "
                    "implemented by the reference oracle");
    if (opts.reconfig.enabled())
        util::panic("referenceSchedule: elastic repartitioning is "
                    "not implemented by the reference oracle");
    const bool deadline_aware = opts.effectivePolicy() == Policy::Edf;

    const std::size_t n_inst = wl.numInstances();
    const std::size_t n_acc = acc.numSubAccs();
    Schedule schedule(n_acc);
    if (n_inst == 0)
        return schedule;

    std::vector<std::size_t> next_layer(n_inst, 0);
    std::vector<double> ready_time(n_inst, 0.0);
    for (std::size_t i = 0; i < n_inst; ++i)
        ready_time[i] = wl.instances()[i].arrivalCycle;
    std::vector<double> acc_avail(n_acc, 0.0);
    std::vector<std::size_t> acc_last_instance(n_acc, SIZE_MAX);
    FlatMemoryTracker memory(acc.globalBufferBytes());

    std::size_t remaining = wl.totalLayers();
    std::size_t rotate = 0;
    double release_frontier = 0.0;

    while (remaining > 0) {
        auto pending = [&](std::size_t cand) {
            return next_layer[cand] < wl.modelOf(cand).numLayers();
        };
        auto base_order = [&](std::size_t k) {
            return opts.ordering == Ordering::BreadthFirst
                       ? (rotate + k) % n_inst
                       : k;
        };

        std::size_t inst = SIZE_MAX;
        double best_deadline = workload::kNoDeadline;
        for (std::size_t k = 0; k < n_inst; ++k) {
            std::size_t cand = base_order(k);
            if (!pending(cand))
                continue;
            if (wl.instances()[cand].arrivalCycle >
                release_frontier + kEps)
                continue; // not yet arrived
            if (inst == SIZE_MAX) {
                inst = cand;
                best_deadline =
                    wl.instances()[cand].deadlineCycle;
                if (!deadline_aware)
                    break;
                continue;
            }
            double deadline = wl.instances()[cand].deadlineCycle;
            if (deadline < best_deadline) {
                inst = cand;
                best_deadline = deadline;
            }
        }
        if (inst == SIZE_MAX) {
            double best_arrival = workload::kNoDeadline;
            for (std::size_t k = 0; k < n_inst; ++k) {
                std::size_t cand = base_order(k);
                if (!pending(cand))
                    continue;
                const workload::Instance &ci =
                    wl.instances()[cand];
                bool better =
                    inst == SIZE_MAX ||
                    ci.arrivalCycle < best_arrival - kEps ||
                    (deadline_aware &&
                     std::abs(ci.arrivalCycle - best_arrival) <=
                         kEps &&
                     ci.deadlineCycle < best_deadline);
                if (better) {
                    inst = cand;
                    best_arrival = ci.arrivalCycle;
                    best_deadline = ci.deadlineCycle;
                }
            }
        }
        if (inst == SIZE_MAX)
            util::panic("scheduler: no instance with pending layers");

        const dnn::Layer &layer =
            wl.modelOf(inst).layer(next_layer[inst]);

        std::vector<accel::StyledLayerCost> costs(n_acc);
        std::vector<double> metric_of(n_acc);
        std::vector<std::size_t> order(n_acc);
        for (std::size_t a = 0; a < n_acc; ++a) {
            costs[a] = accel::evaluateOnSubAcc(model, acc, a,
                                               layer,
                                               opts.rdaOverheads);
            metric_of[a] = metricValue(opts.metric, costs[a].cost);
            order[a] = a;
        }
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      return metric_of[a] < metric_of[b];
                  });

        std::size_t chosen = order[0];
        if (opts.loadBalance && n_acc > 1) {
            const double best_metric = metric_of[order[0]];
            for (std::size_t a : order) {
                if (metric_of[a] >
                    best_metric * opts.loadBalanceMaxDegradation) {
                    break;
                }
                double start =
                    std::max(ready_time[inst], acc_avail[a]);
                double frontier = start + costs[a].cost.cycles;
                double max_f = frontier;
                double min_f = frontier;
                for (std::size_t b = 0; b < n_acc; ++b) {
                    if (b == a)
                        continue;
                    max_f = std::max(max_f, acc_avail[b]);
                    min_f = std::min(min_f, acc_avail[b]);
                }
                if (min_f > 0.0 &&
                    max_f <= opts.loadBalanceFactor * min_f) {
                    chosen = a;
                    break;
                }
            }
        }

        const accel::StyledLayerCost &sc = costs[chosen];
        double dur = sc.cost.cycles;
        double context_penalty = 0.0;
        if (opts.contextChangeCycles > 0.0 &&
            acc_last_instance[chosen] != SIZE_MAX &&
            acc_last_instance[chosen] != inst) {
            context_penalty = opts.contextChangeCycles;
            dur += context_penalty;
        }
        double start =
            std::max(ready_time[inst], acc_avail[chosen]);
        start = memory.firstFeasible(
            start, dur,
            static_cast<double>(sc.cost.l2FootprintBytes));
        memory.add(start, dur,
                   static_cast<double>(sc.cost.l2FootprintBytes));

        ScheduledLayer entry;
        entry.instanceIdx = inst;
        entry.layerIdx = next_layer[inst];
        entry.accIdx = chosen;
        entry.style = sc.style;
        entry.startCycle = start;
        entry.endCycle = start + dur;
        entry.energyUnits = sc.cost.energyUnits;
        entry.l2FootprintBytes = sc.cost.l2FootprintBytes;
        entry.contextPenaltyCycles = context_penalty;
        schedule.add(entry);

        ready_time[inst] = entry.endCycle;
        acc_avail[chosen] = entry.endCycle;
        release_frontier =
            std::max(release_frontier, entry.endCycle);
        acc_last_instance[chosen] = inst;
        ++next_layer[inst];
        --remaining;
        rotate = (inst + 1) % n_inst;
    }

    if (opts.postProcess)
        referencePostProcess(schedule, wl, acc, opts);
    return schedule;
}

namespace
{

void
referencePostProcess(Schedule &schedule,
                     const workload::Workload &wl,
                     const accel::Accelerator &acc,
                     const SchedulerOptions &opts)
{
    std::vector<ScheduledLayer> &entries = schedule.mutableEntries();
    if (entries.empty())
        return;
    auto dep_index = buildDependenceIndex(entries);

    auto dep_ready = [&](const ScheduledLayer &e) {
        double arrival =
            wl.instances()[e.instanceIdx].arrivalCycle;
        if (e.layerIdx == 0)
            return arrival;
        auto it =
            dep_index.find(depKey(e.instanceIdx, e.layerIdx - 1));
        return it == dep_index.end()
                   ? arrival
                   : std::max(arrival,
                              entries[it->second].endCycle);
    };

    for (int pass = 0; pass < opts.maxPostPasses; ++pass) {
        bool changed = false;
        FlatMemoryTracker tracker =
            buildFlatTracker(entries, acc.globalBufferBytes());

        std::vector<std::vector<std::size_t>> per_acc(
            schedule.numSubAccs());
        for (std::size_t i = 0; i < entries.size(); ++i)
            per_acc[entries[i].accIdx].push_back(i);
        for (auto &vec : per_acc) {
            std::sort(vec.begin(), vec.end(),
                      [&](std::size_t a, std::size_t b) {
                          return entries[a].startCycle <
                                 entries[b].startCycle;
                      });
        }

        for (auto &vec : per_acc) {
            for (std::size_t pos = 0; pos < vec.size(); ++pos) {
                ScheduledLayer &e = entries[vec[pos]];
                double acc_prev_end =
                    pos == 0 ? 0.0 : entries[vec[pos - 1]].endCycle;
                double new_start =
                    std::max(dep_ready(e), acc_prev_end);
                if (new_start < e.startCycle - kEps &&
                    tracker.feasible(
                        new_start, e.duration(),
                        static_cast<double>(e.l2FootprintBytes),
                        vec[pos])) {
                    tracker.move(vec[pos], new_start);
                    double dur = e.duration();
                    e.startCycle = new_start;
                    e.endCycle = new_start + dur;
                    changed = true;
                }
            }
        }

        for (auto &vec : per_acc) {
            bool moved = true;
            int guard = 0;
            const int max_moves =
                static_cast<int>(vec.size()) + 8;
            while (moved && guard++ < max_moves) {
                moved = false;
                std::sort(vec.begin(), vec.end(),
                          [&](std::size_t a, std::size_t b) {
                              return entries[a].startCycle <
                                     entries[b].startCycle;
                          });
                for (std::size_t pos = 0;
                     pos < vec.size() && !moved; ++pos) {
                    double gap_start =
                        pos == 0 ? 0.0
                                 : entries[vec[pos - 1]].endCycle;
                    double gap_end = entries[vec[pos]].startCycle;
                    if (gap_end - gap_start <= kEps)
                        continue;
                    int depth = 0;
                    for (std::size_t j = pos;
                         j < vec.size() &&
                         depth < opts.lookaheadDepth;
                         ++j, ++depth) {
                        ScheduledLayer &cand = entries[vec[j]];
                        double dur = cand.duration();
                        double earliest =
                            std::max(gap_start, dep_ready(cand));
                        if (earliest + dur > gap_end + kEps)
                            continue;
                        if (cand.startCycle <= earliest + kEps)
                            continue;
                        // Mirror of the production scheduler's
                        // stale-penalty guard: with a non-zero
                        // context-change penalty, only take a
                        // reordering move when it keeps every
                        // affected entry's baked-in penalty
                        // consistent with the new adjacency.
                        if (opts.contextChangeCycles > 0.0 &&
                            j != pos) {
                            const double P = opts.contextChangeCycles;
                            auto pen = [&](const ScheduledLayer &e,
                                           const ScheduledLayer
                                               *prev) {
                                return prev && prev->instanceIdx !=
                                                   e.instanceIdx
                                           ? P
                                           : 0.0;
                            };
                            const ScheduledLayer *new_prev =
                                pos == 0 ? nullptr
                                         : &entries[vec[pos - 1]];
                            const ScheduledLayer &displaced =
                                entries[vec[pos]];
                            if (pen(cand, new_prev) !=
                                    cand.contextPenaltyCycles ||
                                pen(displaced, &cand) !=
                                    displaced.contextPenaltyCycles) {
                                continue;
                            }
                            if (j + 1 < vec.size()) {
                                const ScheduledLayer &orphan =
                                    entries[vec[j + 1]];
                                if (pen(orphan,
                                        &entries[vec[j - 1]]) !=
                                    orphan.contextPenaltyCycles) {
                                    continue;
                                }
                            }
                        }
                        if (!tracker.feasible(
                                earliest, dur,
                                static_cast<double>(
                                    cand.l2FootprintBytes),
                                vec[j])) {
                            continue;
                        }
                        tracker.move(vec[j], earliest);
                        cand.startCycle = earliest;
                        cand.endCycle = earliest + dur;
                        changed = true;
                        moved = true;
                        break;
                    }
                }
            }
        }

        if (!changed)
            break;
    }

    if (opts.contextChangeCycles > 0.0) {
        std::string stale = checkContextPenalties(
            schedule, opts.contextChangeCycles);
        if (!stale.empty())
            util::panic("referencePostProcess: ", stale);
    }
}

} // namespace

} // namespace herald::sched
