/**
 * @file
 * The pre-rewrite Herald scheduler, kept verbatim as a verification
 * oracle: per-layer cost-model queries, O(n_instances) selection
 * scans, per-pass state rebuilds in post-processing, and the flat
 * (quadratic-insert) memory tracker.
 *
 * NOT part of libherald — this translation unit is compiled into the
 * separate herald_sched_reference library that only the tests and
 * benchmarks link (ISSUE: "reference implementation behind a
 * test-only flag"). tests/test_sched_equivalence.cc asserts
 * HeraldScheduler::schedule() is bit-identical to this on every
 * scenario; bench_sched_throughput uses it as the speedup baseline.
 */

#pragma once

#include "sched/herald_scheduler.hh"

namespace herald::sched
{

/**
 * Schedule @p wl on @p acc with the pre-rewrite implementation under
 * @p opts (prefillThreads is ignored — there is no table to
 * prefill).
 */
Schedule referenceSchedule(cost::CostModel &model,
                           const SchedulerOptions &opts,
                           const workload::Workload &wl,
                           const accel::Accelerator &acc);

} // namespace herald::sched

