#include "sched/schedule.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "sched/fault_model.hh"
#include "util/logging.hh"

namespace herald::sched
{

namespace
{
constexpr double kEps = 1e-6;
} // namespace

bool
operator==(const ScheduledLayer &a, const ScheduledLayer &b)
{
    return a.instanceIdx == b.instanceIdx &&
           a.layerIdx == b.layerIdx && a.accIdx == b.accIdx &&
           a.style == b.style && a.startCycle == b.startCycle &&
           a.endCycle == b.endCycle &&
           a.energyUnits == b.energyUnits &&
           a.l2FootprintBytes == b.l2FootprintBytes &&
           a.contextPenaltyCycles == b.contextPenaltyCycles &&
           a.faultKilled == b.faultKilled;
}

bool
operator==(const ReconfigEvent &a, const ReconfigEvent &b)
{
    return a.epochId == b.epochId && a.donor == b.donor &&
           a.receiver == b.receiver && a.movedPes == b.movedPes &&
           a.startCycle == b.startCycle && a.endCycle == b.endCycle &&
           a.peSplit == b.peSplit;
}

bool
Schedule::identicalTo(const Schedule &other) const
{
    if (numAccs != other.numAccs || list.size() != other.list.size())
        return false;
    if (droppedList != other.droppedList)
        return false;
    if (reconfigList.size() != other.reconfigList.size())
        return false;
    for (std::size_t i = 0; i < reconfigList.size(); ++i) {
        if (reconfigList[i] != other.reconfigList[i])
            return false;
    }
    for (std::size_t i = 0; i < list.size(); ++i) {
        if (list[i] != other.list[i])
            return false;
    }
    return true;
}

void
Schedule::add(ScheduledLayer entry)
{
    if (entry.accIdx >= numAccs)
        util::panic("schedule: sub-accelerator index out of range");
    if (entry.endCycle < entry.startCycle)
        util::panic("schedule: negative-duration entry");
    list.push_back(entry);
}

void
Schedule::markDropped(std::size_t instance_idx)
{
    // Sorted insert: admission-time drops arrive in ascending
    // instance order, but dynamic (mid-schedule) drops arrive in
    // doom order — keep the list sorted so isDropped stays a binary
    // search and identicalTo stays order-insensitive.
    auto it = std::lower_bound(droppedList.begin(),
                               droppedList.end(), instance_idx);
    if (it != droppedList.end() && *it == instance_idx)
        return; // duplicate
    droppedList.insert(it, instance_idx);
}

bool
Schedule::isDropped(std::size_t instance_idx) const
{
    return std::binary_search(droppedList.begin(), droppedList.end(),
                              instance_idx);
}

void
Schedule::addReconfig(ReconfigEvent event)
{
    if (event.donor >= numAccs || event.receiver >= numAccs ||
        event.donor == event.receiver)
        util::panic("schedule: reconfig donor/receiver out of range");
    if (event.endCycle < event.startCycle)
        util::panic("schedule: negative-duration reconfig window");
    if (event.peSplit.size() != numAccs)
        util::panic("schedule: reconfig PE split arity mismatch");
    if (!reconfigList.empty() &&
        event.startCycle < reconfigList.back().startCycle)
        util::panic("schedule: reconfig events must arrive in window "
                    "order");
    reconfigList.push_back(std::move(event));
}

std::size_t
Schedule::retireEntriesBefore(
    double cycle,
    const std::function<void(const ScheduledLayer &)> &observer)
{
    if (retiredBusy.empty())
        retiredBusy.assign(numAccs, 0.0);
    // Commit order is not end order (breadth-first round-robin
    // interleaves accelerators), so retirement is an order-preserving
    // sweep over the live entries rather than a prefix chop.
    std::size_t w = 0;
    const std::size_t before = list.size();
    for (std::size_t r = 0; r < before; ++r) {
        const ScheduledLayer &e = list[r];
        if (e.endCycle <= cycle) {
            if (observer)
                observer(e);
            retiredMakespan = std::max(retiredMakespan, e.endCycle);
            retiredEnergy += e.energyUnits;
            retiredBusy[e.accIdx] += e.duration();
            ++retiredCount;
        } else {
            if (w != r)
                list[w] = list[r];
            ++w;
        }
    }
    list.resize(w);
    return before - w;
}

double
Schedule::makespanCycles() const
{
    double makespan = retiredMakespan;
    for (const ScheduledLayer &e : list)
        makespan = std::max(makespan, e.endCycle);
    return makespan;
}

double
Schedule::busyCycles(std::size_t acc_idx) const
{
    double busy =
        acc_idx < retiredBusy.size() ? retiredBusy[acc_idx] : 0.0;
    for (const ScheduledLayer &e : list) {
        if (e.accIdx == acc_idx)
            busy += e.duration();
    }
    return busy;
}

ScheduleSummary
Schedule::finalize(const accel::Accelerator &acc,
                   const cost::EnergyModel &energy, bool charge_idle,
                   double clock_ghz) const
{
    ScheduleSummary summary;
    summary.makespanCycles = makespanCycles();
    summary.latencySec = summary.makespanCycles / (clock_ghz * 1e9);
    summary.busyCycles.resize(acc.numSubAccs(), 0.0);

    summary.energyUnits = retiredEnergy;
    for (std::size_t a = 0;
         a < std::min(retiredBusy.size(), summary.busyCycles.size());
         ++a)
        summary.busyCycles[a] = retiredBusy[a];
    for (const ScheduledLayer &e : list) {
        summary.energyUnits += e.energyUnits;
        summary.busyCycles[e.accIdx] += e.duration();
    }

    if (charge_idle && energy.staticPerPeCycle > 0.0) {
        for (std::size_t a = 0; a < acc.numSubAccs(); ++a) {
            double idle =
                std::max(0.0, summary.makespanCycles -
                                  summary.busyCycles[a]);
            summary.energyUnits +=
                energy.staticPerPeCycle *
                static_cast<double>(acc.subAccs()[a].numPes) * idle;
        }
    }

    summary.energyMj = energy.toMillijoules(summary.energyUnits);
    return summary;
}

ScheduleSummary
Schedule::finalize(const workload::Workload &wl,
                   const accel::Accelerator &acc,
                   const cost::EnergyModel &energy, bool charge_idle,
                   double clock_ghz) const
{
    ScheduleSummary summary =
        finalize(acc, energy, charge_idle, clock_ghz);
    summary.sla = computeSla(wl);
    return summary;
}

SlaStats
Schedule::computeSla(const workload::Workload &wl) const
{
    if (retiredCount > 0)
        util::panic("computeSla needs the full entry list, but ",
                    retiredCount, " entries were retired; read "
                    "rolling counters from OnlineScheduler::stats()");
    SlaStats stats;
    stats.frames = wl.numInstances();
    if (stats.frames == 0)
        return stats;

    // Completion = the latest end cycle over an instance's layers;
    // negative marks an instance with no scheduled layer at all.
    // Fault-killed entries occupy the timeline but complete nothing,
    // so they are excluded from completion and counted separately.
    std::vector<double> completion(wl.numInstances(), -1.0);
    std::vector<char> lost_layer(wl.numInstances(), 0);
    for (const ScheduledLayer &e : list) {
        if (e.instanceIdx >= wl.numInstances())
            util::panic("computeSla: instance ", e.instanceIdx,
                        " out of range");
        if (e.faultKilled) {
            ++stats.faultKilledLayers;
            lost_layer[e.instanceIdx] = 1;
            continue;
        }
        completion[e.instanceIdx] =
            std::max(completion[e.instanceIdx], e.endCycle);
    }
    for (std::size_t i = 0; i < wl.numInstances(); ++i) {
        if (lost_layer[i] && !isDropped(i))
            ++stats.framesRescheduled;
    }

    std::vector<double> latencies;
    latencies.reserve(wl.numInstances());
    for (std::size_t i = 0; i < wl.numInstances(); ++i) {
        const workload::Instance &inst = wl.instances()[i];
        InstanceSla sla;
        sla.instanceIdx = i;
        sla.arrivalCycle = inst.arrivalCycle;
        sla.deadlineCycle = inst.deadlineCycle;
        sla.dropped = isDropped(i);
        sla.scheduled = !sla.dropped && completion[i] >= 0.0;
        if (inst.hasDeadline())
            ++stats.framesWithDeadline;
        if (sla.dropped)
            ++stats.droppedFrames;
        if (sla.scheduled) {
            sla.completionCycle = completion[i];
            sla.latencyCycles = completion[i] - inst.arrivalCycle;
            sla.missed = inst.hasDeadline() &&
                         completion[i] > inst.deadlineCycle + kEps;
        } else {
            // Dropped or never executed: the frame never completes,
            // so it cannot make its deadline and its latency is
            // unbounded. It still counts in the percentiles as +inf
            // — excluding it would let an over-subscribed run that
            // sheds half its frames report a rosy p50/p99.
            sla.completionCycle = workload::kNoDeadline;
            sla.latencyCycles = workload::kNoDeadline;
            sla.missed = inst.hasDeadline();
        }
        stats.maxLatencyCycles =
            std::max(stats.maxLatencyCycles, sla.latencyCycles);
        latencies.push_back(sla.latencyCycles);
        if (sla.missed)
            ++stats.deadlineMisses;
        stats.perInstance.push_back(sla);
    }
    if (stats.framesWithDeadline > 0) {
        stats.missRate =
            static_cast<double>(stats.deadlineMisses) /
            static_cast<double>(stats.framesWithDeadline);
    }

    // Nearest-rank percentiles over *all* frame latencies (+inf for
    // frames that never ran).
    if (!latencies.empty()) {
        std::sort(latencies.begin(), latencies.end());
        auto rank = [&](double q) {
            std::size_t n = latencies.size();
            std::size_t r = static_cast<std::size_t>(
                std::ceil(q * static_cast<double>(n)));
            return latencies[std::min(n - 1, r > 0 ? r - 1 : 0)];
        };
        stats.p50LatencyCycles = rank(0.50);
        stats.p99LatencyCycles = rank(0.99);
    }
    return stats;
}

std::string
Schedule::validate(const workload::Workload &wl,
                   const accel::Accelerator &acc,
                   const FaultTimeline *faults) const
{
    std::ostringstream err;

    if (retiredCount > 0)
        util::panic("validate needs the full entry list, but ",
                    retiredCount, " entries were retired");
    if (numAccs != acc.numSubAccs()) {
        err << "schedule built for " << numAccs
            << " sub-accelerators, accelerator has "
            << acc.numSubAccs();
        return err.str();
    }
    if (faults && faults->numSubAccs() != numAccs) {
        err << "fault timeline built for " << faults->numSubAccs()
            << " sub-accelerators, schedule has " << numAccs;
        return err.str();
    }

    // Dropped frames are intentionally incomplete: a frame shed at
    // admission has no layers at all, a frame shed mid-schedule
    // (dynamic doomed-frame drop) keeps the prefix it had already
    // committed — in either case the scheduled layers must form a
    // dependence-chain prefix, and completeness is judged on the
    // remainder.
    for (std::size_t d : droppedList) {
        if (d >= wl.numInstances()) {
            err << "dropped instance " << d << " out of range";
            return err.str();
        }
    }

    // Completeness: every non-dropped (instance, layer) exactly
    // once; dropped instances contribute a (possibly empty) prefix.
    // Fault-killed entries are wasted attempts, not executions: they
    // are excluded from uniqueness/completeness and checked against
    // the fault timeline separately below.
    std::map<std::pair<std::size_t, std::size_t>, const ScheduledLayer *>
        seen;
    std::vector<const ScheduledLayer *> killed;
    std::vector<std::size_t> layer_count(wl.numInstances(), 0);
    std::vector<std::size_t> max_layer(wl.numInstances(), 0);
    for (const ScheduledLayer &e : list) {
        if (e.instanceIdx >= wl.numInstances()) {
            err << "entry references instance " << e.instanceIdx
                << " out of range";
            return err.str();
        }
        const dnn::Model &model = wl.modelOf(e.instanceIdx);
        if (e.layerIdx >= model.numLayers()) {
            err << "entry references layer " << e.layerIdx
                << " out of range for " << model.name();
            return err.str();
        }
        if (e.faultKilled) {
            if (!faults) {
                err << "fault-killed entry (instance "
                    << e.instanceIdx << " layer " << e.layerIdx
                    << ") without a fault timeline";
                return err.str();
            }
            killed.push_back(&e);
            continue;
        }
        auto key = std::make_pair(e.instanceIdx, e.layerIdx);
        if (seen.count(key)) {
            err << "duplicate entry for instance " << e.instanceIdx
                << " layer " << e.layerIdx;
            return err.str();
        }
        seen[key] = &e;
        ++layer_count[e.instanceIdx];
        max_layer[e.instanceIdx] =
            std::max(max_layer[e.instanceIdx], e.layerIdx);
    }
    for (std::size_t i = 0; i < wl.numInstances(); ++i) {
        const std::size_t expect = wl.modelOf(i).numLayers();
        if (isDropped(i)) {
            // Uniqueness holds, so "prefix" == the max scheduled
            // layer index is count - 1.
            if (layer_count[i] > 0 &&
                max_layer[i] != layer_count[i] - 1) {
                err << "dropped instance " << i << " scheduled "
                    << layer_count[i]
                    << " layers that are not a chain prefix";
                return err.str();
            }
            if (layer_count[i] >= expect) {
                err << "dropped instance " << i
                    << " is fully scheduled";
                return err.str();
            }
        } else if (layer_count[i] != expect) {
            err << "instance " << i << " has " << layer_count[i]
                << " scheduled layers, model has " << expect;
            return err.str();
        }
    }

    // Fault consistency: every entry stays clear of unavailable
    // windows (killed entries end *at* the onset, which is exactly
    // the boundary of availability), and every killed entry ends at
    // a fault onset and precedes the re-execution of its layer.
    if (faults) {
        for (const ScheduledLayer &e : list) {
            if (!faults->windowAvailable(e.accIdx, e.startCycle,
                                         e.duration())) {
                err << "instance " << e.instanceIdx << " layer "
                    << e.layerIdx << " [" << e.startCycle << ", "
                    << e.endCycle << ") overlaps an unavailable "
                    << "window on sub-accelerator " << e.accIdx;
                return err.str();
            }
        }
        for (const ScheduledLayer *k : killed) {
            if (!faults->isFaultOnset(k->accIdx, k->endCycle)) {
                err << "fault-killed entry (instance "
                    << k->instanceIdx << " layer " << k->layerIdx
                    << ") ends at " << k->endCycle
                    << ", not at a fault onset on sub-accelerator "
                    << k->accIdx;
                return err.str();
            }
            auto it = seen.find(
                std::make_pair(k->instanceIdx, k->layerIdx));
            if (it != seen.end()) {
                if (it->second->startCycle < k->endCycle - kEps) {
                    err << "re-execution of instance "
                        << k->instanceIdx << " layer " << k->layerIdx
                        << " starts " << it->second->startCycle
                        << " before its killed attempt ends "
                        << k->endCycle;
                    return err.str();
                }
            } else if (!isDropped(k->instanceIdx)) {
                err << "instance " << k->instanceIdx << " layer "
                    << k->layerIdx << " was fault-killed but never "
                    << "re-executed (and the frame is not dropped)";
                return err.str();
            } else if (k->layerIdx != layer_count[k->instanceIdx]) {
                // A dropped frame's unrecovered kill can only be the
                // attempt at the first uncommitted layer.
                err << "dropped instance " << k->instanceIdx
                    << " has a killed attempt at layer "
                    << k->layerIdx << " beyond its committed prefix";
                return err.str();
            }
        }
    }

    // Reconfiguration windows are planned outages on the donor and
    // receiver: no entry on either party may overlap one (a layer in
    // flight at the window start would have been drained or killed).
    for (const ReconfigEvent &w : reconfigList) {
        if (w.donor >= numAccs || w.receiver >= numAccs) {
            err << "reconfig event references sub-accelerator out of "
                << "range";
            return err.str();
        }
        for (const ScheduledLayer &e : list) {
            if (e.accIdx != w.donor && e.accIdx != w.receiver)
                continue;
            if (e.startCycle < w.endCycle - kEps &&
                e.endCycle > w.startCycle + kEps) {
                err << "instance " << e.instanceIdx << " layer "
                    << e.layerIdx << " [" << e.startCycle << ", "
                    << e.endCycle << ") overlaps reconfig window ["
                    << w.startCycle << ", " << w.endCycle
                    << ") on sub-accelerator " << e.accIdx;
                return err.str();
            }
        }
    }

    // Arrival: no layer starts before its instance arrives.
    for (const ScheduledLayer &e : list) {
        double arrival = wl.instances()[e.instanceIdx].arrivalCycle;
        if (e.startCycle < arrival - kEps) {
            err << "arrival violation: instance " << e.instanceIdx
                << " layer " << e.layerIdx << " starts "
                << e.startCycle << " before arrival " << arrival;
            return err.str();
        }
    }

    // Dependence: layer l starts after layer l-1 of the same
    // instance (killed attempts at layer l obey the same bound —
    // the attempt could not begin before the chain reached it).
    for (const ScheduledLayer &e : list) {
        if (e.layerIdx == 0)
            continue;
        auto prev_it =
            seen.find(std::make_pair(e.instanceIdx, e.layerIdx - 1));
        if (prev_it == seen.end()) {
            err << "instance " << e.instanceIdx << " layer "
                << e.layerIdx << " has no completed predecessor";
            return err.str();
        }
        const ScheduledLayer *prev = prev_it->second;
        if (e.startCycle < prev->endCycle - kEps) {
            err << "dependence violation: instance " << e.instanceIdx
                << " layer " << e.layerIdx << " starts "
                << e.startCycle << " before predecessor ends "
                << prev->endCycle;
            return err.str();
        }
    }

    // Non-overlap per sub-accelerator.
    for (std::size_t a = 0; a < numAccs; ++a) {
        std::vector<const ScheduledLayer *> on_acc;
        for (const ScheduledLayer &e : list) {
            if (e.accIdx == a)
                on_acc.push_back(&e);
        }
        std::sort(on_acc.begin(), on_acc.end(),
                  [](const ScheduledLayer *x, const ScheduledLayer *y) {
                      return x->startCycle < y->startCycle;
                  });
        for (std::size_t i = 1; i < on_acc.size(); ++i) {
            if (on_acc[i]->startCycle <
                on_acc[i - 1]->endCycle - kEps) {
                err << "overlap on sub-accelerator " << a << " at cycle "
                    << on_acc[i]->startCycle;
                return err.str();
            }
        }
    }

    // Global-buffer occupancy: sweep over start/end events.
    struct Event
    {
        double time;
        std::int64_t delta;
    };
    std::vector<Event> events;
    for (const ScheduledLayer &e : list) {
        events.push_back(
            {e.startCycle,
             static_cast<std::int64_t>(e.l2FootprintBytes)});
        events.push_back(
            {e.endCycle,
             -static_cast<std::int64_t>(e.l2FootprintBytes)});
    }
    std::sort(events.begin(), events.end(),
              [](const Event &x, const Event &y) {
                  if (x.time != y.time)
                      return x.time < y.time;
                  return x.delta < y.delta; // releases before claims
              });
    std::int64_t occupancy = 0;
    const std::int64_t cap =
        static_cast<std::int64_t>(acc.globalBufferBytes());
    for (const Event &ev : events) {
        occupancy += ev.delta;
        if (occupancy > cap) {
            err << "global buffer over-subscribed (" << occupancy
                << " > " << cap << " bytes) at cycle " << ev.time;
            return err.str();
        }
    }

    return "";
}

std::uint64_t
Schedule::peakOccupancyBytes() const
{
    if (retiredCount > 0)
        util::panic("peakOccupancyBytes needs the full entry list, "
                    "but ", retiredCount, " entries were retired");
    struct Event
    {
        double time;
        std::int64_t delta;
    };
    std::vector<Event> events;
    for (const ScheduledLayer &e : list) {
        events.push_back(
            {e.startCycle,
             static_cast<std::int64_t>(e.l2FootprintBytes)});
        events.push_back(
            {e.endCycle,
             -static_cast<std::int64_t>(e.l2FootprintBytes)});
    }
    std::sort(events.begin(), events.end(),
              [](const Event &x, const Event &y) {
                  if (x.time != y.time)
                      return x.time < y.time;
                  return x.delta < y.delta;
              });
    std::int64_t occupancy = 0;
    std::int64_t peak = 0;
    for (const Event &ev : events) {
        occupancy += ev.delta;
        peak = std::max(peak, occupancy);
    }
    return static_cast<std::uint64_t>(peak);
}

std::string
checkContextPenalties(const Schedule &schedule,
                      double context_change_cycles)
{
    const std::vector<ScheduledLayer> &entries = schedule.entries();
    for (std::size_t a = 0; a < schedule.numSubAccs(); ++a) {
        std::vector<const ScheduledLayer *> on_acc;
        for (const ScheduledLayer &e : entries) {
            if (e.accIdx == a)
                on_acc.push_back(&e);
        }
        std::sort(on_acc.begin(), on_acc.end(),
                  [](const ScheduledLayer *x, const ScheduledLayer *y) {
                      return x->startCycle < y->startCycle;
                  });
        for (std::size_t i = 0; i < on_acc.size(); ++i) {
            const ScheduledLayer &e = *on_acc[i];
            double expected =
                i > 0 && on_acc[i - 1]->instanceIdx != e.instanceIdx
                    ? context_change_cycles
                    : 0.0;
            if (e.contextPenaltyCycles != expected) {
                std::ostringstream err;
                err << "stale context penalty on sub-accelerator "
                    << a << ": instance " << e.instanceIdx
                    << " layer " << e.layerIdx << " carries "
                    << e.contextPenaltyCycles << " cycles, adjacency "
                    << "requires " << expected;
                return err.str();
            }
        }
    }
    return "";
}

std::string
Schedule::renderTimeline(const workload::Workload &wl, int width) const
{
    return renderTimeline(wl, nullptr, width);
}

std::string
Schedule::renderTimeline(const workload::Workload &wl,
                         const FaultTimeline *faults, int width) const
{
    if (width < 8)
        width = 8;
    const double makespan = makespanCycles();
    std::ostringstream oss;
    if (makespan <= 0.0 || list.empty()) {
        // Nothing executed (or only zero-length entries): no time
        // axis to draw. An all-dropped schedule lands here too —
        // report the drops instead of dividing by a zero makespan.
        oss << "(empty schedule";
        if (!droppedList.empty())
            oss << "; " << droppedList.size() << " dropped frames";
        oss << ")\n";
        return oss.str();
    }

    auto glyph = [](std::size_t instance) {
        static const char digits[] =
            "0123456789abcdefghijklmnopqrstuvwxyz";
        return digits[instance % 36];
    };

    // Per-epoch capacity header: epoch 0's split is recovered from
    // the first event (the donor had its moved PEs back, the
    // receiver had not gained them yet).
    if (!reconfigList.empty()) {
        std::vector<std::uint64_t> first = reconfigList.front().peSplit;
        first[reconfigList.front().donor] +=
            reconfigList.front().movedPes;
        first[reconfigList.front().receiver] -=
            reconfigList.front().movedPes;
        auto print_epoch = [&](std::uint64_t id, double from,
                               const std::vector<std::uint64_t> &pes) {
            oss << "epoch " << id << " @ " << from << ": ";
            for (std::size_t a = 0; a < pes.size(); ++a)
                oss << (a == 0 ? "" : "/") << pes[a];
            oss << " pe\n";
        };
        print_epoch(reconfigList.front().epochId - 1, 0.0, first);
        for (const ReconfigEvent &w : reconfigList)
            print_epoch(w.epochId, w.endCycle, w.peSplit);
    }

    for (std::size_t a = 0; a < numAccs; ++a) {
        std::string row(static_cast<std::size_t>(width), '.');
        if (faults) {
            // Mark unavailable cells first; busy entries (which
            // validate() keeps clear of outages) overwrite them.
            for (int c = 0; c < width; ++c) {
                double t = (static_cast<double>(c) + 0.5) /
                           static_cast<double>(width) * makespan;
                if (!faults->availableAt(a, t))
                    row[static_cast<std::size_t>(c)] = 'x';
            }
        }
        // Reconfiguration windows on this row ('R', distinct from
        // fault 'x'); busy entries never overlap them (validate()).
        for (const ReconfigEvent &w : reconfigList) {
            if (w.donor != a && w.receiver != a)
                continue;
            for (int c = 0; c < width; ++c) {
                double t = (static_cast<double>(c) + 0.5) /
                           static_cast<double>(width) * makespan;
                if (t >= w.startCycle && t < w.endCycle)
                    row[static_cast<std::size_t>(c)] = 'R';
            }
        }
        for (const ScheduledLayer &e : list) {
            if (e.accIdx != a)
                continue;
            int lo = static_cast<int>(e.startCycle / makespan * width);
            int hi = static_cast<int>(e.endCycle / makespan * width);
            lo = std::min(lo, width - 1);
            hi = std::max(lo + 1, std::min(hi, width));
            for (int c = lo; c < hi; ++c)
                row[static_cast<std::size_t>(c)] =
                    glyph(e.instanceIdx);
        }
        oss << "acc" << a << " |" << row << "|\n";
    }
    oss << "       0";
    for (int i = 0; i < width - 8; ++i)
        oss << ' ';
    oss << makespan << " cycles\n";
    oss << "       (cells: workload instance index; '.', idle";
    if (faults)
        oss << "; 'x', unavailable";
    if (!reconfigList.empty())
        oss << "; 'R', reconfiguration";
    oss << ")";
    if (wl.numInstances() > 0)
        oss << "\n";
    return oss.str();
}

} // namespace herald::sched
