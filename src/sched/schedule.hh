/**
 * @file
 * Layer execution schedules: the output of the schedulers and the
 * object the evaluation metrics (latency / energy / EDP) are computed
 * from. A schedule assigns every layer of every workload instance to
 * a sub-accelerator with a start/end time in cycles.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "accel/accelerator.hh"
#include "cost/energy_model.hh"
#include "dataflow/style.hh"
#include "workload/workload.hh"

namespace herald::sched
{

class FaultTimeline;

/** One scheduled layer execution. */
struct ScheduledLayer
{
    std::size_t instanceIdx = 0; //!< workload instance
    std::size_t layerIdx = 0;    //!< layer within the instance's model
    std::size_t accIdx = 0;      //!< sub-accelerator
    dataflow::DataflowStyle style = dataflow::DataflowStyle::NVDLA;
    double startCycle = 0.0;
    double endCycle = 0.0;
    double energyUnits = 0.0;    //!< dynamic energy (MAC units)
    std::uint64_t l2FootprintBytes = 0; //!< staging occupancy
    /**
     * Context-change share of the duration: the penalty charged
     * because the previous entry on this sub-accelerator (in time
     * order) belongs to a different instance — 0 when no penalty
     * applies. duration() - contextPenaltyCycles is the pure layer
     * cost; post-processing keeps this consistent with the actual
     * adjacency when it reorders entries.
     */
    double contextPenaltyCycles = 0.0;
    /**
     * The layer was in flight when a fault onset hit its
     * sub-accelerator (sched/fault_model.hh): it occupied
     * [startCycle, endCycle) — endCycle is exactly the onset — but
     * performed zero useful work, and a later entry re-executes the
     * same (instance, layer) on a surviving sub-accelerator (or the
     * frame was dropped). energyUnits holds the wasted fraction of
     * the layer's energy; contextPenaltyCycles still records the
     * penalty *planned* at dispatch so the adjacency invariant
     * (checkContextPenalties) stays exact — duration() -
     * contextPenaltyCycles is meaningless for killed entries.
     */
    bool faultKilled = false;

    double duration() const { return endCycle - startCycle; }
};

/**
 * Exact (bit-level on the doubles) equality — the equivalence suite
 * compares production and reference schedules entry by entry.
 */
bool operator==(const ScheduledLayer &a, const ScheduledLayer &b);
inline bool
operator!=(const ScheduledLayer &a, const ScheduledLayer &b)
{
    return !(a == b);
}

/**
 * One committed runtime repartitioning (sched/reconfig.hh): the
 * donor and receiver sub-accelerators were both drained and offline
 * for [startCycle, endCycle) — a planned outage — after which the
 * partition epoch @c epochId (with per-sub-acc PE split @c peSplit)
 * is in force. validate() rejects entries on either party that
 * overlap the window.
 */
struct ReconfigEvent
{
    std::uint64_t epochId = 0;
    std::size_t donor = 0;
    std::size_t receiver = 0;
    std::uint64_t movedPes = 0;
    double startCycle = 0.0;
    double endCycle = 0.0;
    std::vector<std::uint64_t> peSplit; //!< post-migration allocation
};

/** Exact (bit-level on the doubles) equality. */
bool operator==(const ReconfigEvent &a, const ReconfigEvent &b);
inline bool
operator!=(const ReconfigEvent &a, const ReconfigEvent &b)
{
    return !(a == b);
}

/** Per-instance (frame) service-level outcome. */
struct InstanceSla
{
    std::size_t instanceIdx = 0;
    double arrivalCycle = 0.0;
    double completionCycle = 0.0; //!< kNoDeadline when !scheduled
    double latencyCycles = 0.0;   //!< completion - arrival
    double deadlineCycle = 0.0;   //!< absolute; kNoDeadline if none
    bool scheduled = false; //!< any layer present in the schedule
    bool missed = false;    //!< completion > deadline, or never run
    bool dropped = false;   //!< rejected by the drop policy
};

/**
 * SLA metrics of a schedule against a real-time workload.
 *
 * Honest accounting: the latency percentiles (p50/p99/max) cover
 * *every* frame — a frame that was dropped or never scheduled
 * contributes +infinity, since it never completes. An over-subscribed
 * scenario that drops half its frames therefore reports an infinite
 * p99 instead of the rosy tail of the survivors.
 */
struct SlaStats
{
    std::size_t frames = 0;             //!< workload instances
    std::size_t framesWithDeadline = 0; //!< finite-deadline subset
    std::size_t deadlineMisses = 0; //!< incl. dropped/never-scheduled
    std::size_t droppedFrames = 0;  //!< admission-dropped (subset of
                                    //!< deadlineMisses)
    double missRate = 0.0; //!< misses / framesWithDeadline (0 if none)
    double p50LatencyCycles = 0.0; //!< median frame latency
    double p99LatencyCycles = 0.0; //!< tail; +inf if frames never ran
    double maxLatencyCycles = 0.0; //!< +inf if any frame never ran
    /** Layer executions killed by a fault onset (wasted work). */
    std::size_t faultKilledLayers = 0;
    /**
     * Non-dropped frames that lost >= 1 layer to a fault and were
     * re-dispatched to completion on surviving sub-accelerators.
     */
    std::size_t framesRescheduled = 0;
    std::vector<InstanceSla> perInstance; //!< by instance index
};

/** Aggregate metrics of a finalized schedule. */
struct ScheduleSummary
{
    double makespanCycles = 0.0;
    double latencySec = 0.0;
    double energyUnits = 0.0; //!< dynamic + idle static
    double energyMj = 0.0;
    std::vector<double> busyCycles; //!< per sub-accelerator
    /** Filled by the workload-aware finalize overload. */
    SlaStats sla{};

    double edp() const { return latencySec * energyMj; }
};

/**
 * A (possibly in-construction) schedule. Entries are appended by the
 * schedulers and may be retimed by post-processing; finalize()
 * computes the summary including idle static energy for
 * under-utilized sub-accelerators (dark silicon).
 */
class Schedule
{
  public:
    explicit Schedule(std::size_t num_sub_accs)
        : numAccs(num_sub_accs)
    {
    }

    void add(ScheduledLayer entry);

    /** Pre-size the entry list (schedulers know totalLayers()). */
    void reserve(std::size_t num_entries) { list.reserve(num_entries); }

    /**
     * Record that instance @p instance_idx was shed by the drop
     * policy: no *further* layers of it will appear in the schedule.
     * A frame dropped at admission has no layers at all; a frame
     * dropped mid-schedule (DropPolicy::DoomedFrames) keeps the
     * dependence-chain prefix it had already committed. validate()
     * accepts exactly those shapes and computeSla() counts every
     * dropped frame as a deadline miss with unbounded latency.
     * Any call order; duplicates are ignored.
     */
    void markDropped(std::size_t instance_idx);

    /** Instances rejected by the drop policy, ascending. */
    const std::vector<std::size_t> &droppedInstances() const
    {
        return droppedList;
    }

    /** Whether @p instance_idx was dropped. */
    bool isDropped(std::size_t instance_idx) const;

    /**
     * Record a committed runtime repartitioning. Events arrive in
     * nondecreasing window order (the schedulers commit them as the
     * dispatch frontier advances).
     */
    void addReconfig(ReconfigEvent event);

    /** Committed repartitionings, in commit order. */
    const std::vector<ReconfigEvent> &reconfigEvents() const
    {
        return reconfigList;
    }

    /**
     * Entry-by-entry exact equality against @p other (same order,
     * every field identical, including the double-typed times).
     */
    bool identicalTo(const Schedule &other) const;

    /**
     * Remove every entry with endCycle <= @p cycle, folding it into
     * compact aggregates (per-sub-accelerator busy cycles, energy,
     * makespan, count) so makespanCycles() / busyCycles() /
     * finalize() stay exact while live storage is O(in-flight
     * entries). Commit order is preserved among survivors. An
     * optional @p observer sees each retired entry in list order
     * (within one sub-accelerator that is time order — the
     * schedulers commit per-accelerator work with monotone
     * frontiers), which is how the online scheduler's watchdog
     * audits history it is about to forget. Queries that need the
     * full entry list (computeSla, validate, peakOccupancyBytes)
     * fail loudly once anything was retired. Returns the number of
     * entries retired.
     */
    std::size_t retireEntriesBefore(
        double cycle,
        const std::function<void(const ScheduledLayer &)> &observer =
            {});

    /** Entries removed by retireEntriesBefore() so far. */
    std::size_t retiredEntries() const { return retiredCount; }

    const std::vector<ScheduledLayer> &entries() const { return list; }
    std::vector<ScheduledLayer> &mutableEntries() { return list; }
    std::size_t numSubAccs() const { return numAccs; }

    /** Latest end time over all entries. */
    double makespanCycles() const;

    /** Sum of entry durations on sub-accelerator @p acc_idx. */
    double busyCycles(std::size_t acc_idx) const;

    /**
     * Compute the summary. Idle static energy is charged for every
     * sub-accelerator's PEs over (makespan - busy) when the energy
     * model has a non-zero static coefficient and @p charge_idle.
     */
    ScheduleSummary finalize(const accel::Accelerator &acc,
                             const cost::EnergyModel &energy,
                             bool charge_idle = true,
                             double clock_ghz = 1.0) const;

    /**
     * Workload-aware finalize: everything the base overload computes
     * plus the SLA statistics (per-instance completion latency,
     * deadline miss count/rate, p50/p99 frame latency) against the
     * workload's arrivals and deadlines.
     */
    ScheduleSummary finalize(const workload::Workload &wl,
                             const accel::Accelerator &acc,
                             const cost::EnergyModel &energy,
                             bool charge_idle = true,
                             double clock_ghz = 1.0) const;

    /** The SLA statistics alone (also embedded by finalize(wl,..)). */
    SlaStats computeSla(const workload::Workload &wl) const;

    /**
     * Validate against the workload and accelerator: completeness,
     * dependence order, per-sub-accelerator non-overlap, and global-
     * buffer occupancy. Returns an empty string when valid, else a
     * description of the first violation.
     *
     * With a non-null @p faults the fault-consistency rules apply
     * too: no entry may overlap an unavailable window, every
     * fault-killed entry must end exactly at a fault onset on its
     * sub-accelerator and precede the re-execution of its (instance,
     * layer), and completeness is judged on the non-killed entries.
     * Without @p faults any fault-killed entry is itself a
     * violation.
     */
    std::string validate(const workload::Workload &wl,
                         const accel::Accelerator &acc,
                         const FaultTimeline *faults = nullptr) const;

    /**
     * Peak concurrent global-buffer occupancy in bytes (one of the
     * "Mem Occupancy" outputs of Fig. 10).
     */
    std::uint64_t peakOccupancyBytes() const;

    /**
     * Render an ASCII timeline (Fig. 7-style): one row per
     * sub-accelerator, @p width columns spanning the makespan, each
     * cell showing the instance index running there (or '.' idle).
     * An empty or fully-dropped schedule renders a one-line note
     * instead of dividing by a zero makespan.
     */
    std::string renderTimeline(const workload::Workload &wl,
                               int width = 72) const;

    /**
     * Same, overlaying @p faults: idle cells where the
     * sub-accelerator is inside an outage window or past its
     * permanent failure render as 'x'.
     */
    std::string renderTimeline(const workload::Workload &wl,
                               const FaultTimeline *faults,
                               int width) const;

  private:
    std::size_t numAccs;
    std::vector<ScheduledLayer> list;
    std::vector<std::size_t> droppedList; //!< sorted ascending
    std::vector<ReconfigEvent> reconfigList; //!< commit order

    // Aggregates of retired history (retireEntriesBefore).
    std::size_t retiredCount = 0;
    double retiredMakespan = 0.0;
    double retiredEnergy = 0.0;
    std::vector<double> retiredBusy; //!< per sub-acc; lazily sized
};

/**
 * Verify that every entry's contextPenaltyCycles matches the
 * schedule's actual per-sub-accelerator adjacency: an entry whose
 * time-order predecessor on its sub-accelerator belongs to a
 * different instance must carry exactly @p context_change_cycles,
 * every other entry exactly 0. Returns an empty string when
 * consistent, else a description of the first stale penalty — the
 * post-processing passes assert this after reordering (the historical
 * bug was penalties baked in at dispatch and never re-checked).
 */
std::string checkContextPenalties(const Schedule &schedule,
                                  double context_change_cycles);

} // namespace herald::sched

