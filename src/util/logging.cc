#include "util/logging.hh"

#include <cstdio>
#include <stdexcept>

namespace herald::util
{

namespace
{
bool verboseFlag = true;
} // namespace

void
setVerbose(bool verbose)
{
    verboseFlag = verbose;
}

bool
verbose()
{
    return verboseFlag;
}

void
logMessage(LogLevel level, const std::string &msg)
{
    switch (level) {
      case LogLevel::Inform:
        if (verboseFlag)
            std::fprintf(stderr, "info: %s\n", msg.c_str());
        break;
      case LogLevel::Warn:
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
        break;
      case LogLevel::Fatal:
        std::fprintf(stderr, "fatal: %s\n", msg.c_str());
        throw std::runtime_error(msg);
      case LogLevel::Panic:
        std::fprintf(stderr, "panic: %s\n", msg.c_str());
        throw std::logic_error(msg);
    }
}

} // namespace herald::util
