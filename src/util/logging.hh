/**
 * @file
 * Status/error reporting helpers in the gem5 idiom.
 *
 * panic() is for internal invariant violations (bugs in Herald itself);
 * fatal() is for user errors (bad configuration, illegal mappings the
 * user constructed by hand); warn()/inform() never stop execution.
 */

#pragma once

#include <sstream>
#include <string>

namespace herald::util
{

/** Severity of a log message. */
enum class LogLevel
{
    Inform,
    Warn,
    Fatal,
    Panic,
};

/**
 * Emit a message at the given severity. Fatal and Panic throw
 * std::runtime_error / std::logic_error respectively so that library
 * users (and tests) can recover; standalone tools let them propagate.
 */
void logMessage(LogLevel level, const std::string &msg);

/** Enable/disable Inform-level output (benches silence it). */
void setVerbose(bool verbose);

/** Whether Inform-level output is currently enabled. */
bool verbose();

namespace detail
{

template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

/** Report an internal invariant violation; throws std::logic_error. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    logMessage(LogLevel::Panic,
               detail::concat(std::forward<Args>(args)...));
    throw std::logic_error("unreachable");
}

/** Report an unrecoverable user error; throws std::runtime_error. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    logMessage(LogLevel::Fatal,
               detail::concat(std::forward<Args>(args)...));
    throw std::runtime_error("unreachable");
}

/** Report a suspicious-but-survivable condition. */
template <typename... Args>
void
warn(Args &&...args)
{
    logMessage(LogLevel::Warn,
               detail::concat(std::forward<Args>(args)...));
}

/** Report normal operating status. */
template <typename... Args>
void
inform(Args &&...args)
{
    logMessage(LogLevel::Inform,
               detail::concat(std::forward<Args>(args)...));
}

} // namespace herald::util

