#include "util/math_utils.hh"

#include <algorithm>

#include "util/logging.hh"

namespace herald::util
{

std::uint64_t
ceilDiv(std::uint64_t num, std::uint64_t den)
{
    if (den == 0)
        panic("ceilDiv by zero (num=", num, ")");
    return (num + den - 1) / den;
}

std::uint64_t
roundUp(std::uint64_t value, std::uint64_t mult)
{
    if (mult == 0)
        panic("roundUp with zero multiple");
    return ceilDiv(value, mult) * mult;
}

std::vector<std::uint64_t>
divisors(std::uint64_t value)
{
    std::vector<std::uint64_t> low;
    std::vector<std::uint64_t> high;
    for (std::uint64_t d = 1; d * d <= value; ++d) {
        if (value % d == 0) {
            low.push_back(d);
            if (d != value / d)
                high.push_back(value / d);
        }
    }
    low.insert(low.end(), high.rbegin(), high.rend());
    return low;
}

std::uint64_t
largestDivisorAtMost(std::uint64_t value, std::uint64_t bound)
{
    if (value == 0 || bound == 0)
        return 1;
    std::uint64_t best = 1;
    for (std::uint64_t d = 1; d * d <= value; ++d) {
        if (value % d != 0)
            continue;
        if (d <= bound)
            best = std::max(best, d);
        std::uint64_t other = value / d;
        if (other <= bound)
            best = std::max(best, other);
    }
    return best;
}

FactorPair
bestFactorPair(std::uint64_t pes, std::uint64_t bound_a,
               std::uint64_t bound_b)
{
    bound_a = std::max<std::uint64_t>(bound_a, 1);
    bound_b = std::max<std::uint64_t>(bound_b, 1);
    pes = std::max<std::uint64_t>(pes, 1);

    FactorPair best{1, 1};
    std::uint64_t best_prod = 1;
    std::uint64_t best_imbalance = ~0ULL;

    // Candidate 'a' values: every value 1..min(bound_a, pes) would be
    // O(pes); restrict to divisors of pes plus the bounds themselves,
    // which always contains the optimum for the product metric.
    std::vector<std::uint64_t> cands = divisors(pes);
    cands.push_back(std::min(bound_a, pes));
    for (std::uint64_t a : cands) {
        if (a > bound_a || a == 0)
            continue;
        std::uint64_t b = std::min(bound_b, pes / a);
        if (b == 0)
            continue;
        std::uint64_t prod = a * b;
        std::uint64_t imbalance = a > b ? a - b : b - a;
        if (prod > best_prod ||
            (prod == best_prod && imbalance < best_imbalance)) {
            best_prod = prod;
            best_imbalance = imbalance;
            best = FactorPair{a, b};
        }
    }
    return best;
}

std::uint64_t
isqrt(std::uint64_t value)
{
    if (value == 0)
        return 0;
    std::uint64_t r = static_cast<std::uint64_t>(
        std::max(1.0, std::min((double)value,
                               __builtin_sqrt((double)value))));
    while (r * r > value)
        --r;
    while ((r + 1) * (r + 1) <= value)
        ++r;
    return r;
}

} // namespace herald::util
