/**
 * @file
 * Small integer-math helpers shared by the mapper, cost model and DSE.
 */

#pragma once

#include <cstdint>
#include <vector>

namespace herald::util
{

/** Ceiling division for unsigned integers; ceilDiv(x, 0) panics. */
std::uint64_t ceilDiv(std::uint64_t num, std::uint64_t den);

/** Round @p value up to the next multiple of @p mult (mult > 0). */
std::uint64_t roundUp(std::uint64_t value, std::uint64_t mult);

/** All positive divisors of @p value in ascending order. */
std::vector<std::uint64_t> divisors(std::uint64_t value);

/**
 * The largest divisor of @p value that is <= @p bound, or 1 when no
 * divisor fits. Used to pick spatial tile sizes that divide a layer
 * dimension evenly whenever possible.
 */
std::uint64_t largestDivisorAtMost(std::uint64_t value,
                                   std::uint64_t bound);

/**
 * Factor @p pes into (a, b) with a*b <= pes, a <= boundA, b <= boundB,
 * maximizing a*b and secondarily balancing the two factors. Used for
 * two-dimensional spatial partitioning (e.g. K x C or Y x X).
 */
struct FactorPair
{
    std::uint64_t first;
    std::uint64_t second;
};

FactorPair bestFactorPair(std::uint64_t pes, std::uint64_t bound_a,
                          std::uint64_t bound_b);

/** Integer floor of sqrt. */
std::uint64_t isqrt(std::uint64_t value);

/**
 * Deterministic 64-bit PRNG (splitmix64). Herald never uses
 * std::random_device so that every DSE run is reproducible.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state(seed) {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform value in [0, bound). @p bound must be > 0. */
    std::uint64_t
    nextBounded(std::uint64_t bound)
    {
        return next() % bound;
    }

    /**
     * Uniform double in [0, 1): the top 53 bits of next(), scaled.
     * Exactly reproducible across platforms (a single multiply of an
     * integer by a power of two), which the annealing acceptance
     * test relies on for bit-identical reruns.
     */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    std::uint64_t state;
};

} // namespace herald::util

