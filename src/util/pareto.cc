#include "util/pareto.hh"

#include <algorithm>
#include <limits>

#include "util/logging.hh"

namespace herald::util
{

bool
dominates(const DesignPoint &a, const DesignPoint &b)
{
    return a.latency <= b.latency && a.energy <= b.energy &&
           (a.latency < b.latency || a.energy < b.energy);
}

std::vector<DesignPoint>
paretoFront(std::vector<DesignPoint> points)
{
    std::sort(points.begin(), points.end(),
              [](const DesignPoint &a, const DesignPoint &b) {
                  if (a.latency != b.latency)
                      return a.latency < b.latency;
                  return a.energy < b.energy;
              });

    std::vector<DesignPoint> front;
    double best_energy = std::numeric_limits<double>::infinity();
    for (const DesignPoint &p : points) {
        if (p.energy < best_energy) {
            front.push_back(p);
            best_energy = p.energy;
        }
    }
    return front;
}

std::size_t
minEdpIndex(const std::vector<DesignPoint> &points)
{
    if (points.empty())
        panic("minEdpIndex on empty point set");
    std::size_t best = 0;
    for (std::size_t i = 1; i < points.size(); ++i) {
        if (points[i].edp() < points[best].edp())
            best = i;
    }
    return best;
}

} // namespace herald::util
