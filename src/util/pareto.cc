#include "util/pareto.hh"

#include <algorithm>

#include "util/logging.hh"

namespace herald::util
{

bool
dominates(const DesignPoint &a, const DesignPoint &b)
{
    return a.latency <= b.latency && a.energy <= b.energy &&
           a.slaMisses <= b.slaMisses &&
           (a.latency < b.latency || a.energy < b.energy ||
            a.slaMisses < b.slaMisses);
}

std::vector<std::size_t>
paretoFrontIndices(const std::vector<DesignPoint> &points)
{
    // Sort index handles lexicographically by (latency, energy,
    // misses, original index). Any dominator of p is <= p in every
    // axis and != p in one, so it sorts strictly before p — one
    // forward sweep testing each candidate against the survivors so
    // far is therefore complete. The trailing original-index
    // tie-break makes the order (and the duplicate representative) a
    // pure function of the point set.
    std::vector<std::size_t> order(points.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t ia, std::size_t ib) {
                  const DesignPoint &a = points[ia];
                  const DesignPoint &b = points[ib];
                  if (a.latency != b.latency)
                      return a.latency < b.latency;
                  if (a.energy != b.energy)
                      return a.energy < b.energy;
                  if (a.slaMisses != b.slaMisses)
                      return a.slaMisses < b.slaMisses;
                  return ia < ib;
              });

    std::vector<std::size_t> front;
    for (std::size_t idx : order) {
        const DesignPoint &p = points[idx];
        bool keep = true;
        for (std::size_t kept : front) {
            const DesignPoint &f = points[kept];
            // Exact duplicates collapse to the first representative.
            if (dominates(f, p) ||
                (f.latency == p.latency && f.energy == p.energy &&
                 f.slaMisses == p.slaMisses)) {
                keep = false;
                break;
            }
        }
        if (keep)
            front.push_back(idx);
    }
    return front;
}

std::vector<DesignPoint>
paretoFront(std::vector<DesignPoint> points)
{
    std::vector<DesignPoint> out;
    for (std::size_t idx : paretoFrontIndices(points))
        out.push_back(points[idx]);
    return out;
}

std::size_t
minEdpIndex(const std::vector<DesignPoint> &points)
{
    if (points.empty())
        panic("minEdpIndex on empty point set");
    std::size_t best = 0;
    for (std::size_t i = 1; i < points.size(); ++i) {
        if (points[i].edp() < points[best].edp())
            best = i;
    }
    return best;
}

} // namespace herald::util
