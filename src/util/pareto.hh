/**
 * @file
 * Multi-objective Pareto-front extraction over design points, used to
 * reproduce the Pareto curves of Fig. 11, to pick final designs, and
 * by the DSE's Objective::ParetoFrontier mode (dse/herald_dse.hh).
 *
 * Objectives are latency, energy and SLA deadline misses, all
 * minimized. The SLA axis defaults to 0, so callers that only care
 * about the paper's two-dimensional latency/energy trade-off (the
 * figure benches) get exactly the classic behavior: a tied third
 * axis never influences dominance.
 */

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace herald::util
{

/**
 * A single design point in (latency, energy, SLA-miss) space.
 *
 * Dominance semantics (see dominates()): point A dominates point B
 * when A is no worse in *every* objective (latency, energy,
 * slaMisses) and strictly better in at least one. Two points with
 * identical coordinates dominate in neither direction, and
 * "incomparable" points (each wins a different axis) are both kept
 * on the frontier. The Pareto front is the subset no other point
 * dominates — the designs for which no free improvement exists.
 */
struct DesignPoint
{
    double latency = 0.0; //!< seconds (or cycles; units are uniform)
    double energy = 0.0;  //!< millijoules (or pJ; units are uniform)
    std::string label;    //!< free-form tag ("NVDLA FDA", "HDA 4k/12k")
    /**
     * Deadline misses of the schedule (SlaStats::deadlineMisses,
     * dropped frames included). Declared after @c label so the many
     * pre-existing two-objective aggregate initializers keep
     * compiling; defaults to 0, which makes the third axis inert for
     * deadline-free workloads.
     */
    double slaMisses = 0.0;

    /** Energy-delay product, the paper's headline scalar metric. */
    double edp() const { return latency * energy; }
};

/**
 * True when @p a dominates @p b: a.latency <= b.latency &&
 * a.energy <= b.energy && a.slaMisses <= b.slaMisses, with strict
 * inequality in at least one of the three. Irreflexive and
 * transitive; see DesignPoint for the full semantics.
 */
bool dominates(const DesignPoint &a, const DesignPoint &b);

/**
 * Extract the Pareto-optimal subset of @p points (minimizing
 * latency, energy and SLA misses), sorted by ascending latency
 * (ties: ascending energy, then ascending misses). Exact coordinate
 * duplicates collapse to one representative — the first in the
 * sorted order — so the front is a set of distinct trade-offs. The
 * result is a pure function of the point *set*: any permutation of
 * the input yields the identical front.
 */
std::vector<DesignPoint> paretoFront(std::vector<DesignPoint> points);

/**
 * Index view of the same extraction: indices into @p points of the
 * Pareto-optimal subset, in the same ascending-latency order
 * (coordinate ties resolve to the lowest index, and exact coordinate
 * duplicates keep only the lowest index). This is what the DSE
 * stores in DseResult::frontier — indices keep the frontier joined
 * to the full evaluated-point records.
 */
std::vector<std::size_t>
paretoFrontIndices(const std::vector<DesignPoint> &points);

/** Index of the point with minimal EDP; panics on empty input. */
std::size_t minEdpIndex(const std::vector<DesignPoint> &points);

} // namespace herald::util
