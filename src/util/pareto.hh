/**
 * @file
 * Pareto-front extraction over (latency, energy) design points, used to
 * reproduce the Pareto curves of Fig. 11 and to pick final designs.
 */

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace herald::util
{

/** A single design point in latency/energy space. */
struct DesignPoint
{
    double latency = 0.0; //!< seconds (or cycles; units are uniform)
    double energy = 0.0;  //!< millijoules (or pJ; units are uniform)
    std::string label;    //!< free-form tag ("NVDLA FDA", "HDA 4k/12k")

    /** Energy-delay product, the paper's headline scalar metric. */
    double edp() const { return latency * energy; }
};

/** True when @p a dominates @p b (<= in both axes, < in at least one). */
bool dominates(const DesignPoint &a, const DesignPoint &b);

/**
 * Extract the Pareto-optimal subset of @p points (minimizing both
 * latency and energy), sorted by ascending latency.
 */
std::vector<DesignPoint> paretoFront(std::vector<DesignPoint> points);

/** Index of the point with minimal EDP; panics on empty input. */
std::size_t minEdpIndex(const std::vector<DesignPoint> &points);

} // namespace herald::util

