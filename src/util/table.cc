#include "util/table.hh"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <sstream>

#include "util/logging.hh"

namespace herald::util
{

Table::Table(std::vector<std::string> headers)
    : headers(std::move(headers))
{
    if (this->headers.empty())
        panic("Table requires at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers.size()) {
        panic("Table row arity ", cells.size(), " != header arity ",
              headers.size());
    }
    rows.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers.size());
    for (std::size_t c = 0; c < headers.size(); ++c)
        widths[c] = headers[c].size();
    for (const auto &row : rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]))
               << row[c];
            os << (c + 1 == row.size() ? "\n" : "  ");
        }
    };

    print_row(headers);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
    for (const auto &row : rows)
        print_row(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            os << row[c] << (c + 1 == row.size() ? "\n" : ",");
    };
    print_row(headers);
    for (const auto &row : rows)
        print_row(row);
}

std::string
fmtDouble(double value, int digits)
{
    std::ostringstream oss;
    oss << std::setprecision(digits);
    if (value != 0.0 && (std::abs(value) >= 1e6 || std::abs(value) < 1e-3))
        oss << std::scientific;
    else
        oss << std::fixed;
    oss << value;
    return oss.str();
}

std::string
fmtPercent(double fraction, int digits)
{
    std::ostringstream oss;
    oss << std::showpos << std::fixed << std::setprecision(digits)
        << fraction * 100.0 << "%";
    return oss.str();
}

} // namespace herald::util
