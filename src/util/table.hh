/**
 * @file
 * Minimal aligned-column table printer used by the benchmark binaries
 * to emit paper-style tables, plus a CSV writer for plot series.
 */

#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace herald::util
{

/**
 * Accumulates rows of string cells and prints them with aligned
 * columns. Intended for human-readable bench output that mirrors the
 * paper's tables.
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append one row; must have the same arity as the headers. */
    void addRow(std::vector<std::string> cells);

    /** Render with padded columns and a header underline. */
    void print(std::ostream &os) const;

    /** Render as CSV (for plotting scripts). */
    void printCsv(std::ostream &os) const;

    /** Number of data rows added so far. */
    std::size_t numRows() const { return rows.size(); }

  private:
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
};

/** Format @p value with @p digits significant decimal digits. */
std::string fmtDouble(double value, int digits = 4);

/** Format a ratio as a signed percentage string, e.g. "-65.3%". */
std::string fmtPercent(double fraction, int digits = 1);

} // namespace herald::util

