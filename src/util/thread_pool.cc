#include "util/thread_pool.hh"

#include <atomic>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <exception>

#include "util/logging.hh"

namespace herald::util
{

namespace
{

/**
 * Parse HERALD_THREADS strictly: optional whitespace, then digits
 * only (no sign, no trailing junk), value in [1, kMaxThreads].
 * Returns 0 on any malformed, zero, negative, or absurd input —
 * strtoul alone would wrap negatives to 2^64-ish values and silently
 * accept "8 bananas".
 */
std::size_t
parseThreadEnv(const char *env)
{
    // A huge explicit count is far more likely a typo'd value (or a
    // negative wrapped by strtoul) than a real 4k-thread machine.
    constexpr unsigned long kMaxThreads = 4096;
    const char *p = env;
    while (std::isspace(static_cast<unsigned char>(*p)))
        ++p;
    if (!std::isdigit(static_cast<unsigned char>(*p)))
        return 0; // empty, garbage, or a sign ('-3' must not wrap)
    char *end = nullptr;
    errno = 0;
    unsigned long parsed = std::strtoul(p, &end, 10);
    if (errno == ERANGE)
        return 0;
    while (std::isspace(static_cast<unsigned char>(*end)))
        ++end; // surrounding whitespace is fine, "8 bananas" is not
    if (*end != '\0')
        return 0;
    if (parsed < 1 || parsed > kMaxThreads)
        return 0;
    return static_cast<std::size_t>(parsed);
}

} // namespace

std::size_t
resolveThreadCount(std::size_t requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("HERALD_THREADS")) {
        std::size_t parsed = parseThreadEnv(env);
        if (parsed > 0)
            return parsed;
        // Warn once per process; pools are created per sweep and a
        // bad environment variable would otherwise spam every run.
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true)) {
            warn("HERALD_THREADS='", env,
                 "' is not a thread count in [1, 4096]; falling "
                 "back to hardware concurrency");
        }
    }
    std::size_t hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(std::size_t num_threads)
{
    std::size_t n = resolveThreadCount(num_threads);
    workers.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(queueMutex);
        stopping = true;
    }
    queueCv.notify_all();
    for (std::thread &worker : workers)
        worker.join();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(queueMutex);
            queueCv.wait(lock,
                         [this] { return stopping || !tasks.empty(); });
            if (tasks.empty()) {
                if (stopping)
                    return;
                continue;
            }
            task = std::move(tasks.front());
            tasks.pop();
        }
        task();
    }
}

void
ThreadPool::parallelFor(std::size_t begin, std::size_t end,
                        const std::function<void(std::size_t)> &fn)
{
    if (begin >= end)
        return;

    auto next = std::make_shared<std::atomic<std::size_t>>(begin);
    auto first_error =
        std::make_shared<std::atomic<bool>>(false);
    auto error = std::make_shared<std::exception_ptr>();
    auto error_mutex = std::make_shared<std::mutex>();

    auto drain = [next, end, fn, first_error, error, error_mutex] {
        for (;;) {
            std::size_t i = next->fetch_add(1);
            if (i >= end)
                return;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(*error_mutex);
                if (!first_error->exchange(true))
                    *error = std::current_exception();
            }
        }
    };

    // One helper task per worker; each drains indices until empty.
    std::vector<std::future<void>> helpers;
    helpers.reserve(workers.size());
    for (std::size_t w = 0; w < workers.size(); ++w)
        helpers.push_back(submit(drain));

    drain(); // the caller works too

    for (std::future<void> &helper : helpers)
        helper.wait();

    if (first_error->load())
        std::rethrow_exception(*error);
}

} // namespace herald::util
