#include "util/thread_pool.hh"

#include <atomic>
#include <cstdlib>
#include <exception>

namespace herald::util
{

std::size_t
resolveThreadCount(std::size_t requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("HERALD_THREADS")) {
        // strtoul wraps negative input around to huge values; cap at
        // a sane bound so garbage degrades to the hardware default
        // instead of an attempt to spawn 2^64 threads.
        constexpr unsigned long kMaxThreads = 4096;
        char *end = nullptr;
        unsigned long parsed = std::strtoul(env, &end, 10);
        if (end != env && parsed > 0 && parsed <= kMaxThreads)
            return static_cast<std::size_t>(parsed);
    }
    std::size_t hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(std::size_t num_threads)
{
    std::size_t n = resolveThreadCount(num_threads);
    workers.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(queueMutex);
        stopping = true;
    }
    queueCv.notify_all();
    for (std::thread &worker : workers)
        worker.join();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(queueMutex);
            queueCv.wait(lock,
                         [this] { return stopping || !tasks.empty(); });
            if (tasks.empty()) {
                if (stopping)
                    return;
                continue;
            }
            task = std::move(tasks.front());
            tasks.pop();
        }
        task();
    }
}

void
ThreadPool::parallelFor(std::size_t begin, std::size_t end,
                        const std::function<void(std::size_t)> &fn)
{
    if (begin >= end)
        return;

    auto next = std::make_shared<std::atomic<std::size_t>>(begin);
    auto first_error =
        std::make_shared<std::atomic<bool>>(false);
    auto error = std::make_shared<std::exception_ptr>();
    auto error_mutex = std::make_shared<std::mutex>();

    auto drain = [next, end, fn, first_error, error, error_mutex] {
        for (;;) {
            std::size_t i = next->fetch_add(1);
            if (i >= end)
                return;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(*error_mutex);
                if (!first_error->exchange(true))
                    *error = std::current_exception();
            }
        }
    };

    // One helper task per worker; each drains indices until empty.
    std::vector<std::future<void>> helpers;
    helpers.reserve(workers.size());
    for (std::size_t w = 0; w < workers.size(); ++w)
        helpers.push_back(submit(drain));

    drain(); // the caller works too

    for (std::future<void> &helper : helpers)
        helper.wait();

    if (first_error->load())
        std::rethrow_exception(*error);
}

} // namespace herald::util
