/**
 * @file
 * A fixed-size worker pool for the DSE's embarrassingly parallel
 * sweeps. Deliberately minimal: no work stealing, no task graph —
 * tasks are pushed to one mutex-guarded queue and workers drain it.
 * That is plenty for Herald's usage (hundreds of multi-millisecond
 * candidate evaluations per batch) and keeps the scheduling
 * deterministic to reason about: parallelFor hands out indices from
 * an atomic counter, so every index runs exactly once on some worker
 * while the caller's thread participates too.
 *
 * The worker count knob: explicit argument > HERALD_THREADS
 * environment variable > std::thread::hardware_concurrency().
 */

#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace herald::util
{

/**
 * Resolve a thread-count request: @p requested > 0 is taken as-is;
 * 0 falls back to the HERALD_THREADS environment variable, then to
 * the hardware concurrency (at least 1).
 */
std::size_t resolveThreadCount(std::size_t requested = 0);

/** Fixed worker pool; see file comment. */
class ThreadPool
{
  public:
    /** Spawn @p num_threads workers (0 => resolveThreadCount()). */
    explicit ThreadPool(std::size_t num_threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Worker count (>= 1). */
    std::size_t size() const { return workers.size(); }

    /** Queue @p fn and get a future for its result. */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> future = task->get_future();
        {
            std::lock_guard<std::mutex> lock(queueMutex);
            tasks.push([task] { (*task)(); });
        }
        queueCv.notify_one();
        return future;
    }

    /**
     * Run fn(i) for every i in [begin, end). The calling thread
     * participates, so the pool also works with zero spare cores.
     * Exceptions from @p fn are rethrown on the caller (first one
     * wins); remaining indices still get consumed.
     */
    void parallelFor(std::size_t begin, std::size_t end,
                     const std::function<void(std::size_t)> &fn);

  private:
    std::vector<std::thread> workers;
    std::queue<std::function<void()>> tasks;
    std::mutex queueMutex;
    std::condition_variable queueCv;
    bool stopping = false;

    void workerLoop();
};

} // namespace herald::util

