#include "workload/workload.hh"

#include "dnn/model_zoo.hh"
#include "util/logging.hh"

namespace herald::workload
{

void
Workload::addModel(dnn::Model model, int batches)
{
    if (batches < 1)
        util::fatal("workload '", wlName, "': batches must be >= 1");
    if (model.numLayers() == 0)
        util::fatal("workload '", wlName, "': empty model '",
                    model.name(), "'");
    std::size_t spec_idx = modelSpecs.size();
    for (int b = 0; b < batches; ++b) {
        Instance inst;
        inst.specIdx = spec_idx;
        inst.batchIdx = b;
        inst.name = model.name() + "#" + std::to_string(b + 1);
        insts.push_back(std::move(inst));
    }
    modelSpecs.push_back(ModelSpec{std::move(model), batches});
}

const dnn::Model &
Workload::modelOf(std::size_t instance_idx) const
{
    if (instance_idx >= insts.size())
        util::panic("workload '", wlName, "': instance ", instance_idx,
                    " out of range");
    return modelSpecs[insts[instance_idx].specIdx].model;
}

std::size_t
Workload::totalLayers() const
{
    std::size_t total = 0;
    for (const Instance &inst : insts)
        total += modelSpecs[inst.specIdx].model.numLayers();
    return total;
}

std::uint64_t
Workload::totalMacs() const
{
    std::uint64_t total = 0;
    for (const Instance &inst : insts)
        total += modelSpecs[inst.specIdx].model.totalMacs();
    return total;
}

Workload
arvrA()
{
    Workload wl("AR/VR-A");
    wl.addModel(dnn::resnet50(), 2);
    wl.addModel(dnn::uNet(), 4);
    wl.addModel(dnn::mobileNetV2(), 4);
    return wl;
}

Workload
arvrB()
{
    Workload wl("AR/VR-B");
    wl.addModel(dnn::resnet50(), 2);
    wl.addModel(dnn::uNet(), 2);
    wl.addModel(dnn::mobileNetV2(), 4);
    wl.addModel(dnn::brqHandposeNet(), 2);
    wl.addModel(dnn::focalLengthDepthNet(), 2);
    return wl;
}

Workload
mlperf(int batch)
{
    Workload wl(batch == 1 ? "MLPerf"
                           : "MLPerf-b" + std::to_string(batch));
    wl.addModel(dnn::resnet50(), batch);
    wl.addModel(dnn::mobileNetV1(), batch);
    wl.addModel(dnn::ssdResnet34(), batch);
    wl.addModel(dnn::ssdMobileNetV1(), batch);
    wl.addModel(dnn::gnmt(), batch);
    return wl;
}

} // namespace herald::workload
