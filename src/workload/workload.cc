#include "workload/workload.hh"

#include <algorithm>
#include <cmath>

#include "dnn/model_zoo.hh"
#include "util/logging.hh"

namespace herald::workload
{

namespace
{

/**
 * Structural model equality: same name, layer count, and per-layer
 * kind + canonical geometry. Layer display names are ignored — cost
 * and scheduling behaviour depend on the geometry only.
 */
bool
modelsStructurallyEqual(const dnn::Model &a, const dnn::Model &b)
{
    if (a.name() != b.name() || a.numLayers() != b.numLayers())
        return false;
    for (std::size_t i = 0; i < a.numLayers(); ++i) {
        const dnn::Layer &la = a.layer(i);
        const dnn::Layer &lb = b.layer(i);
        if (la.kind() != lb.kind())
            return false;
        const dnn::CanonicalConv &ca = la.canonical();
        const dnn::CanonicalConv &cb = lb.canonical();
        if (ca.depthwise != cb.depthwise || ca.k != cb.k ||
            ca.c != cb.c || ca.oy != cb.oy || ca.ox != cb.ox ||
            ca.r != cb.r || ca.s != cb.s ||
            ca.strideNum != cb.strideNum ||
            ca.strideDen != cb.strideDen) {
            return false;
        }
    }
    return true;
}

} // namespace

void
Workload::registerSpec(const dnn::Model &model, int copies)
{
    std::size_t spec_idx = modelSpecs.size() - 1;
    std::size_t uid = uniqueSpec.size();
    for (std::size_t u = 0; u < uniqueSpec.size(); ++u) {
        if (modelsStructurallyEqual(modelSpecs[uniqueSpec[u]].model,
                                    model)) {
            uid = u;
            break;
        }
    }
    if (uid == uniqueSpec.size())
        uniqueSpec.push_back(spec_idx);
    specUniqueId.push_back(uid);

    // Guard the 64-bit MAC accumulator: "model @ FPS for K frames"
    // with a huge K can wrap copies * totalMacs() (or the running
    // sum) and corrupt every downstream throughput statistic.
    const std::uint64_t macs = model.totalMacs();
    const std::uint64_t n = static_cast<std::uint64_t>(copies);
    if (macs > 0 &&
        n > std::numeric_limits<std::uint64_t>::max() / macs)
        util::fatal("workload '", wlName, "': ", copies, " copies of '",
                    model.name(), "' overflow the 64-bit MAC counter");
    const std::uint64_t add = n * macs;
    if (cachedTotalMacs >
        std::numeric_limits<std::uint64_t>::max() - add)
        util::fatal("workload '", wlName,
                    "': total MACs overflow the 64-bit counter at '",
                    model.name(), "'");
    cachedTotalLayers +=
        static_cast<std::size_t>(copies) * model.numLayers();
    cachedTotalMacs += add;
}

void
Workload::addModel(dnn::Model model, int batches,
                   double arrival_cycle, double deadline_cycles)
{
    if (batches < 1)
        util::fatal("workload '", wlName, "': batches must be >= 1");
    if (model.numLayers() == 0)
        util::fatal("workload '", wlName, "': empty model '",
                    model.name(), "'");
    // NaN slips through ordered comparisons (every one is false), so
    // finiteness is tested explicitly — a NaN arrival would silently
    // poison every release/deadline comparison downstream.
    if (!std::isfinite(arrival_cycle) || arrival_cycle < 0.0)
        util::fatal("workload '", wlName,
                    "': arrival must be finite and >= 0, got ",
                    arrival_cycle);
    if (!std::isfinite(deadline_cycles) || deadline_cycles < 0.0)
        util::fatal("workload '", wlName,
                    "': deadline must be finite and >= 0, got ",
                    deadline_cycles);
    if (arrival_cycle + deadline_cycles > kMaxCycle)
        util::fatal("workload '", wlName,
                    "': arrival + deadline exceeds the ", kMaxCycle,
                    "-cycle limit, got ",
                    arrival_cycle + deadline_cycles);
    std::size_t spec_idx = modelSpecs.size();
    for (int b = 0; b < batches; ++b) {
        Instance inst;
        inst.specIdx = spec_idx;
        inst.batchIdx = b;
        inst.name = model.name() + "#" + std::to_string(b + 1);
        inst.arrivalCycle = arrival_cycle;
        inst.deadlineCycle = deadline_cycles > 0.0
                                 ? arrival_cycle + deadline_cycles
                                 : kNoDeadline;
        insts.push_back(std::move(inst));
    }
    RealtimeSpec rt;
    rt.deadlineCycles = deadline_cycles;
    modelSpecs.push_back(ModelSpec{std::move(model), batches, rt});
    registerSpec(modelSpecs.back().model, batches);
}

void
Workload::addPeriodicModel(dnn::Model model, int frames,
                           double period_cycles,
                           double deadline_cycles,
                           double phase_cycles)
{
    if (frames < 1)
        util::fatal("workload '", wlName, "': frames must be >= 1");
    if (model.numLayers() == 0)
        util::fatal("workload '", wlName, "': empty model '",
                    model.name(), "'");
    if (!std::isfinite(period_cycles) || period_cycles <= 0.0)
        util::fatal("workload '", wlName,
                    "': period must be finite and > 0, got ",
                    period_cycles);
    if (!std::isfinite(deadline_cycles) || deadline_cycles < 0.0)
        util::fatal("workload '", wlName,
                    "': deadline must be finite and >= 0, got ",
                    deadline_cycles);
    if (!std::isfinite(phase_cycles) || phase_cycles < 0.0)
        util::fatal("workload '", wlName,
                    "': phase must be finite and >= 0, got ",
                    phase_cycles);
    const double rel_deadline =
        deadline_cycles > 0.0 ? deadline_cycles : period_cycles;
    // Reject streams whose cycle arithmetic would leave the 2^53
    // integer-exact range: past it, arrival = phase + f*period stops
    // resolving individual cycles and frames silently alias. The
    // check covers the last frame's deadline, the largest value the
    // stream ever produces.
    const double last_cycle = phase_cycles +
                              static_cast<double>(frames - 1) *
                                  period_cycles +
                              rel_deadline;
    if (!(last_cycle <= kMaxCycle))
        util::fatal("workload '", wlName, "': stream of ", frames,
                    " frames overflows the ", kMaxCycle,
                    "-cycle limit, got last deadline ", last_cycle);
    std::size_t spec_idx = modelSpecs.size();
    for (int f = 0; f < frames; ++f) {
        Instance inst;
        inst.specIdx = spec_idx;
        inst.batchIdx = f;
        inst.name = model.name() + "#" + std::to_string(f + 1);
        inst.arrivalCycle =
            phase_cycles + static_cast<double>(f) * period_cycles;
        inst.deadlineCycle = inst.arrivalCycle + rel_deadline;
        insts.push_back(std::move(inst));
    }
    RealtimeSpec rt;
    rt.periodCycles = period_cycles;
    rt.deadlineCycles = rel_deadline;
    modelSpecs.push_back(ModelSpec{std::move(model), frames, rt});
    registerSpec(modelSpecs.back().model, frames);
}

const dnn::Model &
Workload::modelOf(std::size_t instance_idx) const
{
    if (instance_idx >= insts.size())
        util::panic("workload '", wlName, "': instance ", instance_idx,
                    " out of range");
    return modelSpecs[insts[instance_idx].specIdx].model;
}

const dnn::Model &
Workload::uniqueModel(std::size_t uid) const
{
    if (uid >= uniqueSpec.size())
        util::panic("workload '", wlName, "': unique model ", uid,
                    " out of range");
    return modelSpecs[uniqueSpec[uid]].model;
}

std::size_t
Workload::uniqueIdOfSpec(std::size_t spec_idx) const
{
    if (spec_idx >= specUniqueId.size())
        util::panic("workload '", wlName, "': spec ", spec_idx,
                    " out of range");
    return specUniqueId[spec_idx];
}

std::size_t
Workload::uniqueIdOfInstance(std::size_t instance_idx) const
{
    if (instance_idx >= insts.size())
        util::panic("workload '", wlName, "': instance ",
                    instance_idx, " out of range");
    return specUniqueId[insts[instance_idx].specIdx];
}

bool
Workload::hasArrivals() const
{
    for (const Instance &inst : insts) {
        if (inst.arrivalCycle > 0.0)
            return true;
    }
    return false;
}

bool
Workload::hasDeadlines() const
{
    for (const Instance &inst : insts) {
        if (inst.hasDeadline())
            return true;
    }
    return false;
}

double
fpsPeriodCycles(double fps, double clock_ghz)
{
    if (!std::isfinite(fps) || fps <= 0.0 ||
        !std::isfinite(clock_ghz) || clock_ghz <= 0.0)
        util::fatal("fpsPeriodCycles: fps and clock must be finite "
                    "and > 0");
    const double period = clock_ghz * 1e9 / fps;
    if (!(period <= kMaxCycle))
        util::fatal("fpsPeriodCycles: period exceeds the ", kMaxCycle,
                    "-cycle limit, got ", period);
    return period;
}

Workload
arvrA()
{
    Workload wl("AR/VR-A");
    wl.addModel(dnn::resnet50(), 2);
    wl.addModel(dnn::uNet(), 4);
    wl.addModel(dnn::mobileNetV2(), 4);
    return wl;
}

Workload
arvrB()
{
    Workload wl("AR/VR-B");
    wl.addModel(dnn::resnet50(), 2);
    wl.addModel(dnn::uNet(), 2);
    wl.addModel(dnn::mobileNetV2(), 4);
    wl.addModel(dnn::brqHandposeNet(), 2);
    wl.addModel(dnn::focalLengthDepthNet(), 2);
    return wl;
}

Workload
mlperf(int batch)
{
    Workload wl(batch == 1 ? "MLPerf"
                           : "MLPerf-b" + std::to_string(batch));
    wl.addModel(dnn::resnet50(), batch);
    wl.addModel(dnn::mobileNetV1(), batch);
    wl.addModel(dnn::ssdResnet34(), batch);
    wl.addModel(dnn::ssdMobileNetV1(), batch);
    wl.addModel(dnn::gnmt(), batch);
    return wl;
}

Workload
arvrA60fps(int frames60, double clock_ghz)
{
    if (frames60 < 1)
        util::fatal("arvrA60fps: frames60 must be >= 1");
    Workload wl("AR/VR-A@60fps");
    const double p60 = fpsPeriodCycles(60.0, clock_ghz);
    const double p30 = fpsPeriodCycles(30.0, clock_ghz);
    const double p15 = fpsPeriodCycles(15.0, clock_ghz);
    wl.addPeriodicModel(dnn::mobileNetV2(), frames60, p60);
    wl.addPeriodicModel(dnn::uNet(), std::max(1, frames60 / 2), p30);
    wl.addPeriodicModel(dnn::resnet50(), std::max(1, frames60 / 4),
                        p15);
    return wl;
}

Workload
mixedTenantScenario(int frames60, double clock_ghz)
{
    if (frames60 < 1)
        util::fatal("mixedTenantScenario: frames60 must be >= 1");
    Workload wl("AR/VR+MLPerf tenants");
    const double p60 = fpsPeriodCycles(60.0, clock_ghz);
    const double p30 = fpsPeriodCycles(30.0, clock_ghz);
    // Latency-critical AR/VR tenant.
    wl.addPeriodicModel(dnn::mobileNetV2(), frames60, p60);
    wl.addPeriodicModel(dnn::brqHandposeNet(), frames60, p60);
    wl.addPeriodicModel(dnn::focalLengthDepthNet(),
                        std::max(1, frames60 / 2), p30);
    // Best-effort MLPerf tenant: batch jobs, no deadlines.
    wl.addModel(dnn::resnet50(), 2);
    wl.addModel(dnn::ssdMobileNetV1(), 1);
    return wl;
}

// The over-subscribed scenarios below are calibrated against the
// edge-class chip's optimistic (best-sub-accelerator) runtimes at
// the default parameters: MobileNetV2 ~1.7e6 cycles, Br-Q Handpose
// ~5.7e6, Resnet50 ~1.34e7, FocalLengthDepthNet ~4.85e7, UNet
// ~3.5e8. The straggler deadlines are fixed cycle budgets sized as a
// small multiple of those runtimes — late in absolute terms, tight
// in slack — which is the shape that separates least-slack from
// earliest-deadline dispatch.

Workload
arvrAOverloaded(int frames60, double overload, double clock_ghz)
{
    if (frames60 < 1)
        util::fatal("arvrAOverloaded: frames60 must be >= 1");
    if (overload <= 1.0)
        util::fatal("arvrAOverloaded: overload must be > 1");
    Workload wl("AR/VR-A overloaded");
    const double p = fpsPeriodCycles(60.0, clock_ghz) / overload;
    // Latency-critical light stream: deadline two (shrunk) periods.
    wl.addPeriodicModel(dnn::mobileNetV2(), frames60, p, 2.0 * p);
    // UNet at these rates is hopeless on an edge-class chip (one
    // optimistic frame is ~40x the implicit deadline): admission
    // control (DropPolicy::HopelessFrames) sheds these instead of
    // letting them poison the live streams.
    wl.addPeriodicModel(dnn::uNet(), std::max(1, frames60 / 2),
                        2.0 * p);
    wl.addPeriodicModel(dnn::resnet50(),
                        std::max(1, frames60 / 4), 4.0 * p,
                        8.0 * p);
    // Heavy tight-slack straggler: ~1.6x its optimistic runtime.
    wl.addModel(dnn::resnet50(), 1, /*arrival=*/0.0,
                /*deadline=*/2.14e7);
    return wl;
}

Workload
mixedTenantOverloaded(int frames60, double overload,
                      double clock_ghz)
{
    if (frames60 < 1)
        util::fatal("mixedTenantOverloaded: frames60 must be >= 1");
    if (overload <= 1.0)
        util::fatal("mixedTenantOverloaded: overload must be > 1");
    Workload wl("AR/VR+MLPerf overloaded");
    const double p = fpsPeriodCycles(60.0, clock_ghz) / overload;
    // Latency-critical tenant with relaxed (multi-frame) pipeline
    // deadlines — delaying one frame is tolerable, dropping the
    // whole stream behind a heavy job is not.
    wl.addPeriodicModel(dnn::mobileNetV2(), frames60, p, 3.0 * p);
    wl.addPeriodicModel(dnn::brqHandposeNet(),
                        std::max(1, frames60 / 2), 2.0 * p,
                        6.0 * p);
    // Heavy analytics job with an SLA: a late absolute deadline
    // (~1.7x its optimistic runtime) but the least slack in the mix.
    // Earliest-deadline dispatch procrastinates on it behind the
    // nearer frame deadlines until it cannot finish; least-slack
    // dispatch starts it immediately.
    wl.addModel(dnn::focalLengthDepthNet(), 1, /*arrival=*/0.0,
                /*deadline=*/8.25e7);
    // Best-effort MLPerf tenant: batch job, no deadline.
    wl.addModel(dnn::ssdMobileNetV1(), 1);
    return wl;
}

Workload
faultedFactory(int frames60, double clock_ghz)
{
    if (frames60 < 1)
        util::fatal("faultedFactory: frames60 must be >= 1");
    Workload wl("factory-faulted");
    const double p60 = fpsPeriodCycles(60.0, clock_ghz);
    const double p30 = fpsPeriodCycles(30.0, clock_ghz);
    const double p15 = fpsPeriodCycles(15.0, clock_ghz);
    // Multi-period deadlines: roughly 25% utilization per
    // sub-accelerator of an edge-class 2-way HDA fault-free, so one
    // surviving sub-accelerator still has headroom to absorb
    // re-homed work — the gap a fault-aware scheduler exploits and a
    // fault-oblivious schedule cannot.
    wl.addPeriodicModel(dnn::mobileNetV2(), frames60, p60,
                        3.0 * p60);
    wl.addPeriodicModel(dnn::brqHandposeNet(),
                        std::max(1, frames60 / 2), p30, 2.0 * p30);
    wl.addPeriodicModel(dnn::resnet50(), std::max(1, frames60 / 4),
                        p15, 1.5 * p15);
    // Best-effort batch job: no deadline, so only total capacity
    // exhaustion (every sub-accelerator permanently dead) can stop
    // it — the graceful-degradation force-drop path.
    wl.addModel(dnn::ssdMobileNetV1(), 1);
    return wl;
}

Workload
shiftingLoadFactory(int frames, double clock_ghz)
{
    if (frames < 8)
        util::fatal("shiftingLoadFactory: frames must be >= 8");
    Workload wl("shifting-load factory");
    const double scale = 1.0 / clock_ghz;
    // Phase 1 — tenant A: Br-Q Handpose (NVDLA-affine, ~4.1e6
    // optimistic cycles on a 768-PE NVDLA side, ~6.0e6 at 512) at a
    // rate only a large NVDLA share sustains; the two-period
    // deadline forgives transient backlog but not a steady one.
    const double p1 = 4.5e6 * scale;
    wl.addPeriodicModel(dnn::brqHandposeNet(), frames, p1, 2.0 * p1);
    // Phase 2 — tenant B: UNet (Shi-affine, ~2.6e8 optimistic cycles
    // on a 768-PE Shi side, ~3.8e8 at 512) arriving after tenant A's
    // stream has drained. The deadline sits between the large-share
    // and even-split runtimes, so only a Shi-heavy second half meets
    // it.
    const double p2 = 3.0e8 * scale;
    const double phase2 =
        static_cast<double>(frames) * p1 + 1.0e7 * scale;
    wl.addPeriodicModel(dnn::uNet(), std::max(2, frames / 8), p2,
                        /*deadline=*/3.2e8 * scale,
                        /*phase=*/phase2);
    return wl;
}

Workload
interactiveOverloaded(int frames60, double overload,
                      double clock_ghz)
{
    if (frames60 < 1)
        util::fatal("interactiveOverloaded: frames60 must be >= 1");
    if (overload <= 1.0)
        util::fatal("interactiveOverloaded: overload must be > 1");
    Workload wl("interactive overloaded");
    const double p = fpsPeriodCycles(60.0, clock_ghz) / overload;
    // Heavy analytics pair: FocalLengthDepthNet's individual layers
    // run for multiple interactive periods on the edge chip, so a
    // greedily committed layer spans several frame arrivals. The SLA
    // is loose (roughly 4x one job's optimistic runtime even with
    // both sharing the chip) — these jobs tolerate being interleaved
    // around the frames, they just must not be starved forever.
    wl.addModel(dnn::focalLengthDepthNet(), 2, /*arrival=*/0.0,
                /*deadline=*/4e8);
    // Interactive stream: tiny frames at overload x 60 FPS with a
    // deadline well inside one period (~1.7x the frame's optimistic
    // runtime) and a phase that drops every arrival into the middle
    // of a heavy layer. Run-to-completion dispatch queues each frame
    // behind the heavy layer committed across its arrival; a
    // preemption point serves it at the arrival instead.
    wl.addPeriodicModel(dnn::mobileNetV2(), frames60, p,
                        /*deadline=*/0.7 * p, /*phase=*/0.37 * p);
    return wl;
}

} // namespace herald::workload
