/**
 * @file
 * Multi-DNN workloads (Table II): a set of models, each with a batch
 * count modeling that sub-task's target processing rate. Every batch
 * expands into an independent model instance: instances have no
 * cross-dependences, while layers within one instance form a linear
 * dependence chain — exactly the structure the paper's scheduling
 * heuristics exploit.
 */

#ifndef HERALD_WORKLOAD_WORKLOAD_HH
#define HERALD_WORKLOAD_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "dnn/model.hh"

namespace herald::workload
{

/** One model plus its batch count. */
struct ModelSpec
{
    dnn::Model model;
    int batches = 1;
};

/** One independent executable copy of a model (one batch element). */
struct Instance
{
    std::size_t specIdx = 0; //!< index into specs()
    int batchIdx = 0;        //!< which batch element this is
    std::string name;        //!< e.g. "Resnet50#1"
};

/** A named multi-DNN workload. */
class Workload
{
  public:
    explicit Workload(std::string name) : wlName(std::move(name)) {}

    /** Add @p model with @p batches independent copies. */
    void addModel(dnn::Model model, int batches = 1);

    const std::string &name() const { return wlName; }
    const std::vector<ModelSpec> &specs() const { return modelSpecs; }
    const std::vector<Instance> &instances() const { return insts; }
    std::size_t numInstances() const { return insts.size(); }

    /** The model an instance executes. */
    const dnn::Model &modelOf(std::size_t instance_idx) const;

    /** Total schedulable layers across all instances. */
    std::size_t totalLayers() const;

    /** Total MACs across all instances. */
    std::uint64_t totalMacs() const;

  private:
    std::string wlName;
    std::vector<ModelSpec> modelSpecs;
    std::vector<Instance> insts;
};

/** AR/VR-A: Resnet50 x2, UNet x4, MobileNetV2 x4 (Table II). */
Workload arvrA();

/** AR/VR-B: adds Br-Q Handpose x2 and DepthNet x2 (Table II). */
Workload arvrB();

/** MLPerf multi-stream: 5 models, @p batch copies each (Table II). */
Workload mlperf(int batch = 1);

} // namespace herald::workload

#endif // HERALD_WORKLOAD_WORKLOAD_HH
