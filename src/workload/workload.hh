/**
 * @file
 * Multi-DNN workloads (Table II): a set of models, each with a batch
 * count modeling that sub-task's target processing rate. Every batch
 * expands into an independent model instance: instances have no
 * cross-dependences, while layers within one instance form a linear
 * dependence chain — exactly the structure the paper's scheduling
 * heuristics exploit.
 *
 * Real-time scenarios extend the flat bag-of-instances model with
 * arrivals and deadlines: a periodic model ("MobileNetV2 @ 60 FPS for
 * K frames") expands into one instance per frame with staggered
 * arrival cycles and per-frame absolute deadlines, which the
 * scheduler (sched::SchedulerOptions::deadlineAware) and the SLA
 * metrics (sched::SlaStats) consume.
 */

#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "dnn/model.hh"

namespace herald::workload
{

/** Absolute-deadline value meaning "no deadline". */
inline constexpr double kNoDeadline =
    std::numeric_limits<double>::infinity();

/**
 * Largest cycle value the workload layer accepts (2^53, the last
 * point where doubles still resolve single cycles). Beyond it,
 * arrival/deadline arithmetic silently loses whole cycles and the
 * epsilon-based dispatch comparisons stop being meaningful, so
 * construction rejects it instead of wrapping into nonsense.
 */
inline constexpr double kMaxCycle = 9007199254740992.0;

/** Real-time attributes of a model spec (0 = aperiodic / none). */
struct RealtimeSpec
{
    double periodCycles = 0.0;   //!< frame period; 0 = aperiodic
    double deadlineCycles = 0.0; //!< relative deadline; 0 = none

    bool periodic() const { return periodCycles > 0.0; }
};

/** One model plus its batch count. */
struct ModelSpec
{
    dnn::Model model;
    int batches = 1;
    RealtimeSpec realtime{};
};

/** One independent executable copy of a model (one batch element). */
struct Instance
{
    std::size_t specIdx = 0; //!< index into specs()
    int batchIdx = 0;        //!< which batch element / frame this is
    std::string name;        //!< e.g. "Resnet50#1"
    double arrivalCycle = 0.0;  //!< earliest cycle any layer may start
    double deadlineCycle = kNoDeadline; //!< absolute completion target

    bool hasDeadline() const { return deadlineCycle < kNoDeadline; }
};

/** A named multi-DNN workload. */
class Workload
{
  public:
    explicit Workload(std::string name) : wlName(std::move(name)) {}

    /**
     * Add @p model with @p batches independent copies, all arriving
     * at @p arrival_cycle. A positive @p deadline_cycles gives every
     * copy the absolute deadline arrival + deadline_cycles.
     */
    void addModel(dnn::Model model, int batches = 1,
                  double arrival_cycle = 0.0,
                  double deadline_cycles = 0.0);

    /**
     * Add a periodic real-time stream: @p frames instances of
     * @p model with arrivals staggered by @p period_cycles starting
     * at @p phase_cycles. Each frame's absolute deadline is its
     * arrival plus @p deadline_cycles (the period when 0 — the
     * classic implicit-deadline periodic task).
     */
    void addPeriodicModel(dnn::Model model, int frames,
                          double period_cycles,
                          double deadline_cycles = 0.0,
                          double phase_cycles = 0.0);

    const std::string &name() const { return wlName; }
    const std::vector<ModelSpec> &specs() const { return modelSpecs; }
    const std::vector<Instance> &instances() const { return insts; }
    std::size_t numInstances() const { return insts.size(); }

    /** The model an instance executes. */
    const dnn::Model &modelOf(std::size_t instance_idx) const;

    // --- Unique-model index ---
    // Real-time scenarios expand "model @ FPS for K frames" into
    // thousands of instances of the same few models, and separate
    // addModel/addPeriodicModel calls may pass structurally equal
    // models (e.g. two dnn::mobileNetV2() streams). Specs whose
    // models are structurally equal (same name, layer count and
    // per-layer kind/canonical geometry) share one unique-model id,
    // so per-model work (cost tables, layer statistics) is O(unique
    // models), not O(instances).

    /** Number of structurally distinct models in the workload. */
    std::size_t numUniqueModels() const { return uniqueSpec.size(); }

    /** A representative model for unique-model id @p uid. */
    const dnn::Model &uniqueModel(std::size_t uid) const;

    /** Unique-model id of spec @p spec_idx. */
    std::size_t uniqueIdOfSpec(std::size_t spec_idx) const;

    /** Unique-model id of instance @p instance_idx. */
    std::size_t uniqueIdOfInstance(std::size_t instance_idx) const;

    /** Total schedulable layers across all instances (O(1)). */
    std::size_t totalLayers() const { return cachedTotalLayers; }

    /** Total MACs across all instances (O(1)). */
    std::uint64_t totalMacs() const { return cachedTotalMacs; }

    /** True when any instance arrives after cycle 0. */
    bool hasArrivals() const;

    /** True when any instance carries a finite deadline. */
    bool hasDeadlines() const;

  private:
    std::string wlName;
    std::vector<ModelSpec> modelSpecs;
    std::vector<Instance> insts;

    // Unique-model index (see accessors above). specUniqueId maps a
    // spec to its unique-model id; uniqueSpec maps a unique-model id
    // back to the first spec carrying that model.
    std::vector<std::size_t> specUniqueId;
    std::vector<std::size_t> uniqueSpec;

    std::size_t cachedTotalLayers = 0;
    std::uint64_t cachedTotalMacs = 0;

    /** Dedup @p model against uniqueSpec; records the new spec. */
    void registerSpec(const dnn::Model &model, int copies);
};

/** Frame period in cycles for @p fps at @p clock_ghz. */
double fpsPeriodCycles(double fps, double clock_ghz = 1.0);

/** AR/VR-A: Resnet50 x2, UNet x4, MobileNetV2 x4 (Table II). */
Workload arvrA();

/** AR/VR-B: adds Br-Q Handpose x2 and DepthNet x2 (Table II). */
Workload arvrB();

/** MLPerf multi-stream: 5 models, @p batch copies each (Table II). */
Workload mlperf(int batch = 1);

/**
 * Real-time AR/VR-A: the Table II mix as periodic frame streams —
 * MobileNetV2 @ 60 FPS, UNet @ 30 FPS, Resnet50 @ 15 FPS — over a
 * horizon of @p frames60 60-FPS frames at @p clock_ghz. Deadlines
 * are implicit (one period).
 */
Workload arvrA60fps(int frames60 = 4, double clock_ghz = 1.0);

/**
 * Mixed-rate multi-tenant scenario: a latency-critical AR/VR tenant
 * (MobileNetV2 + Br-Q Handpose @ 60 FPS, DepthNet @ 30 FPS) sharing
 * the chip with a best-effort MLPerf tenant (Resnet50 + SSD-MobileNet
 * batch jobs, no deadlines).
 */
Workload mixedTenantScenario(int frames60 = 2,
                             double clock_ghz = 1.0);

/**
 * Over-subscribed variants: the same stream mixes pushed past what
 * an edge-class chip can sustain, for exercising slack-aware
 * scheduling (LST) and drop policies. Frame rates are multiplied by
 * @p overload (arrivals @p overload x denser, relative deadlines
 * shrunk by the same factor), and each mix gains a heavy low-slack
 * straggler — a frame whose deadline is *late* in absolute terms but
 * whose execution time nearly fills it, the shape that separates
 * least-slack from earliest-deadline dispatch under pressure.
 */
Workload arvrAOverloaded(int frames60 = 8, double overload = 4.0,
                         double clock_ghz = 1.0);

/** Over-subscribed mixedTenantScenario (see arvrAOverloaded). */
Workload mixedTenantOverloaded(int frames60 = 8,
                               double overload = 6.0,
                               double clock_ghz = 1.0);

/**
 * Factory-floor inspection mix for fault-injection studies: three
 * periodic streams (MobileNetV2 @ 60 FPS, Br-Q Handpose @ 30 FPS,
 * Resnet50 @ 15 FPS) with multi-period deadlines — enough slack that
 * an edge-class 2-way HDA meets every deadline fault-free AND a
 * fault-aware scheduler can re-home work onto the survivor when a
 * sub-accelerator dies — plus one best-effort batch job (no
 * deadline) that exercises graceful degradation when capacity runs
 * out entirely. Paired with sched::factoryFaultTimeline() by
 * bench/bench_faults.cc and the fault tests.
 */
Workload faultedFactory(int frames60 = 4, double clock_ghz = 1.0);

/**
 * Over-subscribed interactive mix: two heavy loose-SLA analytics
 * jobs (long individual layers) sharing the chip with a dense
 * tight-deadline interactive frame stream whose arrivals land in the
 * middle of the heavy layers. This is the shape where dispatch-loop
 * preemption points (sched::Preemption::AtLayerBoundary) win: a
 * run-to-completion scheduler greedily commits the long heavy layer
 * across the interactive arrival and the frame then queues behind
 * it past its deadline, while a preemption point holds the
 * sub-accelerator for the urgent arrival and slips the heavy layer
 * in afterwards. Frame rate is 60 FPS x @p overload with deadlines
 * well under one period.
 */
Workload interactiveOverloaded(int frames60 = 8,
                               double overload = 4.0,
                               double clock_ghz = 1.0);

/**
 * Shifting-load factory scenario for elastic repartitioning
 * (sched::ReconfigOptions): two tenants with opposite dataflow
 * affinity on an NVDLA+Shi-diannao HDA, each heavy in a different
 * half of the run. Tenant A (Br-Q Handpose, NVDLA-affine) streams a
 * dense deadline-bearing first phase; tenant B (UNet, the one
 * Shi-affine model in the zoo) lands its heavy deadline-bearing
 * frames in the second phase. No static PE split serves both phases
 * — a big NVDLA side meets phase 1 and starves phase 2, and vice
 * versa — which is exactly the gap runtime PE migration closes.
 * @p frames scales tenant A's stream (tenant B gets ~frames/8
 * frames); calibrated against the edge-class chip at @p clock_ghz.
 */
Workload shiftingLoadFactory(int frames = 16,
                             double clock_ghz = 1.0);

} // namespace herald::workload

