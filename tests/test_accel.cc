/**
 * @file
 * Unit tests for the accel module: accelerator classes, factory
 * invariants (Definition 1: shares sum to the chip budget), resource
 * views, and the RDA overhead model.
 */

#include <gtest/gtest.h>

#include "accel/accelerator.hh"
#include "accel/rda.hh"
#include "dnn/layer.hh"
#include "util/logging.hh"

namespace
{

using namespace herald;
using accel::Accelerator;
using accel::AcceleratorClass;
using accel::AcceleratorKind;
using dataflow::DataflowStyle;

class AccelTest : public ::testing::Test
{
  protected:
    void SetUp() override { util::setVerbose(false); }
};

TEST_F(AccelTest, TableIvClasses)
{
    AcceleratorClass edge = accel::edgeClass();
    EXPECT_EQ(edge.numPes, 1024u);
    EXPECT_DOUBLE_EQ(edge.bwGBps, 16.0);
    EXPECT_EQ(edge.globalBufferBytes, 4ull << 20);

    AcceleratorClass mobile = accel::mobileClass();
    EXPECT_EQ(mobile.numPes, 4096u);
    EXPECT_DOUBLE_EQ(mobile.bwGBps, 64.0);
    EXPECT_EQ(mobile.globalBufferBytes, 8ull << 20);

    AcceleratorClass cloud = accel::cloudClass();
    EXPECT_EQ(cloud.numPes, 16384u);
    EXPECT_DOUBLE_EQ(cloud.bwGBps, 256.0);
    EXPECT_EQ(cloud.globalBufferBytes, 16ull << 20);

    EXPECT_EQ(accel::allClasses().size(), 3u);
}

TEST_F(AccelTest, FdaUsesWholeBudget)
{
    Accelerator fda = Accelerator::makeFda(accel::edgeClass(),
                                           DataflowStyle::NVDLA);
    EXPECT_EQ(fda.kind(), AcceleratorKind::FDA);
    ASSERT_EQ(fda.numSubAccs(), 1u);
    EXPECT_EQ(fda.subAccs()[0].numPes, 1024u);
    EXPECT_DOUBLE_EQ(fda.subAccs()[0].bwGBps, 16.0);
    EXPECT_FALSE(fda.subAccs()[0].flexible);
}

TEST_F(AccelTest, ScaledOutFdaEvenSplit)
{
    Accelerator sm = Accelerator::makeScaledOutFda(
        accel::mobileClass(), DataflowStyle::ShiDiannao, 2);
    EXPECT_EQ(sm.kind(), AcceleratorKind::SMFDA);
    ASSERT_EQ(sm.numSubAccs(), 2u);
    for (const auto &sub : sm.subAccs()) {
        EXPECT_EQ(sub.numPes, 2048u);
        EXPECT_DOUBLE_EQ(sub.bwGBps, 32.0);
        EXPECT_EQ(sub.style, DataflowStyle::ShiDiannao);
    }
}

TEST_F(AccelTest, ScaledOutFdaRejectsUnevenSplit)
{
    EXPECT_THROW(Accelerator::makeScaledOutFda(accel::mobileClass(),
                                               DataflowStyle::NVDLA, 3),
                 std::runtime_error);
}

TEST_F(AccelTest, RdaIsFlexibleMonolith)
{
    Accelerator rda = Accelerator::makeRda(accel::cloudClass());
    EXPECT_EQ(rda.kind(), AcceleratorKind::RDA);
    ASSERT_EQ(rda.numSubAccs(), 1u);
    EXPECT_TRUE(rda.subAccs()[0].flexible);
    EXPECT_EQ(rda.subAccs()[0].numPes, 16384u);
}

TEST_F(AccelTest, HdaPartitioning)
{
    Accelerator hda = Accelerator::makeHda(
        accel::cloudClass(),
        {DataflowStyle::NVDLA, DataflowStyle::ShiDiannao},
        {9728, 6656}, {224.0, 32.0});
    EXPECT_EQ(hda.kind(), AcceleratorKind::HDA);
    ASSERT_EQ(hda.numSubAccs(), 2u);
    EXPECT_EQ(hda.subAccs()[0].numPes, 9728u);
    EXPECT_EQ(hda.subAccs()[1].numPes, 6656u);
}

TEST_F(AccelTest, HdaRejectsBadPeSum)
{
    EXPECT_THROW(
        Accelerator::makeHda(
            accel::cloudClass(),
            {DataflowStyle::NVDLA, DataflowStyle::ShiDiannao},
            {8192, 4096}, {128.0, 128.0}),
        std::runtime_error);
}

TEST_F(AccelTest, HdaRejectsBadBwSum)
{
    EXPECT_THROW(
        Accelerator::makeHda(
            accel::cloudClass(),
            {DataflowStyle::NVDLA, DataflowStyle::ShiDiannao},
            {8192, 8192}, {128.0, 64.0}),
        std::runtime_error);
}

TEST_F(AccelTest, HdaRejectsArityMismatch)
{
    EXPECT_THROW(Accelerator::makeHda(accel::cloudClass(),
                                      {DataflowStyle::NVDLA},
                                      {8192, 8192}, {128.0, 128.0}),
                 std::runtime_error);
}

TEST_F(AccelTest, ResourcesSplitGlobalBuffer)
{
    Accelerator hda = Accelerator::makeHda(
        accel::mobileClass(),
        {DataflowStyle::NVDLA, DataflowStyle::ShiDiannao},
        {1536, 2560}, {48.0, 16.0});
    cost::SubAccResources r0 = hda.resources(0);
    cost::SubAccResources r1 = hda.resources(1);
    EXPECT_EQ(r0.numPes, 1536u);
    EXPECT_DOUBLE_EQ(r0.bwGBps, 48.0);
    EXPECT_EQ(r0.l2Bytes, (8ull << 20) / 2);
    EXPECT_EQ(r1.l2Bytes, (8ull << 20) / 2);
}

TEST_F(AccelTest, ResourcesOutOfRangePanics)
{
    Accelerator fda = Accelerator::makeFda(accel::edgeClass(),
                                           DataflowStyle::NVDLA);
    EXPECT_THROW(fda.resources(1), std::logic_error);
}

TEST_F(AccelTest, FixedSubAccUsesItsStyle)
{
    cost::CostModel model;
    Accelerator fda = Accelerator::makeFda(accel::edgeClass(),
                                           DataflowStyle::Eyeriss);
    dnn::Layer layer = dnn::makeConv("c", 64, 32, 56, 56, 3, 3);
    accel::StyledLayerCost sc =
        accel::evaluateOnSubAcc(model, fda, 0, layer);
    EXPECT_EQ(sc.style, DataflowStyle::Eyeriss);
}

TEST_F(AccelTest, RdaPicksBestStyle)
{
    cost::CostModel model;
    Accelerator rda = Accelerator::makeRda(accel::edgeClass());

    // Depthwise layer: channel-parallel NVDLA collapses, so the RDA
    // must not pick it.
    dnn::Layer dw = dnn::makeDepthwise("dw", 32, 58, 58, 3, 3);
    accel::StyledLayerCost sc =
        accel::evaluateOnSubAcc(model, rda, 0, dw);
    EXPECT_NE(sc.style, DataflowStyle::NVDLA);

    // Huge FC: only NVDLA parallelizes channels.
    dnn::Layer fc = dnn::makeFullyConnected("fc", 4096, 4096);
    accel::StyledLayerCost fc_sc =
        accel::evaluateOnSubAcc(model, rda, 0, fc);
    EXPECT_EQ(fc_sc.style, DataflowStyle::NVDLA);
}

TEST_F(AccelTest, RdaPaysEnergyTax)
{
    cost::CostModel model;
    Accelerator rda = Accelerator::makeRda(accel::edgeClass());
    Accelerator fda = Accelerator::makeFda(accel::edgeClass(),
                                           DataflowStyle::NVDLA);
    dnn::Layer fc = dnn::makeFullyConnected("fc", 4096, 4096);

    accel::StyledLayerCost on_rda =
        accel::evaluateOnSubAcc(model, rda, 0, fc);
    accel::StyledLayerCost on_fda =
        accel::evaluateOnSubAcc(model, fda, 0, fc);
    // Same chosen style and resources, but the RDA pays the
    // interconnect tax and reconfiguration cost.
    ASSERT_EQ(on_rda.style, DataflowStyle::NVDLA);
    EXPECT_GT(on_rda.cost.energyUnits, on_fda.cost.energyUnits);
    EXPECT_GT(on_rda.cost.cycles, on_fda.cost.cycles);
}

TEST_F(AccelTest, RdaOverheadsScaleWithPes)
{
    cost::CostModel model;
    Accelerator small = Accelerator::makeRda(accel::edgeClass());
    Accelerator big = Accelerator::makeRda(accel::cloudClass());
    dnn::Layer fc = dnn::makeFullyConnected("fc", 512, 512);
    accel::RdaOverheads rda;
    double small_reconfig =
        rda.reconfigBaseCycles +
        rda.reconfigCyclesPerPe * 1024.0;
    double big_reconfig =
        rda.reconfigBaseCycles +
        rda.reconfigCyclesPerPe * 16384.0;
    EXPECT_GT(big_reconfig, small_reconfig);
    // And the modeled layers indeed carry those extra cycles.
    accel::StyledLayerCost sc_small =
        accel::evaluateOnSubAcc(model, small, 0, fc, rda);
    accel::StyledLayerCost sc_big =
        accel::evaluateOnSubAcc(model, big, 0, fc, rda);
    EXPECT_GT(sc_small.cost.cycles, 0.0);
    EXPECT_GT(sc_big.cost.cycles, 0.0);
}

TEST_F(AccelTest, KindNames)
{
    EXPECT_STREQ(accel::toString(AcceleratorKind::FDA), "FDA");
    EXPECT_STREQ(accel::toString(AcceleratorKind::SMFDA), "SM-FDA");
    EXPECT_STREQ(accel::toString(AcceleratorKind::RDA), "RDA");
    EXPECT_STREQ(accel::toString(AcceleratorKind::HDA), "HDA");
}

TEST_F(AccelTest, SubAcceleratorLabel)
{
    accel::SubAccelerator sub;
    sub.style = DataflowStyle::NVDLA;
    sub.numPes = 4096;
    sub.bwGBps = 64.0;
    EXPECT_EQ(accel::toString(sub), "nvdla:4096pe/64GBps");
}

} // namespace
