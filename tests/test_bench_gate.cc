/**
 * @file
 * Bench-regression-gate tests: the mini JSON parser behind
 * --check-against (bench/bench_baseline.hh) must flatten well-formed
 * bench emissions and reject corrupt ones — truncated files,
 * non-numeric values, duplicate keys, non-finite numbers — with a
 * clear error instead of silently comparing garbage, and the
 * BaselineChecker must fail loudly rather than go inert when the
 * baseline's structure no longer matches.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "bench/bench_baseline.hh"
#include "util/logging.hh"

namespace
{

using namespace herald;
using benchgate::BaselineChecker;
using benchgate::FlatJson;

class BenchGateTest : public ::testing::Test
{
  protected:
    void SetUp() override { util::setVerbose(false); }

    FlatJson
    parse(const std::string &text)
    {
        return benchgate::detail::Parser(text, "test").run();
    }
};

// ---------------------------------------------------------------
// Parser: well-formed documents
// ---------------------------------------------------------------

TEST_F(BenchGateTest, FlattensNestedObjectsAndArrays)
{
    FlatJson doc = parse(R"({
      "fifo": {"layers_per_sec": 10.5, "ok": true},
      "scenarios": [{"name": "a", "misses": 3},
                    {"name": "b", "misses": 0}],
      "note": "hello\nworld",
      "nothing": null
    })");
    EXPECT_DOUBLE_EQ(doc.number("fifo.layers_per_sec"), 10.5);
    EXPECT_DOUBLE_EQ(doc.number("fifo.ok"), 1.0);
    EXPECT_DOUBLE_EQ(doc.number("scenarios.1.misses"), 0.0);
    ASSERT_NE(doc.findString("scenarios.0.name"), nullptr);
    EXPECT_EQ(*doc.findString("scenarios.0.name"), "a");
    EXPECT_EQ(*doc.findString("note"), "hello\nworld");
    // null binds nothing.
    EXPECT_FALSE(doc.hasNumber("nothing"));
    EXPECT_EQ(doc.findString("nothing"), nullptr);
    EXPECT_EQ(doc.arrayLen("scenarios", "misses"), 2u);
}

TEST_F(BenchGateTest, ParsesNegativeAndExponentNumbers)
{
    FlatJson doc = parse(R"({"a": -1.5, "b": 2.5e6, "c": 0})");
    EXPECT_DOUBLE_EQ(doc.number("a"), -1.5);
    EXPECT_DOUBLE_EQ(doc.number("b"), 2.5e6);
    EXPECT_DOUBLE_EQ(doc.number("c"), 0.0);
}

// ---------------------------------------------------------------
// Parser: corrupt documents
// ---------------------------------------------------------------

TEST_F(BenchGateTest, RejectsTruncatedDocuments)
{
    // A partially written bench JSON (crash mid-emit, full disk)
    // must fail the gate, not be compared as-is.
    EXPECT_THROW(parse(R"({"fifo": {"layers_per_sec": 10)"),
                 std::runtime_error);
    EXPECT_THROW(parse(R"({"rows": [1, 2,)"), std::runtime_error);
    EXPECT_THROW(parse(R"({"name": "unterminated)"),
                 std::runtime_error);
    EXPECT_THROW(parse(""), std::runtime_error);
    EXPECT_THROW(parse("{"), std::runtime_error);
}

TEST_F(BenchGateTest, RejectsNonNumericAndMalformedValues)
{
    EXPECT_THROW(parse(R"({"a": oops})"), std::runtime_error);
    EXPECT_THROW(parse(R"({"a": truE})"), std::runtime_error);
    EXPECT_THROW(parse(R"({"a": ,})"), std::runtime_error);
    // Trailing content after a complete document.
    EXPECT_THROW(parse(R"({"a": 1} garbage)"), std::runtime_error);
}

TEST_F(BenchGateTest, RejectsNonFiniteNumbers)
{
    // strtod happily reads these; a NaN baseline would make every
    // comparison vacuously pass.
    EXPECT_THROW(parse(R"({"a": inf})"), std::runtime_error);
    EXPECT_THROW(parse(R"({"a": -inf})"), std::runtime_error);
    EXPECT_THROW(parse(R"({"a": nan})"), std::runtime_error);
    EXPECT_THROW(parse(R"({"a": 1e999})"), std::runtime_error);
}

TEST_F(BenchGateTest, RejectsDuplicateKeys)
{
    // Same type: the later value would silently win the comparison.
    EXPECT_THROW(parse(R"({"a": 1, "a": 2})"), std::runtime_error);
    // Re-bound with a different type is just as corrupt.
    EXPECT_THROW(parse(R"({"a": 1, "a": "x"})"),
                 std::runtime_error);
    EXPECT_THROW(parse(R"({"a": "x", "a": 1})"),
                 std::runtime_error);
    // Duplicates in nested objects flatten to the same dotted path.
    EXPECT_THROW(parse(R"({"o": {"k": 1}, "o": {"k": 2}})"),
                 std::runtime_error);
    // Same key name at different depths is NOT a duplicate.
    FlatJson doc = parse(R"({"k": 1, "o": {"k": 2}})");
    EXPECT_DOUBLE_EQ(doc.number("k"), 1.0);
    EXPECT_DOUBLE_EQ(doc.number("o.k"), 2.0);
}

TEST_F(BenchGateTest, ParseJsonFileFailsOnMissingFile)
{
    EXPECT_THROW(
        benchgate::parseJsonFile("/nonexistent/bench.json"),
        std::runtime_error);
}

TEST_F(BenchGateTest, ParseToleranceArgIsStrict)
{
    EXPECT_DOUBLE_EQ(benchgate::parseToleranceArg("25"), 25.0);
    EXPECT_DOUBLE_EQ(benchgate::parseToleranceArg("-1000"),
                     -1000.0);
    EXPECT_THROW(benchgate::parseToleranceArg("x25"),
                 std::runtime_error);
    EXPECT_THROW(benchgate::parseToleranceArg("25x"),
                 std::runtime_error);
    EXPECT_THROW(benchgate::parseToleranceArg(""),
                 std::runtime_error);
}

// ---------------------------------------------------------------
// BaselineChecker semantics
// ---------------------------------------------------------------

TEST_F(BenchGateTest, ThroughputGateHonorsTolerance)
{
    FlatJson cur = parse(R"({"x": {"layers_per_sec": 80}})");
    FlatJson base = parse(R"({"x": {"layers_per_sec": 100}})");

    // 80 vs 100 passes at 25% tolerance, fails at 10%.
    BaselineChecker loose(cur, base, 25.0);
    loose.checkThroughput("x.layers_per_sec");
    EXPECT_TRUE(loose.verdict("test"));

    BaselineChecker tight(cur, base, 10.0);
    tight.checkThroughput("x.layers_per_sec");
    EXPECT_FALSE(tight.verdict("test"));

    // The self-check trick: negative tolerance demands current
    // strictly exceed the baseline.
    BaselineChecker self(cur, base, -1000.0);
    self.checkThroughput("x.layers_per_sec");
    EXPECT_FALSE(self.verdict("test"));
}

TEST_F(BenchGateTest, CountGateIsToleranceFree)
{
    FlatJson cur = parse(R"({"misses": 4})");
    FlatJson base = parse(R"({"misses": 3})");
    BaselineChecker chk(cur, base, 25.0);
    chk.checkCountNotAbove("misses", "misses");
    EXPECT_FALSE(chk.verdict("test"));

    BaselineChecker eq(base, base, 25.0);
    eq.checkCountNotAbove("misses", "misses");
    EXPECT_TRUE(eq.verdict("test"));
}

TEST_F(BenchGateTest, InertGateIsAFailure)
{
    // A baseline whose keys all went missing must fail the gate,
    // not skip every probe and stay green forever.
    FlatJson cur = parse(R"({"renamed": 1})");
    FlatJson base = parse(R"({"gone": 1})");
    BaselineChecker chk(cur, base, 25.0);
    chk.checkThroughput("other");
    EXPECT_FALSE(chk.verdict("test"));
}

TEST_F(BenchGateTest, PolicyMissRowsMatchByLabel)
{
    // Rows reordered between runs: label matching must pair them.
    FlatJson cur = parse(R"({"rows": [
        {"policy": "edf", "misses": 1},
        {"policy": "fifo", "misses": 5}]})");
    FlatJson base = parse(R"({"rows": [
        {"policy": "fifo", "misses": 5},
        {"policy": "edf", "misses": 2}]})");
    BaselineChecker chk(cur, base, 25.0);
    benchgate::checkPolicyMissRows(chk, cur, base, "rows", "rows",
                                   "rows");
    EXPECT_TRUE(chk.verdict("test"));

    // A baseline row with no current counterpart fails.
    FlatJson missing = parse(R"({"rows": [
        {"policy": "edf", "misses": 1}]})");
    BaselineChecker chk2(missing, base, 25.0);
    benchgate::checkPolicyMissRows(chk2, missing, base, "rows",
                                   "rows", "rows");
    EXPECT_FALSE(chk2.verdict("test"));
}

} // namespace
