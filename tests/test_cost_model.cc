/**
 * @file
 * Cost-model unit tests. The central fixture is a small convolution
 * (K=4, C=2, 5x5 input, 3x3 filter -> 3x3 output, 648 MACs) mapped
 * NVDLA-style on 8 PEs, for which every traffic quantity is computed
 * by hand in the comments and asserted exactly.
 */

#include <gtest/gtest.h>

#include "cost/cost_model.hh"
#include "cost/reuse_analysis.hh"
#include "dataflow/mapper.hh"
#include "dnn/layer.hh"
#include "util/logging.hh"

namespace
{

using namespace herald;
using dataflow::DataflowStyle;
using dataflow::Dim;
using dataflow::TensorKind;

class CostModelTest : public ::testing::Test
{
  protected:
    void SetUp() override { util::setVerbose(false); }

    dnn::Layer
    smallConv()
    {
        return dnn::makeConv("c", 4, 2, 5, 5, 3, 3);
    }

    dataflow::Mapping
    smallNvdlaMapping()
    {
        dataflow::MapperConstraints hw;
        hw.numPes = 8;
        return buildMapping(DataflowStyle::NVDLA, smallConv(), hw);
    }

    cost::SubAccResources
    smallRes()
    {
        cost::SubAccResources res;
        res.numPes = 8;
        res.bwGBps = 32.0;
        res.l2Bytes = 1ULL << 20;
        return res;
    }
};

TEST_F(CostModelTest, ReuseSpatialStructure)
{
    // NVDLA wires k0 x c0 = 1 x 8 lanes on an 8-PE array; this layer
    // occupies 1 x min(C,8) = 2 lanes and sequences K(4) x OY(3)
    // outer iterations.
    cost::ReuseReport r = cost::analyzeMapping(smallNvdlaMapping());
    EXPECT_EQ(r.spatialSize, 2u);
    EXPECT_EQ(r.outerIters, 4u); // K(4); the 3x3 block absorbs OY/OX
    EXPECT_EQ(r.innerMacsPerPe, 81u); // R3 * S3 * OY3 * OX3
    EXPECT_EQ(r.spatialReduction, 2u); // c lanes = 2
}

TEST_F(CostModelTest, ReuseInputTraffic)
{
    // The whole 3x3 output plane fits one per-PE block, so the array
    // tile covers the entire 2ch x 5 x 5 input; the only outer loop
    // (K) is irrelevant to the input, which is therefore fetched
    // exactly once (50 words) and never multicast (one k lane).
    cost::ReuseReport r = cost::analyzeMapping(smallNvdlaMapping());
    const cost::TensorTraffic &in = r.of(TensorKind::Input);
    EXPECT_EQ(in.unionTileElems, 50u);
    EXPECT_EQ(in.sumTileElems, 50u);
    EXPECT_EQ(in.refetch, 1u);
    EXPECT_EQ(in.wholeElems, 50u); // 2 x 5 x 5
    EXPECT_DOUBLE_EQ(in.multicast(), 1.0);
    EXPECT_EQ(in.l2Words(), 50u);
}

TEST_F(CostModelTest, ReuseWeightStationary)
{
    // The array holds one k-slice of weights (1 x 2ch x 3 x 3 = 18);
    // the innermost outer loop (OY) does not touch them (weight-
    // stationary), the K loop refetches per slice: 4 x 18 = 72 words
    // == every weight exactly once.
    cost::ReuseReport r = cost::analyzeMapping(smallNvdlaMapping());
    const cost::TensorTraffic &wt = r.of(TensorKind::Weight);
    EXPECT_EQ(wt.unionTileElems, 18u);
    EXPECT_EQ(wt.refetch, 4u);
    EXPECT_EQ(wt.l2Words(), 72u);
    EXPECT_DOUBLE_EQ(wt.multicast(), 1.0);
}

TEST_F(CostModelTest, ReuseOutputNoPsumSpill)
{
    // Each output tile is produced once (no reduction loop outside
    // the psum's residency): writes == whole, zero read-backs.
    cost::ReuseReport r = cost::analyzeMapping(smallNvdlaMapping());
    const cost::TensorTraffic &out = r.of(TensorKind::Output);
    EXPECT_EQ(out.unionTileElems, 9u);
    EXPECT_EQ(out.refetch, 4u);
    EXPECT_EQ(out.wholeElems, 36u);
    EXPECT_EQ(r.outputWrites(), 36u);
    EXPECT_EQ(r.outputReadbacks(), 0u);
}

TEST_F(CostModelTest, PsumSpillWhenReductionOuter)
{
    // Hand-built mapping with the C loop *outside* the output-tile
    // loops: psums must spill and be read back.
    dnn::CanonicalConv conv = smallConv().canonical();
    std::vector<dataflow::LoopLevel> nest{
        {Dim::C, 2, dataflow::LoopKind::Temporal},
        {Dim::OY, 3, dataflow::LoopKind::Temporal},
        {Dim::K, 4, dataflow::LoopKind::Spatial},
        {Dim::R, 3, dataflow::LoopKind::Temporal},
        {Dim::S, 3, dataflow::LoopKind::Temporal},
        {Dim::OX, 3, dataflow::LoopKind::Temporal}};
    dataflow::Mapping mapping(conv, nest, 8);
    cost::ReuseReport r = cost::analyzeMapping(mapping);
    // Output tile (K4 x OX3 = 12) delivered per (C,OY) iteration:
    // refetch 6 -> 72 writes for 36 outputs -> 36 read-backs.
    EXPECT_EQ(r.outputWrites(), 72u);
    EXPECT_EQ(r.outputReadbacks(), 36u);
}

TEST_F(CostModelTest, ComputeCyclesMatchHandCount)
{
    cost::CostModel model;
    cost::LayerCost c =
        model.evaluate(smallConv(), DataflowStyle::NVDLA, smallRes());
    // 4 outer iterations x 81 MACs/PE = 324 compute cycles.
    EXPECT_DOUBLE_EQ(c.computeCycles, 324.0);
    EXPECT_EQ(c.macs, 648u);
}

TEST_F(CostModelTest, NocBytesMatchHandCount)
{
    cost::CostModel model;
    cost::LayerCost c =
        model.evaluate(smallConv(), DataflowStyle::NVDLA, smallRes());
    // Reads (50 in + 72 wt + 0 psum) + writes (36) = 158 words.
    EXPECT_DOUBLE_EQ(c.nocBytes, 158.0 * dnn::kDataBytes);
}

TEST_F(CostModelTest, DramOnlyWeightsWhenEverythingResident)
{
    // 1 MiB L2 easily pins all tensors; activations are forwarded
    // through L2, so only the 72 weights cross DRAM.
    cost::CostModel model;
    cost::LayerCost c =
        model.evaluate(smallConv(), DataflowStyle::NVDLA, smallRes());
    EXPECT_DOUBLE_EQ(c.dramBytes, 72.0 * dnn::kDataBytes);
}

TEST_F(CostModelTest, DramGrowsWithoutForwarding)
{
    cost::CostOptions opts;
    opts.forwardActivationsThroughL2 = false;
    cost::CostModel model(cost::EnergyModel{}, opts);
    cost::LayerCost c =
        model.evaluate(smallConv(), DataflowStyle::NVDLA, smallRes());
    // The input (50 words) and the output (36 words) now also cross
    // DRAM once each.
    EXPECT_DOUBLE_EQ(c.dramBytes,
                     (72.0 + 50.0 + 36.0) * dnn::kDataBytes);
}

TEST_F(CostModelTest, TinyL2ForcesStreamingRefetch)
{
    cost::SubAccResources res = smallRes();
    res.l2Bytes = 0; // nothing resident (staging warns but proceeds)
    cost::CostModel model;
    cost::LayerCost with_l2 =
        model.evaluate(smallConv(), DataflowStyle::NVDLA, smallRes());
    cost::LayerCost without =
        model.evaluate(smallConv(), DataflowStyle::NVDLA, res);
    EXPECT_GT(without.dramBytes, with_l2.dramBytes);
}

TEST_F(CostModelTest, LatencyIsRooflinePlusFillPlusOverhead)
{
    cost::CostModel model;
    cost::LayerCost c =
        model.evaluate(smallConv(), DataflowStyle::NVDLA, smallRes());
    double fill = (c.l2FootprintBytes / 2.0) / 32.0;
    EXPECT_NEAR(c.cycles,
                std::max({c.computeCycles, c.nocCycles,
                          c.dramCycles}) +
                    fill + model.options().layerOverheadCycles,
                1e-9);
}

TEST_F(CostModelTest, BandwidthBoundLayer)
{
    // Starve the global NoC share: the DRAM path dominates latency.
    cost::SubAccResources res = smallRes();
    res.bwGBps = 0.25;
    cost::CostModel model;
    cost::LayerCost c =
        model.evaluate(smallConv(), DataflowStyle::NVDLA, res);
    EXPECT_GT(c.dramCycles, c.computeCycles);
    EXPECT_GE(c.cycles, c.dramCycles);
}

TEST_F(CostModelTest, UtilizationFields)
{
    cost::CostModel model;
    cost::LayerCost c =
        model.evaluate(smallConv(), DataflowStyle::NVDLA, smallRes());
    EXPECT_DOUBLE_EQ(c.mappingUtil, 0.25); // 2 of 8 wired lanes
    EXPECT_DOUBLE_EQ(c.edgeUtil, 1.0);     // exact tiling
    EXPECT_DOUBLE_EQ(c.effectiveUtil, 0.25);
}

TEST_F(CostModelTest, EnergyBreakdownSumsToTotal)
{
    cost::CostModel model;
    cost::LayerCost c =
        model.evaluate(smallConv(), DataflowStyle::NVDLA, smallRes());
    EXPECT_NEAR(c.energyUnits,
                c.macEnergy + c.l1EnergyTotal + c.l2EnergyTotal +
                    c.nocEnergyTotal + c.dramEnergyTotal +
                    c.staticEnergyTotal,
                1e-9);
    EXPECT_GT(c.energyMj, 0.0);
}

TEST_F(CostModelTest, StaticEnergyToggle)
{
    cost::CostOptions no_static;
    no_static.staticEnergy = false;
    cost::CostModel with(cost::EnergyModel{}, cost::CostOptions{});
    cost::CostModel without(cost::EnergyModel{}, no_static);
    cost::LayerCost a =
        with.evaluate(smallConv(), DataflowStyle::NVDLA, smallRes());
    cost::LayerCost b = without.evaluate(smallConv(),
                                         DataflowStyle::NVDLA,
                                         smallRes());
    EXPECT_GT(a.staticEnergyTotal, 0.0);
    EXPECT_DOUBLE_EQ(b.staticEnergyTotal, 0.0);
    EXPECT_GT(a.energyUnits, b.energyUnits);
}

TEST_F(CostModelTest, CacheHitsReturnSameResult)
{
    cost::CostModel model;
    const cost::LayerCost &a =
        model.evaluate(smallConv(), DataflowStyle::NVDLA, smallRes());
    double cycles = a.cycles;
    const cost::LayerCost &b =
        model.evaluate(smallConv(), DataflowStyle::NVDLA, smallRes());
    EXPECT_EQ(model.cacheSize(), 1u);
    EXPECT_DOUBLE_EQ(b.cycles, cycles);
}

TEST_F(CostModelTest, CacheDistinguishesResources)
{
    cost::CostModel model;
    cost::SubAccResources res = smallRes();
    model.evaluate(smallConv(), DataflowStyle::NVDLA, res);
    res.numPes = 16;
    model.evaluate(smallConv(), DataflowStyle::NVDLA, res);
    EXPECT_EQ(model.cacheSize(), 2u);
}

TEST_F(CostModelTest, DepthwisePrefersNonChannelStyles)
{
    // The Fig. 5 phenomenon: a depthwise layer runs far better on an
    // output-parallel dataflow than on a channel-parallel one.
    dnn::Layer dw = dnn::makeDepthwise("dw", 32, 58, 58, 3, 3);
    cost::CostModel model;
    cost::SubAccResources res;
    res.numPes = 1024;
    res.bwGBps = 16.0;
    res.l2Bytes = 4ULL << 20;
    cost::LayerCost nvdla =
        model.evaluate(dw, DataflowStyle::NVDLA, res);
    cost::LayerCost shi =
        model.evaluate(dw, DataflowStyle::ShiDiannao, res);
    EXPECT_LT(shi.edp(), nvdla.edp());
    EXPECT_LT(shi.cycles, nvdla.cycles);
}

TEST_F(CostModelTest, FcPrefersChannelParallelStyle)
{
    dnn::Layer fc = dnn::makeFullyConnected("fc", 1000, 2048);
    cost::CostModel model;
    cost::SubAccResources res;
    res.numPes = 1024;
    res.bwGBps = 16.0;
    res.l2Bytes = 4ULL << 20;
    cost::LayerCost nvdla =
        model.evaluate(fc, DataflowStyle::NVDLA, res);
    cost::LayerCost shi =
        model.evaluate(fc, DataflowStyle::ShiDiannao, res);
    EXPECT_LT(nvdla.cycles, shi.cycles);
    EXPECT_LT(nvdla.edp(), shi.edp());
}

TEST_F(CostModelTest, EnergyModelValidation)
{
    cost::EnergyModel bad;
    bad.macEnergy = 0.0;
    EXPECT_THROW(cost::CostModel{bad}, std::runtime_error);
    cost::EnergyModel negative;
    negative.dramEnergy = -1.0;
    EXPECT_THROW(cost::CostModel{negative}, std::runtime_error);
}

} // namespace
