/**
 * @file
 * Property-based tests: invariants of the mapper + cost model swept
 * over a grid of layer shapes, dataflow styles and PE counts via
 * parameterized gtest. These pin down the physics of the model: data
 * delivered at least covers the data needed, rooflines bound latency,
 * utilization is a fraction, and monotonicity holds in bandwidth and
 * energy coefficients.
 */

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "cost/cost_model.hh"
#include "cost/reuse_analysis.hh"
#include "dataflow/mapper.hh"
#include "dnn/layer.hh"
#include "util/logging.hh"

namespace
{

using namespace herald;
using dataflow::DataflowStyle;
using dataflow::TensorKind;

/** Layer shapes covering the workloads' extremes. */
std::vector<dnn::Layer>
propertyLayers()
{
    return {
        dnn::makeConv("early_classifier", 64, 3, 112, 112, 3, 3, 2),
        dnn::makeConv("mid_classifier", 128, 128, 28, 28, 3, 3),
        dnn::makeConv("late_classifier", 512, 512, 9, 9, 3, 3),
        dnn::makeConv("segmentation", 64, 64, 570, 570, 3, 3),
        dnn::makePointwise("expand", 192, 32, 56, 56),
        dnn::makeDepthwise("dw_stride", 144, 57, 57, 3, 3, 2),
        dnn::makeDepthwise("dw_unit", 32, 112, 112, 3, 3),
        dnn::makeFullyConnected("fc_narrow", 63, 1024),
        dnn::makeFullyConnected("fc_huge", 4096, 4096),
        dnn::makeTransposedConv("upconv", 512, 1024, 28, 28, 2, 2, 2),
        dnn::makeConv("gemm_tokens", 4096, 2048, 20, 1, 1, 1),
        dnn::makeConv("tiny", 2, 2, 4, 4, 2, 2),
        dnn::makeConv("odd_sizes", 65, 33, 29, 31, 3, 5),
    };
}

using PropertyParam =
    std::tuple<std::size_t /*layer idx*/, DataflowStyle,
               std::uint64_t /*pes*/>;

class CostProperty : public ::testing::TestWithParam<PropertyParam>
{
  protected:
    void SetUp() override { util::setVerbose(false); }

    dnn::Layer
    layer() const
    {
        return propertyLayers().at(std::get<0>(GetParam()));
    }

    DataflowStyle
    style() const
    {
        return std::get<1>(GetParam());
    }

    cost::SubAccResources
    res() const
    {
        cost::SubAccResources r;
        r.numPes = std::get<2>(GetParam());
        r.bwGBps = 32.0;
        r.l2Bytes = 2ULL << 20;
        return r;
    }

    dataflow::Mapping
    mapping() const
    {
        dataflow::MapperConstraints hw;
        hw.numPes = res().numPes;
        hw.l2TileBudgetBytes = res().l2Bytes;
        return buildMapping(style(), layer(), hw);
    }
};

TEST_P(CostProperty, MappingIsLegal)
{
    dataflow::Mapping m = mapping();
    EXPECT_LE(m.spatialSize(), res().numPes);
    EXPECT_GE(m.paddedMacs(), layer().macs());
    EXPECT_GT(m.mappingUtilization(), 0.0);
    EXPECT_LE(m.mappingUtilization(), 1.0);
    EXPECT_GT(m.edgeUtilization(), 0.0);
    EXPECT_LE(m.edgeUtilization(), 1.0);
}

TEST_P(CostProperty, DeliveredDataCoversFootprint)
{
    cost::ReuseReport r = cost::analyzeMapping(mapping());
    for (TensorKind t : {TensorKind::Input, TensorKind::Weight,
                         TensorKind::Output}) {
        const cost::TensorTraffic &tt = r.of(t);
        // Every element must be delivered at least once.
        EXPECT_GE(tt.l2Words(), tt.wholeElems)
            << dataflow::toString(t);
        // Multicast means more consumers than deliveries, never less.
        EXPECT_GE(tt.multicast(), 1.0 - 1e-9)
            << dataflow::toString(t);
    }
}

TEST_P(CostProperty, MacDecompositionConsistent)
{
    dataflow::Mapping m = mapping();
    cost::ReuseReport r = cost::analyzeMapping(m);
    EXPECT_EQ(r.outerIters * r.innerMacsPerPe * r.spatialSize,
              m.paddedMacs());
}

TEST_P(CostProperty, LatencyBounds)
{
    cost::CostModel model;
    cost::LayerCost c = model.evaluate(layer(), style(), res());
    // Compute roofline: can't beat perfect parallelism over all PEs.
    EXPECT_GE(c.computeCycles + 1e-9,
              static_cast<double>(layer().macs()) /
                  static_cast<double>(res().numPes));
    // Total covers every roofline component.
    EXPECT_GE(c.cycles, c.computeCycles);
    EXPECT_GE(c.cycles, c.nocCycles);
    EXPECT_GE(c.cycles, c.dramCycles);
    EXPECT_GT(c.latencySec, 0.0);
}

TEST_P(CostProperty, EnergyPositiveAndDecomposed)
{
    cost::CostModel model;
    cost::LayerCost c = model.evaluate(layer(), style(), res());
    EXPECT_GT(c.energyUnits, 0.0);
    EXPECT_NEAR(c.energyUnits,
                c.macEnergy + c.l1EnergyTotal + c.l2EnergyTotal +
                    c.nocEnergyTotal + c.dramEnergyTotal +
                    c.staticEnergyTotal,
                c.energyUnits * 1e-12);
    // MAC energy alone is a hard lower bound.
    EXPECT_GE(c.energyUnits,
              static_cast<double>(layer().macs()) - 1e-6);
}

TEST_P(CostProperty, HalvingBandwidthNeverSpeedsUp)
{
    cost::CostModel model;
    cost::SubAccResources full = res();
    cost::SubAccResources half = res();
    half.bwGBps /= 2.0;
    cost::LayerCost a = model.evaluate(layer(), style(), full);
    cost::LayerCost b = model.evaluate(layer(), style(), half);
    EXPECT_GE(b.cycles + 1e-9, a.cycles);
}

TEST_P(CostProperty, RaisingDramCostNeverLowersEnergy)
{
    cost::EnergyModel expensive;
    expensive.dramEnergy *= 10.0;
    cost::CostModel base;
    cost::CostModel pricey(expensive);
    cost::LayerCost a = base.evaluate(layer(), style(), res());
    cost::LayerCost b = pricey.evaluate(layer(), style(), res());
    EXPECT_GE(b.energyUnits + 1e-9, a.energyUnits);
}

TEST_P(CostProperty, DisablingForwardingNeverLowersDram)
{
    cost::CostOptions no_fwd;
    no_fwd.forwardActivationsThroughL2 = false;
    cost::CostModel with(cost::EnergyModel{}, cost::CostOptions{});
    cost::CostModel without(cost::EnergyModel{}, no_fwd);
    cost::LayerCost a = with.evaluate(layer(), style(), res());
    cost::LayerCost b = without.evaluate(layer(), style(), res());
    EXPECT_GE(b.dramBytes + 1e-9, a.dramBytes);
}

TEST_P(CostProperty, StagingFootprintWithinBudgetOrWarned)
{
    // The mapper targets the L2 staging budget; for every shape in
    // the sweep it must actually meet it (no shape here is so
    // degenerate that a unit tile overflows 2 MiB).
    cost::CostModel model;
    cost::LayerCost c = model.evaluate(layer(), style(), res());
    EXPECT_LE(c.l2FootprintBytes, res().l2Bytes);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CostProperty,
    ::testing::Combine(
        ::testing::Range<std::size_t>(0, propertyLayers().size()),
        ::testing::Values(DataflowStyle::NVDLA,
                          DataflowStyle::ShiDiannao,
                          DataflowStyle::Eyeriss),
        ::testing::Values<std::uint64_t>(64, 1024, 16384)),
    [](const ::testing::TestParamInfo<PropertyParam> &info) {
        return propertyLayers()[std::get<0>(info.param)].name() + "_" +
               dataflow::shortName(std::get<1>(info.param)) + "_" +
               std::to_string(std::get<2>(info.param)) + "pe";
    });

} // namespace
