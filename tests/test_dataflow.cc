/**
 * @file
 * Unit tests for the dataflow module: loop-nest invariants, tensor
 * footprints/dependences, and per-style mapping construction
 * (including the Fig. 5 utilization scenarios).
 */

#include <gtest/gtest.h>

#include "dataflow/loop_nest.hh"
#include "dataflow/mapper.hh"
#include "dataflow/style.hh"
#include "dnn/layer.hh"
#include "util/logging.hh"

namespace
{

using namespace herald::dataflow;
using herald::dnn::CanonicalConv;
using herald::dnn::Layer;
using herald::dnn::makeConv;
using herald::dnn::makeDepthwise;
using herald::dnn::makeFullyConnected;

class DataflowTest : public ::testing::Test
{
  protected:
    void SetUp() override { herald::util::setVerbose(false); }

    MapperConstraints
    hw(std::uint64_t pes)
    {
        MapperConstraints c;
        c.numPes = pes;
        return c;
    }
};

TEST_F(DataflowTest, TensorDependences)
{
    CanonicalConv conv = makeConv("c", 8, 4, 7, 7, 3, 3).canonical();
    EXPECT_FALSE(tensorUsesDim(conv, TensorKind::Input, Dim::K));
    EXPECT_TRUE(tensorUsesDim(conv, TensorKind::Input, Dim::C));
    EXPECT_TRUE(tensorUsesDim(conv, TensorKind::Input, Dim::OY));
    EXPECT_TRUE(tensorUsesDim(conv, TensorKind::Input, Dim::R));
    EXPECT_TRUE(tensorUsesDim(conv, TensorKind::Weight, Dim::K));
    EXPECT_FALSE(tensorUsesDim(conv, TensorKind::Weight, Dim::OY));
    EXPECT_TRUE(tensorUsesDim(conv, TensorKind::Output, Dim::K));
    EXPECT_FALSE(tensorUsesDim(conv, TensorKind::Output, Dim::C));
}

TEST_F(DataflowTest, DepthwiseDependencesFollowK)
{
    CanonicalConv dw = makeDepthwise("dw", 8, 7, 7, 3, 3).canonical();
    EXPECT_TRUE(tensorUsesDim(dw, TensorKind::Input, Dim::K));
    EXPECT_FALSE(tensorUsesDim(dw, TensorKind::Input, Dim::C));
    EXPECT_TRUE(tensorUsesDim(dw, TensorKind::Weight, Dim::K));
    EXPECT_FALSE(tensorUsesDim(dw, TensorKind::Weight, Dim::C));
}

TEST_F(DataflowTest, FootprintWholeLayer)
{
    CanonicalConv conv = makeConv("c", 8, 4, 7, 7, 3, 3).canonical();
    RegionExtents whole;
    whole.multiply(Dim::K, 8);
    whole.multiply(Dim::C, 4);
    whole.multiply(Dim::OY, 5);
    whole.multiply(Dim::OX, 5);
    whole.multiply(Dim::R, 3);
    whole.multiply(Dim::S, 3);
    // Input: 4ch x ((5-1)+3)=7 rows x 7 cols.
    EXPECT_EQ(tensorFootprint(conv, TensorKind::Input, whole),
              4ull * 7 * 7);
    EXPECT_EQ(tensorFootprint(conv, TensorKind::Weight, whole),
              8ull * 4 * 3 * 3);
    EXPECT_EQ(tensorFootprint(conv, TensorKind::Output, whole),
              8ull * 5 * 5);
}

TEST_F(DataflowTest, FootprintHaloWithStride)
{
    CanonicalConv conv =
        makeConv("c", 8, 4, 15, 15, 3, 3, 2).canonical();
    ASSERT_EQ(conv.oy, 7u);
    RegionExtents region;
    region.multiply(Dim::OY, 4);
    region.multiply(Dim::R, 3);
    // 4 output rows at stride 2 with 3-tap filter: 3*2+3 = 9 rows.
    region.multiply(Dim::C, 2);
    EXPECT_EQ(tensorFootprint(conv, TensorKind::Input, region),
              2ull * 9 * 1);
}

TEST_F(DataflowTest, MappingValidationCoversDims)
{
    CanonicalConv conv = makeConv("c", 8, 4, 7, 7, 3, 3).canonical();
    // K covered with 4 < 8: must be rejected.
    std::vector<LoopLevel> nest{
        LoopLevel{Dim::K, 4, LoopKind::Spatial},
        LoopLevel{Dim::C, 4, LoopKind::Temporal},
        LoopLevel{Dim::OY, 5, LoopKind::Temporal},
        LoopLevel{Dim::OX, 5, LoopKind::Temporal},
        LoopLevel{Dim::R, 3, LoopKind::Temporal},
        LoopLevel{Dim::S, 3, LoopKind::Temporal}};
    EXPECT_THROW(Mapping(conv, nest, 16), std::runtime_error);
}

TEST_F(DataflowTest, MappingRejectsOversizedSpatial)
{
    CanonicalConv conv = makeConv("c", 8, 4, 7, 7, 3, 3).canonical();
    std::vector<LoopLevel> nest{
        LoopLevel{Dim::K, 8, LoopKind::Spatial},
        LoopLevel{Dim::C, 4, LoopKind::Spatial},
        LoopLevel{Dim::OY, 5, LoopKind::Temporal},
        LoopLevel{Dim::OX, 5, LoopKind::Temporal},
        LoopLevel{Dim::R, 3, LoopKind::Temporal},
        LoopLevel{Dim::S, 3, LoopKind::Temporal}};
    EXPECT_THROW(Mapping(conv, nest, 16), std::runtime_error);
}

TEST_F(DataflowTest, MapperCoversEveryDim)
{
    // Property over all styles: padded extents cover the layer and
    // spatial size respects the PE budget.
    Layer layer = makeConv("c", 64, 32, 56, 56, 3, 3);
    for (DataflowStyle style : kAllStyles) {
        Mapping m = buildMapping(style, layer, hw(256));
        EXPECT_LE(m.spatialSize(), 256u) << toString(style);
        EXPECT_GE(m.paddedExtent(Dim::K), 64u) << toString(style);
        EXPECT_GE(m.paddedExtent(Dim::C), 32u) << toString(style);
        EXPECT_GE(m.paddedExtent(Dim::OY), 54u) << toString(style);
        EXPECT_GE(m.paddedExtent(Dim::OX), 54u) << toString(style);
        EXPECT_GE(m.paddedExtent(Dim::R), 3u) << toString(style);
        EXPECT_GE(m.paddedExtent(Dim::S), 3u) << toString(style);
    }
}

TEST_F(DataflowTest, NvdlaUnrollsChannels)
{
    // Deep-channel layer: NVDLA saturates the array.
    Layer layer = makeConv("c", 256, 256, 16, 16, 3, 3);
    Mapping m = buildMapping(DataflowStyle::NVDLA, layer, hw(256));
    EXPECT_EQ(m.spatialSize(), 256u);
    EXPECT_DOUBLE_EQ(m.mappingUtilization(), 1.0);
}

TEST_F(DataflowTest, NvdlaStarvesOnShallowChannels)
{
    // UNet conv1-like: C=1 leaves all but one input-channel lane of
    // the wired 8x32 array idle: 8 of 256 PEs.
    Layer layer = makeConv("c", 64, 1, 64, 64, 3, 3);
    Mapping m = buildMapping(DataflowStyle::NVDLA, layer, hw(256));
    EXPECT_EQ(m.spatialSize(), 8u);
    EXPECT_DOUBLE_EQ(m.mappingUtilization(), 8.0 / 256.0);
}

TEST_F(DataflowTest, NvdlaDepthwiseUtilizationCollapse)
{
    // Fig. 5 layer 3: DW conv cannot unroll C; K=2 on 16 PEs = 12.5%.
    Layer layer = makeDepthwise("dw", 2, 6, 6, 3, 3);
    Mapping m = buildMapping(DataflowStyle::NVDLA, layer, hw(16));
    EXPECT_DOUBLE_EQ(m.mappingUtilization(), 2.0 / 16.0);
}

TEST_F(DataflowTest, ShiDiannaoSaturatesOnLargeActivation)
{
    // Fig. 5 layer 1/3 pattern: 4x4 output on 16 PEs = 100%.
    Layer layer = makeConv("c", 3, 3, 6, 6, 3, 3);
    Mapping m =
        buildMapping(DataflowStyle::ShiDiannao, layer, hw(16));
    EXPECT_DOUBLE_EQ(m.mappingUtilization(), 1.0);
}

TEST_F(DataflowTest, ShiDiannaoStarvesOnSmallActivation)
{
    // Fig. 5 layer 2 pattern: 2x2 output on 16 PEs = 25%.
    Layer layer = makeConv("c", 16, 3, 5, 5, 4, 4);
    ASSERT_EQ(layer.outY(), 2u);
    Mapping m =
        buildMapping(DataflowStyle::ShiDiannao, layer, hw(16));
    EXPECT_DOUBLE_EQ(m.mappingUtilization(), 4.0 / 16.0);
}

TEST_F(DataflowTest, ShiDiannaoFcDegenerates)
{
    // FC has a 1x1 output plane: one PE.
    Layer layer = makeFullyConnected("fc", 1000, 2048);
    Mapping m =
        buildMapping(DataflowStyle::ShiDiannao, layer, hw(256));
    EXPECT_EQ(m.spatialSize(), 1u);
}

TEST_F(DataflowTest, EyerissUnrollsRowsAndFilterRows)
{
    Layer layer = makeConv("c", 64, 32, 58, 58, 3, 3);
    Mapping m = buildMapping(DataflowStyle::Eyeriss, layer, hw(256));
    // 3 filter rows x min(56, 256/3 = 85) = 3*56 = 168 PEs.
    EXPECT_EQ(m.spatialSize(), 168u);
}

TEST_F(DataflowTest, DepthwiseMappingsKeepCAtOne)
{
    Layer layer = makeDepthwise("dw", 32, 16, 16, 3, 3);
    for (DataflowStyle style : kAllStyles) {
        Mapping m = buildMapping(style, layer, hw(64));
        EXPECT_EQ(m.paddedExtent(Dim::C), 1u) << toString(style);
    }
}

TEST_F(DataflowTest, PaddedMacsAtLeastTrueMacs)
{
    Layer layer = makeConv("c", 65, 33, 29, 29, 3, 3);
    for (DataflowStyle style : kAllStyles) {
        Mapping m = buildMapping(style, layer, hw(100));
        EXPECT_GE(m.paddedMacs(), layer.macs()) << toString(style);
        EXPECT_GT(m.edgeUtilization(), 0.0);
        EXPECT_LE(m.edgeUtilization(), 1.0);
    }
}

TEST_F(DataflowTest, MappingPrintsLoopNest)
{
    Layer layer = makeConv("c", 8, 4, 7, 7, 3, 3);
    Mapping m = buildMapping(DataflowStyle::NVDLA, layer, hw(16));
    std::string text = m.toString();
    EXPECT_NE(text.find("pfor"), std::string::npos);
    EXPECT_NE(text.find("for"), std::string::npos);
}

TEST_F(DataflowTest, SinglePeMapping)
{
    // Everything must still map on a single-PE accelerator.
    Layer layer = makeConv("c", 8, 4, 7, 7, 3, 3);
    for (DataflowStyle style : kAllStyles) {
        Mapping m = buildMapping(style, layer, hw(1));
        EXPECT_EQ(m.spatialSize(), 1u) << toString(style);
        EXPECT_GE(m.paddedMacs(), layer.macs()) << toString(style);
    }
}

TEST_F(DataflowTest, StyleNames)
{
    EXPECT_STREQ(toString(DataflowStyle::NVDLA), "NVDLA");
    EXPECT_STREQ(shortName(DataflowStyle::ShiDiannao), "shi");
    EXPECT_STREQ(toString(DataflowStyle::Eyeriss), "Eyeriss");
}

} // namespace
