/**
 * @file
 * Unit tests for the dnn module: layer geometry, canonicalization,
 * MAC/byte counting, validation, and the Model container.
 */

#include <gtest/gtest.h>

#include "dnn/layer.hh"
#include "dnn/model.hh"
#include "util/logging.hh"

namespace
{

using namespace herald::dnn;

class DnnTest : public ::testing::Test
{
  protected:
    void SetUp() override { herald::util::setVerbose(false); }
};

TEST_F(DnnTest, ConvOutputSize)
{
    // 7x7 input, 3x3 filter, stride 1 -> 5x5 output.
    Layer l = makeConv("c", 8, 4, 7, 7, 3, 3);
    EXPECT_EQ(l.outY(), 5u);
    EXPECT_EQ(l.outX(), 5u);
}

TEST_F(DnnTest, StridedConvOutputSize)
{
    // 224 input (pre-padded to 230 for SAME), 7x7 stride 2 -> 112.
    Layer l = makeConv("c", 64, 3, 230, 230, 7, 7, 2);
    EXPECT_EQ(l.outY(), 112u);
    EXPECT_EQ(l.outX(), 112u);
}

TEST_F(DnnTest, ConvMacs)
{
    // K*C*OY*OX*R*S = 8*4*5*5*3*3.
    Layer l = makeConv("c", 8, 4, 7, 7, 3, 3);
    EXPECT_EQ(l.macs(), 8ull * 4 * 5 * 5 * 3 * 3);
}

TEST_F(DnnTest, PointwiseIsOneByOne)
{
    Layer l = makePointwise("pw", 16, 8, 10, 10);
    EXPECT_EQ(l.kind(), LayerKind::PointwiseConv2D);
    EXPECT_EQ(l.outY(), 10u);
    EXPECT_EQ(l.macs(), 16ull * 8 * 10 * 10);
}

TEST_F(DnnTest, DepthwiseNoChannelReduction)
{
    // DW macs: C*OY*OX*R*S -- no cross-channel accumulation.
    Layer l = makeDepthwise("dw", 32, 7, 7, 3, 3);
    EXPECT_EQ(l.macs(), 32ull * 5 * 5 * 3 * 3);
    EXPECT_TRUE(l.canonical().depthwise);
    EXPECT_EQ(l.canonical().c, 1u);
    EXPECT_EQ(l.canonical().k, 32u);
}

TEST_F(DnnTest, FullyConnectedAsDegenerateConv)
{
    Layer l = makeFullyConnected("fc", 1000, 2048);
    EXPECT_EQ(l.macs(), 1000ull * 2048);
    EXPECT_EQ(l.outY(), 1u);
    EXPECT_EQ(l.outX(), 1u);
}

TEST_F(DnnTest, TransposedConvDoublesResolution)
{
    // UNet-style 2x2 stride-2 up-conv: output = 2x input, and each
    // output element receives exactly one filter tap.
    Layer l = makeTransposedConv("up", 64, 128, 28, 28, 2, 2, 2);
    EXPECT_EQ(l.outY(), 56u);
    EXPECT_EQ(l.outX(), 56u);
    EXPECT_EQ(l.macs(), 64ull * 128 * 56 * 56 * 1 * 1);
}

TEST_F(DnnTest, TransposedConvKernel4Stride2)
{
    // DepthNet-style 4x4 up-conv, upscale 2: 2x2 taps per output.
    Layer l = makeTransposedConv("up", 32, 64, 7, 7, 4, 4, 2);
    EXPECT_EQ(l.outY(), 14u);
    EXPECT_EQ(l.macs(), 32ull * 64 * 14 * 14 * 2 * 2);
}

TEST_F(DnnTest, TransposedConvInputFootprintShrinks)
{
    // The canonical form advances 1/2 input row per output row.
    Layer l = makeTransposedConv("up", 8, 8, 10, 10, 2, 2, 2);
    const CanonicalConv &cc = l.canonical();
    // 20 output rows touch (20-1)*1/2 + 1 = 10 input rows.
    EXPECT_EQ(cc.inputRows(cc.oy), 10u);
}

TEST_F(DnnTest, ByteCounts)
{
    Layer l = makeConv("c", 8, 4, 7, 7, 3, 3);
    EXPECT_EQ(l.inputBytes(), 4ull * 7 * 7 * kDataBytes);
    EXPECT_EQ(l.weightBytes(), 8ull * 4 * 3 * 3 * kDataBytes);
    EXPECT_EQ(l.outputBytes(), 8ull * 5 * 5 * kDataBytes);
}

TEST_F(DnnTest, DepthwiseWeightBytes)
{
    Layer l = makeDepthwise("dw", 32, 7, 7, 3, 3);
    EXPECT_EQ(l.weightBytes(), 32ull * 3 * 3 * kDataBytes);
}

TEST_F(DnnTest, ChannelActivationRatio)
{
    Layer l = makeConv("c", 64, 128, 32, 32, 3, 3);
    EXPECT_DOUBLE_EQ(l.channelActivationRatio(), 128.0 / 32.0);
    Layer fc = makeFullyConnected("fc", 10, 1024);
    EXPECT_DOUBLE_EQ(fc.channelActivationRatio(), 1024.0);
}

TEST_F(DnnTest, ShapeKeyStableAndDiscriminating)
{
    Layer a = makeConv("a", 8, 4, 7, 7, 3, 3);
    Layer b = makeConv("different-name", 8, 4, 7, 7, 3, 3);
    Layer c = makeConv("c", 8, 4, 7, 7, 3, 1);
    EXPECT_EQ(a.shapeKey(), b.shapeKey());
    EXPECT_NE(a.shapeKey(), c.shapeKey());
}

TEST_F(DnnTest, ValidationRejectsZeroDims)
{
    EXPECT_THROW(makeConv("bad", 0, 4, 7, 7, 3, 3),
                 std::runtime_error);
}

TEST_F(DnnTest, ValidationRejectsOversizedFilter)
{
    EXPECT_THROW(makeConv("bad", 8, 4, 2, 2, 3, 3),
                 std::runtime_error);
}

TEST_F(DnnTest, ValidationRejectsDepthwiseChannelMismatch)
{
    EXPECT_THROW(Layer("bad", LayerKind::DepthwiseConv2D,
                       LayerShape{8, 4, 7, 7, 3, 3, 1, 1}),
                 std::runtime_error);
}

TEST_F(DnnTest, ValidationRejectsUpscaleOnConv)
{
    EXPECT_THROW(Layer("bad", LayerKind::Conv2D,
                       LayerShape{8, 4, 7, 7, 3, 3, 1, 2}),
                 std::runtime_error);
}

TEST_F(DnnTest, KindNames)
{
    EXPECT_STREQ(toString(LayerKind::Conv2D), "CONV2D");
    EXPECT_STREQ(toString(LayerKind::DepthwiseConv2D), "DWCONV");
    EXPECT_STREQ(toString(LayerKind::PointwiseConv2D), "PWCONV");
    EXPECT_STREQ(toString(LayerKind::FullyConnected), "FC");
    EXPECT_STREQ(toString(LayerKind::TransposedConv2D), "UPCONV");
}

TEST_F(DnnTest, ModelAccumulatesLayers)
{
    Model m("m");
    m.addLayer(makeConv("c1", 8, 4, 7, 7, 3, 3));
    m.addLayer(makeFullyConnected("fc", 10, 8));
    EXPECT_EQ(m.numLayers(), 2u);
    EXPECT_EQ(m.totalMacs(),
              makeConv("c1", 8, 4, 7, 7, 3, 3).macs() + 10ull * 8);
    EXPECT_EQ(m.layer(1).name(), "fc");
}

TEST_F(DnnTest, ModelLayerOutOfRangePanics)
{
    Model m("m");
    m.addLayer(makeConv("c1", 8, 4, 7, 7, 3, 3));
    EXPECT_THROW(m.layer(1), std::logic_error);
}

TEST_F(DnnTest, ModelRatioExtremes)
{
    Model m("m");
    m.addLayer(makeConv("wide", 8, 3, 64, 64, 3, 3));  // 3/64
    m.addLayer(makeFullyConnected("fc", 10, 1024));    // 1024
    EXPECT_DOUBLE_EQ(m.minChannelActivationRatio(), 3.0 / 64.0);
    EXPECT_DOUBLE_EQ(m.maxChannelActivationRatio(), 1024.0);
}

} // namespace
