/**
 * @file
 * DSE tests: partition enumeration, search strategies, and the
 * Herald co-DSE driver (best-point selection, Pareto view, and the
 * Fig. 6 phenomenon that an even PE split is not optimal in general).
 */

#include <gtest/gtest.h>

#include "dse/design_space.hh"
#include "dse/herald_dse.hh"
#include "dnn/model_zoo.hh"
#include "util/logging.hh"
#include "workload/workload.hh"

namespace
{

using namespace herald;
using dataflow::DataflowStyle;
using dse::PartitionCandidate;
using dse::PartitionSpaceOptions;
using dse::SearchStrategy;

class DseTest : public ::testing::Test
{
  protected:
    void SetUp() override { util::setVerbose(false); }

    workload::Workload
    miniWorkload()
    {
        workload::Workload wl("mini");
        wl.addModel(dnn::brqHandposeNet(), 2);
        wl.addModel(dnn::mobileNetV2(), 1);
        return wl;
    }

    cost::CostModel model;
};

TEST_F(DseTest, CompositionsTwoWay)
{
    auto comps = dse::enumerateCompositions(4, 2);
    // {1,3} {2,2} {3,1}
    ASSERT_EQ(comps.size(), 3u);
    for (const auto &c : comps) {
        EXPECT_EQ(c.size(), 2u);
        EXPECT_EQ(c[0] + c[1], 4u);
        EXPECT_GE(c[0], 1u);
    }
}

TEST_F(DseTest, CompositionsThreeWay)
{
    // Compositions of 6 into 3 positive parts: C(5,2) = 10.
    auto comps = dse::enumerateCompositions(6, 3);
    EXPECT_EQ(comps.size(), 10u);
}

TEST_F(DseTest, CompositionsInfeasible)
{
    EXPECT_TRUE(dse::enumerateCompositions(1, 2).empty());
    EXPECT_TRUE(dse::enumerateCompositions(4, 0).empty());
}

TEST_F(DseTest, CandidateGridCoversBudgets)
{
    PartitionSpaceOptions opts;
    opts.peGranularity = 256;
    opts.bwGranularity = 4.0;
    auto cands = dse::generateCandidates(1024, 16.0, 2, opts);
    // 3 PE splits x 3 BW splits.
    EXPECT_EQ(cands.size(), 9u);
    for (const PartitionCandidate &c : cands) {
        EXPECT_EQ(c.peSplit[0] + c.peSplit[1], 1024u);
        EXPECT_NEAR(c.bwSplit[0] + c.bwSplit[1], 16.0, 1e-9);
        EXPECT_GE(c.peSplit[0], 256u);
        EXPECT_GE(c.bwSplit[0], 4.0 - 1e-9);
    }
}

TEST_F(DseTest, GranularityMustDivide)
{
    PartitionSpaceOptions opts;
    opts.peGranularity = 300;
    EXPECT_THROW(dse::generateCandidates(1024, 16.0, 2, opts),
                 std::runtime_error);
}

TEST_F(DseTest, RandomSamplingIsDeterministicAndBounded)
{
    PartitionSpaceOptions opts;
    opts.strategy = SearchStrategy::Random;
    opts.randomSamples = 5;
    opts.peGranularity = 64;
    opts.bwGranularity = 1.0;
    auto a = dse::generateCandidates(1024, 16.0, 2, opts);
    auto b = dse::generateCandidates(1024, 16.0, 2, opts);
    ASSERT_EQ(a.size(), 5u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].peSplit, b[i].peSplit);
        EXPECT_EQ(a[i].bwSplit, b[i].bwSplit);
    }
}

TEST_F(DseTest, BinaryStrategyIsCoarser)
{
    PartitionSpaceOptions fine;
    fine.peGranularity = 64;
    fine.bwGranularity = 1.0;
    PartitionSpaceOptions coarse = fine;
    coarse.strategy = SearchStrategy::Binary;
    auto fine_c = dse::generateCandidates(1024, 16.0, 2, fine);
    auto coarse_c = dse::generateCandidates(1024, 16.0, 2, coarse);
    EXPECT_LT(coarse_c.size(), fine_c.size());
}

TEST_F(DseTest, RefineAroundStaysInBudget)
{
    PartitionSpaceOptions opts;
    opts.peGranularity = 64;
    opts.bwGranularity = 1.0;
    PartitionCandidate center;
    center.peSplit = {512, 512};
    center.bwSplit = {8.0, 8.0};
    auto cands = dse::refineAround(center, 1024, 16.0, opts);
    EXPECT_FALSE(cands.empty());
    for (const PartitionCandidate &c : cands) {
        EXPECT_EQ(c.peSplit[0] + c.peSplit[1], 1024u);
        EXPECT_NEAR(c.bwSplit[0] + c.bwSplit[1], 16.0, 1e-9);
    }
}

TEST_F(DseTest, ExploreFindsBestPoint)
{
    dse::HeraldOptions opts;
    opts.partition.peGranularity = 256;
    opts.partition.bwGranularity = 4.0;
    dse::Herald herald(model, opts);
    workload::Workload wl = miniWorkload();
    dse::DseResult result = herald.explore(
        wl, accel::edgeClass(),
        {DataflowStyle::NVDLA, DataflowStyle::ShiDiannao});
    EXPECT_EQ(result.points.size(), 9u);
    // Best index really is the EDP argmin.
    double best = result.best().summary.edp();
    for (const auto &p : result.points)
        EXPECT_GE(p.summary.edp() + 1e-12, best);
}

TEST_F(DseTest, ExploreObjectiveLatency)
{
    dse::HeraldOptions opts;
    opts.partition.peGranularity = 256;
    opts.partition.bwGranularity = 4.0;
    opts.objective = sched::Metric::Latency;
    dse::Herald herald(model, opts);
    workload::Workload wl = miniWorkload();
    dse::DseResult result = herald.explore(
        wl, accel::edgeClass(),
        {DataflowStyle::NVDLA, DataflowStyle::ShiDiannao});
    double best = result.best().summary.latencySec;
    for (const auto &p : result.points)
        EXPECT_GE(p.summary.latencySec + 1e-15, best);
}

TEST_F(DseTest, BinaryRefinementAddsPoints)
{
    dse::HeraldOptions coarse_only;
    coarse_only.partition.peGranularity = 64;
    coarse_only.partition.bwGranularity = 1.0;
    coarse_only.partition.strategy = SearchStrategy::Binary;
    dse::Herald herald(model, coarse_only);
    workload::Workload wl = miniWorkload();
    dse::DseResult result = herald.explore(
        wl, accel::edgeClass(),
        {DataflowStyle::NVDLA, DataflowStyle::ShiDiannao});
    // Coarse grid + refinement points were all evaluated.
    PartitionSpaceOptions probe = coarse_only.partition;
    auto coarse_cands =
        dse::generateCandidates(1024, 16.0, 2, probe);
    EXPECT_GT(result.points.size(), coarse_cands.size());
}

TEST_F(DseTest, EvaluateFixedAccelerator)
{
    dse::Herald herald(model);
    workload::Workload wl = miniWorkload();
    accel::Accelerator fda = accel::Accelerator::makeFda(
        accel::edgeClass(), DataflowStyle::NVDLA);
    dse::DsePoint point = herald.evaluate(wl, fda);
    EXPECT_GT(point.summary.latencySec, 0.0);
    EXPECT_GT(point.summary.energyMj, 0.0);
}

TEST_F(DseTest, DesignPointsExportForPareto)
{
    dse::HeraldOptions opts;
    opts.partition.peGranularity = 256;
    opts.partition.bwGranularity = 8.0;
    dse::Herald herald(model, opts);
    workload::Workload wl = miniWorkload();
    dse::DseResult result = herald.explore(
        wl, accel::edgeClass(),
        {DataflowStyle::NVDLA, DataflowStyle::ShiDiannao});
    auto points = result.designPoints();
    EXPECT_EQ(points.size(), result.points.size());
    auto front = util::paretoFront(points);
    EXPECT_FALSE(front.empty());
    EXPECT_LE(front.size(), points.size());
}

TEST_F(DseTest, ExploreRejectsEmptyStyles)
{
    dse::Herald herald(model);
    workload::Workload wl = miniWorkload();
    EXPECT_THROW(herald.explore(wl, accel::edgeClass(), {}),
                 std::runtime_error);
}

} // namespace
