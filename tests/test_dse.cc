/**
 * @file
 * DSE tests: partition enumeration, search strategies, and the
 * Herald co-DSE driver (best-point selection, Pareto view, and the
 * Fig. 6 phenomenon that an even PE split is not optimal in general).
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "dse/design_space.hh"
#include "dse/herald_dse.hh"
#include "dnn/model_zoo.hh"
#include "util/logging.hh"
#include "workload/workload.hh"

namespace
{

using namespace herald;
using dataflow::DataflowStyle;
using dse::PartitionCandidate;
using dse::PartitionSpaceOptions;
using dse::SearchStrategy;

class DseTest : public ::testing::Test
{
  protected:
    void SetUp() override { util::setVerbose(false); }

    workload::Workload
    miniWorkload()
    {
        workload::Workload wl("mini");
        wl.addModel(dnn::brqHandposeNet(), 2);
        wl.addModel(dnn::mobileNetV2(), 1);
        return wl;
    }

    cost::CostModel model;
};

TEST_F(DseTest, CompositionsTwoWay)
{
    auto comps = dse::enumerateCompositions(4, 2);
    // {1,3} {2,2} {3,1}
    ASSERT_EQ(comps.size(), 3u);
    for (const auto &c : comps) {
        EXPECT_EQ(c.size(), 2u);
        EXPECT_EQ(c[0] + c[1], 4u);
        EXPECT_GE(c[0], 1u);
    }
}

TEST_F(DseTest, CompositionsThreeWay)
{
    // Compositions of 6 into 3 positive parts: C(5,2) = 10.
    auto comps = dse::enumerateCompositions(6, 3);
    EXPECT_EQ(comps.size(), 10u);
}

TEST_F(DseTest, CompositionsInfeasible)
{
    EXPECT_TRUE(dse::enumerateCompositions(1, 2).empty());
    EXPECT_TRUE(dse::enumerateCompositions(4, 0).empty());
}

TEST_F(DseTest, CandidateGridCoversBudgets)
{
    PartitionSpaceOptions opts;
    opts.peGranularity = 256;
    opts.bwGranularity = 4.0;
    auto cands = dse::generateCandidates(1024, 16.0, 2, opts);
    // 3 PE splits x 3 BW splits.
    EXPECT_EQ(cands.size(), 9u);
    for (const PartitionCandidate &c : cands) {
        EXPECT_EQ(c.peSplit[0] + c.peSplit[1], 1024u);
        EXPECT_NEAR(c.bwSplit[0] + c.bwSplit[1], 16.0, 1e-9);
        EXPECT_GE(c.peSplit[0], 256u);
        EXPECT_GE(c.bwSplit[0], 4.0 - 1e-9);
    }
}

TEST_F(DseTest, GranularityMustDivide)
{
    PartitionSpaceOptions opts;
    opts.peGranularity = 300;
    EXPECT_THROW(dse::generateCandidates(1024, 16.0, 2, opts),
                 std::runtime_error);
}

TEST_F(DseTest, RandomSamplingIsDeterministicAndBounded)
{
    PartitionSpaceOptions opts;
    opts.strategy = SearchStrategy::Random;
    opts.randomSamples = 5;
    opts.peGranularity = 64;
    opts.bwGranularity = 1.0;
    auto a = dse::generateCandidates(1024, 16.0, 2, opts);
    auto b = dse::generateCandidates(1024, 16.0, 2, opts);
    ASSERT_EQ(a.size(), 5u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].peSplit, b[i].peSplit);
        EXPECT_EQ(a[i].bwSplit, b[i].bwSplit);
    }
}

TEST_F(DseTest, BinaryStrategyIsCoarser)
{
    PartitionSpaceOptions fine;
    fine.peGranularity = 64;
    fine.bwGranularity = 1.0;
    PartitionSpaceOptions coarse = fine;
    coarse.strategy = SearchStrategy::Binary;
    auto fine_c = dse::generateCandidates(1024, 16.0, 2, fine);
    auto coarse_c = dse::generateCandidates(1024, 16.0, 2, coarse);
    EXPECT_LT(coarse_c.size(), fine_c.size());
}

TEST_F(DseTest, RefineAroundStaysInBudget)
{
    PartitionSpaceOptions opts;
    opts.peGranularity = 64;
    opts.bwGranularity = 1.0;
    PartitionCandidate center;
    center.peSplit = {512, 512};
    center.bwSplit = {8.0, 8.0};
    auto cands = dse::refineAround(center, 1024, 16.0, opts);
    EXPECT_FALSE(cands.empty());
    for (const PartitionCandidate &c : cands) {
        EXPECT_EQ(c.peSplit[0] + c.peSplit[1], 1024u);
        EXPECT_NEAR(c.bwSplit[0] + c.bwSplit[1], 16.0, 1e-9);
    }
}

TEST_F(DseTest, ExploreFindsBestPoint)
{
    dse::HeraldOptions opts;
    opts.partition.peGranularity = 256;
    opts.partition.bwGranularity = 4.0;
    dse::Herald herald(model, opts);
    workload::Workload wl = miniWorkload();
    dse::DseResult result = herald.explore(
        wl, accel::edgeClass(),
        {DataflowStyle::NVDLA, DataflowStyle::ShiDiannao});
    EXPECT_EQ(result.points.size(), 9u);
    // Best index really is the EDP argmin.
    double best = result.best().summary.edp();
    for (const auto &p : result.points)
        EXPECT_GE(p.summary.edp() + 1e-12, best);
}

TEST_F(DseTest, ExploreObjectiveLatency)
{
    dse::HeraldOptions opts;
    opts.partition.peGranularity = 256;
    opts.partition.bwGranularity = 4.0;
    opts.objective = dse::Objective::Latency;
    dse::Herald herald(model, opts);
    workload::Workload wl = miniWorkload();
    dse::DseResult result = herald.explore(
        wl, accel::edgeClass(),
        {DataflowStyle::NVDLA, DataflowStyle::ShiDiannao});
    double best = result.best().summary.latencySec;
    for (const auto &p : result.points)
        EXPECT_GE(p.summary.latencySec + 1e-15, best);
}

TEST_F(DseTest, BinaryRefinementAddsPoints)
{
    dse::HeraldOptions coarse_only;
    coarse_only.partition.peGranularity = 64;
    coarse_only.partition.bwGranularity = 1.0;
    coarse_only.partition.strategy = SearchStrategy::Binary;
    dse::Herald herald(model, coarse_only);
    workload::Workload wl = miniWorkload();
    dse::DseResult result = herald.explore(
        wl, accel::edgeClass(),
        {DataflowStyle::NVDLA, DataflowStyle::ShiDiannao});
    // Coarse grid + refinement points were all evaluated.
    PartitionSpaceOptions probe = coarse_only.partition;
    auto coarse_cands =
        dse::generateCandidates(1024, 16.0, 2, probe);
    EXPECT_GT(result.points.size(), coarse_cands.size());
}

TEST_F(DseTest, BinaryCoarseStepDegradesGracefullyOnSmallChips)
{
    // Plenty of units: the coarse pass really is 4x coarser.
    PartitionSpaceOptions fine;
    fine.peGranularity = 64;
    fine.bwGranularity = 1.0;
    PartitionSpaceOptions coarse = fine;
    coarse.strategy = SearchStrategy::Binary;
    auto coarse_c = dse::generateCandidates(1024, 16.0, 2, coarse);
    // 16 units / 4 = 4 coarse units: 3 splits per axis.
    EXPECT_EQ(coarse_c.size(), 9u);

    // 8 units: 4x would leave one choice per axis, so only 2x.
    PartitionSpaceOptions mid;
    mid.peGranularity = 128;
    mid.bwGranularity = 2.0;
    mid.strategy = SearchStrategy::Binary;
    auto mid_c = dse::generateCandidates(1024, 16.0, 2, mid);
    EXPECT_EQ(mid_c.size(), 9u); // 4 coarse units per axis again

    // total_pes barely above ways * pe_step (4 units, 2 ways): any
    // coarsening would collapse the grid to the single all-minimum
    // split; the coarse pass must degenerate to the fine grid
    // instead of silently searching one point.
    PartitionSpaceOptions tiny;
    tiny.peGranularity = 256;
    tiny.bwGranularity = 4.0;
    PartitionSpaceOptions tiny_binary = tiny;
    tiny_binary.strategy = SearchStrategy::Binary;
    auto tiny_fine = dse::generateCandidates(1024, 16.0, 2, tiny);
    auto tiny_coarse =
        dse::generateCandidates(1024, 16.0, 2, tiny_binary);
    EXPECT_EQ(tiny_coarse.size(), tiny_fine.size());
    EXPECT_GT(tiny_coarse.size(), 1u);

    // Odd unit count (3 units, 2 ways): no multiplier divides it.
    PartitionSpaceOptions odd;
    odd.peGranularity = 256;
    odd.bwGranularity = 4.0;
    odd.strategy = SearchStrategy::Binary;
    auto odd_c = dse::generateCandidates(768, 12.0, 2, odd);
    auto odd_fine_opts = odd;
    odd_fine_opts.strategy = SearchStrategy::Exhaustive;
    auto odd_fine =
        dse::generateCandidates(768, 12.0, 2, odd_fine_opts);
    EXPECT_EQ(odd_c.size(), odd_fine.size());
}

TEST_F(DseTest, RefineAroundThreeWayUsesFineGridNotCoarse)
{
    // Regression: with strategy still Binary, the >2-way fallback
    // used to return the *coarse* grid — the refinement round then
    // re-evaluated exactly the coarse candidates.
    PartitionSpaceOptions opts;
    opts.peGranularity = 64;
    opts.bwGranularity = 1.0;
    opts.strategy = SearchStrategy::Binary;
    auto coarse = dse::generateCandidates(1024, 16.0, 3, opts);

    PartitionCandidate center;
    center.peSplit = {512, 256, 256};
    center.bwSplit = {8.0, 4.0, 4.0};
    auto refined = dse::refineAround(center, 1024, 16.0, opts);

    PartitionSpaceOptions fine = opts;
    fine.strategy = SearchStrategy::Exhaustive;
    auto fine_grid = dse::generateCandidates(1024, 16.0, 3, fine);
    EXPECT_EQ(refined.size(), fine_grid.size());
    EXPECT_GT(refined.size(), coarse.size());
}

namespace
{

/** (peSplit, bwSplit) key of an evaluated HDA design point. */
std::string
pointKey(const dse::DsePoint &point)
{
    std::string key;
    for (const auto &sub : point.accelerator.subAccs()) {
        key += std::to_string(sub.numPes) + "/" +
               std::to_string(sub.bwGBps) + ",";
    }
    return key;
}

} // namespace

TEST_F(DseTest, BinaryRefinementEvaluatesNoCandidateTwice)
{
    for (std::size_t ways : {std::size_t{2}, std::size_t{3}}) {
        dse::HeraldOptions opts;
        opts.partition.peGranularity = 64;
        opts.partition.bwGranularity = 2.0;
        opts.partition.strategy = SearchStrategy::Binary;
        dse::Herald herald(model, opts);
        workload::Workload wl = miniWorkload();
        std::vector<DataflowStyle> styles = {
            DataflowStyle::NVDLA, DataflowStyle::ShiDiannao,
            DataflowStyle::Eyeriss};
        styles.resize(ways);
        dse::DseResult result =
            herald.explore(wl, accel::edgeClass(), styles);

        std::set<std::string> keys;
        for (const dse::DsePoint &p : result.points) {
            EXPECT_TRUE(keys.insert(pointKey(p)).second)
                << ways << "-way: duplicate candidate "
                << pointKey(p);
        }
        // The refinement round still contributes fresh points on
        // top of the coarse grid.
        auto coarse = dse::generateCandidates(
            accel::edgeClass().numPes, accel::edgeClass().bwGBps,
            ways, opts.partition);
        EXPECT_GT(result.points.size(), coarse.size()) << ways;
    }
}

TEST_F(DseTest, EvaluateFixedAccelerator)
{
    dse::Herald herald(model);
    workload::Workload wl = miniWorkload();
    accel::Accelerator fda = accel::Accelerator::makeFda(
        accel::edgeClass(), DataflowStyle::NVDLA);
    dse::DsePoint point = herald.evaluate(wl, fda);
    EXPECT_GT(point.summary.latencySec, 0.0);
    EXPECT_GT(point.summary.energyMj, 0.0);
}

TEST_F(DseTest, DesignPointsExportForPareto)
{
    dse::HeraldOptions opts;
    opts.partition.peGranularity = 256;
    opts.partition.bwGranularity = 8.0;
    dse::Herald herald(model, opts);
    workload::Workload wl = miniWorkload();
    dse::DseResult result = herald.explore(
        wl, accel::edgeClass(),
        {DataflowStyle::NVDLA, DataflowStyle::ShiDiannao});
    auto points = result.designPoints();
    EXPECT_EQ(points.size(), result.points.size());
    auto front = util::paretoFront(points);
    EXPECT_FALSE(front.empty());
    EXPECT_LE(front.size(), points.size());
}

TEST_F(DseTest, ExploreRejectsEmptyStyles)
{
    dse::Herald herald(model);
    workload::Workload wl = miniWorkload();
    EXPECT_THROW(herald.explore(wl, accel::edgeClass(), {}),
                 std::runtime_error);
}

} // namespace
