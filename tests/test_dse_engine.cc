/**
 * @file
 * DSE search-engine tests: the simulated-annealing strategy must be a
 * pure function of (workload, chip, options) — bit-identical across
 * reruns and thread counts — the Pareto-frontier objective must
 * return a valid frontier containing the argmin, and the
 * cross-candidate CostColumnCache must leave every result
 * bit-identical to a cold build.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "accel/accelerator.hh"
#include "dnn/model_zoo.hh"
#include "dse/herald_dse.hh"
#include "sched/layer_cost_table.hh"
#include "util/logging.hh"
#include "util/math_utils.hh"
#include "util/pareto.hh"
#include "workload/workload.hh"

namespace
{

using namespace herald;
using dataflow::DataflowStyle;

class DseEngineTest : public ::testing::Test
{
  protected:
    void SetUp() override { util::setVerbose(false); }

    workload::Workload
    miniWorkload()
    {
        workload::Workload wl("mini");
        wl.addModel(dnn::brqHandposeNet(), 2);
        wl.addModel(dnn::mobileNetV2(), 1);
        return wl;
    }

    /** Annealing on a 2-way edge HDA with a modest budget. */
    dse::HeraldOptions
    annealingOptions(std::uint64_t seed, std::size_t threads)
    {
        dse::HeraldOptions opts;
        opts.partition.peGranularity = 128;
        opts.partition.bwGranularity = 2.0;
        opts.partition.strategy = dse::SearchStrategy::Annealing;
        opts.partition.seed = seed;
        opts.partition.annealing.chains = 4;
        opts.partition.annealing.iterations = 12;
        opts.objective = dse::Objective::ParetoFrontier;
        opts.numThreads = threads;
        return opts;
    }

    dse::DseResult
    runAnnealing(std::uint64_t seed, std::size_t threads)
    {
        cost::CostModel model;
        dse::Herald herald(model, annealingOptions(seed, threads));
        workload::Workload wl = miniWorkload();
        return herald.explore(wl, accel::edgeClass(),
                              {DataflowStyle::NVDLA,
                               DataflowStyle::ShiDiannao});
    }

    static void
    expectIdentical(const dse::DseResult &a, const dse::DseResult &b)
    {
        EXPECT_EQ(a.bestIdx, b.bestIdx);
        EXPECT_EQ(a.frontier, b.frontier);
        ASSERT_EQ(a.points.size(), b.points.size());
        for (std::size_t i = 0; i < a.points.size(); ++i) {
            const sched::ScheduleSummary &sa = a.points[i].summary;
            const sched::ScheduleSummary &sb = b.points[i].summary;
            // Bit-identical, not just close: the engine must run the
            // exact same computation whatever the thread count.
            EXPECT_EQ(sa.makespanCycles, sb.makespanCycles) << i;
            EXPECT_EQ(sa.latencySec, sb.latencySec) << i;
            EXPECT_EQ(sa.energyMj, sb.energyMj) << i;
            EXPECT_EQ(sa.sla.deadlineMisses, sb.sla.deadlineMisses)
                << i;
            EXPECT_EQ(a.points[i].accelerator.name(),
                      b.points[i].accelerator.name())
                << i;
        }
    }
};

// ---------------------------------------------------------------
// Annealing determinism
// ---------------------------------------------------------------

TEST_F(DseEngineTest, AnnealingIsBitIdenticalAcrossThreadCounts)
{
    dse::DseResult serial = runAnnealing(1, 1);
    dse::DseResult parallel = runAnnealing(1, 4);
    dse::DseResult oversubscribed = runAnnealing(1, 13);
    expectIdentical(serial, parallel);
    expectIdentical(serial, oversubscribed);
}

TEST_F(DseEngineTest, AnnealingRerunIsBitIdentical)
{
    dse::DseResult a = runAnnealing(7, 2);
    dse::DseResult b = runAnnealing(7, 2);
    expectIdentical(a, b);
}

TEST_F(DseEngineTest, DifferentSeedsYieldValidFrontiers)
{
    for (std::uint64_t seed : {std::uint64_t{1}, std::uint64_t{7},
                               std::uint64_t{1234567}}) {
        dse::DseResult result = runAnnealing(seed, 2);
        ASSERT_FALSE(result.points.empty()) << "seed " << seed;
        ASSERT_FALSE(result.frontier.empty()) << "seed " << seed;

        std::vector<util::DesignPoint> pts = result.designPoints();
        // Frontier members are mutually non-dominated...
        for (std::size_t i : result.frontier) {
            for (std::size_t j : result.frontier) {
                if (i != j) {
                    EXPECT_FALSE(
                        util::dominates(pts[i], pts[j]))
                        << "seed " << seed;
                }
            }
        }
        // ...and the frontier matches a from-scratch extraction.
        EXPECT_EQ(result.frontier, util::paretoFrontIndices(pts))
            << "seed " << seed;
        // The scalarized argmin always sits on the frontier.
        bool best_on_front = false;
        for (std::size_t i : result.frontier)
            best_on_front = best_on_front || i == result.bestIdx;
        EXPECT_TRUE(best_on_front) << "seed " << seed;
    }
}

TEST_F(DseEngineTest, AnnealingFindsExhaustiveOptimumOnTinyGrid)
{
    // 4 PE units x 4 BW units, 2-way: a 9-candidate grid. With 4
    // chains x 24 iterations the walk visits essentially the whole
    // space, so the best point must match the exhaustive argmin
    // bit-for-bit.
    auto run = [&](dse::SearchStrategy strategy) {
        cost::CostModel model;
        dse::HeraldOptions opts;
        opts.partition.peGranularity = 256;
        opts.partition.bwGranularity = 4.0;
        opts.partition.strategy = strategy;
        opts.partition.annealing.chains = 4;
        opts.partition.annealing.iterations = 24;
        opts.numThreads = 2;
        dse::Herald herald(model, opts);
        workload::Workload wl = miniWorkload();
        return herald.explore(wl, accel::edgeClass(),
                              {DataflowStyle::NVDLA,
                               DataflowStyle::ShiDiannao});
    };
    dse::DseResult exhaustive = run(dse::SearchStrategy::Exhaustive);
    dse::DseResult annealed = run(dse::SearchStrategy::Annealing);
    EXPECT_EQ(annealed.best().summary.edp(),
              exhaustive.best().summary.edp());
    EXPECT_EQ(annealed.best().accelerator.name(),
              exhaustive.best().accelerator.name());
    // The metaheuristic never evaluates more points than the grid
    // holds: revisits are memoized, not re-scored.
    EXPECT_LE(annealed.points.size(), exhaustive.points.size());
}

TEST_F(DseEngineTest, AnnealingRespectsEvaluationBudget)
{
    cost::CostModel model;
    dse::HeraldOptions opts = annealingOptions(3, 2);
    opts.partition.annealing.chains = 2;
    opts.partition.annealing.iterations = 64;
    opts.partition.annealing.maxEvaluations = 5;
    dse::Herald herald(model, opts);
    workload::Workload wl = miniWorkload();
    dse::DseResult result = herald.explore(
        wl, accel::edgeClass(),
        {DataflowStyle::NVDLA, DataflowStyle::ShiDiannao});
    // The cap is checked between iteration batches, so at most one
    // batch (<= chains fresh evaluations) can land past it.
    EXPECT_LE(result.points.size(),
              opts.partition.annealing.maxEvaluations +
                  opts.partition.annealing.chains);
    EXPECT_GE(result.points.size(), std::size_t{1});
}

// ---------------------------------------------------------------
// Pareto-frontier objective on the exhaustive sweep
// ---------------------------------------------------------------

TEST_F(DseEngineTest, ExhaustiveParetoFrontierContainsArgmin)
{
    cost::CostModel model;
    dse::HeraldOptions opts;
    opts.partition.peGranularity = 128;
    opts.partition.bwGranularity = 2.0;
    opts.objective = dse::Objective::ParetoFrontier;
    dse::Herald herald(model, opts);
    workload::Workload wl = miniWorkload();
    dse::DseResult result = herald.explore(
        wl, accel::edgeClass(),
        {DataflowStyle::NVDLA, DataflowStyle::ShiDiannao});

    ASSERT_FALSE(result.frontier.empty());
    EXPECT_EQ(result.frontier,
              util::paretoFrontIndices(result.designPoints()));
    bool best_on_front = false;
    for (std::size_t i : result.frontier)
        best_on_front = best_on_front || i == result.bestIdx;
    EXPECT_TRUE(best_on_front);
    EXPECT_EQ(result.frontierPoints().size(),
              result.frontier.size());

    // Scalar objectives leave the frontier empty (argmin-only
    // consumers pay nothing for the new mode).
    opts.objective = dse::Objective::Edp;
    dse::Herald scalar(model, opts);
    EXPECT_TRUE(scalar
                    .explore(wl, accel::edgeClass(),
                             {DataflowStyle::NVDLA,
                              DataflowStyle::ShiDiannao})
                    .frontier.empty());
}

// ---------------------------------------------------------------
// Cross-candidate cost-column cache
// ---------------------------------------------------------------

TEST_F(DseEngineTest, CachedSweepBitIdenticalToCold)
{
    // A 3-way HDA grid is where columns actually recur across
    // candidates (two axes per composition share values); the cached
    // sweep must still be indistinguishable from the cold one.
    auto run = [&](bool share, std::size_t threads) {
        cost::CostModel model;
        dse::HeraldOptions opts;
        opts.partition.peGranularity = 256;
        opts.partition.bwGranularity = 4.0;
        opts.shareCostColumns = share;
        opts.numThreads = threads;
        dse::Herald herald(model, opts);
        workload::Workload wl = miniWorkload();
        return herald.explore(wl, accel::edgeClass(),
                              {DataflowStyle::NVDLA,
                               DataflowStyle::ShiDiannao,
                               DataflowStyle::Eyeriss});
    };
    dse::DseResult cold = run(false, 1);
    dse::DseResult cached = run(true, 1);
    dse::DseResult cached_parallel = run(true, 4);
    expectIdentical(cold, cached);
    expectIdentical(cold, cached_parallel);
}

TEST_F(DseEngineTest, ColumnCacheBuildsBitIdenticalTables)
{
    // Randomized candidate sweep straight at the table layer: a
    // shared cache across many 3-way splits must reproduce every
    // cold-built table entry bit-for-bit, including when the build
    // is a pure cache hit (second pass over the same candidates).
    cost::CostModel cold_model;
    cost::CostModel cached_model;
    workload::Workload wl = miniWorkload();
    accel::AcceleratorClass chip = accel::edgeClass();
    const std::vector<DataflowStyle> styles{
        DataflowStyle::NVDLA, DataflowStyle::ShiDiannao,
        DataflowStyle::Eyeriss};
    const accel::RdaOverheads rda{};
    sched::CostColumnCache cache;
    util::SplitMix64 rng(99);

    std::vector<dse::PartitionCandidate> candidates;
    dse::PartitionSpaceOptions space;
    space.peGranularity = 128;
    space.bwGranularity = 2.0;
    for (int i = 0; i < 12; ++i) {
        candidates.push_back(dse::randomCandidate(
            chip.numPes, chip.bwGBps, styles.size(), space, rng));
    }
    // Second pass re-reads every column from the cache.
    for (int i = 0; i < 12; ++i)
        candidates.push_back(candidates[static_cast<std::size_t>(i)]);

    for (const dse::PartitionCandidate &cand : candidates) {
        accel::Accelerator acc = accel::Accelerator::makeHda(
            chip, styles, cand.peSplit, cand.bwSplit);
        sched::LayerCostTable cold = sched::LayerCostTable::build(
            cold_model, wl, acc, sched::Metric::Edp, rda);
        sched::LayerCostTable warm = sched::LayerCostTable::build(
            cached_model, wl, acc, sched::Metric::Edp, rda, 1,
            &cache);
        ASSERT_EQ(cold.numUniqueLayers(), warm.numUniqueLayers());
        ASSERT_EQ(cold.numSubAccs(), warm.numSubAccs());
        for (std::size_t row = 0; row < cold.numUniqueLayers();
             ++row) {
            EXPECT_EQ(cold.minCycles(row), warm.minCycles(row));
            for (std::size_t a = 0; a < cold.numSubAccs(); ++a) {
                EXPECT_EQ(cold.cost(row, a).style,
                          warm.cost(row, a).style);
                EXPECT_EQ(cold.cost(row, a).cost.cycles,
                          warm.cost(row, a).cost.cycles);
                EXPECT_EQ(cold.cost(row, a).cost.energyMj,
                          warm.cost(row, a).cost.energyMj);
                EXPECT_EQ(cold.metric(row, a), warm.metric(row, a));
                EXPECT_EQ(cold.order(row)[a], warm.order(row)[a]);
            }
        }
    }
    // The duplicate second pass guarantees real hits happened.
    EXPECT_GT(cache.stats().hits, std::size_t{0});
    EXPECT_GT(cache.size(), std::size_t{0});
}

} // namespace
