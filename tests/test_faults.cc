/**
 * @file
 * Fault-injection tests: FaultTimeline queries and invariants,
 * degraded-capacity cost views, degraded-mode scheduling (outage
 * deferral, in-flight kills and rescheduling, dead-sub-accelerator
 * demotion, graceful degradation when all capacity is lost), the
 * fault-aware-beats-fault-oblivious guarantee on the factory
 * scenario, fault-consistency validation and rendering, and a
 * seeded chaos sweep asserting every random timeline yields a valid,
 * internally consistent, bit-identical schedule across reruns and
 * prefill thread counts.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "accel/accelerator.hh"
#include "dnn/model_zoo.hh"
#include "sched/fault_model.hh"
#include "sched/herald_scheduler.hh"
#include "sched/layer_cost_table.hh"
#include "util/logging.hh"
#include "workload/workload.hh"

namespace
{

using namespace herald;
using accel::Accelerator;
using dataflow::DataflowStyle;
using sched::FaultTimeline;
using sched::HeraldScheduler;
using sched::kNeverCycle;
using sched::Schedule;
using sched::SchedulerOptions;
using sched::SlaStats;
using workload::Workload;

class FaultTest : public ::testing::Test
{
  protected:
    void SetUp() override { util::setVerbose(false); }

    /** Small periodic two-stream workload that schedules fast. */
    Workload
    miniRealtime()
    {
        Workload wl("mini-rt");
        dnn::Model conv_net("ConvNet");
        conv_net.addLayer(dnn::makeConv("c1", 64, 3, 58, 58, 3, 3));
        conv_net.addLayer(dnn::makeConv("c2", 128, 64, 28, 28, 3, 3));
        conv_net.addLayer(dnn::makeFullyConnected("fc", 10, 128));
        dnn::Model fc_net("FcNet");
        fc_net.addLayer(dnn::makeFullyConnected("f1", 1024, 1024));
        fc_net.addLayer(dnn::makeFullyConnected("f2", 256, 1024));
        wl.addPeriodicModel(std::move(conv_net), 3, 4e6);
        wl.addPeriodicModel(std::move(fc_net), 2, 6e6, 3e6);
        return wl;
    }

    Accelerator
    miniHda()
    {
        return Accelerator::makeHda(
            accel::edgeClass(),
            {DataflowStyle::NVDLA, DataflowStyle::ShiDiannao},
            {512, 512}, {8.0, 8.0});
    }

    /** Makespan of the fault-free FIFO schedule (fault horizon). */
    double
    faultFreeMakespan(const Workload &wl, const Accelerator &acc)
    {
        HeraldScheduler s(model, SchedulerOptions{});
        return s.schedule(wl, acc).makespanCycles();
    }

    cost::CostModel model;
};

/** The (policy x drop x preemption) grid the benches sweep. */
struct GridConfig
{
    sched::Policy policy;
    sched::DropPolicy drop;
    sched::Preemption preemption;
};

const GridConfig kGrid[] = {
    {sched::Policy::Fifo, sched::DropPolicy::None,
     sched::Preemption::Off},
    {sched::Policy::Edf, sched::DropPolicy::None,
     sched::Preemption::Off},
    {sched::Policy::Lst, sched::DropPolicy::None,
     sched::Preemption::Off},
    {sched::Policy::Lst, sched::DropPolicy::HopelessFrames,
     sched::Preemption::Off},
    {sched::Policy::Lst, sched::DropPolicy::None,
     sched::Preemption::AtLayerBoundary},
    {sched::Policy::Lst, sched::DropPolicy::DoomedFrames,
     sched::Preemption::AtLayerBoundary},
};

// ---------------------------------------------------------------
// FaultTimeline: construction and queries
// ---------------------------------------------------------------

TEST_F(FaultTest, EmptyTimelinesAndArityChecks)
{
    EXPECT_TRUE(FaultTimeline{}.empty());
    FaultTimeline tl(2);
    EXPECT_TRUE(tl.empty());
    EXPECT_EQ(tl.numSubAccs(), 2u);
    tl.addOutage(0, 100.0, 50.0);
    EXPECT_FALSE(tl.empty());
    // Out-of-range sub-accelerator index.
    EXPECT_THROW(tl.addOutage(2, 0.0, 1.0), std::runtime_error);
    EXPECT_THROW(tl.addPermanentFailure(5, 10.0),
                 std::runtime_error);
    // Non-finite / negative event parameters.
    EXPECT_THROW(tl.addOutage(0, -1.0, 1.0), std::runtime_error);
    EXPECT_THROW(tl.addOutage(0, 0.0, kNeverCycle),
                 std::runtime_error);
    EXPECT_THROW(tl.addThrottle(0, 0.0, 10.0, 0.5),
                 std::runtime_error);
}

TEST_F(FaultTest, OutagesMergeAndDriveAvailability)
{
    FaultTimeline tl(1);
    tl.addOutage(0, 100.0, 50.0); // [100, 150)
    tl.addOutage(0, 140.0, 60.0); // overlaps -> union [100, 200)
    ASSERT_EQ(tl.outages(0).size(), 1u);
    EXPECT_DOUBLE_EQ(tl.outages(0)[0].beginCycle, 100.0);
    EXPECT_DOUBLE_EQ(tl.outages(0)[0].endCycle, 200.0);

    EXPECT_TRUE(tl.availableAt(0, 99.0));
    EXPECT_FALSE(tl.availableAt(0, 100.0)); // half-open begin
    EXPECT_FALSE(tl.availableAt(0, 199.0));
    EXPECT_TRUE(tl.availableAt(0, 200.0)); // half-open end

    EXPECT_DOUBLE_EQ(tl.nextAvailable(0, 50.0), 50.0);
    EXPECT_DOUBLE_EQ(tl.nextAvailable(0, 130.0), 200.0);
    EXPECT_TRUE(tl.windowAvailable(0, 0.0, 100.0));
    EXPECT_FALSE(tl.windowAvailable(0, 90.0, 20.0));
    EXPECT_TRUE(tl.windowAvailable(0, 200.0, 1000.0));
}

TEST_F(FaultTest, PermanentFailureAndOnsets)
{
    FaultTimeline tl(2);
    tl.addOutage(0, 100.0, 50.0);
    tl.addPermanentFailure(0, 1000.0);
    EXPECT_DOUBLE_EQ(tl.permanentFailureCycle(0), 1000.0);
    EXPECT_EQ(tl.permanentFailureCycle(1), kNeverCycle);

    // Past the permanent failure there is no availability left.
    EXPECT_EQ(tl.nextAvailable(0, 1000.0), kNeverCycle);
    EXPECT_EQ(tl.nextAvailable(0, 5000.0), kNeverCycle);
    EXPECT_DOUBLE_EQ(tl.nextAvailable(0, 999.0), 999.0);

    // nextOnset is strictly-after: a layer starting exactly at an
    // onset is not killed by that same onset.
    EXPECT_DOUBLE_EQ(tl.nextOnset(0, 0.0), 100.0);
    EXPECT_DOUBLE_EQ(tl.nextOnset(0, 100.0), 1000.0);
    EXPECT_EQ(tl.nextOnset(1, 0.0), kNeverCycle);

    EXPECT_TRUE(tl.isFaultOnset(0, 100.0));
    EXPECT_TRUE(tl.isFaultOnset(0, 1000.0));
    EXPECT_FALSE(tl.isFaultOnset(0, 150.0));

    // A window running into the permanent failure is unavailable.
    EXPECT_FALSE(tl.windowAvailable(0, 900.0, 200.0));
    EXPECT_TRUE(tl.windowAvailable(0, 900.0, 100.0));
}

TEST_F(FaultTest, ThrottleQueriesAndStretch)
{
    FaultTimeline tl(1);
    tl.addThrottle(0, 100.0, 100.0, 2.0); // [100, 200) at 2x
    EXPECT_DOUBLE_EQ(tl.throttleFactorAt(0, 150.0), 2.0);
    EXPECT_DOUBLE_EQ(tl.throttleFactorAt(0, 200.0), 1.0);
    EXPECT_DOUBLE_EQ(tl.throttleFactorAt(0, 50.0), 1.0);

    // Overlapping throttles are ambiguous and rejected.
    EXPECT_THROW(tl.addThrottle(0, 150.0, 100.0, 3.0),
                 std::runtime_error);

    // Stretch: 50 cycles of overlap at (2 - 1) extra.
    EXPECT_DOUBLE_EQ(tl.throttleStretchCycles(0, 150.0, 100.0),
                     50.0);
    EXPECT_DOUBLE_EQ(tl.throttleStretchCycles(0, 300.0, 100.0), 0.0);

    // Throttles disturb but do not forbid a window.
    EXPECT_TRUE(tl.windowAvailable(0, 120.0, 50.0));
    EXPECT_FALSE(tl.windowUndisturbed(0, 120.0, 50.0));
    EXPECT_TRUE(tl.windowUndisturbed(0, 200.0, 50.0));
}

TEST_F(FaultTest, RandomTimelinesAreSeedDeterministic)
{
    const double horizon = 1e6;
    FaultTimeline a = FaultTimeline::random(42, 4, horizon);
    FaultTimeline b = FaultTimeline::random(42, 4, horizon);
    EXPECT_EQ(a.describe(), b.describe());

    // Structural sanity: events live in [0, horizon), outages are
    // sorted and disjoint, and at least one sub-accelerator never
    // permanently fails (random timelines never kill the whole
    // chip).
    std::size_t survivors = 0;
    for (std::size_t acc = 0; acc < a.numSubAccs(); ++acc) {
        double prev_end = -1.0;
        for (const sched::OutageWindow &w : a.outages(acc)) {
            EXPECT_GE(w.beginCycle, 0.0);
            EXPECT_LT(w.beginCycle, w.endCycle);
            EXPECT_LE(w.endCycle, horizon);
            EXPECT_GT(w.beginCycle, prev_end);
            prev_end = w.endCycle;
        }
        for (const sched::ThrottleWindow &w : a.throttles(acc))
            EXPECT_GT(w.factor, 1.0);
        if (a.permanentFailureCycle(acc) == kNeverCycle)
            ++survivors;
    }
    EXPECT_GE(survivors, 1u);

    EXPECT_THROW(FaultTimeline::random(1, 0, horizon),
                 std::runtime_error);
    EXPECT_THROW(FaultTimeline::random(1, 2, kNeverCycle),
                 std::runtime_error);
}

TEST_F(FaultTest, FactoryFaultTimelineShape)
{
    EXPECT_TRUE(sched::factoryFaultTimeline(2, 0, 1e6).empty());
    FaultTimeline tl = sched::factoryFaultTimeline(2, 2, 1e6);
    EXPECT_DOUBLE_EQ(tl.permanentFailureCycle(0), 0.3e6);
    EXPECT_DOUBLE_EQ(tl.permanentFailureCycle(1), 0.55e6);
    EXPECT_THROW(sched::factoryFaultTimeline(2, 3, 1e6),
                 std::runtime_error);
    EXPECT_THROW(sched::factoryFaultTimeline(2, -1, 1e6),
                 std::runtime_error);
}

// ---------------------------------------------------------------
// Degraded-capacity cost views
// ---------------------------------------------------------------

TEST_F(FaultTest, DegradedViewMasksAndScales)
{
    Workload wl = miniRealtime();
    Accelerator acc = miniHda();
    sched::LayerCostTable table = sched::LayerCostTable::build(
        model, wl, acc, sched::Metric::Edp, accel::RdaOverheads{});

    // The identity view equals the pristine table.
    sched::LayerCostTable::DegradedView view(table);
    for (std::size_t row = 0; row < table.numUniqueLayers(); ++row)
        EXPECT_DOUBLE_EQ(view.minCycles(row), table.minCycles(row));
    EXPECT_DOUBLE_EQ(view.remainingCycles(0, 0),
                     table.remainingCycles(0, 0));

    // Masking a column can only raise the per-row minimum, and the
    // degraded minimum must equal the surviving column's cycles.
    view.rebuild({1, 0});
    for (std::size_t row = 0; row < table.numUniqueLayers(); ++row) {
        EXPECT_GE(view.minCycles(row), table.minCycles(row));
        EXPECT_DOUBLE_EQ(view.minCycles(row),
                         table.cost(row, 1).cost.cycles);
    }
    EXPECT_GE(view.remainingCycles(0, 0),
              table.remainingCycles(0, 0));

    // All columns dead: no continuation exists.
    view.rebuild({1, 1});
    EXPECT_EQ(view.minCycles(0), kNeverCycle);
    EXPECT_EQ(view.remainingCycles(0, 0), kNeverCycle);
    // The empty suffix is still 0 by convention.
    EXPECT_DOUBLE_EQ(
        view.remainingCycles(0, wl.specs()[0].model.numLayers()),
        0.0);

    // Throttle scaling multiplies the surviving columns.
    view.rebuild({0, 1}, {3.0, 1.0});
    for (std::size_t row = 0; row < table.numUniqueLayers(); ++row)
        EXPECT_DOUBLE_EQ(view.minCycles(row),
                         3.0 * table.cost(row, 0).cost.cycles);
}

// ---------------------------------------------------------------
// Degraded-mode scheduling
// ---------------------------------------------------------------

TEST_F(FaultTest, EmptyTimelineIsBitIdenticalAcrossGrid)
{
    Workload wl = miniRealtime();
    Accelerator acc = miniHda();
    for (const GridConfig &g : kGrid) {
        SchedulerOptions base;
        base.policy = g.policy;
        base.dropPolicy = g.drop;
        base.preemption = g.preemption;
        Schedule reference =
            HeraldScheduler(model, base).schedule(wl, acc);

        SchedulerOptions with_empty = base;
        with_empty.faults = FaultTimeline(acc.numSubAccs());
        Schedule faulted =
            HeraldScheduler(model, with_empty).schedule(wl, acc);
        EXPECT_TRUE(faulted.identicalTo(reference));
    }
}

TEST_F(FaultTest, TimelineArityMustMatchAccelerator)
{
    Workload wl = miniRealtime();
    Accelerator acc = miniHda(); // 2 sub-accelerators
    SchedulerOptions opts;
    opts.faults = FaultTimeline(3);
    opts.faults.addOutage(0, 0.0, 1.0);
    HeraldScheduler s(model, opts);
    EXPECT_THROW(s.schedule(wl, acc), std::runtime_error);
}

TEST_F(FaultTest, LayersNeverStartInsideAnOutage)
{
    Workload wl = miniRealtime();
    Accelerator acc = miniHda();
    const double horizon = faultFreeMakespan(wl, acc);

    FaultTimeline tl(2);
    tl.addOutage(0, 0.2 * horizon, 0.2 * horizon);
    tl.addOutage(1, 0.5 * horizon, 0.1 * horizon);

    SchedulerOptions opts;
    opts.faults = tl;
    Schedule s = HeraldScheduler(model, opts).schedule(wl, acc);
    EXPECT_EQ(s.validate(wl, acc, &tl), "");
    for (const sched::ScheduledLayer &e : s.entries()) {
        EXPECT_TRUE(tl.availableAt(e.accIdx, e.startCycle));
        if (!e.faultKilled) {
            EXPECT_TRUE(tl.windowAvailable(e.accIdx, e.startCycle,
                                           e.duration()));
        }
    }
}

TEST_F(FaultTest, InFlightLayersAreKilledAndRescheduled)
{
    Workload wl = workload::faultedFactory(6);
    Accelerator acc = miniHda();
    const double horizon = faultFreeMakespan(wl, acc);
    FaultTimeline tl =
        sched::factoryFaultTimeline(acc.numSubAccs(), 1, horizon);

    SchedulerOptions opts;
    opts.faults = tl;
    Schedule s = HeraldScheduler(model, opts).schedule(wl, acc);
    EXPECT_EQ(s.validate(wl, acc, &tl), "");

    SlaStats sla = s.computeSla(wl);
    EXPECT_GE(sla.faultKilledLayers, 1u);
    EXPECT_GE(sla.framesRescheduled, 1u);

    std::size_t killed = 0;
    for (std::size_t i = 0; i < s.entries().size(); ++i) {
        const sched::ScheduledLayer &e = s.entries()[i];
        if (!e.faultKilled)
            continue;
        ++killed;
        // A killed layer ends exactly at a fault onset and a later
        // entry re-executes the same (instance, layer) — unless the
        // frame was dropped after the kill.
        EXPECT_TRUE(tl.isFaultOnset(e.accIdx, e.endCycle));
        bool reexecuted = false;
        for (std::size_t j = i + 1; j < s.entries().size(); ++j) {
            const sched::ScheduledLayer &r = s.entries()[j];
            if (r.instanceIdx == e.instanceIdx &&
                r.layerIdx == e.layerIdx && !r.faultKilled) {
                reexecuted = true;
                EXPECT_GE(r.startCycle, e.endCycle);
                EXPECT_NE(r.accIdx, e.accIdx);
            }
        }
        EXPECT_TRUE(reexecuted || s.isDropped(e.instanceIdx));
    }
    EXPECT_EQ(killed, sla.faultKilledLayers);
}

TEST_F(FaultTest, DeadAtZeroSubAcceleratorIsNeverUsed)
{
    Workload wl = miniRealtime();
    Accelerator acc = miniHda();
    FaultTimeline tl(2);
    tl.addPermanentFailure(0, 0.0);

    SchedulerOptions opts;
    opts.faults = tl;
    Schedule s = HeraldScheduler(model, opts).schedule(wl, acc);
    EXPECT_EQ(s.validate(wl, acc, &tl), "");
    ASSERT_FALSE(s.entries().empty());
    for (const sched::ScheduledLayer &e : s.entries())
        EXPECT_EQ(e.accIdx, 1u);

    // Every frame still completes: capacity halved, nothing lost.
    SlaStats sla = s.computeSla(wl);
    EXPECT_EQ(sla.droppedFrames, 0u);
    for (const sched::InstanceSla &inst : sla.perInstance)
        EXPECT_TRUE(inst.scheduled);
}

TEST_F(FaultTest, AllCapacityLostDegradesGracefully)
{
    Workload wl = miniRealtime();
    Accelerator acc = miniHda();
    FaultTimeline tl(2);
    tl.addPermanentFailure(0, 0.0);
    tl.addPermanentFailure(1, 0.0);

    // Under ANY drop policy — including None — losing every
    // sub-accelerator must terminate with all frames shed, not hang
    // or crash.
    for (const GridConfig &g : kGrid) {
        SchedulerOptions opts;
        opts.policy = g.policy;
        opts.dropPolicy = g.drop;
        opts.preemption = g.preemption;
        opts.faults = tl;
        Schedule s = HeraldScheduler(model, opts).schedule(wl, acc);
        EXPECT_EQ(s.validate(wl, acc, &tl), "");
        EXPECT_TRUE(s.entries().empty());
        EXPECT_EQ(s.droppedInstances().size(), wl.numInstances());

        SlaStats sla = s.computeSla(wl);
        EXPECT_EQ(sla.deadlineMisses, sla.framesWithDeadline);
        EXPECT_TRUE(std::isinf(sla.p99LatencyCycles));
    }
}

TEST_F(FaultTest, FaultAwareStrictlyBeatsFaultOblivious)
{
    Workload wl = workload::faultedFactory(6);
    Accelerator acc = miniHda();
    const double horizon = faultFreeMakespan(wl, acc);

    for (sched::Policy policy :
         {sched::Policy::Fifo, sched::Policy::Lst}) {
        std::size_t prev_misses = 0;
        for (int failed = 0; failed <= 2; ++failed) {
            FaultTimeline tl = sched::factoryFaultTimeline(
                acc.numSubAccs(), failed, horizon);

            SchedulerOptions opts;
            opts.policy = policy;
            opts.faults = tl;
            Schedule aware =
                HeraldScheduler(model, opts).schedule(wl, acc);
            EXPECT_EQ(aware.validate(wl, acc, &tl), "");
            SlaStats sla = aware.computeSla(wl);

            opts.faults = FaultTimeline{};
            Schedule blind =
                HeraldScheduler(model, opts).schedule(wl, acc);
            SlaStats oblivious =
                sched::faultObliviousSla(blind, wl, tl);

            // Graceful degradation is monotone in lost capacity and
            // strictly better than shipping the blind schedule.
            EXPECT_GE(sla.deadlineMisses, prev_misses);
            if (failed > 0) {
                EXPECT_LT(sla.deadlineMisses,
                          oblivious.deadlineMisses);
            }
            EXPECT_EQ(oblivious.framesRescheduled, 0u);
            prev_misses = sla.deadlineMisses;
        }
    }
}

TEST_F(FaultTest, ThrottleWindowsStretchExecutions)
{
    Workload wl = miniRealtime();
    Accelerator acc = miniHda();
    const double horizon = faultFreeMakespan(wl, acc);

    FaultTimeline tl(2);
    tl.addThrottle(0, 0.0, 2.0 * horizon, 3.0);
    tl.addThrottle(1, 0.0, 2.0 * horizon, 3.0);

    SchedulerOptions opts;
    opts.faults = tl;
    Schedule s = HeraldScheduler(model, opts).schedule(wl, acc);
    EXPECT_EQ(s.validate(wl, acc, &tl), "");

    // Every layer starts inside the throttle window, so every entry
    // runs exactly 3x its pristine cost. (The makespan grows much
    // less: the workload is arrival-dominated, and throttling does
    // not stretch the idle gaps between arrivals.)
    sched::LayerCostTable table = sched::LayerCostTable::build(
        model, wl, acc, sched::Metric::Edp, accel::RdaOverheads{});
    ASSERT_FALSE(s.entries().empty());
    for (const sched::ScheduledLayer &e : s.entries()) {
        const std::size_t uid =
            wl.instances()[e.instanceIdx].specIdx;
        const std::size_t row = table.rowOf(uid, e.layerIdx);
        EXPECT_DOUBLE_EQ(e.duration(),
                         table.cost(row, e.accIdx).cost.cycles *
                             3.0);
    }
    EXPECT_GT(s.makespanCycles(), horizon);
}

// ---------------------------------------------------------------
// Validation and rendering
// ---------------------------------------------------------------

TEST_F(FaultTest, ValidateCatchesFaultViolations)
{
    Workload wl = miniRealtime();
    Accelerator acc = miniHda();
    Schedule s = HeraldScheduler(model, SchedulerOptions{})
                     .schedule(wl, acc);
    ASSERT_EQ(s.validate(wl, acc), "");

    // The fault-free schedule cannot be valid against a timeline
    // that blacks out a window it uses.
    const sched::ScheduledLayer &first = s.entries().front();
    FaultTimeline tl(2);
    tl.addOutage(first.accIdx, first.startCycle,
                 std::max(first.duration(), 1.0));
    EXPECT_NE(s.validate(wl, acc, &tl), "");

    // A fault-killed entry without a timeline is itself a violation.
    Schedule copy = s;
    copy.mutableEntries().front().faultKilled = true;
    EXPECT_NE(copy.validate(wl, acc), "");
}

TEST_F(FaultTest, RenderTimelineShowsOutagesAndEmptySchedules)
{
    Workload wl = miniRealtime();
    Accelerator acc = miniHda();
    const double horizon = faultFreeMakespan(wl, acc);

    FaultTimeline tl(2);
    tl.addOutage(0, 0.25 * horizon, 0.5 * horizon);
    SchedulerOptions opts;
    opts.faults = tl;
    Schedule s = HeraldScheduler(model, opts).schedule(wl, acc);
    std::string art = s.renderTimeline(wl, &tl, 60);
    EXPECT_NE(art.find('x'), std::string::npos);

    // An empty (all-dropped) schedule renders a note, not a
    // divide-by-zero.
    Schedule empty(2);
    empty.markDropped(0);
    std::string note = empty.renderTimeline(wl, 60);
    EXPECT_FALSE(note.empty());
    EXPECT_NE(note.find("empty"), std::string::npos);
}

// ---------------------------------------------------------------
// Chaos sweep
// ---------------------------------------------------------------

TEST_F(FaultTest, ChaosSweepIsValidConsistentAndDeterministic)
{
    Workload wl = miniRealtime();
    Accelerator acc = miniHda();
    const double horizon = faultFreeMakespan(wl, acc);

    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        FaultTimeline tl = FaultTimeline::random(
            seed, acc.numSubAccs(), 1.2 * horizon);
        for (const GridConfig &g : kGrid) {
            SchedulerOptions opts;
            opts.policy = g.policy;
            opts.dropPolicy = g.drop;
            opts.preemption = g.preemption;
            opts.faults = tl;
            opts.prefillThreads = 1;
            Schedule s =
                HeraldScheduler(model, opts).schedule(wl, acc);

            // Every random timeline must yield a valid schedule.
            EXPECT_EQ(s.validate(wl, acc, &tl), "")
                << "seed " << seed;

            // SLA self-consistency.
            SlaStats sla = s.computeSla(wl);
            EXPECT_EQ(sla.frames, wl.numInstances());
            EXPECT_EQ(sla.perInstance.size(), wl.numInstances());
            EXPECT_LE(sla.droppedFrames, sla.deadlineMisses);
            EXPECT_LE(sla.deadlineMisses, sla.framesWithDeadline);
            if (sla.framesWithDeadline > 0) {
                EXPECT_DOUBLE_EQ(
                    sla.missRate,
                    static_cast<double>(sla.deadlineMisses) /
                        static_cast<double>(sla.framesWithDeadline));
            }
            std::size_t killed = 0, dropped = 0;
            for (const sched::ScheduledLayer &e : s.entries())
                killed += e.faultKilled ? 1 : 0;
            for (const sched::InstanceSla &inst : sla.perInstance)
                dropped += inst.dropped ? 1 : 0;
            EXPECT_EQ(killed, sla.faultKilledLayers);
            EXPECT_EQ(dropped, sla.droppedFrames);

            // Bit-identical across reruns and prefill thread
            // counts.
            opts.prefillThreads = 4;
            Schedule rerun =
                HeraldScheduler(model, opts).schedule(wl, acc);
            EXPECT_TRUE(rerun.identicalTo(s)) << "seed " << seed;
        }
    }
}

// ---------------------------------------------------------------
// faultObliviousSla boundary semantics
// ---------------------------------------------------------------

TEST_F(FaultTest, ObliviousSlaFrameFinishingExactlyAtOutageStart)
{
    // One single-layer frame per instance, hand-placed entries.
    dnn::Model m("One");
    m.addLayer(dnn::makeFullyConnected("f", 16, 16));
    Workload wl("boundary");
    wl.addModel(m, 1, 0.0, 100.0);   // deadline at cycle 100
    wl.addModel(m, 1, 0.0, 200.0);   // deadline at cycle 200

    FaultTimeline tl(1);
    tl.addOutage(0, 100.0, 50.0); // [100, 150)

    Schedule s(1);
    sched::ScheduledLayer a;
    a.instanceIdx = 0;
    a.endCycle = 100.0; // ends exactly at the window start
    s.add(a);
    sched::ScheduledLayer b;
    b.instanceIdx = 1;
    b.startCycle = 100.0;
    b.endCycle = 101.0; // starts exactly at the window start
    s.add(b);

    const SlaStats sla = sched::faultObliviousSla(s, wl, tl);
    // Abutting the window from the left is not an overlap: the
    // frame completes on time and is not killed.
    EXPECT_EQ(sla.faultKilledLayers, 1u);
    EXPECT_FALSE(sla.perInstance[0].missed);
    EXPECT_TRUE(sla.perInstance[0].scheduled);
    // Starting *inside* the window kills the frame outright.
    EXPECT_FALSE(sla.perInstance[1].scheduled);
    EXPECT_TRUE(sla.perInstance[1].missed);
    EXPECT_EQ(sla.deadlineMisses, 1u);
}

TEST_F(FaultTest, ObliviousSlaThrottleAbuttingOutageBoundary)
{
    dnn::Model m("One");
    m.addLayer(dnn::makeFullyConnected("f", 16, 16));
    Workload wl("abut");
    wl.addModel(m, 1, 0.0, 160.0); // loose: survives the stretch
    wl.addModel(m, 1, 0.0, 140.0); // tight: the stretch misses it

    // Throttle [50, 100) x2 abutting an outage [100, 200): the
    // boundary cycle belongs to the outage, not the throttle.
    FaultTimeline tl(1);
    tl.addThrottle(0, 50.0, 100.0, 2.0);
    tl.addOutage(0, 100.0, 100.0);

    Schedule s(1);
    for (std::size_t inst : {std::size_t{0}, std::size_t{1}}) {
        sched::ScheduledLayer e;
        e.instanceIdx = inst;
        e.endCycle = 100.0;
        s.add(e);
    }

    const SlaStats sla = sched::faultObliviousSla(s, wl, tl);
    // Neither layer touches the outage (it begins exactly at their
    // end), so neither is killed; both pay the 50-cycle throttle
    // stretch (overlap 50 x (factor - 1)) and complete at 150.
    EXPECT_EQ(sla.faultKilledLayers, 0u);
    EXPECT_DOUBLE_EQ(sla.perInstance[0].completionCycle, 150.0);
    EXPECT_DOUBLE_EQ(sla.perInstance[1].completionCycle, 150.0);
    EXPECT_FALSE(sla.perInstance[0].missed);
    EXPECT_TRUE(sla.perInstance[1].missed);
    EXPECT_EQ(sla.deadlineMisses, 1u);
}

TEST_F(FaultTest, ObliviousSlaThrottleStartingExactlyAtLayerEnd)
{
    dnn::Model m("One");
    m.addLayer(dnn::makeFullyConnected("f", 16, 16));
    Workload wl("edge");
    wl.addModel(m, 1, 0.0, 100.0);

    // Throttle starting exactly where the layer ends: zero overlap,
    // zero stretch — the frame completes exactly at its deadline.
    FaultTimeline tl(1);
    tl.addThrottle(0, 100.0, 300.0, 4.0);

    Schedule s(1);
    sched::ScheduledLayer e;
    e.instanceIdx = 0;
    e.endCycle = 100.0;
    s.add(e);

    const SlaStats sla = sched::faultObliviousSla(s, wl, tl);
    EXPECT_DOUBLE_EQ(sla.perInstance[0].completionCycle, 100.0);
    EXPECT_FALSE(sla.perInstance[0].missed);
    EXPECT_EQ(sla.deadlineMisses, 0u);
}

} // namespace
