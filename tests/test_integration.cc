/**
 * @file
 * End-to-end integration tests reproducing the paper's qualitative
 * claims on reduced workloads (kept small so ctest stays fast):
 *
 *  - Fig. 2: NVDLA-style wins ResNet-like models, Shi-diannao/Eyeriss
 *    win UNet-like models at 256 PEs / 32 GB/s.
 *  - Fig. 11: a well-partitioned HDA beats the best FDA on EDP for a
 *    heterogeneous multi-DNN workload.
 *  - RDA-vs-HDA: the RDA is faster, the HDA is more energy-efficient.
 *  - SM-FDA: homogeneous scale-out does not reach HDA EDP.
 */

#include <gtest/gtest.h>

#include "accel/accelerator.hh"
#include "dnn/model_zoo.hh"
#include "dse/herald_dse.hh"
#include "sched/herald_scheduler.hh"
#include "util/logging.hh"
#include "workload/workload.hh"

namespace
{

using namespace herald;
using accel::Accelerator;
using dataflow::DataflowStyle;
using sched::HeraldScheduler;
using workload::Workload;

class IntegrationTest : public ::testing::Test
{
  protected:
    void SetUp() override { util::setVerbose(false); }

    /** Fig. 2 accelerator: 256 PEs, 32 GB/s, 2 MiB buffer. */
    accel::AcceleratorClass
    fig2Class()
    {
        return accel::AcceleratorClass{"fig2", 256, 32.0, 2ULL << 20};
    }

    /**
     * Reduced AR/VR-B-flavored workload: a segmentation network, a
     * depthwise-heavy detector, and FC-heavy pose/depth models — the
     * mix of compute-bound and DRAM-bound models whose layer
     * parallelism and dataflow diversity HDAs exploit.
     */
    Workload
    reducedHetero()
    {
        Workload wl("reduced-arvrb");
        wl.addModel(dnn::uNet(), 1);
        wl.addModel(dnn::mobileNetV2(), 2);
        wl.addModel(dnn::brqHandposeNet(), 2);
        wl.addModel(dnn::focalLengthDepthNet(), 1);
        return wl;
    }

    sched::ScheduleSummary
    run(const Workload &wl, const Accelerator &acc)
    {
        HeraldScheduler scheduler(model);
        sched::Schedule s = scheduler.schedule(wl, acc);
        EXPECT_EQ(s.validate(wl, acc), "");
        return s.finalize(acc, model.energyModel());
    }

    cost::CostModel model;
};

TEST_F(IntegrationTest, Fig2ResnetPrefersNvdla)
{
    Workload wl("resnet");
    wl.addModel(dnn::resnet50(), 1);
    double nvdla =
        run(wl, Accelerator::makeFda(fig2Class(), DataflowStyle::NVDLA))
            .edp();
    double shi = run(wl, Accelerator::makeFda(
                             fig2Class(), DataflowStyle::ShiDiannao))
                     .edp();
    EXPECT_LT(nvdla, shi);
}

TEST_F(IntegrationTest, Fig2UnetPrefersActivationParallel)
{
    Workload wl("unet");
    wl.addModel(dnn::uNet(), 1);
    double nvdla =
        run(wl, Accelerator::makeFda(fig2Class(), DataflowStyle::NVDLA))
            .edp();
    double shi = run(wl, Accelerator::makeFda(
                             fig2Class(), DataflowStyle::ShiDiannao))
                     .edp();
    EXPECT_LT(shi, nvdla);
}

TEST_F(IntegrationTest, HdaBeatsBestFdaOnHeteroWorkload)
{
    Workload wl = reducedHetero();
    accel::AcceleratorClass chip = accel::edgeClass();

    double best_fda = 1e300;
    for (DataflowStyle style : dataflow::kAllStyles) {
        best_fda = std::min(
            best_fda, run(wl, Accelerator::makeFda(chip, style)).edp());
    }

    dse::HeraldOptions opts;
    opts.partition.peGranularity = chip.numPes / 8;
    opts.partition.bwGranularity = chip.bwGBps / 4;
    dse::Herald herald(model, opts);
    dse::DseResult result = herald.explore(
        wl, chip, {DataflowStyle::NVDLA, DataflowStyle::ShiDiannao});

    EXPECT_LT(result.best().summary.edp(), best_fda);
}

TEST_F(IntegrationTest, RdaFasterButHungrierThanHda)
{
    Workload wl = reducedHetero();
    accel::AcceleratorClass chip = accel::edgeClass();

    dse::HeraldOptions opts;
    opts.partition.peGranularity = chip.numPes / 8;
    opts.partition.bwGranularity = chip.bwGBps / 4;
    dse::Herald herald(model, opts);
    dse::DseResult hda = herald.explore(
        wl, chip, {DataflowStyle::NVDLA, DataflowStyle::ShiDiannao});

    auto rda = run(wl, Accelerator::makeRda(chip));
    const auto &best_hda = hda.best().summary;

    EXPECT_LT(rda.latencySec, best_hda.latencySec);
    EXPECT_LT(best_hda.energyMj, rda.energyMj);
}

TEST_F(IntegrationTest, SmFdaDoesNotReachHdaEdp)
{
    Workload wl = reducedHetero();
    accel::AcceleratorClass chip = accel::edgeClass();

    double best_smfda = 1e300;
    for (DataflowStyle style : dataflow::kAllStyles) {
        best_smfda = std::min(
            best_smfda,
            run(wl, Accelerator::makeScaledOutFda(chip, style, 2))
                .edp());
    }

    dse::HeraldOptions opts;
    opts.partition.peGranularity = chip.numPes / 8;
    opts.partition.bwGranularity = chip.bwGBps / 4;
    dse::Herald herald(model, opts);
    dse::DseResult hda = herald.explore(
        wl, chip, {DataflowStyle::NVDLA, DataflowStyle::ShiDiannao});

    EXPECT_LT(hda.best().summary.edp(), best_smfda);
}

TEST_F(IntegrationTest, CostCacheMakesRepeatSchedulingCheap)
{
    Workload wl = reducedHetero();
    Accelerator acc = Accelerator::makeHda(
        accel::mobileClass(),
        {DataflowStyle::NVDLA, DataflowStyle::ShiDiannao},
        {2048, 2048}, {32.0, 32.0});
    HeraldScheduler scheduler(model);
    scheduler.schedule(wl, acc);
    std::size_t after_first = model.cacheSize();
    scheduler.schedule(wl, acc);
    EXPECT_EQ(model.cacheSize(), after_first);
}

} // namespace
