/**
 * @file
 * Unit tests for herald_lint — each rule fires on a known-bad snippet,
 * stays quiet on the approved counterpart, path scoping limits rules
 * to their trees, and allow(<rule>) suppresses exactly its rule. The
 * committed fixtures under tools/lint/fixtures/ are linted from disk
 * when HERALD_LINT_SOURCE_DIR points at the repo (ctest sets it).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "lint_core.hh"

namespace
{

using herald::lint::Diagnostic;
using herald::lint::Options;
using herald::lint::lintBuffer;
using herald::lint::lintPaths;

/** Rule names present in a diagnostic list. */
std::set<std::string>
rulesIn(const std::vector<Diagnostic> &diags)
{
    std::set<std::string> rules;
    for (const Diagnostic &d : diags)
        rules.insert(d.rule);
    return rules;
}

int
countRule(const std::vector<Diagnostic> &diags, const std::string &rule)
{
    return static_cast<int>(
        std::count_if(diags.begin(), diags.end(),
                      [&](const Diagnostic &d) { return d.rule == rule; }));
}

// ---------------------------------------------------------------------------
// Rule registry
// ---------------------------------------------------------------------------

TEST(LintRules, RegistryListsEveryShippedRule)
{
    std::set<std::string> names;
    for (const herald::lint::RuleInfo &r : herald::lint::ruleList())
        names.insert(r.name);
    EXPECT_TRUE(names.count("no-unordered-iteration"));
    EXPECT_TRUE(names.count("no-wallclock-rand"));
    EXPECT_TRUE(names.count("no-bare-lock"));
    EXPECT_TRUE(names.count("no-stdout-in-lib"));
    EXPECT_TRUE(names.count("header-hygiene"));
    EXPECT_TRUE(names.count("bad-suppression"));
    EXPECT_TRUE(herald::lint::knownRule("no-bare-lock"));
    EXPECT_FALSE(herald::lint::knownRule("no-bear-lock"));
}

// ---------------------------------------------------------------------------
// no-unordered-iteration
// ---------------------------------------------------------------------------

TEST(LintUnorderedIteration, RangeForOverUnorderedMapFires)
{
    const std::string src = R"(
        #include <unordered_map>
        int f() {
            std::unordered_map<int, int> m;
            int s = 0;
            for (const auto &kv : m)
                s += kv.second;
            return s;
        }
    )";
    auto diags = lintBuffer("src/sched/foo.cc", src);
    EXPECT_EQ(countRule(diags, "no-unordered-iteration"), 1);
}

TEST(LintUnorderedIteration, IteratorLoopFires)
{
    const std::string src = R"(
        #include <unordered_set>
        int f() {
            std::unordered_set<int> seen;
            int s = 0;
            for (auto it = seen.begin(); it != seen.end(); ++it)
                s += *it;
            return s;
        }
    )";
    auto diags = lintBuffer("src/dse/foo.cc", src);
    EXPECT_EQ(countRule(diags, "no-unordered-iteration"), 1);
}

TEST(LintUnorderedIteration, SortedMaterializationIsClean)
{
    const std::string src = R"(
        #include <algorithm>
        #include <unordered_map>
        #include <vector>
        int f() {
            std::unordered_map<int, int> m;
            std::vector<std::pair<int, int>> rows(m.begin(), m.end());
            std::sort(rows.begin(), rows.end());
            int s = 0;
            for (const auto &kv : rows)
                s += kv.second;
            return s;
        }
    )";
    auto diags = lintBuffer("src/sched/foo.cc", src);
    EXPECT_EQ(countRule(diags, "no-unordered-iteration"), 0);
}

TEST(LintUnorderedIteration, LookupsAreClean)
{
    const std::string src = R"(
        #include <unordered_map>
        int f() {
            std::unordered_map<int, int> m;
            m[3] = 4;
            return m.count(3) ? m.at(3) : 0;
        }
    )";
    auto diags = lintBuffer("src/sched/foo.cc", src);
    EXPECT_EQ(countRule(diags, "no-unordered-iteration"), 0);
}

TEST(LintUnorderedIteration, ScopedToResultAffectingTrees)
{
    const std::string src = R"(
        #include <unordered_map>
        int f() {
            std::unordered_map<int, int> m;
            int s = 0;
            for (const auto &kv : m)
                s += kv.second;
            return s;
        }
    )";
    EXPECT_EQ(countRule(lintBuffer("src/util/foo.cc", src),
                        "no-unordered-iteration"), 0);
    EXPECT_EQ(countRule(lintBuffer("tests/test_foo.cc", src),
                        "no-unordered-iteration"), 0);

    Options everywhere;
    everywhere.allPaths = true;
    EXPECT_EQ(countRule(lintBuffer("tests/test_foo.cc", src, everywhere),
                        "no-unordered-iteration"), 1);
}

// ---------------------------------------------------------------------------
// no-wallclock-rand
// ---------------------------------------------------------------------------

TEST(LintWallclockRand, EachBannedSourceFires)
{
    const std::string src = R"(
        #include <chrono>
        #include <cstdlib>
        #include <ctime>
        #include <random>
        unsigned long f() {
            unsigned long x = rand();
            std::random_device rd;
            x += rd();
            x += std::chrono::steady_clock::now()
                     .time_since_epoch().count();
            x += time(nullptr);
            return x;
        }
    )";
    auto diags = lintBuffer("src/util/foo.cc", src);
    EXPECT_EQ(countRule(diags, "no-wallclock-rand"), 4);
}

TEST(LintWallclockRand, LookalikeIdentifiersAreClean)
{
    const std::string src = R"(
        int my_rand() { return 4; }
        int arrivalTime(int frame) { return frame * 2; }
        int f(int frame) {
            // time with a real argument is somebody's own function,
            // and member .rand() is not libc's.
            return my_rand() + arrivalTime(frame);
        }
    )";
    auto diags = lintBuffer("src/util/foo.cc", src);
    EXPECT_EQ(countRule(diags, "no-wallclock-rand"), 0);
}

TEST(LintWallclockRand, OnlyAppliesToLibrarySources)
{
    const std::string src = R"(
        #include <chrono>
        double now() {
            return std::chrono::steady_clock::now()
                       .time_since_epoch().count();
        }
    )";
    EXPECT_EQ(countRule(lintBuffer("src/cost/foo.cc", src),
                        "no-wallclock-rand"), 1);
    // Benches time themselves with the wall clock; that is the point.
    EXPECT_EQ(countRule(lintBuffer("bench/bench_foo.cc", src),
                        "no-wallclock-rand"), 0);
}

// ---------------------------------------------------------------------------
// no-bare-lock
// ---------------------------------------------------------------------------

TEST(LintBareLock, RawLockUnlockFireEverywhere)
{
    const std::string src = R"(
        #include <mutex>
        std::mutex m;
        void f() {
            m.lock();
            m.unlock();
        }
    )";
    // No path scoping: tests and benches deadlock just as hard.
    auto diags = lintBuffer("tests/test_foo.cc", src);
    EXPECT_EQ(countRule(diags, "no-bare-lock"), 2);
}

TEST(LintBareLock, RaiiGuardsAreClean)
{
    const std::string src = R"(
        #include <mutex>
        std::mutex m;
        int f() {
            std::lock_guard<std::mutex> hold(m);
            if (m.try_lock())
                return 1;
            return 0;
        }
    )";
    auto diags = lintBuffer("src/util/foo.cc", src);
    EXPECT_EQ(countRule(diags, "no-bare-lock"), 0);
}

// ---------------------------------------------------------------------------
// no-stdout-in-lib
// ---------------------------------------------------------------------------

TEST(LintStdout, CoutAndPrintfFireInLibrary)
{
    const std::string src = R"(
        #include <cstdio>
        #include <iostream>
        void f(int n) {
            std::cout << n << "\n";
            printf("%d\n", n);
            fprintf(stdout, "%d\n", n);
        }
    )";
    auto diags = lintBuffer("src/sched/foo.cc", src);
    EXPECT_EQ(countRule(diags, "no-stdout-in-lib"), 3);
}

TEST(LintStdout, StderrAndNonLibraryAreClean)
{
    const std::string lib = R"(
        #include <cstdio>
        void f(int n) { std::fprintf(stderr, "warn: %d\n", n); }
    )";
    EXPECT_EQ(countRule(lintBuffer("src/util/foo.cc", lib),
                        "no-stdout-in-lib"), 0);

    const std::string bench = R"(
        #include <iostream>
        void report(int n) { std::cout << n << "\n"; }
    )";
    EXPECT_EQ(countRule(lintBuffer("bench/bench_foo.cc", bench),
                        "no-stdout-in-lib"), 0);
}

// ---------------------------------------------------------------------------
// header-hygiene
// ---------------------------------------------------------------------------

TEST(LintHeader, MissingPragmaOnceFires)
{
    const std::string hdr = R"(
        namespace x
        {
        int f();
        } // namespace x
    )";
    auto diags = lintBuffer("src/util/foo.hh", hdr);
    EXPECT_EQ(countRule(diags, "header-hygiene"), 1);
    ASSERT_FALSE(diags.empty());
    EXPECT_EQ(diags[0].line, 1u);
}

TEST(LintHeader, UsingNamespaceAtHeaderScopeFires)
{
    const std::string hdr = "#pragma once\n"
                            "#include <string>\n"
                            "using namespace std;\n"
                            "namespace x { string f(); }\n";
    auto diags = lintBuffer("src/util/foo.hh", hdr);
    EXPECT_EQ(countRule(diags, "header-hygiene"), 1);
}

TEST(LintHeader, MutableGlobalFires)
{
    const std::string hdr = "#pragma once\n"
                            "namespace x\n"
                            "{\n"
                            "int counter = 0;\n"
                            "}\n";
    auto diags = lintBuffer("src/util/foo.hh", hdr);
    ASSERT_EQ(countRule(diags, "header-hygiene"), 1);
    EXPECT_EQ(diags[0].line, 4u);
}

TEST(LintHeader, HygienicHeaderIsClean)
{
    const std::string hdr = R"(#pragma once
        #include <string>
        namespace x
        {
        constexpr int kLimit = 8;
        extern int owned_elsewhere;
        std::string f();
        inline int
        twice(int v)
        {
            using namespace std::string_literals;
            return v * 2;
        }
        } // namespace x
    )";
    auto diags = lintBuffer("src/util/foo.hh", hdr);
    EXPECT_EQ(countRule(diags, "header-hygiene"), 0);
}

TEST(LintHeader, SourceFilesAreExempt)
{
    // A .cc may keep mutable file-scope state and needs no pragma.
    const std::string src = "namespace { int counter = 0; }\n"
                            "int bump() { return ++counter; }\n";
    auto diags = lintBuffer("src/util/foo.cc", src);
    EXPECT_EQ(countRule(diags, "header-hygiene"), 0);
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

TEST(LintSuppression, JustifiedAllowSilencesItsRuleOnly)
{
    const std::string src = R"(
        #include <mutex>
        #include <unordered_map>
        std::mutex m;
        int f() {
            std::unordered_map<int, int> u;
            int s = 0;
            // herald-lint: allow(no-unordered-iteration): sum is
            for (const auto &kv : u)
                s += kv.second;
            m.lock(); // the allow above must not cover this rule
            m.unlock();
            return s;
        }
    )";
    Options everywhere;
    everywhere.allPaths = true;
    auto diags = lintBuffer("src/sched/foo.cc", src, everywhere);
    EXPECT_EQ(countRule(diags, "no-unordered-iteration"), 0);
    EXPECT_EQ(countRule(diags, "no-bare-lock"), 2);
    EXPECT_EQ(countRule(diags, "bad-suppression"), 0);
}

TEST(LintSuppression, TrailingAllowOnTheSameLineWorks)
{
    const std::string src =
        "#include <mutex>\n"
        "std::mutex m;\n"
        "void f() {\n"
        "    m.lock(); // herald-lint: allow(no-bare-lock): FFI handoff\n"
        "    m.unlock(); // herald-lint: allow(no-bare-lock): FFI handoff\n"
        "}\n";
    auto diags = lintBuffer("src/util/foo.cc", src);
    EXPECT_EQ(countRule(diags, "no-bare-lock"), 0);
}

TEST(LintSuppression, AllowDoesNotReachTwoLinesDown)
{
    const std::string src =
        "#include <mutex>\n"
        "std::mutex m;\n"
        "void f() {\n"
        "    // herald-lint: allow(no-bare-lock): covers next line only\n"
        "    m.lock();\n"
        "    m.unlock();\n"
        "}\n";
    auto diags = lintBuffer("src/util/foo.cc", src);
    EXPECT_EQ(countRule(diags, "no-bare-lock"), 1);
}

TEST(LintSuppression, UnknownRuleIsReportedAndDoesNotSuppress)
{
    const std::string src =
        "#include <mutex>\n"
        "std::mutex m;\n"
        "void f() {\n"
        "    m.lock(); // herald-lint: allow(no-bear-lock): typo\n"
        "    m.unlock();\n"
        "}\n";
    auto diags = lintBuffer("src/util/foo.cc", src);
    EXPECT_EQ(countRule(diags, "no-bare-lock"), 2);
    EXPECT_EQ(countRule(diags, "bad-suppression"), 1);
}

TEST(LintSuppression, MissingJustificationIsReported)
{
    const std::string src =
        "#include <mutex>\n"
        "std::mutex m;\n"
        "void f() {\n"
        "    m.lock(); // herald-lint: allow(no-bare-lock)\n"
        "    m.unlock(); // herald-lint: allow(no-bare-lock): reviewed\n"
        "}\n";
    auto diags = lintBuffer("src/util/foo.cc", src);
    // The bare allow() neither suppresses nor passes silently.
    EXPECT_EQ(countRule(diags, "no-bare-lock"), 1);
    EXPECT_EQ(countRule(diags, "bad-suppression"), 1);
}

// ---------------------------------------------------------------------------
// Committed fixtures (from disk)
// ---------------------------------------------------------------------------

/** Repo root from ctest's environment, or "" to skip. */
std::string
sourceDir()
{
    const char *dir = std::getenv("HERALD_LINT_SOURCE_DIR");
    return dir ? dir : "";
}

TEST(LintFixtures, EveryRuleFiresOnTheBadFixtures)
{
    const std::string root = sourceDir();
    if (root.empty())
        GTEST_SKIP() << "HERALD_LINT_SOURCE_DIR not set";
    Options everywhere;
    everywhere.allPaths = true;
    std::vector<std::string> errors;
    auto diags = lintPaths(root, {"tools/lint/fixtures/bad"}, everywhere,
                           errors);
    EXPECT_TRUE(errors.empty());
    std::set<std::string> rules = rulesIn(diags);
    for (const herald::lint::RuleInfo &r : herald::lint::ruleList())
        EXPECT_TRUE(rules.count(r.name))
            << "rule " << r.name << " has no failing fixture";
}

TEST(LintFixtures, GoodFixturesAndSourceTreeAreClean)
{
    const std::string root = sourceDir();
    if (root.empty())
        GTEST_SKIP() << "HERALD_LINT_SOURCE_DIR not set";
    Options everywhere;
    everywhere.allPaths = true;
    std::vector<std::string> errors;
    auto good = lintPaths(root, {"tools/lint/fixtures/good"}, everywhere,
                          errors);
    EXPECT_TRUE(errors.empty());
    for (const Diagnostic &d : good)
        ADD_FAILURE() << herald::lint::formatDiagnostic(d);

    // The shipped tree must lint clean under the in-tree scoping —
    // the same invocation the herald_lint_tree ctest runs.
    auto tree = lintPaths(root, {"src", "bench", "tests", "examples"},
                          Options(), errors);
    EXPECT_TRUE(errors.empty());
    for (const Diagnostic &d : tree)
        ADD_FAILURE() << herald::lint::formatDiagnostic(d);
}

TEST(LintFixtures, DiagnosticsAreDeterministic)
{
    const std::string root = sourceDir();
    if (root.empty())
        GTEST_SKIP() << "HERALD_LINT_SOURCE_DIR not set";
    Options everywhere;
    everywhere.allPaths = true;
    std::vector<std::string> errorsA, errorsB;
    auto a = lintPaths(root, {"tools/lint/fixtures"}, everywhere, errorsA);
    auto b = lintPaths(root, {"tools/lint/fixtures"}, everywhere, errorsB);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(herald::lint::formatDiagnostic(a[i]),
                  herald::lint::formatDiagnostic(b[i]));
}

} // namespace
