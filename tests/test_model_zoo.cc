/**
 * @file
 * Model-zoo sanity tests: layer counts, geometry chains (each layer's
 * input channels match its predecessor's output channels where the
 * topology is linear), MAC totals in published ballparks, and the
 * Table I channel-activation-ratio extremes.
 */

#include <gtest/gtest.h>

#include "dnn/model_zoo.hh"
#include "util/logging.hh"

namespace
{

using namespace herald::dnn;

class ModelZooTest : public ::testing::Test
{
  protected:
    void SetUp() override { herald::util::setVerbose(false); }
};

TEST_F(ModelZooTest, Resnet50LayerCount)
{
    Model m = resnet50();
    // conv1 + 16 bottlenecks x 3 + 4 projections + fc = 54.
    EXPECT_EQ(m.numLayers(), 54u);
}

TEST_F(ModelZooTest, Resnet50Macs)
{
    // Published ~4.1 GMACs at 224x224 (SAME padding raises ours
    // slightly); accept 3.5-5.5 G.
    Model m = resnet50();
    EXPECT_GT(m.totalMacs(), 3'500'000'000ull);
    EXPECT_LT(m.totalMacs(), 5'500'000'000ull);
}

TEST_F(ModelZooTest, Resnet50EndsWithClassifier)
{
    Model m = resnet50();
    const Layer &fc = m.layer(m.numLayers() - 1);
    EXPECT_EQ(fc.kind(), LayerKind::FullyConnected);
    EXPECT_EQ(fc.shape().k, 1000u);
    EXPECT_EQ(fc.shape().c, 2048u);
}

TEST_F(ModelZooTest, MobileNetV1Structure)
{
    Model m = mobileNetV1();
    // conv1 + 13 x (dw + pw) + fc = 28.
    EXPECT_EQ(m.numLayers(), 28u);
    // Published ~569 MMACs.
    EXPECT_GT(m.totalMacs(), 450'000'000ull);
    EXPECT_LT(m.totalMacs(), 750'000'000ull);
}

TEST_F(ModelZooTest, MobileNetV1AlternatesDwPw)
{
    Model m = mobileNetV1();
    for (std::size_t i = 1; i + 1 < m.numLayers(); i += 2) {
        EXPECT_EQ(m.layer(i).kind(), LayerKind::DepthwiseConv2D)
            << "layer " << i;
        EXPECT_EQ(m.layer(i + 1).kind(), LayerKind::PointwiseConv2D)
            << "layer " << i + 1;
    }
}

TEST_F(ModelZooTest, MobileNetV2Structure)
{
    Model m = mobileNetV2();
    // conv1 + blocks (2 + 16x3) + conv_last + fc = 53.
    EXPECT_EQ(m.numLayers(), 53u);
    // Published ~300 MMACs; SAME-geometry approximation ~[250, 450].
    EXPECT_GT(m.totalMacs(), 250'000'000ull);
    EXPECT_LT(m.totalMacs(), 450'000'000ull);
}

TEST_F(ModelZooTest, MobileNetV2HasDepthwiseLayers)
{
    Model m = mobileNetV2();
    std::size_t dw = 0;
    for (const Layer &l : m.layers()) {
        if (l.kind() == LayerKind::DepthwiseConv2D)
            ++dw;
    }
    EXPECT_EQ(dw, 17u); // one per inverted-residual block
}

TEST_F(ModelZooTest, UNetLayerCount)
{
    Model m = uNet();
    // 8 encoder convs + 2 bottleneck + 4 x (up + 2 convs) + 1x1 = 23.
    EXPECT_EQ(m.numLayers(), 23u);
}

TEST_F(ModelZooTest, UNetGeometryChain)
{
    Model m = uNet();
    // Classic valid-conv geometry: first conv 572 -> 570, final 1x1
    // at 388x388 with 2 output channels.
    EXPECT_EQ(m.layer(0).outY(), 570u);
    const Layer &out = m.layer(m.numLayers() - 1);
    EXPECT_EQ(out.shape().k, 2u);
    EXPECT_EQ(out.outY(), 388u);
}

TEST_F(ModelZooTest, UNetHasUpConvs)
{
    Model m = uNet();
    std::size_t up = 0;
    for (const Layer &l : m.layers()) {
        if (l.kind() == LayerKind::TransposedConv2D)
            ++up;
    }
    EXPECT_EQ(up, 4u);
}

TEST_F(ModelZooTest, UNetRatioExtremes)
{
    // Table I: min 0.002, max 34.133 (1024 channels at 30x30-ish).
    Model m = uNet();
    EXPECT_LT(m.minChannelActivationRatio(), 0.01);
    EXPECT_GT(m.maxChannelActivationRatio(), 20.0);
    EXPECT_LT(m.maxChannelActivationRatio(), 50.0);
}

TEST_F(ModelZooTest, BrqHandposeMostlyWideFcs)
{
    // Table I: median ratio 1024 -> at least half the layers are
    // 1024-wide FCs.
    Model m = brqHandposeNet();
    std::size_t wide_fc = 0;
    for (const Layer &l : m.layers()) {
        if (l.kind() == LayerKind::FullyConnected &&
            l.shape().c >= 1024) {
            ++wide_fc;
        }
    }
    EXPECT_GE(wide_fc * 2, m.numLayers());
    EXPECT_DOUBLE_EQ(m.maxChannelActivationRatio(), 16384.0);
}

TEST_F(ModelZooTest, DepthNetHasHugeFc)
{
    // Sec. V-B: DepthNet FC2 has 4096x4096 = ~16.8M-way channel
    // parallelism, the largest in the workloads.
    Model m = focalLengthDepthNet();
    bool found = false;
    for (const Layer &l : m.layers()) {
        if (l.kind() == LayerKind::FullyConnected &&
            l.shape().k == 4096 && l.shape().c == 4096) {
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST_F(ModelZooTest, DepthNetDecodesWithUpconvs)
{
    Model m = focalLengthDepthNet();
    std::size_t up = 0;
    for (const Layer &l : m.layers()) {
        if (l.kind() == LayerKind::TransposedConv2D)
            ++up;
    }
    EXPECT_EQ(up, 4u);
    // Final depth map is 112x112 single channel.
    const Layer &out = m.layer(m.numLayers() - 1);
    EXPECT_EQ(out.shape().k, 1u);
    EXPECT_EQ(out.outY(), 112u);
}

TEST_F(ModelZooTest, SsdResnet34BuildsOnBackbone)
{
    Model m = ssdResnet34();
    EXPECT_GT(m.numLayers(), 40u);
    EXPECT_LT(m.numLayers(), 70u);
    // Detection heads present: 6 feature maps x 2 convs.
    std::size_t heads = 0;
    for (const Layer &l : m.layers()) {
        if (l.name().find("head") == 0)
            ++heads;
    }
    EXPECT_EQ(heads, 12u);
}

TEST_F(ModelZooTest, SsdMobileNetHeads)
{
    Model m = ssdMobileNetV1();
    std::size_t heads = 0;
    for (const Layer &l : m.layers()) {
        if (l.name().find("head") == 0)
            ++heads;
    }
    EXPECT_EQ(heads, 12u);
}

TEST_F(ModelZooTest, GnmtIsChannelHeavy)
{
    Model m = gnmt();
    // 9 encoder + 8 decoder + attention + vocab = 19 layers.
    EXPECT_EQ(m.numLayers(), 19u);
    for (const Layer &l : m.layers()) {
        // Every GNMT layer is a GEMM: huge channel-activation ratio.
        EXPECT_GT(l.channelActivationRatio(), 50.0) << l.name();
    }
}

TEST_F(ModelZooTest, GnmtTokenScaling)
{
    // MACs scale linearly with the token count.
    Model short_seq = gnmt(10);
    Model long_seq = gnmt(20);
    EXPECT_EQ(long_seq.totalMacs(), 2 * short_seq.totalMacs());
}

TEST_F(ModelZooTest, Resnet34BackboneParametricInput)
{
    Model a = resnet34Backbone(300);
    Model b = resnet34Backbone(1200);
    EXPECT_EQ(a.numLayers(), b.numLayers());
    EXPECT_GT(b.totalMacs(), a.totalMacs() * 10);
}

TEST_F(ModelZooTest, ChannelRatioSpreadAcrossZoo)
{
    // The paper's headline heterogeneity claim: the largest
    // channel-activation ratio across the AR/VR models is over 10^5
    // times the smallest.
    double min_ratio = 1e30, max_ratio = 0.0;
    for (const Model &m :
         {resnet50(), mobileNetV2(), uNet(), brqHandposeNet(),
          focalLengthDepthNet()}) {
        min_ratio = std::min(min_ratio, m.minChannelActivationRatio());
        max_ratio = std::max(max_ratio, m.maxChannelActivationRatio());
    }
    EXPECT_GT(max_ratio / min_ratio, 1e5);
}

} // namespace
