/**
 * @file
 * Online serving engine tests: bit-identical equivalence of
 * OnlineScheduler against the offline HeraldScheduler oracle across
 * the policy x drop x preemption x fault grid, deterministic
 * backpressure, retain-vs-retire stats equality, lazy arrival
 * streams, option validation, and a seeded chaos soak that must run
 * watchdog-clean.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "accel/accelerator.hh"
#include "dnn/model_zoo.hh"
#include "sched/arrival_source.hh"
#include "sched/fault_model.hh"
#include "sched/herald_scheduler.hh"
#include "sched/online_scheduler.hh"
#include "util/logging.hh"
#include "workload/workload.hh"

namespace
{

using namespace herald;
using accel::Accelerator;
using dataflow::DataflowStyle;
using sched::ArrivalSource;
using sched::DropPolicy;
using sched::FaultTimeline;
using sched::HeraldScheduler;
using sched::OnlineOptions;
using sched::OnlineScheduler;
using sched::OnlineStats;
using sched::Policy;
using sched::Preemption;
using sched::Schedule;
using sched::SchedulerOptions;
using sched::SubmitResult;
using workload::Workload;

class OnlineTest : public ::testing::Test
{
    // Everything public: the grid test takes pointers to the scenario
    // builders, and naming a protected base member that way is
    // ill-formed from the TEST_F subclass.
  public:
    void SetUp() override { util::setVerbose(false); }

    Accelerator
    miniHda()
    {
        return Accelerator::makeHda(
            accel::edgeClass(),
            {DataflowStyle::NVDLA, DataflowStyle::ShiDiannao},
            {512, 512}, {8.0, 8.0});
    }

    dnn::Model
    convNet()
    {
        dnn::Model m("ConvNet");
        m.addLayer(dnn::makeConv("c1", 64, 3, 58, 58, 3, 3));
        m.addLayer(dnn::makeConv("c2", 128, 64, 28, 28, 3, 3));
        m.addLayer(dnn::makeFullyConnected("fc", 10, 128));
        return m;
    }

    dnn::Model
    fcNet()
    {
        dnn::Model m("FcNet");
        m.addLayer(dnn::makeFullyConnected("f1", 1024, 1024));
        m.addLayer(dnn::makeFullyConnected("f2", 256, 1024));
        return m;
    }

    /** Two comfortable-rate streams with deadlines. */
    ArrivalSource
    multirate()
    {
        ArrivalSource src;
        src.addStream(convNet(), 4e6, 4e6, 0.0, 6);
        src.addStream(fcNet(), 6e6, 6e6, 3e6, 4);
        return src;
    }

    /** Periods far below service rate: backlog, drops, misses. */
    ArrivalSource
    overloaded()
    {
        ArrivalSource src;
        src.addStream(convNet(), 5e4, 1e5, 0.0, 12);
        src.addStream(fcNet(), 7e4, 9e4, 1e4, 10);
        return src;
    }

    /**
     * Same overload but with deadlines loose enough that frames are
     * never hopeless at admission: the backlog builds until frames
     * doom out mid-run — the incremental doom-sweep path, and the
     * one that leaves committed history behind to retire.
     */
    ArrivalSource
    backlogged()
    {
        ArrivalSource src;
        src.addStream(convNet(), 5e4, 1.2e6, 0.0, 12);
        src.addStream(fcNet(), 7e4, 1e6, 1e4, 10);
        return src;
    }

    /**
     * Arrival ties: two streams on the same harmonic (exact-equal
     * arrivals) plus one phased inside the scheduler's epsilon
     * (sub-1e-6 near-ties, the reference-scan fallback path).
     */
    ArrivalSource
    tieHeavy()
    {
        ArrivalSource src;
        src.addStream(convNet(), 1e6, 2e6, 0.0, 8);
        src.addStream(fcNet(), 1e6, 3e6, 0.0, 8);
        src.addStream(fcNet(), 1e6, 2.5e6, 1e-7, 8);
        return src;
    }

    /** Deadline stream next to a deadline-free (best-effort) one. */
    ArrivalSource
    mixedDeadline()
    {
        ArrivalSource src;
        src.addStream(convNet(), 2e6, 3e6, 0.0, 6);
        src.addStream(fcNet(), 3e6, 0.0, 1e6, 5); // no deadline
        return src;
    }

    /** Outage + throttle + mid-run permanent failure. */
    FaultTimeline
    midRunFaults()
    {
        FaultTimeline tl(2);
        tl.addOutage(0, 2e6, 1e6);
        tl.addThrottle(1, 1e6, 4e6, 2.0);
        tl.addPermanentFailure(1, 1.6e7);
        return tl;
    }

    /**
     * Drive every frame of @p src through a fresh OnlineScheduler in
     * arrival order and drain. Returns the engine for inspection.
     */
    static void
    runOnline(OnlineScheduler &eng, ArrivalSource src,
              std::vector<SubmitResult> *results = nullptr)
    {
        src.reset();
        while (!src.exhausted()) {
            const ArrivalSource::Frame f = src.next();
            const SubmitResult r =
                eng.submit(f.streamIdx, f.arrivalCycle,
                           f.deadlineCycle);
            if (results != nullptr)
                results->push_back(r);
        }
        eng.drain();
    }

    /**
     * The core guarantee: submitting the stream incrementally and
     * draining yields the offline oracle's schedule bit-identically,
     * and the rolling counters match its computeSla() accounting.
     */
    void
    expectMatchesOffline(const ArrivalSource &src,
                         const SchedulerOptions &base_opts)
    {
        // Bit-identity is on the dispatch-loop output: idle-time
        // post-processing needs the whole schedule, so the online
        // engine forbids it and the oracle must skip it too.
        SchedulerOptions sopts = base_opts;
        sopts.postProcess = false;
        const Accelerator acc = miniHda();
        const Workload wl = src.materialize("online-oracle");
        const Schedule offline =
            HeraldScheduler(model, sopts).schedule(wl, acc);

        OnlineOptions oopts;
        oopts.sched = sopts;
        oopts.retainSchedule = true;
        oopts.maintenancePeriod = 4; // watchdog runs often
        OnlineScheduler eng(model, src.models(), acc, oopts);
        runOnline(eng, src);
        const Schedule &online = eng.schedule();

        ASSERT_EQ(online.entries().size(), offline.entries().size());
        EXPECT_TRUE(online.identicalTo(offline));

        const sched::SlaStats sla = offline.computeSla(wl);
        const OnlineStats st = eng.stats();
        EXPECT_EQ(st.admittedFrames, sla.frames);
        EXPECT_EQ(st.framesWithDeadline, sla.framesWithDeadline);
        EXPECT_EQ(st.deadlineMisses, sla.deadlineMisses);
        EXPECT_EQ(st.droppedFrames, sla.droppedFrames);
        EXPECT_EQ(st.completedFrames, sla.frames - sla.droppedFrames);
        EXPECT_EQ(st.faultKilledLayers, sla.faultKilledLayers);
        EXPECT_EQ(st.framesRescheduled, sla.framesRescheduled);
        EXPECT_DOUBLE_EQ(st.missRate, sla.missRate);
        EXPECT_DOUBLE_EQ(st.maxLatencyCycles, sla.maxLatencyCycles);
        EXPECT_EQ(st.liveFrames, 0u);
    }

    cost::CostModel model;
};

// ---------------------------------------------------------------
// Equivalence grid: online == offline, bit for bit
// ---------------------------------------------------------------

TEST_F(OnlineTest, MatchesOfflineAcrossFullGrid)
{
    const auto scenarios = {&OnlineTest::multirate,
                            &OnlineTest::overloaded,
                            &OnlineTest::backlogged,
                            &OnlineTest::tieHeavy,
                            &OnlineTest::mixedDeadline};
    int scenario_no = 0;
    for (auto scenario : scenarios) {
        ++scenario_no;
        const ArrivalSource src = (this->*scenario)();
        for (auto policy :
             {Policy::Fifo, Policy::Edf, Policy::Lst}) {
            for (auto drop :
                 {DropPolicy::None, DropPolicy::HopelessFrames,
                  DropPolicy::DoomedFrames}) {
                for (auto preempt :
                     {Preemption::Off,
                      Preemption::AtLayerBoundary}) {
                    for (bool with_faults : {false, true}) {
                        SCOPED_TRACE(testing::Message()
                                     << "scenario " << scenario_no
                                     << " policy "
                                     << sched::toString(policy)
                                     << " drop "
                                     << sched::toString(drop)
                                     << " preempt "
                                     << sched::toString(preempt)
                                     << " faults " << with_faults);
                        SchedulerOptions sopts;
                        sopts.policy = policy;
                        sopts.dropPolicy = drop;
                        sopts.preemption = preempt;
                        if (with_faults)
                            sopts.faults = midRunFaults();
                        expectMatchesOffline(src, sopts);
                    }
                }
            }
        }
    }
}

TEST_F(OnlineTest, MatchesOfflineWithLstHysteresisAndContextCost)
{
    SchedulerOptions sopts;
    sopts.policy = Policy::Lst;
    sopts.dropPolicy = DropPolicy::DoomedFrames;
    sopts.preemption = Preemption::AtLayerBoundary;
    sopts.lstHysteresisCycles = 5e4;
    sopts.contextChangeCycles = 1e3;
    expectMatchesOffline(overloaded(), sopts);
    expectMatchesOffline(tieHeavy(), sopts);
}

TEST_F(OnlineTest, MatchesOfflineWithDepthFirstOrdering)
{
    SchedulerOptions sopts;
    sopts.ordering = sched::Ordering::DepthFirst;
    sopts.policy = Policy::Edf;
    sopts.dropPolicy = DropPolicy::DoomedFrames;
    expectMatchesOffline(multirate(), sopts);
    expectMatchesOffline(tieHeavy(), sopts);
}

TEST_F(OnlineTest, MatchesOfflineAcrossPrefillThreadCounts)
{
    for (std::size_t threads : {std::size_t{1}, std::size_t{7}}) {
        SCOPED_TRACE(threads);
        SchedulerOptions sopts;
        sopts.policy = Policy::Lst;
        sopts.dropPolicy = DropPolicy::DoomedFrames;
        sopts.preemption = Preemption::AtLayerBoundary;
        sopts.prefillThreads = threads;
        expectMatchesOffline(overloaded(), sopts);
    }
}

TEST_F(OnlineTest, MidStreamStatsQueriesDoNotPerturbTheSchedule)
{
    const ArrivalSource src = overloaded();
    const Accelerator acc = miniHda();
    SchedulerOptions sopts;
    sopts.policy = Policy::Edf;
    sopts.dropPolicy = DropPolicy::DoomedFrames;
    sopts.postProcess = false;

    OnlineOptions oopts;
    oopts.sched = sopts;
    oopts.retainSchedule = true;
    OnlineScheduler probed(model, src.models(), acc, oopts);
    ArrivalSource feed = src;
    feed.reset();
    while (!feed.exhausted()) {
        const ArrivalSource::Frame f = feed.next();
        probed.submit(f.streamIdx, f.arrivalCycle, f.deadlineCycle);
        (void)probed.stats(); // const probe every frame
    }
    probed.drain();

    OnlineScheduler plain(model, src.models(), acc, oopts);
    runOnline(plain, src);
    EXPECT_TRUE(probed.schedule().identicalTo(plain.schedule()));
}

// ---------------------------------------------------------------
// Bounded memory: retire mode matches retain mode
// ---------------------------------------------------------------

TEST_F(OnlineTest, RetiringHistoryPreservesEveryRollingCounter)
{
    // backlogged(): commits pile up AND frames doom out mid-run, so
    // retirement has real history to fold (overloaded() would drop
    // every frame at admission and leave nothing to retire).
    const ArrivalSource src = backlogged();
    const Accelerator acc = miniHda();
    SchedulerOptions sopts;
    sopts.policy = Policy::Lst;
    sopts.dropPolicy = DropPolicy::DoomedFrames;
    sopts.preemption = Preemption::AtLayerBoundary;
    sopts.faults = midRunFaults();
    sopts.postProcess = false;

    OnlineOptions retain;
    retain.sched = sopts;
    retain.retainSchedule = true;
    OnlineScheduler a(model, src.models(), acc, retain);
    runOnline(a, src);

    OnlineOptions retire;
    retire.sched = sopts;
    retire.retainSchedule = false;
    retire.maintenancePeriod = 4;
    OnlineScheduler b(model, src.models(), acc, retire);
    runOnline(b, src);

    const OnlineStats sa = a.stats();
    const OnlineStats sb = b.stats();
    EXPECT_EQ(sb.submittedFrames, sa.submittedFrames);
    EXPECT_EQ(sb.admittedFrames, sa.admittedFrames);
    EXPECT_EQ(sb.completedFrames, sa.completedFrames);
    EXPECT_EQ(sb.droppedFrames, sa.droppedFrames);
    EXPECT_EQ(sb.deadlineMisses, sa.deadlineMisses);
    EXPECT_EQ(sb.committedLayers, sa.committedLayers);
    EXPECT_EQ(sb.faultKilledLayers, sa.faultKilledLayers);
    EXPECT_EQ(sb.framesRescheduled, sa.framesRescheduled);
    EXPECT_DOUBLE_EQ(sb.missRate, sa.missRate);
    EXPECT_DOUBLE_EQ(sb.p50LatencyCycles, sa.p50LatencyCycles);
    EXPECT_DOUBLE_EQ(sb.p99LatencyCycles, sa.p99LatencyCycles);
    EXPECT_DOUBLE_EQ(sb.maxLatencyCycles, sa.maxLatencyCycles);
    ASSERT_EQ(sb.perModel.size(), sa.perModel.size());
    for (std::size_t m = 0; m < sa.perModel.size(); ++m) {
        EXPECT_EQ(sb.perModel[m].completed, sa.perModel[m].completed);
        EXPECT_EQ(sb.perModel[m].dropped, sa.perModel[m].dropped);
        EXPECT_EQ(sb.perModel[m].deadlineMisses,
                  sa.perModel[m].deadlineMisses);
    }
    // The point of retiring: history was actually folded away.
    EXPECT_GT(sb.retiredEntries, 0u);
    EXPECT_LT(sb.liveEntries, sa.liveEntries);
    // schedule() is retain-mode only.
    EXPECT_THROW(b.schedule(), std::runtime_error);
}

// ---------------------------------------------------------------
// Backpressure: deterministic rejection under overload
// ---------------------------------------------------------------

TEST_F(OnlineTest, BackpressureRejectsDeterministically)
{
    const ArrivalSource src = overloaded();
    const Accelerator acc = miniHda();
    OnlineOptions oopts;
    oopts.sched.policy = Policy::Edf;
    oopts.maxLiveFrames = 4;
    oopts.horizonCycles = 3e5;

    std::vector<SubmitResult> first, second;
    OnlineScheduler a(model, src.models(), acc, oopts);
    runOnline(a, src, &first);
    OnlineScheduler b(model, src.models(), acc, oopts);
    runOnline(b, src, &second);

    EXPECT_EQ(first, second); // same rejects, same order, every rerun
    std::size_t rejects = 0;
    for (SubmitResult r : first) {
        if (r == SubmitResult::RejectedQueueFull ||
            r == SubmitResult::RejectedHorizon)
            ++rejects;
    }
    EXPECT_GT(rejects, 0u);

    const OnlineStats st = a.stats();
    EXPECT_EQ(st.submittedFrames, first.size());
    EXPECT_EQ(st.submittedFrames,
              st.admittedFrames + st.rejectedFrames);
    EXPECT_EQ(st.rejectedFrames, rejects);
    EXPECT_EQ(st.admittedFrames,
              st.completedFrames + st.droppedFrames);
    EXPECT_EQ(st.liveFrames, 0u);
}

TEST_F(OnlineTest, QueueBoundIsRespectedThroughoutTheStream)
{
    const ArrivalSource src = overloaded();
    const Accelerator acc = miniHda();
    OnlineOptions oopts;
    oopts.sched.policy = Policy::Fifo;
    oopts.maxLiveFrames = 3;

    OnlineScheduler eng(model, src.models(), acc, oopts);
    ArrivalSource feed = src;
    feed.reset();
    while (!feed.exhausted()) {
        const ArrivalSource::Frame f = feed.next();
        eng.submit(f.streamIdx, f.arrivalCycle, f.deadlineCycle);
        EXPECT_LE(eng.stats().liveFrames, 3u);
    }
    eng.drain();
}

// ---------------------------------------------------------------
// Chaos soak: random faults + tight maintenance, watchdog-clean
// ---------------------------------------------------------------

TEST_F(OnlineTest, SeededChaosSoakRunsWatchdogClean)
{
    const Accelerator acc = miniHda();
    for (std::uint64_t seed : {11u, 29u, 47u}) {
        SCOPED_TRACE(seed);
        ArrivalSource src;
        src.addStream(convNet(), 8e4, 4e5, 0.0, 120);
        src.addStream(fcNet(), 1.1e5, 3e5, 2e4, 90);
        src.addStream(fcNet(), 1.3e5, 0.0, 5e4, 60); // best effort

        OnlineOptions oopts;
        oopts.sched.policy = Policy::Lst;
        oopts.sched.dropPolicy = DropPolicy::DoomedFrames;
        oopts.sched.preemption = Preemption::AtLayerBoundary;
        oopts.sched.faults = FaultTimeline::random(seed, 2, 4e7);
        oopts.maxLiveFrames = 64;
        oopts.horizonCycles = 2e7;
        oopts.maintenancePeriod = 8; // audit nearly every commit
        OnlineScheduler eng(model, src.models(), acc, oopts);
        runOnline(eng, src); // any watchdog violation throws

        const OnlineStats st = eng.stats();
        EXPECT_EQ(st.liveFrames, 0u);
        EXPECT_EQ(st.submittedFrames,
                  st.admittedFrames + st.rejectedFrames);
        EXPECT_EQ(st.admittedFrames,
                  st.completedFrames + st.droppedFrames);
        EXPECT_GT(st.retiredEntries, 0u);
        EXPECT_GE(st.watermarkCycle, 0.0);
    }
}

// ---------------------------------------------------------------
// ArrivalSource: lazy generation semantics
// ---------------------------------------------------------------

TEST_F(OnlineTest, ArrivalSourceMergesInArrivalOrder)
{
    ArrivalSource src;
    src.addStream(convNet(), 100.0, 50.0, 0.0, 3);
    src.addStream(fcNet(), 70.0, 0.0, 10.0, 3);
    double last = 0.0;
    std::uint64_t n = 0;
    while (!src.exhausted()) {
        const ArrivalSource::Frame f = src.next();
        EXPECT_GE(f.arrivalCycle, last);
        last = f.arrivalCycle;
        ++n;
    }
    EXPECT_EQ(n, 6u);
    EXPECT_EQ(src.emitted(), 6u);
    // materialize() replays the same order with the same timing.
    const Workload wl = src.materialize("merge");
    ASSERT_EQ(wl.numInstances(), 6u);
    for (std::size_t i = 1; i < 6; ++i) {
        EXPECT_GE(wl.instances()[i].arrivalCycle,
                  wl.instances()[i - 1].arrivalCycle);
    }
    src.reset();
    EXPECT_EQ(src.emitted(), 0u);
    EXPECT_FALSE(src.exhausted());
}

TEST_F(OnlineTest, ArrivalSourceGuardsUnboundedAndOverflowing)
{
    ArrivalSource src;
    src.addStream(convNet(), 1e6);
    EXPECT_FALSE(src.exhausted()); // unbounded: never runs out
    EXPECT_THROW(src.materialize("x"), std::runtime_error);
    EXPECT_THROW(ArrivalSource{}.addStream(convNet(), 0.0),
                 std::runtime_error);
    EXPECT_THROW(
        ArrivalSource{}.addStream(convNet(), 1e15, 0.0, 0.0, 100),
        std::runtime_error);
}

// ---------------------------------------------------------------
// Option and argument validation
// ---------------------------------------------------------------

TEST_F(OnlineTest, RejectsContradictoryOnlineOptions)
{
    const Accelerator acc = miniHda();
    const std::vector<dnn::Model> models = {convNet()};
    {
        OnlineOptions o;
        o.sched.postProcess = true;
        EXPECT_THROW(OnlineScheduler(model, models, acc, o),
                     std::runtime_error);
    }
    {
        OnlineOptions o;
        o.maxLiveFrames = 0;
        EXPECT_THROW(OnlineScheduler(model, models, acc, o),
                     std::runtime_error);
    }
    for (double horizon : {0.0, -1.0, std::nan("")}) {
        OnlineOptions o;
        o.horizonCycles = horizon;
        EXPECT_THROW(OnlineScheduler(model, models, acc, o),
                     std::runtime_error);
    }
    {
        OnlineOptions o;
        o.maintenancePeriod = 0;
        EXPECT_THROW(OnlineScheduler(model, models, acc, o),
                     std::runtime_error);
    }
    // Scheduler-option validation runs through the same gate.
    {
        OnlineOptions o;
        o.sched.lstHysteresisCycles = 1e4; // non-LST policy
        EXPECT_THROW(OnlineScheduler(model, models, acc, o),
                     std::runtime_error);
    }
    EXPECT_THROW(OnlineScheduler(model, {}, acc, OnlineOptions{}),
                 std::runtime_error);
}

TEST_F(OnlineTest, RejectsBadSchedulerOptionCombos)
{
    // Satellite guard: every contradictory SchedulerOptions field is
    // refused up front with util::fatal, not silently ignored.
    auto expect_rejected = [](const SchedulerOptions &o) {
        EXPECT_THROW(o.validate(), std::runtime_error);
    };
    SchedulerOptions o;
    o.loadBalanceFactor = 0.5;
    expect_rejected(o);
    o = SchedulerOptions{};
    o.loadBalanceFactor = std::nan("");
    expect_rejected(o);
    o = SchedulerOptions{};
    o.loadBalanceMaxDegradation = 0.0;
    expect_rejected(o);
    o = SchedulerOptions{};
    o.lookaheadDepth = -1;
    expect_rejected(o);
    o = SchedulerOptions{};
    o.maxPostPasses = -2;
    expect_rejected(o);
    o = SchedulerOptions{};
    o.lstHysteresisCycles = -1.0;
    expect_rejected(o);
    o = SchedulerOptions{};
    o.lstHysteresisCycles =
        std::numeric_limits<double>::infinity();
    expect_rejected(o);
    o = SchedulerOptions{};
    o.policy = Policy::Edf;
    o.lstHysteresisCycles = 1e3;
    expect_rejected(o);
    o = SchedulerOptions{};
    o.contextChangeCycles = -5.0;
    expect_rejected(o);
    // The legal combinations still pass.
    o = SchedulerOptions{};
    o.policy = Policy::Lst;
    o.lstHysteresisCycles = 1e3;
    EXPECT_NO_THROW(o.validate());
    o = SchedulerOptions{};
    o.deadlineAware = true; // alias resolves to EDF, stays legal
    EXPECT_NO_THROW(o.validate());
}

TEST_F(OnlineTest, RejectsBadSubmitArguments)
{
    const Accelerator acc = miniHda();
    OnlineScheduler eng(model, {convNet()}, acc, OnlineOptions{});
    EXPECT_THROW(eng.submit(1, 0.0), std::runtime_error);
    EXPECT_THROW(eng.submit(0, -1.0), std::runtime_error);
    EXPECT_THROW(eng.submit(0, std::nan("")), std::runtime_error);
    EXPECT_THROW(eng.submit(0, workload::kMaxCycle * 2),
                 std::runtime_error);
    EXPECT_THROW(eng.submit(0, 100.0, 50.0), std::runtime_error);
    EXPECT_THROW(eng.submit(0, 100.0, std::nan("")),
                 std::runtime_error);
    ASSERT_EQ(eng.submit(0, 100.0), SubmitResult::Accepted);
    // Arrivals are a timeline: going backwards is a caller bug.
    EXPECT_THROW(eng.submit(0, 99.0), std::runtime_error);
    eng.drain();
    eng.drain(); // idempotent
    EXPECT_THROW(eng.submit(0, 200.0), std::runtime_error);
    EXPECT_EQ(eng.stats().completedFrames, 1u);
}

} // namespace
