/**
 * @file
 * Parallel DSE engine tests: (i) Herald::explore must return
 * bit-identical results (point ordering, summaries, bestIdx) for any
 * thread count, and (ii) the event-timeline MemoryTracker must agree
 * with a brute-force occupancy reference on randomized workloads.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "dnn/model_zoo.hh"
#include "dse/herald_dse.hh"
#include "sched/memory_tracker.hh"
#include "util/logging.hh"
#include "util/math_utils.hh"
#include "workload/workload.hh"

namespace
{

using namespace herald;
using dataflow::DataflowStyle;

// ---------------------------------------------------------------
// Parallel == serial
// ---------------------------------------------------------------

class ParallelDseTest : public ::testing::Test
{
  protected:
    void SetUp() override { util::setVerbose(false); }

    workload::Workload
    miniWorkload()
    {
        workload::Workload wl("mini");
        wl.addModel(dnn::brqHandposeNet(), 2);
        wl.addModel(dnn::mobileNetV2(), 1);
        return wl;
    }

    dse::DseResult
    exploreWithThreads(std::size_t threads,
                       dse::SearchStrategy strategy =
                           dse::SearchStrategy::Exhaustive)
    {
        // Fresh cost model per run: the cache must not leak state
        // between the serial and parallel sweeps being compared.
        cost::CostModel model;
        dse::HeraldOptions opts;
        opts.partition.peGranularity = 128;
        opts.partition.bwGranularity = 2.0;
        opts.partition.strategy = strategy;
        opts.numThreads = threads;
        dse::Herald herald(model, opts);
        workload::Workload wl = miniWorkload();
        return herald.explore(
            wl, accel::edgeClass(),
            {DataflowStyle::NVDLA, DataflowStyle::ShiDiannao});
    }

    static void
    expectIdentical(const dse::DseResult &a, const dse::DseResult &b)
    {
        EXPECT_EQ(a.bestIdx, b.bestIdx);
        ASSERT_EQ(a.points.size(), b.points.size());
        for (std::size_t i = 0; i < a.points.size(); ++i) {
            const sched::ScheduleSummary &sa = a.points[i].summary;
            const sched::ScheduleSummary &sb = b.points[i].summary;
            // Bit-identical, not just close: the parallel sweep must
            // run the exact same computation per candidate.
            EXPECT_EQ(sa.makespanCycles, sb.makespanCycles) << i;
            EXPECT_EQ(sa.latencySec, sb.latencySec) << i;
            EXPECT_EQ(sa.energyMj, sb.energyMj) << i;
            EXPECT_EQ(a.points[i].accelerator.name(),
                      b.points[i].accelerator.name())
                << i;
        }
    }
};

TEST_F(ParallelDseTest, OneAndFourThreadsProduceIdenticalResults)
{
    dse::DseResult serial = exploreWithThreads(1);
    dse::DseResult parallel = exploreWithThreads(4);
    expectIdentical(serial, parallel);
}

TEST_F(ParallelDseTest, ManyThreadsOversubscribedStillIdentical)
{
    // More workers than candidates exercises the empty-queue path.
    dse::DseResult serial = exploreWithThreads(1);
    dse::DseResult parallel = exploreWithThreads(13);
    expectIdentical(serial, parallel);
}

TEST_F(ParallelDseTest, BinaryRefinementRoundIsIdenticalToo)
{
    dse::DseResult serial =
        exploreWithThreads(1, dse::SearchStrategy::Binary);
    dse::DseResult parallel =
        exploreWithThreads(4, dse::SearchStrategy::Binary);
    expectIdentical(serial, parallel);
}

// ---------------------------------------------------------------
// MemoryTracker vs brute-force reference
// ---------------------------------------------------------------

/** The pre-timeline O(n^2) tracker, kept verbatim as the oracle. */
class BruteTracker
{
  public:
    explicit BruteTracker(std::uint64_t capacity_bytes)
        : capacity(static_cast<double>(capacity_bytes))
    {
    }

    struct Interval
    {
        double start;
        double end;
        double bytes;
    };

    static constexpr double kEps = 1e-6;

    bool
    feasible(double start, double dur, double bytes,
             std::size_t exclude = SIZE_MAX) const
    {
        const double end = start + dur;
        double peak = occupancyAt(start, exclude);
        for (std::size_t i = 0; i < intervals.size(); ++i) {
            if (i == exclude)
                continue;
            const Interval &iv = intervals[i];
            if (iv.start > start && iv.start < end)
                peak = std::max(peak,
                                occupancyAt(iv.start, exclude));
        }
        return peak + bytes <= capacity + kEps;
    }

    double
    firstFeasible(double start, double dur, double bytes) const
    {
        if (bytes > capacity) {
            double latest = start;
            for (const Interval &iv : intervals)
                latest = std::max(latest, iv.end);
            return latest;
        }
        double t = start;
        for (int guard = 0; guard < 1 << 16; ++guard) {
            if (feasible(t, dur, bytes))
                return t;
            double next = std::numeric_limits<double>::infinity();
            for (const Interval &iv : intervals) {
                if (iv.end > t + kEps)
                    next = std::min(next, iv.end);
            }
            if (!std::isfinite(next))
                return t;
            t = next;
        }
        ADD_FAILURE() << "brute tracker failed to converge";
        return t;
    }

    std::size_t
    add(double start, double dur, double bytes)
    {
        intervals.push_back(Interval{start, start + dur, bytes});
        return intervals.size() - 1;
    }

    void
    move(std::size_t idx, double new_start)
    {
        Interval &iv = intervals.at(idx);
        double dur = iv.end - iv.start;
        iv.start = new_start;
        iv.end = new_start + dur;
    }

    double
    occupancyAt(double t, std::size_t exclude = SIZE_MAX) const
    {
        double total = 0.0;
        for (std::size_t i = 0; i < intervals.size(); ++i) {
            if (i == exclude)
                continue;
            const Interval &iv = intervals[i];
            if (iv.start <= t + kEps && iv.end > t + kEps)
                total += iv.bytes;
        }
        return total;
    }

  private:
    double capacity;
    std::vector<Interval> intervals;
};

TEST(MemoryTrackerTest, MatchesBruteForceOnRandomizedIntervals)
{
    // Integer-valued times and byte counts keep every occupancy sum
    // exact in double arithmetic, so both implementations must agree
    // bit-for-bit on every query.
    const std::uint64_t capacity = 1000;
    util::SplitMix64 rng(42);

    sched::MemoryTracker tracker(capacity);
    BruteTracker brute(capacity);

    // Enough steps to drive the blocked timeline through several
    // block splits (and empty-block erases via move()).
    for (int step = 0; step < 2000; ++step) {
        double start = static_cast<double>(rng.nextBounded(200));
        double dur =
            static_cast<double>(1 + rng.nextBounded(40));
        double bytes =
            static_cast<double>(1 + rng.nextBounded(500));

        std::uint64_t action = rng.nextBounded(10);
        if (action < 5) {
            std::size_t a = tracker.add(start, dur, bytes);
            std::size_t b = brute.add(start, dur, bytes);
            ASSERT_EQ(a, b);
        } else if (action < 7 && tracker.numIntervals() > 0) {
            std::size_t idx =
                rng.nextBounded(tracker.numIntervals());
            tracker.move(idx, start);
            brute.move(idx, start);
        } else if (action < 9) {
            std::size_t exclude =
                tracker.numIntervals() > 0 && rng.nextBounded(2) == 0
                    ? rng.nextBounded(tracker.numIntervals())
                    : SIZE_MAX;
            EXPECT_EQ(tracker.feasible(start, dur, bytes, exclude),
                      brute.feasible(start, dur, bytes, exclude))
                << "step " << step;
        } else {
            EXPECT_EQ(tracker.firstFeasible(start, dur, bytes),
                      brute.firstFeasible(start, dur, bytes))
                << "step " << step;
        }

        // Occupancy probes at random points every step.
        for (int probe = 0; probe < 3; ++probe) {
            double t = static_cast<double>(rng.nextBounded(260));
            EXPECT_EQ(tracker.occupancy(t), brute.occupancyAt(t))
                << "step " << step << " t " << t;
        }
    }
}

TEST(MemoryTrackerTest, OverCapacityRequestSerializesBehindAll)
{
    sched::MemoryTracker tracker(100);
    tracker.add(0.0, 10.0, 50.0);
    tracker.add(5.0, 20.0, 30.0);
    // Larger than capacity: first feasible point is after the last
    // release, matching the reference semantics.
    EXPECT_EQ(tracker.firstFeasible(0.0, 5.0, 200.0), 25.0);
}

TEST(MemoryTrackerTest, FeasibilityRespectsExcludedInterval)
{
    sched::MemoryTracker tracker(100);
    std::size_t idx = tracker.add(0.0, 10.0, 80.0);
    EXPECT_FALSE(tracker.feasible(0.0, 10.0, 50.0));
    // Excluding the resident interval frees its bytes.
    EXPECT_TRUE(tracker.feasible(0.0, 10.0, 50.0, idx));
}

TEST(MemoryTrackerTest, MoveRetimesOccupancy)
{
    sched::MemoryTracker tracker(100);
    std::size_t idx = tracker.add(0.0, 10.0, 60.0);
    EXPECT_EQ(tracker.occupancy(5.0), 60.0);
    tracker.move(idx, 100.0);
    EXPECT_EQ(tracker.occupancy(5.0), 0.0);
    EXPECT_EQ(tracker.occupancy(105.0), 60.0);
}

} // namespace
