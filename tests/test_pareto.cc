/**
 * @file
 * util/pareto tests: the dominance relation (two- and
 * three-objective), Pareto-front extraction (insertion of
 * non-dominated points, eviction of dominated ones, tie handling),
 * the index view, input-order determinism, and the min-EDP picker.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "util/logging.hh"
#include "util/pareto.hh"

namespace
{

using herald::util::DesignPoint;
using herald::util::dominates;
using herald::util::minEdpIndex;
using herald::util::paretoFront;
using herald::util::paretoFrontIndices;

DesignPoint
pt(double latency, double energy, const char *label = "")
{
    return DesignPoint{latency, energy, label};
}

DesignPoint
pt3(double latency, double energy, double misses,
    const char *label = "")
{
    DesignPoint p{latency, energy, label};
    p.slaMisses = misses;
    return p;
}

TEST(ParetoTest, DominanceRelation)
{
    // Strictly better in both axes.
    EXPECT_TRUE(dominates(pt(1.0, 1.0), pt(2.0, 2.0)));
    EXPECT_FALSE(dominates(pt(2.0, 2.0), pt(1.0, 1.0)));
    // Tie on one axis, strictly better on the other.
    EXPECT_TRUE(dominates(pt(1.0, 2.0), pt(1.0, 3.0)));
    EXPECT_TRUE(dominates(pt(1.0, 2.0), pt(4.0, 2.0)));
    // Equal points dominate in neither direction.
    EXPECT_FALSE(dominates(pt(1.0, 2.0), pt(1.0, 2.0)));
    // Incomparable (each wins one axis): no dominance either way.
    EXPECT_FALSE(dominates(pt(1.0, 3.0), pt(3.0, 1.0)));
    EXPECT_FALSE(dominates(pt(3.0, 1.0), pt(1.0, 3.0)));
}

TEST(ParetoTest, FrontKeepsNonDominatedAndEvictsDominated)
{
    // Three frontier points plus two dominated interior points.
    const std::vector<DesignPoint> points = {
        pt(3.0, 1.0, "fast-energy"), pt(1.0, 3.0, "fast-latency"),
        pt(2.0, 2.0, "balanced"),    pt(2.5, 2.5, "dominated"),
        pt(3.5, 3.5, "dominated2"),
    };
    const std::vector<DesignPoint> front = paretoFront(points);
    ASSERT_EQ(front.size(), 3u);
    // Sorted by ascending latency, and every survivor is mutually
    // non-dominated.
    EXPECT_EQ(front[0].label, "fast-latency");
    EXPECT_EQ(front[1].label, "balanced");
    EXPECT_EQ(front[2].label, "fast-energy");
    for (std::size_t i = 0; i < front.size(); ++i) {
        EXPECT_TRUE(std::is_sorted(
            front.begin(), front.end(),
            [](const DesignPoint &a, const DesignPoint &b) {
                return a.latency < b.latency;
            }));
        for (std::size_t j = 0; j < front.size(); ++j)
            EXPECT_FALSE(dominates(front[i], front[j]))
                << i << " dominates " << j;
    }
    // Every evicted point is dominated by some survivor.
    for (const DesignPoint &p : points) {
        const bool kept =
            std::any_of(front.begin(), front.end(),
                        [&](const DesignPoint &f) {
                            return f.latency == p.latency &&
                                   f.energy == p.energy;
                        });
        if (!kept) {
            EXPECT_TRUE(std::any_of(front.begin(), front.end(),
                                    [&](const DesignPoint &f) {
                                        return dominates(f, p);
                                    }))
                << p.label << " evicted but undominated";
        }
    }
}

TEST(ParetoTest, FrontHandlesTiesAndDegenerateSets)
{
    // A single point is its own front.
    EXPECT_EQ(paretoFront({pt(1.0, 1.0)}).size(), 1u);
    // An empty set stays empty.
    EXPECT_TRUE(paretoFront({}).empty());
    // Duplicate coordinates collapse to one representative.
    const std::vector<DesignPoint> front = paretoFront(
        {pt(1.0, 1.0, "a"), pt(1.0, 1.0, "b"), pt(2.0, 0.5, "c")});
    ASSERT_EQ(front.size(), 2u);
    EXPECT_EQ(front[0].latency, 1.0);
    EXPECT_EQ(front[1].label, "c");
    // Equal-latency points: only the lowest-energy one survives.
    const std::vector<DesignPoint> tied =
        paretoFront({pt(1.0, 5.0, "hi"), pt(1.0, 2.0, "lo")});
    ASSERT_EQ(tied.size(), 1u);
    EXPECT_EQ(tied[0].label, "lo");
}

TEST(ParetoTest, FrontIsInputOrderDeterministic)
{
    std::vector<DesignPoint> points = {
        pt(5.0, 1.0), pt(1.0, 5.0), pt(3.0, 3.0),
        pt(4.0, 4.0), pt(2.0, 6.0), pt(6.0, 0.5),
    };
    const std::vector<DesignPoint> ref = paretoFront(points);
    // Every rotation of the input yields the same front, point for
    // point — the sweep canonicalizes by sorting first.
    for (std::size_t r = 1; r < points.size(); ++r) {
        std::rotate(points.begin(), points.begin() + 1, points.end());
        const std::vector<DesignPoint> front = paretoFront(points);
        ASSERT_EQ(front.size(), ref.size()) << "rotation " << r;
        for (std::size_t i = 0; i < front.size(); ++i) {
            EXPECT_EQ(front[i].latency, ref[i].latency);
            EXPECT_EQ(front[i].energy, ref[i].energy);
        }
    }
}

TEST(ParetoTest, ThirdAxisDominance)
{
    // The SLA axis participates in dominance like the other two.
    EXPECT_TRUE(dominates(pt3(1.0, 1.0, 0.0), pt3(1.0, 1.0, 2.0)));
    EXPECT_FALSE(dominates(pt3(1.0, 1.0, 2.0), pt3(1.0, 1.0, 0.0)));
    // Better latency/energy but more misses: incomparable.
    EXPECT_FALSE(dominates(pt3(1.0, 1.0, 3.0), pt3(2.0, 2.0, 0.0)));
    EXPECT_FALSE(dominates(pt3(2.0, 2.0, 0.0), pt3(1.0, 1.0, 3.0)));
    // Defaulted third axis (0) reproduces classic 2-D dominance.
    EXPECT_TRUE(dominates(pt(1.0, 1.0), pt3(2.0, 2.0, 0.0)));
}

TEST(ParetoTest, ThreeObjectiveFrontKeepsMissTradeoffs)
{
    // A point that loses on latency and energy survives by winning
    // the SLA axis; a point dominated on all three is evicted.
    const std::vector<DesignPoint> points = {
        pt3(1.0, 2.0, 4.0, "fast-but-missy"),
        pt3(3.0, 3.0, 0.0, "slow-but-clean"),
        pt3(3.5, 3.5, 1.0, "dominated"),
    };
    const std::vector<DesignPoint> front = paretoFront(points);
    ASSERT_EQ(front.size(), 2u);
    EXPECT_EQ(front[0].label, "fast-but-missy");
    EXPECT_EQ(front[1].label, "slow-but-clean");
}

TEST(ParetoTest, FrontIndicesMatchFrontAndCollapseDuplicates)
{
    const std::vector<DesignPoint> points = {
        pt3(2.0, 2.0, 0.0, "dup-late"), pt3(1.0, 3.0, 0.0, "a"),
        pt3(2.0, 2.0, 0.0, "dup-early"), pt3(5.0, 5.0, 5.0, "bad"),
    };
    const std::vector<std::size_t> idx = paretoFrontIndices(points);
    const std::vector<DesignPoint> front = paretoFront(points);
    ASSERT_EQ(idx.size(), front.size());
    for (std::size_t i = 0; i < idx.size(); ++i) {
        EXPECT_EQ(points[idx[i]].latency, front[i].latency);
        EXPECT_EQ(points[idx[i]].energy, front[i].energy);
    }
    // Exact duplicates keep the lowest original index (position 0,
    // "dup-late", beats position 2 despite identical coordinates).
    ASSERT_EQ(idx.size(), 2u);
    EXPECT_EQ(idx[0], 1u);
    EXPECT_EQ(idx[1], 0u);
}

TEST(ParetoTest, MinEdpIndexPicksProductMinimum)
{
    // EDPs: 8.0, 4.5, 6.0 — the middle point wins even though it is
    // best in neither single axis.
    const std::vector<DesignPoint> points = {
        pt(2.0, 4.0), pt(3.0, 1.5), pt(1.0, 6.0)};
    EXPECT_EQ(minEdpIndex(points), 1u);
    // First minimum wins ties.
    EXPECT_EQ(minEdpIndex({pt(2.0, 2.0), pt(4.0, 1.0)}), 0u);
    // Empty input is an internal error, not index 0.
    EXPECT_THROW(minEdpIndex({}), std::logic_error);
}

} // namespace
