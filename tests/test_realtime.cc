/**
 * @file
 * Real-time scenario engine tests: periodic workload expansion
 * (arrivals, deadlines), arrival-aware scheduling validity, EDF
 * vs. FIFO miss counts on the factory scenarios, SLA statistics, the
 * SlaViolations DSE objective, and determinism across thread counts.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "accel/accelerator.hh"
#include "dnn/model_zoo.hh"
#include "dse/herald_dse.hh"
#include "sched/herald_scheduler.hh"
#include "sched/layer_cost_table.hh"
#include "util/logging.hh"
#include "workload/workload.hh"

namespace
{

using namespace herald;
using accel::Accelerator;
using dataflow::DataflowStyle;
using sched::HeraldScheduler;
using sched::Schedule;
using sched::SchedulerOptions;
using workload::Workload;

class RealtimeTest : public ::testing::Test
{
  protected:
    void SetUp() override { util::setVerbose(false); }

    /** Small periodic two-stream workload that schedules fast. */
    Workload
    miniRealtime()
    {
        Workload wl("mini-rt");
        dnn::Model conv_net("ConvNet");
        conv_net.addLayer(dnn::makeConv("c1", 64, 3, 58, 58, 3, 3));
        conv_net.addLayer(dnn::makeConv("c2", 128, 64, 28, 28, 3, 3));
        conv_net.addLayer(dnn::makeFullyConnected("fc", 10, 128));
        dnn::Model fc_net("FcNet");
        fc_net.addLayer(dnn::makeFullyConnected("f1", 1024, 1024));
        fc_net.addLayer(dnn::makeFullyConnected("f2", 256, 1024));
        wl.addPeriodicModel(std::move(conv_net), 3, 4e6);
        wl.addPeriodicModel(std::move(fc_net), 2, 6e6, 3e6);
        return wl;
    }

    Accelerator
    miniHda()
    {
        return Accelerator::makeHda(
            accel::edgeClass(),
            {DataflowStyle::NVDLA, DataflowStyle::ShiDiannao},
            {512, 512}, {8.0, 8.0});
    }

    cost::CostModel model;
};

// ---------------------------------------------------------------
// Workload expansion
// ---------------------------------------------------------------

TEST_F(RealtimeTest, PeriodicExpansionStaggersArrivals)
{
    Workload wl("t");
    wl.addPeriodicModel(dnn::mobileNetV2(), 3, 1000.0);
    ASSERT_EQ(wl.numInstances(), 3u);
    for (int f = 0; f < 3; ++f) {
        const workload::Instance &inst = wl.instances()[f];
        EXPECT_DOUBLE_EQ(inst.arrivalCycle, f * 1000.0);
        // Implicit deadline: one period after arrival.
        EXPECT_DOUBLE_EQ(inst.deadlineCycle, f * 1000.0 + 1000.0);
        EXPECT_TRUE(inst.hasDeadline());
    }
    EXPECT_TRUE(wl.hasArrivals());
    EXPECT_TRUE(wl.hasDeadlines());
    EXPECT_TRUE(wl.specs()[0].realtime.periodic());
}

TEST_F(RealtimeTest, ExplicitDeadlineAndPhase)
{
    Workload wl("t");
    wl.addPeriodicModel(dnn::mobileNetV2(), 2, 1000.0, 400.0, 50.0);
    EXPECT_DOUBLE_EQ(wl.instances()[0].arrivalCycle, 50.0);
    EXPECT_DOUBLE_EQ(wl.instances()[0].deadlineCycle, 450.0);
    EXPECT_DOUBLE_EQ(wl.instances()[1].arrivalCycle, 1050.0);
    EXPECT_DOUBLE_EQ(wl.instances()[1].deadlineCycle, 1450.0);
}

TEST_F(RealtimeTest, AperiodicDefaultsUnchanged)
{
    Workload wl("t");
    wl.addModel(dnn::mobileNetV2(), 2);
    for (const workload::Instance &inst : wl.instances()) {
        EXPECT_DOUBLE_EQ(inst.arrivalCycle, 0.0);
        EXPECT_FALSE(inst.hasDeadline());
    }
    EXPECT_FALSE(wl.hasArrivals());
    EXPECT_FALSE(wl.hasDeadlines());
}

TEST_F(RealtimeTest, AddModelWithArrivalAndDeadline)
{
    Workload wl("t");
    wl.addModel(dnn::mobileNetV2(), 2, 100.0, 500.0);
    EXPECT_DOUBLE_EQ(wl.instances()[1].arrivalCycle, 100.0);
    EXPECT_DOUBLE_EQ(wl.instances()[1].deadlineCycle, 600.0);
}

TEST_F(RealtimeTest, RejectsBadRealtimeArguments)
{
    Workload wl("t");
    EXPECT_THROW(wl.addPeriodicModel(dnn::mobileNetV2(), 0, 1000.0),
                 std::runtime_error);
    EXPECT_THROW(wl.addPeriodicModel(dnn::mobileNetV2(), 1, 0.0),
                 std::runtime_error);
    EXPECT_THROW(wl.addModel(dnn::mobileNetV2(), 1, -1.0),
                 std::runtime_error);
    EXPECT_THROW(workload::fpsPeriodCycles(0.0),
                 std::runtime_error);
}

TEST_F(RealtimeTest, FpsPeriodCycles)
{
    // 60 FPS at 1 GHz: 1e9 / 60 cycles per frame.
    EXPECT_NEAR(workload::fpsPeriodCycles(60.0), 1e9 / 60.0, 1e-3);
    EXPECT_NEAR(workload::fpsPeriodCycles(30.0, 2.0), 2e9 / 30.0,
                1e-3);
}

TEST_F(RealtimeTest, FactoryScenariosAreRealtime)
{
    Workload a = workload::arvrA60fps(4);
    EXPECT_TRUE(a.hasArrivals());
    EXPECT_TRUE(a.hasDeadlines());
    // 4 MobileNetV2 frames + 2 UNet frames + 1 Resnet50 frame.
    EXPECT_EQ(a.numInstances(), 7u);

    Workload m = workload::mixedTenantScenario(2);
    EXPECT_TRUE(m.hasDeadlines());
    // The MLPerf tenant is best-effort: some instances deadline-free.
    bool some_free = false;
    for (const workload::Instance &inst : m.instances())
        some_free |= !inst.hasDeadline();
    EXPECT_TRUE(some_free);
}

// ---------------------------------------------------------------
// Arrival-aware scheduling
// ---------------------------------------------------------------

TEST_F(RealtimeTest, ScheduleWithArrivalsIsValid)
{
    Workload wl = miniRealtime();
    Accelerator acc = miniHda();
    for (bool edf : {false, true}) {
        for (bool pp : {false, true}) {
            SchedulerOptions opts;
            opts.deadlineAware = edf;
            opts.postProcess = pp;
            Schedule s =
                HeraldScheduler(model, opts).schedule(wl, acc);
            EXPECT_EQ(s.validate(wl, acc), "")
                << "edf=" << edf << " pp=" << pp;
        }
    }
}

TEST_F(RealtimeTest, NoLayerStartsBeforeArrival)
{
    Workload wl = miniRealtime();
    Accelerator acc = miniHda();
    Schedule s = HeraldScheduler(model).schedule(wl, acc);
    for (const sched::ScheduledLayer &e : s.entries()) {
        EXPECT_GE(e.startCycle,
                  wl.instances()[e.instanceIdx].arrivalCycle - 1e-6);
    }
}

TEST_F(RealtimeTest, ValidatorCatchesArrivalViolation)
{
    Workload wl("t");
    dnn::Model m("M");
    m.addLayer(dnn::makeFullyConnected("a", 64, 64));
    wl.addModel(std::move(m), 1, 1000.0);
    Accelerator acc = miniHda();

    Schedule s(acc.numSubAccs());
    sched::ScheduledLayer e;
    e.instanceIdx = 0;
    e.layerIdx = 0;
    e.accIdx = 0;
    e.startCycle = 0.0; // before the instance arrives at 1000
    e.endCycle = 100.0;
    s.add(e);
    std::string err = s.validate(wl, acc);
    EXPECT_NE(err.find("arrival"), std::string::npos) << err;
}

TEST_F(RealtimeTest, FutureFramesDoNotBlockArrivedWork)
{
    // A periodic stream with far-apart arrivals shares the chip with
    // a best-effort job arriving at cycle 0. The greedy pass must
    // not reserve slots at future arrivals and serialize the
    // best-effort work behind frames that do not exist yet: the job
    // has to finish long before the stream's last frame arrives.
    const double period = 5e7;
    for (bool edf : {false, true}) {
        Workload wl("future-frames");
        wl.addPeriodicModel(dnn::mobileNetV2(), 4, period);
        wl.addModel(dnn::mobileNetV1(), 1); // best-effort, arrival 0
        Accelerator acc = miniHda();
        SchedulerOptions opts;
        opts.deadlineAware = edf;
        Schedule s = HeraldScheduler(model, opts).schedule(wl, acc);
        EXPECT_EQ(s.validate(wl, acc), "");
        sched::SlaStats sla = s.computeSla(wl);
        // Instance 4 is the best-effort MobileNetV1.
        const sched::InstanceSla &job = sla.perInstance[4];
        ASSERT_TRUE(job.scheduled);
        EXPECT_LT(job.completionCycle, period)
            << "best-effort job serialized behind future frames"
            << " (edf=" << edf << ")";
    }
}

TEST_F(RealtimeTest, EdfPreemptsAtDispatchOnceFrameIsReleased)
{
    // Depth-first FIFO runs all of M1 before M2. With deadlineAware,
    // once M2's (tiny) arrival falls inside the committed schedule
    // horizon it must be dispatched ahead of M1's remaining layers —
    // M1 has no deadline, M2 a finite one. This regresses the
    // release-clock definition: a frontier pinned at zero by an idle
    // sub-accelerator would never release M2 before M1 finishes.
    Workload wl("edf-preempt");
    dnn::Model m1("Long");
    for (int i = 0; i < 4; ++i) {
        m1.addLayer(dnn::makeFullyConnected(
            "l" + std::to_string(i), 1024, 1024));
    }
    dnn::Model m2("Urgent");
    m2.addLayer(dnn::makeFullyConnected("u", 256, 256));
    wl.addModel(std::move(m1), 1);
    wl.addModel(std::move(m2), 1, 1.0, 2e5);
    Accelerator acc = miniHda();

    SchedulerOptions opts;
    opts.ordering = sched::Ordering::DepthFirst;
    opts.deadlineAware = true;
    opts.postProcess = false;
    Schedule s = HeraldScheduler(model, opts).schedule(wl, acc);
    EXPECT_EQ(s.validate(wl, acc), "");

    double m1_last_start = 0.0;
    double m2_start = 0.0;
    for (const sched::ScheduledLayer &e : s.entries()) {
        if (e.instanceIdx == 0 && e.layerIdx == 3)
            m1_last_start = e.startCycle;
        if (e.instanceIdx == 1)
            m2_start = e.startCycle;
    }
    EXPECT_LT(m2_start, m1_last_start)
        << "EDF never released the urgent frame";
}

TEST_F(RealtimeTest, UnscheduledInstancesCountAsMisses)
{
    Workload wl("t");
    dnn::Model m("M");
    m.addLayer(dnn::makeFullyConnected("a", 64, 64));
    wl.addModel(std::move(m), 2, 0.0, 100.0);
    Accelerator acc = miniHda();

    // A partial schedule covering only instance 0.
    Schedule s(acc.numSubAccs());
    sched::ScheduledLayer e;
    e.instanceIdx = 0;
    e.layerIdx = 0;
    e.accIdx = 0;
    e.startCycle = 0.0;
    e.endCycle = 50.0;
    s.add(e);

    sched::SlaStats sla = s.computeSla(wl);
    EXPECT_EQ(sla.frames, 2u);
    EXPECT_EQ(sla.framesWithDeadline, 2u);
    // The never-executed frame cannot have made its deadline.
    EXPECT_EQ(sla.deadlineMisses, 1u);
    EXPECT_EQ(sla.droppedFrames, 0u);
    EXPECT_DOUBLE_EQ(sla.missRate, 0.5);
    ASSERT_EQ(sla.perInstance.size(), 2u);
    EXPECT_TRUE(sla.perInstance[0].scheduled);
    EXPECT_FALSE(sla.perInstance[0].missed);
    EXPECT_FALSE(sla.perInstance[1].scheduled);
    EXPECT_TRUE(sla.perInstance[1].missed);
    // Honest percentiles: the frame that never ran contributes +inf
    // latency instead of silently vanishing from the tail — p50 is
    // the surviving frame, p99 and max are unbounded. (The old
    // behaviour reported a rosy p99 of 50 cycles here.)
    EXPECT_DOUBLE_EQ(sla.p50LatencyCycles, 50.0);
    EXPECT_TRUE(std::isinf(sla.p99LatencyCycles));
    EXPECT_TRUE(std::isinf(sla.maxLatencyCycles));
}

TEST_F(RealtimeTest, ContextChangePenaltyStillValidWithArrivals)
{
    Workload wl = miniRealtime();
    Accelerator acc = miniHda();
    SchedulerOptions opts;
    opts.contextChangeCycles = 1e4;
    Schedule s = HeraldScheduler(model, opts).schedule(wl, acc);
    EXPECT_EQ(s.validate(wl, acc), "");
}

TEST_F(RealtimeTest, DeadlineAwareIsNoOpWithoutDeadlines)
{
    // On a deadline-free workload the EDF tie-break never fires, so
    // the schedules must be entry-for-entry identical.
    Workload wl("plain");
    wl.addModel(dnn::mobileNetV2(), 2);
    wl.addModel(dnn::brqHandposeNet(), 1);
    Accelerator acc = miniHda();

    SchedulerOptions fifo;
    SchedulerOptions edf;
    edf.deadlineAware = true;
    Schedule a = HeraldScheduler(model, fifo).schedule(wl, acc);
    Schedule b = HeraldScheduler(model, edf).schedule(wl, acc);
    ASSERT_EQ(a.entries().size(), b.entries().size());
    for (std::size_t i = 0; i < a.entries().size(); ++i) {
        EXPECT_EQ(a.entries()[i].instanceIdx,
                  b.entries()[i].instanceIdx);
        EXPECT_EQ(a.entries()[i].accIdx, b.entries()[i].accIdx);
        EXPECT_DOUBLE_EQ(a.entries()[i].startCycle,
                         b.entries()[i].startCycle);
    }
}

// ---------------------------------------------------------------
// SLA metrics
// ---------------------------------------------------------------

TEST_F(RealtimeTest, SlaStatsOnHandBuiltSchedule)
{
    Workload wl("t");
    dnn::Model m("M");
    m.addLayer(dnn::makeFullyConnected("a", 64, 64));
    // Frames arrive at 0 / 100 / 200 / 300, deadline 50 cycles each.
    wl.addPeriodicModel(std::move(m), 4, 100.0, 50.0);
    Accelerator acc = miniHda();

    Schedule s(acc.numSubAccs());
    const double completions[] = {40.0, 160.0, 230.0, 340.0};
    for (std::size_t i = 0; i < 4; ++i) {
        sched::ScheduledLayer e;
        e.instanceIdx = i;
        e.layerIdx = 0;
        e.accIdx = 0;
        e.startCycle = completions[i] - 10.0;
        e.endCycle = completions[i];
        s.add(e);
    }

    sched::SlaStats sla = s.computeSla(wl);
    EXPECT_EQ(sla.frames, 4u);
    EXPECT_EQ(sla.framesWithDeadline, 4u);
    // Latencies: 40, 60, 30, 40. Deadlines at 50/150/250/350:
    // misses are frames 1 (160 > 150) only.
    EXPECT_EQ(sla.deadlineMisses, 1u);
    EXPECT_DOUBLE_EQ(sla.missRate, 0.25);
    EXPECT_DOUBLE_EQ(sla.maxLatencyCycles, 60.0);
    // Sorted latencies {30, 40, 40, 60}: p50 = 2nd, p99 = 4th.
    EXPECT_DOUBLE_EQ(sla.p50LatencyCycles, 40.0);
    EXPECT_DOUBLE_EQ(sla.p99LatencyCycles, 60.0);
    ASSERT_EQ(sla.perInstance.size(), 4u);
    EXPECT_TRUE(sla.perInstance[1].missed);
    EXPECT_FALSE(sla.perInstance[0].missed);
    EXPECT_DOUBLE_EQ(sla.perInstance[2].latencyCycles, 30.0);
}

TEST_F(RealtimeTest, FinalizeEmbedsSlaStats)
{
    Workload wl = miniRealtime();
    Accelerator acc = miniHda();
    Schedule s = HeraldScheduler(model).schedule(wl, acc);
    sched::ScheduleSummary sum =
        s.finalize(wl, acc, model.energyModel());
    EXPECT_EQ(sum.sla.frames, wl.numInstances());
    EXPECT_EQ(sum.sla.framesWithDeadline, wl.numInstances());
    EXPECT_GT(sum.sla.p50LatencyCycles, 0.0);
    EXPECT_LE(sum.sla.p50LatencyCycles, sum.sla.p99LatencyCycles);
    EXPECT_LE(sum.sla.p99LatencyCycles, sum.sla.maxLatencyCycles);
    // The base overload computes identical non-SLA fields.
    sched::ScheduleSummary base =
        s.finalize(acc, model.energyModel());
    EXPECT_EQ(base.makespanCycles, sum.makespanCycles);
    EXPECT_EQ(base.energyMj, sum.energyMj);
    EXPECT_EQ(base.sla.frames, 0u);
}

// ---------------------------------------------------------------
// EDF vs. FIFO on the factory scenarios
// ---------------------------------------------------------------

TEST_F(RealtimeTest, EdfNeverWorseThanFifoOnFactoryScenarios)
{
    Accelerator acc = miniHda();
    for (int frames : {2, 4}) {
        for (const Workload &wl :
             {workload::arvrA60fps(frames),
              workload::mixedTenantScenario(frames)}) {
            SchedulerOptions fifo;
            SchedulerOptions edf;
            edf.deadlineAware = true;
            Schedule sf =
                HeraldScheduler(model, fifo).schedule(wl, acc);
            Schedule se =
                HeraldScheduler(model, edf).schedule(wl, acc);
            EXPECT_EQ(sf.validate(wl, acc), "") << wl.name();
            EXPECT_EQ(se.validate(wl, acc), "") << wl.name();
            sched::SlaStats f = sf.computeSla(wl);
            sched::SlaStats e = se.computeSla(wl);
            EXPECT_LE(e.deadlineMisses, f.deadlineMisses)
                << wl.name() << " frames=" << frames;
        }
    }
}

// ---------------------------------------------------------------
// Selection policies (LST) and drop policies
// ---------------------------------------------------------------

TEST_F(RealtimeTest, DeadlineAwareAliasSelectsEdf)
{
    SchedulerOptions opts;
    EXPECT_EQ(opts.effectivePolicy(), sched::Policy::Fifo);
    opts.deadlineAware = true;
    EXPECT_EQ(opts.effectivePolicy(), sched::Policy::Edf);
    opts.policy = sched::Policy::Lst;
    EXPECT_EQ(opts.effectivePolicy(), sched::Policy::Lst)
        << "an explicit policy must win over the deprecated alias";

    // The alias produces the exact schedule the enum produces.
    Workload wl = miniRealtime();
    Accelerator acc = miniHda();
    SchedulerOptions alias_opts;
    alias_opts.deadlineAware = true;
    SchedulerOptions enum_opts;
    enum_opts.policy = sched::Policy::Edf;
    Schedule a =
        HeraldScheduler(model, alias_opts).schedule(wl, acc);
    Schedule b = HeraldScheduler(model, enum_opts).schedule(wl, acc);
    EXPECT_TRUE(a.identicalTo(b));
}

TEST_F(RealtimeTest, LstIsExactNoOpWithoutDeadlines)
{
    // Deadline-free workloads key every instance to +inf slack, so
    // LST must be bit-identical to FIFO — with or without the drop
    // policy (which never drops deadline-free frames).
    Workload wl("plain");
    wl.addModel(dnn::mobileNetV2(), 2);
    wl.addModel(dnn::brqHandposeNet(), 1, 5e5);
    Accelerator acc = miniHda();

    SchedulerOptions fifo;
    Schedule base = HeraldScheduler(model, fifo).schedule(wl, acc);
    for (auto drop : {sched::DropPolicy::None,
                      sched::DropPolicy::HopelessFrames}) {
        SchedulerOptions lst;
        lst.policy = sched::Policy::Lst;
        lst.dropPolicy = drop;
        Schedule s = HeraldScheduler(model, lst).schedule(wl, acc);
        EXPECT_TRUE(base.identicalTo(s));
        EXPECT_TRUE(s.droppedInstances().empty());
    }
}

TEST_F(RealtimeTest, LstNeverWorseThanEdfOnOverloadedScenarios)
{
    // Property guardrail for the over-subscribed factory scenarios:
    // slack-aware dispatch must not lose to deadline-only dispatch,
    // with or without admission control.
    Accelerator acc = miniHda();
    for (int frames : {2, 4, 8}) {
        for (const Workload &wl :
             {workload::arvrAOverloaded(frames),
              workload::mixedTenantOverloaded(frames)}) {
            for (auto drop : {sched::DropPolicy::None,
                              sched::DropPolicy::HopelessFrames}) {
                SchedulerOptions edf;
                edf.policy = sched::Policy::Edf;
                edf.dropPolicy = drop;
                SchedulerOptions lst = edf;
                lst.policy = sched::Policy::Lst;
                Schedule se =
                    HeraldScheduler(model, edf).schedule(wl, acc);
                Schedule sl =
                    HeraldScheduler(model, lst).schedule(wl, acc);
                EXPECT_EQ(se.validate(wl, acc), "") << wl.name();
                EXPECT_EQ(sl.validate(wl, acc), "") << wl.name();
                EXPECT_LE(sl.computeSla(wl).deadlineMisses,
                          se.computeSla(wl).deadlineMisses)
                    << wl.name() << " frames=" << frames
                    << " drop=" << sched::toString(drop);
            }
        }
    }
}

TEST_F(RealtimeTest, LstBeatsEdfOnOverloadedMixedTenant)
{
    // The headline separation (acceptance criterion): on the
    // over-subscribed mixed-tenant scenario the heavy analytics job
    // has the least slack but the latest deadline — EDF
    // procrastinates on it behind the frame streams until it cannot
    // finish, LST starts it immediately and still lands the frames
    // (their multi-frame pipeline deadlines tolerate the wait).
    Accelerator acc = miniHda();
    Workload wl = workload::mixedTenantOverloaded(8);
    SchedulerOptions edf;
    edf.policy = sched::Policy::Edf;
    SchedulerOptions lst;
    lst.policy = sched::Policy::Lst;
    Schedule se = HeraldScheduler(model, edf).schedule(wl, acc);
    Schedule sl = HeraldScheduler(model, lst).schedule(wl, acc);
    EXPECT_EQ(se.validate(wl, acc), "");
    EXPECT_EQ(sl.validate(wl, acc), "");
    sched::SlaStats e = se.computeSla(wl);
    sched::SlaStats l = sl.computeSla(wl);
    EXPECT_LT(l.deadlineMisses, e.deadlineMisses)
        << "LST must yield strictly fewer misses than EDF here";
}

TEST_F(RealtimeTest, DropPolicyShedsHopelessFrames)
{
    // arvrAOverloaded carries a UNet stream whose frames are
    // provably hopeless (optimistic execution alone blows the
    // deadline): the drop policy sheds exactly those, they count as
    // misses, and the freed cycles save other frames.
    Accelerator acc = miniHda();
    Workload wl = workload::arvrAOverloaded(4);
    for (auto policy : {sched::Policy::Fifo, sched::Policy::Edf,
                        sched::Policy::Lst}) {
        SchedulerOptions keep;
        keep.policy = policy;
        SchedulerOptions drop = keep;
        drop.dropPolicy = sched::DropPolicy::HopelessFrames;
        Schedule sk = HeraldScheduler(model, keep).schedule(wl, acc);
        Schedule sd = HeraldScheduler(model, drop).schedule(wl, acc);
        EXPECT_EQ(sk.validate(wl, acc), "");
        EXPECT_EQ(sd.validate(wl, acc), "");

        sched::SlaStats kept = sk.computeSla(wl);
        sched::SlaStats shed = sd.computeSla(wl);
        EXPECT_EQ(kept.droppedFrames, 0u);
        ASSERT_GT(shed.droppedFrames, 0u);
        // Dropped = the UNet frames (spec 1), nothing else.
        for (std::size_t idx : sd.droppedInstances()) {
            EXPECT_EQ(wl.instances()[idx].specIdx, 1u);
            EXPECT_FALSE(shed.perInstance[idx].scheduled);
            EXPECT_TRUE(shed.perInstance[idx].dropped);
            EXPECT_TRUE(shed.perInstance[idx].missed)
                << "a dropped frame is a missed frame";
        }
        EXPECT_EQ(shed.droppedFrames, sd.droppedInstances().size());
        // No layer of a dropped instance may be scheduled.
        for (const sched::ScheduledLayer &e : sd.entries())
            EXPECT_FALSE(sd.isDropped(e.instanceIdx));
        // Shedding hopeless work must not create new misses — here
        // it strictly reduces them by rescuing live frames.
        EXPECT_LE(shed.deadlineMisses, kept.deadlineMisses)
            << sched::toString(policy);
        EXPECT_GE(shed.deadlineMisses, shed.droppedFrames);
        // Unbounded tail: dropped frames never complete.
        EXPECT_TRUE(std::isinf(shed.p99LatencyCycles));
    }
}

TEST_F(RealtimeTest, DropPolicyNoOpWhenEveryFrameIsFeasible)
{
    // miniRealtime's deadlines are generous: nothing is provably
    // hopeless, so admission control must change nothing at all.
    Workload wl = miniRealtime();
    Accelerator acc = miniHda();
    for (auto policy : {sched::Policy::Fifo, sched::Policy::Edf,
                        sched::Policy::Lst}) {
        SchedulerOptions keep;
        keep.policy = policy;
        SchedulerOptions drop = keep;
        drop.dropPolicy = sched::DropPolicy::HopelessFrames;
        Schedule a = HeraldScheduler(model, keep).schedule(wl, acc);
        Schedule b = HeraldScheduler(model, drop).schedule(wl, acc);
        EXPECT_TRUE(a.identicalTo(b)) << sched::toString(policy);
        EXPECT_TRUE(b.droppedInstances().empty());
    }
}

TEST_F(RealtimeTest, OverloadedFactoryScenariosAreOverSubscribed)
{
    // The over-subscribed variants must actually be over-subscribed:
    // even EDF cannot meet every deadline at the default sizes.
    Accelerator acc = miniHda();
    for (const Workload &wl : {workload::arvrAOverloaded(8),
                               workload::mixedTenantOverloaded(8)}) {
        EXPECT_TRUE(wl.hasArrivals());
        EXPECT_TRUE(wl.hasDeadlines());
        SchedulerOptions edf;
        edf.policy = sched::Policy::Edf;
        Schedule s = HeraldScheduler(model, edf).schedule(wl, acc);
        EXPECT_GT(s.computeSla(wl).deadlineMisses, 0u) << wl.name();
    }
}

// ---------------------------------------------------------------
// Preemption points, dynamic doomed-frame drop, LST hysteresis
// ---------------------------------------------------------------

TEST_F(RealtimeTest, InteractiveOverloadedFactoryShape)
{
    Workload wl = workload::interactiveOverloaded(8);
    EXPECT_TRUE(wl.hasArrivals());
    EXPECT_TRUE(wl.hasDeadlines());
    // 2 heavy analytics jobs + 8 interactive frames.
    EXPECT_EQ(wl.numInstances(), 10u);
    // Over-subscribed for run-to-completion dispatch: even LST
    // misses deadlines without preemption points.
    Accelerator acc = miniHda();
    SchedulerOptions lst;
    lst.policy = sched::Policy::Lst;
    Schedule s = HeraldScheduler(model, lst).schedule(wl, acc);
    EXPECT_GT(s.computeSla(wl).deadlineMisses, 0u);
}

TEST_F(RealtimeTest, PreemptionBeatsRunToCompletionLst)
{
    // The tentpole separation (acceptance criterion): interactive
    // arrivals land mid-heavy-layer, so run-to-completion LST queues
    // them behind committed work past their deadlines while a
    // preemption point serves them at arrival — strictly fewer
    // misses, with and without the dynamic drop riding along.
    Accelerator acc = miniHda();
    for (int frames : {4, 8}) {
        Workload wl = workload::interactiveOverloaded(frames);
        SchedulerOptions rtc;
        rtc.policy = sched::Policy::Lst;
        SchedulerOptions pre = rtc;
        pre.preemption = sched::Preemption::AtLayerBoundary;
        SchedulerOptions pre_drop = pre;
        pre_drop.dropPolicy = sched::DropPolicy::DoomedFrames;
        Schedule s_rtc =
            HeraldScheduler(model, rtc).schedule(wl, acc);
        Schedule s_pre =
            HeraldScheduler(model, pre).schedule(wl, acc);
        Schedule s_pre_drop =
            HeraldScheduler(model, pre_drop).schedule(wl, acc);
        EXPECT_EQ(s_rtc.validate(wl, acc), "");
        EXPECT_EQ(s_pre.validate(wl, acc), "");
        EXPECT_EQ(s_pre_drop.validate(wl, acc), "");
        sched::SlaStats rtc_sla = s_rtc.computeSla(wl);
        EXPECT_LT(s_pre.computeSla(wl).deadlineMisses,
                  rtc_sla.deadlineMisses)
            << "frames=" << frames;
        EXPECT_LT(s_pre_drop.computeSla(wl).deadlineMisses,
                  rtc_sla.deadlineMisses)
            << "frames=" << frames;
    }
}

TEST_F(RealtimeTest, PreemptionIsExactNoOpForFifo)
{
    // FIFO's constant key can never mark an arrival as strictly
    // more urgent, so the preemption machinery must be a no-op:
    // bit-identical schedules on every scenario shape.
    Accelerator acc = miniHda();
    for (const Workload &wl :
         {workload::interactiveOverloaded(4),
          workload::arvrAOverloaded(4), miniRealtime()}) {
        SchedulerOptions off;
        SchedulerOptions pre;
        pre.preemption = sched::Preemption::AtLayerBoundary;
        Schedule a = HeraldScheduler(model, off).schedule(wl, acc);
        Schedule b = HeraldScheduler(model, pre).schedule(wl, acc);
        EXPECT_TRUE(a.identicalTo(b)) << wl.name();
    }
}

TEST_F(RealtimeTest, PreemptionDeterministicAcrossThreadCounts)
{
    // The preemption decision reads only committed-schedule state,
    // so prefill-thread fan-out must not perturb it. The workload is
    // padded with deadline-carrying zoo models on a 4-way HDA so the
    // cost table crosses LayerCostTable::kMinParallelEvals and the
    // pool genuinely spins up (below the gate the prefill is serial
    // and the comparison would be vacuous).
    Accelerator acc = Accelerator::makeHda(
        accel::edgeClass(),
        {DataflowStyle::NVDLA, DataflowStyle::ShiDiannao,
         DataflowStyle::Eyeriss, DataflowStyle::NVDLA},
        {256, 256, 256, 256}, {4.0, 4.0, 4.0, 4.0});
    Workload wl = workload::interactiveOverloaded(8);
    wl.addModel(dnn::resnet50(), 1, 1e6, 9e7);
    wl.addModel(dnn::uNet(), 1, 2e6, 8e8);
    wl.addModel(dnn::ssdResnet34(), 1, 3e6, 9e8);
    wl.addModel(dnn::gnmt(), 1, 4e6, 9e8);
    wl.addModel(dnn::mobileNetV1(), 2, 5e6, 6e7);
    ASSERT_GE(wl.totalLayers() * acc.numSubAccs(),
              sched::LayerCostTable::kMinParallelEvals)
        << "workload too small to engage the parallel prefill";
    for (auto drop : {sched::DropPolicy::None,
                      sched::DropPolicy::DoomedFrames}) {
        SchedulerOptions serial;
        serial.policy = sched::Policy::Lst;
        serial.preemption = sched::Preemption::AtLayerBoundary;
        serial.dropPolicy = drop;
        serial.prefillThreads = 1;
        SchedulerOptions parallel = serial;
        parallel.prefillThreads = 7;
        Schedule a =
            HeraldScheduler(model, serial).schedule(wl, acc);
        Schedule b =
            HeraldScheduler(model, parallel).schedule(wl, acc);
        EXPECT_TRUE(a.identicalTo(b))
            << sched::toString(drop);
        Schedule c =
            HeraldScheduler(model, serial).schedule(wl, acc);
        EXPECT_TRUE(a.identicalTo(c)) << "rerun divergence";
    }
}

TEST_F(RealtimeTest, DoomedFramesShedMidFlight)
{
    // Transient overload: a heavy straggler with a moderate deadline
    // is on track until a tight burst lands mid-flight. The dynamic
    // drop sheds frames that *become* doomed after partial
    // scheduling — their committed prefix stays on the timeline,
    // they count as dropped and missed, and the static
    // HopelessFrames test (arrival-time proof only) cannot see them.
    Workload wl("transient-burst");
    wl.addModel(dnn::resnet50(), 1, 0.0, 2.2e7);
    wl.addModel(dnn::mobileNetV2(), 6, 3e6, 4e6);
    Accelerator acc = miniHda();
    for (auto policy : {sched::Policy::Edf, sched::Policy::Lst}) {
        SchedulerOptions doomed;
        doomed.policy = policy;
        doomed.dropPolicy = sched::DropPolicy::DoomedFrames;
        SchedulerOptions hopeless = doomed;
        hopeless.dropPolicy = sched::DropPolicy::HopelessFrames;
        Schedule sd =
            HeraldScheduler(model, doomed).schedule(wl, acc);
        Schedule sh =
            HeraldScheduler(model, hopeless).schedule(wl, acc);
        EXPECT_EQ(sd.validate(wl, acc), "");
        ASSERT_GT(sd.droppedInstances().size(), 0u);
        // Nothing is hopeless at arrival — every drop is dynamic.
        EXPECT_TRUE(sh.droppedInstances().empty());
        // At least one shed frame keeps a committed prefix.
        std::map<std::size_t, std::size_t> count;
        for (const sched::ScheduledLayer &e : sd.entries())
            ++count[e.instanceIdx];
        std::size_t midflight = 0;
        for (std::size_t d : sd.droppedInstances()) {
            auto it = count.find(d);
            if (it == count.end())
                continue;
            ++midflight;
            EXPECT_LT(it->second, wl.modelOf(d).numLayers());
        }
        EXPECT_GT(midflight, 0u) << sched::toString(policy);
        sched::SlaStats sla = sd.computeSla(wl);
        EXPECT_EQ(sla.droppedFrames, sd.droppedInstances().size());
        EXPECT_GE(sla.deadlineMisses, sla.droppedFrames);
        for (std::size_t d : sd.droppedInstances()) {
            EXPECT_TRUE(sla.perInstance[d].dropped);
            EXPECT_TRUE(sla.perInstance[d].missed);
            EXPECT_FALSE(sla.perInstance[d].scheduled);
        }
    }
}

TEST_F(RealtimeTest, DoomedDropsSupersetOfHopelessDrops)
{
    // The dynamic test at "now" with partial progress can only ever
    // shed *more* than the arrival-time proof: every statically
    // hopeless frame is also doomed at release.
    Accelerator acc = miniHda();
    for (int frames : {2, 4, 8}) {
        for (const Workload &wl :
             {workload::arvrAOverloaded(frames),
              workload::mixedTenantOverloaded(frames)}) {
            for (auto policy :
                 {sched::Policy::Fifo, sched::Policy::Edf,
                  sched::Policy::Lst}) {
                SchedulerOptions hopeless;
                hopeless.policy = policy;
                hopeless.dropPolicy =
                    sched::DropPolicy::HopelessFrames;
                SchedulerOptions doomed = hopeless;
                doomed.dropPolicy = sched::DropPolicy::DoomedFrames;
                Schedule sh = HeraldScheduler(model, hopeless)
                                  .schedule(wl, acc);
                Schedule sd = HeraldScheduler(model, doomed)
                                  .schedule(wl, acc);
                EXPECT_EQ(sd.validate(wl, acc), "") << wl.name();
                EXPECT_TRUE(std::includes(
                    sd.droppedInstances().begin(),
                    sd.droppedInstances().end(),
                    sh.droppedInstances().begin(),
                    sh.droppedInstances().end()))
                    << wl.name() << " " << sched::toString(policy);
            }
        }
    }
}

TEST_F(RealtimeTest, DoomedFramesCutMissesOnOverloadedScenario)
{
    // Shedding work that provably cannot finish frees the cycles the
    // savable frames need: on the over-subscribed AR/VR mix the
    // dynamic drop cuts LST misses sharply (every miss left is a
    // shed frame, every survivor completes in time).
    Accelerator acc = miniHda();
    Workload wl = workload::arvrAOverloaded(8);
    SchedulerOptions keep;
    keep.policy = sched::Policy::Lst;
    SchedulerOptions doomed = keep;
    doomed.dropPolicy = sched::DropPolicy::DoomedFrames;
    Schedule sk = HeraldScheduler(model, keep).schedule(wl, acc);
    Schedule sd = HeraldScheduler(model, doomed).schedule(wl, acc);
    sched::SlaStats kept = sk.computeSla(wl);
    sched::SlaStats shed = sd.computeSla(wl);
    EXPECT_LT(shed.deadlineMisses, kept.deadlineMisses);
    EXPECT_EQ(shed.deadlineMisses, shed.droppedFrames)
        << "every remaining miss should be an intentional shed";
}

TEST_F(RealtimeTest, DoomedFramesNoOpWhenEveryFrameIsFeasible)
{
    // Generous deadlines: the doom test never fires and the whole
    // machinery must leave the schedule bit-identical.
    Workload wl = miniRealtime();
    Accelerator acc = miniHda();
    for (auto policy : {sched::Policy::Fifo, sched::Policy::Edf,
                        sched::Policy::Lst}) {
        SchedulerOptions keep;
        keep.policy = policy;
        SchedulerOptions doomed = keep;
        doomed.dropPolicy = sched::DropPolicy::DoomedFrames;
        Schedule a = HeraldScheduler(model, keep).schedule(wl, acc);
        Schedule b =
            HeraldScheduler(model, doomed).schedule(wl, acc);
        EXPECT_TRUE(a.identicalTo(b)) << sched::toString(policy);
        EXPECT_TRUE(b.droppedInstances().empty());
    }
}

TEST_F(RealtimeTest, LstHysteresisReducesThrashNotQuality)
{
    // ROADMAP follow-up (a): near-equal slack degenerates LST into
    // processor sharing (one layer per frame, round and round). The
    // hysteresis band keeps the grant with the running frame, which
    // must cut dispatch-order switches without costing misses on the
    // over-subscribed tenant mix.
    Accelerator acc = miniHda();
    Workload wl = workload::mixedTenantOverloaded(8);
    auto switches = [](const Schedule &s) {
        std::size_t n = 0;
        for (std::size_t i = 1; i < s.entries().size(); ++i) {
            n += s.entries()[i].instanceIdx !=
                 s.entries()[i - 1].instanceIdx;
        }
        return n;
    };
    SchedulerOptions base;
    base.policy = sched::Policy::Lst;
    SchedulerOptions hyst = base;
    hyst.lstHysteresisCycles = 1e6;
    Schedule sb = HeraldScheduler(model, base).schedule(wl, acc);
    Schedule sh = HeraldScheduler(model, hyst).schedule(wl, acc);
    EXPECT_EQ(sh.validate(wl, acc), "");
    EXPECT_LT(switches(sh), switches(sb))
        << "the band should suppress processor-sharing thrash";
    EXPECT_LE(sh.computeSla(wl).deadlineMisses,
              sb.computeSla(wl).deadlineMisses);

    // With a real context-change penalty the suppressed switches
    // stop paying the switch tax: the band strictly cuts misses.
    SchedulerOptions ctx_base = base;
    ctx_base.contextChangeCycles = 1e4;
    SchedulerOptions ctx_hyst = ctx_base;
    ctx_hyst.lstHysteresisCycles = 1e6;
    Schedule cb =
        HeraldScheduler(model, ctx_base).schedule(wl, acc);
    Schedule ch =
        HeraldScheduler(model, ctx_hyst).schedule(wl, acc);
    EXPECT_EQ(ch.validate(wl, acc), "");
    EXPECT_LT(ch.computeSla(wl).deadlineMisses,
              cb.computeSla(wl).deadlineMisses);
}

TEST_F(RealtimeTest, HysteresisRejectedForNonLstPolicies)
{
    // The band is an LST knob: on FIFO/EDF it would silently do
    // nothing, so validation rejects the combination up front.
    Accelerator acc = miniHda();
    Workload wl = workload::mixedTenantOverloaded(4);
    for (auto policy : {sched::Policy::Fifo, sched::Policy::Edf}) {
        SchedulerOptions band;
        band.policy = policy;
        band.lstHysteresisCycles = 1e6;
        EXPECT_THROW(HeraldScheduler(model, band).schedule(wl, acc),
                     std::runtime_error)
            << sched::toString(policy);
    }
}

// ---------------------------------------------------------------
// DSE integration
// ---------------------------------------------------------------

TEST_F(RealtimeTest, SlaViolationsObjectivePicksMissArgmin)
{
    dse::HeraldOptions opts;
    opts.partition.peGranularity = 256;
    opts.partition.bwGranularity = 4.0;
    opts.objective = dse::Objective::SlaViolations;
    opts.scheduler.deadlineAware = true;
    dse::Herald herald(model, opts);
    Workload wl = miniRealtime();
    dse::DseResult result = herald.explore(
        wl, accel::edgeClass(),
        {DataflowStyle::NVDLA, DataflowStyle::ShiDiannao});
    ASSERT_FALSE(result.points.empty());
    std::size_t best_misses =
        result.best().summary.sla.deadlineMisses;
    for (const dse::DsePoint &p : result.points)
        EXPECT_GE(p.summary.sla.deadlineMisses, best_misses);
}

TEST_F(RealtimeTest, ExploreReportsSlaAlongsideEdp)
{
    // Default (EDP) objective still carries SLA stats in every point.
    dse::HeraldOptions opts;
    opts.partition.peGranularity = 256;
    opts.partition.bwGranularity = 4.0;
    dse::Herald herald(model, opts);
    Workload wl = miniRealtime();
    dse::DseResult result = herald.explore(
        wl, accel::edgeClass(),
        {DataflowStyle::NVDLA, DataflowStyle::ShiDiannao});
    for (const dse::DsePoint &p : result.points) {
        EXPECT_EQ(p.summary.sla.frames, wl.numInstances());
        EXPECT_GT(p.summary.edp(), 0.0);
    }
}

TEST_F(RealtimeTest, SlaViolationsSweepWithLstAndDrop)
{
    // Hardware x policy co-design: the SlaViolations objective
    // composes with any selection/drop policy pair, and the dropped-
    // frame accounting flows through every swept design point.
    dse::HeraldOptions opts;
    opts.partition.peGranularity = 256;
    opts.partition.bwGranularity = 4.0;
    opts.objective = dse::Objective::SlaViolations;
    opts.scheduler.policy = sched::Policy::Lst;
    opts.scheduler.dropPolicy = sched::DropPolicy::HopelessFrames;
    dse::Herald herald(model, opts);
    Workload wl = workload::arvrAOverloaded(2);
    dse::DseResult result = herald.explore(
        wl, accel::edgeClass(),
        {DataflowStyle::NVDLA, DataflowStyle::ShiDiannao});
    ASSERT_FALSE(result.points.empty());
    std::size_t best = result.best().summary.sla.deadlineMisses;
    for (const dse::DsePoint &p : result.points) {
        EXPECT_GE(p.summary.sla.deadlineMisses, best);
        EXPECT_EQ(p.summary.sla.frames, wl.numInstances());
        // The UNet frame is hopeless on every partition of the edge
        // chip, so admission control fires at every design point.
        EXPECT_GT(p.summary.sla.droppedFrames, 0u);
        EXPECT_GE(p.summary.sla.deadlineMisses,
                  p.summary.sla.droppedFrames);
    }
}

TEST_F(RealtimeTest, RealtimeDseDeterministicAcrossThreadCounts)
{
    auto run = [&](std::size_t threads) {
        cost::CostModel fresh;
        dse::HeraldOptions opts;
        opts.partition.peGranularity = 128;
        opts.partition.bwGranularity = 2.0;
        opts.partition.strategy = dse::SearchStrategy::Binary;
        opts.objective = dse::Objective::SlaViolations;
        opts.scheduler.deadlineAware = true;
        opts.numThreads = threads;
        dse::Herald herald(fresh, opts);
        Workload wl = miniRealtime();
        return herald.explore(
            wl, accel::edgeClass(),
            {DataflowStyle::NVDLA, DataflowStyle::ShiDiannao});
    };
    dse::DseResult serial = run(1);
    dse::DseResult parallel = run(4);
    EXPECT_EQ(serial.bestIdx, parallel.bestIdx);
    ASSERT_EQ(serial.points.size(), parallel.points.size());
    for (std::size_t i = 0; i < serial.points.size(); ++i) {
        const sched::ScheduleSummary &a = serial.points[i].summary;
        const sched::ScheduleSummary &b = parallel.points[i].summary;
        EXPECT_EQ(a.makespanCycles, b.makespanCycles) << i;
        EXPECT_EQ(a.sla.deadlineMisses, b.sla.deadlineMisses) << i;
        EXPECT_EQ(a.sla.p99LatencyCycles, b.sla.p99LatencyCycles)
            << i;
    }
}

} // namespace
